// Package prestocs's root benchmarks regenerate the paper's evaluation
// artifacts under `go test -bench`: one benchmark per table and figure
// (DESIGN.md §5). Each iteration runs a full query through the real
// topology (engine + OCS + object store over loopback TCP); reported
// custom metrics are the cost-model outputs:
//
//	modeled-ms/op   modeled execution time on the paper's testbed
//	moved-KB/op     data movement between compute and storage
//
// Shape expectations (who wins, by roughly what factor) are asserted by
// the unit tests in internal/harness; the benchmarks report the numbers.
package prestocs_test

import (
	"fmt"
	"testing"

	"prestocs/internal/compress"
	ocsconn "prestocs/internal/connector/ocs"
	"prestocs/internal/engine"
	"prestocs/internal/harness"
	"prestocs/internal/workload"
)

// benchCluster builds a loaded cluster once per benchmark.
func benchCluster(b *testing.B, make func() (*workload.Dataset, error)) (*harness.Cluster, *workload.Dataset) {
	b.Helper()
	c, err := harness.StartCluster(1)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.Close)
	d, err := make()
	if err != nil {
		b.Fatal(err)
	}
	if err := c.Load(d); err != nil {
		b.Fatal(err)
	}
	return c, d
}

func benchLaghos(codec compress.Codec) func() (*workload.Dataset, error) {
	return func() (*workload.Dataset, error) {
		return workload.Laghos(workload.Config{Files: 8, RowsPerFile: 8192, Seed: 42, Codec: codec})
	}
}

func benchDeepWater(codec compress.Codec) func() (*workload.Dataset, error) {
	return func() (*workload.Dataset, error) {
		return workload.DeepWater(workload.Config{Files: 8, RowsPerFile: 16384, Seed: 42, Codec: codec})
	}
}

func benchTPCH(codec compress.Codec) func() (*workload.Dataset, error) {
	return func() (*workload.Dataset, error) {
		return workload.TPCH(workload.Config{Files: 8, RowsPerFile: 16384, Seed: 42, Codec: codec})
	}
}

func runCell(b *testing.B, c *harness.Cluster, d *workload.Dataset, mode string) {
	b.Helper()
	session := engine.NewSession().Set(ocsconn.SessionPushdown, mode)
	var lastModeled float64
	var lastMoved float64
	for i := 0; i < b.N; i++ {
		cell, err := c.Run(mode, d.Query, session)
		if err != nil {
			b.Fatal(err)
		}
		lastModeled = float64(cell.Modeled.Total.Microseconds()) / 1000
		lastMoved = float64(cell.BytesMoved) / 1024
	}
	b.ReportMetric(lastModeled, "modeled-ms/op")
	b.ReportMetric(lastMoved, "moved-KB/op")
}

// BenchmarkFig5aLaghos sweeps the paper's Figure 5(a) x-axis.
func BenchmarkFig5aLaghos(b *testing.B) {
	c, d := benchCluster(b, benchLaghos(compress.None))
	for _, step := range harness.Fig5Steps("laghos") {
		step := step
		b.Run(step.Mode, func(b *testing.B) { runCell(b, c, d, step.Mode) })
	}
}

// BenchmarkFig5bDeepWater sweeps Figure 5(b).
func BenchmarkFig5bDeepWater(b *testing.B) {
	c, d := benchCluster(b, benchDeepWater(compress.None))
	for _, step := range harness.Fig5Steps("deepwater") {
		step := step
		b.Run(step.Mode, func(b *testing.B) { runCell(b, c, d, step.Mode) })
	}
}

// BenchmarkFig5cTPCH sweeps Figure 5(c) over TPC-H Q1.
func BenchmarkFig5cTPCH(b *testing.B) {
	c, d := benchCluster(b, benchTPCH(compress.None))
	for _, step := range harness.Fig5Steps("tpch") {
		step := step
		b.Run(step.Mode, func(b *testing.B) { runCell(b, c, d, step.Mode) })
	}
}

// BenchmarkFig6Compression sweeps Figure 6: codec × {filter, all-op}.
func BenchmarkFig6Compression(b *testing.B) {
	for _, codec := range compress.Codecs() {
		codec := codec
		b.Run(codec.String(), func(b *testing.B) {
			c, d := benchCluster(b, benchDeepWater(codec))
			for _, mode := range []string{"filter", "filter_project_agg"} {
				mode := mode
				b.Run(mode, func(b *testing.B) { runCell(b, c, d, mode) })
			}
		})
	}
}

// BenchmarkTable2Selectivity measures each paper query end to end with
// full pushdown (the configuration Table 2's selectivity describes).
func BenchmarkTable2Selectivity(b *testing.B) {
	cases := []struct {
		name string
		make func() (*workload.Dataset, error)
	}{
		{"laghos", benchLaghos(compress.None)},
		{"deepwater", benchDeepWater(compress.None)},
		{"tpch", benchTPCH(compress.None)},
	}
	for _, tc := range cases {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			c, d := benchCluster(b, tc.make)
			runCell(b, c, d, "all")
		})
	}
}

// BenchmarkTable3Breakdown measures the connector-overhead stages the
// paper's Table 3 reports: plan analysis and Substrait IR generation per
// query, as shares of total execution.
func BenchmarkTable3Breakdown(b *testing.B) {
	c, d := benchCluster(b, func() (*workload.Dataset, error) {
		return workload.Laghos(workload.Config{Files: 1, RowsPerFile: 16384, Seed: 42})
	})
	var planPct, irPct float64
	for i := 0; i < b.N; i++ {
		br, err := c.RunTable3(d)
		if err != nil {
			b.Fatal(err)
		}
		planPct = 100 * float64(br.PlanAnalysis) / float64(br.Total)
		irPct = 100 * float64(br.SubstraitGen) / float64(br.Total)
	}
	b.ReportMetric(planPct, "plan-analysis-%")
	b.ReportMetric(irPct, "substrait-gen-%")
}

// BenchmarkAblationResultFormat compares Arrow (OCS) against CSV (S3
// Select-like) result transfer for the same filter-only pushdown — the
// design choice DESIGN.md §11 calls out.
func BenchmarkAblationResultFormat(b *testing.B) {
	c, d := benchCluster(b, benchDeepWater(compress.None))
	b.Run("arrow", func(b *testing.B) { runCell(b, c, d, "filter") })
	b.Run("csv", func(b *testing.B) {
		hiveQuery := "SELECT MAX((rowid % 250000) / 500) AS m, timestep FROM hive.deepwater WHERE v02 > 0.1 GROUP BY timestep"
		var lastModeled, lastMoved float64
		for i := 0; i < b.N; i++ {
			cell, err := c.Run("csv", hiveQuery, engine.NewSession())
			if err != nil {
				b.Fatal(err)
			}
			lastModeled = float64(cell.Modeled.Total.Microseconds()) / 1000
			lastMoved = float64(cell.BytesMoved) / 1024
		}
		b.ReportMetric(lastModeled, "modeled-ms/op")
		b.ReportMetric(lastMoved, "moved-KB/op")
	})
}

// BenchmarkAblationRowGroupPruning toggles the statistics-based row-group
// pruning benefit by comparing a selective filter against a full scan of
// the same columns.
func BenchmarkAblationRowGroupPruning(b *testing.B) {
	c, d := benchCluster(b, benchLaghos(compress.None))
	session := engine.NewSession().Set(ocsconn.SessionPushdown, "filter")
	selective := "SELECT vertex_id, e FROM laghos WHERE vertex_id < 64"
	broad := "SELECT vertex_id, e FROM laghos WHERE vertex_id >= 0"
	_ = d
	b.Run("pruned", func(b *testing.B) {
		var io float64
		for i := 0; i < b.N; i++ {
			cell, err := c.Run("pruned", selective, session)
			if err != nil {
				b.Fatal(err)
			}
			io = float64(cell.Stats.Scan.Snapshot().StorageWork.BytesRead) / 1024
		}
		b.ReportMetric(io, "storage-read-KB/op")
	})
	b.Run("unpruned", func(b *testing.B) {
		var io float64
		for i := 0; i < b.N; i++ {
			cell, err := c.Run("unpruned", broad, session)
			if err != nil {
				b.Fatal(err)
			}
			io = float64(cell.Stats.Scan.Snapshot().StorageWork.BytesRead) / 1024
		}
		b.ReportMetric(io, "storage-read-KB/op")
	})
}

// BenchmarkAblationAutoVsForced compares the Selectivity Analyzer's auto
// decisions against forced full pushdown.
func BenchmarkAblationAutoVsForced(b *testing.B) {
	c, d := benchCluster(b, benchLaghos(compress.None))
	for _, mode := range []string{"auto", "all", "none"} {
		mode := mode
		b.Run(mode, func(b *testing.B) { runCell(b, c, d, mode) })
	}
}

// Example of the printed sweep for documentation; not a benchmark.
func ExampleFig5Steps() {
	for _, s := range harness.Fig5Steps("laghos") {
		fmt.Println(s.Label)
	}
	// Output:
	// no pushdown
	// filter
	// filter+agg
	// filter+agg+topn
}
