// deepwater-compression reproduces the paper's Q3 compression study
// (Figure 6) on the Deep Water Impact workload: it regenerates the
// dataset under each codec (none, snappy, gzip, zstd), runs the paper's
// query with filter-only and with all-operator pushdown, and shows that
// the two optimizations compose — and that compressed filter-only can
// beat uncompressed full pushdown.
//
//	go run ./examples/deepwater-compression
package main

import (
	"fmt"
	"log"
	"time"

	"prestocs/internal/compress"
	"prestocs/internal/harness"
	"prestocs/internal/workload"
)

func main() {
	fmt.Println("Deep Water Impact: compression x pushdown study")
	fmt.Printf("%-8s %-12s %14s %12s %10s\n", "codec", "pushdown", "modeled time", "moved", "stored")

	type key struct {
		codec compress.Codec
		mode  string
	}
	totals := map[key]time.Duration{}
	for _, codec := range compress.Codecs() {
		cluster, err := harness.StartCluster(1)
		if err != nil {
			log.Fatal(err)
		}
		dataset, err := workload.DeepWater(workload.Config{Files: 8, RowsPerFile: 16384, Seed: 42, Codec: codec})
		if err != nil {
			log.Fatal(err)
		}
		if err := cluster.Load(dataset); err != nil {
			log.Fatal(err)
		}
		for _, mode := range []string{"filter", "filter_project_agg"} {
			cell, err := cluster.RunFig6Cell(dataset, mode)
			if err != nil {
				log.Fatal(err)
			}
			label := "filter-only"
			if mode != "filter" {
				label = "all-op"
			}
			totals[key{codec, mode}] = cell.Modeled.Total
			fmt.Printf("%-8s %-12s %14v %12d %9.1fMB\n",
				codec, label, cell.Modeled.Total.Round(time.Microsecond),
				cell.BytesMoved, float64(dataset.Table.TotalBytes)/1e6)
		}
		cluster.Close()
	}

	fmt.Println()
	for _, codec := range compress.Codecs() {
		f := totals[key{codec, "filter"}]
		a := totals[key{codec, "filter_project_agg"}]
		fmt.Printf("%s: all-operator pushdown is %.2fx faster than filter-only\n",
			codec, float64(f)/float64(a))
	}
	zf := totals[key{compress.Zstd, "filter"}]
	na := totals[key{compress.None, "filter_project_agg"}]
	fmt.Printf("\nzstd + filter-only (%v) vs uncompressed + all-op (%v): compression still matters\n", zf, na)
}
