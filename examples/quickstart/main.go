// Quickstart: stand up the full Presto-OCS topology in-process, load a
// tiny dataset, and run one SQL query under two pushdown configurations,
// printing results and data movement.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	ocsconn "prestocs/internal/connector/ocs"
	"prestocs/internal/engine"
	"prestocs/internal/harness"
	"prestocs/internal/workload"
)

func main() {
	// One OCS storage node + frontend + object store + engine, all over
	// loopback TCP.
	cluster, err := harness.StartCluster(1)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// A small Laghos-like mesh: 4 objects × 4096 rows.
	dataset, err := workload.Laghos(workload.Config{Files: 4, RowsPerFile: 4096, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	if err := cluster.Load(dataset); err != nil {
		log.Fatal(err)
	}

	query := `SELECT vertex_id, avg(e) AS mean_e, count(*) AS n
	          FROM laghos
	          WHERE x BETWEEN 1.0 AND 3.0
	          GROUP BY vertex_id
	          ORDER BY mean_e DESC LIMIT 5`

	for _, mode := range []string{"none", "all"} {
		session := engine.NewSession().Set(ocsconn.SessionPushdown, mode)
		res, err := cluster.Engine.Execute(context.Background(), query, session)
		if err != nil {
			log.Fatal(err)
		}
		scan := res.Stats.Scan.Snapshot()
		fmt.Printf("--- pushdown=%s ---\n", mode)
		fmt.Printf("pushed operators: %v\n", res.Stats.PushedDown)
		fmt.Printf("data moved: %d bytes over %d splits\n", scan.BytesMoved, res.Stats.Splits)
		fmt.Printf("%v\n", res.Schema)
		for i := 0; i < res.Page.NumRows(); i++ {
			row := res.Page.Row(i)
			fmt.Printf("  vertex=%v  mean_e=%.3f  n=%v\n", row[0], row[1].F, row[2])
		}
	}
	fmt.Println("\nSame answers, orders of magnitude less data moved with pushdown.")
}
