// tpch-pushdown runs TPC-H Query 1 — the paper's business-OLAP case
// (Figure 5c) — against both connectors: the conventional Hive connector
// (S3 Select-style filter-only pushdown, CSV results) and the Presto-OCS
// connector (aggregation pushdown, Arrow results), printing the Q1
// aggregate table and the cost of each path.
//
//	go run ./examples/tpch-pushdown
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	ocsconn "prestocs/internal/connector/ocs"
	"prestocs/internal/engine"
	"prestocs/internal/harness"
	"prestocs/internal/workload"
)

func main() {
	cluster, err := harness.StartCluster(1)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	dataset, err := workload.TPCH(workload.Config{Files: 8, RowsPerFile: 16384, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	if err := cluster.Load(dataset); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lineitem: %d rows in %d objects (%.1f MB)\n\n",
		dataset.Table.RowCount, len(dataset.Table.Objects), float64(dataset.Table.TotalBytes)/1e6)

	// OCS connector with full pushdown.
	session := engine.NewSession().Set(ocsconn.SessionPushdown, "filter_project_agg")
	ocsRes, err := cluster.Engine.Execute(context.Background(), dataset.Query, session)
	if err != nil {
		log.Fatal(err)
	}

	// Hive connector: same query, S3 Select path (filter-only).
	hiveQuery := strings.Replace(dataset.Query, "FROM lineitem", "FROM hive.lineitem", 1)
	hiveRes, err := cluster.Engine.Execute(context.Background(), hiveQuery, engine.NewSession())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("TPC-H Q1 result (OCS connector, aggregation pushed into storage):")
	printQ1(ocsRes)

	ocsScan := ocsRes.Stats.Scan.Snapshot()
	hiveScan := hiveRes.Stats.Scan.Snapshot()
	fmt.Printf("\n%-28s %18s %18s\n", "", "hive (S3-Select)", "presto-ocs")
	fmt.Printf("%-28s %18v %18v\n", "pushed operators",
		strings.Join(hiveRes.Stats.PushedDown, "+"), strings.Join(ocsRes.Stats.PushedDown, "+"))
	fmt.Printf("%-28s %18d %18d\n", "bytes moved", hiveScan.BytesMoved, ocsScan.BytesMoved)
	fmt.Printf("%-28s %18v %18v\n", "wall time",
		hiveRes.Stats.Total.Round(time.Millisecond), ocsRes.Stats.Total.Round(time.Millisecond))

	if hiveRes.Page.NumRows() != ocsRes.Page.NumRows() {
		log.Fatalf("connectors disagree: %d vs %d rows", hiveRes.Page.NumRows(), ocsRes.Page.NumRows())
	}
	fmt.Println("\nBoth connectors return identical Q1 aggregates; OCS moves a fraction of the bytes.")
}

func printQ1(res *engine.Result) {
	names := res.Schema.Names()
	fmt.Printf("  %-10s %-10s %12s %16s %14s\n", names[0], names[1], names[2], names[4], names[9])
	for i := 0; i < res.Page.NumRows(); i++ {
		row := res.Page.Row(i)
		fmt.Printf("  %-10s %-10s %12.0f %16.2f %14d\n",
			row[0].S, row[1].S, row[2].F, row[4].F, row[9].I)
	}
}
