// hpc-laghos reproduces the paper's headline HPC scenario end to end:
// the LANL Laghos analytics query (filter + GROUP BY + top-N) over a
// fluid-dynamics mesh stored as objects, swept across the progressive
// pushdown configurations of Figure 5(a). It prints a small report with
// modeled times (Table 1 hardware) and data movement per configuration.
//
//	go run ./examples/hpc-laghos [-files N] [-rows N]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"prestocs/internal/harness"
	"prestocs/internal/workload"
)

func main() {
	files := flag.Int("files", 8, "mesh subdomain files")
	rows := flag.Int("rows", 8192, "rows per file")
	flag.Parse()

	cluster, err := harness.StartCluster(1)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	dataset, err := workload.Laghos(workload.Config{Files: *files, RowsPerFile: *rows, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	if err := cluster.Load(dataset); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Laghos mesh: %d files, %d rows, %.1f MB stored\n",
		len(dataset.Table.Objects), dataset.Table.RowCount, float64(dataset.Table.TotalBytes)/1e6)
	fmt.Printf("Query: %s\n\n", dataset.Query)

	cells, err := cluster.RunFig5(dataset)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-20s %14s %12s %s\n", "configuration", "modeled time", "moved", "operators in storage")
	for _, cell := range cells {
		fmt.Printf("%-20s %14v %12d %v\n",
			cell.Label, cell.Modeled.Total.Round(time.Microsecond), cell.BytesMoved, cell.Pushed)
	}
	base, full := cells[1], cells[len(cells)-1]
	fmt.Printf("\nfull pushdown vs filter-only: %.2fx faster, %.4f%% of the data moved\n",
		float64(base.Modeled.Total)/float64(full.Modeled.Total),
		100*float64(full.BytesMoved)/float64(base.BytesMoved))
}
