// Package plan defines the engine's logical plan tree, mirroring Presto's
// PlanNode hierarchy for the operators this system supports: TableScan,
// Filter, Project, Aggregate (single/partial/final), Sort, TopN, Limit
// and Output, plus the Exchange marker separating the distributed leaf
// stage (per split, on workers) from the final stage (on the
// coordinator). Connector plan optimizers rewrite this tree during the
// local-optimization phase, absorbing pushdown-eligible nodes into the
// TableScan's connector handle.
package plan

import (
	"fmt"
	"strings"

	"prestocs/internal/bloom"
	"prestocs/internal/exec"
	"prestocs/internal/expr"
	"prestocs/internal/substrait"
	"prestocs/internal/types"
)

// TableHandle is the connector-owned, opaque description of a scan. The
// OCS connector stores its pushdown spec here (like Presto's
// ConnectorTableHandle).
type TableHandle interface {
	fmt.Stringer
	// ConnectorName identifies the owning connector.
	ConnectorName() string
	// ScanSchema is the schema the scan produces, which pushdown can
	// change (e.g. partial-aggregate columns).
	ScanSchema() *types.Schema
}

// ProjectableHandle is implemented by handles that can restrict the scan
// to a subset of columns (selective column retrieval). WithProjection
// returns a new handle whose ScanSchema is the base schema projected to
// cols (base-schema ordinals, ascending).
type ProjectableHandle interface {
	TableHandle
	WithProjection(cols []int) TableHandle
}

// BloomJoinHandle is implemented by handles that can evaluate a join
// build side's bloom filter inside the storage scan. WithJoinBloom
// returns a new handle whose scan drops rows the filter proves absent
// from the build side; column is the key ordinal over ScanSchema and
// buildKeys the distinct-key count behind the filter (the connector's
// selectivity prior). ok=false declines the filter — e.g. when pushed
// operators rebuild the schema and the key ordinal cannot be mapped —
// and the engine keeps the filter on its side instead.
type BloomJoinHandle interface {
	TableHandle
	WithJoinBloom(column int, filter *bloom.Filter, buildKeys int64) (h TableHandle, ok bool)
}

// Node is a logical plan node.
type Node interface {
	// OutputSchema is the node's result schema.
	OutputSchema() *types.Schema
	// Children returns input nodes (len 0 or 1 in this engine).
	Children() []Node
	// Describe renders a one-line summary.
	Describe() string
}

// TableScan reads from a connector.
type TableScan struct {
	Catalog string
	Table   string
	Handle  TableHandle
}

// OutputSchema implements Node.
func (n *TableScan) OutputSchema() *types.Schema { return n.Handle.ScanSchema() }

// Children implements Node.
func (n *TableScan) Children() []Node { return nil }

// Describe implements Node.
func (n *TableScan) Describe() string {
	return fmt.Sprintf("TableScan[%s.%s, %s]", n.Catalog, n.Table, n.Handle)
}

// Filter keeps rows matching Condition.
type Filter struct {
	Input     Node
	Condition expr.Expr
}

// OutputSchema implements Node.
func (n *Filter) OutputSchema() *types.Schema { return n.Input.OutputSchema() }

// Children implements Node.
func (n *Filter) Children() []Node { return []Node{n.Input} }

// Describe implements Node.
func (n *Filter) Describe() string { return "Filter[" + n.Condition.String() + "]" }

// Project computes expressions.
type Project struct {
	Input       Node
	Expressions []expr.Expr
	Names       []string
}

// OutputSchema implements Node.
func (n *Project) OutputSchema() *types.Schema {
	cols := make([]types.Column, len(n.Expressions))
	for i, e := range n.Expressions {
		cols[i] = types.Column{Name: n.Names[i], Type: e.Type()}
	}
	return types.NewSchema(cols...)
}

// Children implements Node.
func (n *Project) Children() []Node { return []Node{n.Input} }

// Describe implements Node.
func (n *Project) Describe() string { return "Project[" + expr.Format(n.Expressions) + "]" }

// AggStep mirrors Presto's aggregation steps.
type AggStep uint8

const (
	// AggSingle computes complete aggregates in one pass.
	AggSingle AggStep = iota
	// AggPartial emits mergeable partial states (leaf stage).
	AggPartial
	// AggFinal merges partial states (final stage).
	AggFinal
)

func (s AggStep) String() string {
	return [...]string{"SINGLE", "PARTIAL", "FINAL"}[s]
}

// Aggregate groups by key ordinals and computes measures. Output schema
// is keys then measures (matching exec.HashAggregate).
type Aggregate struct {
	Input    Node
	Keys     []int
	Measures []substrait.Measure
	Step     AggStep
}

// OutputSchema implements Node.
func (n *Aggregate) OutputSchema() *types.Schema {
	in := n.Input.OutputSchema()
	var cols []types.Column
	for _, k := range n.Keys {
		cols = append(cols, in.Columns[k])
	}
	for i, m := range n.Measures {
		inKind := types.Int64
		if n.Step == AggFinal {
			inKind = in.Columns[len(n.Keys)+i].Type
		} else if m.Func != substrait.AggCountStar {
			inKind = in.Columns[m.Arg].Type
		}
		outKind, err := m.Func.ResultKind(inKind)
		if err != nil {
			outKind = types.Unknown
		}
		cols = append(cols, types.Column{Name: m.Name, Type: outKind})
	}
	return types.NewSchema(cols...)
}

// Children implements Node.
func (n *Aggregate) Children() []Node { return []Node{n.Input} }

// Describe implements Node.
func (n *Aggregate) Describe() string {
	parts := make([]string, len(n.Measures))
	for i, m := range n.Measures {
		parts[i] = string(m.Func)
	}
	return fmt.Sprintf("Aggregate(%s)[keys=%d, %s]", n.Step, len(n.Keys), strings.Join(parts, ","))
}

// SortKey orders by an output ordinal.
type SortKey struct {
	Column     int
	Descending bool
}

// Sort fully orders the input.
type Sort struct {
	Input Node
	Keys  []SortKey
}

// OutputSchema implements Node.
func (n *Sort) OutputSchema() *types.Schema { return n.Input.OutputSchema() }

// Children implements Node.
func (n *Sort) Children() []Node { return []Node{n.Input} }

// Describe implements Node.
func (n *Sort) Describe() string { return fmt.Sprintf("Sort[%d keys]", len(n.Keys)) }

// TopN is Sort+Limit fused.
type TopN struct {
	Input Node
	Keys  []SortKey
	Count int64
	// Partial marks the leaf-stage local top-N; the final stage re-runs
	// a full TopN over the union (always sound, see DESIGN.md §4).
	Partial bool
}

// OutputSchema implements Node.
func (n *TopN) OutputSchema() *types.Schema { return n.Input.OutputSchema() }

// Children implements Node.
func (n *TopN) Children() []Node { return []Node{n.Input} }

// Describe implements Node.
func (n *TopN) Describe() string {
	phase := "FINAL"
	if n.Partial {
		phase = "PARTIAL"
	}
	return fmt.Sprintf("TopN(%s)[%d]", phase, n.Count)
}

// Limit truncates output.
type Limit struct {
	Input Node
	Count int64
}

// OutputSchema implements Node.
func (n *Limit) OutputSchema() *types.Schema { return n.Input.OutputSchema() }

// Children implements Node.
func (n *Limit) Children() []Node { return []Node{n.Input} }

// Describe implements Node.
func (n *Limit) Describe() string { return fmt.Sprintf("Limit[%d]", n.Count) }

// JoinStrategy is how a hash join distributes its build side.
type JoinStrategy uint8

const (
	// JoinAuto defers the choice to the engine, which measures the built
	// table and applies the cost model's broadcast threshold.
	JoinAuto JoinStrategy = iota
	// JoinBroadcast replicates the built hash table to every leaf worker,
	// probing inside the leaf stage.
	JoinBroadcast
	// JoinPartitioned probes on the coordinator's final stage (this
	// engine's single-coordinator stand-in for a repartitioned join).
	JoinPartitioned
)

func (s JoinStrategy) String() string {
	return [...]string{"AUTO", "BROADCAST", "PARTITIONED"}[s]
}

// Join is an inner hash equi-join. The build side is fully drained into a
// hash table keyed by BuildKeys before the probe side streams; output is
// the probe columns followed by the build columns. ProbeKeys index the
// probe child's schema, BuildKeys the build child's; pairs match
// positionally.
type Join struct {
	Probe Node
	Build Node
	// ProbeKeys/BuildKeys are equi-key ordinals, positionally paired.
	ProbeKeys []int
	BuildKeys []int
	Strategy  JoinStrategy
}

// OutputSchema implements Node: probe columns then build columns.
func (n *Join) OutputSchema() *types.Schema {
	p, b := n.Probe.OutputSchema(), n.Build.OutputSchema()
	cols := make([]types.Column, 0, p.Len()+b.Len())
	cols = append(cols, p.Columns...)
	cols = append(cols, b.Columns...)
	return types.NewSchema(cols...)
}

// Children implements Node.
func (n *Join) Children() []Node { return []Node{n.Probe, n.Build} }

// Describe implements Node.
func (n *Join) Describe() string {
	return fmt.Sprintf("Join(INNER,%s)[probe=%v build=%v]", n.Strategy, n.ProbeKeys, n.BuildKeys)
}

// Exchange marks the leaf/final stage boundary: everything below runs per
// split on workers, everything above runs once on the coordinator.
type Exchange struct {
	Input Node
}

// OutputSchema implements Node.
func (n *Exchange) OutputSchema() *types.Schema { return n.Input.OutputSchema() }

// Children implements Node.
func (n *Exchange) Children() []Node { return []Node{n.Input} }

// Describe implements Node.
func (n *Exchange) Describe() string { return "Exchange" }

// Output names the final result columns.
type Output struct {
	Input Node
	Names []string
}

// OutputSchema implements Node.
func (n *Output) OutputSchema() *types.Schema {
	in := n.Input.OutputSchema()
	cols := make([]types.Column, in.Len())
	for i, c := range in.Columns {
		name := c.Name
		if i < len(n.Names) && n.Names[i] != "" {
			name = n.Names[i]
		}
		cols[i] = types.Column{Name: name, Type: c.Type}
	}
	return types.NewSchema(cols...)
}

// Children implements Node.
func (n *Output) Children() []Node { return []Node{n.Input} }

// Describe implements Node.
func (n *Output) Describe() string { return "Output[" + strings.Join(n.Names, ", ") + "]" }

// Format renders the tree indented, scan at the deepest level — the shape
// Presto's EXPLAIN prints.
func Format(root Node) string {
	var sb strings.Builder
	var walk func(n Node, depth int)
	walk = func(n Node, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString("- " + n.Describe() + "\n")
		for _, c := range n.Children() {
			walk(c, depth+1)
		}
	}
	walk(root, 0)
	return sb.String()
}

// Walk visits nodes top-down.
func Walk(n Node, fn func(Node)) {
	fn(n)
	for _, c := range n.Children() {
		Walk(c, fn)
	}
}

// FindScan returns the unique TableScan of the tree (nil when absent).
func FindScan(root Node) *TableScan {
	var scan *TableScan
	Walk(root, func(n Node) {
		if s, ok := n.(*TableScan); ok {
			scan = s
		}
	})
	return scan
}

// FindScans returns every TableScan in the tree, in Walk (top-down,
// probe-before-build) order.
func FindScans(root Node) []*TableScan {
	var scans []*TableScan
	Walk(root, func(n Node) {
		if s, ok := n.(*TableScan); ok {
			scans = append(scans, s)
		}
	})
	return scans
}

// FindJoin returns the tree's Join node (nil when absent; this engine
// plans at most one join per query).
func FindJoin(root Node) *Join {
	var join *Join
	Walk(root, func(n Node) {
		if j, ok := n.(*Join); ok {
			join = j
		}
	})
	return join
}

// ReplaceChild returns a structural copy of parent with its single input
// replaced. It is the primitive connector optimizers use to rewrite trees.
func ReplaceChild(parent Node, newChild Node) (Node, error) {
	switch t := parent.(type) {
	case *Filter:
		return &Filter{Input: newChild, Condition: t.Condition}, nil
	case *Project:
		return &Project{Input: newChild, Expressions: t.Expressions, Names: t.Names}, nil
	case *Aggregate:
		return &Aggregate{Input: newChild, Keys: t.Keys, Measures: t.Measures, Step: t.Step}, nil
	case *Sort:
		return &Sort{Input: newChild, Keys: t.Keys}, nil
	case *TopN:
		return &TopN{Input: newChild, Keys: t.Keys, Count: t.Count, Partial: t.Partial}, nil
	case *Limit:
		return &Limit{Input: newChild, Count: t.Count}, nil
	case *Exchange:
		return &Exchange{Input: newChild}, nil
	case *Output:
		return &Output{Input: newChild, Names: t.Names}, nil
	default:
		return nil, fmt.Errorf("plan: cannot replace child of %T", parent)
	}
}

// SortSpecs converts plan sort keys to exec sort specs.
func SortSpecs(keys []SortKey) []exec.SortSpec {
	out := make([]exec.SortSpec, len(keys))
	for i, k := range keys {
		out[i] = exec.SortSpec{Column: k.Column, Descending: k.Descending}
	}
	return out
}
