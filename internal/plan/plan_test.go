package plan

import (
	"strings"
	"testing"

	"prestocs/internal/expr"
	"prestocs/internal/substrait"
	"prestocs/internal/types"
)

// stubHandle is a minimal TableHandle for plan tests.
type stubHandle struct {
	schema *types.Schema
	proj   []int
}

func (h *stubHandle) ConnectorName() string { return "stub" }
func (h *stubHandle) String() string        { return "stub" }
func (h *stubHandle) ScanSchema() *types.Schema {
	if h.proj == nil {
		return h.schema
	}
	return h.schema.Project(h.proj)
}
func (h *stubHandle) WithProjection(cols []int) TableHandle {
	return &stubHandle{schema: h.schema, proj: cols}
}

func baseSchema() *types.Schema {
	return types.NewSchema(
		types.Column{Name: "a", Type: types.Int64},
		types.Column{Name: "b", Type: types.Float64},
		types.Column{Name: "g", Type: types.String},
	)
}

func scanNode() *TableScan {
	return &TableScan{Catalog: "c", Table: "t", Handle: &stubHandle{schema: baseSchema()}}
}

func TestOutputSchemas(t *testing.T) {
	scan := scanNode()
	if !scan.OutputSchema().Equal(baseSchema()) {
		t.Error("scan schema wrong")
	}
	pred, _ := expr.NewCompare(expr.Gt, expr.Col(0, "a", types.Int64), expr.Lit(types.IntValue(0)))
	filter := &Filter{Input: scan, Condition: pred}
	if !filter.OutputSchema().Equal(baseSchema()) {
		t.Error("filter must pass schema through")
	}
	proj := &Project{
		Input:       filter,
		Expressions: []expr.Expr{expr.Col(1, "b", types.Float64)},
		Names:       []string{"bb"},
	}
	if got := proj.OutputSchema().String(); got != "(bb DOUBLE)" {
		t.Errorf("project schema = %s", got)
	}
	agg := &Aggregate{
		Input: scan,
		Keys:  []int{2},
		Measures: []substrait.Measure{
			{Func: substrait.AggSum, Arg: 1, Name: "s"},
			{Func: substrait.AggCountStar, Arg: -1, Name: "c"},
		},
		Step: AggSingle,
	}
	if got := agg.OutputSchema().String(); got != "(g VARCHAR, s DOUBLE, c BIGINT)" {
		t.Errorf("agg schema = %s", got)
	}
	out := &Output{Input: proj, Names: []string{"renamed"}}
	if got := out.OutputSchema().Columns[0].Name; got != "renamed" {
		t.Errorf("output name = %s", got)
	}
	topn := &TopN{Input: scan, Keys: []SortKey{{Column: 0}}, Count: 5}
	if !topn.OutputSchema().Equal(baseSchema()) {
		t.Error("topn schema wrong")
	}
	ex := &Exchange{Input: scan}
	if !ex.OutputSchema().Equal(baseSchema()) {
		t.Error("exchange schema wrong")
	}
	lim := &Limit{Input: scan, Count: 1}
	srt := &Sort{Input: lim, Keys: []SortKey{{Column: 0}}}
	if !srt.OutputSchema().Equal(baseSchema()) {
		t.Error("sort schema wrong")
	}
}

func TestAggFinalSchemaUsesStateColumns(t *testing.T) {
	// Final aggregation input: key + partial state columns.
	partialOut := types.NewSchema(
		types.Column{Name: "g", Type: types.String},
		types.Column{Name: "s", Type: types.Float64},
	)
	scan := &TableScan{Catalog: "c", Table: "t", Handle: &stubHandle{schema: partialOut}}
	final := &Aggregate{
		Input:    scan,
		Keys:     []int{0},
		Measures: []substrait.Measure{{Func: substrait.AggSum, Arg: 1, Name: "s"}},
		Step:     AggFinal,
	}
	if got := final.OutputSchema().String(); got != "(g VARCHAR, s DOUBLE)" {
		t.Errorf("final agg schema = %s", got)
	}
}

func TestWalkAndFindScan(t *testing.T) {
	scan := scanNode()
	pred, _ := expr.NewCompare(expr.Gt, expr.Col(0, "a", types.Int64), expr.Lit(types.IntValue(0)))
	root := &Output{Input: &Exchange{Input: &Filter{Input: scan, Condition: pred}}}
	var count int
	Walk(root, func(Node) { count++ })
	if count != 4 {
		t.Errorf("walked %d nodes", count)
	}
	if FindScan(root) != scan {
		t.Error("FindScan missed")
	}
	if FindScan(&Exchange{Input: &Exchange{Input: &Exchange{Input: scanNode()}}}) == nil {
		t.Error("deep FindScan missed")
	}
}

func TestReplaceChild(t *testing.T) {
	scan := scanNode()
	scan2 := scanNode()
	pred, _ := expr.NewCompare(expr.Gt, expr.Col(0, "a", types.Int64), expr.Lit(types.IntValue(0)))
	nodes := []Node{
		&Filter{Input: scan, Condition: pred},
		&Project{Input: scan, Expressions: []expr.Expr{expr.Col(0, "a", types.Int64)}, Names: []string{"a"}},
		&Aggregate{Input: scan, Keys: []int{0}, Step: AggSingle},
		&Sort{Input: scan, Keys: []SortKey{{Column: 0}}},
		&TopN{Input: scan, Keys: []SortKey{{Column: 0}}, Count: 3},
		&Limit{Input: scan, Count: 3},
		&Exchange{Input: scan},
		&Output{Input: scan, Names: []string{"a", "b", "g"}},
	}
	for _, n := range nodes {
		replaced, err := ReplaceChild(n, scan2)
		if err != nil {
			t.Fatalf("%T: %v", n, err)
		}
		if replaced.Children()[0] != Node(scan2) {
			t.Errorf("%T: child not replaced", n)
		}
		// Original untouched.
		if n.Children()[0] != Node(scan) {
			t.Errorf("%T: original mutated", n)
		}
	}
	if _, err := ReplaceChild(scan, scan2); err == nil {
		t.Error("replacing child of a scan must fail")
	}
}

func TestFormatTree(t *testing.T) {
	scan := scanNode()
	pred, _ := expr.NewCompare(expr.Gt, expr.Col(0, "a", types.Int64), expr.Lit(types.IntValue(0)))
	root := &Output{Input: &Exchange{Input: &Filter{Input: scan, Condition: pred}}, Names: nil}
	text := Format(root)
	for _, frag := range []string{"Output", "Exchange", "Filter[(a > 0)]", "TableScan[c.t"} {
		if !strings.Contains(text, frag) {
			t.Errorf("format missing %q:\n%s", frag, text)
		}
	}
	// Indentation increases downward.
	lines := strings.Split(strings.TrimSpace(text), "\n")
	if len(lines) != 4 || strings.Index(lines[3], "-") <= strings.Index(lines[0], "-") {
		t.Errorf("indentation wrong:\n%s", text)
	}
}

func TestDescribeForms(t *testing.T) {
	scan := scanNode()
	agg := &Aggregate{Input: scan, Keys: []int{0}, Measures: []substrait.Measure{{Func: substrait.AggSum, Arg: 1, Name: "s"}}, Step: AggPartial}
	if !strings.Contains(agg.Describe(), "PARTIAL") {
		t.Errorf("agg describe = %s", agg.Describe())
	}
	topn := &TopN{Input: scan, Count: 9, Partial: true}
	if !strings.Contains(topn.Describe(), "PARTIAL") || !strings.Contains(topn.Describe(), "9") {
		t.Errorf("topn describe = %s", topn.Describe())
	}
	if AggSingle.String() != "SINGLE" || AggFinal.String() != "FINAL" {
		t.Error("step strings wrong")
	}
}

func TestSortSpecs(t *testing.T) {
	specs := SortSpecs([]SortKey{{Column: 2, Descending: true}, {Column: 0}})
	if len(specs) != 2 || specs[0].Column != 2 || !specs[0].Descending || specs[1].Descending {
		t.Errorf("SortSpecs = %+v", specs)
	}
}
