package rpc

import (
	"context"
	"errors"
	"io"
	"testing"
	"time"
)

// startBlocking serves methods that exercise cancellation: "block" parks
// until the handler context ends, "slowstream" emits chunks forever with
// a small pause, "coded" fails with a tagged error.
func startBlocking(t *testing.T) (*Server, *Client) {
	t.Helper()
	s := NewServer()
	s.Register("block", func(ctx context.Context, p []byte) ([]byte, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	s.Register("echo", func(_ context.Context, p []byte) ([]byte, error) { return p, nil })
	s.Register("coded", func(_ context.Context, p []byte) ([]byte, error) {
		return nil, WithCode(errors.New("object is gone"), CodeNotFound)
	})
	s.RegisterStream("slowstream", func(ctx context.Context, p []byte, send func([]byte) error) ([]byte, error) {
		for i := 0; ; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if err := send([]byte{byte(i)}); err != nil {
				return nil, err
			}
			time.Sleep(2 * time.Millisecond)
		}
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := Dial(addr)
	t.Cleanup(func() {
		c.Close()
		s.Close()
	})
	return s, c
}

func TestCallDeadlinePropagatesToServer(t *testing.T) {
	_, c := startBlocking(t)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Call(ctx, "block", nil)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline call error = %v", err)
	}
	if elapsed > 2*time.Second {
		t.Errorf("deadline call took %v, watchdog did not fire", elapsed)
	}
}

func TestCallCancelReturnsPromptlyAndDiscardsConn(t *testing.T) {
	_, c := startBlocking(t)
	// Warm the pool so the cancelled call reuses a pooled connection.
	if _, err := c.Call(context.Background(), "echo", []byte("warm")); err != nil {
		t.Fatal(err)
	}
	if c.IdleConns() != 1 {
		t.Fatalf("idle after warm-up = %d", c.IdleConns())
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := c.Call(ctx, "block", nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled call error = %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancelled call took %v", elapsed)
	}
	if idle := c.IdleConns(); idle != 0 {
		t.Errorf("cancelled call must not pool its connection, idle=%d", idle)
	}
	// The client recovers with a fresh connection.
	if _, err := c.Call(context.Background(), "echo", []byte("x")); err != nil {
		t.Fatal(err)
	}
}

func TestCallPreCancelledContext(t *testing.T) {
	_, c := startBlocking(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Call(ctx, "echo", nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled call error = %v", err)
	}
	if _, err := c.Stream(ctx, "slowstream", nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled stream error = %v", err)
	}
}

func TestStreamCancelMidStreamDiscardsConn(t *testing.T) {
	_, c := startBlocking(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	st, err := c.Stream(ctx, "slowstream", nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := st.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	cancel()
	deadline := time.Now().Add(2 * time.Second)
	for {
		_, err = st.Recv()
		if err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("Recv kept succeeding after cancel")
		}
	}
	if err == io.EOF || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled stream error = %v", err)
	}
	if idle := c.IdleConns(); idle != 0 {
		t.Errorf("cancelled stream must not pool its connection, idle=%d", idle)
	}
	if _, err := c.Call(context.Background(), "echo", []byte("x")); err != nil {
		t.Fatal(err)
	}
}

func TestRemoteErrorCodeRoundTrip(t *testing.T) {
	_, c := startBlocking(t)
	_, err := c.Call(context.Background(), "coded", nil)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("error type = %T (%v)", err, err)
	}
	if re.Code != CodeNotFound || re.Message != "object is gone" {
		t.Errorf("remote error = %+v", re)
	}
	if !errors.Is(err, ErrNotFound) {
		t.Error("coded remote error must match ErrNotFound")
	}
	if errors.Is(err, ErrUnavailable) {
		t.Error("not-found must not match ErrUnavailable")
	}
}

func TestUnknownMethodIsNotFound(t *testing.T) {
	_, c := startBlocking(t)
	_, err := c.Call(context.Background(), "no-such-method", nil)
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown method error = %v", err)
	}
}

func TestDialFailureIsUnavailable(t *testing.T) {
	c := Dial("127.0.0.1:1")
	defer c.Close()
	_, err := c.Call(context.Background(), "echo", nil)
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("dial-refused error = %v", err)
	}
	var te *TransportError
	if !errors.As(err, &te) || te.Op != "dial" {
		t.Errorf("dial error shape = %v", err)
	}
}

func TestErrorCodeClassification(t *testing.T) {
	cases := []struct {
		err  error
		want Code
	}{
		{nil, CodeUnknown},
		{errors.New("plain"), CodeUnknown},
		{WithCode(errors.New("x"), CodeInvalid), CodeInvalid},
		{&RemoteError{Code: CodeUnavailable}, CodeUnavailable},
		{&TransportError{Op: "recv", Err: io.EOF}, CodeUnavailable},
		{context.Canceled, CodeCanceled},
		{context.DeadlineExceeded, CodeDeadlineExceeded},
	}
	for _, tc := range cases {
		if got := ErrorCode(tc.err); got != tc.want {
			t.Errorf("ErrorCode(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

func TestDecodeRemoteErrorBadCode(t *testing.T) {
	re := decodeRemoteError("m", []byte{200, 'h', 'i'})
	if re.Code != CodeUnknown || re.Message != "hi" {
		t.Errorf("decoded = %+v", re)
	}
	if re := decodeRemoteError("m", nil); re.Code != CodeUnknown {
		t.Errorf("empty payload code = %v", re.Code)
	}
}

func TestServerCloseUnblocksHandlers(t *testing.T) {
	s := NewServer()
	entered := make(chan struct{})
	s.Register("block", func(ctx context.Context, p []byte) ([]byte, error) {
		close(entered)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := Dial(addr)
	defer c.Close()
	errCh := make(chan error, 1)
	go func() {
		_, err := c.Call(context.Background(), "block", nil)
		errCh <- err
	}()
	<-entered
	done := make(chan struct{})
	go func() {
		s.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("server Close hung on an in-flight handler")
	}
	if err := <-errCh; err == nil {
		t.Error("call against closed server must fail")
	}
}
