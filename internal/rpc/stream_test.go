package rpc

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
)

func startStreamServer(t *testing.T) (*Server, *Client) {
	t.Helper()
	s := NewServer()
	// Streams n chunks "chunk-0".."chunk-(n-1)" where n = payload[0],
	// then ends with trailer "done".
	s.RegisterStream("count", func(_ context.Context, p []byte, send func([]byte) error) ([]byte, error) {
		n := int(p[0])
		for i := 0; i < n; i++ {
			if err := send([]byte(fmt.Sprintf("chunk-%d", i))); err != nil {
				return nil, err
			}
		}
		return []byte("done"), nil
	})
	// Sends two chunks then fails mid-stream.
	s.RegisterStream("midfail", func(_ context.Context, p []byte, send func([]byte) error) ([]byte, error) {
		send([]byte("a"))
		send([]byte("b"))
		return nil, errors.New("exploded after 2 chunks")
	})
	// Fails before sending anything.
	s.RegisterStream("earlyfail", func(_ context.Context, p []byte, send func([]byte) error) ([]byte, error) {
		return nil, errors.New("refused")
	})
	s.Register("unary", func(_ context.Context, p []byte) ([]byte, error) { return p, nil })
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := Dial(addr)
	t.Cleanup(func() {
		c.Close()
		s.Close()
	})
	return s, c
}

func TestStreamBasic(t *testing.T) {
	_, c := startStreamServer(t)
	st, err := c.Stream(context.Background(), "count", []byte{3})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for {
		chunk, err := st.Recv()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, string(chunk))
	}
	if len(got) != 3 || got[0] != "chunk-0" || got[2] != "chunk-2" {
		t.Errorf("chunks = %v", got)
	}
	if string(st.Trailer()) != "done" {
		t.Errorf("trailer = %q", st.Trailer())
	}
	// Recv after EOF keeps returning EOF.
	if _, err := st.Recv(); err != io.EOF {
		t.Errorf("recv after EOF = %v", err)
	}
}

func TestStreamZeroChunks(t *testing.T) {
	_, c := startStreamServer(t)
	st, err := c.Stream(context.Background(), "count", []byte{0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Recv(); err != io.EOF {
		t.Fatalf("expected immediate EOF, got %v", err)
	}
	if string(st.Trailer()) != "done" {
		t.Errorf("trailer = %q", st.Trailer())
	}
}

func TestStreamErrorMidStream(t *testing.T) {
	_, c := startStreamServer(t)
	st, err := c.Stream(context.Background(), "midfail", nil)
	if err != nil {
		t.Fatal(err)
	}
	var chunks int
	var finalErr error
	for {
		_, err := st.Recv()
		if err != nil {
			finalErr = err
			break
		}
		chunks++
	}
	if chunks != 2 {
		t.Errorf("chunks before failure = %d", chunks)
	}
	var re *RemoteError
	if !errors.As(finalErr, &re) || re.Message != "exploded after 2 chunks" {
		t.Errorf("mid-stream error = %v", finalErr)
	}
	// The stream stays failed.
	if _, err := st.Recv(); !errors.As(err, &re) {
		t.Errorf("recv after failure = %v", err)
	}
}

func TestStreamEarlyError(t *testing.T) {
	_, c := startStreamServer(t)
	st, err := c.Stream(context.Background(), "earlyfail", nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = st.Recv()
	var re *RemoteError
	if !errors.As(err, &re) || re.Message != "refused" {
		t.Errorf("early error = %v", err)
	}
}

func TestStreamUnknownMethod(t *testing.T) {
	_, c := startStreamServer(t)
	st, err := c.Stream(context.Background(), "missing", nil)
	if err != nil {
		t.Fatal(err)
	}
	var re *RemoteError
	if _, err := st.Recv(); !errors.As(err, &re) {
		t.Errorf("unknown stream method = %v", err)
	}
}

func TestStreamConnReuseAfterCleanEnd(t *testing.T) {
	_, c := startStreamServer(t)
	for i := 0; i < 5; i++ {
		st, err := c.Stream(context.Background(), "count", []byte{2})
		if err != nil {
			t.Fatal(err)
		}
		for {
			if _, err := st.Recv(); err == io.EOF {
				break
			} else if err != nil {
				t.Fatal(err)
			}
		}
	}
	c.mu.Lock()
	idle := len(c.idle)
	c.mu.Unlock()
	if idle != 1 {
		t.Errorf("drained streams should reuse one connection, idle=%d", idle)
	}
}

func TestStreamCloseWithoutDrainDiscardsConn(t *testing.T) {
	_, c := startStreamServer(t)
	st, err := c.Stream(context.Background(), "count", []byte{5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Recv(); err != nil {
		t.Fatal(err)
	}
	st.Close()
	c.mu.Lock()
	idle := len(c.idle)
	c.mu.Unlock()
	if idle != 0 {
		t.Errorf("abandoned stream must not pool its connection, idle=%d", idle)
	}
	// The client still works: a fresh connection is dialed.
	if _, err := c.Call(context.Background(), "unary", []byte("x")); err != nil {
		t.Fatal(err)
	}
}

func TestStreamInterleavedWithUnary(t *testing.T) {
	_, c := startStreamServer(t)
	st, err := c.Stream(context.Background(), "count", []byte{4})
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := st.Recv(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	resp, err := c.Call(context.Background(), "unary", []byte("after-stream"))
	if err != nil || string(resp) != "after-stream" {
		t.Errorf("unary after stream = %q, %v", resp, err)
	}
}

func TestStreamMetersPerChunk(t *testing.T) {
	s, c := startStreamServer(t)
	c.Meter.Reset()
	s.Meter.Reset()
	st, err := c.Stream(context.Background(), "count", []byte{10})
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := st.Recv(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	// 10 chunks + end frame: client received bytes for all frames, one
	// completed call.
	if c.Meter.Received() < 10*7 {
		t.Errorf("client received = %d", c.Meter.Received())
	}
	if c.Meter.Calls() != 1 {
		t.Errorf("calls = %d", c.Meter.Calls())
	}
	if s.Meter.Sent() < 10*7 {
		t.Errorf("server sent = %d", s.Meter.Sent())
	}
}

func TestStreamConcurrent(t *testing.T) {
	_, c := startStreamServer(t)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(n byte) {
			defer wg.Done()
			st, err := c.Stream(context.Background(), "count", []byte{n})
			if err != nil {
				errs <- err
				return
			}
			count := 0
			for {
				_, err := st.Recv()
				if err == io.EOF {
					break
				}
				if err != nil {
					errs <- err
					return
				}
				count++
			}
			if count != int(n) {
				errs <- fmt.Errorf("want %d chunks, got %d", n, count)
			}
		}(byte(i % 8))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// fakeStreamServer accepts one connection, reads the request frame and
// writes the given raw bytes, simulating a malformed or dying peer.
func fakeStreamServer(t *testing.T, raw func(conn net.Conn)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		if _, _, _, _, err := readFrame(conn); err != nil {
			return
		}
		raw(conn)
	}()
	return ln.Addr().String()
}

func TestStreamPeerDiesMidStream(t *testing.T) {
	addr := fakeStreamServer(t, func(conn net.Conn) {
		writeFrame(conn, frameChunk, "", []byte("only-chunk"))
		// Close without end frame: the peer died mid-stream.
	})
	c := Dial(addr)
	defer c.Close()
	st, err := c.Stream(context.Background(), "any", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Recv(); err != nil {
		t.Fatal(err)
	}
	_, err = st.Recv()
	if err == nil || err == io.EOF {
		t.Fatalf("dead peer must surface an error, got %v", err)
	}
}

func TestStreamTruncatedChunkFrame(t *testing.T) {
	addr := fakeStreamServer(t, func(conn net.Conn) {
		// Declare a 100-byte frame but send only part of it, then die.
		var hdr [4]byte
		binary.LittleEndian.PutUint32(hdr[:], 100)
		conn.Write(hdr[:])
		conn.Write([]byte{frameChunk, 0, 0, 0, 0, 'x', 'y'})
	})
	c := Dial(addr)
	defer c.Close()
	st, err := c.Stream(context.Background(), "any", nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = st.Recv()
	if err == nil || err == io.EOF {
		t.Fatalf("truncated frame must surface an error, got %v", err)
	}
}

func TestStreamGarbageFrameKind(t *testing.T) {
	addr := fakeStreamServer(t, func(conn net.Conn) {
		writeFrame(conn, 9, "", []byte("wat"))
	})
	c := Dial(addr)
	defer c.Close()
	st, err := c.Stream(context.Background(), "any", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Recv(); err == nil || err == io.EOF {
		t.Fatalf("garbage frame kind must error, got %v", err)
	}
}

func TestServeStreamHandlerSendAfterClientGone(t *testing.T) {
	// A handler that keeps sending after the client hangs up must get a
	// send error and the server must survive.
	s := NewServer()
	sent := make(chan error, 1)
	s.RegisterStream("forever", func(_ context.Context, p []byte, send func([]byte) error) ([]byte, error) {
		payload := bytes.Repeat([]byte{1}, 1<<16)
		for i := 0; ; i++ {
			if err := send(payload); err != nil {
				sent <- err
				return nil, err
			}
		}
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c := Dial(addr)
	st, err := c.Stream(context.Background(), "forever", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Recv(); err != nil {
		t.Fatal(err)
	}
	st.Close()
	c.Close()
	if err := <-sent; err == nil {
		t.Error("handler send to dead client should error")
	}
}
