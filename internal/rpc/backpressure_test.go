package rpc

import (
	"context"
	"errors"
	"io"
	"sync/atomic"
	"testing"
	"time"

	"prestocs/internal/telemetry"
)

// startWindowServer registers a "flood" stream method that sends
// payload[0] chunks, counting successful sends in sent, and returns a
// client wired to a metrics registry.
func startWindowServer(t *testing.T, window int, sent *atomic.Int64) (*Server, *Client, *telemetry.Registry) {
	t.Helper()
	reg := telemetry.NewRegistry()
	s := NewServer()
	s.StreamWindow = window
	s.Metrics = reg
	s.RegisterStream("flood", func(_ context.Context, p []byte, send func([]byte) error) ([]byte, error) {
		n := int(p[0])
		for i := 0; i < n; i++ {
			if err := send(make([]byte, 64)); err != nil {
				return nil, err
			}
			sent.Add(1)
		}
		return []byte("done"), nil
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := Dial(addr)
	t.Cleanup(func() {
		c.Close()
		s.Close()
	})
	return s, c, reg
}

// TestStreamBackpressureWindow verifies the credit window: a producer
// streaming 32 chunks to a client that has not called Recv yet may get at
// most StreamWindow chunks ahead, and catches up as Recv issues credits.
func TestStreamBackpressureWindow(t *testing.T) {
	const window, chunks = 2, 32
	var sent atomic.Int64
	_, c, reg := startWindowServer(t, window, &sent)

	st, err := c.Stream(context.Background(), "flood", []byte{chunks})
	if err != nil {
		t.Fatal(err)
	}
	// Give the producer every chance to run ahead before the first Recv.
	deadline := time.Now().Add(300 * time.Millisecond)
	for time.Now().Before(deadline) {
		if n := sent.Load(); n > window {
			t.Fatalf("producer sent %d chunks with no credits issued; window = %d", n, window)
		}
		time.Sleep(10 * time.Millisecond)
	}
	got := 0
	for {
		_, err := st.Recv()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got++
	}
	if got != chunks {
		t.Fatalf("received %d chunks, want %d", got, chunks)
	}
	if n := sent.Load(); n != chunks {
		t.Fatalf("producer completed %d sends, want %d", n, chunks)
	}
	if v := reg.CounterValue(telemetry.MetricRPCStreamStalls); v == 0 {
		t.Error("expected at least one window stall with an idle client")
	}
	if v := reg.GaugeValue(telemetry.MetricRPCStreamInflight); v != 0 {
		t.Errorf("inflight gauge = %d after clean end, want 0", v)
	}
}

// TestStreamBackpressureKilledClientReleasesProducer kills the client
// connection while the producer is paused on a full window. The producer
// must observe a send error promptly (credits will never arrive) instead
// of waiting forever, and the inflight gauge must drain.
func TestStreamBackpressureKilledClientReleasesProducer(t *testing.T) {
	const window = 1
	var sent atomic.Int64
	done := make(chan error, 1)
	reg := telemetry.NewRegistry()
	s := NewServer()
	s.StreamWindow = window
	s.Metrics = reg
	s.RegisterStream("flood", func(_ context.Context, _ []byte, send func([]byte) error) ([]byte, error) {
		for {
			if err := send(make([]byte, 64)); err != nil {
				done <- err
				return nil, err
			}
			sent.Add(1)
		}
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c := Dial(addr)
	defer c.Close()

	st, err := c.Stream(context.Background(), "flood", []byte{0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Recv(); err != nil {
		t.Fatal(err)
	}
	// Wait until the producer is ahead by the window, then vanish without
	// draining: the credit the producer is waiting on will never come.
	waitUntil(t, time.Second, func() bool { return sent.Load() >= 1 })
	st.Close()

	select {
	case err := <-done:
		if !errors.Is(err, errFlowBroken) && !errors.Is(err, ErrUnavailable) {
			// A raw write error is also acceptable: the race between the
			// window wait and the TCP write noticing the close is fair.
			t.Logf("producer released with: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("producer still blocked 5s after the client connection died")
	}
	waitUntil(t, time.Second, func() bool {
		return reg.GaugeValue(telemetry.MetricRPCStreamInflight) == 0
	})
}

// TestStreamWindowDisabled checks that a negative StreamWindow restores
// the unbounded pre-credit behavior: the producer finishes a large stream
// without waiting for a single credit.
func TestStreamWindowDisabled(t *testing.T) {
	var sent atomic.Int64
	_, c, reg := startWindowServer(t, -1, &sent)

	st, err := c.Stream(context.Background(), "flood", []byte{64})
	if err != nil {
		t.Fatal(err)
	}
	// Producer runs to completion with zero Recv calls.
	waitUntil(t, 2*time.Second, func() bool { return sent.Load() == 64 })
	for {
		if _, err := st.Recv(); err != nil {
			if err != io.EOF {
				t.Fatal(err)
			}
			break
		}
	}
	if v := reg.CounterValue(telemetry.MetricRPCStreamStalls); v != 0 {
		t.Errorf("stalls = %d with flow control disabled, want 0", v)
	}
}

// TestOverloadedCodeRoundTrip checks the new stable code crosses the wire
// and matches ErrOverloaded under errors.Is on the client side.
func TestOverloadedCodeRoundTrip(t *testing.T) {
	s := NewServer()
	s.Register("shed", func(_ context.Context, _ []byte) ([]byte, error) {
		return nil, WithCode(errors.New("admission queue full"), CodeOverloaded)
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c := Dial(addr)
	defer c.Close()
	_, err = c.Call(context.Background(), "shed", nil)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	var re *RemoteError
	if !errors.As(err, &re) || re.Code != CodeOverloaded {
		t.Fatalf("err = %#v, want RemoteError with CodeOverloaded", err)
	}
}

// waitUntil polls cond until it holds or the budget expires.
func waitUntil(t *testing.T, budget time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(budget)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}
