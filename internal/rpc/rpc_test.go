package rpc

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

func startEcho(t *testing.T) (*Server, *Client) {
	t.Helper()
	s := NewServer()
	s.Register("echo", func(_ context.Context, p []byte) ([]byte, error) { return p, nil })
	s.Register("fail", func(_ context.Context, p []byte) ([]byte, error) { return nil, errors.New("boom") })
	s.Register("double", func(_ context.Context, p []byte) ([]byte, error) { return append(p, p...), nil })
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := Dial(addr)
	t.Cleanup(func() {
		c.Close()
		s.Close()
	})
	return s, c
}

func TestUnaryCall(t *testing.T) {
	_, c := startEcho(t)
	resp, err := c.Call(context.Background(), "echo", []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "hello" {
		t.Errorf("resp = %q", resp)
	}
	resp, err = c.Call(context.Background(), "double", []byte("ab"))
	if err != nil || string(resp) != "abab" {
		t.Errorf("double = %q, %v", resp, err)
	}
}

func TestEmptyPayload(t *testing.T) {
	_, c := startEcho(t)
	resp, err := c.Call(context.Background(), "echo", nil)
	if err != nil || len(resp) != 0 {
		t.Errorf("empty echo = %v, %v", resp, err)
	}
}

func TestLargePayload(t *testing.T) {
	_, c := startEcho(t)
	big := bytes.Repeat([]byte{0xAB}, 4<<20)
	resp, err := c.Call(context.Background(), "echo", big)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp, big) {
		t.Error("large payload corrupted")
	}
}

func TestRemoteError(t *testing.T) {
	_, c := startEcho(t)
	_, err := c.Call(context.Background(), "fail", []byte("x"))
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("error type = %T (%v)", err, err)
	}
	if re.Message != "boom" || re.Method != "fail" {
		t.Errorf("remote error = %+v", re)
	}
	if re.Error() == "" {
		t.Error("empty error string")
	}
}

func TestUnknownMethod(t *testing.T) {
	_, c := startEcho(t)
	_, err := c.Call(context.Background(), "nope", nil)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("unknown method error = %v", err)
	}
}

func TestConcurrentCalls(t *testing.T) {
	_, c := startEcho(t)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			msg := []byte(fmt.Sprintf("msg-%d", i))
			resp, err := c.Call(context.Background(), "echo", msg)
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(resp, msg) {
				errs <- fmt.Errorf("mismatch: %q vs %q", resp, msg)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestMeters(t *testing.T) {
	s, c := startEcho(t)
	c.Meter.Reset()
	payload := bytes.Repeat([]byte{1}, 1000)
	if _, err := c.Call(context.Background(), "echo", payload); err != nil {
		t.Fatal(err)
	}
	if c.Meter.Sent() < 1000 || c.Meter.Received() < 1000 {
		t.Errorf("meter: sent=%d received=%d", c.Meter.Sent(), c.Meter.Received())
	}
	if c.Meter.Calls() != 1 {
		t.Errorf("calls = %d", c.Meter.Calls())
	}
	if s.Meter.Received() < 1000 {
		t.Errorf("server meter received = %d", s.Meter.Received())
	}
	c.Meter.Reset()
	if c.Meter.Sent() != 0 || c.Meter.Calls() != 0 {
		t.Error("reset failed")
	}
}

func TestClientAfterClose(t *testing.T) {
	_, c := startEcho(t)
	if _, err := c.Call(context.Background(), "echo", []byte("x")); err != nil {
		t.Fatal(err)
	}
	c.Close()
	if _, err := c.Call(context.Background(), "echo", []byte("x")); !errors.Is(err, ErrShutdown) {
		t.Errorf("call after close = %v", err)
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	s := NewServer()
	if _, err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDialBadAddress(t *testing.T) {
	c := Dial("127.0.0.1:1") // nothing listens on port 1
	if _, err := c.Call(context.Background(), "echo", nil); err == nil {
		t.Error("call to dead address succeeded")
	}
}

func TestConnectionReuse(t *testing.T) {
	_, c := startEcho(t)
	for i := 0; i < 10; i++ {
		if _, err := c.Call(context.Background(), "echo", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	c.mu.Lock()
	idle := len(c.idle)
	c.mu.Unlock()
	if idle != 1 {
		t.Errorf("sequential calls should reuse one connection, idle=%d", idle)
	}
}

func TestRegisterAfterListen(t *testing.T) {
	s := NewServer()
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Register("late", func(_ context.Context, p []byte) ([]byte, error) { return []byte("ok"), nil })
	c := Dial(addr)
	defer c.Close()
	resp, err := c.Call(context.Background(), "late", nil)
	if err != nil || string(resp) != "ok" {
		t.Errorf("late-registered method: %q, %v", resp, err)
	}
}

func BenchmarkUnaryCall(b *testing.B) {
	s := NewServer()
	s.Register("echo", func(_ context.Context, p []byte) ([]byte, error) { return p, nil })
	addr, _ := s.Listen("127.0.0.1:0")
	defer s.Close()
	c := Dial(addr)
	defer c.Close()
	payload := bytes.Repeat([]byte{7}, 4096)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Call(context.Background(), "echo", payload); err != nil {
			b.Fatal(err)
		}
	}
}
