package rpc

import (
	"context"
	"errors"
	"fmt"
)

// Code classifies an error for transport across the wire. Error identity
// (errors.Is) does not survive marshalling, so the error frame carries a
// one-byte code next to the message; clients get it back as
// RemoteError.Code with errors.Is support against the sentinels below.
type Code uint8

const (
	// CodeUnknown is an unclassified server-side error.
	CodeUnknown Code = iota
	// CodeInvalid marks a malformed or semantically invalid request
	// (e.g. a plan that does not unmarshal). Never retryable.
	CodeInvalid
	// CodeNotFound marks a missing object, bucket or method.
	CodeNotFound
	// CodeUnavailable marks a dead or unreachable peer: the canonical
	// retryable condition.
	CodeUnavailable
	// CodeCanceled propagates a context cancellation.
	CodeCanceled
	// CodeDeadlineExceeded propagates a context deadline expiry.
	CodeDeadlineExceeded
	// CodeOverloaded marks load shedding: an admission controller refused
	// the request because the system is past its concurrency or memory
	// budget. Retryable with backoff — the condition heals as queries
	// drain.
	CodeOverloaded

	codeMax
)

func (c Code) String() string {
	switch c {
	case CodeUnknown:
		return "unknown"
	case CodeInvalid:
		return "invalid"
	case CodeNotFound:
		return "not-found"
	case CodeUnavailable:
		return "unavailable"
	case CodeCanceled:
		return "canceled"
	case CodeDeadlineExceeded:
		return "deadline-exceeded"
	case CodeOverloaded:
		return "overloaded"
	default:
		return fmt.Sprintf("code(%d)", uint8(c))
	}
}

// Sentinels for errors.Is matching at call sites. Both RemoteError (the
// decoded wire form) and WithCode wrappers (the server-side form) match
// the sentinel of their code, so callers never string-match messages.
var (
	ErrInvalid     = errors.New("rpc: invalid request")
	ErrNotFound    = errors.New("rpc: not found")
	ErrUnavailable = errors.New("rpc: unavailable")
	// ErrOverloaded is the stable admission-control rejection: the peer
	// (or the local engine) shed the request past its concurrency or
	// memory budget. Callers back off and retry, or surface the rejection.
	ErrOverloaded = errors.New("rpc: overloaded")
)

// ErrFrameTooLarge marks a frame rejected on the send side for exceeding
// the transport's frame-length limit. It carries CodeInvalid (the
// payload will not shrink on retry), so retry policies and the pushdown
// fallback classify it as permanent.
var ErrFrameTooLarge = errors.New("rpc: frame exceeds size limit")

// oversizeError builds the send-side rejection for a frame of frameLen
// bytes. The connection has not been written to and remains usable.
func oversizeError(frameLen int) error {
	return WithCode(fmt.Errorf("%w: frame length %d exceeds limit %d",
		ErrFrameTooLarge, frameLen, maxFrameLimit.Load()), CodeInvalid)
}

// sentinel returns the errors.Is target for a code, nil when none.
func (c Code) sentinel() error {
	switch c {
	case CodeInvalid:
		return ErrInvalid
	case CodeNotFound:
		return ErrNotFound
	case CodeUnavailable:
		return ErrUnavailable
	case CodeCanceled:
		return context.Canceled
	case CodeDeadlineExceeded:
		return context.DeadlineExceeded
	case CodeOverloaded:
		return ErrOverloaded
	}
	return nil
}

// WithCode tags err with a wire code so that, after crossing the RPC
// boundary, the client-side RemoteError matches the code's sentinel.
func WithCode(err error, code Code) error {
	if err == nil {
		return nil
	}
	return &codedError{code: code, err: err}
}

type codedError struct {
	code Code
	err  error
}

func (e *codedError) Error() string { return e.err.Error() }
func (e *codedError) Unwrap() error { return e.err }

func (e *codedError) Is(target error) bool {
	s := e.code.sentinel()
	return s != nil && target == s
}

// ErrorCode derives the wire code for an arbitrary handler error. An
// explicit WithCode wins; a proxied RemoteError keeps its code (so a
// frontend forwarding a node failure preserves classification); local
// transport failures become CodeUnavailable.
func ErrorCode(err error) Code {
	if err == nil {
		return CodeUnknown
	}
	var ce *codedError
	if errors.As(err, &ce) {
		return ce.code
	}
	var re *RemoteError
	if errors.As(err, &re) {
		return re.Code
	}
	var te *TransportError
	if errors.As(err, &te) {
		return CodeUnavailable
	}
	switch {
	case errors.Is(err, context.Canceled):
		return CodeCanceled
	case errors.Is(err, context.DeadlineExceeded):
		return CodeDeadlineExceeded
	case errors.Is(err, ErrNotFound):
		return CodeNotFound
	case errors.Is(err, ErrUnavailable):
		return CodeUnavailable
	case errors.Is(err, ErrInvalid):
		return CodeInvalid
	case errors.Is(err, ErrOverloaded):
		return CodeOverloaded
	}
	return CodeUnknown
}

// TransportError wraps a local connection failure (dial refused, peer
// died mid-call, truncated frame). It matches ErrUnavailable under
// errors.Is, which is what retry policies classify on.
type TransportError struct {
	Method string // RPC method in flight ("" for dial)
	Op     string // "dial", "send" or "recv"
	Err    error
}

func (e *TransportError) Error() string {
	if e.Method == "" {
		return fmt.Sprintf("rpc: %s: %v", e.Op, e.Err)
	}
	return fmt.Sprintf("rpc: %s %s: %v", e.Op, e.Method, e.Err)
}

func (e *TransportError) Unwrap() error { return e.Err }

// Is reports transport failures as ErrUnavailable.
func (e *TransportError) Is(target error) bool { return target == ErrUnavailable }

// RemoteError wraps an error returned by the server, carrying the wire
// code. errors.Is(err, rpc.ErrNotFound) and friends work through it.
type RemoteError struct {
	Method  string
	Code    Code
	Message string
}

func (e *RemoteError) Error() string {
	if e.Code == CodeUnknown {
		return fmt.Sprintf("rpc: remote error from %s: %s", e.Method, e.Message)
	}
	return fmt.Sprintf("rpc: remote error from %s (%s): %s", e.Method, e.Code, e.Message)
}

// Is matches the sentinel of the remote code.
func (e *RemoteError) Is(target error) bool {
	s := e.Code.sentinel()
	return s != nil && target == s
}

// errorPayload encodes an error frame body: one code byte, then the
// message.
func errorPayload(err error) []byte {
	msg := err.Error()
	out := make([]byte, 0, 1+len(msg))
	out = append(out, byte(ErrorCode(err)))
	return append(out, msg...)
}

// decodeRemoteError rebuilds a RemoteError from an error frame body.
func decodeRemoteError(method string, payload []byte) *RemoteError {
	if len(payload) == 0 {
		return &RemoteError{Method: method}
	}
	code := Code(payload[0])
	if code >= codeMax {
		code = CodeUnknown
	}
	return &RemoteError{Method: method, Code: code, Message: string(payload[1:])}
}
