// Package rpc implements the framed TCP RPC transport that stands in for
// gRPC (see DESIGN.md §2). A server registers named methods; a client
// dials and issues unary calls. Every frame that crosses the wire is
// metered, which is how the experiment harness measures data movement
// between the compute and storage layers.
//
// Frame layout (little-endian):
//
//	u32 frameLen | u8 kind | u32 methodLen | method | payload
//
// kind 0 = request, 1 = response-ok, 2 = response-error (payload is one
// code byte followed by the error message), 3 = stream-chunk, 4 =
// stream-end (payload is the stream trailer). A request payload begins
// with a u64 deadline (unix microseconds, 0 = none) that the server
// turns into the handler's context deadline; the caller's payload
// follows. Responses echo an empty method name. A unary call is one
// request frame answered by one ok/error frame; a streaming call is one
// request frame answered by any number of chunk frames terminated by an
// end frame — or by an error frame, which is valid mid-stream and aborts
// the stream. A single TCP connection carries sequential calls; the
// client pools connections for concurrency. Every frame is metered
// individually, so the harness sees streamed bytes as they flow.
//
// Cancellation: Call and Stream take a context. While a call is in
// flight a watchdog goroutine waits on ctx.Done and poisons the
// connection deadline, waking any blocked read/write; the connection is
// then discarded instead of pooled, so a cancelled call can never leak a
// half-drained stream back into the pool.
package rpc

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

const (
	frameRequest  = 0
	frameOK       = 1
	frameError    = 2
	frameChunk    = 3
	frameEnd      = 4
	maxFrameBytes = 1 << 30

	// deadlineSize prefixes every request payload: u64 unix-micro
	// deadline, 0 meaning none.
	deadlineSize = 8
)

// ErrShutdown reports use of a closed client or server.
var ErrShutdown = errors.New("rpc: connection shut down")

// Handler processes one request payload and returns the response payload.
// The context carries the caller's deadline (propagated in the frame
// header) and is cancelled when the server shuts down.
type Handler func(ctx context.Context, payload []byte) ([]byte, error)

// Meter accumulates transport byte counts. Both client and server update
// their own meters; the harness reads the client side as "data movement".
type Meter struct {
	sent, received atomic.Int64
	calls          atomic.Int64
}

// Sent returns total payload bytes sent.
func (m *Meter) Sent() int64 { return m.sent.Load() }

// Received returns total payload bytes received.
func (m *Meter) Received() int64 { return m.received.Load() }

// Calls returns the number of completed calls.
func (m *Meter) Calls() int64 { return m.calls.Load() }

// Reset zeroes the meter.
func (m *Meter) Reset() {
	m.sent.Store(0)
	m.received.Store(0)
	m.calls.Store(0)
}

func writeFrame(w io.Writer, kind byte, method string, payload []byte) (int64, error) {
	frameLen := 1 + 4 + len(method) + len(payload)
	hdr := make([]byte, 0, 9+len(method))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(frameLen))
	hdr = append(hdr, kind)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(method)))
	hdr = append(hdr, method...)
	if _, err := w.Write(hdr); err != nil {
		return 0, err
	}
	if _, err := w.Write(payload); err != nil {
		return 0, err
	}
	return int64(4 + frameLen), nil
}

// writeRequest sends a request frame whose payload is prefixed with the
// caller's deadline so the server can honor it on its side of the wire.
func writeRequest(w io.Writer, method string, deadline time.Time, payload []byte) (int64, error) {
	body := make([]byte, 0, deadlineSize+len(payload))
	var micros uint64
	if !deadline.IsZero() {
		micros = uint64(deadline.UnixMicro())
	}
	body = binary.LittleEndian.AppendUint64(body, micros)
	body = append(body, payload...)
	return writeFrame(w, frameRequest, method, body)
}

// splitRequest strips the deadline prefix from a request payload.
func splitRequest(payload []byte) (time.Time, []byte, error) {
	if len(payload) < deadlineSize {
		return time.Time{}, nil, fmt.Errorf("rpc: request frame missing deadline header")
	}
	micros := binary.LittleEndian.Uint64(payload[:deadlineSize])
	var deadline time.Time
	if micros != 0 {
		deadline = time.UnixMicro(int64(micros))
	}
	return deadline, payload[deadlineSize:], nil
}

func readFrame(r io.Reader) (kind byte, method string, payload []byte, total int64, err error) {
	var lenBuf [4]byte
	if _, err = io.ReadFull(r, lenBuf[:]); err != nil {
		return 0, "", nil, 0, err
	}
	frameLen := binary.LittleEndian.Uint32(lenBuf[:])
	if frameLen < 5 || frameLen > maxFrameBytes {
		return 0, "", nil, 0, fmt.Errorf("rpc: bad frame length %d", frameLen)
	}
	body := make([]byte, frameLen)
	if _, err = io.ReadFull(r, body); err != nil {
		return 0, "", nil, 0, err
	}
	kind = body[0]
	mLen := binary.LittleEndian.Uint32(body[1:5])
	if 5+mLen > frameLen {
		return 0, "", nil, 0, fmt.Errorf("rpc: bad method length %d", mLen)
	}
	method = string(body[5 : 5+mLen])
	payload = body[5+mLen:]
	return kind, method, payload, int64(4 + frameLen), nil
}

// Server dispatches incoming calls to registered handlers.
type Server struct {
	Meter Meter

	mu       sync.RWMutex
	handlers map[string]Handler
	streams  map[string]StreamHandler
	ln       net.Listener
	wg       sync.WaitGroup
	closed   atomic.Bool

	baseCtx    context.Context
	baseCancel context.CancelFunc

	connMu sync.Mutex
	conns  map[net.Conn]bool
}

// NewServer returns an empty server.
func NewServer() *Server {
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		handlers:   make(map[string]Handler),
		streams:    make(map[string]StreamHandler),
		conns:      make(map[net.Conn]bool),
		baseCtx:    ctx,
		baseCancel: cancel,
	}
}

func (s *Server) trackConn(conn net.Conn, add bool) bool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if add {
		if s.closed.Load() {
			return false
		}
		s.conns[conn] = true
		return true
	}
	delete(s.conns, conn)
	return true
}

// Register installs a handler for a method name. Registering after Serve
// has started is safe.
func (s *Server) Register(method string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[method] = h
}

// Listen binds to addr ("127.0.0.1:0" for an ephemeral port) and starts
// serving in background goroutines. It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// requestContext derives the handler context from the server lifetime
// and the deadline carried in the request frame.
func (s *Server) requestContext(deadline time.Time) (context.Context, context.CancelFunc) {
	if !deadline.IsZero() {
		return context.WithDeadline(s.baseCtx, deadline)
	}
	return context.WithCancel(s.baseCtx)
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	if !s.trackConn(conn, true) {
		return // server already closed
	}
	defer s.trackConn(conn, false)
	for {
		kind, method, payload, n, err := readFrame(conn)
		if err != nil {
			return
		}
		s.Meter.received.Add(n)
		if kind != frameRequest {
			return
		}
		deadline, body, err := splitRequest(payload)
		if err != nil {
			return
		}
		s.mu.RLock()
		h, ok := s.handlers[method]
		sh, sok := s.streams[method]
		s.mu.RUnlock()
		ctx, cancel := s.requestContext(deadline)
		if sok {
			usable := s.serveStream(ctx, conn, sh, body)
			cancel()
			if !usable {
				return
			}
			continue
		}
		var respKind byte
		var resp []byte
		if !ok {
			respKind = frameError
			resp = errorPayload(WithCode(fmt.Errorf("unknown method %q", method), CodeNotFound))
		} else if out, herr := h(ctx, body); herr != nil {
			respKind = frameError
			resp = errorPayload(herr)
		} else {
			respKind = frameOK
			resp = out
		}
		cancel()
		sent, err := writeFrame(conn, respKind, "", resp)
		if err != nil {
			return
		}
		s.Meter.sent.Add(sent)
		s.Meter.calls.Add(1)
	}
}

// Close stops the listener, cancels all in-flight handler contexts,
// tears down open connections (including idle pooled ones that would
// otherwise block in a read forever) and waits for serving goroutines to
// exit.
func (s *Server) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	s.baseCancel()
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	s.connMu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.connMu.Unlock()
	s.wg.Wait()
	return err
}

// Client issues unary calls to one server, pooling TCP connections.
type Client struct {
	Meter Meter

	// DialTimeout bounds connection establishment; zero means the
	// context deadline (if any) is the only bound.
	DialTimeout time.Duration

	addr   string
	mu     sync.Mutex
	idle   []net.Conn
	closed bool
}

// Dial creates a client for the server at addr. Connections are created
// lazily.
func Dial(addr string) *Client {
	return &Client{addr: addr}
}

// Addr returns the address this client dials.
func (c *Client) Addr() string { return c.addr }

func (c *Client) getConn(ctx context.Context) (net.Conn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrShutdown
	}
	if n := len(c.idle); n > 0 {
		conn := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return conn, nil
	}
	c.mu.Unlock()
	d := net.Dialer{Timeout: c.DialTimeout}
	conn, err := d.DialContext(ctx, "tcp", c.addr)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, fmt.Errorf("rpc: dial %s: %w", c.addr, ctxErr)
		}
		return nil, &TransportError{Op: "dial", Err: err}
	}
	// A pooled conn may carry a poisoned deadline from a cancelled call;
	// fresh conns are clean, and reused ones are discarded on cancel, so
	// clearing here keeps the invariant explicit.
	conn.SetDeadline(time.Time{})
	return conn, nil
}

func (c *Client) putConn(conn net.Conn) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		conn.Close()
		return
	}
	c.idle = append(c.idle, conn)
}

// IdleConns reports the number of pooled connections; tests use it to
// verify that cancelled calls discard rather than pool their connection.
func (c *Client) IdleConns() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.idle)
}

// watchConn arms a watchdog that poisons conn's deadline when ctx is
// cancelled, waking any blocked read or write. The returned stop
// function disarms the watchdog (idempotent) and reports ctx's error so
// the caller knows whether the connection may have been poisoned.
func watchConn(ctx context.Context, conn net.Conn) func() error {
	done := ctx.Done()
	if done == nil {
		return func() error { return nil }
	}
	stop := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		select {
		case <-done:
			// A deadline in the past fails all pending and future I/O
			// on the conn immediately.
			conn.SetDeadline(time.Unix(1, 0))
		case <-stop:
		}
	}()
	var once sync.Once
	return func() error {
		once.Do(func() {
			close(stop)
			<-finished
		})
		return ctx.Err()
	}
}

// callError maps an I/O failure to either the context's error (when the
// watchdog fired) or a TransportError.
func callError(ctx context.Context, method, op string, err error) error {
	if ctxErr := ctx.Err(); ctxErr != nil {
		return fmt.Errorf("rpc: %s %s: %w", op, method, ctxErr)
	}
	return &TransportError{Method: method, Op: op, Err: err}
}

// Call performs one unary RPC, honoring ctx for dialing, sending and
// awaiting the response. The ctx deadline travels in the frame header so
// the server bounds its handler with the same deadline.
func (c *Client) Call(ctx context.Context, method string, payload []byte) ([]byte, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	conn, err := c.getConn(ctx)
	if err != nil {
		return nil, err
	}
	release := watchConn(ctx, conn)
	deadline, _ := ctx.Deadline()
	sent, err := writeRequest(conn, method, deadline, payload)
	if err != nil {
		release()
		conn.Close()
		return nil, callError(ctx, method, "send", err)
	}
	c.Meter.sent.Add(sent)
	kind, _, resp, n, err := readFrame(conn)
	if err != nil {
		release()
		conn.Close()
		return nil, callError(ctx, method, "recv", err)
	}
	c.Meter.received.Add(n)
	c.Meter.calls.Add(1)
	if release() != nil {
		// The watchdog may have poisoned the deadline after the response
		// landed; the response is good but the conn is not poolable.
		conn.Close()
	} else {
		c.putConn(conn)
	}
	switch kind {
	case frameOK:
		return resp, nil
	case frameError:
		return nil, decodeRemoteError(method, resp)
	default:
		return nil, fmt.Errorf("rpc: unexpected frame kind %d", kind)
	}
}

// Close tears down pooled connections.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	for _, conn := range c.idle {
		conn.Close()
	}
	c.idle = nil
	return nil
}
