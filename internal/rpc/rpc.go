// Package rpc implements the framed TCP RPC transport that stands in for
// gRPC (see DESIGN.md §2). A server registers named methods; a client
// dials and issues unary calls. Every frame that crosses the wire is
// metered, which is how the experiment harness measures data movement
// between the compute and storage layers.
//
// Frame layout (little-endian):
//
//	u32 frameLen | u8 kind | u32 methodLen | method | payload
//
// kind 0 = request, 1 = response-ok, 2 = response-error (payload is the
// error message), 3 = stream-chunk, 4 = stream-end (payload is the
// stream trailer). Responses echo an empty method name. A unary call is
// one request frame answered by one ok/error frame; a streaming call is
// one request frame answered by any number of chunk frames terminated by
// an end frame — or by an error frame, which is valid mid-stream and
// aborts the stream. A single TCP connection carries sequential calls;
// the client pools connections for concurrency. Every frame is metered
// individually, so the harness sees streamed bytes as they flow.
package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
)

const (
	frameRequest  = 0
	frameOK       = 1
	frameError    = 2
	frameChunk    = 3
	frameEnd      = 4
	maxFrameBytes = 1 << 30
)

// ErrShutdown reports use of a closed client or server.
var ErrShutdown = errors.New("rpc: connection shut down")

// RemoteError wraps an error string returned by the server.
type RemoteError struct {
	Method  string
	Message string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("rpc: remote error from %s: %s", e.Method, e.Message)
}

// Handler processes one request payload and returns the response payload.
type Handler func(payload []byte) ([]byte, error)

// Meter accumulates transport byte counts. Both client and server update
// their own meters; the harness reads the client side as "data movement".
type Meter struct {
	sent, received atomic.Int64
	calls          atomic.Int64
}

// Sent returns total payload bytes sent.
func (m *Meter) Sent() int64 { return m.sent.Load() }

// Received returns total payload bytes received.
func (m *Meter) Received() int64 { return m.received.Load() }

// Calls returns the number of completed calls.
func (m *Meter) Calls() int64 { return m.calls.Load() }

// Reset zeroes the meter.
func (m *Meter) Reset() {
	m.sent.Store(0)
	m.received.Store(0)
	m.calls.Store(0)
}

func writeFrame(w io.Writer, kind byte, method string, payload []byte) (int64, error) {
	frameLen := 1 + 4 + len(method) + len(payload)
	hdr := make([]byte, 0, 9+len(method))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(frameLen))
	hdr = append(hdr, kind)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(method)))
	hdr = append(hdr, method...)
	if _, err := w.Write(hdr); err != nil {
		return 0, err
	}
	if _, err := w.Write(payload); err != nil {
		return 0, err
	}
	return int64(4 + frameLen), nil
}

func readFrame(r io.Reader) (kind byte, method string, payload []byte, total int64, err error) {
	var lenBuf [4]byte
	if _, err = io.ReadFull(r, lenBuf[:]); err != nil {
		return 0, "", nil, 0, err
	}
	frameLen := binary.LittleEndian.Uint32(lenBuf[:])
	if frameLen < 5 || frameLen > maxFrameBytes {
		return 0, "", nil, 0, fmt.Errorf("rpc: bad frame length %d", frameLen)
	}
	body := make([]byte, frameLen)
	if _, err = io.ReadFull(r, body); err != nil {
		return 0, "", nil, 0, err
	}
	kind = body[0]
	mLen := binary.LittleEndian.Uint32(body[1:5])
	if 5+mLen > frameLen {
		return 0, "", nil, 0, fmt.Errorf("rpc: bad method length %d", mLen)
	}
	method = string(body[5 : 5+mLen])
	payload = body[5+mLen:]
	return kind, method, payload, int64(4 + frameLen), nil
}

// Server dispatches incoming calls to registered handlers.
type Server struct {
	Meter Meter

	mu       sync.RWMutex
	handlers map[string]Handler
	streams  map[string]StreamHandler
	ln       net.Listener
	wg       sync.WaitGroup
	closed   atomic.Bool

	connMu sync.Mutex
	conns  map[net.Conn]bool
}

// NewServer returns an empty server.
func NewServer() *Server {
	return &Server{
		handlers: make(map[string]Handler),
		streams:  make(map[string]StreamHandler),
		conns:    make(map[net.Conn]bool),
	}
}

func (s *Server) trackConn(conn net.Conn, add bool) bool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if add {
		if s.closed.Load() {
			return false
		}
		s.conns[conn] = true
		return true
	}
	delete(s.conns, conn)
	return true
}

// Register installs a handler for a method name. Registering after Serve
// has started is safe.
func (s *Server) Register(method string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[method] = h
}

// Listen binds to addr ("127.0.0.1:0" for an ephemeral port) and starts
// serving in background goroutines. It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	if !s.trackConn(conn, true) {
		return // server already closed
	}
	defer s.trackConn(conn, false)
	for {
		kind, method, payload, n, err := readFrame(conn)
		if err != nil {
			return
		}
		s.Meter.received.Add(n)
		if kind != frameRequest {
			return
		}
		s.mu.RLock()
		h, ok := s.handlers[method]
		sh, sok := s.streams[method]
		s.mu.RUnlock()
		if sok {
			if !s.serveStream(conn, sh, payload) {
				return
			}
			continue
		}
		var respKind byte
		var resp []byte
		if !ok {
			respKind = frameError
			resp = []byte(fmt.Sprintf("unknown method %q", method))
		} else if out, herr := h(payload); herr != nil {
			respKind = frameError
			resp = []byte(herr.Error())
		} else {
			respKind = frameOK
			resp = out
		}
		sent, err := writeFrame(conn, respKind, "", resp)
		if err != nil {
			return
		}
		s.Meter.sent.Add(sent)
		s.Meter.calls.Add(1)
	}
}

// Close stops the listener, tears down open connections (including idle
// pooled ones that would otherwise block in a read forever) and waits
// for serving goroutines to exit.
func (s *Server) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	s.connMu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.connMu.Unlock()
	s.wg.Wait()
	return err
}

// Client issues unary calls to one server, pooling TCP connections.
type Client struct {
	Meter Meter

	addr   string
	mu     sync.Mutex
	idle   []net.Conn
	closed bool
}

// Dial creates a client for the server at addr. Connections are created
// lazily.
func Dial(addr string) *Client {
	return &Client{addr: addr}
}

func (c *Client) getConn() (net.Conn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrShutdown
	}
	if n := len(c.idle); n > 0 {
		conn := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return conn, nil
	}
	c.mu.Unlock()
	return net.Dial("tcp", c.addr)
}

func (c *Client) putConn(conn net.Conn) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		conn.Close()
		return
	}
	c.idle = append(c.idle, conn)
}

// Call performs one unary RPC.
func (c *Client) Call(method string, payload []byte) ([]byte, error) {
	conn, err := c.getConn()
	if err != nil {
		return nil, err
	}
	sent, err := writeFrame(conn, frameRequest, method, payload)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("rpc: sending %s: %w", method, err)
	}
	c.Meter.sent.Add(sent)
	kind, _, resp, n, err := readFrame(conn)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("rpc: receiving %s response: %w", method, err)
	}
	c.Meter.received.Add(n)
	c.Meter.calls.Add(1)
	c.putConn(conn)
	switch kind {
	case frameOK:
		return resp, nil
	case frameError:
		return nil, &RemoteError{Method: method, Message: string(resp)}
	default:
		return nil, fmt.Errorf("rpc: unexpected frame kind %d", kind)
	}
}

// Close tears down pooled connections.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	for _, conn := range c.idle {
		conn.Close()
	}
	c.idle = nil
	return nil
}
