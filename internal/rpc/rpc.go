// Package rpc implements the framed TCP RPC transport that stands in for
// gRPC (see DESIGN.md §2). A server registers named methods; a client
// dials and issues unary calls. Every frame that crosses the wire is
// metered, which is how the experiment harness measures data movement
// between the compute and storage layers.
//
// Frame layout (little-endian):
//
//	u32 frameLen | u8 kind | u32 methodLen | method | payload
//
// kind 0 = request, 1 = response-ok, 2 = response-error (payload is one
// code byte followed by the error message), 3 = stream-chunk, 4 =
// stream-end (payload is the stream trailer). A request payload begins
// with a fixed header — u64 deadline (unix microseconds, 0 = none), u64
// trace ID and u64 parent span ID (0 = no trace) — that the server turns
// into the handler's context deadline and trace context; the caller's
// payload follows. Chunk and end payloads begin with a u32 server-load
// hint (published by the handler via SetStreamLoad, surfaced by
// ClientStream.Load) followed by the chunk bytes or stream trailer, so
// load feedback piggybacks on data frames instead of costing extra
// round trips. Responses echo an empty method name. A unary call is one
// request frame answered by one ok/error frame; a streaming call is one
// request frame answered by any number of chunk frames terminated by an
// end frame — or by an error frame, which is valid mid-stream and aborts
// the stream. A single TCP connection carries sequential calls; the
// client pools connections for concurrency. Every frame is metered
// individually, so the harness sees streamed bytes as they flow.
//
// Cancellation: Call and Stream take a context. While a call is in
// flight a watchdog goroutine waits on ctx.Done and poisons the
// connection deadline, waking any blocked read/write; the connection is
// then discarded instead of pooled, so a cancelled call can never leak a
// half-drained stream back into the pool.
package rpc

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"prestocs/internal/telemetry"
)

const (
	frameRequest = 0
	frameOK      = 1
	frameError   = 2
	frameChunk   = 3
	frameEnd     = 4
	// frameCredit flows client -> server during a streaming call: one
	// empty credit frame per chunk frame consumed. The server holds at
	// most StreamWindow unacknowledged chunks in flight, so a slow Recv
	// caller pauses the producer instead of ballooning socket buffers
	// and storage-node memory.
	frameCredit   = 5
	maxFrameBytes = 1 << 30

	// reqHeaderSize prefixes every request payload: u64 unix-micro
	// deadline (0 = none), u64 trace ID and u64 parent span ID (0 = no
	// trace).
	reqHeaderSize = 24
)

// maxFrameLimit is the enforced frame-length ceiling, an atomic so tests
// can exercise the oversize path without allocating gigabyte payloads
// (and without racing still-draining server goroutines).
var maxFrameLimit atomic.Uint32

func init() { maxFrameLimit.Store(maxFrameBytes) }

// ErrShutdown reports use of a closed client or server.
var ErrShutdown = errors.New("rpc: connection shut down")

// Handler processes one request payload and returns the response payload.
// The context carries the caller's deadline (propagated in the frame
// header) and is cancelled when the server shuts down.
type Handler func(ctx context.Context, payload []byte) ([]byte, error)

// Meter accumulates transport byte counts. Both client and server update
// their own meters; the harness reads the client side as "data movement".
type Meter struct {
	sent, received atomic.Int64
	calls          atomic.Int64
}

// Sent returns total payload bytes sent.
func (m *Meter) Sent() int64 { return m.sent.Load() }

// Received returns total payload bytes received.
func (m *Meter) Received() int64 { return m.received.Load() }

// Calls returns the number of completed calls.
func (m *Meter) Calls() int64 { return m.calls.Load() }

// Reset zeroes the meter.
func (m *Meter) Reset() {
	m.sent.Store(0)
	m.received.Store(0)
	m.calls.Store(0)
}

// writeFrame ships one frame. Oversized frames are rejected before any
// byte hits the wire — writing a frame the peer's readFrame would refuse
// poisons the connection with a confusing remote "bad frame length", so
// the clear error happens on the sending side and the connection stays
// usable. On partial header or payload writes the bytes actually written
// are still returned, so transport meters never undercount.
func writeFrame(w io.Writer, kind byte, method string, payload []byte) (int64, error) {
	frameLen := 1 + 4 + len(method) + len(payload)
	if uint64(frameLen) > uint64(maxFrameLimit.Load()) {
		return 0, oversizeError(frameLen)
	}
	hdr := make([]byte, 0, 9+len(method))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(frameLen))
	hdr = append(hdr, kind)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(method)))
	hdr = append(hdr, method...)
	n, err := w.Write(hdr)
	if err != nil {
		return int64(n), err
	}
	pn, err := w.Write(payload)
	if err != nil {
		return int64(n + pn), err
	}
	return int64(4 + frameLen), nil
}

// streamLoadSize prefixes every chunk and end frame payload: a u32
// server-load hint the client surfaces via ClientStream.Load.
const streamLoadSize = 4

// writeStreamFrame ships one chunk or end frame, prefixing the payload
// with the u32 load hint without copying the payload (the prefix rides
// in the header buffer; method is always empty on response frames).
func writeStreamFrame(w io.Writer, kind byte, load uint32, payload []byte) (int64, error) {
	frameLen := 1 + 4 + streamLoadSize + len(payload)
	if uint64(frameLen) > uint64(maxFrameLimit.Load()) {
		return 0, oversizeError(frameLen)
	}
	hdr := make([]byte, 0, 9+streamLoadSize)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(frameLen))
	hdr = append(hdr, kind)
	hdr = binary.LittleEndian.AppendUint32(hdr, 0) // empty method
	hdr = binary.LittleEndian.AppendUint32(hdr, load)
	n, err := w.Write(hdr)
	if err != nil {
		return int64(n), err
	}
	pn, err := w.Write(payload)
	if err != nil {
		return int64(n + pn), err
	}
	return int64(4 + frameLen), nil
}

// writeRequest sends a request frame whose payload is prefixed with the
// caller's deadline and trace context so the server can honor both on
// its side of the wire.
func writeRequest(w io.Writer, method string, deadline time.Time, trace telemetry.TraceID, parent telemetry.SpanID, payload []byte) (int64, error) {
	body := make([]byte, 0, reqHeaderSize+len(payload))
	var micros uint64
	if !deadline.IsZero() {
		micros = uint64(deadline.UnixMicro())
	}
	body = binary.LittleEndian.AppendUint64(body, micros)
	body = binary.LittleEndian.AppendUint64(body, uint64(trace))
	body = binary.LittleEndian.AppendUint64(body, uint64(parent))
	body = append(body, payload...)
	return writeFrame(w, frameRequest, method, body)
}

// splitRequest strips the deadline + trace prefix from a request payload.
func splitRequest(payload []byte) (time.Time, telemetry.TraceID, telemetry.SpanID, []byte, error) {
	if len(payload) < reqHeaderSize {
		return time.Time{}, 0, 0, nil, fmt.Errorf("rpc: request frame missing header")
	}
	micros := binary.LittleEndian.Uint64(payload[:8])
	trace := telemetry.TraceID(binary.LittleEndian.Uint64(payload[8:16]))
	parent := telemetry.SpanID(binary.LittleEndian.Uint64(payload[16:24]))
	var deadline time.Time
	if micros != 0 {
		deadline = time.UnixMicro(int64(micros))
	}
	return deadline, trace, parent, payload[reqHeaderSize:], nil
}

// readFrame reads one frame. total reports bytes consumed from r even on
// error, so callers can keep their meters truthful and distinguish "the
// peer vanished before answering" (total == 0) from a mid-frame failure.
func readFrame(r io.Reader) (kind byte, method string, payload []byte, total int64, err error) {
	var lenBuf [4]byte
	n, err := io.ReadFull(r, lenBuf[:])
	if err != nil {
		return 0, "", nil, int64(n), err
	}
	frameLen := binary.LittleEndian.Uint32(lenBuf[:])
	if frameLen < 5 || frameLen > maxFrameLimit.Load() {
		return 0, "", nil, 4, fmt.Errorf("rpc: bad frame length %d", frameLen)
	}
	body := make([]byte, frameLen)
	n, err = io.ReadFull(r, body)
	if err != nil {
		return 0, "", nil, int64(4 + n), err
	}
	kind = body[0]
	mLen := binary.LittleEndian.Uint32(body[1:5])
	if 5+mLen > frameLen {
		return 0, "", nil, int64(4 + frameLen), fmt.Errorf("rpc: bad method length %d", mLen)
	}
	method = string(body[5 : 5+mLen])
	payload = body[5+mLen:]
	return kind, method, payload, int64(4 + frameLen), nil
}

// DefaultStreamWindow is the per-stream chunk credit window when
// Server.StreamWindow is zero: the producer keeps at most this many
// chunks sent-but-unacknowledged before pausing.
const DefaultStreamWindow = 8

// Server dispatches incoming calls to registered handlers.
type Server struct {
	Meter Meter

	// StreamWindow bounds the chunks a streaming handler may have in
	// flight (sent but not yet credited by the client's Recv). Zero
	// selects DefaultStreamWindow; negative disables flow control. Set
	// before Listen.
	StreamWindow int

	// Metrics, when set, receives per-method server latency and byte
	// counts. Set before Listen.
	Metrics *telemetry.Registry
	// Tracer, when set, records a server span for every request that
	// carries trace context in its frame header; the span (and the
	// tracer) ride the handler context so deeper layers extend the
	// caller's trace. Set before Listen.
	Tracer *telemetry.Tracer

	mu       sync.RWMutex
	handlers map[string]Handler
	streams  map[string]StreamHandler
	ln       net.Listener
	wg       sync.WaitGroup
	closed   atomic.Bool

	baseCtx    context.Context
	baseCancel context.CancelFunc

	connMu sync.Mutex
	conns  map[net.Conn]bool
}

// NewServer returns an empty server.
func NewServer() *Server {
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		handlers:   make(map[string]Handler),
		streams:    make(map[string]StreamHandler),
		conns:      make(map[net.Conn]bool),
		baseCtx:    ctx,
		baseCancel: cancel,
	}
}

func (s *Server) trackConn(conn net.Conn, add bool) bool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if add {
		if s.closed.Load() {
			return false
		}
		s.conns[conn] = true
		return true
	}
	delete(s.conns, conn)
	return true
}

// Register installs a handler for a method name. Registering after Serve
// has started is safe.
func (s *Server) Register(method string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[method] = h
}

// Listen binds to addr ("127.0.0.1:0" for an ephemeral port) and starts
// serving in background goroutines. It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// requestContext derives the handler context from the server lifetime
// and the deadline carried in the request frame.
func (s *Server) requestContext(deadline time.Time) (context.Context, context.CancelFunc) {
	if !deadline.IsZero() {
		return context.WithDeadline(s.baseCtx, deadline)
	}
	return context.WithCancel(s.baseCtx)
}

// streamWindow resolves the effective per-stream credit window.
func (s *Server) streamWindow() int {
	switch {
	case s.StreamWindow > 0:
		return s.StreamWindow
	case s.StreamWindow < 0:
		return 0 // flow control disabled
	default:
		return DefaultStreamWindow
	}
}

// serveConn is the per-connection reader loop, and it owns every read on
// conn. Unary calls are served inline (the protocol is sequential, so
// nothing else arrives while a handler runs). A streaming call is served
// in its own goroutine so this loop can keep reading the client's credit
// frames and route them to the stream's flow-control window; the next
// request is not dispatched until the active stream has fully finished.
func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	if !s.trackConn(conn, true) {
		return // server already closed
	}
	defer s.trackConn(conn, false)
	var cur *streamFlow
	defer func() {
		if cur != nil {
			// The conn reader is going away (client gone or server
			// closing): wake a producer blocked on the window and wait for
			// the stream goroutine to let go of the conn.
			cur.breakFlow()
			<-cur.finished
		}
	}()
	for {
		kind, method, payload, n, err := readFrame(conn)
		s.Meter.received.Add(n)
		if err != nil {
			return
		}
		if kind == frameCredit {
			// One chunk consumed by the client's Recv. Credits for an
			// already-finished stream (in flight when the terminal frame
			// crossed them on the wire) are harmless no-ops.
			if cur != nil {
				cur.credit()
			}
			continue
		}
		s.Metrics.Counter(telemetry.MetricRPCServerRecvBytes, "method", method).Add(n)
		if kind != frameRequest {
			return
		}
		if cur != nil {
			// The client's next request orders after our terminal frame on
			// the wire, so this wait is immediate in practice.
			<-cur.finished
			usable := cur.usable
			cur = nil
			if !usable {
				return
			}
		}
		deadline, trace, parent, body, err := splitRequest(payload)
		if err != nil {
			return
		}
		ctx, cancel := s.requestContext(deadline)
		span := s.Tracer.StartRemote(trace, parent, "rpc.server "+method)
		if span != nil {
			ctx = telemetry.WithSpan(telemetry.WithTracer(ctx, s.Tracer), span)
		}
		if s.Metrics != nil {
			ctx = telemetry.WithRegistry(ctx, s.Metrics)
		}
		start := time.Now()
		s.mu.RLock()
		h, ok := s.handlers[method]
		sh, sok := s.streams[method]
		s.mu.RUnlock()
		if sok {
			flow := newStreamFlow(s.streamWindow(),
				s.Metrics.Gauge(telemetry.MetricRPCStreamInflight),
				s.Metrics.Counter(telemetry.MetricRPCStreamStalls))
			cur = flow
			ctx = withStreamLoad(ctx, &flow.load)
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.serveStream(ctx, conn, sh, body, method, flow)
				cancel()
				s.observe(method, start)
				span.End()
			}()
			continue
		}
		var respKind byte
		var resp []byte
		if !ok {
			respKind = frameError
			resp = errorPayload(WithCode(fmt.Errorf("unknown method %q", method), CodeNotFound))
		} else if out, herr := h(ctx, body); herr != nil {
			respKind = frameError
			resp = errorPayload(herr)
			span.Event("error", herr.Error())
		} else {
			respKind = frameOK
			resp = out
		}
		cancel()
		sent, err := writeFrame(conn, respKind, "", resp)
		if err != nil && errors.Is(err, ErrFrameTooLarge) {
			// Nothing hit the wire; tell the client instead of wedging it.
			s.Metrics.Counter(telemetry.MetricRPCOversizeFrames).Inc()
			span.Event("oversize-response", err.Error())
			sent, err = writeFrame(conn, frameError, "", errorPayload(err))
		}
		s.Meter.sent.Add(sent)
		s.observe(method, start)
		span.End()
		if err != nil {
			return
		}
		s.Metrics.Counter(telemetry.MetricRPCServerSentBytes, "method", method).Add(sent)
		s.Meter.calls.Add(1)
	}
}

// observe records one served request's latency.
func (s *Server) observe(method string, start time.Time) {
	s.Metrics.Histogram(telemetry.MetricRPCServerLatency, "method", method).
		ObserveDuration(time.Since(start))
}

// Close stops the listener, cancels all in-flight handler contexts,
// tears down open connections (including idle pooled ones that would
// otherwise block in a read forever) and waits for serving goroutines to
// exit.
func (s *Server) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	s.baseCancel()
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	s.connMu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.connMu.Unlock()
	s.wg.Wait()
	return err
}

// Client issues unary calls to one server, pooling TCP connections.
type Client struct {
	Meter Meter

	// DialTimeout bounds connection establishment; zero means the
	// context deadline (if any) is the only bound.
	DialTimeout time.Duration

	// Metrics, when set, receives per-method call latency and byte
	// counts plus pool dial/discard/redial counters. Set before use.
	Metrics *telemetry.Registry

	addr   string
	mu     sync.Mutex
	idle   []net.Conn
	closed bool
}

// Dial creates a client for the server at addr. Connections are created
// lazily.
func Dial(addr string) *Client {
	return &Client{addr: addr}
}

// Addr returns the address this client dials.
func (c *Client) Addr() string { return c.addr }

// getConn hands out a connection and reports whether it came from the
// idle pool. A pooled connection may have been closed by the peer while
// idle; callers that fail on one before reading any response bytes may
// safely retry once on a fresh connection (fresh == true skips the
// pool). Fresh conns bypass any poisoned deadline; pooled ones have
// theirs cleared here, since a bounded drain may have left a read
// deadline behind.
func (c *Client) getConn(ctx context.Context, fresh bool) (conn net.Conn, pooled bool, err error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, false, ErrShutdown
	}
	if n := len(c.idle); n > 0 && !fresh {
		conn = c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.gaugeIdleLocked()
		c.mu.Unlock()
		conn.SetDeadline(time.Time{})
		return conn, true, nil
	}
	c.mu.Unlock()
	d := net.Dialer{Timeout: c.DialTimeout}
	conn, derr := d.DialContext(ctx, "tcp", c.addr)
	if derr != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, false, fmt.Errorf("rpc: dial %s: %w", c.addr, ctxErr)
		}
		return nil, false, &TransportError{Op: "dial", Err: derr}
	}
	c.Metrics.Counter(telemetry.MetricRPCPoolDials).Inc()
	conn.SetDeadline(time.Time{})
	return conn, false, nil
}

// gaugeIdleLocked publishes the pool depth; callers hold c.mu.
func (c *Client) gaugeIdleLocked() {
	c.Metrics.Gauge(telemetry.MetricRPCPoolIdle).Set(int64(len(c.idle)))
}

func (c *Client) putConn(conn net.Conn) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		conn.Close()
		return
	}
	c.idle = append(c.idle, conn)
	c.gaugeIdleLocked()
}

// discard closes a connection that must not rejoin the pool (poisoned
// deadline, failed mid-call, half-drained stream) and counts it.
func (c *Client) discard(conn net.Conn) {
	conn.Close()
	c.Metrics.Counter(telemetry.MetricRPCPoolDiscards).Inc()
}

// IdleConns reports the number of pooled connections; tests use it to
// verify that cancelled calls discard rather than pool their connection.
func (c *Client) IdleConns() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.idle)
}

// watchConn arms a watchdog that poisons conn's deadline when ctx is
// cancelled, waking any blocked read or write. The returned stop
// function disarms the watchdog (idempotent) and reports ctx's error so
// the caller knows whether the connection may have been poisoned.
func watchConn(ctx context.Context, conn net.Conn) func() error {
	done := ctx.Done()
	if done == nil {
		return func() error { return nil }
	}
	stop := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		select {
		case <-done:
			// A deadline in the past fails all pending and future I/O
			// on the conn immediately.
			conn.SetDeadline(time.Unix(1, 0))
		case <-stop:
		}
	}()
	var once sync.Once
	return func() error {
		once.Do(func() {
			close(stop)
			<-finished
		})
		return ctx.Err()
	}
}

// callError maps an I/O failure to either the context's error (when the
// watchdog fired) or a TransportError.
func callError(ctx context.Context, method, op string, err error) error {
	if ctxErr := ctx.Err(); ctxErr != nil {
		return fmt.Errorf("rpc: %s %s: %w", op, method, ctxErr)
	}
	return &TransportError{Method: method, Op: op, Err: err}
}

// Call performs one unary RPC, honoring ctx for dialing, sending and
// awaiting the response. The ctx deadline and trace context travel in
// the frame header so the server bounds its handler with the same
// deadline and extends the same trace. A stale pooled connection (the
// peer closed it while idle) that fails before any response bytes were
// read is transparently redialed once — the request is not yet
// observable as executed, so the retry is safe even for non-idempotent
// methods.
func (c *Client) Call(ctx context.Context, method string, payload []byte) ([]byte, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ctx, span := telemetry.StartSpan(ctx, "rpc.call "+method)
	defer span.End()
	start := time.Now()
	resp, err := c.callOnce(ctx, method, payload, false)
	if rd, ok := err.(*redialableError); ok {
		span.Event("redial", rd.err.Error())
		c.Metrics.Counter(telemetry.MetricRPCPoolRedials).Inc()
		resp, err = c.callOnce(ctx, method, payload, true)
	}
	if re, ok := err.(*redialableError); ok {
		err = re.err // second attempt exhausted; surface the real failure
	}
	h := c.Metrics.Histogram(telemetry.MetricRPCClientLatency, "method", method)
	h.ObserveDuration(time.Since(start))
	if err != nil {
		span.Event("error", err.Error())
		c.Metrics.Counter(telemetry.MetricRPCClientErrors, "method", method).Inc()
	}
	return resp, err
}

// redialableError wraps a failure on a stale pooled connection that
// happened before any response bytes were read: Call retries exactly
// once on a fresh connection.
type redialableError struct{ err error }

func (e *redialableError) Error() string { return e.err.Error() }
func (e *redialableError) Unwrap() error { return e.err }

// callOnce runs one attempt of a unary call on one connection.
func (c *Client) callOnce(ctx context.Context, method string, payload []byte, fresh bool) ([]byte, error) {
	conn, pooled, err := c.getConn(ctx, fresh)
	if err != nil {
		return nil, err
	}
	release := watchConn(ctx, conn)
	deadline, _ := ctx.Deadline()
	trace, parent := telemetry.Inject(ctx)
	sent, err := writeRequest(conn, method, deadline, trace, parent, payload)
	c.Meter.sent.Add(sent)
	c.Metrics.Counter(telemetry.MetricRPCClientSentBytes, "method", method).Add(sent)
	if err != nil {
		release()
		if errors.Is(err, ErrFrameTooLarge) {
			// Rejected before any byte hit the wire: the conn is clean.
			c.Metrics.Counter(telemetry.MetricRPCOversizeFrames).Inc()
			c.putConn(conn)
			return nil, err
		}
		c.discard(conn)
		err = callError(ctx, method, "send", err)
		if pooled && ctx.Err() == nil {
			return nil, &redialableError{err: err}
		}
		return nil, err
	}
	kind, _, resp, n, err := readFrame(conn)
	c.Meter.received.Add(n)
	c.Metrics.Counter(telemetry.MetricRPCClientRecvBytes, "method", method).Add(n)
	if err != nil {
		release()
		c.discard(conn)
		cerr := callError(ctx, method, "recv", err)
		if n == 0 && pooled && ctx.Err() == nil {
			// The peer hung up without a single response byte: the
			// request was never processed on a live connection.
			return nil, &redialableError{err: cerr}
		}
		return nil, cerr
	}
	c.Meter.calls.Add(1)
	if release() != nil {
		// The watchdog may have poisoned the deadline after the response
		// landed; the response is good but the conn is not poolable.
		c.discard(conn)
	} else {
		c.putConn(conn)
	}
	switch kind {
	case frameOK:
		return resp, nil
	case frameError:
		return nil, decodeRemoteError(method, resp)
	default:
		return nil, fmt.Errorf("rpc: unexpected frame kind %d", kind)
	}
}

// Close tears down pooled connections.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	for _, conn := range c.idle {
		conn.Close()
	}
	c.idle = nil
	return nil
}
