package rpc

import (
	"context"
	"fmt"
	"io"
	"net"
)

// StreamHandler serves one server-streaming call. It receives the request
// payload and a send function that ships one chunk frame to the client.
// Returning nil ends the stream cleanly with the returned trailer payload;
// returning an error aborts the stream with an error frame, which is valid
// even after chunks have been sent. If send itself fails the handler should
// stop and return; the connection is already dead. The context carries the
// caller's deadline and is cancelled on server shutdown; handlers should
// check it between chunks.
type StreamHandler func(ctx context.Context, payload []byte, send func(chunk []byte) error) (trailer []byte, err error)

// RegisterStream installs a streaming handler for a method name. A method
// is either unary or streaming, not both; a streaming registration shadows
// any unary handler with the same name.
func (s *Server) RegisterStream(method string, h StreamHandler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.streams[method] = h
}

// serveStream runs one streaming call on conn. It reports whether the
// connection is still usable for further calls (false once a write failed
// mid-stream, since the client can no longer tell frames apart reliably).
func (s *Server) serveStream(ctx context.Context, conn net.Conn, h StreamHandler, payload []byte) bool {
	sendErr := false
	send := func(chunk []byte) error {
		n, err := writeFrame(conn, frameChunk, "", chunk)
		if err != nil {
			sendErr = true
			return err
		}
		s.Meter.sent.Add(n)
		return nil
	}
	trailer, herr := h(ctx, payload, send)
	if sendErr {
		return false
	}
	kind, resp := byte(frameEnd), trailer
	if herr != nil {
		kind, resp = frameError, errorPayload(herr)
	}
	n, err := writeFrame(conn, kind, "", resp)
	if err != nil {
		return false
	}
	s.Meter.sent.Add(n)
	s.Meter.calls.Add(1)
	return true
}

// ClientStream is the receive side of a server-streaming call. Recv
// returns chunks in order and io.EOF after the end frame; the trailer is
// then available via Trailer. Close releases the connection and is safe
// to call at any point, including after EOF.
type ClientStream struct {
	c       *Client
	ctx     context.Context
	release func() error
	conn    net.Conn
	method  string
	trailer []byte
	done    bool
	err     error
}

// Stream opens a server-streaming call. The returned stream must be
// drained to EOF or Closed, or the underlying connection leaks. The ctx
// governs the whole stream: its deadline travels to the server, and
// cancelling it wakes a blocked Recv and discards the connection.
func (c *Client) Stream(ctx context.Context, method string, payload []byte) (*ClientStream, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	conn, err := c.getConn(ctx)
	if err != nil {
		return nil, err
	}
	release := watchConn(ctx, conn)
	deadline, _ := ctx.Deadline()
	sent, err := writeRequest(conn, method, deadline, payload)
	if err != nil {
		release()
		conn.Close()
		return nil, callError(ctx, method, "send", err)
	}
	c.Meter.sent.Add(sent)
	return &ClientStream{c: c, ctx: ctx, release: release, conn: conn, method: method}, nil
}

// Recv returns the next chunk, io.EOF on clean end of stream, or an error.
// After a non-EOF error the stream is dead.
func (st *ClientStream) Recv() ([]byte, error) {
	if st.done {
		if st.err != nil {
			return nil, st.err
		}
		return nil, io.EOF
	}
	k, _, payload, n, err := readFrame(st.conn)
	if err != nil {
		st.fail(callError(st.ctx, st.method, "recv", err))
		return nil, st.err
	}
	st.c.Meter.received.Add(n)
	switch k {
	case frameChunk:
		return payload, nil
	case frameEnd:
		st.trailer = payload
		st.done = true
		st.c.Meter.calls.Add(1)
		if st.release() != nil {
			// Context fired while the end frame was in flight; the conn
			// deadline may be poisoned, so it cannot rejoin the pool.
			st.conn.Close()
		} else {
			st.c.putConn(st.conn)
		}
		st.conn = nil
		return nil, io.EOF
	case frameError:
		st.fail(decodeRemoteError(st.method, payload))
		return nil, st.err
	default:
		st.fail(fmt.Errorf("rpc: unexpected frame kind %d in %s stream", k, st.method))
		return nil, st.err
	}
}

func (st *ClientStream) fail(err error) {
	st.err = err
	st.done = true
	if st.conn != nil {
		st.release()
		st.conn.Close()
		st.conn = nil
	}
}

// Trailer returns the end-frame payload. Valid only after Recv returned
// io.EOF.
func (st *ClientStream) Trailer() []byte { return st.trailer }

// Close releases the stream. If the stream has not reached a clean end the
// connection is discarded rather than pooled, since unread chunk frames
// may still be in flight.
func (st *ClientStream) Close() error {
	if st.conn != nil {
		st.release()
		st.conn.Close()
		st.conn = nil
	}
	st.done = true
	if st.err == nil {
		st.err = io.EOF
	}
	return nil
}
