package rpc

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"prestocs/internal/telemetry"
)

// StreamHandler serves one server-streaming call. It receives the request
// payload and a send function that ships one chunk frame to the client.
// Returning nil ends the stream cleanly with the returned trailer payload;
// returning an error aborts the stream with an error frame, which is valid
// even after chunks have been sent. If send itself fails the handler should
// stop and return; the connection is already dead (except for oversized
// chunks, which are rejected before touching the wire — returning the send
// error then reaches the client as a clean error frame). The context
// carries the caller's deadline and is cancelled on server shutdown;
// handlers should check it between chunks.
type StreamHandler func(ctx context.Context, payload []byte, send func(chunk []byte) error) (trailer []byte, err error)

// RegisterStream installs a streaming handler for a method name. A method
// is either unary or streaming, not both; a streaming registration shadows
// any unary handler with the same name.
func (s *Server) RegisterStream(method string, h StreamHandler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.streams[method] = h
}

// streamFlow is the flow-control state shared between one streaming
// call's producer goroutine and the per-connection reader that feeds it
// credits. All conn writes for the stream happen in the producer; the
// reader only routes credits in and, on conn death, breaks the flow.
type streamFlow struct {
	window   int // max unacked chunks in flight; 0 = unlimited
	inflight *telemetry.Gauge
	stalls   *telemetry.Counter

	// load is the server-load hint stamped onto every outgoing chunk and
	// end frame. The streaming handler updates it through SetStreamLoad;
	// the producer reads it at frame-write time.
	load atomic.Uint32

	mu    sync.Mutex
	sent  int64
	acked int64
	done  bool

	notify   chan struct{} // cap 1, poked per credit
	broken   chan struct{} // closed when the conn reader dies
	breakOne sync.Once
	finished chan struct{} // closed once the producer is done writing conn
	usable   bool          // read after <-finished: conn good for more calls
}

func newStreamFlow(window int, inflight *telemetry.Gauge, stalls *telemetry.Counter) *streamFlow {
	return &streamFlow{
		window:   window,
		inflight: inflight,
		stalls:   stalls,
		notify:   make(chan struct{}, 1),
		broken:   make(chan struct{}),
		finished: make(chan struct{}),
	}
}

// credit acknowledges one chunk consumed by the client's Recv.
func (f *streamFlow) credit() {
	f.mu.Lock()
	if f.done {
		f.mu.Unlock()
		return
	}
	f.acked++
	f.inflight.Add(-1)
	f.mu.Unlock()
	select {
	case f.notify <- struct{}{}:
	default:
	}
}

// noteSent records one chunk shipped to the client.
func (f *streamFlow) noteSent() {
	f.mu.Lock()
	f.sent++
	f.inflight.Add(1)
	f.mu.Unlock()
}

// saturated reports whether the credit window is full.
func (f *streamFlow) saturated() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.sent-f.acked >= int64(f.window)
}

// errFlowBroken reports that the client connection died while the
// producer was paused on the window; no terminal frame can land.
var errFlowBroken = errors.New("rpc: stream flow broken: client connection lost")

// wait blocks until the window has room, the context fires, or the conn
// reader dies. A ctx error leaves the connection clean (nothing was
// written); errFlowBroken means the conn is already dead.
func (f *streamFlow) wait(ctx context.Context) error {
	if f.window <= 0 {
		return nil
	}
	stalled := false
	for f.saturated() {
		if !stalled {
			stalled = true
			f.stalls.Inc()
		}
		select {
		case <-f.notify:
		case <-f.broken:
			return errFlowBroken
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// breakFlow marks the client connection dead, waking a blocked wait.
func (f *streamFlow) breakFlow() {
	f.breakOne.Do(func() { close(f.broken) })
}

// finish retires the flow: residual unacked chunks leave the inflight
// gauge (their credits may never arrive) and late credits become no-ops.
func (f *streamFlow) finish(usable bool) {
	f.mu.Lock()
	f.done = true
	f.inflight.Add(-(f.sent - f.acked))
	f.mu.Unlock()
	f.usable = usable
	close(f.finished)
}

// streamLoadKey carries the active stream's load word through the
// handler context.
type streamLoadKey struct{}

func withStreamLoad(ctx context.Context, load *atomic.Uint32) context.Context {
	return context.WithValue(ctx, streamLoadKey{}, load)
}

// SetStreamLoad publishes a server-load hint on the current streaming
// call: the value is stamped into every subsequent chunk frame and the
// end frame, so the client observes server-side backlog with zero extra
// round trips or frames. Outside a streaming handler it is a no-op.
func SetStreamLoad(ctx context.Context, load uint32) {
	if w, ok := ctx.Value(streamLoadKey{}).(*atomic.Uint32); ok {
		w.Store(load)
	}
}

// serveStream runs one streaming call's producer side. It always finishes
// flow before returning; flow.usable reports whether the connection can
// carry further calls (false once a write failed mid-stream, since the
// client can no longer tell frames apart reliably). On an unusable conn
// it also closes conn so the reader loop, which may be blocked in
// readFrame, unwedges promptly.
func (s *Server) serveStream(ctx context.Context, conn net.Conn, h StreamHandler, payload []byte, method string, flow *streamFlow) {
	sendErr := false
	sentBytes := s.Metrics.Counter(telemetry.MetricRPCServerSentBytes, "method", method)
	send := func(chunk []byte) error {
		// Backpressure point: with a full credit window the producer
		// pauses here until the client's Recv catches up (or the stream
		// dies), instead of buffering into the socket unboundedly.
		if err := flow.wait(ctx); err != nil {
			if errors.Is(err, errFlowBroken) {
				sendErr = true
			}
			return err
		}
		n, err := writeStreamFrame(conn, frameChunk, flow.load.Load(), chunk)
		s.Meter.sent.Add(n)
		sentBytes.Add(n)
		if err != nil {
			if errors.Is(err, ErrFrameTooLarge) {
				// Nothing hit the wire: the stream can still end with a
				// clean error frame instead of poisoning the connection.
				s.Metrics.Counter(telemetry.MetricRPCOversizeFrames).Inc()
				return err
			}
			sendErr = true
			return err
		}
		flow.noteSent()
		return nil
	}
	trailer, herr := h(ctx, payload, send)
	if sendErr {
		conn.Close()
		flow.finish(false)
		return
	}
	var n int64
	var err error
	if herr != nil {
		n, err = writeFrame(conn, frameError, "", errorPayload(herr))
	} else {
		n, err = writeStreamFrame(conn, frameEnd, flow.load.Load(), trailer)
	}
	s.Meter.sent.Add(n)
	if err != nil {
		conn.Close()
		flow.finish(false)
		return
	}
	sentBytes.Add(n)
	s.Meter.calls.Add(1)
	flow.finish(true)
}

// ClientStream is the receive side of a server-streaming call. Recv
// returns chunks in order and io.EOF after the end frame; the trailer is
// then available via Trailer. Close releases the connection and is safe
// to call at any point, including after EOF.
type ClientStream struct {
	c        *Client
	ctx      context.Context
	release  func() error
	conn     net.Conn
	method   string
	payload  []byte // original request payload, kept for one stale-pool redial
	span     *telemetry.Span
	start    time.Time
	trailer  []byte
	pooled   bool // conn came from the idle pool
	redialed bool // the one redial budget is spent
	gotAny   bool // at least one response frame arrived
	load     uint32
	done     bool
	err      error
}

// Stream opens a server-streaming call. The returned stream must be
// drained to EOF or Closed, or the underlying connection leaks. The ctx
// governs the whole stream: its deadline travels to the server, and
// cancelling it wakes a blocked Recv and discards the connection. Like
// Call, a stale pooled connection that fails before any response bytes
// arrive is redialed once — on open here, or on the first Recv.
func (c *Client) Stream(ctx context.Context, method string, payload []byte) (*ClientStream, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ctx, span := telemetry.StartSpan(ctx, "rpc.stream "+method)
	st := &ClientStream{c: c, ctx: ctx, method: method, payload: payload, span: span, start: time.Now()}
	if err := st.open(false); err != nil {
		if rd, ok := err.(*redialableError); ok {
			span.Event("redial", rd.err.Error())
			c.Metrics.Counter(telemetry.MetricRPCPoolRedials).Inc()
			err = st.open(true)
		}
		if rd, ok := err.(*redialableError); ok {
			err = rd.err
		}
		if err != nil {
			span.Event("error", err.Error())
			span.End()
			st.observeLatency()
			c.Metrics.Counter(telemetry.MetricRPCClientErrors, "method", method).Inc()
			return nil, err
		}
	}
	return st, nil
}

// observeLatency records the stream's whole-call latency, open to
// terminal frame (or failure), in the same per-method histogram unary
// calls use.
func (st *ClientStream) observeLatency() {
	st.c.Metrics.Histogram(telemetry.MetricRPCClientLatency, "method", st.method).
		ObserveDuration(time.Since(st.start))
}

// open establishes one connection and ships the request frame.
func (st *ClientStream) open(fresh bool) error {
	c := st.c
	conn, pooled, err := c.getConn(st.ctx, fresh)
	if err != nil {
		return err
	}
	release := watchConn(st.ctx, conn)
	deadline, _ := st.ctx.Deadline()
	trace, parent := telemetry.Inject(st.ctx)
	sent, err := writeRequest(conn, st.method, deadline, trace, parent, st.payload)
	c.Meter.sent.Add(sent)
	c.Metrics.Counter(telemetry.MetricRPCClientSentBytes, "method", st.method).Add(sent)
	if err != nil {
		release()
		if errors.Is(err, ErrFrameTooLarge) {
			c.Metrics.Counter(telemetry.MetricRPCOversizeFrames).Inc()
			c.putConn(conn)
			return err
		}
		c.discard(conn)
		cerr := callError(st.ctx, st.method, "send", err)
		if pooled && st.ctx.Err() == nil {
			return &redialableError{err: cerr}
		}
		return cerr
	}
	st.conn, st.release, st.pooled = conn, release, pooled
	st.redialed = st.redialed || fresh
	return nil
}

// Recv returns the next chunk, io.EOF on clean end of stream, or an error.
// After a non-EOF error the stream is dead.
func (st *ClientStream) Recv() ([]byte, error) {
	if st.done {
		if st.err != nil {
			return nil, st.err
		}
		return nil, io.EOF
	}
	k, _, payload, n, err := readFrame(st.conn)
	st.c.Meter.received.Add(n)
	st.c.Metrics.Counter(telemetry.MetricRPCClientRecvBytes, "method", st.method).Add(n)
	if err != nil {
		if n == 0 && !st.gotAny && st.pooled && !st.redialed && st.ctx.Err() == nil {
			// The pooled connection was stale: the peer hung up without a
			// single response byte, so the request was never executed.
			// Replay it once on a fresh connection.
			st.release()
			st.c.discard(st.conn)
			st.span.Event("redial", err.Error())
			st.c.Metrics.Counter(telemetry.MetricRPCPoolRedials).Inc()
			if oerr := st.open(true); oerr != nil {
				if rd, ok := oerr.(*redialableError); ok {
					oerr = rd.err
				}
				st.conn = nil
				st.fail(oerr)
				return nil, st.err
			}
			return st.Recv()
		}
		st.fail(callError(st.ctx, st.method, "recv", err))
		return nil, st.err
	}
	st.gotAny = true
	switch k {
	case frameChunk:
		if len(payload) < streamLoadSize {
			st.fail(fmt.Errorf("rpc: chunk frame missing load prefix in %s stream", st.method))
			return nil, st.err
		}
		st.load = binary.LittleEndian.Uint32(payload[:streamLoadSize])
		payload = payload[streamLoadSize:]
		// Flow-control credit: acknowledge the chunk only once it is in
		// hand, which is what makes a slow Recv caller slow the producer.
		// A failed credit write means the conn is dying; the chunk is
		// still good and the next Recv surfaces the failure.
		cn, _ := writeFrame(st.conn, frameCredit, "", nil)
		st.c.Meter.sent.Add(cn)
		st.c.Metrics.Counter(telemetry.MetricRPCClientSentBytes, "method", st.method).Add(cn)
		return payload, nil
	case frameEnd:
		if len(payload) < streamLoadSize {
			st.fail(fmt.Errorf("rpc: end frame missing load prefix in %s stream", st.method))
			return nil, st.err
		}
		st.load = binary.LittleEndian.Uint32(payload[:streamLoadSize])
		payload = payload[streamLoadSize:]
		st.trailer = payload
		st.done = true
		st.c.Meter.calls.Add(1)
		st.span.End()
		st.observeLatency()
		if st.release() != nil {
			// Context fired while the end frame was in flight; the conn
			// deadline may be poisoned, so it cannot rejoin the pool.
			st.c.discard(st.conn)
		} else {
			st.c.putConn(st.conn)
		}
		st.conn = nil
		return nil, io.EOF
	case frameError:
		st.fail(decodeRemoteError(st.method, payload))
		return nil, st.err
	default:
		st.fail(fmt.Errorf("rpc: unexpected frame kind %d in %s stream", k, st.method))
		return nil, st.err
	}
}

func (st *ClientStream) fail(err error) {
	st.err = err
	st.done = true
	st.span.Event("error", err.Error())
	st.span.End()
	st.observeLatency()
	st.c.Metrics.Counter(telemetry.MetricRPCClientErrors, "method", st.method).Inc()
	if st.conn != nil {
		st.release()
		st.c.discard(st.conn)
		st.conn = nil
	}
}

// Trailer returns the end-frame payload. Valid only after Recv returned
// io.EOF.
func (st *ClientStream) Trailer() []byte { return st.trailer }

// Load returns the server-load hint carried by the most recent chunk or
// end frame (zero before the first frame arrives). Servers publish it
// with SetStreamLoad; it piggybacks on data frames, so it is as fresh as
// the stream is active.
func (st *ClientStream) Load() uint32 { return st.load }

// TryDrain attempts to consume the remainder of the stream within the
// given budget so the trailer (and its stats) are not lost on early
// stop. It reads at most maxChunks further chunk frames and spends at
// most timeout blocked on the socket, returning the chunk payload bytes
// it consumed and whether the stream reached its clean end; on false the
// stream is closed and the connection discarded. The common early-stop
// case — a pushed-down LIMIT where the storage node finished right after
// the client stopped reading — completes in one or two reads because the
// end frame is already in the socket buffer.
func (st *ClientStream) TryDrain(maxChunks int, timeout time.Duration) (int64, bool) {
	if st.done {
		return 0, st.err == nil
	}
	if st.conn == nil {
		return 0, false
	}
	// Bound the whole drain; the deadline is cleared when the conn is
	// pooled again (getConn resets deadlines on reuse as well).
	st.conn.SetReadDeadline(time.Now().Add(timeout))
	var drained int64
	for i := 0; i <= maxChunks; i++ {
		chunk, err := st.Recv()
		if err == io.EOF {
			return drained, true
		}
		if err != nil {
			return drained, false
		}
		drained += int64(len(chunk))
	}
	st.Close()
	return drained, false
}

// Close releases the stream. If the stream has not reached a clean end the
// connection is discarded rather than pooled, since unread chunk frames
// may still be in flight.
func (st *ClientStream) Close() error {
	if st.conn != nil {
		st.release()
		st.c.discard(st.conn)
		st.conn = nil
		st.span.Event("closed-early", "")
	}
	if !st.done {
		st.span.End()
		st.observeLatency()
	}
	st.done = true
	if st.err == nil {
		st.err = io.EOF
	}
	return nil
}
