package rpc

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"prestocs/internal/telemetry"
)

// restartServer closes s and binds a fresh echo server on the same
// address, so pooled client connections go stale.
func restartServer(t *testing.T, s *Server, addr string) *Server {
	t.Helper()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := NewServer()
	s2.Register("echo", func(_ context.Context, p []byte) ([]byte, error) { return p, nil })
	if _, err := s2.Listen(addr); err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	t.Cleanup(func() { s2.Close() })
	return s2
}

// TestCallRedialsStalePooledConn is the satellite-a fix: a server restart
// between calls leaves the client holding a dead pooled connection; the
// failure happens before any response bytes, so Call transparently
// redials once and the call succeeds.
func TestCallRedialsStalePooledConn(t *testing.T) {
	s := NewServer()
	s.Register("echo", func(_ context.Context, p []byte) ([]byte, error) { return p, nil })
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := Dial(addr)
	c.Metrics = telemetry.NewRegistry()
	defer c.Close()

	if _, err := c.Call(context.Background(), "echo", []byte("warm")); err != nil {
		t.Fatal(err)
	}
	if c.IdleConns() != 1 {
		t.Fatalf("idle = %d, want 1 pooled conn", c.IdleConns())
	}
	restartServer(t, s, addr)

	resp, err := c.Call(context.Background(), "echo", []byte("after restart"))
	if err != nil {
		t.Fatalf("call after restart: %v", err)
	}
	if string(resp) != "after restart" {
		t.Errorf("resp = %q", resp)
	}
	if got := c.Metrics.CounterValue(telemetry.MetricRPCPoolRedials); got != 1 {
		t.Errorf("redials = %d, want 1", got)
	}
}

// TestCallRedialBudgetIsOne: when the redial target is also dead the
// second failure surfaces as a real transport error, not another retry.
func TestCallRedialBudgetIsOne(t *testing.T) {
	s := NewServer()
	s.Register("echo", func(_ context.Context, p []byte) ([]byte, error) { return p, nil })
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := Dial(addr)
	c.Metrics = telemetry.NewRegistry()
	defer c.Close()
	if _, err := c.Call(context.Background(), "echo", nil); err != nil {
		t.Fatal(err)
	}
	s.Close() // no restart: both the pooled conn and the redial must fail

	if _, err := c.Call(context.Background(), "echo", nil); err == nil {
		t.Fatal("call to dead server succeeded")
	} else if _, ok := err.(*redialableError); ok {
		t.Fatal("redialableError escaped Call")
	}
	if got := c.Metrics.CounterValue(telemetry.MetricRPCPoolRedials); got != 1 {
		t.Errorf("redials = %d, want exactly 1", got)
	}
}

// setFrameLimit shrinks the wire frame ceiling for the test and restores
// it at cleanup, so oversize paths can run without gigabyte payloads.
func setFrameLimit(t *testing.T, limit uint32) {
	t.Helper()
	old := maxFrameLimit.Load()
	maxFrameLimit.Store(limit)
	t.Cleanup(func() { maxFrameLimit.Store(old) })
}

// TestOversizeRequestRejectedSendSide is the satellite-b fix: a request
// frame above the limit errors clearly on the sender before any byte
// hits the wire, and the connection stays pooled and usable.
func TestOversizeRequestRejectedSendSide(t *testing.T) {
	setFrameLimit(t, 256)
	_, c := startEcho(t)
	c.Metrics = telemetry.NewRegistry()
	if _, err := c.Call(context.Background(), "echo", []byte("small")); err != nil {
		t.Fatal(err)
	}
	_, err := c.Call(context.Background(), "echo", bytes.Repeat([]byte{1}, 1024))
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
	if ErrorCode(err) != CodeInvalid {
		t.Errorf("code = %v, want CodeInvalid (never retried)", ErrorCode(err))
	}
	if c.IdleConns() != 1 {
		t.Errorf("idle = %d, want the clean conn back in the pool", c.IdleConns())
	}
	if got := c.Metrics.CounterValue(telemetry.MetricRPCOversizeFrames); got != 1 {
		t.Errorf("oversize frames = %d, want 1", got)
	}
	// The pooled conn is genuinely clean: the next call reuses it.
	if _, err := c.Call(context.Background(), "echo", []byte("still fine")); err != nil {
		t.Fatalf("call after oversize rejection: %v", err)
	}
}

// TestOversizeResponseBecomesRemoteError: a handler response above the
// limit is converted into a clean error frame instead of wedging the
// client, and the connection survives.
func TestOversizeResponseBecomesRemoteError(t *testing.T) {
	setFrameLimit(t, 256)
	s, c := startEcho(t)
	s.Metrics = telemetry.NewRegistry()
	_, err := c.Call(context.Background(), "double", bytes.Repeat([]byte{2}, 200))
	if err == nil {
		t.Fatal("oversize response succeeded")
	}
	var remote *RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("err = %T %v, want RemoteError", err, err)
	}
	if got := s.Metrics.CounterValue(telemetry.MetricRPCOversizeFrames); got != 1 {
		t.Errorf("server oversize frames = %d, want 1", got)
	}
	if _, err := c.Call(context.Background(), "echo", []byte("ok")); err != nil {
		t.Fatalf("call after oversize response: %v", err)
	}
}

// TestTracePropagatesAcrossWire: the trace and parent span IDs travel in
// the request frame header, so the server's span joins the client's
// trace with the rpc.call span as its parent.
func TestTracePropagatesAcrossWire(t *testing.T) {
	s := NewServer()
	s.Tracer = telemetry.NewTracer(0)
	s.Register("echo", func(_ context.Context, p []byte) ([]byte, error) { return p, nil })
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c := Dial(addr)
	defer c.Close()

	tr := telemetry.NewTracer(0)
	ctx := telemetry.WithTracer(context.Background(), tr)
	ctx, root := telemetry.StartSpan(ctx, "root")
	if _, err := c.Call(ctx, "echo", []byte("traced")); err != nil {
		t.Fatal(err)
	}
	root.End()

	var callSpan telemetry.SpanView
	for _, v := range tr.TraceSpans(root.Trace) {
		if v.Name == "rpc.call echo" {
			callSpan = v
		}
	}
	if callSpan.ID == 0 {
		t.Fatal("client tracer has no rpc.call span")
	}
	if callSpan.Parent != root.ID {
		t.Errorf("rpc.call parent = %d, want root %d", callSpan.Parent, root.ID)
	}
	serverSpans := s.Tracer.TraceSpans(root.Trace)
	if len(serverSpans) != 1 {
		t.Fatalf("server recorded %d spans for the trace, want 1", len(serverSpans))
	}
	sv := serverSpans[0]
	if sv.Name != "rpc.server echo" {
		t.Errorf("server span = %q", sv.Name)
	}
	if sv.Parent != callSpan.ID {
		t.Errorf("server span parent = %d, want client call span %d", sv.Parent, callSpan.ID)
	}
	// Without trace context in the request the server starts no span.
	if _, err := c.Call(context.Background(), "echo", []byte("untraced")); err != nil {
		t.Fatal(err)
	}
	if got := s.Tracer.Total(); got != 1 {
		t.Errorf("server span total = %d, want 1 (untraced call must not start one)", got)
	}
}
