// Package analyzer performs semantic analysis: it resolves a parsed
// SELECT statement against the catalog, type-checks every expression and
// produces the logical plan (TableScan → Filter → Project → Aggregate →
// Sort/Limit → Output) that the optimizer and connectors then rewrite.
//
// Two rewrites happen here because they must be engine-wide invariants:
//
//   - AVG decomposition: avg(x) becomes sum(x) and count(x) measures plus
//     a final division projection, so distributed (and pushed-down)
//     aggregation stays exact.
//   - Aggregate-argument projection: when an aggregate's argument is a
//     non-column expression (TPC-H Q1's sum(extendedprice*(1-discount))),
//     a pre-aggregation Project computes it — the "expression projection"
//     operator the paper's Deep Water and TPC-H plans contain.
package analyzer

import (
	"fmt"
	"strings"

	"prestocs/internal/expr"
	"prestocs/internal/plan"
	"prestocs/internal/sqlparser"
	"prestocs/internal/substrait"
	"prestocs/internal/types"
)

// Resolver supplies connector table handles during analysis (implemented
// by the engine's catalog registry).
type Resolver interface {
	// ResolveTable returns the handle for catalog.table. The handle's
	// ScanSchema is the table's full schema at this point.
	ResolveTable(catalog, table string) (plan.TableHandle, error)
}

// Analyze builds a logical plan for the statement. defaultCatalog is used
// for unqualified table names.
func Analyze(stmt *sqlparser.SelectStmt, resolver Resolver, defaultCatalog string) (plan.Node, error) {
	if len(stmt.Joins) > 1 {
		return nil, fmt.Errorf("analyzer: at most one JOIN per query is supported")
	}
	a := &analysis{stmt: stmt}

	resolveRef := func(ref sqlparser.TableRef) (string, *plan.TableScan, error) {
		catalog := ref.Name.Schema
		if catalog == "" {
			catalog = defaultCatalog
		}
		handle, err := resolver.ResolveTable(catalog, ref.Name.Table)
		if err != nil {
			return "", nil, err
		}
		return catalog, &plan.TableScan{Catalog: catalog, Table: ref.Name.Table, Handle: handle}, nil
	}

	_, leftScan, err := resolveRef(stmt.From)
	if err != nil {
		return nil, err
	}
	a.scopes = append(a.scopes, scope{
		alias:  stmt.From.Alias,
		table:  stmt.From.Name.Table,
		schema: leftScan.Handle.ScanSchema(),
		offset: 0,
	})

	var root plan.Node
	if len(stmt.Joins) == 1 {
		_, rightScan, err := resolveRef(stmt.Joins[0].Table)
		if err != nil {
			return nil, err
		}
		a.scopes = append(a.scopes, scope{
			alias:  stmt.Joins[0].Table.Alias,
			table:  stmt.Joins[0].Table.Name.Table,
			schema: rightScan.Handle.ScanSchema(),
			offset: a.scopes[0].schema.Len(),
		})
		a.baseSchema = combineSchemas(a.scopes[0].schema, a.scopes[1].schema)
		root, err = a.buildJoin(leftScan, rightScan)
		if err != nil {
			return nil, err
		}
	} else {
		a.baseSchema = leftScan.Handle.ScanSchema()
		root = leftScan
		// WHERE.
		if stmt.Where != nil {
			cond, err := a.resolveWhere()
			if err != nil {
				return nil, err
			}
			root = &plan.Filter{Input: root, Condition: cond}
		}
	}

	hasAgg := len(stmt.GroupBy) > 0
	for _, item := range stmt.Items {
		if containsAggregate(item.Expr) {
			hasAgg = true
		}
	}

	var outNames []string
	if hasAgg {
		root, outNames, err = a.buildAggregation(root)
		if err != nil {
			return nil, err
		}
	} else {
		root, outNames, err = a.buildProjection(root)
		if err != nil {
			return nil, err
		}
	}

	// ORDER BY against the projected output.
	if len(stmt.OrderBy) > 0 {
		keys, err := a.resolveOrderBy(root.OutputSchema(), outNames)
		if err != nil {
			return nil, err
		}
		root = &plan.Sort{Input: root, Keys: keys}
	}
	if stmt.Limit >= 0 {
		root = &plan.Limit{Input: root, Count: stmt.Limit}
	}
	return &plan.Output{Input: root, Names: outNames}, nil
}

type analysis struct {
	stmt       *sqlparser.SelectStmt
	baseSchema *types.Schema
	// scopes are the FROM-clause tables in source order; with a join the
	// baseSchema is their column concatenation and each scope records its
	// ordinal offset into it.
	scopes []scope
}

// scope is one FROM-clause table visible to name resolution.
type scope struct {
	alias  string // "" when the table was not aliased
	table  string
	schema *types.Schema
	offset int
}

// matches reports whether a qualifier refers to this scope: the alias
// when one was declared, else the table name (standard SQL hides the
// table name behind an alias).
func (s scope) matches(qualifier string) bool {
	if s.alias != "" {
		return strings.EqualFold(s.alias, qualifier)
	}
	return strings.EqualFold(s.table, qualifier)
}

func combineSchemas(l, r *types.Schema) *types.Schema {
	cols := make([]types.Column, 0, l.Len()+r.Len())
	cols = append(cols, l.Columns...)
	cols = append(cols, r.Columns...)
	return types.NewSchema(cols...)
}

// resolveWhere resolves the WHERE clause against the base schema and
// type-checks it to boolean.
func (a *analysis) resolveWhere() (expr.Expr, error) {
	cond, err := a.resolveScalar(a.stmt.Where, a.baseSchema)
	if err != nil {
		return nil, fmt.Errorf("analyzer: WHERE: %w", err)
	}
	cond = expr.FoldConstants(cond)
	if cond.Type() != types.Bool {
		return nil, fmt.Errorf("analyzer: WHERE clause has type %s", cond.Type())
	}
	return cond, nil
}

// buildJoin plans `FROM left JOIN right ON ...` with the WHERE clause
// split by scope: conjuncts touching only one table become a Filter
// directly above that table's scan (so connector pushdown sees them),
// mixed conjuncts filter above the join. The ON clause must be a
// conjunction of equality comparisons between one column from each side.
func (a *analysis) buildJoin(probe, build *plan.TableScan) (plan.Node, error) {
	leftWidth := a.scopes[0].schema.Len()

	// ON: extract positionally-paired equi-keys.
	on, err := a.resolveScalar(a.stmt.Joins[0].On, a.baseSchema)
	if err != nil {
		return nil, fmt.Errorf("analyzer: ON: %w", err)
	}
	var probeKeys, buildKeys []int
	for _, c := range expr.Conjuncts(on) {
		cmp, ok := c.(*expr.Compare)
		if !ok || cmp.Op != expr.Eq {
			return nil, fmt.Errorf("analyzer: ON supports equality conjunctions only, got %s", c)
		}
		l, lok := cmp.L.(*expr.ColumnRef)
		r, rok := cmp.R.(*expr.ColumnRef)
		if !lok || !rok {
			return nil, fmt.Errorf("analyzer: ON keys must be plain columns, got %s", c)
		}
		if r.Index < leftWidth && l.Index >= leftWidth {
			l, r = r, l // normalize to left = probe side
		}
		if l.Index >= leftWidth || r.Index < leftWidth {
			return nil, fmt.Errorf("analyzer: ON must compare one column from each table, got %s", c)
		}
		if l.Kind != r.Kind {
			return nil, fmt.Errorf("analyzer: ON key type mismatch: %s is %s, %s is %s", l.Name, l.Kind, r.Name, r.Kind)
		}
		probeKeys = append(probeKeys, l.Index)
		buildKeys = append(buildKeys, r.Index-leftWidth)
	}

	// WHERE: route each conjunct to the narrowest scope that covers it.
	var probeConj, buildConj, crossConj []expr.Expr
	if a.stmt.Where != nil {
		cond, err := a.resolveWhere()
		if err != nil {
			return nil, err
		}
		buildRemap := make(map[int]int, a.scopes[1].schema.Len())
		for i := 0; i < a.scopes[1].schema.Len(); i++ {
			buildRemap[leftWidth+i] = i
		}
		for _, c := range expr.Conjuncts(cond) {
			refs := expr.ReferencedColumns(c)
			onProbe, onBuild := false, false
			for _, idx := range refs {
				if idx < leftWidth {
					onProbe = true
				} else {
					onBuild = true
				}
			}
			switch {
			case onBuild && !onProbe:
				remapped, err := expr.Remap(c, buildRemap)
				if err != nil {
					return nil, err
				}
				buildConj = append(buildConj, remapped)
			case onProbe && onBuild:
				crossConj = append(crossConj, c)
			default: // probe-only (and constant) conjuncts
				probeConj = append(probeConj, c)
			}
		}
	}

	var probeSide plan.Node = probe
	if p := expr.AndAll(probeConj); p != nil {
		probeSide = &plan.Filter{Input: probeSide, Condition: p}
	}
	var buildSide plan.Node = build
	if p := expr.AndAll(buildConj); p != nil {
		buildSide = &plan.Filter{Input: buildSide, Condition: p}
	}
	var root plan.Node = &plan.Join{
		Probe:     probeSide,
		Build:     buildSide,
		ProbeKeys: probeKeys,
		BuildKeys: buildKeys,
		Strategy:  plan.JoinAuto,
	}
	if p := expr.AndAll(crossConj); p != nil {
		root = &plan.Filter{Input: root, Condition: p}
	}
	return root, nil
}

// buildProjection handles non-aggregate selects.
func (a *analysis) buildProjection(input plan.Node) (plan.Node, []string, error) {
	var exprs []expr.Expr
	var names []string
	for _, item := range a.stmt.Items {
		// `SELECT *` expands to every base-schema column in order.
		if _, isStar := item.Expr.(*sqlparser.Star); isStar {
			for i, c := range a.baseSchema.Columns {
				exprs = append(exprs, expr.Col(i, c.Name, c.Type))
				names = append(names, c.Name)
			}
			continue
		}
		e, err := a.resolveScalar(item.Expr, a.baseSchema)
		if err != nil {
			return nil, nil, err
		}
		exprs = append(exprs, expr.FoldConstants(e))
		names = append(names, itemName(item))
	}
	return &plan.Project{Input: input, Expressions: exprs, Names: names}, names, nil
}

// aggKey dedups measures by function + argument text.
type aggKey struct {
	fn  substrait.AggFunc
	arg string
}

// buildAggregation handles aggregate selects: optional pre-projection,
// single-step Aggregate, then the final projection computing the select
// list (including avg division) over keys+measures.
func (a *analysis) buildAggregation(input plan.Node) (plan.Node, []string, error) {
	// Resolve group keys against the base schema; they must be columns.
	var keyCols []*expr.ColumnRef
	for _, g := range a.stmt.GroupBy {
		e, err := a.resolveScalar(g, a.baseSchema)
		if err != nil {
			return nil, nil, fmt.Errorf("analyzer: GROUP BY: %w", err)
		}
		col, ok := e.(*expr.ColumnRef)
		if !ok {
			return nil, nil, fmt.Errorf("analyzer: GROUP BY supports columns only, got %s", e)
		}
		keyCols = append(keyCols, col)
	}

	// Collect aggregate calls and their argument expressions.
	type pendingAgg struct {
		fn  substrait.AggFunc
		arg expr.Expr // nil for count(*)
	}
	var pending []pendingAgg
	measureOf := map[aggKey]int{} // -> measure index

	addAgg := func(fn substrait.AggFunc, arg expr.Expr) int {
		key := aggKey{fn: fn, arg: ""}
		if arg != nil {
			key.arg = arg.String()
		}
		if idx, ok := measureOf[key]; ok {
			return idx
		}
		idx := len(pending)
		measureOf[key] = idx
		pending = append(pending, pendingAgg{fn: fn, arg: arg})
		return idx
	}

	// First pass over select items: register measures (with avg split
	// into sum+count).
	type itemPlan struct {
		node sqlparser.Node
		name string
	}
	items := make([]itemPlan, len(a.stmt.Items))
	for i, item := range a.stmt.Items {
		items[i] = itemPlan{node: item.Expr, name: itemName(item)}
		if err := a.registerAggs(item.Expr, addAgg); err != nil {
			return nil, nil, err
		}
	}

	// Decide whether a pre-aggregation projection is needed: any measure
	// argument that is not a bare column.
	needsProject := false
	for _, p := range pending {
		if p.arg == nil {
			continue
		}
		if _, ok := p.arg.(*expr.ColumnRef); !ok {
			needsProject = true
		}
	}

	var aggInput plan.Node
	var keys []int
	var measures []substrait.Measure
	if needsProject {
		// Pre-project: group keys first, then one column per measure arg.
		var pexprs []expr.Expr
		var pnames []string
		for _, k := range keyCols {
			pexprs = append(pexprs, k)
			pnames = append(pnames, k.Name)
		}
		for i, p := range pending {
			if p.arg == nil {
				continue
			}
			pexprs = append(pexprs, p.arg)
			pnames = append(pnames, fmt.Sprintf("$arg%d", i))
		}
		aggInput = &plan.Project{Input: input, Expressions: pexprs, Names: pnames}
		for i := range keyCols {
			keys = append(keys, i)
		}
		argPos := len(keyCols)
		for i, p := range pending {
			m := substrait.Measure{Func: p.fn, Arg: -1, Name: fmt.Sprintf("$agg%d", i)}
			if p.arg != nil {
				m.Arg = argPos
				argPos++
			}
			measures = append(measures, m)
		}
	} else {
		aggInput = input
		for _, k := range keyCols {
			keys = append(keys, k.Index)
		}
		for i, p := range pending {
			m := substrait.Measure{Func: p.fn, Arg: -1, Name: fmt.Sprintf("$agg%d", i)}
			if p.arg != nil {
				m.Arg = p.arg.(*expr.ColumnRef).Index
			}
			measures = append(measures, m)
		}
	}
	if len(keys) == 0 && len(measures) == 0 {
		return nil, nil, fmt.Errorf("analyzer: aggregation without keys or measures")
	}
	agg := &plan.Aggregate{Input: aggInput, Keys: keys, Measures: measures, Step: plan.AggSingle}
	aggSchema := agg.OutputSchema()

	// Final projection: rewrite each select item over keys+measures.
	var fexprs []expr.Expr
	var fnames []string
	for _, item := range items {
		e, err := a.rewriteOverAgg(item.node, aggSchema, keyCols, measureOf, len(keyCols))
		if err != nil {
			return nil, nil, err
		}
		fexprs = append(fexprs, e)
		fnames = append(fnames, item.name)
	}
	final := &plan.Project{Input: agg, Expressions: fexprs, Names: fnames}
	return final, fnames, nil
}

// registerAggs walks a select item registering aggregate measures.
func (a *analysis) registerAggs(node sqlparser.Node, addAgg func(substrait.AggFunc, expr.Expr) int) error {
	switch t := node.(type) {
	case *sqlparser.FuncCall:
		fn, ok := aggFuncName(t.Name)
		if !ok {
			return fmt.Errorf("analyzer: unknown function %q", t.Name)
		}
		if len(t.Args) != 1 {
			return fmt.Errorf("analyzer: %s takes one argument", t.Name)
		}
		if _, isStar := t.Args[0].(*sqlparser.Star); isStar {
			if fn != "count" {
				return fmt.Errorf("analyzer: %s(*) is not valid", t.Name)
			}
			addAgg(substrait.AggCountStar, nil)
			return nil
		}
		arg, err := a.resolveScalar(t.Args[0], a.baseSchema)
		if err != nil {
			return err
		}
		arg = expr.FoldConstants(arg)
		if fn == "avg" {
			if !arg.Type().Numeric() {
				return fmt.Errorf("analyzer: avg over %s", arg.Type())
			}
			addAgg(substrait.AggSum, arg)
			addAgg(substrait.AggCount, arg)
			return nil
		}
		if _, err := substrait.AggFunc(fn).ResultKind(arg.Type()); err != nil {
			return err
		}
		addAgg(substrait.AggFunc(fn), arg)
		return nil
	case *sqlparser.Binary:
		if err := a.registerAggs(t.L, addAgg); err != nil {
			return err
		}
		return a.registerAggs(t.R, addAgg)
	case *sqlparser.Unary:
		return a.registerAggs(t.E, addAgg)
	case *sqlparser.CastNode:
		return a.registerAggs(t.E, addAgg)
	default:
		return nil
	}
}

// rewriteOverAgg converts a select-item AST into an expression over the
// aggregate output schema (keys then measures).
func (a *analysis) rewriteOverAgg(node sqlparser.Node, aggSchema *types.Schema, keyCols []*expr.ColumnRef, measureOf map[aggKey]int, numKeys int) (expr.Expr, error) {
	switch t := node.(type) {
	case *sqlparser.FuncCall:
		fn, ok := aggFuncName(t.Name)
		if !ok {
			return nil, fmt.Errorf("analyzer: unknown function %q", t.Name)
		}
		if _, isStar := t.Args[0].(*sqlparser.Star); isStar {
			idx := measureOf[aggKey{fn: substrait.AggCountStar}]
			return colOverAgg(aggSchema, numKeys+idx), nil
		}
		arg, err := a.resolveScalar(t.Args[0], a.baseSchema)
		if err != nil {
			return nil, err
		}
		arg = expr.FoldConstants(arg)
		argText := arg.String()
		if fn == "avg" {
			sumIdx := measureOf[aggKey{fn: substrait.AggSum, arg: argText}]
			cntIdx := measureOf[aggKey{fn: substrait.AggCount, arg: argText}]
			sumCol := colOverAgg(aggSchema, numKeys+sumIdx)
			cntCol := colOverAgg(aggSchema, numKeys+cntIdx)
			// avg = CAST(sum AS DOUBLE) / CAST(count AS DOUBLE).
			return expr.NewArith(expr.Div,
				&expr.Cast{E: sumCol, To: types.Float64},
				&expr.Cast{E: cntCol, To: types.Float64})
		}
		idx, ok := measureOf[aggKey{fn: substrait.AggFunc(fn), arg: argText}]
		if !ok {
			return nil, fmt.Errorf("analyzer: internal: measure %s(%s) not registered", fn, argText)
		}
		return colOverAgg(aggSchema, numKeys+idx), nil
	case *sqlparser.Ident:
		// Match by resolved base-schema ordinal, not by name: with a join
		// in scope, two tables can both have the column and only the
		// qualifier disambiguates which one was grouped on.
		ref, err := a.resolveScalar(t, a.baseSchema)
		if err != nil {
			return nil, err
		}
		col, ok := ref.(*expr.ColumnRef)
		if !ok {
			return nil, fmt.Errorf("analyzer: internal: ident %s resolved to %T", t, ref)
		}
		for i, k := range keyCols {
			if k.Index == col.Index {
				return colOverAgg(aggSchema, i), nil
			}
		}
		return nil, fmt.Errorf("analyzer: column %q must appear in GROUP BY or inside an aggregate", t.String())
	case *sqlparser.Binary:
		l, err := a.rewriteOverAgg(t.L, aggSchema, keyCols, measureOf, numKeys)
		if err != nil {
			return nil, err
		}
		r, err := a.rewriteOverAgg(t.R, aggSchema, keyCols, measureOf, numKeys)
		if err != nil {
			return nil, err
		}
		return combineBinary(t.Op, l, r)
	case *sqlparser.Unary:
		inner, err := a.rewriteOverAgg(t.E, aggSchema, keyCols, measureOf, numKeys)
		if err != nil {
			return nil, err
		}
		return combineUnary(t.Op, inner)
	case *sqlparser.CastNode:
		inner, err := a.rewriteOverAgg(t.E, aggSchema, keyCols, measureOf, numKeys)
		if err != nil {
			return nil, err
		}
		kind, err := types.ParseKind(t.TypeName)
		if err != nil {
			return nil, err
		}
		return &expr.Cast{E: inner, To: kind}, nil
	case *sqlparser.NumberLit, *sqlparser.StringLit, *sqlparser.BoolLit, *sqlparser.NullLit, *sqlparser.DateLit, *sqlparser.IntervalLit:
		return a.resolveScalar(node, types.NewSchema())
	default:
		return nil, fmt.Errorf("analyzer: unsupported expression %T in aggregate select", node)
	}
}

func colOverAgg(schema *types.Schema, ordinal int) *expr.ColumnRef {
	c := schema.Columns[ordinal]
	return expr.Col(ordinal, c.Name, c.Type)
}

// resolveOrderBy maps each ORDER BY expression to an output ordinal: a
// select alias, a select-item name or a bare 1-based position.
func (a *analysis) resolveOrderBy(outSchema *types.Schema, outNames []string) ([]plan.SortKey, error) {
	byName := map[string]int{}
	for i, n := range outNames {
		byName[strings.ToLower(n)] = i
	}
	var keys []plan.SortKey
	for _, item := range a.stmt.OrderBy {
		var ordinal = -1
		switch t := item.Expr.(type) {
		case *sqlparser.Ident:
			// Try the rendered form first so `ORDER BY l.orderkey` matches
			// the unaliased select item "l.orderkey"; fall back to the bare
			// column name for aliases.
			if idx, ok := byName[strings.ToLower(t.String())]; ok {
				ordinal = idx
			} else if idx, ok := byName[strings.ToLower(t.Name)]; ok {
				ordinal = idx
			}
		case *sqlparser.NumberLit:
			var n int
			if _, err := fmt.Sscanf(t.Text, "%d", &n); err == nil && n >= 1 && n <= outSchema.Len() {
				ordinal = n - 1
			}
		}
		if ordinal < 0 {
			return nil, fmt.Errorf("analyzer: ORDER BY %s does not match any output column", item.Expr)
		}
		keys = append(keys, plan.SortKey{Column: ordinal, Descending: item.Desc})
	}
	return keys, nil
}

// resolveScalar converts a non-aggregate AST expression against a schema.
func (a *analysis) resolveScalar(node sqlparser.Node, schema *types.Schema) (expr.Expr, error) {
	switch t := node.(type) {
	case *sqlparser.Ident:
		// Against the base schema, resolution is scope-aware: qualifiers
		// select a FROM-clause table and unqualified names must be
		// unambiguous across them. Derived schemas (aggregate outputs)
		// have a single namespace.
		if schema == a.baseSchema && len(a.scopes) > 0 {
			idx, err := a.resolveInScopes(t)
			if err != nil {
				return nil, err
			}
			return expr.Col(idx, schema.Columns[idx].Name, schema.Columns[idx].Type), nil
		}
		if t.Qualifier != "" {
			return nil, fmt.Errorf("analyzer: qualified column %s not allowed here", t)
		}
		idx := indexIn(schema, t.Name)
		if idx < 0 {
			return nil, fmt.Errorf("analyzer: unknown column %q", t.Name)
		}
		return expr.Col(idx, schema.Columns[idx].Name, schema.Columns[idx].Type), nil
	case *sqlparser.NumberLit:
		if strings.ContainsAny(t.Text, ".eE") {
			v, err := types.ParseValue(t.Text, types.Float64)
			if err != nil {
				return nil, err
			}
			return expr.Lit(v), nil
		}
		v, err := types.ParseValue(t.Text, types.Int64)
		if err != nil {
			return nil, err
		}
		return expr.Lit(v), nil
	case *sqlparser.StringLit:
		return expr.Lit(types.StringValue(t.Value)), nil
	case *sqlparser.BoolLit:
		return expr.Lit(types.BoolValue(t.Value)), nil
	case *sqlparser.NullLit:
		return expr.Lit(types.NullValue(types.Unknown)), nil
	case *sqlparser.DateLit:
		v, err := types.DateFromString(t.Text)
		if err != nil {
			return nil, err
		}
		return expr.Lit(v), nil
	case *sqlparser.IntervalLit:
		// Interval-days participate in date arithmetic as plain integers.
		return expr.Lit(types.IntValue(t.Days)), nil
	case *sqlparser.Binary:
		l, err := a.resolveScalar(t.L, schema)
		if err != nil {
			return nil, err
		}
		r, err := a.resolveScalar(t.R, schema)
		if err != nil {
			return nil, err
		}
		return combineBinary(t.Op, l, r)
	case *sqlparser.Unary:
		inner, err := a.resolveScalar(t.E, schema)
		if err != nil {
			return nil, err
		}
		return combineUnary(t.Op, inner)
	case *sqlparser.BetweenNode:
		e, err := a.resolveScalar(t.E, schema)
		if err != nil {
			return nil, err
		}
		lo, err := a.resolveScalar(t.Lo, schema)
		if err != nil {
			return nil, err
		}
		hi, err := a.resolveScalar(t.Hi, schema)
		if err != nil {
			return nil, err
		}
		b, err := expr.NewBetween(e, lo, hi)
		if err != nil {
			return nil, err
		}
		if t.Negate {
			return expr.NewNot(b)
		}
		return b, nil
	case *sqlparser.IsNullNode:
		e, err := a.resolveScalar(t.E, schema)
		if err != nil {
			return nil, err
		}
		return &expr.IsNull{E: e, Negate: t.Negate}, nil
	case *sqlparser.CastNode:
		e, err := a.resolveScalar(t.E, schema)
		if err != nil {
			return nil, err
		}
		kind, err := types.ParseKind(t.TypeName)
		if err != nil {
			return nil, err
		}
		return &expr.Cast{E: e, To: kind}, nil
	case *sqlparser.FuncCall:
		return nil, fmt.Errorf("analyzer: aggregate %q not allowed here", t.Name)
	case *sqlparser.Star:
		return nil, fmt.Errorf("analyzer: * not allowed here")
	default:
		return nil, fmt.Errorf("analyzer: unsupported expression %T", node)
	}
}

// indexIn finds a column by name, exact match first then
// case-insensitive.
func indexIn(schema *types.Schema, name string) int {
	if idx := schema.IndexOf(name); idx >= 0 {
		return idx
	}
	for i, c := range schema.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// resolveInScopes resolves an identifier against the FROM-clause tables,
// returning its base-schema ordinal.
func (a *analysis) resolveInScopes(id *sqlparser.Ident) (int, error) {
	if id.Qualifier != "" {
		for _, s := range a.scopes {
			if !s.matches(id.Qualifier) {
				continue
			}
			if i := indexIn(s.schema, id.Name); i >= 0 {
				return s.offset + i, nil
			}
			return -1, fmt.Errorf("analyzer: unknown column %q in table %q", id.Name, id.Qualifier)
		}
		return -1, fmt.Errorf("analyzer: unknown table or alias %q", id.Qualifier)
	}
	found, matches := -1, 0
	for _, s := range a.scopes {
		if i := indexIn(s.schema, id.Name); i >= 0 {
			found = s.offset + i
			matches++
		}
	}
	switch {
	case matches > 1:
		return -1, fmt.Errorf("analyzer: column %q is ambiguous; qualify it with a table alias", id.Name)
	case found < 0:
		return -1, fmt.Errorf("analyzer: unknown column %q", id.Name)
	}
	return found, nil
}

func combineBinary(op string, l, r expr.Expr) (expr.Expr, error) {
	switch op {
	case "+":
		return expr.NewArith(expr.Add, l, r)
	case "-":
		return expr.NewArith(expr.Sub, l, r)
	case "*":
		return expr.NewArith(expr.Mul, l, r)
	case "/":
		return expr.NewArith(expr.Div, l, r)
	case "%":
		return expr.NewArith(expr.Mod, l, r)
	case "=":
		return expr.NewCompare(expr.Eq, l, r)
	case "<>":
		return expr.NewCompare(expr.Ne, l, r)
	case "<":
		return expr.NewCompare(expr.Lt, l, r)
	case "<=":
		return expr.NewCompare(expr.Le, l, r)
	case ">":
		return expr.NewCompare(expr.Gt, l, r)
	case ">=":
		return expr.NewCompare(expr.Ge, l, r)
	case "AND":
		return expr.NewLogic(expr.And, l, r)
	case "OR":
		return expr.NewLogic(expr.Or, l, r)
	default:
		return nil, fmt.Errorf("analyzer: unknown operator %q", op)
	}
}

func combineUnary(op string, e expr.Expr) (expr.Expr, error) {
	switch op {
	case "NOT":
		return expr.NewNot(e)
	case "-":
		if e.Type() == types.Float64 {
			return expr.NewArith(expr.Sub, expr.Lit(types.FloatValue(0)), e)
		}
		return expr.NewArith(expr.Sub, expr.Lit(types.IntValue(0)), e)
	default:
		return nil, fmt.Errorf("analyzer: unknown unary %q", op)
	}
}

func containsAggregate(node sqlparser.Node) bool {
	switch t := node.(type) {
	case *sqlparser.FuncCall:
		_, ok := aggFuncName(t.Name)
		return ok
	case *sqlparser.Binary:
		return containsAggregate(t.L) || containsAggregate(t.R)
	case *sqlparser.Unary:
		return containsAggregate(t.E)
	case *sqlparser.BetweenNode:
		return containsAggregate(t.E) || containsAggregate(t.Lo) || containsAggregate(t.Hi)
	case *sqlparser.CastNode:
		return containsAggregate(t.E)
	default:
		return false
	}
}

// aggFuncName recognizes aggregate function names ("avg" included; it is
// decomposed before reaching execution).
func aggFuncName(name string) (string, bool) {
	switch name {
	case "min", "max", "sum", "count", "avg":
		return name, true
	default:
		return "", false
	}
}

func itemName(item sqlparser.SelectItem) string {
	if item.Alias != "" {
		return item.Alias
	}
	return item.Expr.String()
}
