package analyzer

import (
	"fmt"
	"strings"
	"testing"

	"prestocs/internal/expr"
	"prestocs/internal/plan"
	"prestocs/internal/sqlparser"
	"prestocs/internal/types"
)

type stubHandle struct{ schema *types.Schema }

func (h *stubHandle) ConnectorName() string     { return "stub" }
func (h *stubHandle) String() string            { return "stub" }
func (h *stubHandle) ScanSchema() *types.Schema { return h.schema }

type stubResolver struct{ tables map[string]*types.Schema }

func (r *stubResolver) ResolveTable(catalog, table string) (plan.TableHandle, error) {
	s, ok := r.tables[catalog+"."+table]
	if !ok {
		return nil, fmt.Errorf("no table %s.%s", catalog, table)
	}
	return &stubHandle{schema: s}, nil
}

func resolver() *stubResolver {
	lineitem := types.NewSchema(
		types.Column{Name: "quantity", Type: types.Float64},
		types.Column{Name: "extendedprice", Type: types.Float64},
		types.Column{Name: "discount", Type: types.Float64},
		types.Column{Name: "tax", Type: types.Float64},
		types.Column{Name: "returnflag", Type: types.String},
		types.Column{Name: "linestatus", Type: types.String},
		types.Column{Name: "shipdate", Type: types.Date},
	)
	mesh := types.NewSchema(
		types.Column{Name: "vertex_id", Type: types.Int64},
		types.Column{Name: "x", Type: types.Float64},
		types.Column{Name: "e", Type: types.Float64},
	)
	return &stubResolver{tables: map[string]*types.Schema{
		"tpch.lineitem": lineitem,
		"lanl.mesh":     mesh,
	}}
}

func analyze(t *testing.T, sql string) plan.Node {
	t.Helper()
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	root, err := Analyze(stmt, resolver(), "lanl")
	if err != nil {
		t.Fatal(err)
	}
	return root
}

func analyzeErr(t *testing.T, sql string) error {
	t.Helper()
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Analyze(stmt, resolver(), "lanl")
	if err == nil {
		t.Fatalf("Analyze(%q) succeeded", sql)
	}
	return err
}

func TestSimpleProjection(t *testing.T) {
	root := analyze(t, "SELECT x, e FROM mesh WHERE vertex_id > 5")
	text := plan.Format(root)
	for _, frag := range []string{"Output", "Project[x, e]", "Filter[(vertex_id > 5)]", "TableScan"} {
		if !strings.Contains(text, frag) {
			t.Errorf("plan missing %q:\n%s", frag, text)
		}
	}
	if got := root.OutputSchema().String(); got != "(x DOUBLE, e DOUBLE)" {
		t.Errorf("schema = %s", got)
	}
}

func TestAvgDecomposition(t *testing.T) {
	root := analyze(t, "SELECT vertex_id, avg(e) AS m FROM mesh GROUP BY vertex_id")
	var agg *plan.Aggregate
	plan.Walk(root, func(n plan.Node) {
		if a, ok := n.(*plan.Aggregate); ok {
			agg = a
		}
	})
	if agg == nil {
		t.Fatal("no aggregate node")
	}
	// avg(e) must become sum(e) + count(e); no "avg" measure exists.
	if len(agg.Measures) != 2 {
		t.Fatalf("measures = %+v", agg.Measures)
	}
	names := string(agg.Measures[0].Func) + "," + string(agg.Measures[1].Func)
	if names != "sum,count" {
		t.Errorf("measures = %s", names)
	}
	// The final projection computes the division.
	var proj *plan.Project
	plan.Walk(root, func(n plan.Node) {
		if p, ok := n.(*plan.Project); ok && proj == nil {
			proj = p
		}
	})
	if proj == nil || !strings.Contains(proj.Expressions[1].String(), "/") {
		t.Errorf("avg division missing: %v", proj.Expressions)
	}
	if got := root.OutputSchema().String(); got != "(vertex_id BIGINT, m DOUBLE)" {
		t.Errorf("schema = %s", got)
	}
}

func TestSharedAggregateDeduped(t *testing.T) {
	// sum(e) and avg(e) share the sum measure.
	root := analyze(t, "SELECT sum(e) AS s, avg(e) AS a, count(e) AS c FROM mesh")
	var agg *plan.Aggregate
	plan.Walk(root, func(n plan.Node) {
		if a, ok := n.(*plan.Aggregate); ok {
			agg = a
		}
	})
	if len(agg.Measures) != 2 {
		t.Errorf("measures should dedupe to sum+count, got %+v", agg.Measures)
	}
}

func TestPreAggregationProjection(t *testing.T) {
	// Aggregate over an expression requires the pre-projection node
	// (the paper's "expression projection").
	sql := "SELECT returnflag, SUM(extendedprice * (1 - discount)) AS s FROM tpch.lineitem GROUP BY returnflag"
	root := analyze(t, sql)
	text := plan.Format(root)
	// Two projects: pre-agg (expression) and final.
	if strings.Count(text, "Project[") != 2 {
		t.Errorf("expected pre- and post-aggregation projections:\n%s", text)
	}
	var agg *plan.Aggregate
	plan.Walk(root, func(n plan.Node) {
		if a, ok := n.(*plan.Aggregate); ok {
			agg = a
		}
	})
	if _, ok := agg.Input.(*plan.Project); !ok {
		t.Errorf("aggregate input is %T, want pre-projection", agg.Input)
	}
}

func TestNoPreProjectionForPlainColumns(t *testing.T) {
	root := analyze(t, "SELECT vertex_id, min(x) AS m FROM mesh GROUP BY vertex_id")
	var agg *plan.Aggregate
	plan.Walk(root, func(n plan.Node) {
		if a, ok := n.(*plan.Aggregate); ok {
			agg = a
		}
	})
	if _, ok := agg.Input.(*plan.TableScan); !ok {
		t.Errorf("aggregate over plain columns should scan directly, got %T", agg.Input)
	}
}

func TestOrderByAliasAndPosition(t *testing.T) {
	root := analyze(t, "SELECT vertex_id, avg(e) AS m FROM mesh GROUP BY vertex_id ORDER BY m DESC LIMIT 3")
	text := plan.Format(root)
	if !strings.Contains(text, "Sort") || !strings.Contains(text, "Limit[3]") {
		t.Errorf("sort/limit missing:\n%s", text)
	}
	var srt *plan.Sort
	plan.Walk(root, func(n plan.Node) {
		if s, ok := n.(*plan.Sort); ok {
			srt = s
		}
	})
	if srt.Keys[0].Column != 1 || !srt.Keys[0].Descending {
		t.Errorf("sort key = %+v", srt.Keys)
	}
	// Positional ORDER BY 1.
	root = analyze(t, "SELECT x, e FROM mesh ORDER BY 1")
	plan.Walk(root, func(n plan.Node) {
		if s, ok := n.(*plan.Sort); ok {
			srt = s
		}
	})
	if srt.Keys[0].Column != 0 {
		t.Errorf("positional sort key = %+v", srt.Keys)
	}
}

func TestDateIntervalArithmetic(t *testing.T) {
	sql := "SELECT count(*) AS c FROM tpch.lineitem WHERE shipdate <= DATE '1998-12-01' - INTERVAL '90' DAY"
	root := analyze(t, sql)
	var filter *plan.Filter
	plan.Walk(root, func(n plan.Node) {
		if f, ok := n.(*plan.Filter); ok {
			filter = f
		}
	})
	if filter == nil {
		t.Fatal("no filter")
	}
	// Constant folding turns DATE - INTERVAL into a literal.
	cmp, ok := filter.Condition.(*expr.Compare)
	if !ok {
		t.Fatalf("condition = %T", filter.Condition)
	}
	lit, ok := cmp.R.(*expr.Literal)
	if !ok {
		t.Fatalf("rhs = %T (not folded)", cmp.R)
	}
	want, _ := types.DateFromString("1998-09-02")
	if lit.Value.I != want.I {
		t.Errorf("folded date = %v, want %v", lit.Value, want)
	}
}

func TestCaseInsensitiveColumns(t *testing.T) {
	root := analyze(t, "SELECT VERTEX_ID FROM mesh")
	if root.OutputSchema().Columns[0].Name != "VERTEX_ID" {
		// Output name is the item text; resolution must still work.
		t.Logf("schema = %s", root.OutputSchema())
	}
}

func TestDefaultCatalog(t *testing.T) {
	// Unqualified "mesh" resolves via default catalog lanl.
	analyze(t, "SELECT x FROM mesh")
	// Qualified resolves explicitly.
	analyze(t, "SELECT quantity FROM tpch.lineitem")
}

func TestAnalyzerErrors(t *testing.T) {
	cases := []string{
		"SELECT nope FROM mesh",
		"SELECT x FROM nosuch",
		"SELECT x FROM other.mesh",
		"SELECT x FROM mesh WHERE e",                         // non-boolean WHERE
		"SELECT sum(returnflag) AS s FROM tpch.lineitem",     // sum over varchar
		"SELECT x FROM mesh GROUP BY x + 1",                  // non-column group key
		"SELECT x, min(e) AS m FROM mesh GROUP BY vertex_id", // x not grouped
		"SELECT stddev(x) AS s FROM mesh",                    // unknown function
		"SELECT min(x, e) AS m FROM mesh",                    // arity
		"SELECT avg(returnflag) AS a FROM tpch.lineitem",     // avg over varchar
		"SELECT sum(*) AS s FROM mesh",                       // * outside count
		"SELECT x FROM mesh ORDER BY nope",
		"SELECT x FROM mesh WHERE x + 1",   // non-bool predicate
		"SELECT x FROM mesh WHERE x = 'a'", // type mismatch
	}
	for _, sql := range cases {
		analyzeErr(t, sql)
	}
}

func TestCountStarAndGlobalAggregate(t *testing.T) {
	root := analyze(t, "SELECT count(*) AS n, max(e) AS m FROM mesh WHERE x > 1.0")
	var agg *plan.Aggregate
	plan.Walk(root, func(n plan.Node) {
		if a, ok := n.(*plan.Aggregate); ok {
			agg = a
		}
	})
	if len(agg.Keys) != 0 || len(agg.Measures) != 2 {
		t.Errorf("global agg = keys %v measures %+v", agg.Keys, agg.Measures)
	}
	if agg.Measures[0].Func != "count_star" {
		t.Errorf("measure 0 = %v", agg.Measures[0].Func)
	}
}

func TestConstantFoldingInWhere(t *testing.T) {
	root := analyze(t, "SELECT x FROM mesh WHERE x > 1 + 2")
	var filter *plan.Filter
	plan.Walk(root, func(n plan.Node) {
		if f, ok := n.(*plan.Filter); ok {
			filter = f
		}
	})
	if !strings.Contains(filter.Condition.String(), "3") {
		t.Errorf("constant not folded: %s", filter.Condition)
	}
}

func TestBetweenAndLogicalOperators(t *testing.T) {
	root := analyze(t, "SELECT x FROM mesh WHERE x BETWEEN 0.5 AND 1.5 AND NOT e > 10 OR vertex_id = 3")
	var filter *plan.Filter
	plan.Walk(root, func(n plan.Node) {
		if f, ok := n.(*plan.Filter); ok {
			filter = f
		}
	})
	s := filter.Condition.String()
	for _, frag := range []string{"BETWEEN", "NOT", "OR"} {
		if !strings.Contains(s, frag) {
			t.Errorf("condition %q missing %s", s, frag)
		}
	}
}

func TestArithmeticInSelectOverAgg(t *testing.T) {
	// Arithmetic combining aggregates and literals in the select list.
	root := analyze(t, "SELECT sum(e) / count(*) + 1 AS weird FROM mesh")
	if got := root.OutputSchema().String(); got != "(weird DOUBLE)" {
		t.Errorf("schema = %s", got)
	}
}
