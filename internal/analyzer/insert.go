package analyzer

import (
	"fmt"
	"strings"

	"prestocs/internal/column"
	"prestocs/internal/expr"
	"prestocs/internal/sqlparser"
	"prestocs/internal/types"
)

// AnalyzeInsert resolves an INSERT statement's VALUES tuples against the
// target table schema: constant expressions are folded, mapped onto the
// listed columns (unlisted columns become typed NULLs), and each value
// is coerced to its column's declared type. The result is full-width
// rows in schema order, ready for the ingest buffer.
func AnalyzeInsert(stmt *sqlparser.InsertStmt, schema *types.Schema) ([][]types.Value, error) {
	var target []int // VALUES slot → schema ordinal
	if len(stmt.Columns) == 0 {
		target = make([]int, schema.Len())
		for i := range target {
			target[i] = i
		}
	} else {
		seen := make(map[int]bool, len(stmt.Columns))
		for _, name := range stmt.Columns {
			ci := indexIn(schema, name)
			if ci < 0 {
				return nil, fmt.Errorf("analyzer: INSERT column %q not in table schema %s", name, schema)
			}
			if seen[ci] {
				return nil, fmt.Errorf("analyzer: INSERT column %q listed twice", name)
			}
			seen[ci] = true
			target = append(target, ci)
		}
	}

	// Constant folding happens against an empty row: VALUES expressions
	// may not reference columns.
	empty := column.NewPage(types.NewSchema())
	rows := make([][]types.Value, 0, len(stmt.Rows))
	for ri, tuple := range stmt.Rows {
		if len(tuple) != len(target) {
			return nil, fmt.Errorf("analyzer: VALUES tuple %d has %d expressions for %d columns", ri+1, len(tuple), len(target))
		}
		out := make([]types.Value, schema.Len())
		for i, c := range schema.Columns {
			out[i] = types.NullValue(c.Type)
		}
		for j, node := range tuple {
			e, err := resolveConst(node)
			if err != nil {
				return nil, fmt.Errorf("analyzer: VALUES tuple %d: %w", ri+1, err)
			}
			v, err := expr.EvalRow(e, empty, 0)
			if err != nil {
				return nil, fmt.Errorf("analyzer: VALUES tuple %d: %w", ri+1, err)
			}
			col := schema.Columns[target[j]]
			cv, err := types.Coerce(v, col.Type)
			if err != nil {
				return nil, fmt.Errorf("analyzer: VALUES tuple %d, column %q: %w", ri+1, col.Name, err)
			}
			out[target[j]] = cv
		}
		rows = append(rows, out)
	}
	return rows, nil
}

// resolveConst converts a constant AST expression (literals, unary
// minus/NOT, arithmetic over literals, CAST) to an evaluable expr.
// Column references are rejected — INSERT VALUES carries no row scope.
func resolveConst(node sqlparser.Node) (expr.Expr, error) {
	switch t := node.(type) {
	case *sqlparser.NumberLit:
		if strings.ContainsAny(t.Text, ".eE") {
			v, err := types.ParseValue(t.Text, types.Float64)
			if err != nil {
				return nil, err
			}
			return expr.Lit(v), nil
		}
		v, err := types.ParseValue(t.Text, types.Int64)
		if err != nil {
			return nil, err
		}
		return expr.Lit(v), nil
	case *sqlparser.StringLit:
		return expr.Lit(types.StringValue(t.Value)), nil
	case *sqlparser.BoolLit:
		return expr.Lit(types.BoolValue(t.Value)), nil
	case *sqlparser.NullLit:
		return expr.Lit(types.NullValue(types.Unknown)), nil
	case *sqlparser.DateLit:
		v, err := types.DateFromString(t.Text)
		if err != nil {
			return nil, err
		}
		return expr.Lit(v), nil
	case *sqlparser.IntervalLit:
		return expr.Lit(types.IntValue(t.Days)), nil
	case *sqlparser.Unary:
		inner, err := resolveConst(t.E)
		if err != nil {
			return nil, err
		}
		return combineUnary(t.Op, inner)
	case *sqlparser.Binary:
		l, err := resolveConst(t.L)
		if err != nil {
			return nil, err
		}
		r, err := resolveConst(t.R)
		if err != nil {
			return nil, err
		}
		return combineBinary(t.Op, l, r)
	case *sqlparser.CastNode:
		inner, err := resolveConst(t.E)
		if err != nil {
			return nil, err
		}
		kind, err := types.ParseKind(t.TypeName)
		if err != nil {
			return nil, err
		}
		return &expr.Cast{E: inner, To: kind}, nil
	default:
		return nil, fmt.Errorf("non-constant expression %s in VALUES", node)
	}
}
