package workload

import (
	"testing"

	"prestocs/internal/compress"
	"prestocs/internal/metastore"
	"prestocs/internal/parquetlite"
	"prestocs/internal/sqlparser"
	"prestocs/internal/types"
)

func smallCfg() Config {
	return Config{Files: 4, RowsPerFile: 512, Seed: 1}
}

func TestLaghosShape(t *testing.T) {
	d, err := Laghos(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if d.Table.Columns.Len() != 10 {
		t.Errorf("laghos columns = %d, want 10 (paper)", d.Table.Columns.Len())
	}
	if d.Table.RowCount != 4*512 {
		t.Errorf("rows = %d", d.Table.RowCount)
	}
	if len(d.Table.Objects) != 4 || len(d.Objects) != 4 {
		t.Errorf("objects = %d", len(d.Table.Objects))
	}
	// vertex_id is split-disjoint: RowsPerFile/8 vertices per file.
	cs, ok := d.Table.Stats("vertex_id")
	if !ok || cs.NDV != 4*512/8 {
		t.Errorf("vertex_id NDV = %d, want %d", cs.NDV, 4*512/8)
	}
	if len(d.Table.DisjointKeys) != 1 || d.Table.DisjointKeys[0] != "vertex_id" {
		t.Errorf("disjoint keys = %v", d.Table.DisjointKeys)
	}
	// Coordinates span [0,4).
	xs, _ := d.Table.Stats("x")
	if xs.Min.F < 0 || xs.Max.F >= 4.0 {
		t.Errorf("x range = [%v, %v]", xs.Min, xs.Max)
	}
}

func TestLaghosDeterministic(t *testing.T) {
	a, err := Laghos(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Laghos(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	for key := range a.Objects {
		if string(a.Objects[key]) != string(b.Objects[key]) {
			t.Fatalf("object %s differs between runs", key)
		}
	}
	c, err := Laghos(Config{Files: 4, RowsPerFile: 512, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for key := range a.Objects {
		if string(a.Objects[key]) != string(c.Objects[key]) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

func TestLaghosVertexDisjointness(t *testing.T) {
	d, err := Laghos(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int64]string{}
	for key, img := range d.Objects {
		r, err := parquetlite.NewReader(img)
		if err != nil {
			t.Fatal(err)
		}
		pages, err := r.ReadAll([]int{0})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pages {
			for i := 0; i < p.NumRows(); i++ {
				vid := p.Row(i)[0].I
				if owner, ok := seen[vid]; ok && owner != key {
					t.Fatalf("vertex %d appears in both %s and %s", vid, owner, key)
				}
				seen[vid] = key
			}
		}
	}
}

func TestDeepWaterShape(t *testing.T) {
	d, err := DeepWater(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if d.Table.Columns.Len() != 4 {
		t.Errorf("deepwater columns = %d, want 4 (paper)", d.Table.Columns.Len())
	}
	// One timestep per file.
	cs, _ := d.Table.Stats("timestep")
	if cs.NDV != 4 {
		t.Errorf("timestep NDV = %d, want 4", cs.NDV)
	}
	// Filter keep rate ~18% (paper: 5.37/30 GB ≈ 18%).
	var pass, total int
	for _, img := range d.Objects {
		r, _ := parquetlite.NewReader(img)
		pages, _ := r.ReadAll([]int{1})
		for _, p := range pages {
			for i := 0; i < p.NumRows(); i++ {
				total++
				if p.Row(i)[0].F > 0.1 {
					pass++
				}
			}
		}
	}
	rate := float64(pass) / float64(total)
	if rate < 0.14 || rate > 0.22 {
		t.Errorf("v02 > 0.1 keep rate = %v, want ~0.18", rate)
	}
}

func TestTPCHShape(t *testing.T) {
	d, err := TPCH(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	rf, _ := d.Table.Stats("returnflag")
	ls, _ := d.Table.Stats("linestatus")
	if rf.NDV != 3 || ls.NDV != 2 {
		t.Errorf("NDV returnflag=%d linestatus=%d, want 3/2", rf.NDV, ls.NDV)
	}
	// Q1 filter keeps ~96-99% of rows.
	cutoffVal, err := types.DateFromString("1998-09-02")
	if err != nil {
		t.Fatal(err)
	}
	cutoff := cutoffVal.I
	var pass, total int
	for _, img := range d.Objects {
		r, _ := parquetlite.NewReader(img)
		pages, _ := r.ReadAll([]int{7})
		for _, p := range pages {
			for i := 0; i < p.NumRows(); i++ {
				total++
				if p.Row(i)[0].I <= cutoff {
					pass++
				}
			}
		}
	}
	rate := float64(pass) / float64(total)
	if rate < 0.93 || rate > 1.0 {
		t.Errorf("shipdate filter keep rate = %v, want ~0.97", rate)
	}
	if len(d.Table.DisjointKeys) != 0 {
		t.Error("lineitem must not declare disjoint keys")
	}
}

func TestQueriesParse(t *testing.T) {
	for _, q := range []string{LaghosQuery, DeepWaterQuery, TPCHQuery} {
		if _, err := sqlparser.Parse(q); err != nil {
			t.Errorf("query %q does not parse: %v", q, err)
		}
	}
}

func TestRegister(t *testing.T) {
	d, err := DeepWater(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	ms := metastore.New()
	if err := d.Register(ms, "ocs"); err != nil {
		t.Fatal(err)
	}
	tbl, err := ms.Get("ocs", "deepwater")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Schema != "ocs" {
		t.Errorf("catalog = %s", tbl.Schema)
	}
	// Registration must not mutate the dataset's own table.
	if d.Table.Schema != "default" {
		t.Error("Register mutated source table")
	}
}

func TestCompressionRatios(t *testing.T) {
	sizes := map[compress.Codec]int64{}
	for _, codec := range compress.Codecs() {
		d, err := DeepWater(Config{Files: 2, RowsPerFile: 4096, Seed: 3, Codec: codec})
		if err != nil {
			t.Fatal(err)
		}
		sizes[codec] = d.Table.TotalBytes
	}
	if !(sizes[compress.Zstd] <= sizes[compress.Gzip] &&
		sizes[compress.Gzip] < sizes[compress.None] &&
		sizes[compress.Snappy] < sizes[compress.None]) {
		t.Errorf("codec size ordering wrong: %v", sizes)
	}
}
