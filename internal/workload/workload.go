// Package workload generates the evaluation datasets and queries: a
// Laghos-like fluid-dynamics mesh, a Deep Water Impact-like timestep
// series and TPC-H lineitem for Q1 (DESIGN.md §2 documents how each
// substitution preserves the paper workload's behaviour — schemas,
// per-operator reduction ratios and group cardinalities match; absolute
// sizes are scaled down).
//
// Every generator is deterministic in its seed, computes exact column
// statistics (including NDV) for the metastore, and marks split-disjoint
// key columns (vertex_id for Laghos, timestep for Deep Water) that make
// per-object aggregation complete.
package workload

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"prestocs/internal/column"
	"prestocs/internal/compress"
	"prestocs/internal/ingest"
	"prestocs/internal/metastore"
	"prestocs/internal/objstore"
	"prestocs/internal/ocsserver"
	"prestocs/internal/parquetlite"
	"prestocs/internal/types"
)

// Config scales a generated dataset.
type Config struct {
	// Files is the object count (paper: 256 Laghos, 64 Deep Water).
	Files int
	// RowsPerFile scales volume (paper: 4.19M Laghos, 27M Deep Water).
	RowsPerFile int
	// Codec compresses column chunks.
	Codec compress.Codec
	// RowGroupSize caps rows per row group (default 4096).
	RowGroupSize int
	// Seed makes generation deterministic.
	Seed int64
}

// quantize rounds v to 1/res steps; simulation outputs carry limited
// effective precision, which is what makes them compressible.
func quantize(v, res float64) float64 { return math.Round(v*res) / res }

func (c Config) normalize(defFiles, defRows int) Config {
	if c.Files <= 0 {
		c.Files = defFiles
	}
	if c.RowsPerFile <= 0 {
		c.RowsPerFile = defRows
	}
	if c.RowGroupSize <= 0 {
		c.RowGroupSize = 4096
	}
	return c
}

// Dataset is a generated table: object images plus catalog metadata and
// the paper's query over it.
type Dataset struct {
	Name    string
	Table   *metastore.Table
	Objects map[string][]byte
	// Query is the paper's analytical query (Table 2), with FROM <Name>.
	Query string
	// TotalRawBytes is the uncompressed data volume (for reporting).
	TotalRawBytes int64
}

// Register installs the table under the given catalog name, through
// the ingest path's registration helper (the vet-ingest gate bans
// assembling catalog entries anywhere else).
func (d *Dataset) Register(ms *metastore.Metastore, catalog string) error {
	t := *d.Table
	t.Schema = catalog
	return ingest.RegisterTable(ms, &t)
}

// UploadOCS stores every object through an OCS frontend.
func (d *Dataset) UploadOCS(ctx context.Context, cli *ocsserver.Client) error {
	for _, key := range d.Table.Objects {
		if err := cli.Put(ctx, d.Table.Bucket, key, d.Objects[key]); err != nil {
			return err
		}
	}
	return nil
}

// UploadObjStore stores every object in a plain object store.
func (d *Dataset) UploadObjStore(ctx context.Context, cli *objstore.Client) error {
	for _, key := range d.Table.Objects {
		if err := cli.Put(ctx, d.Table.Bucket, key, d.Objects[key]); err != nil {
			return err
		}
	}
	return nil
}

// build writes pages per file through the ingest writer path (one
// writer implementation for generators, INSERT and compaction: object
// images, footer stats and zone maps all come from ingest.ObjectBuilder)
// and assembles the dataset with exact table-level NDV from the merged
// per-file distinct sets.
func build(name, bucket string, cfg Config, schema *types.Schema,
	genFile func(file int, p *column.Page), disjoint []string, query string) (*Dataset, error) {

	d := &Dataset{
		Name:    name,
		Objects: make(map[string][]byte, cfg.Files),
		Query:   query,
	}
	ndv := make([]map[string]bool, schema.Len())
	for i := range ndv {
		ndv[i] = make(map[string]bool)
	}
	var keys []string
	var sealed []ingest.SealedObject
	for f := 0; f < cfg.Files; f++ {
		page := column.NewPage(schema)
		genFile(f, page)
		d.TotalRawBytes += page.ByteSize()
		b := ingest.NewObjectBuilder(schema, parquetlite.WriterOptions{
			Codec:        cfg.Codec,
			RowGroupSize: cfg.RowGroupSize,
		})
		if err := b.AppendPage(page); err != nil {
			return nil, err
		}
		b.MergeDistinctInto(ndv)
		obj, err := b.Seal()
		if err != nil {
			return nil, err
		}
		key := fmt.Sprintf("%s-part-%03d.pql", name, f)
		d.Objects[key] = obj.Image
		keys = append(keys, key)
		sealed = append(sealed, obj)
	}
	exactNDV := make(map[string]int64, schema.Len())
	for c, col := range schema.Columns {
		exactNDV[col.Name] = int64(len(ndv[c]))
	}
	t, err := ingest.AssembleTable(ingest.TableSpec{
		Schema:       "default",
		Name:         name,
		Bucket:       bucket,
		Columns:      schema,
		Codec:        cfg.Codec,
		DisjointKeys: disjoint,
	}, keys, sealed, exactNDV)
	if err != nil {
		return nil, err
	}
	d.Table = t
	return d, nil
}

// LaghosQuery is the paper's Laghos query (Table 2) with the LANL LIMIT
// extension; aliases make ORDER BY E resolvable, as in the original.
const LaghosQuery = `SELECT min(vertex_id) AS VID, min(x) AS mx, min(y) AS my, min(z) AS mz, avg(e) AS E ` +
	`FROM laghos WHERE x BETWEEN 0.8 AND 3.2 AND y BETWEEN 0.8 AND 3.2 AND z BETWEEN 0.8 AND 3.2 ` +
	`GROUP BY vertex_id ORDER BY E LIMIT 100`

// Laghos generates the fluid-dynamics mesh dataset: 10 columns, vertex
// ids partitioned across files (each file is a mesh subdomain, so
// vertex_id is split-disjoint), coordinates uniform in [0,4)³ and
// state fields correlated with position. Default scale: 32 files ×
// 16384 rows (paper: 256 × 4.19M).
func Laghos(cfg Config) (*Dataset, error) {
	cfg = cfg.normalize(32, 16384)
	schema := types.NewSchema(
		types.Column{Name: "vertex_id", Type: types.Int64},
		types.Column{Name: "x", Type: types.Float64},
		types.Column{Name: "y", Type: types.Float64},
		types.Column{Name: "z", Type: types.Float64},
		types.Column{Name: "e", Type: types.Float64},
		types.Column{Name: "rho", Type: types.Float64},
		types.Column{Name: "p", Type: types.Float64},
		types.Column{Name: "vx", Type: types.Float64},
		types.Column{Name: "vy", Type: types.Float64},
		types.Column{Name: "vz", Type: types.Float64},
	)
	// Eight rows per vertex (one per adjacent mesh element), sharing the
	// vertex's coordinates — so the range filter keeps or drops whole
	// vertices, exactly as it does on real mesh dumps, preserving the
	// paper's rows-per-group ratio after filtering.
	verticesPerFile := cfg.RowsPerFile / 8
	if verticesPerFile == 0 {
		verticesPerFile = 1
	}
	gen := func(f int, page *column.Page) {
		rnd := rand.New(rand.NewSource(cfg.Seed + int64(f)*7919))
		base := int64(f) * int64(verticesPerFile)
		// Vertex positions for this subdomain.
		xs := make([]float64, verticesPerFile)
		ys := make([]float64, verticesPerFile)
		zs := make([]float64, verticesPerFile)
		for v := range xs {
			xs[v] = quantize(rnd.Float64()*4, 1e4)
			ys[v] = quantize(rnd.Float64()*4, 1e4)
			zs[v] = quantize(rnd.Float64()*4, 1e4)
		}
		for r := 0; r < cfg.RowsPerFile; r++ {
			v := r % verticesPerFile
			vid := base + int64(v)
			x, y, z := xs[v], ys[v], zs[v]
			e := quantize(100*math.Exp(-((x-2)*(x-2)+(y-2)*(y-2)+(z-2)*(z-2))/2)+rnd.Float64(), 1e4)
			page.AppendRow(
				types.IntValue(vid),
				types.FloatValue(x),
				types.FloatValue(y),
				types.FloatValue(z),
				types.FloatValue(e),
				types.FloatValue(quantize(1+rnd.Float64(), 1e3)),
				types.FloatValue(quantize(e*0.4+rnd.Float64(), 1e3)),
				types.FloatValue(quantize(rnd.NormFloat64(), 1e3)),
				types.FloatValue(quantize(rnd.NormFloat64(), 1e3)),
				types.FloatValue(quantize(rnd.NormFloat64(), 1e3)),
			)
		}
	}
	return build("laghos", "lanl", cfg, schema, gen, []string{"vertex_id"}, LaghosQuery)
}

// DeepWaterQuery is the paper's Deep Water Impact query (Table 2).
const DeepWaterQuery = `SELECT MAX((rowid % 250000) / 500) AS m, timestep ` +
	`FROM deepwater WHERE v02 > 0.1 GROUP BY timestep`

// DeepWater generates the asteroid-impact dataset: 4 columns, one
// timestep per file (timestep is split-disjoint, giving the paper's
// one-group-per-file aggregation), v02 distributed so the paper's filter
// keeps ≈18% of rows. Default scale: 16 files × 65536 rows (paper: 64 ×
// 27M).
func DeepWater(cfg Config) (*Dataset, error) {
	cfg = cfg.normalize(16, 65536)
	schema := types.NewSchema(
		types.Column{Name: "rowid", Type: types.Int64},
		types.Column{Name: "v02", Type: types.Float64},
		types.Column{Name: "v03", Type: types.Float64},
		types.Column{Name: "timestep", Type: types.Int64},
	)
	gen := func(f int, page *column.Page) {
		rnd := rand.New(rand.NewSource(cfg.Seed + int64(f)*104729))
		for r := 0; r < cfg.RowsPerFile; r++ {
			// v02 is a water-fraction-like field: ~82% of cells are
			// exactly-zero background (empty space in the impact
			// simulation — the reason real scientific dumps compress
			// well), the rest quantized values over (0.1, 1].
			v02 := 0.0
			v03 := 0.0
			if rnd.Float64() < 0.18 {
				v02 = quantize(0.1+rnd.Float64()*0.9, 1e4)
				v03 = quantize(rnd.Float64(), 1e3)
			}
			page.AppendRow(
				types.IntValue(int64(r)),
				types.FloatValue(v02),
				types.FloatValue(v03),
				types.IntValue(int64(f)),
			)
		}
	}
	return build("deepwater", "lanl", cfg, schema, gen, []string{"timestep"}, DeepWaterQuery)
}

// TPCHQuery is TPC-H Q1 over the generated lineitem table.
const TPCHQuery = `SELECT returnflag, linestatus, ` +
	`SUM(quantity) AS sum_qty, SUM(extendedprice) AS sum_base_price, ` +
	`SUM(extendedprice * (1 - discount)) AS sum_disc_price, ` +
	`SUM(extendedprice * (1 - discount) * (1 + tax)) AS sum_charge, ` +
	`AVG(quantity) AS avg_qty, AVG(extendedprice) AS avg_price, AVG(discount) AS avg_disc, ` +
	`COUNT(*) AS count_order ` +
	`FROM lineitem WHERE shipdate <= DATE '1998-12-01' - INTERVAL '90' DAY ` +
	`GROUP BY returnflag, linestatus ORDER BY returnflag, linestatus`

// TPCH generates the lineitem columns Q1 touches with dbgen-like value
// distributions: shipdate uniform over the 1992–1998 window (the Q1
// filter keeps ≈98% of rows), returnflag/linestatus following the
// dbgen rules (4 populated combinations), quantity 1–50, prices and
// rates in dbgen ranges. Default scale: 8 files × 32768 rows.
// TPCHQ3Query is the Q3-shaped two-table query over lineitem ⋈ orders:
// build-side date filter, equi-join on orderkey, revenue aggregation,
// top-10 by revenue. It exercises the full join path — build stage,
// bloom pushdown into the probe scan, final aggregation.
const TPCHQ3Query = `SELECT l.orderkey AS orderkey, o.orderdate AS orderdate, ` +
	`SUM(l.extendedprice * (1 - l.discount)) AS revenue ` +
	`FROM lineitem AS l JOIN orders AS o ON l.orderkey = o.orderkey ` +
	`WHERE o.orderdate < DATE '1994-01-01' ` +
	`GROUP BY l.orderkey, o.orderdate ORDER BY revenue DESC LIMIT 10`

// TPCHOrders generates the orders columns Q3 touches. Orderkeys are
// 1:1 with the lineitem table generated at the same Config scale (one
// order per lineitem row), so generate both with identical Files ×
// RowsPerFile. Orderdate is uniform over the 1992–1998 window; the Q3
// cutoff of 1994-01-01 keeps ≈29% of orders, which is what gives the
// build-side bloom filter its probe-row reduction.
func TPCHOrders(cfg Config) (*Dataset, error) {
	cfg = cfg.normalize(8, 32768)
	schema := types.NewSchema(
		types.Column{Name: "orderkey", Type: types.Int64},
		types.Column{Name: "orderdate", Type: types.Date},
		types.Column{Name: "orderpriority", Type: types.String},
	)
	startDate, _ := types.DateFromString("1992-01-02")
	endDate, _ := types.DateFromString("1998-12-01")
	window := endDate.I - startDate.I
	priorities := []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	gen := func(f int, page *column.Page) {
		rnd := rand.New(rand.NewSource(cfg.Seed + int64(f)*32452843))
		for r := 0; r < cfg.RowsPerFile; r++ {
			page.AppendRow(
				types.IntValue(int64(f)*int64(cfg.RowsPerFile)+int64(r)),
				types.DateValue(startDate.I+rnd.Int63n(window)),
				types.StringValue(priorities[rnd.Intn(len(priorities))]),
			)
		}
	}
	return build("orders", "tpch", cfg, schema, gen, nil, TPCHQ3Query)
}

func TPCH(cfg Config) (*Dataset, error) {
	cfg = cfg.normalize(8, 32768)
	schema := types.NewSchema(
		types.Column{Name: "orderkey", Type: types.Int64},
		types.Column{Name: "quantity", Type: types.Float64},
		types.Column{Name: "extendedprice", Type: types.Float64},
		types.Column{Name: "discount", Type: types.Float64},
		types.Column{Name: "tax", Type: types.Float64},
		types.Column{Name: "returnflag", Type: types.String},
		types.Column{Name: "linestatus", Type: types.String},
		types.Column{Name: "shipdate", Type: types.Date},
	)
	startDate, _ := types.DateFromString("1992-01-02")
	endDate, _ := types.DateFromString("1998-12-01")
	cutoff, _ := types.DateFromString("1995-06-17") // dbgen's currentdate
	window := endDate.I - startDate.I
	gen := func(f int, page *column.Page) {
		rnd := rand.New(rand.NewSource(cfg.Seed + int64(f)*15485863))
		for r := 0; r < cfg.RowsPerFile; r++ {
			ship := startDate.I + rnd.Int63n(window)
			qty := float64(1 + rnd.Intn(50))
			price := qty * (900 + rnd.Float64()*200)
			// dbgen: linestatus O when shipdate > currentdate, else F.
			// returnflag is N when receiptdate > currentdate (receipt is
			// 1-30 days after ship), else R or A — giving Q1 its four
			// populated (returnflag, linestatus) groups.
			receipt := ship + 1 + rnd.Int63n(30)
			linestatus := "F"
			returnflag := "N"
			if ship > cutoff.I {
				linestatus = "O"
			} else if receipt <= cutoff.I {
				if rnd.Intn(2) == 0 {
					returnflag = "R"
				} else {
					returnflag = "A"
				}
			}
			page.AppendRow(
				types.IntValue(int64(f)*int64(cfg.RowsPerFile)+int64(r)),
				types.FloatValue(qty),
				types.FloatValue(price),
				types.FloatValue(float64(rnd.Intn(11))/100),
				types.FloatValue(float64(rnd.Intn(9))/100),
				types.StringValue(returnflag),
				types.StringValue(linestatus),
				types.DateValue(ship),
			)
		}
	}
	return build("lineitem", "tpch", cfg, schema, gen, nil, TPCHQuery)
}
