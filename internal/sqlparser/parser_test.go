package sqlparser

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, sql string) *SelectStmt {
	t.Helper()
	stmt, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	return stmt
}

func TestSimpleSelect(t *testing.T) {
	stmt := mustParse(t, "SELECT a, b FROM t")
	if len(stmt.Items) != 2 || stmt.From.Name.Table != "t" || stmt.Limit != -1 {
		t.Errorf("stmt = %+v", stmt)
	}
	if id, ok := stmt.Items[0].Expr.(*Ident); !ok || id.Name != "a" {
		t.Errorf("item0 = %v", stmt.Items[0].Expr)
	}
}

func TestQualifiedTableAndAliases(t *testing.T) {
	stmt := mustParse(t, "SELECT x AS foo, y bar FROM lanl.laghos")
	if stmt.From.Name.Schema != "lanl" || stmt.From.Name.Table != "laghos" {
		t.Errorf("from = %v", stmt.From)
	}
	if stmt.Items[0].Alias != "foo" || stmt.Items[1].Alias != "bar" {
		t.Errorf("aliases = %q, %q", stmt.Items[0].Alias, stmt.Items[1].Alias)
	}
}

func TestLaghosQuery(t *testing.T) {
	sql := `SELECT min(vertex_id) AS VID, min(x), min(y), min(z), avg(e) AS E
	        FROM lanl.laghos
	        WHERE x BETWEEN 0.8 AND 3.2 AND y BETWEEN 0.8 AND 3.2 AND z BETWEEN 0.8 AND 3.2
	        GROUP BY vertex_id ORDER BY E LIMIT 100`
	stmt := mustParse(t, sql)
	if len(stmt.Items) != 5 {
		t.Fatalf("items = %d", len(stmt.Items))
	}
	if fc, ok := stmt.Items[4].Expr.(*FuncCall); !ok || fc.Name != "avg" {
		t.Errorf("item4 = %v", stmt.Items[4].Expr)
	}
	if stmt.Limit != 100 || len(stmt.GroupBy) != 1 || len(stmt.OrderBy) != 1 {
		t.Errorf("clauses wrong: %+v", stmt)
	}
	// WHERE is a conjunction of three BETWEENs.
	and1, ok := stmt.Where.(*Binary)
	if !ok || and1.Op != "AND" {
		t.Fatalf("where = %v", stmt.Where)
	}
	if _, ok := and1.R.(*BetweenNode); !ok {
		t.Errorf("where right = %v", and1.R)
	}
}

func TestDeepWaterQuery(t *testing.T) {
	sql := `SELECT MAX((rowid % (500*500))/500) AS m, timestep
	        FROM lanl.deepwater WHERE v02 > 0.1 GROUP BY timestep`
	stmt := mustParse(t, sql)
	fc, ok := stmt.Items[0].Expr.(*FuncCall)
	if !ok || fc.Name != "max" || len(fc.Args) != 1 {
		t.Fatalf("item0 = %v", stmt.Items[0].Expr)
	}
	div, ok := fc.Args[0].(*Binary)
	if !ok || div.Op != "/" {
		t.Fatalf("max arg = %v", fc.Args[0])
	}
	mod, ok := div.L.(*Binary)
	if !ok || mod.Op != "%" {
		t.Fatalf("div left = %v", div.L)
	}
}

func TestTPCHQ1(t *testing.T) {
	sql := `SELECT returnflag, linestatus, SUM(quantity) AS sum_qty,
	        SUM(extendedprice * (1 - discount)) AS sum_disc_price,
	        SUM(extendedprice * (1 - discount) * (1 + tax)) AS sum_charge,
	        AVG(quantity) AS avg_qty, COUNT(*) AS count_order
	        FROM tpch.lineitem
	        WHERE shipdate <= DATE '1998-12-01' - INTERVAL '90' DAY
	        GROUP BY returnflag, linestatus
	        ORDER BY returnflag, linestatus`
	stmt := mustParse(t, sql)
	if len(stmt.Items) != 7 || len(stmt.GroupBy) != 2 || len(stmt.OrderBy) != 2 {
		t.Fatalf("clauses: items=%d group=%d order=%d", len(stmt.Items), len(stmt.GroupBy), len(stmt.OrderBy))
	}
	cmp, ok := stmt.Where.(*Binary)
	if !ok || cmp.Op != "<=" {
		t.Fatalf("where = %v", stmt.Where)
	}
	sub, ok := cmp.R.(*Binary)
	if !ok || sub.Op != "-" {
		t.Fatalf("where rhs = %v", cmp.R)
	}
	if _, ok := sub.L.(*DateLit); !ok {
		t.Errorf("date lit missing: %v", sub.L)
	}
	if iv, ok := sub.R.(*IntervalLit); !ok || iv.Days != 90 {
		t.Errorf("interval = %v", sub.R)
	}
	cs, ok := stmt.Items[6].Expr.(*FuncCall)
	if !ok || cs.Name != "count" {
		t.Fatalf("count item = %v", stmt.Items[6].Expr)
	}
	if _, ok := cs.Args[0].(*Star); !ok {
		t.Errorf("count arg = %v", cs.Args[0])
	}
}

func TestOrderByDescAsc(t *testing.T) {
	stmt := mustParse(t, "SELECT a FROM t ORDER BY a DESC, b ASC, c")
	if !stmt.OrderBy[0].Desc || stmt.OrderBy[1].Desc || stmt.OrderBy[2].Desc {
		t.Errorf("order = %+v", stmt.OrderBy)
	}
}

func TestOperatorPrecedence(t *testing.T) {
	stmt := mustParse(t, "SELECT a + b * c FROM t")
	add, ok := stmt.Items[0].Expr.(*Binary)
	if !ok || add.Op != "+" {
		t.Fatalf("top = %v", stmt.Items[0].Expr)
	}
	if mul, ok := add.R.(*Binary); !ok || mul.Op != "*" {
		t.Errorf("* must bind tighter than +: %v", add.R)
	}
	// AND binds tighter than OR.
	stmt = mustParse(t, "SELECT a FROM t WHERE p > 1 OR q > 2 AND r > 3")
	or, ok := stmt.Where.(*Binary)
	if !ok || or.Op != "OR" {
		t.Fatalf("where = %v", stmt.Where)
	}
	if and, ok := or.R.(*Binary); !ok || and.Op != "AND" {
		t.Errorf("AND must bind tighter: %v", or.R)
	}
	// Parens override.
	stmt = mustParse(t, "SELECT (a + b) * c FROM t")
	mul, ok := stmt.Items[0].Expr.(*Binary)
	if !ok || mul.Op != "*" {
		t.Errorf("parens ignored: %v", stmt.Items[0].Expr)
	}
}

func TestNotAndNegation(t *testing.T) {
	stmt := mustParse(t, "SELECT a FROM t WHERE NOT a > 1 AND b IS NOT NULL")
	and, _ := stmt.Where.(*Binary)
	if _, ok := and.L.(*Unary); !ok {
		t.Errorf("NOT missing: %v", and.L)
	}
	isn, ok := and.R.(*IsNullNode)
	if !ok || !isn.Negate {
		t.Errorf("IS NOT NULL = %v", and.R)
	}
	stmt = mustParse(t, "SELECT -x FROM t WHERE y NOT BETWEEN 1 AND 2")
	if u, ok := stmt.Items[0].Expr.(*Unary); !ok || u.Op != "-" {
		t.Errorf("negation = %v", stmt.Items[0].Expr)
	}
	if b, ok := stmt.Where.(*BetweenNode); !ok || !b.Negate {
		t.Errorf("NOT BETWEEN = %v", stmt.Where)
	}
}

func TestLiterals(t *testing.T) {
	stmt := mustParse(t, "SELECT 1, 2.5, 1e3, 'it''s', TRUE, FALSE, NULL FROM t")
	if n := stmt.Items[0].Expr.(*NumberLit); n.Text != "1" {
		t.Errorf("int lit = %v", n)
	}
	if n := stmt.Items[2].Expr.(*NumberLit); n.Text != "1e3" {
		t.Errorf("sci lit = %v", n)
	}
	if s := stmt.Items[3].Expr.(*StringLit); s.Value != "it's" {
		t.Errorf("string lit = %q", s.Value)
	}
	if b := stmt.Items[4].Expr.(*BoolLit); !b.Value {
		t.Error("TRUE lit wrong")
	}
	if _, ok := stmt.Items[6].Expr.(*NullLit); !ok {
		t.Error("NULL lit wrong")
	}
}

func TestCast(t *testing.T) {
	stmt := mustParse(t, "SELECT CAST(a AS DOUBLE) FROM t")
	c, ok := stmt.Items[0].Expr.(*CastNode)
	if !ok || c.TypeName != "DOUBLE" {
		t.Errorf("cast = %v", stmt.Items[0].Expr)
	}
}

func TestComments(t *testing.T) {
	stmt := mustParse(t, "SELECT a -- trailing comment\nFROM t")
	if len(stmt.Items) != 1 {
		t.Error("comment broke parse")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT a",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t LIMIT x",
		"SELECT a FROM t LIMIT -1",
		"SELECT a FROM t GROUP",
		"SELECT a FROM t ORDER a",
		"SELECT a FROM t extra garbage",
		"SELECT f( FROM t",
		"SELECT a FROM t WHERE x BETWEEN 1",
		"SELECT 'unterminated FROM t",
		"SELECT a FROM t WHERE x IS",
		"SELECT CAST(a DOUBLE) FROM t",
		"SELECT a FROM t WHERE @ > 1",
		"SELECT INTERVAL 'abc' DAY FROM t",
		"SELECT DATE FROM t",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) succeeded", sql)
		}
	}
}

func TestStringRendersBack(t *testing.T) {
	sql := "SELECT min(x) AS m FROM s.t WHERE a > 1 AND b BETWEEN 2 AND 3 GROUP BY g ORDER BY m DESC LIMIT 10"
	stmt := mustParse(t, sql)
	out := stmt.String()
	for _, frag := range []string{"min(x) AS m", "FROM s.t", "GROUP BY g", "ORDER BY m DESC", "LIMIT 10", "BETWEEN 2 AND 3"} {
		if !strings.Contains(out, frag) {
			t.Errorf("rendered %q missing %q", out, frag)
		}
	}
	// Re-parsing the rendered text must succeed (idempotence check).
	if _, err := Parse(out); err != nil {
		t.Errorf("re-parse failed: %v", err)
	}
}

func TestStarSelectItem(t *testing.T) {
	stmt := mustParse(t, "SELECT * FROM t")
	if len(stmt.Items) != 1 {
		t.Fatalf("items = %d", len(stmt.Items))
	}
	if _, ok := stmt.Items[0].Expr.(*Star); !ok {
		t.Fatalf("item0 = %T, want *Star", stmt.Items[0].Expr)
	}
	// Star mixed with named columns.
	stmt = mustParse(t, "SELECT *, a FROM t WHERE a > 1")
	if _, ok := stmt.Items[0].Expr.(*Star); !ok || len(stmt.Items) != 2 {
		t.Errorf("mixed star parse: %+v", stmt.Items)
	}
	// `*` in expression position is still multiplication.
	stmt = mustParse(t, "SELECT a * b FROM t")
	if mul, ok := stmt.Items[0].Expr.(*Binary); !ok || mul.Op != "*" {
		t.Errorf("a * b = %v", stmt.Items[0].Expr)
	}
}

func TestExpectErrorNamesTokenKind(t *testing.T) {
	// expect(tokIdent, "") used to render `expected , found "1"` with an
	// empty %s; the message must name the expected token class.
	_, err := Parse("SELECT a FROM 1")
	if err == nil {
		t.Fatal("Parse succeeded on FROM 1")
	}
	if !strings.Contains(err.Error(), `expected identifier, found "1"`) {
		t.Errorf("error = %q, want it to contain `expected identifier, found \"1\"`", err)
	}
	if strings.Contains(err.Error(), "expected ,") {
		t.Errorf("error still has the empty-kind rendering: %q", err)
	}
	// Literal-text expectations are unchanged.
	_, err = Parse("SELECT a t")
	if err == nil || !strings.Contains(err.Error(), "expected FROM") {
		t.Errorf("keyword expectation = %v", err)
	}
}

func TestJoinGrammar(t *testing.T) {
	stmt := mustParse(t, `SELECT l.orderkey, o.orderdate FROM lineitem l
		JOIN tpch.orders AS o ON l.orderkey = o.orderkey WHERE l.quantity > 5`)
	if stmt.From.Name.Table != "lineitem" || stmt.From.Alias != "l" {
		t.Fatalf("from = %+v", stmt.From)
	}
	if len(stmt.Joins) != 1 {
		t.Fatalf("joins = %d", len(stmt.Joins))
	}
	j := stmt.Joins[0]
	if j.Table.Name.Schema != "tpch" || j.Table.Name.Table != "orders" || j.Table.Alias != "o" {
		t.Errorf("join table = %+v", j.Table)
	}
	on, ok := j.On.(*Binary)
	if !ok || on.Op != "=" {
		t.Fatalf("on = %v", j.On)
	}
	l, ok := on.L.(*Ident)
	if !ok || l.Qualifier != "l" || l.Name != "orderkey" {
		t.Errorf("on left = %v", on.L)
	}
	if id, ok := stmt.Items[1].Expr.(*Ident); !ok || id.Qualifier != "o" || id.Name != "orderdate" {
		t.Errorf("item1 = %v", stmt.Items[1].Expr)
	}
	// INNER JOIN is the same thing.
	stmt = mustParse(t, "SELECT * FROM a INNER JOIN b ON a.k = b.k")
	if len(stmt.Joins) != 1 {
		t.Errorf("INNER JOIN not parsed: %+v", stmt)
	}
	// Rendering includes the join and re-parses.
	out := stmt.String()
	if !strings.Contains(out, "JOIN b ON") {
		t.Errorf("rendered = %q", out)
	}
	if _, err := Parse(out); err != nil {
		t.Errorf("re-parse failed: %v", err)
	}
}

func TestJoinParseErrors(t *testing.T) {
	bad := []string{
		"SELECT * FROM a JOIN b",             // missing ON
		"SELECT * FROM a JOIN ON a.k = b.k",  // missing table
		"SELECT * FROM a INNER b ON a.k = 1", // INNER without JOIN
		"SELECT * FROM a JOIN b ON",          // missing condition
		"SELECT a. FROM t",                   // dangling qualifier
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) succeeded", sql)
		}
	}
}

func TestCaseInsensitiveKeywordsAndFuncs(t *testing.T) {
	stmt := mustParse(t, "select Sum(A) from T where B between 1 and 2 group by C order by 1 limit 5")
	if fc := stmt.Items[0].Expr.(*FuncCall); fc.Name != "sum" {
		t.Errorf("func name = %q", fc.Name)
	}
}
