package sqlparser

import (
	"fmt"
	"strconv"
)

// Parse converts one SELECT statement into an AST.
func Parse(sql string) (*SelectStmt, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, p.errf("unexpected trailing input %q", p.cur().text)
	}
	return stmt, nil
}

// ParseStatement converts one SQL statement — SELECT or INSERT — into
// an AST. Parse remains the SELECT-only entry point for callers on the
// read path.
func ParseStatement(sql string) (Statement, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var stmt Statement
	if p.at(tokKeyword, "INSERT") {
		stmt, err = p.parseInsert()
	} else {
		stmt, err = p.parseSelect()
	}
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, p.errf("unexpected trailing input %q", p.cur().text)
	}
	return stmt, nil
}

// parseInsert parses INSERT INTO name [(col, ...)] VALUES (expr, ...)
// [, (expr, ...)]... — multi-row VALUES with arbitrary constant
// expressions per slot.
func (p *parser) parseInsert() (*InsertStmt, error) {
	if _, err := p.expect(tokKeyword, "INSERT"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "INTO"); err != nil {
		return nil, err
	}
	name, err := p.parseTableName()
	if err != nil {
		return nil, err
	}
	stmt := &InsertStmt{Table: name}
	if p.accept(tokSymbol, "(") {
		for {
			col, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			stmt.Columns = append(stmt.Columns, col.text)
			if p.accept(tokSymbol, ")") {
				break
			}
			if _, err := p.expect(tokSymbol, ","); err != nil {
				return nil, err
			}
		}
	}
	if _, err := p.expect(tokKeyword, "VALUES"); err != nil {
		return nil, err
	}
	for {
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		var row []Node
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.accept(tokSymbol, ")") {
				break
			}
			if _, err := p.expect(tokSymbol, ","); err != nil {
				return nil, err
			}
		}
		if len(stmt.Columns) > 0 && len(row) != len(stmt.Columns) {
			return nil, p.errf("VALUES tuple has %d expressions for %d columns", len(row), len(stmt.Columns))
		}
		if len(stmt.Rows) > 0 && len(row) != len(stmt.Rows[0]) {
			return nil, p.errf("VALUES tuples differ in arity: %d vs %d", len(row), len(stmt.Rows[0]))
		}
		stmt.Rows = append(stmt.Rows, row)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	return stmt, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) advance()    { p.pos++ }
func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if p.at(kind, text) {
		t := p.cur()
		p.advance()
		return t, nil
	}
	// With no literal text the expectation is a token class (identifier,
	// number, string); name the class instead of printing an empty string.
	want := text
	if want == "" {
		want = kind.String()
	}
	return token{}, p.errf("expected %s, found %q", want, p.cur().text)
}

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("sql:%d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if _, err := p.expect(tokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Limit: -1}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	ref, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	stmt.From = ref

	for p.at(tokKeyword, "JOIN") || p.at(tokKeyword, "INNER") {
		if p.accept(tokKeyword, "INNER") {
			if _, err := p.expect(tokKeyword, "JOIN"); err != nil {
				return nil, err
			}
		} else {
			p.advance() // JOIN
		}
		right, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "ON"); err != nil {
			return nil, err
		}
		on, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Joins = append(stmt.Joins, JoinClause{Table: right, On: on})
	}

	if p.accept(tokKeyword, "WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	if p.accept(tokKeyword, "GROUP") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			g, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, g)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "ORDER") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.accept(tokKeyword, "DESC") {
				item.Desc = true
			} else {
				p.accept(tokKeyword, "ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "LIMIT") {
		t, err := p.expect(tokNumber, "")
		if err != nil {
			return nil, err
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil || n < 0 {
			return nil, p.errf("bad LIMIT %q", t.text)
		}
		stmt.Limit = n
	}
	return stmt, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	// A bare `*` cannot start an expression (it would be multiplication),
	// so it is recognized here as the whole-row select item.
	if p.at(tokSymbol, "*") {
		p.advance()
		return SelectItem{Expr: &Star{}}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.accept(tokKeyword, "AS") {
		t, err := p.expect(tokIdent, "")
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = t.text
	} else if p.at(tokIdent, "") {
		// Bare alias: SELECT x y.
		item.Alias = p.cur().text
		p.advance()
	}
	return item, nil
}

func (p *parser) parseTableName() (TableName, error) {
	t1, err := p.expect(tokIdent, "")
	if err != nil {
		return TableName{}, err
	}
	if p.accept(tokSymbol, ".") {
		t2, err := p.expect(tokIdent, "")
		if err != nil {
			return TableName{}, err
		}
		return TableName{Schema: t1.text, Table: t2.text}, nil
	}
	return TableName{Table: t1.text}, nil
}

// parseTableRef parses a FROM/JOIN table with an optional alias:
// `name`, `name alias` or `name AS alias`.
func (p *parser) parseTableRef() (TableRef, error) {
	name, err := p.parseTableName()
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Name: name}
	if p.accept(tokKeyword, "AS") {
		t, err := p.expect(tokIdent, "")
		if err != nil {
			return TableRef{}, err
		}
		ref.Alias = t.text
	} else if p.at(tokIdent, "") {
		ref.Alias = p.cur().text
		p.advance()
	}
	return ref, nil
}

// Expression grammar, loosest to tightest:
//
//	expr     := orExpr
//	orExpr   := andExpr (OR andExpr)*
//	andExpr  := notExpr (AND notExpr)*
//	notExpr  := NOT notExpr | predicate
//	predicate := additive [cmpOp additive | [NOT] BETWEEN additive AND additive | IS [NOT] NULL]
//	additive := multiplicative (("+"|"-") multiplicative)*
//	multiplicative := unary (("*"|"/"|"%") unary)*
//	unary    := "-" unary | primary
//	primary  := literal | ident | ident "." ident | funcCall | CAST | "(" expr ")"
func (p *parser) parseExpr() (Node, error) { return p.parseOr() }

func (p *parser) parseOr() (Node, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Node, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Node, error) {
	if p.accept(tokKeyword, "NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "NOT", E: e}, nil
	}
	return p.parsePredicate()
}

func (p *parser) parsePredicate() (Node, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if p.at(tokSymbol, "") {
		switch p.cur().text {
		case "=", "<>", "!=", "<", "<=", ">", ">=":
			op := p.cur().text
			if op == "!=" {
				op = "<>"
			}
			p.advance()
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &Binary{Op: op, L: l, R: r}, nil
		}
	}
	negate := false
	if p.at(tokKeyword, "NOT") && p.toks[p.pos+1].kind == tokKeyword && p.toks[p.pos+1].text == "BETWEEN" {
		p.advance()
		negate = true
	}
	if p.accept(tokKeyword, "BETWEEN") {
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BetweenNode{E: l, Lo: lo, Hi: hi, Negate: negate}, nil
	}
	if p.accept(tokKeyword, "IS") {
		neg := p.accept(tokKeyword, "NOT")
		if _, err := p.expect(tokKeyword, "NULL"); err != nil {
			return nil, err
		}
		return &IsNullNode{E: l, Negate: neg}, nil
	}
	return l, nil
}

func (p *parser) parseAdditive() (Node, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.at(tokSymbol, "+") || p.at(tokSymbol, "-") {
		op := p.cur().text
		p.advance()
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseMultiplicative() (Node, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.at(tokSymbol, "*") || p.at(tokSymbol, "/") || p.at(tokSymbol, "%") {
		op := p.cur().text
		p.advance()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (Node, error) {
	if p.accept(tokSymbol, "-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "-", E: e}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Node, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.advance()
		return &NumberLit{Text: t.text}, nil
	case t.kind == tokString:
		p.advance()
		return &StringLit{Value: t.text}, nil
	case t.kind == tokKeyword && t.text == "TRUE":
		p.advance()
		return &BoolLit{Value: true}, nil
	case t.kind == tokKeyword && t.text == "FALSE":
		p.advance()
		return &BoolLit{Value: false}, nil
	case t.kind == tokKeyword && t.text == "NULL":
		p.advance()
		return &NullLit{}, nil
	case t.kind == tokKeyword && t.text == "DATE":
		p.advance()
		s, err := p.expect(tokString, "")
		if err != nil {
			return nil, err
		}
		return &DateLit{Text: s.text}, nil
	case t.kind == tokKeyword && t.text == "INTERVAL":
		p.advance()
		s, err := p.expect(tokString, "")
		if err != nil {
			return nil, err
		}
		days, err := strconv.ParseInt(s.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad interval %q", s.text)
		}
		if _, err := p.expect(tokKeyword, "DAY"); err != nil {
			return nil, err
		}
		return &IntervalLit{Days: days}, nil
	case t.kind == tokKeyword && t.text == "CAST":
		p.advance()
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "AS"); err != nil {
			return nil, err
		}
		ty := p.cur()
		if ty.kind != tokKeyword {
			return nil, p.errf("expected type name, found %q", ty.text)
		}
		p.advance()
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return &CastNode{E: e, TypeName: ty.text}, nil
	case t.kind == tokSymbol && t.text == "(":
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokIdent:
		p.advance()
		if p.accept(tokSymbol, ".") {
			// Qualified column reference: alias.column or table.column.
			col, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			return &Ident{Qualifier: t.text, Name: col.text}, nil
		}
		if p.accept(tokSymbol, "(") {
			call := &FuncCall{Name: lower(t.text)}
			if p.accept(tokSymbol, "*") {
				call.Args = append(call.Args, &Star{})
			} else if !p.at(tokSymbol, ")") {
				for {
					arg, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, arg)
					if !p.accept(tokSymbol, ",") {
						break
					}
				}
			}
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
			return call, nil
		}
		return &Ident{Name: t.text}, nil
	default:
		return nil, p.errf("unexpected token %q", t.text)
	}
}

func lower(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 32
		}
	}
	return string(b)
}
