package sqlparser

import (
	"fmt"
	"strings"
)

// Statement is a parsed SQL statement: SELECT or INSERT.
type Statement interface {
	fmt.Stringer
	isStatement()
}

func (s *SelectStmt) isStatement() {}
func (s *InsertStmt) isStatement() {}

// InsertStmt is the parsed form of
// INSERT INTO table [(col, ...)] VALUES (expr, ...), (expr, ...) ...
type InsertStmt struct {
	Table TableName
	// Columns lists the target columns; empty means the full table
	// schema in declaration order.
	Columns []string
	// Rows holds one expression list per VALUES tuple.
	Rows [][]Node
}

func (s *InsertStmt) String() string {
	var b strings.Builder
	b.WriteString("INSERT INTO ")
	b.WriteString(s.Table.String())
	if len(s.Columns) > 0 {
		b.WriteString(" (")
		b.WriteString(strings.Join(s.Columns, ", "))
		b.WriteString(")")
	}
	b.WriteString(" VALUES ")
	for i, row := range s.Rows {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString("(")
		for j, e := range row {
			if j > 0 {
				b.WriteString(", ")
			}
			b.WriteString(e.String())
		}
		b.WriteString(")")
	}
	return b.String()
}

// SelectStmt is the parsed form of a SELECT query.
type SelectStmt struct {
	Items []SelectItem
	From  TableRef
	// Joins holds the INNER JOIN ... ON clauses, in source order.
	Joins   []JoinClause
	Where   Node
	GroupBy []Node
	OrderBy []OrderItem
	// Limit is -1 when absent.
	Limit int64
}

// SelectItem is one projection with an optional alias.
type SelectItem struct {
	Expr  Node
	Alias string
}

// TableName is schema-qualified ("hive.lineitem") or bare.
type TableName struct {
	Schema string
	Table  string
}

func (t TableName) String() string {
	if t.Schema == "" {
		return t.Table
	}
	return t.Schema + "." + t.Table
}

// TableRef is a table in the FROM clause with an optional alias
// ("lineitem l" or "tpch.lineitem AS l").
type TableRef struct {
	Name  TableName
	Alias string
}

func (t TableRef) String() string {
	if t.Alias == "" {
		return t.Name.String()
	}
	return t.Name.String() + " " + t.Alias
}

// JoinClause is one INNER JOIN <table> ON <condition>.
type JoinClause struct {
	Table TableRef
	On    Node
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Node
	Desc bool
}

// Node is an unresolved AST expression.
type Node interface {
	fmt.Stringer
	isNode()
}

// Ident references a column by name, optionally qualified by a table
// alias or table name ("l.orderkey").
type Ident struct {
	Qualifier string // "" when unqualified
	Name      string
}

func (n *Ident) isNode() {}
func (n *Ident) String() string {
	if n.Qualifier != "" {
		return n.Qualifier + "." + n.Name
	}
	return n.Name
}

// Star is `*` — COUNT(*)'s argument or a whole-row select item.
type Star struct{}

func (n *Star) isNode()        {}
func (n *Star) String() string { return "*" }

// NumberLit is an unparsed numeric literal (int or float decided by form).
type NumberLit struct{ Text string }

func (n *NumberLit) isNode()        {}
func (n *NumberLit) String() string { return n.Text }

// StringLit is a quoted string.
type StringLit struct{ Value string }

func (n *StringLit) isNode()        {}
func (n *StringLit) String() string { return "'" + n.Value + "'" }

// BoolLit is TRUE/FALSE.
type BoolLit struct{ Value bool }

func (n *BoolLit) isNode() {}
func (n *BoolLit) String() string {
	if n.Value {
		return "TRUE"
	}
	return "FALSE"
}

// NullLit is the NULL keyword.
type NullLit struct{}

func (n *NullLit) isNode()        {}
func (n *NullLit) String() string { return "NULL" }

// DateLit is DATE 'YYYY-MM-DD'.
type DateLit struct{ Text string }

func (n *DateLit) isNode()        {}
func (n *DateLit) String() string { return "DATE '" + n.Text + "'" }

// IntervalLit is INTERVAL '<n>' DAY.
type IntervalLit struct{ Days int64 }

func (n *IntervalLit) isNode()        {}
func (n *IntervalLit) String() string { return fmt.Sprintf("INTERVAL '%d' DAY", n.Days) }

// Binary is an infix operation: arithmetic, comparison, AND, OR.
type Binary struct {
	Op   string // "+", "-", "*", "/", "%", "=", "<>", "<", "<=", ">", ">=", "AND", "OR"
	L, R Node
}

func (n *Binary) isNode()        {}
func (n *Binary) String() string { return "(" + n.L.String() + " " + n.Op + " " + n.R.String() + ")" }

// Unary is NOT or numeric negation.
type Unary struct {
	Op string // "NOT", "-"
	E  Node
}

func (n *Unary) isNode()        {}
func (n *Unary) String() string { return "(" + n.Op + " " + n.E.String() + ")" }

// BetweenNode is e BETWEEN lo AND hi (Negate for NOT BETWEEN).
type BetweenNode struct {
	E, Lo, Hi Node
	Negate    bool
}

func (n *BetweenNode) isNode() {}
func (n *BetweenNode) String() string {
	not := ""
	if n.Negate {
		not = "NOT "
	}
	return "(" + n.E.String() + " " + not + "BETWEEN " + n.Lo.String() + " AND " + n.Hi.String() + ")"
}

// IsNullNode is e IS [NOT] NULL.
type IsNullNode struct {
	E      Node
	Negate bool
}

func (n *IsNullNode) isNode() {}
func (n *IsNullNode) String() string {
	if n.Negate {
		return "(" + n.E.String() + " IS NOT NULL)"
	}
	return "(" + n.E.String() + " IS NULL)"
}

// FuncCall is a function application (aggregates: min, max, sum, avg,
// count).
type FuncCall struct {
	Name string // lower-cased
	Args []Node
}

func (n *FuncCall) isNode() {}
func (n *FuncCall) String() string {
	args := make([]string, len(n.Args))
	for i, a := range n.Args {
		args[i] = a.String()
	}
	return n.Name + "(" + strings.Join(args, ", ") + ")"
}

// CastNode is CAST(e AS TYPE).
type CastNode struct {
	E        Node
	TypeName string
}

func (n *CastNode) isNode()        {}
func (n *CastNode) String() string { return "CAST(" + n.E.String() + " AS " + n.TypeName + ")" }

// String renders the statement back to SQL-ish text (debugging aid).
func (s *SelectStmt) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	for i, item := range s.Items {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(item.Expr.String())
		if item.Alias != "" {
			sb.WriteString(" AS " + item.Alias)
		}
	}
	sb.WriteString(" FROM " + s.From.String())
	for _, j := range s.Joins {
		sb.WriteString(" JOIN " + j.Table.String() + " ON " + j.On.String())
	}
	if s.Where != nil {
		sb.WriteString(" WHERE " + s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(g.String())
		}
	}
	if len(s.OrderBy) > 0 {
		sb.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(o.Expr.String())
			if o.Desc {
				sb.WriteString(" DESC")
			}
		}
	}
	if s.Limit >= 0 {
		sb.WriteString(fmt.Sprintf(" LIMIT %d", s.Limit))
	}
	return sb.String()
}
