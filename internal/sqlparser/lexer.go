// Package sqlparser implements the SQL front end: a lexer and a
// recursive-descent parser producing an unresolved AST, covering the
// dialect exercised by the paper's workloads — SELECT lists with
// aggregates, aliases and `*`, inner JOIN ... ON with table aliases and
// qualified `t.col` references, WHERE with AND/OR/NOT/BETWEEN/IS NULL,
// GROUP BY, ORDER BY with ASC/DESC, LIMIT, DATE literals and INTERVAL
// arithmetic (TPC-H Q1's `DATE '1998-12-01' - INTERVAL '90' DAY`).
package sqlparser

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokSymbol
)

type token struct {
	kind tokenKind
	text string // keywords upper-cased; identifiers as written
	pos  int
}

// String names the kind for parser error messages ("expected identifier,
// found ...").
func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokKeyword:
		return "keyword"
	case tokNumber:
		return "number"
	case tokString:
		return "string"
	case tokSymbol:
		return "symbol"
	default:
		return "token"
	}
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"ORDER": true, "LIMIT": true, "AS": true, "AND": true, "OR": true,
	"NOT": true, "BETWEEN": true, "IS": true, "NULL": true, "ASC": true,
	"DESC": true, "DATE": true, "INTERVAL": true, "DAY": true, "TRUE": true,
	"FALSE": true, "CAST": true, "DOUBLE": true, "BIGINT": true,
	"VARCHAR": true, "BOOLEAN": true, "JOIN": true, "INNER": true, "ON": true,
	"INSERT": true, "INTO": true, "VALUES": true,
}

type lexError struct {
	pos int
	msg string
}

func (e *lexError) Error() string { return fmt.Sprintf("sql:%d: %s", e.pos, e.msg) }

// lex tokenizes the input.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '-' && i+1 < n && input[i+1] == '-':
			// Line comment.
			for i < n && input[i] != '\n' {
				i++
			}
		case unicode.IsLetter(c) || c == '_':
			start := i
			for i < n && (unicode.IsLetter(rune(input[i])) || unicode.IsDigit(rune(input[i])) || input[i] == '_') {
				i++
			}
			word := input[start:i]
			upper := strings.ToUpper(word)
			if keywords[upper] {
				toks = append(toks, token{tokKeyword, upper, start})
			} else {
				toks = append(toks, token{tokIdent, word, start})
			}
		case unicode.IsDigit(c) || (c == '.' && i+1 < n && unicode.IsDigit(rune(input[i+1]))):
			start := i
			seenDot := false
			for i < n {
				ch := input[i]
				if ch == '.' {
					if seenDot {
						break
					}
					seenDot = true
					i++
					continue
				}
				if ch >= '0' && ch <= '9' || ch == 'e' || ch == 'E' {
					i++
					continue
				}
				if (ch == '+' || ch == '-') && i > start && (input[i-1] == 'e' || input[i-1] == 'E') {
					i++
					continue
				}
				break
			}
			toks = append(toks, token{tokNumber, input[start:i], start})
		case c == '\'':
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					closed = true
					i++
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, &lexError{i, "unterminated string literal"}
			}
			toks = append(toks, token{tokString, sb.String(), i})
		default:
			start := i
			two := ""
			if i+1 < n {
				two = input[i : i+2]
			}
			switch two {
			case "<=", ">=", "<>", "!=":
				toks = append(toks, token{tokSymbol, two, start})
				i += 2
				continue
			}
			switch c {
			case '(', ')', ',', '+', '-', '*', '/', '%', '=', '<', '>', '.':
				toks = append(toks, token{tokSymbol, string(c), start})
				i++
			default:
				return nil, &lexError{i, fmt.Sprintf("unexpected character %q", c)}
			}
		}
	}
	toks = append(toks, token{tokEOF, "", n})
	return toks, nil
}
