package types

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		Int64:   "BIGINT",
		Float64: "DOUBLE",
		String:  "VARCHAR",
		Bool:    "BOOLEAN",
		Date:    "DATE",
		Unknown: "UNKNOWN",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestParseKind(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Kind
	}{
		{"BIGINT", Int64}, {"INT", Int64}, {"INTEGER", Int64},
		{"DOUBLE", Float64}, {"FLOAT", Float64}, {"REAL", Float64},
		{"VARCHAR", String}, {"STRING", String}, {"TEXT", String},
		{"BOOLEAN", Bool}, {"BOOL", Bool},
		{"DATE", Date},
	} {
		got, err := ParseKind(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseKind("BLOB"); err == nil {
		t.Error("ParseKind(BLOB) should fail")
	}
}

func TestKindPredicates(t *testing.T) {
	if !Int64.Numeric() || !Float64.Numeric() || !Date.Numeric() {
		t.Error("Int64/Float64/Date must be numeric")
	}
	if String.Numeric() || Bool.Numeric() {
		t.Error("String/Bool must not be numeric")
	}
	if Unknown.Valid() || !Date.Valid() {
		t.Error("Valid() wrong for Unknown/Date")
	}
}

func TestSchemaBasics(t *testing.T) {
	s := NewSchema(Column{"a", Int64}, Column{"b", Float64}, Column{"c", String})
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.IndexOf("b") != 1 || s.IndexOf("zzz") != -1 {
		t.Error("IndexOf wrong")
	}
	if got := s.String(); got != "(a BIGINT, b DOUBLE, c VARCHAR)" {
		t.Errorf("String() = %q", got)
	}
	p := s.Project([]int{2, 0})
	if p.Len() != 2 || p.Columns[0].Name != "c" || p.Columns[1].Name != "a" {
		t.Errorf("Project wrong: %v", p)
	}
	if !s.Equal(NewSchema(s.Columns...)) {
		t.Error("Equal(self copy) = false")
	}
	if s.Equal(p) {
		t.Error("Equal(different) = true")
	}
	names, kinds := s.Names(), s.Kinds()
	if names[2] != "c" || kinds[1] != Float64 {
		t.Error("Names/Kinds wrong")
	}
}

func TestValueConstructorsAndString(t *testing.T) {
	for _, tc := range []struct {
		v    Value
		want string
	}{
		{IntValue(-42), "-42"},
		{FloatValue(2.5), "2.5"},
		{StringValue("hi"), "hi"},
		{BoolValue(true), "true"},
		{NullValue(Int64), "NULL"},
	} {
		if got := tc.v.String(); got != tc.want {
			t.Errorf("%#v.String() = %q, want %q", tc.v, got, tc.want)
		}
	}
}

func TestDateRoundTrip(t *testing.T) {
	v, err := DateFromString("1998-09-02")
	if err != nil {
		t.Fatal(err)
	}
	if got := v.String(); got != "1998-09-02" {
		t.Errorf("date formats as %q", got)
	}
	if _, err := DateFromString("not-a-date"); err == nil {
		t.Error("bad date should fail")
	}
}

func TestCompareSameKind(t *testing.T) {
	if Compare(IntValue(1), IntValue(2)) != -1 ||
		Compare(IntValue(2), IntValue(1)) != 1 ||
		Compare(IntValue(3), IntValue(3)) != 0 {
		t.Error("int compare wrong")
	}
	if Compare(StringValue("a"), StringValue("b")) != -1 {
		t.Error("string compare wrong")
	}
	if Compare(BoolValue(false), BoolValue(true)) != -1 {
		t.Error("bool compare wrong")
	}
	if Compare(FloatValue(1.5), FloatValue(1.5)) != 0 {
		t.Error("float compare wrong")
	}
}

func TestCompareNulls(t *testing.T) {
	n := NullValue(Int64)
	if Compare(n, IntValue(0)) != -1 {
		t.Error("NULL must sort before values")
	}
	if Compare(IntValue(0), n) != 1 {
		t.Error("value must sort after NULL")
	}
	if Compare(n, NullValue(Int64)) != 0 {
		t.Error("NULL == NULL under Compare")
	}
	if !Equal(n, NullValue(Int64)) {
		t.Error("Equal(NULL, NULL) = false")
	}
}

func TestCompareNaN(t *testing.T) {
	nan := FloatValue(math.NaN())
	if Compare(nan, nan) != 0 {
		t.Error("NaN must equal NaN for total ordering")
	}
	if Compare(nan, FloatValue(1)) != 1 || Compare(FloatValue(1), nan) != -1 {
		t.Error("NaN must sort after numbers")
	}
}

func TestCompareCrossNumeric(t *testing.T) {
	if Compare(IntValue(2), FloatValue(2.5)) != -1 {
		t.Error("int vs float compare wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("comparing VARCHAR to BIGINT must panic")
		}
	}()
	Compare(StringValue("x"), IntValue(1))
}

func TestCoerce(t *testing.T) {
	v, err := Coerce(IntValue(3), Float64)
	if err != nil || v.F != 3.0 {
		t.Errorf("int->float: %v %v", v, err)
	}
	v, err = Coerce(FloatValue(3.9), Int64)
	if err != nil || v.I != 3 {
		t.Errorf("float->int: %v %v", v, err)
	}
	v, err = Coerce(NullValue(Int64), Float64)
	if err != nil || !v.Null || v.Kind != Float64 {
		t.Errorf("null coerce: %v %v", v, err)
	}
	if _, err = Coerce(BoolValue(true), Int64); err == nil {
		t.Error("bool->int must fail")
	}
	d, _ := DateFromString("2020-01-01")
	v, err = Coerce(d, Int64)
	if err != nil || v.Kind != Int64 {
		t.Errorf("date->int: %v %v", v, err)
	}
}

func TestCommonKind(t *testing.T) {
	k, err := CommonKind(Int64, Float64)
	if err != nil || k != Float64 {
		t.Errorf("CommonKind(int,float) = %v, %v", k, err)
	}
	k, err = CommonKind(Date, Int64)
	if err != nil || k != Int64 {
		t.Errorf("CommonKind(date,int) = %v, %v", k, err)
	}
	if _, err = CommonKind(String, Int64); err == nil {
		t.Error("CommonKind(string,int) must fail")
	}
	k, err = CommonKind(String, String)
	if err != nil || k != String {
		t.Errorf("CommonKind(string,string) = %v, %v", k, err)
	}
}

func TestParseValueRoundTrip(t *testing.T) {
	vals := []Value{
		IntValue(-7), FloatValue(1.25), StringValue("abc"),
		BoolValue(false), DateValue(10000), NullValue(Float64),
	}
	for _, v := range vals {
		got, err := ParseValue(v.String(), v.Kind)
		if err != nil {
			t.Fatalf("ParseValue(%q, %v): %v", v.String(), v.Kind, err)
		}
		if !Equal(got, v) {
			t.Errorf("round trip %v -> %v", v, got)
		}
	}
	if _, err := ParseValue("xyz", Int64); err == nil {
		t.Error("bad int parse must fail")
	}
	if _, err := ParseValue("xyz", Bool); err == nil {
		t.Error("bad bool parse must fail")
	}
}

// Property: Compare is antisymmetric and ParseValue∘String is identity for
// int64 values.
func TestQuickCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		return Compare(IntValue(a), IntValue(b)) == -Compare(IntValue(b), IntValue(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickFloatStringRoundTrip(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) {
			return true // NaN does not round-trip through ParseFloat equality
		}
		v, err := ParseValue(FloatValue(x).String(), Float64)
		return err == nil && v.F == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCoerceIntFloatExact(t *testing.T) {
	f := func(x int32) bool {
		v, err := Coerce(IntValue(int64(x)), Float64)
		return err == nil && v.F == float64(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
