// Package types defines the SQL type system shared by the engine, the
// storage formats and the OCS embedded engine: scalar types, schemas and
// value-level operations (comparison, coercion, parsing, formatting).
//
// The type system is deliberately small — BIGINT, DOUBLE, VARCHAR, BOOLEAN
// and DATE — matching the types exercised by the paper's workloads (Laghos,
// Deep Water Impact, TPC-H Q1). DOUBLE is a first-class citizen: unlike
// real S3 Select, every layer of this system supports double-precision
// floating point, which the paper calls out as a requirement for
// scientific datasets.
package types

import (
	"fmt"
	"math"
	"strconv"
	"time"
)

// Kind enumerates the scalar SQL types supported across the system.
type Kind uint8

const (
	// Unknown is the zero Kind; it is never valid in a schema.
	Unknown Kind = iota
	// Int64 is SQL BIGINT.
	Int64
	// Float64 is SQL DOUBLE.
	Float64
	// String is SQL VARCHAR.
	String
	// Bool is SQL BOOLEAN.
	Bool
	// Date is a calendar date stored as days since the Unix epoch.
	Date
)

// String returns the SQL spelling of the type.
func (k Kind) String() string {
	switch k {
	case Int64:
		return "BIGINT"
	case Float64:
		return "DOUBLE"
	case String:
		return "VARCHAR"
	case Bool:
		return "BOOLEAN"
	case Date:
		return "DATE"
	default:
		return "UNKNOWN"
	}
}

// Valid reports whether k is one of the defined scalar types.
func (k Kind) Valid() bool { return k >= Int64 && k <= Date }

// Numeric reports whether the type participates in arithmetic.
func (k Kind) Numeric() bool { return k == Int64 || k == Float64 || k == Date }

// Orderable reports whether values of the type can be compared with < / >.
func (k Kind) Orderable() bool { return k != Unknown }

// ParseKind converts a SQL type name (case-sensitive upper) to a Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "BIGINT", "INT", "INTEGER":
		return Int64, nil
	case "DOUBLE", "FLOAT", "REAL":
		return Float64, nil
	case "VARCHAR", "STRING", "TEXT":
		return String, nil
	case "BOOLEAN", "BOOL":
		return Bool, nil
	case "DATE":
		return Date, nil
	default:
		return Unknown, fmt.Errorf("types: unknown type name %q", s)
	}
}

// Column describes one column of a table or intermediate schema.
type Column struct {
	Name string
	Type Kind
}

// Schema is an ordered list of columns.
type Schema struct {
	Columns []Column
}

// NewSchema builds a schema from columns.
func NewSchema(cols ...Column) *Schema {
	return &Schema{Columns: cols}
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.Columns) }

// IndexOf returns the position of the named column, or -1.
func (s *Schema) IndexOf(name string) int {
	for i, c := range s.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Names returns the column names in order.
func (s *Schema) Names() []string {
	names := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		names[i] = c.Name
	}
	return names
}

// Kinds returns the column types in order.
func (s *Schema) Kinds() []Kind {
	kinds := make([]Kind, len(s.Columns))
	for i, c := range s.Columns {
		kinds[i] = c.Type
	}
	return kinds
}

// Project returns a new schema containing the columns at the given indices.
func (s *Schema) Project(indices []int) *Schema {
	out := make([]Column, len(indices))
	for i, idx := range indices {
		out[i] = s.Columns[idx]
	}
	return &Schema{Columns: out}
}

// Equal reports whether two schemas have the same column names and types.
func (s *Schema) Equal(o *Schema) bool {
	if len(s.Columns) != len(o.Columns) {
		return false
	}
	for i := range s.Columns {
		if s.Columns[i] != o.Columns[i] {
			return false
		}
	}
	return true
}

// String renders the schema as "(a BIGINT, b DOUBLE)".
func (s *Schema) String() string {
	out := "("
	for i, c := range s.Columns {
		if i > 0 {
			out += ", "
		}
		out += c.Name + " " + c.Type.String()
	}
	return out + ")"
}

// Value is a dynamically typed SQL scalar. The zero Value is SQL NULL.
// Exactly one of the payload fields is meaningful, selected by Kind;
// Null overrides all.
type Value struct {
	Kind Kind
	Null bool
	I    int64   // Int64, Date (days since epoch)
	F    float64 // Float64
	S    string  // String
	B    bool    // Bool
}

// NullValue returns a typed NULL.
func NullValue(k Kind) Value { return Value{Kind: k, Null: true} }

// IntValue wraps an int64.
func IntValue(v int64) Value { return Value{Kind: Int64, I: v} }

// FloatValue wraps a float64.
func FloatValue(v float64) Value { return Value{Kind: Float64, F: v} }

// StringValue wraps a string.
func StringValue(v string) Value { return Value{Kind: String, S: v} }

// BoolValue wraps a bool.
func BoolValue(v bool) Value { return Value{Kind: Bool, B: v} }

// DateValue wraps a day count since the Unix epoch.
func DateValue(days int64) Value { return Value{Kind: Date, I: days} }

// DateFromString parses "YYYY-MM-DD" into a Date value.
func DateFromString(s string) (Value, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return Value{}, fmt.Errorf("types: bad date %q: %w", s, err)
	}
	return DateValue(t.Unix() / 86400), nil
}

// AsFloat converts a numeric value to float64. It panics on non-numeric
// kinds; callers must type-check first.
func (v Value) AsFloat() float64 {
	switch v.Kind {
	case Int64, Date:
		return float64(v.I)
	case Float64:
		return v.F
	default:
		panic("types: AsFloat on " + v.Kind.String())
	}
}

// String formats the value for display (CSV/CLI). NULL renders as "NULL".
func (v Value) String() string {
	if v.Null {
		return "NULL"
	}
	switch v.Kind {
	case Int64:
		return strconv.FormatInt(v.I, 10)
	case Float64:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case String:
		return v.S
	case Bool:
		return strconv.FormatBool(v.B)
	case Date:
		return time.Unix(v.I*86400, 0).UTC().Format("2006-01-02")
	default:
		return "?"
	}
}

// Compare orders two values of the same kind: -1, 0 or +1. NULLs sort
// before all non-NULL values (NULLS FIRST), matching the engine's sort
// semantics. Comparing values of different kinds panics, except that
// Int64 and Float64 compare numerically.
func Compare(a, b Value) int {
	if a.Null || b.Null {
		switch {
		case a.Null && b.Null:
			return 0
		case a.Null:
			return -1
		default:
			return 1
		}
	}
	if a.Kind != b.Kind {
		if a.Kind.Numeric() && b.Kind.Numeric() {
			return compareFloat(a.AsFloat(), b.AsFloat())
		}
		panic(fmt.Sprintf("types: comparing %s to %s", a.Kind, b.Kind))
	}
	switch a.Kind {
	case Int64, Date:
		switch {
		case a.I < b.I:
			return -1
		case a.I > b.I:
			return 1
		default:
			return 0
		}
	case Float64:
		return compareFloat(a.F, b.F)
	case String:
		switch {
		case a.S < b.S:
			return -1
		case a.S > b.S:
			return 1
		default:
			return 0
		}
	case Bool:
		switch {
		case !a.B && b.B:
			return -1
		case a.B && !b.B:
			return 1
		default:
			return 0
		}
	default:
		panic("types: comparing unknown kind")
	}
}

// CompareFloat orders two float64s under the engine's total order: NaN
// sorts after everything and equal to itself. Exported so the vectorized
// kernels (internal/expr) produce bit-identical results to Compare.
func CompareFloat(a, b float64) int { return compareFloat(a, b) }

func compareFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	case a == b:
		return 0
	// NaNs order after everything else, and equal to each other, so
	// sorting is total.
	case math.IsNaN(a) && math.IsNaN(b):
		return 0
	case math.IsNaN(a):
		return 1
	default:
		return -1
	}
}

// Equal reports value equality under Compare semantics (NULL == NULL).
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// Coerce converts v to the target kind where an implicit SQL conversion
// exists (int↔float, date→int). It returns an error for lossy or
// undefined conversions other than int→float.
func Coerce(v Value, target Kind) (Value, error) {
	if v.Kind == target {
		return v, nil
	}
	if v.Null {
		return NullValue(target), nil
	}
	switch {
	case v.Kind == Int64 && target == Float64:
		return FloatValue(float64(v.I)), nil
	case v.Kind == Float64 && target == Int64:
		return IntValue(int64(v.F)), nil
	case v.Kind == Date && target == Int64:
		return IntValue(v.I), nil
	case v.Kind == Int64 && target == Date:
		return DateValue(v.I), nil
	case v.Kind == String && target == Date:
		return DateFromString(v.S)
	default:
		return Value{}, fmt.Errorf("types: cannot coerce %s to %s", v.Kind, target)
	}
}

// CommonKind returns the type two operands should be promoted to for
// arithmetic or comparison, or an error when no promotion exists.
func CommonKind(a, b Kind) (Kind, error) {
	if a == b {
		return a, nil
	}
	if a.Numeric() && b.Numeric() {
		if a == Float64 || b == Float64 {
			return Float64, nil
		}
		// Date vs Int64 promotes to Int64 (day arithmetic).
		return Int64, nil
	}
	return Unknown, fmt.Errorf("types: no common type for %s and %s", a, b)
}

// ParseValue parses the textual form produced by Value.String back into a
// typed value; used by the CSV (S3 Select-style) result path.
func ParseValue(s string, k Kind) (Value, error) {
	if s == "NULL" {
		return NullValue(k), nil
	}
	switch k {
	case Int64:
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("types: bad BIGINT %q: %w", s, err)
		}
		return IntValue(i), nil
	case Float64:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return Value{}, fmt.Errorf("types: bad DOUBLE %q: %w", s, err)
		}
		return FloatValue(f), nil
	case String:
		return StringValue(s), nil
	case Bool:
		b, err := strconv.ParseBool(s)
		if err != nil {
			return Value{}, fmt.Errorf("types: bad BOOLEAN %q: %w", s, err)
		}
		return BoolValue(b), nil
	case Date:
		return DateFromString(s)
	default:
		return Value{}, fmt.Errorf("types: cannot parse kind %v", k)
	}
}
