package parquetlite

import (
	"testing"

	"prestocs/internal/column"
	"prestocs/internal/compress"
	"prestocs/internal/expr"
	"prestocs/internal/types"
)

func benchPage(rows int) (*types.Schema, *column.Page) {
	schema := types.NewSchema(
		types.Column{Name: "id", Type: types.Int64},
		types.Column{Name: "v", Type: types.Float64},
		types.Column{Name: "tag", Type: types.String},
	)
	p := column.NewPage(schema)
	for i := 0; i < rows; i++ {
		p.AppendRow(
			types.IntValue(int64(i)),
			types.FloatValue(float64(i)*0.37),
			types.StringValue([]string{"aa", "bb", "cc"}[i%3]),
		)
	}
	return schema, p
}

func BenchmarkWrite(b *testing.B) {
	for _, codec := range compress.Codecs() {
		codec := codec
		b.Run(codec.String(), func(b *testing.B) {
			schema, page := benchPage(10000)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				data, err := WritePages(schema, WriterOptions{Codec: codec, RowGroupSize: 2048}, page)
				if err != nil {
					b.Fatal(err)
				}
				b.SetBytes(int64(len(data)))
			}
		})
	}
}

func BenchmarkReadAll(b *testing.B) {
	schema, page := benchPage(10000)
	data, err := WritePages(schema, WriterOptions{Codec: compress.Snappy, RowGroupSize: 2048}, page)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := NewReader(data)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := r.ReadAll([]int{0, 1, 2}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPrunedRead(b *testing.B) {
	schema, page := benchPage(10000)
	data, _ := WritePages(schema, WriterOptions{RowGroupSize: 512}, page)
	pred, _ := expr.NewCompare(expr.Gt, expr.Col(0, "id", types.Int64), expr.Lit(types.IntValue(9000)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, _ := NewReader(data)
		for _, rg := range r.PruneRowGroups(pred) {
			if _, err := r.ReadRowGroup(rg, []int{0, 1}); err != nil {
				b.Fatal(err)
			}
		}
	}
}
