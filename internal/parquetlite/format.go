// Package parquetlite implements a Parquet-like columnar object format:
// row groups of independently compressed column chunks with per-chunk
// min/max/null-count statistics, a binary footer, selective column reads
// and row-group pruning. Datasets in the evaluation are stored as
// parquetlite objects in the object store, and both the compute-side scan
// path and the OCS embedded engine read them.
//
// File layout (all offsets absolute):
//
//	magic "PQL1"
//	row group 0: chunk(col 0) | chunk(col 1) | ...
//	row group 1: ...
//	footer (protowire message)
//	u32 footer length | magic "PQL1"
//
// Each column chunk is an encoded buffer (plain / dictionary / RLE)
// compressed with the file's codec. Statistics are collected per chunk at
// write time; they feed the Hive-metastore table statistics and row-group
// pruning.
package parquetlite

import (
	"errors"
	"fmt"

	"prestocs/internal/compress"
	"prestocs/internal/protowire"
	"prestocs/internal/types"
)

// Magic identifies a parquetlite file (head and tail).
var Magic = []byte("PQL1")

// ErrCorrupt reports a malformed file.
var ErrCorrupt = errors.New("parquetlite: corrupt file")

// Encoding identifies how a column chunk's values are encoded before
// compression.
type Encoding uint8

const (
	// Plain stores values back to back (validity bitmap + typed buffer).
	Plain Encoding = iota
	// Dict stores a value dictionary plus per-row indices (strings only).
	Dict
	// RLE stores (run length, value) pairs (int64/date only).
	RLE
)

func (e Encoding) String() string {
	switch e {
	case Plain:
		return "plain"
	case Dict:
		return "dict"
	case RLE:
		return "rle"
	default:
		return fmt.Sprintf("encoding(%d)", uint8(e))
	}
}

// Stats summarizes one column chunk.
type Stats struct {
	Min       types.Value // NULL when the chunk is all-NULL or empty
	Max       types.Value
	NullCount int64
	NumValues int64
}

// ChunkMeta describes one column chunk inside a row group.
type ChunkMeta struct {
	Offset           int64
	CompressedSize   int64
	UncompressedSize int64
	Encoding         Encoding
	Stats            Stats
}

// RowGroupMeta describes one row group.
type RowGroupMeta struct {
	NumRows int64
	Chunks  []ChunkMeta // one per schema column
}

// FileMeta is the decoded footer.
type FileMeta struct {
	Schema    *types.Schema
	Codec     compress.Codec
	RowGroups []RowGroupMeta
	NumRows   int64
}

// encodeValue writes a stats value (kind + null + payload).
func encodeValue(e *protowire.Encoder, field int, v types.Value) {
	e.Message(field, func(m *protowire.Encoder) {
		m.Uint64(1, uint64(v.Kind))
		m.Bool(2, v.Null)
		if v.Null {
			return
		}
		switch v.Kind {
		case types.Int64, types.Date:
			m.Int64(3, v.I)
		case types.Float64:
			m.Double(4, v.F)
		case types.String:
			m.String(5, v.S)
		case types.Bool:
			m.Bool(6, v.B)
		}
	})
}

func decodeValue(d *protowire.Decoder) (types.Value, error) {
	var v types.Value
	for !d.Done() {
		f, ty, err := d.Next()
		if err != nil {
			return v, err
		}
		switch f {
		case 1:
			u, err := d.Uint64()
			if err != nil {
				return v, err
			}
			v.Kind = types.Kind(u)
		case 2:
			v.Null, err = d.Bool()
		case 3:
			v.I, err = d.Int64()
		case 4:
			v.F, err = d.Double()
		case 5:
			v.S, err = d.String()
		case 6:
			v.B, err = d.Bool()
		default:
			err = d.Skip(ty)
		}
		if err != nil {
			return v, err
		}
	}
	return v, nil
}

func encodeFooter(meta *FileMeta) ([]byte, error) {
	e := protowire.NewEncoder()
	// Schema.
	for _, c := range meta.Schema.Columns {
		col := c
		e.Message(1, func(m *protowire.Encoder) {
			m.String(1, col.Name)
			m.Uint64(2, uint64(col.Type))
		})
	}
	e.Uint64(2, uint64(meta.Codec))
	e.Int64(3, meta.NumRows)
	for _, rg := range meta.RowGroups {
		group := rg
		e.Message(4, func(m *protowire.Encoder) {
			m.Int64(1, group.NumRows)
			for _, ch := range group.Chunks {
				chunk := ch
				m.Message(2, func(cm *protowire.Encoder) {
					cm.Int64(1, chunk.Offset)
					cm.Int64(2, chunk.CompressedSize)
					cm.Int64(3, chunk.UncompressedSize)
					cm.Uint64(4, uint64(chunk.Encoding))
					encodeValue(cm, 5, chunk.Stats.Min)
					encodeValue(cm, 6, chunk.Stats.Max)
					cm.Int64(7, chunk.Stats.NullCount)
					cm.Int64(8, chunk.Stats.NumValues)
				})
			}
		})
	}
	return e.Encoded(), nil
}

func decodeFooter(data []byte) (*FileMeta, error) {
	d := protowire.NewDecoder(data)
	meta := &FileMeta{Schema: types.NewSchema()}
	for !d.Done() {
		f, ty, err := d.Next()
		if err != nil {
			return nil, err
		}
		switch f {
		case 1:
			m, err := d.Message()
			if err != nil {
				return nil, err
			}
			col, err := decodeColumn(m)
			if err != nil {
				return nil, err
			}
			meta.Schema.Columns = append(meta.Schema.Columns, col)
		case 2:
			u, err := d.Uint64()
			if err != nil {
				return nil, err
			}
			meta.Codec = compress.Codec(u)
		case 3:
			meta.NumRows, err = d.Int64()
			if err != nil {
				return nil, err
			}
		case 4:
			m, err := d.Message()
			if err != nil {
				return nil, err
			}
			rg, err := decodeRowGroup(m)
			if err != nil {
				return nil, err
			}
			meta.RowGroups = append(meta.RowGroups, rg)
		default:
			if err := d.Skip(ty); err != nil {
				return nil, err
			}
		}
	}
	return meta, nil
}

func decodeColumn(d *protowire.Decoder) (types.Column, error) {
	var col types.Column
	for !d.Done() {
		f, ty, err := d.Next()
		if err != nil {
			return col, err
		}
		switch f {
		case 1:
			col.Name, err = d.String()
		case 2:
			var u uint64
			u, err = d.Uint64()
			col.Type = types.Kind(u)
		default:
			err = d.Skip(ty)
		}
		if err != nil {
			return col, err
		}
	}
	if !col.Type.Valid() {
		return col, fmt.Errorf("parquetlite: invalid column type in footer")
	}
	return col, nil
}

func decodeRowGroup(d *protowire.Decoder) (RowGroupMeta, error) {
	var rg RowGroupMeta
	for !d.Done() {
		f, ty, err := d.Next()
		if err != nil {
			return rg, err
		}
		switch f {
		case 1:
			rg.NumRows, err = d.Int64()
			if err != nil {
				return rg, err
			}
		case 2:
			m, err := d.Message()
			if err != nil {
				return rg, err
			}
			ch, err := decodeChunkMeta(m)
			if err != nil {
				return rg, err
			}
			rg.Chunks = append(rg.Chunks, ch)
		default:
			if err := d.Skip(ty); err != nil {
				return rg, err
			}
		}
	}
	return rg, nil
}

func decodeChunkMeta(d *protowire.Decoder) (ChunkMeta, error) {
	var ch ChunkMeta
	for !d.Done() {
		f, ty, err := d.Next()
		if err != nil {
			return ch, err
		}
		switch f {
		case 1:
			ch.Offset, err = d.Int64()
		case 2:
			ch.CompressedSize, err = d.Int64()
		case 3:
			ch.UncompressedSize, err = d.Int64()
		case 4:
			var u uint64
			u, err = d.Uint64()
			ch.Encoding = Encoding(u)
		case 5:
			var m *protowire.Decoder
			m, err = d.Message()
			if err == nil {
				ch.Stats.Min, err = decodeValue(m)
			}
		case 6:
			var m *protowire.Decoder
			m, err = d.Message()
			if err == nil {
				ch.Stats.Max, err = decodeValue(m)
			}
		case 7:
			ch.Stats.NullCount, err = d.Int64()
		case 8:
			ch.Stats.NumValues, err = d.Int64()
		default:
			err = d.Skip(ty)
		}
		if err != nil {
			return ch, err
		}
	}
	return ch, nil
}
