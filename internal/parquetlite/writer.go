package parquetlite

import (
	"encoding/binary"
	"fmt"

	"prestocs/internal/column"
	"prestocs/internal/compress"
	"prestocs/internal/types"
)

// WriterOptions configures file writing.
type WriterOptions struct {
	// Codec compresses every column chunk. Default None.
	Codec compress.Codec
	// RowGroupSize caps rows per row group. Default 65536.
	RowGroupSize int
}

// Writer accumulates rows and produces a parquetlite file image.
type Writer struct {
	schema  *types.Schema
	opts    WriterOptions
	buf     []byte
	pending *column.Page
	meta    FileMeta
}

// NewWriter starts a file with the given schema.
func NewWriter(schema *types.Schema, opts WriterOptions) *Writer {
	if opts.RowGroupSize <= 0 {
		opts.RowGroupSize = 65536
	}
	w := &Writer{
		schema:  schema,
		opts:    opts,
		pending: column.NewPage(schema),
		meta:    FileMeta{Schema: schema, Codec: opts.Codec},
	}
	w.buf = append(w.buf, Magic...)
	return w
}

// WriteRow buffers one row.
func (w *Writer) WriteRow(vals ...types.Value) error {
	if len(vals) != w.schema.Len() {
		return fmt.Errorf("parquetlite: row has %d values, schema has %d columns", len(vals), w.schema.Len())
	}
	w.pending.AppendRow(vals...)
	if w.pending.NumRows() >= w.opts.RowGroupSize {
		return w.flushGroup()
	}
	return nil
}

// WritePage buffers all rows of a page (schema must match by arity/kind).
func (w *Writer) WritePage(p *column.Page) error {
	for i := 0; i < p.NumRows(); i++ {
		if err := w.WriteRow(p.Row(i)...); err != nil {
			return err
		}
	}
	return nil
}

func (w *Writer) flushGroup() error {
	n := w.pending.NumRows()
	if n == 0 {
		return nil
	}
	rg := RowGroupMeta{NumRows: int64(n)}
	for _, vec := range w.pending.Vectors {
		enc := chooseEncoding(vec)
		raw := encodeChunk(vec, enc)
		comp, err := compress.Encode(w.opts.Codec, raw)
		if err != nil {
			return err
		}
		rg.Chunks = append(rg.Chunks, ChunkMeta{
			Offset:           int64(len(w.buf)),
			CompressedSize:   int64(len(comp)),
			UncompressedSize: int64(len(raw)),
			Encoding:         enc,
			Stats:            computeStats(vec),
		})
		w.buf = append(w.buf, comp...)
	}
	w.meta.RowGroups = append(w.meta.RowGroups, rg)
	w.meta.NumRows += int64(n)
	w.pending = column.NewPage(w.schema)
	return nil
}

// Finish flushes pending rows, appends the footer and returns the
// complete file image. The writer must not be reused afterwards.
func (w *Writer) Finish() ([]byte, error) {
	if err := w.flushGroup(); err != nil {
		return nil, err
	}
	footer, err := encodeFooter(&w.meta)
	if err != nil {
		return nil, err
	}
	w.buf = append(w.buf, footer...)
	w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(len(footer)))
	w.buf = append(w.buf, Magic...)
	return w.buf, nil
}

// WritePages is a convenience helper producing a complete file from pages.
func WritePages(schema *types.Schema, opts WriterOptions, pages ...*column.Page) ([]byte, error) {
	w := NewWriter(schema, opts)
	for _, p := range pages {
		if err := w.WritePage(p); err != nil {
			return nil, err
		}
	}
	return w.Finish()
}
