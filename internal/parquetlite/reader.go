package parquetlite

import (
	"encoding/binary"
	"fmt"
	"sync"

	"prestocs/internal/column"
	"prestocs/internal/compress"
	"prestocs/internal/expr"
	"prestocs/internal/types"
)

// decodeBufPool recycles scratch buffers for decompressing column chunks.
// decodeChunk copies every value out of the raw buffer (ints into vector
// storage, strings via string()), so the buffer can be recycled as soon
// as the chunk is decoded.
var decodeBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 1<<16)
		return &b
	},
}

// Reader provides random access to a parquetlite file image: footer
// metadata, selective column-chunk reads and row-group pruning. It also
// meters the bytes it touches (compressed reads and decompressed output)
// so the cost model can price storage I/O and decompression.
type Reader struct {
	data []byte
	meta *FileMeta

	// BytesRead accumulates compressed chunk bytes actually read.
	BytesRead int64
	// BytesDecompressed accumulates post-decompression chunk bytes.
	BytesDecompressed int64
}

// NewReader parses the footer of a file image.
func NewReader(data []byte) (*Reader, error) {
	tail := len(Magic) + 4
	if len(data) < len(Magic)+tail {
		return nil, ErrCorrupt
	}
	if string(data[:len(Magic)]) != string(Magic) ||
		string(data[len(data)-len(Magic):]) != string(Magic) {
		return nil, ErrCorrupt
	}
	footerLen := int(binary.LittleEndian.Uint32(data[len(data)-tail:]))
	footerEnd := len(data) - tail
	footerStart := footerEnd - footerLen
	if footerStart < len(Magic) {
		return nil, ErrCorrupt
	}
	meta, err := decodeFooter(data[footerStart:footerEnd])
	if err != nil {
		return nil, fmt.Errorf("parquetlite: decoding footer: %w", err)
	}
	for _, rg := range meta.RowGroups {
		if len(rg.Chunks) != meta.Schema.Len() {
			return nil, ErrCorrupt
		}
		for _, ch := range rg.Chunks {
			if ch.Offset < int64(len(Magic)) || ch.Offset+ch.CompressedSize > int64(footerStart) {
				return nil, ErrCorrupt
			}
		}
	}
	return &Reader{data: data, meta: meta}, nil
}

// NewReaderWithMeta opens a file image with an already-decoded footer,
// skipping the footer decode and chunk-bounds validation that NewReader
// performs — the injected-footer path the storage node's footer cache
// uses. meta must have been produced by NewReader over a byte-identical
// image (the cache guarantees this by keying footers on the object
// version), so only the cheap magic framing is re-checked here.
func NewReaderWithMeta(data []byte, meta *FileMeta) (*Reader, error) {
	if len(data) < 2*len(Magic)+4 ||
		string(data[:len(Magic)]) != string(Magic) ||
		string(data[len(data)-len(Magic):]) != string(Magic) {
		return nil, ErrCorrupt
	}
	if meta == nil {
		return nil, fmt.Errorf("parquetlite: NewReaderWithMeta requires a footer")
	}
	return &Reader{data: data, meta: meta}, nil
}

// Meta returns the decoded footer.
func (r *Reader) Meta() *FileMeta { return r.meta }

// Schema returns the file schema.
func (r *Reader) Schema() *types.Schema { return r.meta.Schema }

// NumRows returns the total row count.
func (r *Reader) NumRows() int64 { return r.meta.NumRows }

// ReadColumn decompresses and decodes one column chunk.
func (r *Reader) ReadColumn(rowGroup, col int) (*column.Vector, error) {
	if rowGroup < 0 || rowGroup >= len(r.meta.RowGroups) {
		return nil, fmt.Errorf("parquetlite: row group %d out of range", rowGroup)
	}
	rg := r.meta.RowGroups[rowGroup]
	if col < 0 || col >= len(rg.Chunks) {
		return nil, fmt.Errorf("parquetlite: column %d out of range", col)
	}
	ch := rg.Chunks[col]
	comp := r.data[ch.Offset : ch.Offset+ch.CompressedSize]
	r.BytesRead += ch.CompressedSize
	var raw []byte
	var scratch *[]byte
	if r.meta.Codec == compress.None {
		// Identity codec: decode straight from the file image. decodeChunk
		// copies every value out, so no aliasing escapes.
		raw = comp
	} else {
		scratch = decodeBufPool.Get().(*[]byte)
		var err error
		raw, err = compress.DecodeAppend(r.meta.Codec, comp, (*scratch)[:0])
		if err != nil {
			decodeBufPool.Put(scratch)
			return nil, fmt.Errorf("parquetlite: chunk rg=%d col=%d: %w", rowGroup, col, err)
		}
	}
	r.BytesDecompressed += int64(len(raw))
	vec, err := decodeChunk(raw, r.meta.Schema.Columns[col].Type, ch.Encoding)
	if scratch != nil {
		if cap(raw) > cap(*scratch) {
			*scratch = raw[:0]
		}
		decodeBufPool.Put(scratch)
	}
	if err != nil {
		return nil, fmt.Errorf("parquetlite: chunk rg=%d col=%d: %w", rowGroup, col, err)
	}
	if int64(vec.Len()) != rg.NumRows {
		return nil, ErrCorrupt
	}
	return vec, nil
}

// ReadRowGroup materializes the given columns of one row group as a page.
// cols is a list of schema ordinals; the resulting page's schema is the
// projection in that order.
func (r *Reader) ReadRowGroup(rowGroup int, cols []int) (*column.Page, error) {
	schema := r.meta.Schema.Project(cols)
	page := &column.Page{Schema: schema, Vectors: make([]*column.Vector, len(cols))}
	for i, c := range cols {
		vec, err := r.ReadColumn(rowGroup, c)
		if err != nil {
			return nil, err
		}
		page.Vectors[i] = vec
	}
	return page, nil
}

// ReadAll materializes the given columns of every row group.
func (r *Reader) ReadAll(cols []int) ([]*column.Page, error) {
	pages := make([]*column.Page, 0, len(r.meta.RowGroups))
	for rg := range r.meta.RowGroups {
		p, err := r.ReadRowGroup(rg, cols)
		if err != nil {
			return nil, err
		}
		pages = append(pages, p)
	}
	return pages, nil
}

// PruneRowGroups returns the row groups that may contain rows matching
// the predicate, using chunk min/max/null statistics via the expr range
// analyzer (zone-map skipping). A nil predicate keeps everything.
func (r *Reader) PruneRowGroups(pred expr.Expr) []int {
	if pred == nil {
		keep := make([]int, len(r.meta.RowGroups))
		for i := range keep {
			keep[i] = i
		}
		return keep
	}
	keep, _, _ := r.PruneRowGroupsRanges(expr.AnalyzeRanges(pred), nil)
	return keep
}

// PruneRowGroupsRanges prunes with a precomputed range analysis, so one
// analysis can be shared across files and row groups. cols lists the
// schema ordinals the scan would decode (nil means every column); it is
// used only to account the compressed bytes a pruned group would have
// read. Returns the surviving group ordinals (in file order, preserving
// the deterministic merge order of the parallel scanner), the pruned
// ordinals, and the bytes skipped.
func (r *Reader) PruneRowGroupsRanges(ranges expr.Ranges, cols []int) (keep, pruned []int, bytesSkipped int64) {
	keep = make([]int, 0, len(r.meta.RowGroups))
	for i := range r.meta.RowGroups {
		if r.rowGroupMayMatch(i, ranges) {
			keep = append(keep, i)
			continue
		}
		pruned = append(pruned, i)
		bytesSkipped += r.rowGroupBytes(i, cols)
	}
	return keep, pruned, bytesSkipped
}

// rowGroupMayMatch tests one row group's chunk statistics against the
// derived ranges. Conservative on every unknown: a column outside the
// schema, or a chunk whose stats were never recorded, keeps the group.
func (r *Reader) rowGroupMayMatch(rg int, ranges expr.Ranges) bool {
	if ranges.Never {
		return false
	}
	group := r.meta.RowGroups[rg]
	for col, cr := range ranges.Cols {
		if col < 0 || col >= len(group.Chunks) {
			continue
		}
		st := group.Chunks[col].Stats
		if st.NumValues == 0 && group.NumRows > 0 {
			// Stats absent (e.g. footer written without them): never prune
			// on a chunk we know nothing about.
			continue
		}
		hasNull := st.NullCount > 0
		hasNonNull := st.NumValues > st.NullCount
		if !cr.MayMatch(st.Min, st.Max, hasNull, hasNonNull) {
			return false
		}
	}
	return true
}

// rowGroupBytes sums the compressed size of the projected chunks of one
// row group (nil cols means all chunks).
func (r *Reader) rowGroupBytes(rg int, cols []int) int64 {
	group := r.meta.RowGroups[rg]
	var n int64
	if cols == nil {
		for _, ch := range group.Chunks {
			n += ch.CompressedSize
		}
		return n
	}
	for _, c := range cols {
		if c >= 0 && c < len(group.Chunks) {
			n += group.Chunks[c].CompressedSize
		}
	}
	return n
}

func (r *Reader) chunkStats(rg, col int) *Stats {
	if rg < 0 || rg >= len(r.meta.RowGroups) {
		return nil
	}
	chunks := r.meta.RowGroups[rg].Chunks
	if col < 0 || col >= len(chunks) {
		return nil
	}
	return &chunks[col].Stats
}

// ColumnStats aggregates chunk statistics across all row groups for one
// column: global min/max, null count and value count. Used when
// registering tables in the metastore.
func (r *Reader) ColumnStats(col int) Stats {
	agg := Stats{
		Min: types.NullValue(r.meta.Schema.Columns[col].Type),
		Max: types.NullValue(r.meta.Schema.Columns[col].Type),
	}
	for rg := range r.meta.RowGroups {
		st := r.chunkStats(rg, col)
		agg.NullCount += st.NullCount
		agg.NumValues += st.NumValues
		if !st.Min.Null && (agg.Min.Null || types.Compare(st.Min, agg.Min) < 0) {
			agg.Min = st.Min
		}
		if !st.Max.Null && (agg.Max.Null || types.Compare(st.Max, agg.Max) > 0) {
			agg.Max = st.Max
		}
	}
	return agg
}
