package parquetlite

import (
	"testing"

	"prestocs/internal/column"
	"prestocs/internal/expr"
	"prestocs/internal/types"
)

// buildPruneFile writes a two-column file with four row groups of four
// rows each:
//
//	group 0: id 0..3,   v all NULL
//	group 1: id 10..13, v non-NULL
//	group 2: id 20..23, v mixed NULL/non-NULL
//	group 3: id 30..33, v non-NULL
func buildPruneFile(t *testing.T) *Reader {
	t.Helper()
	schema := types.NewSchema(
		types.Column{Name: "id", Type: types.Int64},
		types.Column{Name: "v", Type: types.Float64},
	)
	page := column.NewPage(schema)
	for g := 0; g < 4; g++ {
		for i := 0; i < 4; i++ {
			id := types.IntValue(int64(g*10 + i))
			v := types.FloatValue(float64(g*10 + i))
			switch {
			case g == 0:
				v = types.NullValue(types.Float64)
			case g == 2 && i%2 == 0:
				v = types.NullValue(types.Float64)
			}
			page.AppendRow(id, v)
		}
	}
	img, err := WritePages(schema, WriterOptions{RowGroupSize: 4}, page)
	if err != nil {
		t.Fatalf("write: %v", err)
	}
	r, err := NewReader(img)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(r.Meta().RowGroups) != 4 {
		t.Fatalf("expected 4 row groups, got %d", len(r.Meta().RowGroups))
	}
	return r
}

func idCol() *expr.ColumnRef { return &expr.ColumnRef{Index: 0, Name: "id", Kind: types.Int64} }
func vCol() *expr.ColumnRef  { return &expr.ColumnRef{Index: 1, Name: "v", Kind: types.Float64} }

func intLit(v int64) *expr.Literal { return &expr.Literal{Value: types.IntValue(v)} }

func groupsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestPruneBoundaryEquality(t *testing.T) {
	r := buildPruneFile(t)
	// Group 1 holds id 10..13. A closed bound exactly on the chunk min or
	// max must keep the group.
	cases := []struct {
		name string
		pred expr.Expr
		want []int
	}{
		{"ge-max", &expr.Compare{Op: expr.Ge, L: idCol(), R: intLit(13)}, []int{1, 2, 3}},
		{"le-min", &expr.Compare{Op: expr.Le, L: idCol(), R: intLit(10)}, []int{0, 1}},
		{"eq-min", &expr.Compare{Op: expr.Eq, L: idCol(), R: intLit(10)}, []int{1}},
		{"eq-max", &expr.Compare{Op: expr.Eq, L: idCol(), R: intLit(13)}, []int{1}},
		// Open bounds exactly on the boundary do prune.
		{"gt-max", &expr.Compare{Op: expr.Gt, L: idCol(), R: intLit(13)}, []int{2, 3}},
		{"lt-min", &expr.Compare{Op: expr.Lt, L: idCol(), R: intLit(10)}, []int{0}},
		{"between-edges", &expr.Between{E: idCol(), Lo: intLit(13), Hi: intLit(20)}, []int{1, 2}},
	}
	for _, tc := range cases {
		got := r.PruneRowGroups(tc.pred)
		if !groupsEqual(got, tc.want) {
			t.Errorf("%s: kept %v want %v", tc.name, got, tc.want)
		}
	}
}

func TestPruneAllNullChunk(t *testing.T) {
	r := buildPruneFile(t)
	// Any ordinary comparison on v rejects NULLs, so the all-NULL group 0
	// is pruned; the mixed group 2 survives.
	got := r.PruneRowGroups(&expr.Compare{Op: expr.Ge, L: vCol(), R: &expr.Literal{Value: types.FloatValue(0)}})
	if !groupsEqual(got, []int{1, 2, 3}) {
		t.Errorf("v >= 0 kept %v, want [1 2 3] (all-NULL group pruned)", got)
	}
	// IS NULL keeps only groups that contain NULLs.
	got = r.PruneRowGroups(&expr.IsNull{E: vCol()})
	if !groupsEqual(got, []int{0, 2}) {
		t.Errorf("v IS NULL kept %v, want [0 2]", got)
	}
	// IS NOT NULL prunes the all-NULL group but keeps mixed ones.
	got = r.PruneRowGroups(&expr.IsNull{E: vCol(), Negate: true})
	if !groupsEqual(got, []int{1, 2, 3}) {
		t.Errorf("v IS NOT NULL kept %v, want [1 2 3]", got)
	}
}

func TestPruneColumnWithoutStats(t *testing.T) {
	r := buildPruneFile(t)
	// Erase the stats of the id chunks, as if the footer had been written
	// without them: pruning on id must keep every group.
	for g := range r.meta.RowGroups {
		r.meta.RowGroups[g].Chunks[0].Stats = Stats{}
	}
	got := r.PruneRowGroups(&expr.Compare{Op: expr.Eq, L: idCol(), R: intLit(999)})
	if !groupsEqual(got, []int{0, 1, 2, 3}) {
		t.Errorf("missing stats pruned groups: kept %v", got)
	}
	// A predicate on a column ordinal outside the schema also keeps all.
	wide := &expr.Compare{Op: expr.Eq, L: &expr.ColumnRef{Index: 9, Name: "ghost", Kind: types.Int64}, R: intLit(1)}
	got = r.PruneRowGroups(wide)
	if !groupsEqual(got, []int{0, 1, 2, 3}) {
		t.Errorf("out-of-schema column pruned groups: kept %v", got)
	}
}

func TestPruneRangesAccounting(t *testing.T) {
	r := buildPruneFile(t)
	ranges := expr.AnalyzeRanges(&expr.Compare{Op: expr.Lt, L: idCol(), R: intLit(10)})
	keep, pruned, skipped := r.PruneRowGroupsRanges(ranges, []int{0, 1})
	if !groupsEqual(keep, []int{0}) || !groupsEqual(pruned, []int{1, 2, 3}) {
		t.Fatalf("kept %v pruned %v", keep, pruned)
	}
	var want int64
	for _, g := range pruned {
		for _, ch := range r.Meta().RowGroups[g].Chunks {
			want += ch.CompressedSize
		}
	}
	if skipped != want || skipped == 0 {
		t.Errorf("bytes skipped %d, want %d", skipped, want)
	}
	// Never-predicates prune everything.
	never := expr.AnalyzeRanges(&expr.Literal{Value: types.BoolValue(false)})
	keep, pruned, _ = r.PruneRowGroupsRanges(never, nil)
	if len(keep) != 0 || len(pruned) != 4 {
		t.Errorf("WHERE FALSE: kept %v pruned %v", keep, pruned)
	}
}
