package parquetlite

import (
	"encoding/binary"
	"math"

	"prestocs/internal/column"
	"prestocs/internal/types"
)

// This file implements the value encodings for column chunks. Every
// encoding starts from the same framing: a validity bitmap (LSB-first,
// 1 = valid) followed by an encoding-specific payload for the valid and
// invalid slots alike (NULL slots carry the zero value, as in Arrow).

func packValidity(vec *column.Vector) []byte {
	n := vec.Len()
	out := make([]byte, (n+7)/8)
	for i := 0; i < n; i++ {
		if !vec.IsNull(i) {
			out[i/8] |= 1 << (uint(i) % 8)
		}
	}
	return out
}

// chooseEncoding picks an encoding for the vector: dictionary for strings
// with few distinct values, RLE for integer columns with long runs, plain
// otherwise.
func chooseEncoding(vec *column.Vector) Encoding {
	n := vec.Len()
	if n == 0 {
		return Plain
	}
	switch vec.Kind {
	case types.String:
		distinct := map[string]bool{}
		for _, s := range vec.Strings {
			distinct[s] = true
			if len(distinct) > n/4+1 {
				return Plain
			}
		}
		return Dict
	case types.Int64, types.Date:
		runs := 1
		for i := 1; i < n; i++ {
			if vec.Ints[i] != vec.Ints[i-1] {
				runs++
			}
		}
		if runs*4 <= n {
			return RLE
		}
		return Plain
	default:
		return Plain
	}
}

// encodeChunk serializes the vector with the chosen encoding; the result
// is the pre-compression chunk body.
func encodeChunk(vec *column.Vector, enc Encoding) []byte {
	n := vec.Len()
	var buf []byte
	buf = binary.LittleEndian.AppendUint32(buf, uint32(n))
	validity := packValidity(vec)
	buf = append(buf, validity...)

	switch enc {
	case Plain:
		switch vec.Kind {
		case types.Int64, types.Date:
			for _, x := range vec.Ints {
				buf = binary.LittleEndian.AppendUint64(buf, uint64(x))
			}
		case types.Float64:
			for _, x := range vec.Floats {
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(x))
			}
		case types.Bool:
			bits := make([]byte, (n+7)/8)
			for i, b := range vec.Bools {
				if b {
					bits[i/8] |= 1 << (uint(i) % 8)
				}
			}
			buf = append(buf, bits...)
		case types.String:
			off := uint32(0)
			buf = binary.LittleEndian.AppendUint32(buf, off)
			for _, s := range vec.Strings {
				off += uint32(len(s))
				buf = binary.LittleEndian.AppendUint32(buf, off)
			}
			for _, s := range vec.Strings {
				buf = append(buf, s...)
			}
		}
	case Dict:
		// Dictionary of distinct strings in first-seen order, then u32
		// indices per row.
		index := map[string]uint32{}
		var dict []string
		ids := make([]uint32, n)
		for i, s := range vec.Strings {
			id, ok := index[s]
			if !ok {
				id = uint32(len(dict))
				index[s] = id
				dict = append(dict, s)
			}
			ids[i] = id
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(dict)))
		for _, s := range dict {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
			buf = append(buf, s...)
		}
		for _, id := range ids {
			buf = binary.LittleEndian.AppendUint32(buf, id)
		}
	case RLE:
		// (varint runLength, fixed64 value) pairs.
		i := 0
		for i < n {
			j := i + 1
			for j < n && vec.Ints[j] == vec.Ints[i] {
				j++
			}
			buf = binary.AppendUvarint(buf, uint64(j-i))
			buf = binary.LittleEndian.AppendUint64(buf, uint64(vec.Ints[i]))
			i = j
		}
	}
	return buf
}

// decodeChunk reverses encodeChunk.
func decodeChunk(data []byte, kind types.Kind, enc Encoding) (*column.Vector, error) {
	if len(data) < 4 {
		return nil, ErrCorrupt
	}
	n := int(binary.LittleEndian.Uint32(data))
	data = data[4:]
	vb := (n + 7) / 8
	if len(data) < vb {
		return nil, ErrCorrupt
	}
	validity := data[:vb]
	data = data[vb:]

	// Decode the validity bitmap once up front, then fill the typed
	// payload slices directly: this is the scan path that feeds the
	// vectorized kernels, so it must not box a types.Value per cell.
	vec := column.NewVector(kind)
	for i := 0; i < n; i++ {
		if validity[i/8]&(1<<(uint(i)%8)) == 0 {
			if vec.Nulls == nil {
				vec.Nulls = make([]bool, n)
			}
			vec.Nulls[i] = true
		}
	}

	switch enc {
	case Plain:
		switch kind {
		case types.Int64, types.Date:
			if len(data) < 8*n {
				return nil, ErrCorrupt
			}
			vec.Ints = make([]int64, n)
			for i := range vec.Ints {
				vec.Ints[i] = int64(binary.LittleEndian.Uint64(data[8*i:]))
			}
		case types.Float64:
			if len(data) < 8*n {
				return nil, ErrCorrupt
			}
			vec.Floats = make([]float64, n)
			for i := range vec.Floats {
				vec.Floats[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
			}
		case types.Bool:
			if len(data) < (n+7)/8 {
				return nil, ErrCorrupt
			}
			vec.Bools = make([]bool, n)
			for i := range vec.Bools {
				vec.Bools[i] = data[i/8]&(1<<(uint(i)%8)) != 0
			}
		case types.String:
			// Offsets (n+1 x u32) read on the fly — no materialized slice.
			need := 4 * (n + 1)
			if len(data) < need {
				return nil, ErrCorrupt
			}
			offs := data[:need]
			body := data[need:]
			total := binary.LittleEndian.Uint32(offs[4*n:])
			if int(total) > len(body) {
				return nil, ErrCorrupt
			}
			vec.Strings = make([]string, n)
			prev := binary.LittleEndian.Uint32(offs)
			for i := 0; i < n; i++ {
				cur := binary.LittleEndian.Uint32(offs[4*(i+1):])
				if prev > cur || cur > total {
					return nil, ErrCorrupt
				}
				vec.Strings[i] = string(body[prev:cur])
				prev = cur
			}
		default:
			return nil, ErrCorrupt
		}
	case Dict:
		if kind != types.String {
			return nil, ErrCorrupt
		}
		if len(data) < 4 {
			return nil, ErrCorrupt
		}
		dictLen := int(binary.LittleEndian.Uint32(data))
		data = data[4:]
		dict := make([]string, dictLen)
		for i := range dict {
			if len(data) < 4 {
				return nil, ErrCorrupt
			}
			sl := int(binary.LittleEndian.Uint32(data))
			data = data[4:]
			if len(data) < sl {
				return nil, ErrCorrupt
			}
			dict[i] = string(data[:sl])
			data = data[sl:]
		}
		if len(data) < 4*n {
			return nil, ErrCorrupt
		}
		vec.Strings = make([]string, n)
		for i := range vec.Strings {
			id := binary.LittleEndian.Uint32(data[4*i:])
			if int(id) >= dictLen {
				return nil, ErrCorrupt
			}
			vec.Strings[i] = dict[id]
		}
	case RLE:
		if kind != types.Int64 && kind != types.Date {
			return nil, ErrCorrupt
		}
		vec.Ints = make([]int64, n)
		i := 0
		for i < n {
			run, sz := binary.Uvarint(data)
			if sz <= 0 {
				return nil, ErrCorrupt
			}
			data = data[sz:]
			if len(data) < 8 {
				return nil, ErrCorrupt
			}
			v := int64(binary.LittleEndian.Uint64(data))
			data = data[8:]
			if run == 0 || i+int(run) > n {
				return nil, ErrCorrupt
			}
			for k := i; k < i+int(run); k++ {
				vec.Ints[k] = v
			}
			i += int(run)
		}
	default:
		return nil, ErrCorrupt
	}
	zeroNullSlots(vec)
	return vec, nil
}

// zeroNullSlots normalizes the payload under NULL slots to the zero value,
// matching vectors built with Append. Nothing reads those slots, but the
// invariant keeps decoded vectors bit-identical regardless of what the
// writer stored there.
func zeroNullSlots(vec *column.Vector) {
	for i, isNull := range vec.Nulls {
		if !isNull {
			continue
		}
		switch vec.Kind {
		case types.Int64, types.Date:
			vec.Ints[i] = 0
		case types.Float64:
			vec.Floats[i] = 0
		case types.String:
			vec.Strings[i] = ""
		case types.Bool:
			vec.Bools[i] = false
		}
	}
}

// computeStats scans the vector for chunk statistics.
func computeStats(vec *column.Vector) Stats {
	st := Stats{
		Min:       types.NullValue(vec.Kind),
		Max:       types.NullValue(vec.Kind),
		NumValues: int64(vec.Len()),
	}
	for i := 0; i < vec.Len(); i++ {
		v := vec.Value(i)
		if v.Null {
			st.NullCount++
			continue
		}
		if st.Min.Null || types.Compare(v, st.Min) < 0 {
			st.Min = v
		}
		if st.Max.Null || types.Compare(v, st.Max) > 0 {
			st.Max = v
		}
	}
	return st
}
