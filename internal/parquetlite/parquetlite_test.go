package parquetlite

import (
	"math/rand"
	"testing"
	"testing/quick"

	"prestocs/internal/column"
	"prestocs/internal/compress"
	"prestocs/internal/expr"
	"prestocs/internal/types"
)

func testSchema() *types.Schema {
	return types.NewSchema(
		types.Column{Name: "id", Type: types.Int64},
		types.Column{Name: "x", Type: types.Float64},
		types.Column{Name: "tag", Type: types.String},
		types.Column{Name: "ok", Type: types.Bool},
		types.Column{Name: "day", Type: types.Date},
	)
}

func buildPage(n int, seed int64) *column.Page {
	rnd := rand.New(rand.NewSource(seed))
	p := column.NewPage(testSchema())
	tags := []string{"A", "B", "C"}
	for i := 0; i < n; i++ {
		var idv types.Value
		if rnd.Intn(10) == 0 {
			idv = types.NullValue(types.Int64)
		} else {
			idv = types.IntValue(int64(i))
		}
		p.AppendRow(
			idv,
			types.FloatValue(rnd.Float64()*100),
			types.StringValue(tags[rnd.Intn(len(tags))]),
			types.BoolValue(rnd.Intn(2) == 0),
			types.DateValue(int64(18000+i%50)),
		)
	}
	return p
}

func roundTrip(t *testing.T, codec compress.Codec, rowGroupSize, rows int) {
	t.Helper()
	page := buildPage(rows, 42)
	data, err := WritePages(testSchema(), WriterOptions{Codec: codec, RowGroupSize: rowGroupSize}, page)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(data)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumRows() != int64(rows) {
		t.Fatalf("NumRows = %d, want %d", r.NumRows(), rows)
	}
	wantGroups := (rows + rowGroupSize - 1) / rowGroupSize
	if len(r.Meta().RowGroups) != wantGroups {
		t.Fatalf("row groups = %d, want %d", len(r.Meta().RowGroups), wantGroups)
	}
	all := []int{0, 1, 2, 3, 4}
	pages, err := r.ReadAll(all)
	if err != nil {
		t.Fatal(err)
	}
	row := 0
	for _, got := range pages {
		for i := 0; i < got.NumRows(); i++ {
			want := page.Row(row)
			have := got.Row(i)
			for c := range want {
				if !types.Equal(want[c], have[c]) {
					t.Fatalf("row %d col %d: want %v got %v", row, c, want[c], have[c])
				}
			}
			row++
		}
	}
	if row != rows {
		t.Fatalf("read %d rows, want %d", row, rows)
	}
}

func TestRoundTripAllCodecs(t *testing.T) {
	for _, codec := range compress.Codecs() {
		codec := codec
		t.Run(codec.String(), func(t *testing.T) {
			roundTrip(t, codec, 100, 357)
		})
	}
}

func TestRoundTripSingleAndExactGroups(t *testing.T) {
	roundTrip(t, compress.None, 50, 50)  // exactly one full group
	roundTrip(t, compress.None, 50, 100) // two exact groups
	roundTrip(t, compress.None, 1000, 3) // partial group only
}

func TestEmptyFile(t *testing.T) {
	data, err := WritePages(testSchema(), WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(data)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumRows() != 0 || len(r.Meta().RowGroups) != 0 {
		t.Error("empty file should have no rows/groups")
	}
	pages, err := r.ReadAll([]int{0})
	if err != nil || len(pages) != 0 {
		t.Error("ReadAll on empty file wrong")
	}
}

func TestColumnProjection(t *testing.T) {
	page := buildPage(64, 1)
	data, _ := WritePages(testSchema(), WriterOptions{RowGroupSize: 32}, page)
	r, _ := NewReader(data)
	got, err := r.ReadRowGroup(0, []int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if got.NumCols() != 2 || got.Schema.Columns[0].Name != "tag" || got.Schema.Columns[1].Name != "id" {
		t.Errorf("projection wrong: %v", got.Schema)
	}
	// Selective read must not touch other chunks.
	before := r.BytesRead
	if before == 0 {
		t.Error("BytesRead not metered")
	}
	full, _ := NewReader(data)
	if _, err := full.ReadRowGroup(0, []int{0, 1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if full.BytesRead <= before {
		t.Errorf("full read (%d) should exceed projected read (%d)", full.BytesRead, before)
	}
}

func TestStats(t *testing.T) {
	s := types.NewSchema(types.Column{Name: "v", Type: types.Int64})
	p := column.NewPage(s)
	for _, x := range []int64{5, -3, 12, 7} {
		p.AppendRow(types.IntValue(x))
	}
	p.AppendRow(types.NullValue(types.Int64))
	data, _ := WritePages(s, WriterOptions{}, p)
	r, _ := NewReader(data)
	st := r.ColumnStats(0)
	if st.Min.I != -3 || st.Max.I != 12 || st.NullCount != 1 || st.NumValues != 5 {
		t.Errorf("stats = %+v", st)
	}
}

func TestStatsAllNull(t *testing.T) {
	s := types.NewSchema(types.Column{Name: "v", Type: types.Float64})
	p := column.NewPage(s)
	p.AppendRow(types.NullValue(types.Float64))
	p.AppendRow(types.NullValue(types.Float64))
	data, _ := WritePages(s, WriterOptions{}, p)
	r, _ := NewReader(data)
	st := r.ColumnStats(0)
	if !st.Min.Null || !st.Max.Null || st.NullCount != 2 {
		t.Errorf("all-null stats = %+v", st)
	}
}

func TestEncodingSelection(t *testing.T) {
	// Long runs of identical ints -> RLE.
	iv := column.NewVector(types.Int64)
	for i := 0; i < 1000; i++ {
		iv.Append(types.IntValue(int64(i / 250)))
	}
	if got := chooseEncoding(iv); got != RLE {
		t.Errorf("run-heavy ints encoding = %v, want rle", got)
	}
	// Few distinct strings -> Dict.
	sv := column.NewVector(types.String)
	for i := 0; i < 100; i++ {
		sv.Append(types.StringValue([]string{"x", "y"}[i%2]))
	}
	if got := chooseEncoding(sv); got != Dict {
		t.Errorf("low-cardinality strings encoding = %v, want dict", got)
	}
	// Mostly-unique ints -> Plain.
	uv := column.NewVector(types.Int64)
	for i := 0; i < 100; i++ {
		uv.Append(types.IntValue(int64(i)))
	}
	if got := chooseEncoding(uv); got != Plain {
		t.Errorf("unique ints encoding = %v, want plain", got)
	}
}

func TestRowGroupPruning(t *testing.T) {
	// Three row groups with id ranges [0,99], [100,199], [200,299].
	s := types.NewSchema(types.Column{Name: "id", Type: types.Int64})
	w := NewWriter(s, WriterOptions{RowGroupSize: 100})
	for i := 0; i < 300; i++ {
		if err := w.WriteRow(types.IntValue(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	data, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	r, _ := NewReader(data)

	col := expr.Col(0, "id", types.Int64)
	lit := func(v int64) expr.Expr { return expr.Lit(types.IntValue(v)) }

	check := func(name string, pred expr.Expr, want []int) {
		t.Helper()
		got := r.PruneRowGroups(pred)
		if len(got) != len(want) {
			t.Errorf("%s: pruned to %v, want %v", name, got, want)
			return
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s: pruned to %v, want %v", name, got, want)
				return
			}
		}
	}

	gt, _ := expr.NewCompare(expr.Gt, col, lit(250))
	check("id > 250", gt, []int{2})
	lt, _ := expr.NewCompare(expr.Lt, col, lit(100))
	check("id < 100", lt, []int{0})
	eq, _ := expr.NewCompare(expr.Eq, col, lit(150))
	check("id = 150", eq, []int{1})
	bt, _ := expr.NewBetween(col, lit(90), lit(110))
	check("id BETWEEN 90 AND 110", bt, []int{0, 1})
	none, _ := expr.NewCompare(expr.Gt, col, lit(1000))
	check("id > 1000", none, []int{})
	check("nil predicate", nil, []int{0, 1, 2})
	// Mirrored literal-first comparison: 250 < id == id > 250.
	ml, _ := expr.NewCompare(expr.Lt, lit(250), col)
	check("250 < id", ml, []int{2})
	// Conjunction prunes with both sides.
	both := expr.AndAll([]expr.Expr{gt, lt})
	check("contradiction", both, []int{})
	// Non-prunable conjunct is conservative.
	ne, _ := expr.NewCompare(expr.Ne, col, lit(5))
	check("id <> 5", ne, []int{0, 1, 2})
}

func TestCorruptFiles(t *testing.T) {
	page := buildPage(32, 3)
	data, _ := WritePages(testSchema(), WriterOptions{Codec: compress.Snappy}, page)

	if _, err := NewReader(data[:8]); err == nil {
		t.Error("truncated file accepted")
	}
	bad := append([]byte(nil), data...)
	bad[0] = 'X'
	if _, err := NewReader(bad); err == nil {
		t.Error("bad head magic accepted")
	}
	bad = append([]byte(nil), data...)
	bad[len(bad)-1] = 'X'
	if _, err := NewReader(bad); err == nil {
		t.Error("bad tail magic accepted")
	}
	// Corrupt footer length.
	bad = append([]byte(nil), data...)
	bad[len(bad)-5] = 0xFF
	if _, err := NewReader(bad); err == nil {
		t.Error("bad footer length accepted")
	}
	// Corrupt a chunk body: the snappy decode (or chunk decode) must fail.
	bad = append([]byte(nil), data...)
	r, _ := NewReader(data)
	off := r.Meta().RowGroups[0].Chunks[0].Offset
	for i := int64(0); i < 8; i++ {
		bad[off+i] ^= 0xFF
	}
	r2, err := NewReader(bad)
	if err != nil {
		return // footer bounds check may already reject; fine
	}
	if _, err := r2.ReadColumn(0, 0); err == nil {
		t.Error("corrupt chunk read succeeded")
	}
}

func TestReadErrors(t *testing.T) {
	page := buildPage(8, 5)
	data, _ := WritePages(testSchema(), WriterOptions{}, page)
	r, _ := NewReader(data)
	if _, err := r.ReadColumn(5, 0); err == nil {
		t.Error("row group out of range accepted")
	}
	if _, err := r.ReadColumn(0, 99); err == nil {
		t.Error("column out of range accepted")
	}
	w := NewWriter(testSchema(), WriterOptions{})
	if err := w.WriteRow(types.IntValue(1)); err == nil {
		t.Error("short row accepted")
	}
}

// Property: files round-trip arbitrary int/string pages across codecs and
// group sizes.
func TestQuickRoundTrip(t *testing.T) {
	s := types.NewSchema(
		types.Column{Name: "a", Type: types.Int64},
		types.Column{Name: "s", Type: types.String},
	)
	f := func(ints []int64, strs []string, groupSize uint8, codecPick uint8) bool {
		n := len(ints)
		if len(strs) < n {
			n = len(strs)
		}
		p := column.NewPage(s)
		for i := 0; i < n; i++ {
			p.AppendRow(types.IntValue(ints[i]), types.StringValue(strs[i]))
		}
		codec := compress.Codecs()[int(codecPick)%4]
		gs := int(groupSize)%64 + 1
		data, err := WritePages(s, WriterOptions{Codec: codec, RowGroupSize: gs}, p)
		if err != nil {
			return false
		}
		r, err := NewReader(data)
		if err != nil || r.NumRows() != int64(n) {
			return false
		}
		pages, err := r.ReadAll([]int{0, 1})
		if err != nil {
			return false
		}
		row := 0
		for _, got := range pages {
			for i := 0; i < got.NumRows(); i++ {
				if got.Row(i)[0].I != ints[row] || got.Row(i)[1].S != strs[row] {
					return false
				}
				row++
			}
		}
		return row == n
	}
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: pruning never drops a row group that contains matching rows.
func TestQuickPruningSound(t *testing.T) {
	s := types.NewSchema(types.Column{Name: "v", Type: types.Int64})
	f := func(vals []int64, lo, hi int64) bool {
		if len(vals) == 0 {
			return true
		}
		if lo > hi {
			lo, hi = hi, lo
		}
		p := column.NewPage(s)
		for _, v := range vals {
			p.AppendRow(types.IntValue(v))
		}
		data, err := WritePages(s, WriterOptions{RowGroupSize: 4}, p)
		if err != nil {
			return false
		}
		r, err := NewReader(data)
		if err != nil {
			return false
		}
		pred, err := expr.NewBetween(expr.Col(0, "v", types.Int64),
			expr.Lit(types.IntValue(lo)), expr.Lit(types.IntValue(hi)))
		if err != nil {
			return false
		}
		kept := map[int]bool{}
		for _, rg := range r.PruneRowGroups(pred) {
			kept[rg] = true
		}
		// Every row group containing a matching value must be kept.
		for i, v := range vals {
			if v >= lo && v <= hi && !kept[i/4] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 80}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
