// Package substrait implements the Substrait-like intermediate
// representation used for query-plan exchange between the Presto-OCS
// connector and the OCS storage system. Like real Substrait, plans are
// trees of relational operators (read, filter, project, aggregate, sort,
// fetch) with embedded scalar expressions, referencing functions through a
// stable named namespace, serialized as protobuf messages (here via
// internal/protowire).
//
// The connector translates pushdown operators into a Plan; the OCS
// frontend deserializes and validates it, and storage nodes execute it
// with the embedded engine.
package substrait

import (
	"fmt"

	"prestocs/internal/expr"
	"prestocs/internal/types"
)

// Version is the IR version stamped into serialized plans.
const Version = "prestocs-substrait/1"

// AggFunc names an aggregate function in the registry.
type AggFunc string

// The aggregate function namespace. AVG is intentionally absent from the
// storage-executable set: the connector rewrites avg(x) into sum(x) +
// count(x) partials so distributed results stay exact (DESIGN.md §4).
const (
	AggSum       AggFunc = "sum"
	AggMin       AggFunc = "min"
	AggMax       AggFunc = "max"
	AggCount     AggFunc = "count"      // count(x): non-null count
	AggCountStar AggFunc = "count_star" // count(*)
)

// ValidAggFunc reports whether f is in the registry.
func ValidAggFunc(f AggFunc) bool {
	switch f {
	case AggSum, AggMin, AggMax, AggCount, AggCountStar:
		return true
	}
	return false
}

// ResultKind returns the output type of the aggregate given its input
// type.
func (f AggFunc) ResultKind(input types.Kind) (types.Kind, error) {
	switch f {
	case AggCount, AggCountStar:
		return types.Int64, nil
	case AggSum:
		switch input {
		case types.Int64:
			return types.Int64, nil
		case types.Float64:
			return types.Float64, nil
		default:
			return types.Unknown, fmt.Errorf("substrait: sum over %s", input)
		}
	case AggMin, AggMax:
		if !input.Orderable() || !input.Valid() {
			return types.Unknown, fmt.Errorf("substrait: %s over %s", f, input)
		}
		return input, nil
	default:
		return types.Unknown, fmt.Errorf("substrait: unknown aggregate %q", f)
	}
}

// Measure is one aggregate computation in an AggregateRel.
type Measure struct {
	Func AggFunc
	// Arg is the input-column ordinal; -1 for count_star.
	Arg int
	// Name labels the output column.
	Name string
}

// SortKey orders by one input column.
type SortKey struct {
	Column     int
	Descending bool
}

// Rel is a relational operator node.
type Rel interface {
	// OutputSchema computes the operator's result schema.
	OutputSchema() (*types.Schema, error)
	isRel()
}

// ReadRel scans a stored object (named table in real Substrait).
type ReadRel struct {
	Bucket string
	Object string
	// BaseSchema is the full object schema.
	BaseSchema *types.Schema
	// Projection selects column ordinals to emit; nil means all columns.
	Projection []int
}

func (r *ReadRel) isRel() {}

// OutputSchema returns the projected schema.
func (r *ReadRel) OutputSchema() (*types.Schema, error) {
	if r.BaseSchema == nil {
		return nil, fmt.Errorf("substrait: read without base schema")
	}
	if r.Projection == nil {
		return r.BaseSchema, nil
	}
	for _, i := range r.Projection {
		if i < 0 || i >= r.BaseSchema.Len() {
			return nil, fmt.Errorf("substrait: projection ordinal %d out of range", i)
		}
	}
	return r.BaseSchema.Project(r.Projection), nil
}

// FilterRel keeps input rows satisfying Condition.
type FilterRel struct {
	Input     Rel
	Condition expr.Expr
}

func (r *FilterRel) isRel() {}

// OutputSchema passes the input schema through.
func (r *FilterRel) OutputSchema() (*types.Schema, error) {
	if r.Condition == nil {
		return nil, fmt.Errorf("substrait: filter without condition")
	}
	if r.Condition.Type() != types.Bool {
		return nil, fmt.Errorf("substrait: filter condition has type %s", r.Condition.Type())
	}
	return r.Input.OutputSchema()
}

// ProjectRel computes expressions over the input.
type ProjectRel struct {
	Input       Rel
	Expressions []expr.Expr
	Names       []string
}

func (r *ProjectRel) isRel() {}

// OutputSchema derives column types from the expressions.
func (r *ProjectRel) OutputSchema() (*types.Schema, error) {
	if len(r.Expressions) == 0 {
		return nil, fmt.Errorf("substrait: project without expressions")
	}
	if len(r.Names) != len(r.Expressions) {
		return nil, fmt.Errorf("substrait: project has %d names for %d expressions", len(r.Names), len(r.Expressions))
	}
	if _, err := r.Input.OutputSchema(); err != nil {
		return nil, err
	}
	cols := make([]types.Column, len(r.Expressions))
	for i, e := range r.Expressions {
		cols[i] = types.Column{Name: r.Names[i], Type: e.Type()}
	}
	return types.NewSchema(cols...), nil
}

// AggregateRel groups by key columns and computes measures. Output schema
// is group keys (in order) followed by measures.
type AggregateRel struct {
	Input     Rel
	GroupKeys []int
	Measures  []Measure
}

func (r *AggregateRel) isRel() {}

// OutputSchema returns keys then measures.
func (r *AggregateRel) OutputSchema() (*types.Schema, error) {
	in, err := r.Input.OutputSchema()
	if err != nil {
		return nil, err
	}
	var cols []types.Column
	for _, k := range r.GroupKeys {
		if k < 0 || k >= in.Len() {
			return nil, fmt.Errorf("substrait: group key ordinal %d out of range", k)
		}
		cols = append(cols, in.Columns[k])
	}
	for _, m := range r.Measures {
		if !ValidAggFunc(m.Func) {
			return nil, fmt.Errorf("substrait: unknown aggregate %q", m.Func)
		}
		inKind := types.Int64
		if m.Func != AggCountStar {
			if m.Arg < 0 || m.Arg >= in.Len() {
				return nil, fmt.Errorf("substrait: measure arg ordinal %d out of range", m.Arg)
			}
			inKind = in.Columns[m.Arg].Type
		}
		outKind, err := m.Func.ResultKind(inKind)
		if err != nil {
			return nil, err
		}
		cols = append(cols, types.Column{Name: m.Name, Type: outKind})
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("substrait: aggregate with no keys or measures")
	}
	return types.NewSchema(cols...), nil
}

// BloomFilterRel keeps input rows whose Column value may be a member of
// the attached bloom filter — the wire form of a join's build-side
// semi-filter pushed into the probe-side scan. Bits is the raw bit
// array; NumHash the double-hashing probe count. The hash functions are
// fixed by the IR contract (see internal/bloom), so engine and storage
// node agree bit-for-bit. It always sits above any FilterRel so the
// filter-on-read row-group pruning fusion stays intact.
type BloomFilterRel struct {
	Input   Rel
	Column  int
	NumHash int
	Bits    []byte
}

func (r *BloomFilterRel) isRel() {}

// OutputSchema passes the input schema through after validating the
// filter shape.
func (r *BloomFilterRel) OutputSchema() (*types.Schema, error) {
	in, err := r.Input.OutputSchema()
	if err != nil {
		return nil, err
	}
	if r.Column < 0 || r.Column >= in.Len() {
		return nil, fmt.Errorf("substrait: bloom filter column ordinal %d out of range", r.Column)
	}
	if r.NumHash < 1 || r.NumHash > 16 {
		return nil, fmt.Errorf("substrait: bloom filter hash count %d out of range", r.NumHash)
	}
	if len(r.Bits) == 0 {
		return nil, fmt.Errorf("substrait: bloom filter without bits")
	}
	return in, nil
}

// SortRel orders the input.
type SortRel struct {
	Input Rel
	Keys  []SortKey
}

func (r *SortRel) isRel() {}

// OutputSchema passes the input schema through.
func (r *SortRel) OutputSchema() (*types.Schema, error) {
	in, err := r.Input.OutputSchema()
	if err != nil {
		return nil, err
	}
	if len(r.Keys) == 0 {
		return nil, fmt.Errorf("substrait: sort without keys")
	}
	for _, k := range r.Keys {
		if k.Column < 0 || k.Column >= in.Len() {
			return nil, fmt.Errorf("substrait: sort key ordinal %d out of range", k.Column)
		}
	}
	return in, nil
}

// FetchRel limits output to Count rows after Offset. Together with a
// SortRel input it expresses top-N.
type FetchRel struct {
	Input  Rel
	Offset int64
	Count  int64
}

func (r *FetchRel) isRel() {}

// OutputSchema passes the input schema through.
func (r *FetchRel) OutputSchema() (*types.Schema, error) {
	if r.Count < 0 || r.Offset < 0 {
		return nil, fmt.Errorf("substrait: negative fetch bounds")
	}
	return r.Input.OutputSchema()
}

// Plan is a complete IR plan.
type Plan struct {
	Version string
	Root    Rel
}

// NewPlan wraps a root relation with the current version.
func NewPlan(root Rel) *Plan { return &Plan{Version: Version, Root: root} }

// Validate type-checks the whole plan and returns its output schema.
func (p *Plan) Validate() (*types.Schema, error) {
	if p.Root == nil {
		return nil, fmt.Errorf("substrait: plan without root")
	}
	if p.Version != Version {
		return nil, fmt.Errorf("substrait: version mismatch: %q (want %q)", p.Version, Version)
	}
	return p.Root.OutputSchema()
}

// WalkRels visits every relation bottom-up.
func WalkRels(r Rel, fn func(Rel)) {
	switch t := r.(type) {
	case *FilterRel:
		WalkRels(t.Input, fn)
	case *BloomFilterRel:
		WalkRels(t.Input, fn)
	case *ProjectRel:
		WalkRels(t.Input, fn)
	case *AggregateRel:
		WalkRels(t.Input, fn)
	case *SortRel:
		WalkRels(t.Input, fn)
	case *FetchRel:
		WalkRels(t.Input, fn)
	}
	fn(r)
}

// String renders a one-line plan summary like
// "Read(bucket/obj) -> Filter -> Aggregate[keys=1, measures=2]".
func (p *Plan) String() string {
	var parts []string
	WalkRels(p.Root, func(r Rel) {
		switch t := r.(type) {
		case *ReadRel:
			parts = append(parts, fmt.Sprintf("Read(%s/%s)", t.Bucket, t.Object))
		case *FilterRel:
			parts = append(parts, "Filter")
		case *BloomFilterRel:
			parts = append(parts, fmt.Sprintf("BloomFilter[c%d, %dB]", t.Column, len(t.Bits)))
		case *ProjectRel:
			parts = append(parts, fmt.Sprintf("Project[%d]", len(t.Expressions)))
		case *AggregateRel:
			parts = append(parts, fmt.Sprintf("Aggregate[keys=%d, measures=%d]", len(t.GroupKeys), len(t.Measures)))
		case *SortRel:
			parts = append(parts, fmt.Sprintf("Sort[%d]", len(t.Keys)))
		case *FetchRel:
			parts = append(parts, fmt.Sprintf("Fetch[%d]", t.Count))
		}
	})
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += " -> "
		}
		out += p
	}
	return out
}
