package substrait

import (
	"testing"

	"prestocs/internal/expr"
	"prestocs/internal/types"
)

func benchPlan() *Plan {
	schema := types.NewSchema(
		types.Column{Name: "k", Type: types.Int64},
		types.Column{Name: "x", Type: types.Float64},
		types.Column{Name: "e", Type: types.Float64},
	)
	read := &ReadRel{Bucket: "b", Object: "o", BaseSchema: schema}
	cond, _ := expr.NewBetween(expr.Col(1, "x", types.Float64),
		expr.Lit(types.FloatValue(0.8)), expr.Lit(types.FloatValue(3.2)))
	agg := &AggregateRel{
		Input:     &FilterRel{Input: read, Condition: cond},
		GroupKeys: []int{0},
		Measures: []Measure{
			{Func: AggSum, Arg: 2, Name: "s"},
			{Func: AggCount, Arg: 2, Name: "c"},
		},
	}
	return NewPlan(&FetchRel{
		Input: &SortRel{Input: agg, Keys: []SortKey{{Column: 1}}},
		Count: 100,
	})
}

// BenchmarkMarshal measures Substrait IR generation cost — the overhead
// the paper's Table 3 shows to be under 2% of query time.
func BenchmarkMarshal(b *testing.B) {
	p := benchPlan()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := Marshal(p)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(data)))
	}
}

func BenchmarkUnmarshal(b *testing.B) {
	data, _ := Marshal(benchPlan())
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(data); err != nil {
			b.Fatal(err)
		}
	}
}
