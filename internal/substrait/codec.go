package substrait

import (
	"fmt"

	"prestocs/internal/expr"
	"prestocs/internal/protowire"
	"prestocs/internal/types"
)

// This file serializes Plans to and from the protobuf wire format. Decoded
// expressions are rebuilt through the expr constructors, so a decoded plan
// is re-type-checked as a side effect — malformed plans fail to decode,
// which is the OCS frontend's first line of validation.

// Expression node kind codes (field 1 of an expression message).
const (
	exprColumnRef = 1
	exprLiteral   = 2
	exprArith     = 3
	exprCompare   = 4
	exprLogic     = 5
	exprNot       = 6
	exprBetween   = 7
	exprCast      = 8
	exprIsNull    = 9
)

// Relation kind codes (field 1 of a relation message).
const (
	relRead      = 1
	relFilter    = 2
	relProject   = 3
	relAggregate = 4
	relSort      = 5
	relFetch     = 6
	relBloom     = 7
)

// Marshal serializes a plan.
func Marshal(p *Plan) ([]byte, error) {
	e := protowire.NewEncoder()
	e.String(1, p.Version)
	var encodeErr error
	e.Message(2, func(m *protowire.Encoder) {
		encodeErr = encodeRel(m, p.Root)
	})
	if encodeErr != nil {
		return nil, encodeErr
	}
	return e.Encoded(), nil
}

// Unmarshal deserializes and re-type-checks a plan.
func Unmarshal(data []byte) (*Plan, error) {
	d := protowire.NewDecoder(data)
	p := &Plan{}
	for !d.Done() {
		f, ty, err := d.Next()
		if err != nil {
			return nil, err
		}
		switch f {
		case 1:
			p.Version, err = d.String()
		case 2:
			var m *protowire.Decoder
			m, err = d.Message()
			if err == nil {
				p.Root, err = decodeRel(m)
			}
		default:
			err = d.Skip(ty)
		}
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func encodeSchema(e *protowire.Encoder, field int, s *types.Schema) {
	for _, c := range s.Columns {
		col := c
		e.Message(field, func(m *protowire.Encoder) {
			m.String(1, col.Name)
			m.Uint64(2, uint64(col.Type))
		})
	}
}

func decodeSchemaCol(d *protowire.Decoder) (types.Column, error) {
	var col types.Column
	for !d.Done() {
		f, ty, err := d.Next()
		if err != nil {
			return col, err
		}
		switch f {
		case 1:
			col.Name, err = d.String()
		case 2:
			var u uint64
			u, err = d.Uint64()
			col.Type = types.Kind(u)
		default:
			err = d.Skip(ty)
		}
		if err != nil {
			return col, err
		}
	}
	return col, nil
}

func encodeValue(e *protowire.Encoder, field int, v types.Value) {
	e.Message(field, func(m *protowire.Encoder) {
		m.Uint64(1, uint64(v.Kind))
		m.Bool(2, v.Null)
		switch v.Kind {
		case types.Int64, types.Date:
			m.Int64(3, v.I)
		case types.Float64:
			m.Double(4, v.F)
		case types.String:
			m.String(5, v.S)
		case types.Bool:
			m.Bool(6, v.B)
		}
	})
}

func decodeValue(d *protowire.Decoder) (types.Value, error) {
	var v types.Value
	for !d.Done() {
		f, ty, err := d.Next()
		if err != nil {
			return v, err
		}
		switch f {
		case 1:
			var u uint64
			u, err = d.Uint64()
			v.Kind = types.Kind(u)
		case 2:
			v.Null, err = d.Bool()
		case 3:
			v.I, err = d.Int64()
		case 4:
			v.F, err = d.Double()
		case 5:
			v.S, err = d.String()
		case 6:
			v.B, err = d.Bool()
		default:
			err = d.Skip(ty)
		}
		if err != nil {
			return v, err
		}
	}
	if !v.Kind.Valid() {
		return v, fmt.Errorf("substrait: literal with invalid kind %d", v.Kind)
	}
	return v, nil
}

// EncodeExpr appends an expression message to field of e.
func EncodeExpr(e *protowire.Encoder, field int, x expr.Expr) error {
	var encErr error
	e.Message(field, func(m *protowire.Encoder) {
		encErr = encodeExprBody(m, x)
	})
	return encErr
}

func encodeExprBody(m *protowire.Encoder, x expr.Expr) error {
	switch t := x.(type) {
	case *expr.ColumnRef:
		m.Uint64(1, exprColumnRef)
		m.Int64(2, int64(t.Index))
		m.String(3, t.Name)
		m.Uint64(4, uint64(t.Kind))
	case *expr.Literal:
		m.Uint64(1, exprLiteral)
		encodeValue(m, 5, t.Value)
	case *expr.Arith:
		m.Uint64(1, exprArith)
		m.Uint64(6, uint64(t.Op))
		if err := EncodeExpr(m, 7, t.L); err != nil {
			return err
		}
		return EncodeExpr(m, 8, t.R)
	case *expr.Compare:
		m.Uint64(1, exprCompare)
		m.Uint64(6, uint64(t.Op))
		if err := EncodeExpr(m, 7, t.L); err != nil {
			return err
		}
		return EncodeExpr(m, 8, t.R)
	case *expr.Logic:
		m.Uint64(1, exprLogic)
		m.Uint64(6, uint64(t.Op))
		if err := EncodeExpr(m, 7, t.L); err != nil {
			return err
		}
		return EncodeExpr(m, 8, t.R)
	case *expr.Not:
		m.Uint64(1, exprNot)
		return EncodeExpr(m, 7, t.E)
	case *expr.Between:
		m.Uint64(1, exprBetween)
		if err := EncodeExpr(m, 7, t.E); err != nil {
			return err
		}
		if err := EncodeExpr(m, 8, t.Lo); err != nil {
			return err
		}
		return EncodeExpr(m, 9, t.Hi)
	case *expr.Cast:
		m.Uint64(1, exprCast)
		m.Uint64(4, uint64(t.To))
		return EncodeExpr(m, 7, t.E)
	case *expr.IsNull:
		m.Uint64(1, exprIsNull)
		m.Bool(10, t.Negate)
		return EncodeExpr(m, 7, t.E)
	default:
		return fmt.Errorf("substrait: cannot encode expression %T", x)
	}
	return nil
}

// DecodeExpr reads one expression message.
func DecodeExpr(d *protowire.Decoder) (expr.Expr, error) {
	var (
		kind             uint64
		index            int64
		name             string
		typeKind         types.Kind
		value            types.Value
		haveValue        bool
		op               uint64
		sub1, sub2, sub3 expr.Expr
		negate           bool
	)
	for !d.Done() {
		f, ty, err := d.Next()
		if err != nil {
			return nil, err
		}
		switch f {
		case 1:
			kind, err = d.Uint64()
		case 2:
			index, err = d.Int64()
		case 3:
			name, err = d.String()
		case 4:
			var u uint64
			u, err = d.Uint64()
			typeKind = types.Kind(u)
		case 5:
			var m *protowire.Decoder
			m, err = d.Message()
			if err == nil {
				value, err = decodeValue(m)
				haveValue = true
			}
		case 6:
			op, err = d.Uint64()
		case 7:
			var m *protowire.Decoder
			m, err = d.Message()
			if err == nil {
				sub1, err = DecodeExpr(m)
			}
		case 8:
			var m *protowire.Decoder
			m, err = d.Message()
			if err == nil {
				sub2, err = DecodeExpr(m)
			}
		case 9:
			var m *protowire.Decoder
			m, err = d.Message()
			if err == nil {
				sub3, err = DecodeExpr(m)
			}
		case 10:
			negate, err = d.Bool()
		default:
			err = d.Skip(ty)
		}
		if err != nil {
			return nil, err
		}
	}
	switch kind {
	case exprColumnRef:
		if !typeKind.Valid() {
			return nil, fmt.Errorf("substrait: column ref with invalid type")
		}
		return expr.Col(int(index), name, typeKind), nil
	case exprLiteral:
		if !haveValue {
			return nil, fmt.Errorf("substrait: literal without value")
		}
		return expr.Lit(value), nil
	case exprArith:
		if sub1 == nil || sub2 == nil {
			return nil, fmt.Errorf("substrait: arith missing operands")
		}
		if op > uint64(expr.Mod) {
			return nil, fmt.Errorf("substrait: bad arith op %d", op)
		}
		return expr.NewArith(expr.ArithOp(op), sub1, sub2)
	case exprCompare:
		if sub1 == nil || sub2 == nil {
			return nil, fmt.Errorf("substrait: compare missing operands")
		}
		if op > uint64(expr.Ge) {
			return nil, fmt.Errorf("substrait: bad compare op %d", op)
		}
		return expr.NewCompare(expr.CmpOp(op), sub1, sub2)
	case exprLogic:
		if sub1 == nil || sub2 == nil {
			return nil, fmt.Errorf("substrait: logic missing operands")
		}
		if op > uint64(expr.Or) {
			return nil, fmt.Errorf("substrait: bad logic op %d", op)
		}
		return expr.NewLogic(expr.LogicOp(op), sub1, sub2)
	case exprNot:
		if sub1 == nil {
			return nil, fmt.Errorf("substrait: NOT missing operand")
		}
		return expr.NewNot(sub1)
	case exprBetween:
		if sub1 == nil || sub2 == nil || sub3 == nil {
			return nil, fmt.Errorf("substrait: BETWEEN missing operands")
		}
		return expr.NewBetween(sub1, sub2, sub3)
	case exprCast:
		if sub1 == nil || !typeKind.Valid() {
			return nil, fmt.Errorf("substrait: bad cast")
		}
		return &expr.Cast{E: sub1, To: typeKind}, nil
	case exprIsNull:
		if sub1 == nil {
			return nil, fmt.Errorf("substrait: IS NULL missing operand")
		}
		return &expr.IsNull{E: sub1, Negate: negate}, nil
	default:
		return nil, fmt.Errorf("substrait: unknown expression kind %d", kind)
	}
}

func encodeRel(m *protowire.Encoder, r Rel) error {
	switch t := r.(type) {
	case *ReadRel:
		m.Uint64(1, relRead)
		m.String(2, t.Bucket)
		m.String(3, t.Object)
		encodeSchema(m, 4, t.BaseSchema)
		for _, p := range t.Projection {
			m.Int64(5, int64(p))
		}
		m.Bool(6, t.Projection != nil)
	case *FilterRel:
		m.Uint64(1, relFilter)
		if err := encodeRelField(m, 7, t.Input); err != nil {
			return err
		}
		return EncodeExpr(m, 8, t.Condition)
	case *ProjectRel:
		m.Uint64(1, relProject)
		if err := encodeRelField(m, 7, t.Input); err != nil {
			return err
		}
		for _, e := range t.Expressions {
			if err := EncodeExpr(m, 9, e); err != nil {
				return err
			}
		}
		for _, n := range t.Names {
			m.String(10, n)
		}
	case *AggregateRel:
		m.Uint64(1, relAggregate)
		if err := encodeRelField(m, 7, t.Input); err != nil {
			return err
		}
		for _, k := range t.GroupKeys {
			m.Int64(11, int64(k))
		}
		m.Bool(13, true) // marker distinguishing zero keys from absent field
		for _, meas := range t.Measures {
			mm := meas
			m.Message(12, func(me *protowire.Encoder) {
				me.String(1, string(mm.Func))
				me.Int64(2, int64(mm.Arg))
				me.String(3, mm.Name)
			})
		}
	case *BloomFilterRel:
		m.Uint64(1, relBloom)
		if err := encodeRelField(m, 7, t.Input); err != nil {
			return err
		}
		m.Int64(17, int64(t.Column))
		m.Int64(18, int64(t.NumHash))
		m.Bytes(19, t.Bits)
	case *SortRel:
		m.Uint64(1, relSort)
		if err := encodeRelField(m, 7, t.Input); err != nil {
			return err
		}
		for _, k := range t.Keys {
			kk := k
			m.Message(14, func(ke *protowire.Encoder) {
				ke.Int64(1, int64(kk.Column))
				ke.Bool(2, kk.Descending)
			})
		}
	case *FetchRel:
		m.Uint64(1, relFetch)
		if err := encodeRelField(m, 7, t.Input); err != nil {
			return err
		}
		m.Int64(15, t.Offset)
		m.Int64(16, t.Count)
	default:
		return fmt.Errorf("substrait: cannot encode relation %T", r)
	}
	return nil
}

func encodeRelField(m *protowire.Encoder, field int, r Rel) error {
	var err error
	m.Message(field, func(inner *protowire.Encoder) {
		err = encodeRel(inner, r)
	})
	return err
}

func decodeRel(d *protowire.Decoder) (Rel, error) {
	var (
		kind       uint64
		bucket     string
		object     string
		schema     = types.NewSchema()
		projection []int
		hasProj    bool
		input      Rel
		condition  expr.Expr
		exprs      []expr.Expr
		names      []string
		groupKeys  []int
		measures   []Measure
		sortKeys   []SortKey
		offset     int64
		count      int64
		bloomCol   int64
		bloomHash  int64
		bloomBits  []byte
	)
	for !d.Done() {
		f, ty, err := d.Next()
		if err != nil {
			return nil, err
		}
		switch f {
		case 1:
			kind, err = d.Uint64()
		case 2:
			bucket, err = d.String()
		case 3:
			object, err = d.String()
		case 4:
			var m *protowire.Decoder
			m, err = d.Message()
			if err == nil {
				var col types.Column
				col, err = decodeSchemaCol(m)
				if err == nil {
					schema.Columns = append(schema.Columns, col)
				}
			}
		case 5:
			var v int64
			v, err = d.Int64()
			projection = append(projection, int(v))
		case 6:
			hasProj, err = d.Bool()
		case 7:
			var m *protowire.Decoder
			m, err = d.Message()
			if err == nil {
				input, err = decodeRel(m)
			}
		case 8:
			var m *protowire.Decoder
			m, err = d.Message()
			if err == nil {
				condition, err = DecodeExpr(m)
			}
		case 9:
			var m *protowire.Decoder
			m, err = d.Message()
			if err == nil {
				var e expr.Expr
				e, err = DecodeExpr(m)
				exprs = append(exprs, e)
			}
		case 10:
			var s string
			s, err = d.String()
			names = append(names, s)
		case 11:
			var v int64
			v, err = d.Int64()
			groupKeys = append(groupKeys, int(v))
		case 12:
			var m *protowire.Decoder
			m, err = d.Message()
			if err == nil {
				var meas Measure
				meas, err = decodeMeasure(m)
				measures = append(measures, meas)
			}
		case 13:
			_, err = d.Bool()
		case 14:
			var m *protowire.Decoder
			m, err = d.Message()
			if err == nil {
				var k SortKey
				k, err = decodeSortKey(m)
				sortKeys = append(sortKeys, k)
			}
		case 15:
			offset, err = d.Int64()
		case 16:
			count, err = d.Int64()
		case 17:
			bloomCol, err = d.Int64()
		case 18:
			bloomHash, err = d.Int64()
		case 19:
			bloomBits, err = d.Bytes()
		default:
			err = d.Skip(ty)
		}
		if err != nil {
			return nil, err
		}
	}
	switch kind {
	case relRead:
		r := &ReadRel{Bucket: bucket, Object: object, BaseSchema: schema}
		if hasProj {
			if projection == nil {
				projection = []int{}
			}
			r.Projection = projection
		}
		return r, nil
	case relFilter:
		if input == nil || condition == nil {
			return nil, fmt.Errorf("substrait: filter missing input or condition")
		}
		return &FilterRel{Input: input, Condition: condition}, nil
	case relProject:
		if input == nil {
			return nil, fmt.Errorf("substrait: project missing input")
		}
		return &ProjectRel{Input: input, Expressions: exprs, Names: names}, nil
	case relAggregate:
		if input == nil {
			return nil, fmt.Errorf("substrait: aggregate missing input")
		}
		return &AggregateRel{Input: input, GroupKeys: groupKeys, Measures: measures}, nil
	case relBloom:
		if input == nil {
			return nil, fmt.Errorf("substrait: bloom filter missing input")
		}
		return &BloomFilterRel{Input: input, Column: int(bloomCol), NumHash: int(bloomHash), Bits: bloomBits}, nil
	case relSort:
		if input == nil {
			return nil, fmt.Errorf("substrait: sort missing input")
		}
		return &SortRel{Input: input, Keys: sortKeys}, nil
	case relFetch:
		if input == nil {
			return nil, fmt.Errorf("substrait: fetch missing input")
		}
		return &FetchRel{Input: input, Offset: offset, Count: count}, nil
	default:
		return nil, fmt.Errorf("substrait: unknown relation kind %d", kind)
	}
}

func decodeMeasure(d *protowire.Decoder) (Measure, error) {
	var m Measure
	for !d.Done() {
		f, ty, err := d.Next()
		if err != nil {
			return m, err
		}
		switch f {
		case 1:
			var s string
			s, err = d.String()
			m.Func = AggFunc(s)
		case 2:
			var v int64
			v, err = d.Int64()
			m.Arg = int(v)
		case 3:
			m.Name, err = d.String()
		default:
			err = d.Skip(ty)
		}
		if err != nil {
			return m, err
		}
	}
	return m, nil
}

func decodeSortKey(d *protowire.Decoder) (SortKey, error) {
	var k SortKey
	for !d.Done() {
		f, ty, err := d.Next()
		if err != nil {
			return k, err
		}
		switch f {
		case 1:
			var v int64
			v, err = d.Int64()
			k.Column = int(v)
		case 2:
			k.Descending, err = d.Bool()
		default:
			err = d.Skip(ty)
		}
		if err != nil {
			return k, err
		}
	}
	return k, nil
}
