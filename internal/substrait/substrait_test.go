package substrait

import (
	"strings"
	"testing"
	"testing/quick"

	"prestocs/internal/expr"
	"prestocs/internal/types"
)

func baseSchema() *types.Schema {
	return types.NewSchema(
		types.Column{Name: "vertex_id", Type: types.Int64},
		types.Column{Name: "x", Type: types.Float64},
		types.Column{Name: "y", Type: types.Float64},
		types.Column{Name: "e", Type: types.Float64},
		types.Column{Name: "tag", Type: types.String},
	)
}

// laghosLikePlan builds Read -> Filter -> Aggregate -> Sort -> Fetch,
// mirroring the paper's Laghos query shape.
func laghosLikePlan(t *testing.T) *Plan {
	t.Helper()
	read := &ReadRel{Bucket: "lanl", Object: "part-000.pql", BaseSchema: baseSchema()}
	cond, err := expr.NewBetween(
		expr.Col(1, "x", types.Float64),
		expr.Lit(types.FloatValue(0.8)),
		expr.Lit(types.FloatValue(3.2)))
	if err != nil {
		t.Fatal(err)
	}
	filter := &FilterRel{Input: read, Condition: cond}
	agg := &AggregateRel{
		Input:     filter,
		GroupKeys: []int{0},
		Measures: []Measure{
			{Func: AggMin, Arg: 1, Name: "min_x"},
			{Func: AggSum, Arg: 3, Name: "sum_e"},
			{Func: AggCount, Arg: 3, Name: "cnt_e"},
			{Func: AggCountStar, Arg: -1, Name: "cnt"},
		},
	}
	sort := &SortRel{Input: agg, Keys: []SortKey{{Column: 2, Descending: false}}}
	fetch := &FetchRel{Input: sort, Count: 100}
	return NewPlan(fetch)
}

func TestOutputSchemas(t *testing.T) {
	p := laghosLikePlan(t)
	schema, err := p.Validate()
	if err != nil {
		t.Fatal(err)
	}
	want := "(vertex_id BIGINT, min_x DOUBLE, sum_e DOUBLE, cnt_e BIGINT, cnt BIGINT)"
	if got := schema.String(); got != want {
		t.Errorf("schema = %s, want %s", got, want)
	}
}

func TestReadProjection(t *testing.T) {
	r := &ReadRel{Bucket: "b", Object: "o", BaseSchema: baseSchema(), Projection: []int{4, 0}}
	s, err := r.OutputSchema()
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 || s.Columns[0].Name != "tag" {
		t.Errorf("projected schema = %v", s)
	}
	bad := &ReadRel{Bucket: "b", Object: "o", BaseSchema: baseSchema(), Projection: []int{99}}
	if _, err := bad.OutputSchema(); err == nil {
		t.Error("out-of-range projection accepted")
	}
}

func TestValidationErrors(t *testing.T) {
	read := &ReadRel{Bucket: "b", Object: "o", BaseSchema: baseSchema()}
	cases := map[string]Rel{
		"filter non-bool": &FilterRel{Input: read, Condition: expr.Col(0, "vertex_id", types.Int64)},
		"filter nil cond": &FilterRel{Input: read},
		"project empty":   &ProjectRel{Input: read},
		"project name mismatch": &ProjectRel{Input: read,
			Expressions: []expr.Expr{expr.Col(0, "vertex_id", types.Int64)}, Names: []string{"a", "b"}},
		"agg bad key":     &AggregateRel{Input: read, GroupKeys: []int{77}},
		"agg no outputs":  &AggregateRel{Input: read},
		"agg bad func":    &AggregateRel{Input: read, Measures: []Measure{{Func: "median", Arg: 0, Name: "m"}}},
		"agg sum varchar": &AggregateRel{Input: read, Measures: []Measure{{Func: AggSum, Arg: 4, Name: "s"}}},
		"agg bad arg":     &AggregateRel{Input: read, Measures: []Measure{{Func: AggSum, Arg: 9, Name: "s"}}},
		"sort no keys":    &SortRel{Input: read},
		"sort bad key":    &SortRel{Input: read, Keys: []SortKey{{Column: 42}}},
		"fetch negative":  &FetchRel{Input: read, Count: -1},
	}
	for name, rel := range cases {
		if _, err := NewPlan(rel).Validate(); err == nil {
			t.Errorf("%s: validation passed", name)
		}
	}
	if _, err := (&Plan{Version: Version}).Validate(); err == nil {
		t.Error("nil root accepted")
	}
	if _, err := (&Plan{Version: "other", Root: read}).Validate(); err == nil {
		t.Error("version mismatch accepted")
	}
}

func TestAggResultKinds(t *testing.T) {
	if k, err := AggSum.ResultKind(types.Int64); err != nil || k != types.Int64 {
		t.Error("sum(int) wrong")
	}
	if k, err := AggSum.ResultKind(types.Float64); err != nil || k != types.Float64 {
		t.Error("sum(float) wrong")
	}
	if k, err := AggCount.ResultKind(types.String); err != nil || k != types.Int64 {
		t.Error("count(varchar) wrong")
	}
	if k, err := AggMin.ResultKind(types.String); err != nil || k != types.String {
		t.Error("min(varchar) wrong")
	}
	if _, err := AggFunc("stddev").ResultKind(types.Float64); err == nil {
		t.Error("unknown func accepted")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	p := laghosLikePlan(t)
	data, err := Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	// Compare by validated output schema and plan summary.
	s1, err := p.Validate()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := got.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if !s1.Equal(s2) {
		t.Errorf("schemas differ: %v vs %v", s1, s2)
	}
	if p.String() != got.String() {
		t.Errorf("plan summaries differ: %q vs %q", p.String(), got.String())
	}
	// Structure survives: fetch -> sort -> agg -> filter -> read.
	fetch, ok := got.Root.(*FetchRel)
	if !ok || fetch.Count != 100 {
		t.Fatalf("root = %T", got.Root)
	}
	sort, ok := fetch.Input.(*SortRel)
	if !ok || len(sort.Keys) != 1 || sort.Keys[0].Column != 2 {
		t.Fatalf("sort = %+v", fetch.Input)
	}
	agg, ok := sort.Input.(*AggregateRel)
	if !ok || len(agg.Measures) != 4 || agg.Measures[3].Func != AggCountStar {
		t.Fatalf("agg = %+v", sort.Input)
	}
	filter, ok := agg.Input.(*FilterRel)
	if !ok || filter.Condition.String() != "(x BETWEEN 0.8 AND 3.2)" {
		t.Fatalf("filter = %+v", agg.Input)
	}
	read, ok := filter.Input.(*ReadRel)
	if !ok || read.Bucket != "lanl" || read.Object != "part-000.pql" {
		t.Fatalf("read = %+v", filter.Input)
	}
}

func TestMarshalBloomFilterRoundTrip(t *testing.T) {
	read := &ReadRel{Bucket: "b", Object: "o", BaseSchema: baseSchema()}
	cond, err := expr.NewCompare(expr.Gt,
		expr.Col(1, "x", types.Float64), expr.Lit(types.FloatValue(0.5)))
	if err != nil {
		t.Fatal(err)
	}
	bloomRel := &BloomFilterRel{
		Input:   &FilterRel{Input: read, Condition: cond},
		Column:  0,
		NumHash: 7,
		Bits:    []byte{0x01, 0x80, 0xFF, 0x00, 0x42},
	}
	p := NewPlan(bloomRel)
	if _, err := p.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	data, err := Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	b, ok := got.Root.(*BloomFilterRel)
	if !ok {
		t.Fatalf("root = %T, want BloomFilterRel", got.Root)
	}
	if b.Column != 0 || b.NumHash != 7 || string(b.Bits) != string(bloomRel.Bits) {
		t.Fatalf("round trip lost fields: %+v", b)
	}
	if _, ok := b.Input.(*FilterRel); !ok {
		t.Fatalf("bloom input = %T, want FilterRel", b.Input)
	}
	if !strings.Contains(got.String(), "BloomFilter[c0, 5B]") {
		t.Errorf("plan summary %q missing bloom stage", got.String())
	}

	// Validation rejects malformed bloom rels.
	bad := []*BloomFilterRel{
		{Input: read, Column: 99, NumHash: 4, Bits: []byte{1}},
		{Input: read, Column: 0, NumHash: 0, Bits: []byte{1}},
		{Input: read, Column: 0, NumHash: 4},
	}
	for i, rel := range bad {
		if _, err := NewPlan(rel).Validate(); err == nil {
			t.Errorf("bad bloom rel %d accepted", i)
		}
	}
}

func TestMarshalProjectAndAllExprKinds(t *testing.T) {
	read := &ReadRel{Bucket: "b", Object: "o", BaseSchema: baseSchema(), Projection: []int{0, 1, 3}}
	// Build an expression exercising every node kind.
	add, _ := expr.NewArith(expr.Add, expr.Col(1, "x", types.Float64), expr.Lit(types.FloatValue(1)))
	mod, _ := expr.NewArith(expr.Mod, expr.Col(0, "vertex_id", types.Int64), expr.Lit(types.IntValue(500)))
	cmp, _ := expr.NewCompare(expr.Ge, add, expr.Lit(types.FloatValue(0)))
	isn := &expr.IsNull{E: expr.Col(2, "e", types.Float64), Negate: true}
	logic, _ := expr.NewLogic(expr.Or, cmp, isn)
	not, _ := expr.NewNot(logic)
	btw, _ := expr.NewBetween(expr.Col(1, "x", types.Float64), expr.Lit(types.FloatValue(0)), expr.Lit(types.FloatValue(5)))
	cast := &expr.Cast{E: mod, To: types.Float64}

	proj := &ProjectRel{
		Input:       read,
		Expressions: []expr.Expr{cast, btw, not},
		Names:       []string{"c", "b", "n"},
	}
	p := NewPlan(proj)
	if _, err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	data, err := Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	gp := got.Root.(*ProjectRel)
	if len(gp.Expressions) != 3 {
		t.Fatalf("exprs = %d", len(gp.Expressions))
	}
	if gp.Expressions[0].String() != cast.String() ||
		gp.Expressions[1].String() != btw.String() ||
		gp.Expressions[2].String() != not.String() {
		t.Errorf("expr round trip mismatch:\n%v\n%v\n%v", gp.Expressions[0], gp.Expressions[1], gp.Expressions[2])
	}
	gr := gp.Input.(*ReadRel)
	if len(gr.Projection) != 3 || gr.Projection[2] != 3 {
		t.Errorf("projection = %v", gr.Projection)
	}
}

func TestUnmarshalRejectsCorrupt(t *testing.T) {
	p := laghosLikePlan(t)
	data, _ := Marshal(p)
	if _, err := Unmarshal(data[:len(data)/2]); err == nil {
		t.Error("truncated plan accepted")
	}
	if _, err := Unmarshal([]byte{0xFF, 0xFF}); err == nil {
		t.Error("garbage accepted")
	}
	// An empty message decodes to a plan with no root -> validation error.
	if _, err := Unmarshal(nil); err == nil {
		t.Error("empty plan accepted")
	}
}

func TestPlanString(t *testing.T) {
	p := laghosLikePlan(t)
	s := p.String()
	for _, part := range []string{"Read(lanl/part-000.pql)", "Filter", "Aggregate[keys=1, measures=4]", "Sort[1]", "Fetch[100]"} {
		if !strings.Contains(s, part) {
			t.Errorf("plan string %q missing %q", s, part)
		}
	}
	idx := strings.Index(s, "Read")
	if idx != 0 {
		t.Errorf("plan string should start with Read: %q", s)
	}
}

func TestValidAggFunc(t *testing.T) {
	for _, f := range []AggFunc{AggSum, AggMin, AggMax, AggCount, AggCountStar} {
		if !ValidAggFunc(f) {
			t.Errorf("%s must be valid", f)
		}
	}
	if ValidAggFunc("avg") {
		t.Error("avg must not be storage-executable (rewritten to sum+count)")
	}
}

// Property: plans with random filter thresholds and fetch counts
// round-trip through Marshal/Unmarshal with identical summaries and
// schemas.
func TestQuickPlanRoundTrip(t *testing.T) {
	f := func(threshold float64, count uint16, desc bool, keyPick uint8) bool {
		read := &ReadRel{Bucket: "b", Object: "o", BaseSchema: baseSchema()}
		cond, err := expr.NewCompare(expr.Gt, expr.Col(1, "x", types.Float64), expr.Lit(types.FloatValue(threshold)))
		if err != nil {
			return false
		}
		key := int(keyPick) % baseSchema().Len()
		plan := NewPlan(&FetchRel{
			Input: &SortRel{
				Input: &FilterRel{Input: read, Condition: cond},
				Keys:  []SortKey{{Column: key, Descending: desc}},
			},
			Count: int64(count),
		})
		if _, err := plan.Validate(); err != nil {
			return false
		}
		data, err := Marshal(plan)
		if err != nil {
			return false
		}
		got, err := Unmarshal(data)
		if err != nil {
			return false
		}
		gf := got.Root.(*FetchRel)
		gs := gf.Input.(*SortRel)
		return gf.Count == int64(count) &&
			gs.Keys[0].Column == key && gs.Keys[0].Descending == desc &&
			got.String() == plan.String()
	}
	cfg := &quick.Config{MaxCount: 100}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
