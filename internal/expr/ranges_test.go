package expr

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"prestocs/internal/column"
	"prestocs/internal/types"
)

func col(i int, k types.Kind) *ColumnRef {
	return &ColumnRef{Index: i, Name: fmt.Sprintf("c%d", i), Kind: k}
}
func lit(v types.Value) *Literal { return &Literal{Value: v} }

func cmpOp(op CmpOp, l, r Expr) *Compare { return &Compare{Op: op, L: l, R: r} }

func TestAnalyzeRangesComparisons(t *testing.T) {
	x := col(0, types.Int64)
	cases := []struct {
		name string
		pred Expr
		want ColRange
	}{
		{"lt", cmpOp(Lt, x, lit(types.IntValue(5))), ColRange{Hi: types.IntValue(5), HiOpen: true, NonNullOK: true}},
		{"le", cmpOp(Le, x, lit(types.IntValue(5))), ColRange{Hi: types.IntValue(5), NonNullOK: true}},
		{"gt", cmpOp(Gt, x, lit(types.IntValue(5))), ColRange{Lo: types.IntValue(5), LoOpen: true, NonNullOK: true}},
		{"ge", cmpOp(Ge, x, lit(types.IntValue(5))), ColRange{Lo: types.IntValue(5), NonNullOK: true}},
		{"eq", cmpOp(Eq, x, lit(types.IntValue(5))), ColRange{Lo: types.IntValue(5), Hi: types.IntValue(5), NonNullOK: true}},
		{"ne", cmpOp(Ne, x, lit(types.IntValue(5))), ColRange{NonNullOK: true}},
		// Mirrored operand order: 5 < x means x > 5.
		{"mirror", cmpOp(Lt, lit(types.IntValue(5)), x), ColRange{Lo: types.IntValue(5), LoOpen: true, NonNullOK: true}},
		{"between", &Between{E: x, Lo: lit(types.IntValue(2)), Hi: lit(types.IntValue(8))}, ColRange{Lo: types.IntValue(2), Hi: types.IntValue(8), NonNullOK: true}},
		{"is-null", &IsNull{E: x}, ColRange{NullOK: true}},
		{"is-not-null", &IsNull{E: x, Negate: true}, ColRange{NonNullOK: true}},
		// NOT(x < 5) keeps non-NULL x >= 5 under 3VL.
		{"not-lt", &Not{E: cmpOp(Lt, x, lit(types.IntValue(5)))}, ColRange{Lo: types.IntValue(5), NonNullOK: true}},
		{"not-between", &Not{E: &Between{E: x, Lo: lit(types.IntValue(2)), Hi: lit(types.IntValue(8))}}, ColRange{NonNullOK: true}},
		{"not-is-null", &Not{E: &IsNull{E: x}}, ColRange{NonNullOK: true}},
	}
	for _, tc := range cases {
		r := AnalyzeRanges(tc.pred)
		if r.Never {
			t.Fatalf("%s: unexpected Never", tc.name)
		}
		got, ok := r.Cols[0]
		if !ok {
			t.Fatalf("%s: no range for column 0", tc.name)
		}
		if got != tc.want {
			t.Errorf("%s: got %v want %v", tc.name, got, tc.want)
		}
	}
}

func TestAnalyzeRangesLogic(t *testing.T) {
	x := col(0, types.Int64)
	y := col(1, types.Int64)

	// AND intersects: 2 <= x AND x < 8 → [2, 8).
	and := &Logic{Op: And, L: cmpOp(Ge, x, lit(types.IntValue(2))), R: cmpOp(Lt, x, lit(types.IntValue(8)))}
	r := AnalyzeRanges(and)
	want := ColRange{Lo: types.IntValue(2), Hi: types.IntValue(8), HiOpen: true, NonNullOK: true}
	if r.Cols[0] != want {
		t.Errorf("and: got %v want %v", r.Cols[0], want)
	}

	// Contradictory AND is Never.
	never := &Logic{Op: And, L: cmpOp(Lt, x, lit(types.IntValue(2))), R: cmpOp(Gt, x, lit(types.IntValue(8)))}
	if r := AnalyzeRanges(never); !r.Never {
		t.Errorf("contradiction not detected: %+v", r)
	}

	// x = 5 AND x = 5 keeps the point; x < 5 AND x >= 5 is Never (open
	// boundary collapse).
	touch := &Logic{Op: And, L: cmpOp(Lt, x, lit(types.IntValue(5))), R: cmpOp(Ge, x, lit(types.IntValue(5)))}
	if r := AnalyzeRanges(touch); !r.Never {
		t.Errorf("open boundary collapse not detected: %+v", r)
	}

	// OR takes the hull on shared columns: x < 2 OR x > 8 → unbounded but
	// still non-NULL-only.
	or := &Logic{Op: Or, L: cmpOp(Lt, x, lit(types.IntValue(2))), R: cmpOp(Gt, x, lit(types.IntValue(8)))}
	r = AnalyzeRanges(or)
	if got := r.Cols[0]; got != (ColRange{NonNullOK: true}) {
		t.Errorf("or hull: got %v", got)
	}

	// OR drops columns constrained on only one side: (x < 2 OR y > 8)
	// constrains neither column usefully... x may be anything when y > 8.
	mixed := &Logic{Op: Or, L: cmpOp(Lt, x, lit(types.IntValue(2))), R: cmpOp(Gt, y, lit(types.IntValue(8)))}
	if r := AnalyzeRanges(mixed); len(r.Cols) != 0 || r.Never {
		t.Errorf("mixed-column OR should constrain nothing, got %+v", r)
	}

	// OR with one Never branch keeps the other branch's constraints.
	orNever := &Logic{Op: Or, L: cmpOp(Lt, x, lit(types.NullValue(types.Int64))), R: cmpOp(Gt, x, lit(types.IntValue(8)))}
	r = AnalyzeRanges(orNever)
	if got := r.Cols[0]; got != (ColRange{Lo: types.IntValue(8), LoOpen: true, NonNullOK: true}) {
		t.Errorf("or-never: got %v", got)
	}

	// AND on different columns keeps both constraints.
	both := &Logic{Op: And, L: cmpOp(Lt, x, lit(types.IntValue(2))), R: cmpOp(Gt, y, lit(types.IntValue(8)))}
	r = AnalyzeRanges(both)
	if len(r.Cols) != 2 {
		t.Errorf("two-column AND: got %+v", r)
	}
}

func TestAnalyzeRangesNullLiterals(t *testing.T) {
	x := col(0, types.Int64)
	// x < NULL is NULL everywhere → Never.
	if r := AnalyzeRanges(cmpOp(Lt, x, lit(types.NullValue(types.Int64)))); !r.Never {
		t.Errorf("x < NULL should be Never, got %+v", r)
	}
	// x BETWEEN 1 AND NULL → Never.
	if r := AnalyzeRanges(&Between{E: x, Lo: lit(types.IntValue(1)), Hi: lit(types.NullValue(types.Int64))}); !r.Never {
		t.Errorf("BETWEEN with NULL bound should be Never, got %+v", r)
	}
	// BETWEEN with inverted bounds is empty.
	if r := AnalyzeRanges(&Between{E: x, Lo: lit(types.IntValue(9)), Hi: lit(types.IntValue(1))}); !r.Never {
		t.Errorf("inverted BETWEEN should be Never, got %+v", r)
	}
	// WHERE FALSE / WHERE NULL.
	if r := AnalyzeRanges(lit(types.BoolValue(false))); !r.Never {
		t.Errorf("WHERE FALSE should be Never")
	}
	if r := AnalyzeRanges(lit(types.NullValue(types.Bool))); !r.Never {
		t.Errorf("WHERE NULL should be Never")
	}
}

func TestMayMatchBoundaries(t *testing.T) {
	// Closed bounds exactly equal to the chunk min/max must NOT prune.
	ge := AnalyzeRanges(cmpOp(Ge, col(0, types.Int64), lit(types.IntValue(10)))).Cols[0]
	if !ge.MayMatch(types.IntValue(0), types.IntValue(10), false, true) {
		t.Errorf("x >= 10 pruned a chunk with max exactly 10")
	}
	le := AnalyzeRanges(cmpOp(Le, col(0, types.Int64), lit(types.IntValue(10)))).Cols[0]
	if !le.MayMatch(types.IntValue(10), types.IntValue(99), false, true) {
		t.Errorf("x <= 10 pruned a chunk with min exactly 10")
	}
	// Open bounds at the boundary DO prune.
	gt := AnalyzeRanges(cmpOp(Gt, col(0, types.Int64), lit(types.IntValue(10)))).Cols[0]
	if gt.MayMatch(types.IntValue(0), types.IntValue(10), false, true) {
		t.Errorf("x > 10 kept a chunk with max exactly 10")
	}
	// Unknown stats (Null min/max) never prune by value.
	if !ge.MayMatch(types.NullValue(types.Int64), types.NullValue(types.Int64), false, true) {
		t.Errorf("unknown stats must not prune")
	}
	// All-NULL chunk: any comparison prunes it, IS NULL keeps it.
	if ge.MayMatch(types.NullValue(types.Int64), types.NullValue(types.Int64), true, false) {
		t.Errorf("x >= 10 kept an all-NULL chunk")
	}
	isNull := AnalyzeRanges(&IsNull{E: col(0, types.Int64)}).Cols[0]
	if !isNull.MayMatch(types.NullValue(types.Int64), types.NullValue(types.Int64), true, false) {
		t.Errorf("IS NULL pruned an all-NULL chunk")
	}
	if isNull.MayMatch(types.IntValue(0), types.IntValue(9), false, true) {
		t.Errorf("IS NULL kept a chunk with no NULLs")
	}
	isNotNull := AnalyzeRanges(&IsNull{E: col(0, types.Int64), Negate: true}).Cols[0]
	if isNotNull.MayMatch(types.NullValue(types.Int64), types.NullValue(types.Int64), true, false) {
		t.Errorf("IS NOT NULL kept an all-NULL chunk")
	}
}

func TestMayMatchNaN(t *testing.T) {
	nan := types.FloatValue(math.NaN())
	// Under the total order NaN sorts after every number: x > NaN keeps
	// nothing, x >= NaN keeps only NaN, x <= NaN keeps everything non-NULL.
	gtNaN := AnalyzeRanges(cmpOp(Gt, col(0, types.Float64), lit(nan))).Cols[0]
	if gtNaN.MayMatch(types.FloatValue(0), types.FloatValue(1e300), false, true) {
		t.Errorf("x > NaN kept a finite chunk")
	}
	if gtNaN.MayMatch(nan, nan, false, true) {
		t.Errorf("x > NaN kept an all-NaN chunk (NaN is not > NaN)")
	}
	geNaN := AnalyzeRanges(cmpOp(Ge, col(0, types.Float64), lit(nan))).Cols[0]
	if !geNaN.MayMatch(types.FloatValue(0), nan, false, true) {
		t.Errorf("x >= NaN pruned a chunk whose max is NaN")
	}
	if geNaN.MayMatch(types.FloatValue(0), types.FloatValue(1), false, true) {
		t.Errorf("x >= NaN kept a finite chunk")
	}
	ltNaN := AnalyzeRanges(cmpOp(Lt, col(0, types.Float64), lit(nan))).Cols[0]
	if !ltNaN.MayMatch(types.FloatValue(-1), types.FloatValue(1), false, true) {
		t.Errorf("x < NaN pruned a finite chunk")
	}
}

// randPredicate builds a random predicate over a single Int64/Float64
// column pair, exercising comparisons, BETWEEN, IS [NOT] NULL, AND, OR
// and NOT to the given depth.
func randPredicate(rng *rand.Rand, depth int) Expr {
	kinds := []types.Kind{types.Int64, types.Float64}
	randLit := func(k types.Kind) *Literal {
		switch rng.Intn(6) {
		case 0:
			return lit(types.NullValue(k))
		default:
			if k == types.Int64 {
				return lit(types.IntValue(int64(rng.Intn(21) - 10)))
			}
			if rng.Intn(8) == 0 {
				return lit(types.FloatValue(math.NaN()))
			}
			return lit(types.FloatValue(float64(rng.Intn(21)-10) / 2))
		}
	}
	if depth <= 0 || rng.Intn(3) == 0 {
		ci := rng.Intn(2)
		c := col(ci, kinds[ci])
		switch rng.Intn(4) {
		case 0:
			return &IsNull{E: c, Negate: rng.Intn(2) == 0}
		case 1:
			return &Between{E: c, Lo: randLit(c.Kind), Hi: randLit(c.Kind)}
		default:
			ops := []CmpOp{Eq, Ne, Lt, Le, Gt, Ge}
			op := ops[rng.Intn(len(ops))]
			if rng.Intn(2) == 0 {
				return cmpOp(op, c, randLit(c.Kind))
			}
			return cmpOp(op, randLit(c.Kind), c)
		}
	}
	switch rng.Intn(3) {
	case 0:
		return &Not{E: randPredicate(rng, depth-1)}
	case 1:
		return &Logic{Op: And, L: randPredicate(rng, depth-1), R: randPredicate(rng, depth-1)}
	default:
		return &Logic{Op: Or, L: randPredicate(rng, depth-1), R: randPredicate(rng, depth-1)}
	}
}

// TestAnalyzeRangesSoundness is the core safety property behind all three
// pruning levels: if the vectorized evaluator keeps a row, then a chunk
// whose stats describe exactly that row can never be pruned by the
// derived ranges.
func TestAnalyzeRangesSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	schema := types.NewSchema(
		types.Column{Name: "c0", Type: types.Int64},
		types.Column{Name: "c1", Type: types.Float64},
	)
	intVals := []types.Value{
		types.NullValue(types.Int64),
		types.IntValue(-10), types.IntValue(-1), types.IntValue(0),
		types.IntValue(1), types.IntValue(5), types.IntValue(10),
	}
	floatVals := []types.Value{
		types.NullValue(types.Float64),
		types.FloatValue(math.Inf(-1)), types.FloatValue(-2.5), types.FloatValue(0),
		types.FloatValue(2.5), types.FloatValue(math.Inf(1)), types.FloatValue(math.NaN()),
	}
	page := column.NewPage(schema)
	for _, iv := range intVals {
		for _, fv := range floatVals {
			page.AppendRow(iv, fv)
		}
	}
	for trial := 0; trial < 2000; trial++ {
		pred := randPredicate(rng, 3)
		keep, err := EvalPredicate(pred, page)
		if err != nil {
			continue // ill-typed tree; the analyzer need not handle it
		}
		ranges := AnalyzeRanges(pred)
		for row := 0; row < page.NumRows(); row++ {
			if !keep[row] {
				continue
			}
			if ranges.Never {
				t.Fatalf("trial %d: predicate %s keeps row %v but analysis says Never",
					trial, pred.String(), page.Row(row))
			}
			for ci, cr := range ranges.Cols {
				v := page.Vectors[ci].Value(row)
				// A chunk containing exactly this value has min=max=v.
				var min, max types.Value
				hasNull := v.Null
				hasNonNull := !v.Null
				if !v.Null {
					min, max = v, v
				} else {
					min = types.NullValue(v.Kind)
					max = min
				}
				if !cr.MayMatch(min, max, hasNull, hasNonNull) {
					t.Fatalf("trial %d: predicate %s keeps row %v but range %v prunes a chunk holding col %d value %v",
						trial, pred.String(), page.Row(row), cr, ci, v)
				}
			}
		}
	}
}
