package expr

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"prestocs/internal/column"
	"prestocs/internal/types"
)

// Differential property tests: the vectorized kernels (kernels.go) must be
// observationally identical to the row-at-a-time interpreter (evalRow) on
// randomized pages covering every kind, NULLs, NaN/Inf floats and
// adversarial strings. Divisors are always non-zero literals so neither
// path errors (the selection path may legally skip errors on rejected
// rows; see the package comment).

var kernelSchema = types.NewSchema(
	types.Column{Name: "i", Type: types.Int64},
	types.Column{Name: "f", Type: types.Float64},
	types.Column{Name: "s", Type: types.String},
	types.Column{Name: "b", Type: types.Bool},
	types.Column{Name: "d", Type: types.Date},
)

var (
	floatPool  = []float64{0, 1.5, -2.5, math.NaN(), math.Inf(1), math.Inf(-1), math.Copysign(0, -1), 1e300}
	stringPool = []string{"", "a", "ab", "b", "\x00", "a\x00b", "zz"}
)

func randomValue(r *rand.Rand, k types.Kind) types.Value {
	if r.Intn(5) == 0 {
		return types.NullValue(k)
	}
	switch k {
	case types.Int64:
		return types.IntValue(int64(r.Intn(11) - 5))
	case types.Float64:
		return types.FloatValue(floatPool[r.Intn(len(floatPool))])
	case types.String:
		return types.StringValue(stringPool[r.Intn(len(stringPool))])
	case types.Bool:
		return types.BoolValue(r.Intn(2) == 0)
	case types.Date:
		return types.DateValue(int64(r.Intn(7)))
	default:
		panic("unreachable")
	}
}

func randomKernelPage(r *rand.Rand, n int) *column.Page {
	p := column.NewPage(kernelSchema)
	for row := 0; row < n; row++ {
		vals := make([]types.Value, kernelSchema.Len())
		for c, col := range kernelSchema.Columns {
			vals[c] = randomValue(r, col.Type)
		}
		p.AppendRow(vals...)
	}
	return p
}

// Generators for random well-typed expressions. Depth 0 forces a leaf.

func genInt(r *rand.Rand, depth int) Expr {
	if depth <= 0 || r.Intn(3) == 0 {
		if r.Intn(3) == 0 {
			return Lit(randomValue(r, types.Int64))
		}
		return Col(0, "i", types.Int64)
	}
	op := ArithOp(r.Intn(5))
	l := genInt(r, depth-1)
	var right Expr
	if op == Div || op == Mod {
		right = Lit(types.IntValue(int64(1 + r.Intn(4)))) // never zero
	} else {
		right = genInt(r, depth-1)
	}
	a, err := NewArith(op, l, right)
	if err != nil {
		return Col(0, "i", types.Int64)
	}
	return a
}

func genFloat(r *rand.Rand, depth int) Expr {
	if depth <= 0 || r.Intn(3) == 0 {
		if r.Intn(3) == 0 {
			return Lit(randomValue(r, types.Float64))
		}
		return Col(1, "f", types.Float64)
	}
	op := ArithOp(r.Intn(4)) // no Mod on floats
	l := genFloat(r, depth-1)
	var right Expr
	switch {
	case op == Div:
		right = Lit(types.FloatValue(float64(1+r.Intn(4)) / 2)) // never zero
	case r.Intn(2) == 0:
		right = genInt(r, depth-1) // mixed int/float promotes
	default:
		right = genFloat(r, depth-1)
	}
	a, err := NewArith(op, l, right)
	if err != nil {
		return Col(1, "f", types.Float64)
	}
	return a
}

func genBool(r *rand.Rand, depth int) Expr {
	if depth <= 0 {
		if r.Intn(4) == 0 {
			return Lit(randomValue(r, types.Bool))
		}
		return Col(3, "b", types.Bool)
	}
	switch r.Intn(7) {
	case 0: // comparison over a random operand kind
		var l, rr Expr
		switch r.Intn(5) {
		case 0:
			l, rr = genInt(r, depth-1), genInt(r, depth-1)
		case 1:
			l, rr = genFloat(r, depth-1), genInt(r, depth-1)
		case 2:
			l, rr = Col(2, "s", types.String), Lit(randomValue(r, types.String))
		case 3:
			l, rr = Col(3, "b", types.Bool), Lit(randomValue(r, types.Bool))
		default:
			l, rr = Col(4, "d", types.Date), Lit(randomValue(r, types.Date))
		}
		if r.Intn(2) == 0 {
			l, rr = rr, l
		}
		c, err := NewCompare(CmpOp(r.Intn(6)), l, rr)
		if err != nil {
			return Col(3, "b", types.Bool)
		}
		return c
	case 1:
		lg, err := NewLogic(LogicOp(r.Intn(2)), genBool(r, depth-1), genBool(r, depth-1))
		if err != nil {
			return Col(3, "b", types.Bool)
		}
		return lg
	case 2:
		nt, err := NewNot(genBool(r, depth-1))
		if err != nil {
			return Col(3, "b", types.Bool)
		}
		return nt
	case 3: // BETWEEN over numerics or strings
		var e, lo, hi Expr
		if r.Intn(2) == 0 {
			e, lo, hi = genInt(r, depth-1), genInt(r, depth-1), genFloat(r, depth-1)
		} else {
			e = Col(2, "s", types.String)
			lo, hi = Lit(randomValue(r, types.String)), Lit(randomValue(r, types.String))
		}
		bt, err := NewBetween(e, lo, hi)
		if err != nil {
			return Col(3, "b", types.Bool)
		}
		return bt
	case 4: // IS [NOT] NULL over any kind
		var e Expr
		switch r.Intn(3) {
		case 0:
			e = genInt(r, depth-1)
		case 1:
			e = genFloat(r, depth-1)
		default:
			e = Col(2, "s", types.String)
		}
		return &IsNull{E: e, Negate: r.Intn(2) == 0}
	default:
		if r.Intn(4) == 0 {
			return Lit(randomValue(r, types.Bool))
		}
		return Col(3, "b", types.Bool)
	}
}

func sameValue(a, b types.Value) bool {
	if a.Null != b.Null || a.Kind != b.Kind {
		return false
	}
	if a.Null {
		return true
	}
	// types.Compare uses the total float order, so NaN == NaN here.
	return types.Compare(a, b) == 0
}

// rowWise evaluates e over every row of page via the interpreter.
func rowWise(t *testing.T, e Expr, page *column.Page) []types.Value {
	t.Helper()
	out := make([]types.Value, page.NumRows())
	for i := range out {
		v, err := evalRow(e, page, i)
		if err != nil {
			t.Fatalf("evalRow(%s, row %d): %v", e, i, err)
		}
		out[i] = v
	}
	return out
}

func checkEvalDifferential(t *testing.T, e Expr, page *column.Page) {
	t.Helper()
	want := rowWise(t, e, page)
	vec, err := Eval(e, page)
	if err != nil {
		t.Fatalf("Eval(%s): %v", e, err)
	}
	if vec.Len() != page.NumRows() {
		t.Fatalf("Eval(%s): %d rows, want %d", e, vec.Len(), page.NumRows())
	}
	for i, w := range want {
		if got := vec.Value(i); !sameValue(got, w) {
			t.Fatalf("Eval(%s) row %d: vectorized %s, row-wise %s", e, i, got, w)
		}
	}
}

func checkSelectionDifferential(t *testing.T, r *rand.Rand, e Expr, page *column.Page) {
	t.Helper()
	want := rowWise(t, e, page)
	var expect []int
	for i, v := range want {
		if !v.Null && v.B {
			expect = append(expect, i)
		}
	}
	sel, err := EvalSelection(e, page)
	if err != nil {
		t.Fatalf("EvalSelection(%s): %v", e, err)
	}
	if fmt.Sprint(sel) != fmt.Sprint(expect) {
		t.Fatalf("EvalSelection(%s) = %v, row-wise %v", e, sel, expect)
	}

	// Same over a random base selection: only base rows may survive. A
	// nil base means every row, i.e. the plain EvalSelection case above.
	base := randomSel(r, page.NumRows())
	if base == nil {
		return
	}
	var expectOver []int
	for _, i := range base {
		if v := want[i]; !v.Null && v.B {
			expectOver = append(expectOver, i)
		}
	}
	over, err := EvalSelectionOver(e, page, base)
	if err != nil {
		t.Fatalf("EvalSelectionOver(%s): %v", e, err)
	}
	if fmt.Sprint(over) != fmt.Sprint(expectOver) {
		t.Fatalf("EvalSelectionOver(%s, %v) = %v, row-wise %v", e, base, over, expectOver)
	}
}

func randomSel(r *rand.Rand, n int) []int {
	var sel []int
	for i := 0; i < n; i++ {
		if r.Intn(3) != 0 {
			sel = append(sel, i)
		}
	}
	sort.Ints(sel)
	return sel
}

func TestVectorizedPredicatesMatchRowWise(t *testing.T) {
	r := rand.New(rand.NewSource(20260805))
	for iter := 0; iter < 400; iter++ {
		page := randomKernelPage(r, 1+r.Intn(80))
		e := genBool(r, 3)
		checkEvalDifferential(t, e, page)
		checkSelectionDifferential(t, r, e, page)
	}
}

func TestVectorizedArithmeticMatchesRowWise(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for iter := 0; iter < 300; iter++ {
		page := randomKernelPage(r, 1+r.Intn(64))
		var e Expr
		if iter%2 == 0 {
			e = genInt(r, 3)
		} else {
			e = genFloat(r, 3)
		}
		checkEvalDifferential(t, e, page)

		// EvalOver must compact to exactly the selected rows (a nil
		// selection means every row).
		want := rowWise(t, e, page)
		sel := randomSel(r, page.NumRows())
		vec, err := EvalOver(e, page, sel)
		if err != nil {
			t.Fatalf("EvalOver(%s): %v", e, err)
		}
		if sel == nil {
			sel = make([]int, page.NumRows())
			for i := range sel {
				sel[i] = i
			}
		}
		if vec.Len() != len(sel) {
			t.Fatalf("EvalOver(%s): %d rows, want %d", e, vec.Len(), len(sel))
		}
		for j, i := range sel {
			if got := vec.Value(j); !sameValue(got, want[i]) {
				t.Fatalf("EvalOver(%s) slot %d (row %d): %s, row-wise %s", e, j, i, got, want[i])
			}
		}
	}
}

// TestLogicThreeValuedTable pins the AND/OR/NOT truth tables over the full
// {TRUE, FALSE, NULL}² domain against the row-wise interpreter, covering
// the NULL-propagation rules the kernels implement directly.
func TestLogicThreeValuedTable(t *testing.T) {
	schema := types.NewSchema(
		types.Column{Name: "l", Type: types.Bool},
		types.Column{Name: "r", Type: types.Bool},
	)
	vals := []types.Value{types.BoolValue(true), types.BoolValue(false), types.NullValue(types.Bool)}
	page := column.NewPage(schema)
	for _, l := range vals {
		for _, r := range vals {
			page.AppendRow(l, r)
		}
	}
	l, r := Col(0, "l", types.Bool), Col(1, "r", types.Bool)
	for _, op := range []LogicOp{And, Or} {
		lg, err := NewLogic(op, l, r)
		if err != nil {
			t.Fatal(err)
		}
		checkEvalDifferential(t, lg, page)
		sel, err := EvalSelection(lg, page)
		if err != nil {
			t.Fatal(err)
		}
		// Only the rows where the connective is TRUE (not NULL) survive.
		want := map[LogicOp][]int{And: {0}, Or: {0, 1, 2, 3, 6}}[op]
		if fmt.Sprint(sel) != fmt.Sprint(want) {
			t.Errorf("%v selection = %v, want %v", op, sel, want)
		}
	}
	nt, err := NewNot(l)
	if err != nil {
		t.Fatal(err)
	}
	checkEvalDifferential(t, nt, page)
}

// TestCompareNullSemantics pins NULL-in, NULL-out for comparisons and the
// any-NULL rule for BETWEEN: a NULL bound makes the result NULL even when
// the other bound already rejects the row.
func TestCompareNullSemantics(t *testing.T) {
	page := column.NewPage(kernelSchema)
	page.AppendRow(types.IntValue(5), types.FloatValue(1), types.StringValue("x"),
		types.BoolValue(true), types.DateValue(1))
	i := Col(0, "i", types.Int64)

	cmp, err := NewCompare(Gt, i, Lit(types.NullValue(types.Int64)))
	if err != nil {
		t.Fatal(err)
	}
	v, err := Eval(cmp, page)
	if err != nil {
		t.Fatal(err)
	}
	if !v.IsNull(0) {
		t.Errorf("5 > NULL = %s, want NULL", v.Value(0))
	}

	// 5 BETWEEN 10 AND NULL: the low bound alone rejects, but SQL still
	// yields NULL, not FALSE.
	bt, err := NewBetween(i, Lit(types.IntValue(10)), Lit(types.NullValue(types.Int64)))
	if err != nil {
		t.Fatal(err)
	}
	v, err = Eval(bt, page)
	if err != nil {
		t.Fatal(err)
	}
	if !v.IsNull(0) {
		t.Errorf("5 BETWEEN 10 AND NULL = %s, want NULL", v.Value(0))
	}
	checkEvalDifferential(t, bt, page)
}

// TestSelectionShortCircuitSkipsRightErrors documents the one intentional
// divergence from the interpreter: the selection path evaluates the right
// side of AND only over rows surviving the left side, so an error confined
// to rejected rows does not surface. Value-context Eval still reports it.
func TestSelectionShortCircuitSkipsRightErrors(t *testing.T) {
	schema := types.NewSchema(types.Column{Name: "i", Type: types.Int64})
	page := column.NewPage(schema)
	page.AppendRow(types.IntValue(0)) // i = 0 everywhere: 10/i would divide by zero
	page.AppendRow(types.IntValue(0))
	i := Col(0, "i", types.Int64)

	div, err := NewArith(Div, Lit(types.IntValue(10)), i)
	if err != nil {
		t.Fatal(err)
	}
	right, err := NewCompare(Gt, div, Lit(types.IntValue(1)))
	if err != nil {
		t.Fatal(err)
	}
	pred, err := NewLogic(And, Lit(types.BoolValue(false)), right)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := EvalSelection(pred, page)
	if err != nil {
		t.Fatalf("selection path must skip the unevaluated right side: %v", err)
	}
	if len(sel) != 0 {
		t.Fatalf("sel = %v, want empty", sel)
	}
	if _, err := Eval(pred, page); err == nil {
		t.Fatal("value-context Eval must still surface the division by zero")
	}
}

// TestFallbackCast exercises the evalRow fallback inside evalVec for a node
// without a dedicated kernel (Cast), including over a selection.
func TestFallbackCast(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	page := randomKernelPage(r, 40)
	c := &Cast{E: Col(0, "i", types.Int64), To: types.Float64}
	checkEvalDifferential(t, c, page)

	sel := randomSel(r, page.NumRows())
	vec, err := EvalOver(c, page, sel)
	if err != nil {
		t.Fatal(err)
	}
	for j, i := range sel {
		w, err := evalRow(c, page, i)
		if err != nil {
			t.Fatal(err)
		}
		if got := vec.Value(j); !sameValue(got, w) {
			t.Fatalf("cast slot %d: %s, want %s", j, got, w)
		}
	}
}
