package expr

// Vectorized execution kernels. The batch evaluator walks the expression
// tree once per page instead of once per row: every node is lowered to a
// typed kernel that processes whole column buffers (Ints/Floats/Strings/
// Bools) with null-bitmap propagation. Predicates additionally evaluate
// through selection vectors (sorted row-index slices), so AND evaluates
// its right side only over rows the left side kept and OR only over rows
// the left side rejected.
//
// Null propagation rules (matching the row-wise evaluator exactly):
//   - arithmetic and comparison: NULL if either operand is NULL;
//   - BETWEEN: NULL if the tested value or either bound is NULL;
//   - AND/OR: SQL three-valued logic;
//   - NOT: NULL passes through;
//   - IS [NOT] NULL: never NULL.
// Value buffers at NULL positions hold unspecified data; consumers must
// check the null bitmap first (types.Value extraction already does).
//
// Any node without a kernel (Cast, future extensions) falls back to the
// row-wise evalRow transparently, per row of the active selection.

import (
	"fmt"

	"prestocs/internal/column"
	"prestocs/internal/types"
)

// operand is an evaluated kernel input: either a dense vector aligned
// with the active selection, or a scalar (from a Literal).
type operand struct {
	vec *column.Vector // nil when scalar
	val types.Value
}

func (o operand) kind() types.Kind {
	if o.vec != nil {
		return o.vec.Kind
	}
	return o.val.Kind
}

func (o operand) isScalar() bool   { return o.vec == nil }
func (o operand) scalarNull() bool { return o.vec == nil && o.val.Null }

func (o operand) nulls() []bool {
	if o.vec != nil {
		return o.vec.Nulls
	}
	return nil
}

// EvalOver evaluates the expression over the rows named by sel (nil means
// every row of the page), returning a dense vector with len(sel) rows
// aligned with the selection. This is the batch entry point used by the
// exec operators; Eval is EvalOver with a nil selection.
func EvalOver(e Expr, page *column.Page, sel []int) (*column.Vector, error) {
	return evalVec(e, page, sel)
}

// EvalSelection evaluates a boolean predicate into a selection vector of
// the rows where it is true (SQL WHERE semantics: NULL counts as false).
// AND/OR short-circuit through selections as described above.
func EvalSelection(e Expr, page *column.Page) ([]int, error) {
	if e.Type() != types.Bool {
		return nil, fmt.Errorf("expr: predicate has type %s", e.Type())
	}
	return evalSel(e, page, nil)
}

// EvalSelectionOver is EvalSelection restricted to a base selection; the
// result is a subsequence of sel (nil means all rows).
func EvalSelectionOver(e Expr, page *column.Page, sel []int) ([]int, error) {
	if e.Type() != types.Bool {
		return nil, fmt.Errorf("expr: predicate has type %s", e.Type())
	}
	return evalSel(e, page, sel)
}

func selLen(page *column.Page, sel []int) int {
	if sel != nil {
		return len(sel)
	}
	return page.NumRows()
}

func identitySel(n int) []int {
	sel := make([]int, n)
	for i := range sel {
		sel[i] = i
	}
	return sel
}

// evalSel evaluates a predicate into the subset of sel where it holds.
func evalSel(e Expr, page *column.Page, sel []int) ([]int, error) {
	if t, ok := e.(*Logic); ok {
		left, err := evalSel(t.L, page, sel)
		if err != nil {
			return nil, err
		}
		if t.Op == And {
			if len(left) == 0 {
				return left, nil
			}
			return evalSel(t.R, page, left)
		}
		// OR: the right side only needs to run over rows the left side
		// rejected; merged output stays sorted.
		base := sel
		if base == nil {
			base = identitySel(page.NumRows())
		}
		rest := column.SubtractSel(base, left)
		if len(rest) == 0 {
			return left, nil
		}
		right, err := evalSel(t.R, page, rest)
		if err != nil {
			return nil, err
		}
		return column.MergeSel(left, right), nil
	}
	v, err := evalVec(e, page, sel)
	if err != nil {
		return nil, err
	}
	n := v.Len()
	out := make([]int, 0, n)
	if sel == nil {
		for i := 0; i < n; i++ {
			if v.Bools[i] && (v.Nulls == nil || !v.Nulls[i]) {
				out = append(out, i)
			}
		}
		return out, nil
	}
	for i, row := range sel {
		if v.Bools[i] && (v.Nulls == nil || !v.Nulls[i]) {
			out = append(out, row)
		}
	}
	return out, nil
}

// evalVec is the batch evaluator: a dense result vector aligned with sel.
func evalVec(e Expr, page *column.Page, sel []int) (*column.Vector, error) {
	n := selLen(page, sel)
	switch t := e.(type) {
	case *ColumnRef:
		if t.Index < 0 || t.Index >= page.NumCols() {
			return nil, fmt.Errorf("expr: column ordinal %d out of range (%d cols)", t.Index, page.NumCols())
		}
		v := page.Vectors[t.Index]
		if sel == nil {
			// Zero copy: vectors are immutable by convention.
			return v, nil
		}
		return v.Gather(sel), nil
	case *Literal:
		return broadcast(t.Value, n), nil
	case *Arith:
		l, err := evalOperand(t.L, page, sel)
		if err != nil {
			return nil, err
		}
		r, err := evalOperand(t.R, page, sel)
		if err != nil {
			return nil, err
		}
		return kernelArith(t, l, r, n)
	case *Compare:
		l, err := evalOperand(t.L, page, sel)
		if err != nil {
			return nil, err
		}
		r, err := evalOperand(t.R, page, sel)
		if err != nil {
			return nil, err
		}
		return kernelCompare(t.Op, l, r, n)
	case *Logic:
		// Value context evaluates both sides (errors on either side
		// surface exactly as in the row-wise evaluator); only the
		// selection path short-circuits.
		l, err := evalVec(t.L, page, sel)
		if err != nil {
			return nil, err
		}
		r, err := evalVec(t.R, page, sel)
		if err != nil {
			return nil, err
		}
		return kernelLogic(t.Op, l, r, n), nil
	case *Not:
		v, err := evalVec(t.E, page, sel)
		if err != nil {
			return nil, err
		}
		out := column.NewVector(types.Bool)
		out.Bools = make([]bool, n)
		for i, b := range v.Bools {
			out.Bools[i] = !b
		}
		out.Nulls = v.Nulls
		return out, nil
	case *Between:
		ev, err := evalOperand(t.E, page, sel)
		if err != nil {
			return nil, err
		}
		lo, err := evalOperand(t.Lo, page, sel)
		if err != nil {
			return nil, err
		}
		hi, err := evalOperand(t.Hi, page, sel)
		if err != nil {
			return nil, err
		}
		// NULL if value or either bound is NULL — combine the raw bounds
		// checks and OR the null masks (each side already carries the
		// tested value's nulls).
		ge, err := kernelCompare(Ge, ev, lo, n)
		if err != nil {
			return nil, err
		}
		le, err := kernelCompare(Le, ev, hi, n)
		if err != nil {
			return nil, err
		}
		out := column.NewVector(types.Bool)
		out.Bools = make([]bool, n)
		for i := range out.Bools {
			out.Bools[i] = ge.Bools[i] && le.Bools[i]
		}
		out.Nulls = orNulls(ge.Nulls, le.Nulls, n)
		return out, nil
	case *IsNull:
		if lit, ok := t.E.(*Literal); ok {
			return broadcast(types.BoolValue(lit.Value.Null != t.Negate), n), nil
		}
		v, err := evalVec(t.E, page, sel)
		if err != nil {
			return nil, err
		}
		out := column.NewVector(types.Bool)
		out.Bools = make([]bool, n)
		if v.Nulls == nil {
			if t.Negate {
				for i := range out.Bools {
					out.Bools[i] = true
				}
			}
			return out, nil
		}
		for i, isNull := range v.Nulls {
			out.Bools[i] = isNull != t.Negate
		}
		return out, nil
	default:
		// Transparent row-wise fallback for nodes without kernels
		// (Cast, unknown extensions).
		return fallbackVec(e, page, sel, n)
	}
}

func evalOperand(e Expr, page *column.Page, sel []int) (operand, error) {
	if lit, ok := e.(*Literal); ok {
		return operand{val: lit.Value}, nil
	}
	v, err := evalVec(e, page, sel)
	if err != nil {
		return operand{}, err
	}
	return operand{vec: v}, nil
}

func fallbackVec(e Expr, page *column.Page, sel []int, n int) (*column.Vector, error) {
	out := column.NewVector(e.Type())
	out.Reserve(n)
	if sel == nil {
		for i := 0; i < n; i++ {
			v, err := evalRow(e, page, i)
			if err != nil {
				return nil, err
			}
			out.Append(v)
		}
		return out, nil
	}
	for _, row := range sel {
		v, err := evalRow(e, page, row)
		if err != nil {
			return nil, err
		}
		out.Append(v)
	}
	return out, nil
}

// broadcast materializes a scalar as an n-row vector.
func broadcast(v types.Value, n int) *column.Vector {
	out := column.NewVector(v.Kind)
	if v.Null {
		return allNullVec(v.Kind, n)
	}
	switch v.Kind {
	case types.Int64, types.Date:
		out.Ints = make([]int64, n)
		for i := range out.Ints {
			out.Ints[i] = v.I
		}
	case types.Float64:
		out.Floats = make([]float64, n)
		for i := range out.Floats {
			out.Floats[i] = v.F
		}
	case types.String:
		out.Strings = make([]string, n)
		for i := range out.Strings {
			out.Strings[i] = v.S
		}
	case types.Bool:
		out.Bools = make([]bool, n)
		for i := range out.Bools {
			out.Bools[i] = v.B
		}
	}
	return out
}

func allNullVec(k types.Kind, n int) *column.Vector {
	out := column.NewVector(k)
	out.Nulls = make([]bool, n)
	for i := range out.Nulls {
		out.Nulls[i] = true
	}
	switch k {
	case types.Int64, types.Date:
		out.Ints = make([]int64, n)
	case types.Float64:
		out.Floats = make([]float64, n)
	case types.String:
		out.Strings = make([]string, n)
	case types.Bool:
		out.Bools = make([]bool, n)
	}
	return out
}

// orNulls combines two null bitmaps; nil when neither side has nulls.
func orNulls(a, b []bool, n int) []bool {
	if a == nil && b == nil {
		return nil
	}
	out := make([]bool, n)
	if a != nil {
		copy(out, a)
	}
	if b != nil {
		for i, isNull := range b {
			if isNull {
				out[i] = true
			}
		}
	}
	return out
}

func isIntKind(k types.Kind) bool { return k == types.Int64 || k == types.Date }

// floatsOf returns the operand's values as a float64 slice, converting
// integer buffers (one pass, one allocation) when needed.
func floatsOf(v *column.Vector, n int) []float64 {
	if v.Kind == types.Float64 {
		return v.Floats
	}
	out := make([]float64, n)
	for i, x := range v.Ints {
		out[i] = float64(x)
	}
	return out
}

// mirror flips a comparison so scalar-vs-vector reuses the
// vector-vs-scalar loops: s < x  ⇔  x > s.
func mirror(op CmpOp) CmpOp {
	switch op {
	case Lt:
		return Gt
	case Le:
		return Ge
	case Gt:
		return Lt
	case Ge:
		return Le
	default:
		return op // Eq, Ne are symmetric
	}
}

// cmpOrd covers the kinds whose comparison lowers to Go operators
// directly; floats go through types.CompareFloat for NaN totality.
type cmpOrd interface{ ~int64 | ~string }

func cmpVS[T cmpOrd](op CmpOp, xs []T, s T, out []bool) {
	switch op {
	case Eq:
		for i, x := range xs {
			out[i] = x == s
		}
	case Ne:
		for i, x := range xs {
			out[i] = x != s
		}
	case Lt:
		for i, x := range xs {
			out[i] = x < s
		}
	case Le:
		for i, x := range xs {
			out[i] = x <= s
		}
	case Gt:
		for i, x := range xs {
			out[i] = x > s
		}
	case Ge:
		for i, x := range xs {
			out[i] = x >= s
		}
	}
}

func cmpVV[T cmpOrd](op CmpOp, xs, ys []T, out []bool) {
	switch op {
	case Eq:
		for i, x := range xs {
			out[i] = x == ys[i]
		}
	case Ne:
		for i, x := range xs {
			out[i] = x != ys[i]
		}
	case Lt:
		for i, x := range xs {
			out[i] = x < ys[i]
		}
	case Le:
		for i, x := range xs {
			out[i] = x <= ys[i]
		}
	case Gt:
		for i, x := range xs {
			out[i] = x > ys[i]
		}
	case Ge:
		for i, x := range xs {
			out[i] = x >= ys[i]
		}
	}
}

func cmpFloatVS(op CmpOp, xs []float64, s float64, out []bool) {
	for i, x := range xs {
		out[i] = cmpHolds(op, types.CompareFloat(x, s))
	}
}

func cmpFloatVV(op CmpOp, xs, ys []float64, out []bool) {
	for i, x := range xs {
		out[i] = cmpHolds(op, types.CompareFloat(x, ys[i]))
	}
}

func boolsToInts(bs []bool) []int64 {
	out := make([]int64, len(bs))
	for i, b := range bs {
		if b {
			out[i] = 1
		}
	}
	return out
}

func kernelCompare(op CmpOp, l, r operand, n int) (*column.Vector, error) {
	if l.scalarNull() || r.scalarNull() {
		return allNullVec(types.Bool, n), nil
	}
	if l.isScalar() && r.isScalar() {
		return broadcast(types.BoolValue(cmpHolds(op, types.Compare(l.val, r.val))), n), nil
	}
	if l.isScalar() {
		l, r = r, l
		op = mirror(op)
	}
	out := column.NewVector(types.Bool)
	out.Bools = make([]bool, n)
	lk, rk := l.kind(), r.kind()
	switch {
	case isIntKind(lk) && isIntKind(rk):
		if r.isScalar() {
			cmpVS(op, l.vec.Ints, r.val.I, out.Bools)
		} else {
			cmpVV(op, l.vec.Ints, r.vec.Ints, out.Bools)
		}
	case lk.Numeric() && rk.Numeric():
		xs := floatsOf(l.vec, n)
		if r.isScalar() {
			cmpFloatVS(op, xs, r.val.AsFloat(), out.Bools)
		} else {
			cmpFloatVV(op, xs, floatsOf(r.vec, n), out.Bools)
		}
	case lk == types.String && rk == types.String:
		if r.isScalar() {
			cmpVS(op, l.vec.Strings, r.val.S, out.Bools)
		} else {
			cmpVV(op, l.vec.Strings, r.vec.Strings, out.Bools)
		}
	case lk == types.Bool && rk == types.Bool:
		xs := boolsToInts(l.vec.Bools)
		if r.isScalar() {
			var s int64
			if r.val.B {
				s = 1
			}
			cmpVS(op, xs, s, out.Bools)
		} else {
			cmpVV(op, xs, boolsToInts(r.vec.Bools), out.Bools)
		}
	default:
		return nil, fmt.Errorf("expr: cannot compare %s to %s", lk, rk)
	}
	out.Nulls = orNulls(l.nulls(), r.nulls(), n)
	return out, nil
}

type number interface{ ~int64 | ~float64 }

var errDivZero = fmt.Errorf("expr: division by zero")
var errModZero = fmt.Errorf("expr: modulo by zero")

// arithVS computes xs op s. Division by zero is an error unless the row
// is NULL (the row-wise evaluator checks nulls before the divisor).
func arithVS[T number](op ArithOp, xs []T, s T, out []T, nulls []bool) error {
	switch op {
	case Add:
		for i, x := range xs {
			out[i] = x + s
		}
	case Sub:
		for i, x := range xs {
			out[i] = x - s
		}
	case Mul:
		for i, x := range xs {
			out[i] = x * s
		}
	case Div:
		if s == 0 {
			return firstNonNullErr(len(xs), nulls, errDivZero)
		}
		for i, x := range xs {
			out[i] = x / s
		}
	}
	return nil
}

// arithSV computes s op xs (for the non-commutative shapes).
func arithSV[T number](op ArithOp, s T, xs []T, out []T, nulls []bool) error {
	switch op {
	case Add:
		for i, x := range xs {
			out[i] = s + x
		}
	case Sub:
		for i, x := range xs {
			out[i] = s - x
		}
	case Mul:
		for i, x := range xs {
			out[i] = s * x
		}
	case Div:
		for i, x := range xs {
			if nulls != nil && nulls[i] {
				continue
			}
			if x == 0 {
				return errDivZero
			}
			out[i] = s / x
		}
	}
	return nil
}

func arithVV[T number](op ArithOp, xs, ys, out []T, nulls []bool) error {
	switch op {
	case Add:
		for i, x := range xs {
			out[i] = x + ys[i]
		}
	case Sub:
		for i, x := range xs {
			out[i] = x - ys[i]
		}
	case Mul:
		for i, x := range xs {
			out[i] = x * ys[i]
		}
	case Div:
		for i, x := range xs {
			if nulls != nil && nulls[i] {
				continue
			}
			if ys[i] == 0 {
				return errDivZero
			}
			out[i] = x / ys[i]
		}
	}
	return nil
}

// firstNonNullErr returns err if any of the n rows is non-NULL (a NULL
// row never evaluates its divisor row-wise).
func firstNonNullErr(n int, nulls []bool, err error) error {
	if nulls == nil {
		if n > 0 {
			return err
		}
		return nil
	}
	for i := 0; i < n; i++ {
		if !nulls[i] {
			return err
		}
	}
	return nil
}

// Mod is integer-only, so it gets dedicated loops.
func modVS(xs []int64, s int64, out []int64, nulls []bool) error {
	if s == 0 {
		return firstNonNullErr(len(xs), nulls, errModZero)
	}
	for i, x := range xs {
		out[i] = x % s
	}
	return nil
}

func modSV(s int64, xs []int64, out []int64, nulls []bool) error {
	for i, x := range xs {
		if nulls != nil && nulls[i] {
			continue
		}
		if x == 0 {
			return errModZero
		}
		out[i] = s % x
	}
	return nil
}

func modVV(xs, ys, out []int64, nulls []bool) error {
	for i, x := range xs {
		if nulls != nil && nulls[i] {
			continue
		}
		if ys[i] == 0 {
			return errModZero
		}
		out[i] = x % ys[i]
	}
	return nil
}

func kernelArith(t *Arith, l, r operand, n int) (*column.Vector, error) {
	if l.scalarNull() || r.scalarNull() {
		return allNullVec(t.kind, n), nil
	}
	if l.isScalar() && r.isScalar() {
		v, err := evalArith(t, l.val, r.val)
		if err != nil {
			return nil, err
		}
		return broadcast(v, n), nil
	}
	out := column.NewVector(t.kind)
	nulls := orNulls(l.nulls(), r.nulls(), n)
	var err error
	if t.kind == types.Float64 {
		out.Floats = make([]float64, n)
		switch {
		case l.isScalar():
			err = arithSV(t.Op, l.val.AsFloat(), floatsOf(r.vec, n), out.Floats, nulls)
		case r.isScalar():
			err = arithVS(t.Op, floatsOf(l.vec, n), r.val.AsFloat(), out.Floats, nulls)
		default:
			err = arithVV(t.Op, floatsOf(l.vec, n), floatsOf(r.vec, n), out.Floats, nulls)
		}
	} else {
		out.Ints = make([]int64, n)
		switch {
		case t.Op == Mod && l.isScalar():
			err = modSV(l.val.I, r.vec.Ints, out.Ints, nulls)
		case t.Op == Mod && r.isScalar():
			err = modVS(l.vec.Ints, r.val.I, out.Ints, nulls)
		case t.Op == Mod:
			err = modVV(l.vec.Ints, r.vec.Ints, out.Ints, nulls)
		case l.isScalar():
			err = arithSV(t.Op, l.val.I, r.vec.Ints, out.Ints, nulls)
		case r.isScalar():
			err = arithVS(t.Op, l.vec.Ints, r.val.I, out.Ints, nulls)
		default:
			err = arithVV(t.Op, l.vec.Ints, r.vec.Ints, out.Ints, nulls)
		}
	}
	if err != nil {
		return nil, err
	}
	out.Nulls = nulls
	return out, nil
}

// kernelLogic implements SQL three-valued AND/OR over bool vectors.
func kernelLogic(op LogicOp, l, r *column.Vector, n int) *column.Vector {
	out := column.NewVector(types.Bool)
	out.Bools = make([]bool, n)
	lb, rb := l.Bools, r.Bools
	ln, rn := l.Nulls, r.Nulls
	if ln == nil && rn == nil {
		if op == And {
			for i, b := range lb {
				out.Bools[i] = b && rb[i]
			}
		} else {
			for i, b := range lb {
				out.Bools[i] = b || rb[i]
			}
		}
		return out
	}
	nulls := make([]bool, n)
	if op == And {
		for i := 0; i < n; i++ {
			lNull := ln != nil && ln[i]
			rNull := rn != nil && rn[i]
			switch {
			case (!lNull && !lb[i]) || (!rNull && !rb[i]):
				// definitively false
			case lNull || rNull:
				nulls[i] = true
			default:
				out.Bools[i] = true
			}
		}
	} else {
		for i := 0; i < n; i++ {
			lNull := ln != nil && ln[i]
			rNull := rn != nil && rn[i]
			switch {
			case (!lNull && lb[i]) || (!rNull && rb[i]):
				out.Bools[i] = true
			case lNull || rNull:
				nulls[i] = true
			}
		}
	}
	out.Nulls = nulls
	return out
}
