package expr

import (
	"testing"
	"testing/quick"

	"prestocs/internal/column"
	"prestocs/internal/types"
)

func page2(t *testing.T) *column.Page {
	t.Helper()
	s := types.NewSchema(
		types.Column{Name: "a", Type: types.Int64},
		types.Column{Name: "x", Type: types.Float64},
		types.Column{Name: "s", Type: types.String},
	)
	p := column.NewPage(s)
	p.AppendRow(types.IntValue(1), types.FloatValue(0.5), types.StringValue("p"))
	p.AppendRow(types.IntValue(2), types.FloatValue(1.5), types.StringValue("q"))
	p.AppendRow(types.IntValue(3), types.FloatValue(2.5), types.StringValue("r"))
	p.AppendRow(types.NullValue(types.Int64), types.FloatValue(9.5), types.NullValue(types.String))
	return p
}

func mustArith(t *testing.T, op ArithOp, l, r Expr) *Arith {
	t.Helper()
	a, err := NewArith(op, l, r)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func mustCmp(t *testing.T, op CmpOp, l, r Expr) *Compare {
	t.Helper()
	c, err := NewCompare(op, l, r)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestArithEval(t *testing.T) {
	p := page2(t)
	a := Col(0, "a", types.Int64)
	x := Col(1, "x", types.Float64)

	sum := mustArith(t, Add, a, x) // promotes to DOUBLE
	if sum.Type() != types.Float64 {
		t.Fatalf("type = %v", sum.Type())
	}
	v, err := Eval(sum, p)
	if err != nil {
		t.Fatal(err)
	}
	if v.Floats[0] != 1.5 || v.Floats[2] != 5.5 {
		t.Errorf("eval = %v", v.Floats)
	}
	if !v.IsNull(3) {
		t.Error("NULL + x must be NULL")
	}

	mod := mustArith(t, Mod, a, Lit(types.IntValue(2)))
	mv, err := Eval(mod, p)
	if err != nil {
		t.Fatal(err)
	}
	if mv.Ints[0] != 1 || mv.Ints[1] != 0 {
		t.Errorf("mod = %v", mv.Ints)
	}
}

func TestArithTypeErrors(t *testing.T) {
	if _, err := NewArith(Add, Col(2, "s", types.String), Lit(types.IntValue(1))); err == nil {
		t.Error("string arithmetic must fail")
	}
	if _, err := NewArith(Mod, Col(1, "x", types.Float64), Lit(types.IntValue(2))); err == nil {
		t.Error("float modulo must fail")
	}
}

func TestDivisionByZero(t *testing.T) {
	p := page2(t)
	d := mustArith(t, Div, Col(0, "a", types.Int64), Lit(types.IntValue(0)))
	if _, err := Eval(d, p); err == nil {
		t.Error("int division by zero must error")
	}
	fd := mustArith(t, Div, Col(1, "x", types.Float64), Lit(types.FloatValue(0)))
	if _, err := Eval(fd, p); err == nil {
		t.Error("float division by zero must error")
	}
	m := mustArith(t, Mod, Col(0, "a", types.Int64), Lit(types.IntValue(0)))
	if _, err := Eval(m, p); err == nil {
		t.Error("modulo by zero must error")
	}
}

func TestCompareEvalAndNulls(t *testing.T) {
	p := page2(t)
	c := mustCmp(t, Gt, Col(0, "a", types.Int64), Lit(types.IntValue(1)))
	keep, err := EvalPredicate(c, p)
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{false, true, true, false} // NULL > 1 is NULL -> false
	for i := range want {
		if keep[i] != want[i] {
			t.Errorf("keep[%d] = %v, want %v", i, keep[i], want[i])
		}
	}
	// Cross-type numeric comparison.
	cx := mustCmp(t, Lt, Col(0, "a", types.Int64), Col(1, "x", types.Float64))
	if _, err := Eval(cx, p); err != nil {
		t.Fatal(err)
	}
	if _, err := NewCompare(Eq, Col(2, "s", types.String), Lit(types.IntValue(1))); err == nil {
		t.Error("string = int must fail type check")
	}
}

func TestLogicThreeValued(t *testing.T) {
	tr, fa, nu := types.BoolValue(true), types.BoolValue(false), types.NullValue(types.Bool)
	cases := []struct {
		op   LogicOp
		l, r types.Value
		want types.Value
	}{
		{And, tr, tr, tr}, {And, tr, fa, fa}, {And, fa, nu, fa}, {And, tr, nu, nu}, {And, nu, nu, nu},
		{Or, fa, fa, fa}, {Or, fa, tr, tr}, {Or, tr, nu, tr}, {Or, fa, nu, nu}, {Or, nu, nu, nu},
	}
	for _, tc := range cases {
		got := evalLogic(tc.op, tc.l, tc.r)
		if got.Null != tc.want.Null || (!got.Null && got.B != tc.want.B) {
			t.Errorf("%v(%v,%v) = %v, want %v", tc.op, tc.l, tc.r, got, tc.want)
		}
	}
	if _, err := NewLogic(And, Lit(types.IntValue(1)), Lit(types.BoolValue(true))); err == nil {
		t.Error("AND on BIGINT must fail")
	}
}

func TestNotAndIsNull(t *testing.T) {
	p := page2(t)
	isn := &IsNull{E: Col(0, "a", types.Int64)}
	v, err := Eval(isn, p)
	if err != nil {
		t.Fatal(err)
	}
	if v.Bools[0] || !v.Bools[3] {
		t.Errorf("IS NULL = %v", v.Bools)
	}
	notNull := &IsNull{E: Col(0, "a", types.Int64), Negate: true}
	v2, _ := Eval(notNull, p)
	if !v2.Bools[0] || v2.Bools[3] {
		t.Errorf("IS NOT NULL = %v", v2.Bools)
	}
	n, err := NewNot(isn)
	if err != nil {
		t.Fatal(err)
	}
	v3, _ := Eval(n, p)
	if !v3.Bools[0] {
		t.Error("NOT (a IS NULL) wrong")
	}
	if _, err := NewNot(Col(0, "a", types.Int64)); err == nil {
		t.Error("NOT BIGINT must fail")
	}
}

func TestBetween(t *testing.T) {
	p := page2(t)
	b, err := NewBetween(Col(1, "x", types.Float64), Lit(types.FloatValue(1.0)), Lit(types.FloatValue(3.0)))
	if err != nil {
		t.Fatal(err)
	}
	keep, err := EvalPredicate(b, p)
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{false, true, true, false}
	for i := range want {
		if keep[i] != want[i] {
			t.Errorf("between[%d] = %v", i, keep[i])
		}
	}
	if _, err := NewBetween(Col(2, "s", types.String), Lit(types.IntValue(0)), Lit(types.IntValue(1))); err == nil {
		t.Error("BETWEEN type mismatch must fail")
	}
}

func TestCast(t *testing.T) {
	p := page2(t)
	c := &Cast{E: Col(1, "x", types.Float64), To: types.Int64}
	v, err := Eval(c, p)
	if err != nil {
		t.Fatal(err)
	}
	if v.Ints[1] != 1 || v.Ints[2] != 2 {
		t.Errorf("cast = %v", v.Ints)
	}
}

func TestReferencedColumnsAndRemap(t *testing.T) {
	e := mustCmp(t, Gt,
		mustArith(t, Add, Col(3, "c3", types.Int64), Col(1, "c1", types.Int64)),
		Col(3, "c3", types.Int64))
	refs := ReferencedColumns(e)
	if len(refs) != 2 || refs[0] != 1 || refs[1] != 3 {
		t.Errorf("refs = %v", refs)
	}
	re, err := Remap(e, map[int]int{1: 0, 3: 1})
	if err != nil {
		t.Fatal(err)
	}
	refs2 := ReferencedColumns(re)
	if len(refs2) != 2 || refs2[0] != 0 || refs2[1] != 1 {
		t.Errorf("remapped refs = %v", refs2)
	}
	if _, err := Remap(e, map[int]int{1: 0}); err == nil {
		t.Error("remap with missing column must fail")
	}
}

func TestConjunctsAndAndAll(t *testing.T) {
	a := mustCmp(t, Gt, Col(0, "a", types.Int64), Lit(types.IntValue(0)))
	b := mustCmp(t, Lt, Col(0, "a", types.Int64), Lit(types.IntValue(10)))
	c := mustCmp(t, Ne, Col(0, "a", types.Int64), Lit(types.IntValue(5)))
	combined := AndAll([]Expr{a, b, c})
	parts := Conjuncts(combined)
	if len(parts) != 3 {
		t.Errorf("Conjuncts = %d parts", len(parts))
	}
	if AndAll(nil) != nil {
		t.Error("AndAll(nil) must be nil")
	}
	if len(Conjuncts(a)) != 1 {
		t.Error("single conjunct wrong")
	}
}

func TestFoldConstants(t *testing.T) {
	// (1 + 2) * 3 folds to 9.
	inner := mustArith(t, Add, Lit(types.IntValue(1)), Lit(types.IntValue(2)))
	outer := mustArith(t, Mul, inner, Lit(types.IntValue(3)))
	folded := FoldConstants(outer)
	lit, ok := folded.(*Literal)
	if !ok || lit.Value.I != 9 {
		t.Errorf("folded = %v", folded)
	}
	// Column-referencing subtree stays.
	mixed := mustArith(t, Add, Col(0, "a", types.Int64), inner)
	f2 := FoldConstants(mixed)
	if _, ok := f2.(*Literal); ok {
		t.Error("column expr must not fold to literal")
	}
	// Division by zero must not fold (runtime error preserved).
	dz := mustArith(t, Div, Lit(types.IntValue(1)), Lit(types.IntValue(0)))
	if _, ok := FoldConstants(dz).(*Literal); ok {
		t.Error("div-by-zero must not fold")
	}
}

func TestCostMonotonic(t *testing.T) {
	a := Col(0, "a", types.Int64)
	add := mustArith(t, Add, a, Lit(types.IntValue(1)))
	div := mustArith(t, Div, a, Lit(types.IntValue(2)))
	if !(add.Cost() > a.Cost()) || !(div.Cost() > add.Cost()) {
		t.Errorf("cost ordering wrong: col=%v add=%v div=%v", a.Cost(), add.Cost(), div.Cost())
	}
}

func TestStringForms(t *testing.T) {
	b, _ := NewBetween(Col(0, "x", types.Float64), Lit(types.FloatValue(0.8)), Lit(types.FloatValue(3.2)))
	if b.String() != "(x BETWEEN 0.8 AND 3.2)" {
		t.Errorf("String = %q", b.String())
	}
	if Lit(types.StringValue("hi")).String() != "'hi'" {
		t.Error("string literal quoting wrong")
	}
	if got := Format([]Expr{Col(0, "a", types.Int64), Col(1, "b", types.Int64)}); got != "a, b" {
		t.Errorf("Format = %q", got)
	}
}

func TestCmpOpNegate(t *testing.T) {
	ops := []CmpOp{Eq, Ne, Lt, Le, Gt, Ge}
	for _, op := range ops {
		n := op.Negate()
		// Negating twice returns the original.
		if n.Negate() != op {
			t.Errorf("double negate of %v = %v", op, n.Negate())
		}
	}
}

// Property: for random int rows, (a < k) evaluated via the tree matches
// direct computation, and NOT(a < k) is its complement on non-null rows.
func TestQuickComparePredicate(t *testing.T) {
	f := func(vals []int64, k int64) bool {
		s := types.NewSchema(types.Column{Name: "a", Type: types.Int64})
		p := column.NewPage(s)
		for _, v := range vals {
			p.AppendRow(types.IntValue(v))
		}
		lt, err := NewCompare(Lt, Col(0, "a", types.Int64), Lit(types.IntValue(k)))
		if err != nil {
			return false
		}
		keep, err := EvalPredicate(lt, p)
		if err != nil {
			return false
		}
		not, _ := NewNot(lt)
		inv, err := EvalPredicate(not, p)
		if err != nil {
			return false
		}
		for i, v := range vals {
			if keep[i] != (v < k) || inv[i] == keep[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: FoldConstants preserves evaluation results on constant trees.
func TestQuickFoldPreservesValue(t *testing.T) {
	f := func(a, b int32) bool {
		l := Lit(types.IntValue(int64(a)))
		r := Lit(types.IntValue(int64(b)))
		e, err := NewArith(Add, l, r)
		if err != nil {
			return false
		}
		folded := FoldConstants(e)
		lit, ok := folded.(*Literal)
		return ok && lit.Value.I == int64(a)+int64(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
