package expr

import (
	"testing"

	"prestocs/internal/column"
	"prestocs/internal/types"
)

// Additional coverage for tree utilities and evaluator corners.

func TestWalkVisitsEveryNode(t *testing.T) {
	a := Col(0, "a", types.Int64)
	add := mustArith(t, Add, a, Lit(types.IntValue(1)))
	cmp := mustCmp(t, Gt, add, Lit(types.IntValue(0)))
	isn := &IsNull{E: a}
	logic, err := NewLogic(Or, cmp, isn)
	if err != nil {
		t.Fatal(err)
	}
	not, _ := NewNot(logic)
	btw, _ := NewBetween(a, Lit(types.IntValue(0)), Lit(types.IntValue(9)))
	and, _ := NewLogic(And, not, btw)
	cast := &Cast{E: and, To: types.Bool}

	var count int
	Walk(cast, func(Expr) { count++ })
	// cast, and, not, logic, cmp, add, a, 1, 0, isn, a, btw, a, 0, 9 = 15
	if count != 15 {
		t.Errorf("walked %d nodes, want 15", count)
	}
}

func TestRemapAllNodeKinds(t *testing.T) {
	a := Col(2, "a", types.Int64)
	b := Col(5, "b", types.Float64)
	add := mustArith(t, Add, a, b)
	cmp := mustCmp(t, Le, a, Lit(types.IntValue(3)))
	isn := &IsNull{E: b, Negate: true}
	logic, _ := NewLogic(And, cmp, isn)
	not, _ := NewNot(logic)
	btw, _ := NewBetween(b, Lit(types.FloatValue(0)), Lit(types.FloatValue(1)))
	both, _ := NewLogic(Or, not, btw)
	cast := &Cast{E: add, To: types.Int64}
	gt, _ := NewCompare(Gt, cast, Lit(types.IntValue(0)))
	root, _ := NewLogic(And, both, gt)

	mapping := map[int]int{2: 0, 5: 1}
	remapped, err := Remap(root, mapping)
	if err != nil {
		t.Fatal(err)
	}
	refs := ReferencedColumns(remapped)
	if len(refs) != 2 || refs[0] != 0 || refs[1] != 1 {
		t.Errorf("remapped refs = %v", refs)
	}
	// Original untouched.
	refs = ReferencedColumns(root)
	if refs[0] != 2 || refs[1] != 5 {
		t.Errorf("original mutated: %v", refs)
	}
	// Every node kind propagates missing-column errors.
	for _, e := range []Expr{root, add, cmp, isn, not, btw, cast} {
		if len(ReferencedColumns(e)) == 0 {
			continue
		}
		if _, err := Remap(e, map[int]int{}); err == nil {
			t.Errorf("%T: remap with empty mapping succeeded", e)
		}
	}
}

func TestEvalErrorPropagation(t *testing.T) {
	s := types.NewSchema(types.Column{Name: "a", Type: types.Int64})
	p := column.NewPage(s)
	p.AppendRow(types.IntValue(1))

	div := mustArith(t, Div, Col(0, "a", types.Int64), Lit(types.IntValue(0)))
	nested := mustCmp(t, Gt, div, Lit(types.IntValue(0)))
	if _, err := Eval(nested, p); err == nil {
		t.Error("error inside comparison not propagated")
	}
	logic, _ := NewLogic(And, nested, Lit(types.BoolValue(true)))
	if _, err := Eval(logic, p); err == nil {
		t.Error("error inside AND not propagated")
	}
	btw, _ := NewBetween(div, Lit(types.IntValue(0)), Lit(types.IntValue(1)))
	if _, err := Eval(btw, p); err == nil {
		t.Error("error inside BETWEEN not propagated")
	}
	cast := &Cast{E: div, To: types.Float64}
	if _, err := Eval(cast, p); err == nil {
		t.Error("error inside CAST not propagated")
	}
	not, _ := NewNot(nested)
	if _, err := Eval(not, p); err == nil {
		t.Error("error inside NOT not propagated")
	}
	isn := &IsNull{E: div}
	if _, err := Eval(isn, p); err == nil {
		t.Error("error inside IS NULL not propagated")
	}
	// Out-of-range column ordinal.
	bad := Col(7, "zz", types.Int64)
	if _, err := Eval(bad, p); err == nil {
		t.Error("out-of-range ordinal accepted")
	}
	if _, err := EvalPredicate(Col(0, "a", types.Int64), p); err == nil {
		t.Error("non-bool predicate accepted")
	}
}

func TestEvalRowMatchesEval(t *testing.T) {
	s := types.NewSchema(types.Column{Name: "a", Type: types.Int64})
	p := column.NewPage(s)
	for i := 0; i < 5; i++ {
		p.AppendRow(types.IntValue(int64(i)))
	}
	e := mustArith(t, Mul, Col(0, "a", types.Int64), Lit(types.IntValue(3)))
	vec, err := Eval(e, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		v, err := EvalRow(e, p, i)
		if err != nil {
			t.Fatal(err)
		}
		if !types.Equal(v, vec.Value(i)) {
			t.Errorf("row %d: EvalRow %v vs Eval %v", i, v, vec.Value(i))
		}
	}
}

func TestBetweenNullBounds(t *testing.T) {
	s := types.NewSchema(types.Column{Name: "a", Type: types.Int64})
	p := column.NewPage(s)
	p.AppendRow(types.IntValue(5))
	btw, _ := NewBetween(Col(0, "a", types.Int64), Lit(types.NullValue(types.Int64)), Lit(types.IntValue(9)))
	keep, err := EvalPredicate(btw, p)
	if err != nil {
		t.Fatal(err)
	}
	if keep[0] {
		t.Error("NULL lower bound must yield NULL -> not kept")
	}
}

func TestArithCrossTypePromotion(t *testing.T) {
	s := types.NewSchema(
		types.Column{Name: "d", Type: types.Date},
		types.Column{Name: "i", Type: types.Int64},
	)
	p := column.NewPage(s)
	p.AppendRow(types.DateValue(10000), types.IntValue(90))
	// DATE - BIGINT yields day count (BIGINT).
	sub := mustArith(t, Sub, Col(0, "d", types.Date), Col(1, "i", types.Int64))
	if sub.Type() != types.Int64 {
		t.Fatalf("date - int type = %v", sub.Type())
	}
	v, err := Eval(sub, p)
	if err != nil {
		t.Fatal(err)
	}
	if v.Ints[0] != 9910 {
		t.Errorf("date arithmetic = %d", v.Ints[0])
	}
}

func TestFoldConstantsNestedKinds(t *testing.T) {
	// NOT (1 < 2) folds to false.
	cmp := mustCmp(t, Lt, Lit(types.IntValue(1)), Lit(types.IntValue(2)))
	not, _ := NewNot(cmp)
	if lit, ok := FoldConstants(not).(*Literal); !ok || lit.Value.B {
		t.Errorf("folded NOT = %v", FoldConstants(not))
	}
	// BETWEEN over constants folds.
	btw, _ := NewBetween(Lit(types.IntValue(5)), Lit(types.IntValue(1)), Lit(types.IntValue(9)))
	if lit, ok := FoldConstants(btw).(*Literal); !ok || !lit.Value.B {
		t.Errorf("folded BETWEEN = %v", FoldConstants(btw))
	}
	// CAST of constant folds.
	cast := &Cast{E: Lit(types.IntValue(3)), To: types.Float64}
	if lit, ok := FoldConstants(cast).(*Literal); !ok || lit.Value.F != 3 {
		t.Errorf("folded CAST = %v", FoldConstants(cast))
	}
	// IS NULL over constant folds.
	isn := &IsNull{E: Lit(types.NullValue(types.Int64))}
	if lit, ok := FoldConstants(isn).(*Literal); !ok || !lit.Value.B {
		t.Errorf("folded IS NULL = %v", FoldConstants(isn))
	}
	// AND over constants folds.
	logic, _ := NewLogic(And, Lit(types.BoolValue(true)), Lit(types.BoolValue(false)))
	if lit, ok := FoldConstants(logic).(*Literal); !ok || lit.Value.B {
		t.Errorf("folded AND = %v", FoldConstants(logic))
	}
}
