package expr

// Predicate range analysis: derive per-column value intervals from a
// pushed-down filter AST, so scan layers can skip whole objects and row
// groups whose footer statistics prove the filter false before touching
// any page data (zone-map / min-max skipping).
//
// The analysis answers one question per referenced column: "in any row
// that satisfies the predicate (SQL WHERE semantics — a NULL result
// rejects the row), what values can this column hold?" The answer is a
// ColRange: an interval with open/closed bounds plus null admissibility.
// AND intersects ranges, OR unions them (dropping columns only one side
// constrains), NOT is rewritten through operator negation, and anything
// the analysis does not understand contributes no constraint — the
// result is always a superset of the satisfying rows, so pruning with it
// is sound but never required.
//
// Three-valued logic makes comparisons stronger than they look: `x < 5`
// is NULL (hence rejecting) for NULL x, so every comparison, BETWEEN and
// NOT-of-comparison also proves the column non-NULL. That is what lets
// an all-NULL chunk be skipped by any ordinary predicate over it, and
// what `IS NULL` / `IS NOT NULL` encode directly.
//
// Interval endpoints are ordered with types.Compare, whose float order
// is total (NaN after every number, equal to itself) — exactly the order
// the vectorized comparison kernels use (types.CompareFloat), so a
// range-pruned chunk can never contain a row the kernels would keep.

import (
	"fmt"
	"strings"

	"prestocs/internal/types"
)

// ColRange describes the values one column may take in a row satisfying
// a predicate. The zero ColRange admits nothing; Unconstrained() admits
// everything.
type ColRange struct {
	// Lo and Hi bound the non-NULL values; a Null or zero Value means
	// unbounded on that side. Bounds are inclusive unless the matching
	// Open flag is set.
	Lo, Hi         types.Value
	LoOpen, HiOpen bool
	// NullOK reports that a satisfying row may hold SQL NULL in this
	// column (only IS NULL admits it).
	NullOK bool
	// NonNullOK reports that a satisfying row may hold a non-NULL value
	// (inside [Lo, Hi]).
	NonNullOK bool
}

// Unconstrained returns the range admitting every value including NULL.
func Unconstrained() ColRange {
	return ColRange{NullOK: true, NonNullOK: true}
}

// Empty reports that no value at all satisfies the range.
func (cr ColRange) Empty() bool { return !cr.NullOK && !cr.NonNullOK }

// noBound reports that v carries no bound: either SQL NULL (unknown
// statistics) or the zero Value (unbounded side of a range).
func noBound(v types.Value) bool { return v.Null || !v.Kind.Valid() }

// String renders the range for debugging: "[1, 10) null=false".
func (cr ColRange) String() string {
	var b strings.Builder
	switch {
	case cr.Empty():
		return "∅"
	case !cr.NonNullOK:
		return "NULL-only"
	}
	if cr.LoOpen {
		b.WriteByte('(')
	} else {
		b.WriteByte('[')
	}
	if noBound(cr.Lo) {
		b.WriteString("-inf")
	} else {
		b.WriteString(cr.Lo.String())
	}
	b.WriteString(", ")
	if noBound(cr.Hi) {
		b.WriteString("+inf")
	} else {
		b.WriteString(cr.Hi.String())
	}
	if cr.HiOpen {
		b.WriteByte(')')
	} else {
		b.WriteByte(']')
	}
	fmt.Fprintf(&b, " null=%v", cr.NullOK)
	return b.String()
}

// Ranges is the per-column outcome of analyzing one predicate.
type Ranges struct {
	// Cols maps input ordinal to the derived range. Columns absent from
	// the map are unconstrained.
	Cols map[int]ColRange
	// Never is set when the predicate is provably false (or NULL) for
	// every row, independent of any column value.
	Never bool
}

// Constrained reports whether the analysis produced anything a pruner
// can act on.
func (r Ranges) Constrained() bool { return r.Never || len(r.Cols) > 0 }

// AnalyzeRanges derives per-column ranges from a boolean predicate. A
// nil predicate constrains nothing.
func AnalyzeRanges(pred Expr) Ranges {
	if pred == nil {
		return Ranges{}
	}
	cols, never := analyzeRanges(pred)
	if never {
		return Ranges{Never: true}
	}
	return Ranges{Cols: cols}
}

// comparableKinds reports whether types.Compare accepts the pair.
func comparableKinds(a, b types.Kind) bool {
	return a == b || (a.Numeric() && b.Numeric())
}

// analyzeRanges returns the constraint map, or never=true when the
// predicate is unsatisfiable. An empty map with never=false means "no
// information".
func analyzeRanges(e Expr) (map[int]ColRange, bool) {
	switch t := e.(type) {
	case *Literal:
		// WHERE FALSE and WHERE NULL reject every row.
		if t.Value.Kind == types.Bool && (t.Value.Null || !t.Value.B) {
			return nil, true
		}
		return nil, false
	case *ColumnRef:
		// A bare boolean column as predicate keeps rows where it is
		// non-NULL true.
		if t.Kind == types.Bool {
			v := types.BoolValue(true)
			return map[int]ColRange{t.Index: {Lo: v, Hi: v, NonNullOK: true}}, false
		}
		return nil, false
	case *Compare:
		return analyzeCompare(t)
	case *Between:
		return analyzeBetween(t)
	case *IsNull:
		col, ok := t.E.(*ColumnRef)
		if !ok {
			return nil, false
		}
		if t.Negate {
			return map[int]ColRange{col.Index: {NonNullOK: true}}, false
		}
		return map[int]ColRange{col.Index: {NullOK: true}}, false
	case *Logic:
		if t.Op == And {
			return analyzeAnd(t.L, t.R)
		}
		return analyzeOr(t.L, t.R)
	case *Not:
		return analyzeNot(t.E)
	default:
		return nil, false
	}
}

// analyzeCompare handles col OP lit (either operand order).
func analyzeCompare(t *Compare) (map[int]ColRange, bool) {
	col, okCol := t.L.(*ColumnRef)
	lit, okLit := t.R.(*Literal)
	op := t.Op
	if !okCol || !okLit {
		col, okCol = t.R.(*ColumnRef)
		lit, okLit = t.L.(*Literal)
		if !okCol || !okLit {
			return nil, false
		}
		op = mirrorOp(op)
	}
	if lit.Value.Null {
		// col OP NULL is NULL for every row: nothing satisfies.
		return nil, true
	}
	if !comparableKinds(col.Kind, lit.Value.Kind) {
		return nil, false
	}
	cr := ColRange{NonNullOK: true}
	switch op {
	case Eq:
		cr.Lo, cr.Hi = lit.Value, lit.Value
	case Ne:
		// No interval constraint, but NULLs still cannot satisfy.
	case Lt:
		cr.Hi, cr.HiOpen = lit.Value, true
	case Le:
		cr.Hi = lit.Value
	case Gt:
		cr.Lo, cr.LoOpen = lit.Value, true
	case Ge:
		cr.Lo = lit.Value
	}
	return map[int]ColRange{col.Index: cr}, false
}

func analyzeBetween(t *Between) (map[int]ColRange, bool) {
	col, okCol := t.E.(*ColumnRef)
	lo, okLo := t.Lo.(*Literal)
	hi, okHi := t.Hi.(*Literal)
	if !okCol || !okLo || !okHi {
		return nil, false
	}
	if lo.Value.Null || hi.Value.Null {
		// A NULL bound makes BETWEEN evaluate to NULL for every row.
		return nil, true
	}
	if !comparableKinds(col.Kind, lo.Value.Kind) || !comparableKinds(col.Kind, hi.Value.Kind) {
		return nil, false
	}
	if comparableKinds(lo.Value.Kind, hi.Value.Kind) && types.Compare(lo.Value, hi.Value) > 0 {
		return nil, true // empty interval: BETWEEN can never hold
	}
	return map[int]ColRange{col.Index: {Lo: lo.Value, Hi: hi.Value, NonNullOK: true}}, false
}

// analyzeNot rewrites NOT through its operand, respecting 3VL: rows kept
// by NOT(p) are exactly those where p is non-NULL false.
func analyzeNot(e Expr) (map[int]ColRange, bool) {
	switch t := e.(type) {
	case *Compare:
		return analyzeCompare(&Compare{Op: t.Op.Negate(), L: t.L, R: t.R})
	case *Between:
		// NOT BETWEEN keeps rows outside [lo, hi] — unbounded as an
		// interval, but still provably non-NULL (a NULL operand or bound
		// makes BETWEEN NULL, and NOT NULL is NULL).
		col, okCol := t.E.(*ColumnRef)
		lo, okLo := t.Lo.(*Literal)
		hi, okHi := t.Hi.(*Literal)
		if !okCol || !okLo || !okHi {
			return nil, false
		}
		if lo.Value.Null || hi.Value.Null {
			return nil, true
		}
		return map[int]ColRange{col.Index: {NonNullOK: true}}, false
	case *IsNull:
		if col, ok := t.E.(*ColumnRef); ok {
			if t.Negate {
				return map[int]ColRange{col.Index: {NullOK: true}}, false
			}
			return map[int]ColRange{col.Index: {NonNullOK: true}}, false
		}
		return nil, false
	case *Not:
		// NOT NOT p keeps exactly the rows where p is true.
		return analyzeRanges(t.E)
	case *Logic:
		// De Morgan holds under 3VL.
		inv := Or
		if t.Op == Or {
			inv = And
		}
		return analyzeRanges(&Logic{Op: inv, L: &Not{E: t.L}, R: &Not{E: t.R}})
	case *Literal:
		if t.Value.Kind == types.Bool && (t.Value.Null || t.Value.B) {
			return nil, true
		}
		return nil, false
	default:
		return nil, false
	}
}

func analyzeAnd(l, r Expr) (map[int]ColRange, bool) {
	lc, lNever := analyzeRanges(l)
	if lNever {
		return nil, true
	}
	rc, rNever := analyzeRanges(r)
	if rNever {
		return nil, true
	}
	if len(lc) == 0 {
		return rc, false
	}
	out := make(map[int]ColRange, len(lc)+len(rc))
	for c, cr := range lc {
		out[c] = cr
	}
	for c, cr := range rc {
		prev, ok := out[c]
		if !ok {
			out[c] = cr
			continue
		}
		merged := intersectRanges(prev, cr)
		if merged.Empty() {
			// Both sides must hold, but no value satisfies both.
			return nil, true
		}
		out[c] = merged
	}
	return out, false
}

func analyzeOr(l, r Expr) (map[int]ColRange, bool) {
	lc, lNever := analyzeRanges(l)
	rc, rNever := analyzeRanges(r)
	switch {
	case lNever && rNever:
		return nil, true
	case lNever:
		return rc, false
	case rNever:
		return lc, false
	}
	// Only columns both branches constrain survive: a row may satisfy
	// either side alone.
	out := make(map[int]ColRange)
	for c, lcr := range lc {
		if rcr, ok := rc[c]; ok {
			out[c] = unionRanges(lcr, rcr)
		}
	}
	return out, false
}

// intersectRanges narrows to values admitted by both ranges.
func intersectRanges(a, b ColRange) ColRange {
	out := ColRange{
		NullOK:    a.NullOK && b.NullOK,
		NonNullOK: a.NonNullOK && b.NonNullOK,
	}
	if !out.NonNullOK {
		return out
	}
	out.Lo, out.LoOpen = tighterBound(a.Lo, a.LoOpen, b.Lo, b.LoOpen, false)
	out.Hi, out.HiOpen = tighterBound(a.Hi, a.HiOpen, b.Hi, b.HiOpen, true)
	if !noBound(out.Lo) && !noBound(out.Hi) && comparableKinds(out.Lo.Kind, out.Hi.Kind) {
		c := types.Compare(out.Lo, out.Hi)
		if c > 0 || (c == 0 && (out.LoOpen || out.HiOpen)) {
			out.NonNullOK = false // interval collapsed
		}
	}
	return out
}

// tighterBound picks the narrower of two bounds (hi selects min for
// upper bounds, max for lower). A missing bound is unbounded.
func tighterBound(av types.Value, aOpen bool, bv types.Value, bOpen bool, hi bool) (types.Value, bool) {
	switch {
	case noBound(av):
		return bv, bOpen
	case noBound(bv):
		return av, aOpen
	case !comparableKinds(av.Kind, bv.Kind):
		return av, aOpen // mixed kinds: keep one side, stay conservative
	}
	c := types.Compare(av, bv)
	if c == 0 {
		return av, aOpen || bOpen
	}
	if (hi && c < 0) || (!hi && c > 0) {
		return av, aOpen
	}
	return bv, bOpen
}

// unionRanges widens to values admitted by either range (convex hull —
// gaps between disjoint intervals are kept, which is sound for pruning).
func unionRanges(a, b ColRange) ColRange {
	out := ColRange{
		NullOK:    a.NullOK || b.NullOK,
		NonNullOK: a.NonNullOK || b.NonNullOK,
	}
	switch {
	case !out.NonNullOK:
		return out
	case !a.NonNullOK:
		out.Lo, out.LoOpen, out.Hi, out.HiOpen = b.Lo, b.LoOpen, b.Hi, b.HiOpen
		return out
	case !b.NonNullOK:
		out.Lo, out.LoOpen, out.Hi, out.HiOpen = a.Lo, a.LoOpen, a.Hi, a.HiOpen
		return out
	}
	out.Lo, out.LoOpen = looserBound(a.Lo, a.LoOpen, b.Lo, b.LoOpen, false)
	out.Hi, out.HiOpen = looserBound(a.Hi, a.HiOpen, b.Hi, b.HiOpen, true)
	return out
}

// looserBound picks the wider of two bounds (hi selects max for upper
// bounds, min for lower). A missing bound is unbounded and always wins.
func looserBound(av types.Value, aOpen bool, bv types.Value, bOpen bool, hi bool) (types.Value, bool) {
	switch {
	case noBound(av) || noBound(bv):
		return types.Value{}, false
	case !comparableKinds(av.Kind, bv.Kind):
		return types.Value{}, false // unknown order: unbounded
	}
	c := types.Compare(av, bv)
	if c == 0 {
		return av, aOpen && bOpen
	}
	if (hi && c > 0) || (!hi && c < 0) {
		return av, aOpen
	}
	return bv, bOpen
}

// mirrorOp flips an operator across its operands: lit OP col holds
// exactly when col mirrorOp(OP) lit does.
func mirrorOp(op CmpOp) CmpOp {
	switch op {
	case Lt:
		return Gt
	case Le:
		return Ge
	case Gt:
		return Lt
	case Ge:
		return Le
	default:
		return op
	}
}

// MayMatch reports whether a chunk of values with the given statistics
// can contain a row satisfying the range. min and max bound the chunk's
// non-NULL values (a Null Value means the bound is unknown — e.g. stats
// were not recorded — and never prunes); hasNull and hasNonNull describe
// the chunk's null profile. The test is conservative: any uncertainty
// keeps the chunk.
func (cr ColRange) MayMatch(min, max types.Value, hasNull, hasNonNull bool) bool {
	if cr.NullOK && hasNull {
		return true
	}
	if !cr.NonNullOK || !hasNonNull {
		return false
	}
	// Interval overlap against [min, max]; unknown stats keep the chunk.
	if !noBound(cr.Lo) && !noBound(max) && comparableKinds(max.Kind, cr.Lo.Kind) {
		c := types.Compare(max, cr.Lo)
		if c < 0 || (c == 0 && cr.LoOpen) {
			return false
		}
	}
	if !noBound(cr.Hi) && !noBound(min) && comparableKinds(min.Kind, cr.Hi.Kind) {
		c := types.Compare(min, cr.Hi)
		if c > 0 || (c == 0 && cr.HiOpen) {
			return false
		}
	}
	return true
}
