// Package expr defines the expression tree shared by the SQL analyzer, the
// logical plan, the Substrait translator and both execution engines
// (compute-side and OCS-side), plus a vectorized evaluator over
// column.Pages.
//
// Expressions are resolved: column references carry the input ordinal, so
// an expression can be evaluated against any page whose schema matches the
// plan node's input. Cost accounting (Cost) feeds both the connector's
// Selectivity Analyzer (expression-complexity cap) and the hardware cost
// model (CPU units per row).
package expr

import (
	"fmt"
	"strings"

	"prestocs/internal/column"
	"prestocs/internal/types"
)

// Expr is a typed, resolved scalar expression.
type Expr interface {
	// Type returns the expression's result type.
	Type() types.Kind
	// String renders a SQL-ish debug form.
	String() string
	// Cost returns abstract CPU units consumed per row evaluated; used by
	// the cost model and the pushdown complexity cap.
	Cost() float64
}

// ColumnRef references an input column by ordinal.
type ColumnRef struct {
	Index int
	Name  string
	Kind  types.Kind
}

// Col builds a column reference.
func Col(index int, name string, kind types.Kind) *ColumnRef {
	return &ColumnRef{Index: index, Name: name, Kind: kind}
}

func (c *ColumnRef) Type() types.Kind { return c.Kind }
func (c *ColumnRef) String() string   { return c.Name }
func (c *ColumnRef) Cost() float64    { return 0.5 }

// Literal is a constant.
type Literal struct {
	Value types.Value
}

// Lit builds a literal.
func Lit(v types.Value) *Literal { return &Literal{Value: v} }

func (l *Literal) Type() types.Kind { return l.Value.Kind }
func (l *Literal) String() string {
	if l.Value.Kind == types.String && !l.Value.Null {
		return "'" + l.Value.S + "'"
	}
	return l.Value.String()
}
func (l *Literal) Cost() float64 { return 0 }

// ArithOp enumerates arithmetic operators.
type ArithOp uint8

const (
	Add ArithOp = iota
	Sub
	Mul
	Div
	Mod
)

func (op ArithOp) String() string { return [...]string{"+", "-", "*", "/", "%"}[op] }

// Arith is a binary arithmetic expression. Result type is the common
// numeric promotion of the operands (Mod requires integers).
type Arith struct {
	Op   ArithOp
	L, R Expr
	kind types.Kind
}

// NewArith type-checks and builds an arithmetic node.
func NewArith(op ArithOp, l, r Expr) (*Arith, error) {
	k, err := types.CommonKind(l.Type(), r.Type())
	if err != nil {
		return nil, fmt.Errorf("expr: %s %s %s: %w", l, op, r, err)
	}
	if !k.Numeric() {
		return nil, fmt.Errorf("expr: arithmetic on %s", k)
	}
	if op == Mod && k != types.Int64 {
		return nil, fmt.Errorf("expr: %% requires BIGINT operands, got %s", k)
	}
	if k == types.Date {
		// Date arithmetic yields day counts.
		k = types.Int64
	}
	return &Arith{Op: op, L: l, R: r, kind: k}, nil
}

func (a *Arith) Type() types.Kind { return a.kind }
func (a *Arith) String() string   { return fmt.Sprintf("(%s %s %s)", a.L, a.Op, a.R) }
func (a *Arith) Cost() float64 {
	c := a.L.Cost() + a.R.Cost() + 1
	if a.Op == Div || a.Op == Mod {
		c += 2 // division is markedly more expensive per element
	}
	return c
}

// CmpOp enumerates comparison operators.
type CmpOp uint8

const (
	Eq CmpOp = iota
	Ne
	Lt
	Le
	Gt
	Ge
)

func (op CmpOp) String() string { return [...]string{"=", "<>", "<", "<=", ">", ">="}[op] }

// Negate returns the complementary operator (for predicate rewrites).
func (op CmpOp) Negate() CmpOp {
	switch op {
	case Eq:
		return Ne
	case Ne:
		return Eq
	case Lt:
		return Ge
	case Le:
		return Gt
	case Gt:
		return Le
	default:
		return Lt
	}
}

// Compare is a binary comparison yielding BOOLEAN.
type Compare struct {
	Op   CmpOp
	L, R Expr
}

// NewCompare type-checks and builds a comparison node.
func NewCompare(op CmpOp, l, r Expr) (*Compare, error) {
	lk, rk := l.Type(), r.Type()
	if lk != rk {
		if _, err := types.CommonKind(lk, rk); err != nil {
			return nil, fmt.Errorf("expr: %s %s %s: %w", l, op, r, err)
		}
	}
	return &Compare{Op: op, L: l, R: r}, nil
}

func (c *Compare) Type() types.Kind { return types.Bool }
func (c *Compare) String() string   { return fmt.Sprintf("(%s %s %s)", c.L, c.Op, c.R) }
func (c *Compare) Cost() float64    { return c.L.Cost() + c.R.Cost() + 1 }

// LogicOp enumerates boolean connectives.
type LogicOp uint8

const (
	And LogicOp = iota
	Or
)

func (op LogicOp) String() string { return [...]string{"AND", "OR"}[op] }

// Logic is AND/OR over boolean operands (SQL three-valued logic).
type Logic struct {
	Op   LogicOp
	L, R Expr
}

// NewLogic type-checks and builds a logic node.
func NewLogic(op LogicOp, l, r Expr) (*Logic, error) {
	if l.Type() != types.Bool || r.Type() != types.Bool {
		return nil, fmt.Errorf("expr: %s requires BOOLEAN operands", op)
	}
	return &Logic{Op: op, L: l, R: r}, nil
}

func (l *Logic) Type() types.Kind { return types.Bool }
func (l *Logic) String() string   { return fmt.Sprintf("(%s %s %s)", l.L, l.Op, l.R) }
func (l *Logic) Cost() float64    { return l.L.Cost() + l.R.Cost() + 0.5 }

// Not negates a boolean expression.
type Not struct {
	E Expr
}

// NewNot type-checks and builds a NOT node.
func NewNot(e Expr) (*Not, error) {
	if e.Type() != types.Bool {
		return nil, fmt.Errorf("expr: NOT requires BOOLEAN operand")
	}
	return &Not{E: e}, nil
}

func (n *Not) Type() types.Kind { return types.Bool }
func (n *Not) String() string   { return fmt.Sprintf("(NOT %s)", n.E) }
func (n *Not) Cost() float64    { return n.E.Cost() + 0.5 }

// Between is e BETWEEN lo AND hi (inclusive), kept as a dedicated node so
// the Selectivity Analyzer can recognize range predicates directly.
type Between struct {
	E, Lo, Hi Expr
}

// NewBetween type-checks and builds a BETWEEN node.
func NewBetween(e, lo, hi Expr) (*Between, error) {
	for _, pair := range [][2]Expr{{e, lo}, {e, hi}} {
		if _, err := types.CommonKind(pair[0].Type(), pair[1].Type()); err != nil && pair[0].Type() != pair[1].Type() {
			return nil, fmt.Errorf("expr: BETWEEN type mismatch: %w", err)
		}
	}
	return &Between{E: e, Lo: lo, Hi: hi}, nil
}

func (b *Between) Type() types.Kind { return types.Bool }
func (b *Between) String() string {
	return fmt.Sprintf("(%s BETWEEN %s AND %s)", b.E, b.Lo, b.Hi)
}
func (b *Between) Cost() float64 { return b.E.Cost() + b.Lo.Cost() + b.Hi.Cost() + 2 }

// Cast converts an expression to a target kind.
type Cast struct {
	E  Expr
	To types.Kind
}

func (c *Cast) Type() types.Kind { return c.To }
func (c *Cast) String() string   { return fmt.Sprintf("CAST(%s AS %s)", c.E, c.To) }
func (c *Cast) Cost() float64    { return c.E.Cost() + 1 }

// IsNull tests for SQL NULL.
type IsNull struct {
	E      Expr
	Negate bool // IS NOT NULL
}

func (n *IsNull) Type() types.Kind { return types.Bool }
func (n *IsNull) String() string {
	if n.Negate {
		return fmt.Sprintf("(%s IS NOT NULL)", n.E)
	}
	return fmt.Sprintf("(%s IS NULL)", n.E)
}
func (n *IsNull) Cost() float64 { return n.E.Cost() + 0.5 }

// Walk calls fn for every node in the expression tree, pre-order.
func Walk(e Expr, fn func(Expr)) {
	fn(e)
	switch t := e.(type) {
	case *Arith:
		Walk(t.L, fn)
		Walk(t.R, fn)
	case *Compare:
		Walk(t.L, fn)
		Walk(t.R, fn)
	case *Logic:
		Walk(t.L, fn)
		Walk(t.R, fn)
	case *Not:
		Walk(t.E, fn)
	case *Between:
		Walk(t.E, fn)
		Walk(t.Lo, fn)
		Walk(t.Hi, fn)
	case *Cast:
		Walk(t.E, fn)
	case *IsNull:
		Walk(t.E, fn)
	}
}

// ReferencedColumns returns the sorted set of input ordinals the expression
// reads.
func ReferencedColumns(e Expr) []int {
	seen := map[int]bool{}
	Walk(e, func(n Expr) {
		if c, ok := n.(*ColumnRef); ok {
			seen[c.Index] = true
		}
	})
	out := make([]int, 0, len(seen))
	for i := range seen {
		out = append(out, i)
	}
	for i := 1; i < len(out); i++ { // insertion sort; sets are tiny
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Remap returns a copy of the expression with column ordinals rewritten
// through mapping (old index -> new index). Unmapped references are an
// error.
func Remap(e Expr, mapping map[int]int) (Expr, error) {
	switch t := e.(type) {
	case *ColumnRef:
		ni, ok := mapping[t.Index]
		if !ok {
			return nil, fmt.Errorf("expr: column %s (#%d) not available after remap", t.Name, t.Index)
		}
		return &ColumnRef{Index: ni, Name: t.Name, Kind: t.Kind}, nil
	case *Literal:
		return t, nil
	case *Arith:
		l, err := Remap(t.L, mapping)
		if err != nil {
			return nil, err
		}
		r, err := Remap(t.R, mapping)
		if err != nil {
			return nil, err
		}
		return &Arith{Op: t.Op, L: l, R: r, kind: t.kind}, nil
	case *Compare:
		l, err := Remap(t.L, mapping)
		if err != nil {
			return nil, err
		}
		r, err := Remap(t.R, mapping)
		if err != nil {
			return nil, err
		}
		return &Compare{Op: t.Op, L: l, R: r}, nil
	case *Logic:
		l, err := Remap(t.L, mapping)
		if err != nil {
			return nil, err
		}
		r, err := Remap(t.R, mapping)
		if err != nil {
			return nil, err
		}
		return &Logic{Op: t.Op, L: l, R: r}, nil
	case *Not:
		inner, err := Remap(t.E, mapping)
		if err != nil {
			return nil, err
		}
		return &Not{E: inner}, nil
	case *Between:
		ee, err := Remap(t.E, mapping)
		if err != nil {
			return nil, err
		}
		lo, err := Remap(t.Lo, mapping)
		if err != nil {
			return nil, err
		}
		hi, err := Remap(t.Hi, mapping)
		if err != nil {
			return nil, err
		}
		return &Between{E: ee, Lo: lo, Hi: hi}, nil
	case *Cast:
		inner, err := Remap(t.E, mapping)
		if err != nil {
			return nil, err
		}
		return &Cast{E: inner, To: t.To}, nil
	case *IsNull:
		inner, err := Remap(t.E, mapping)
		if err != nil {
			return nil, err
		}
		return &IsNull{E: inner, Negate: t.Negate}, nil
	default:
		return nil, fmt.Errorf("expr: Remap: unknown node %T", e)
	}
}

// Conjuncts splits a predicate on top-level ANDs.
func Conjuncts(e Expr) []Expr {
	if l, ok := e.(*Logic); ok && l.Op == And {
		return append(Conjuncts(l.L), Conjuncts(l.R)...)
	}
	return []Expr{e}
}

// AndAll combines predicates with AND; nil for an empty slice.
func AndAll(preds []Expr) Expr {
	var out Expr
	for _, p := range preds {
		if out == nil {
			out = p
		} else {
			out = &Logic{Op: And, L: out, R: p}
		}
	}
	return out
}

// Format renders a list of expressions comma-separated.
func Format(exprs []Expr) string {
	parts := make([]string, len(exprs))
	for i, e := range exprs {
		parts[i] = e.String()
	}
	return strings.Join(parts, ", ")
}

// Eval evaluates the expression over every row of the page, returning a
// result vector of e.Type(). Evaluation is vectorized: typed kernels
// (kernels.go) process whole column buffers with null-bitmap propagation,
// falling back to the row-wise evalRow for nodes without kernels. The
// result may share buffers with the page (a bare column reference is zero
// copy); vectors are immutable by convention.
func Eval(e Expr, page *column.Page) (*column.Vector, error) {
	return evalVec(e, page, nil)
}

// EvalRow evaluates the expression for a single row.
func EvalRow(e Expr, page *column.Page, row int) (types.Value, error) {
	return evalRow(e, page, row)
}

func evalRow(e Expr, page *column.Page, i int) (types.Value, error) {
	switch t := e.(type) {
	case *ColumnRef:
		if t.Index < 0 || t.Index >= page.NumCols() {
			return types.Value{}, fmt.Errorf("expr: column ordinal %d out of range (%d cols)", t.Index, page.NumCols())
		}
		return page.Vectors[t.Index].Value(i), nil
	case *Literal:
		return t.Value, nil
	case *Arith:
		l, err := evalRow(t.L, page, i)
		if err != nil {
			return types.Value{}, err
		}
		r, err := evalRow(t.R, page, i)
		if err != nil {
			return types.Value{}, err
		}
		return evalArith(t, l, r)
	case *Compare:
		l, err := evalRow(t.L, page, i)
		if err != nil {
			return types.Value{}, err
		}
		r, err := evalRow(t.R, page, i)
		if err != nil {
			return types.Value{}, err
		}
		if l.Null || r.Null {
			return types.NullValue(types.Bool), nil
		}
		return types.BoolValue(cmpHolds(t.Op, types.Compare(l, r))), nil
	case *Logic:
		l, err := evalRow(t.L, page, i)
		if err != nil {
			return types.Value{}, err
		}
		r, err := evalRow(t.R, page, i)
		if err != nil {
			return types.Value{}, err
		}
		return evalLogic(t.Op, l, r), nil
	case *Not:
		v, err := evalRow(t.E, page, i)
		if err != nil {
			return types.Value{}, err
		}
		if v.Null {
			return v, nil
		}
		return types.BoolValue(!v.B), nil
	case *Between:
		v, err := evalRow(t.E, page, i)
		if err != nil {
			return types.Value{}, err
		}
		lo, err := evalRow(t.Lo, page, i)
		if err != nil {
			return types.Value{}, err
		}
		hi, err := evalRow(t.Hi, page, i)
		if err != nil {
			return types.Value{}, err
		}
		if v.Null || lo.Null || hi.Null {
			return types.NullValue(types.Bool), nil
		}
		return types.BoolValue(types.Compare(v, lo) >= 0 && types.Compare(v, hi) <= 0), nil
	case *Cast:
		v, err := evalRow(t.E, page, i)
		if err != nil {
			return types.Value{}, err
		}
		return types.Coerce(v, t.To)
	case *IsNull:
		v, err := evalRow(t.E, page, i)
		if err != nil {
			return types.Value{}, err
		}
		return types.BoolValue(v.Null != t.Negate), nil
	default:
		return types.Value{}, fmt.Errorf("expr: eval: unknown node %T", e)
	}
}

func evalArith(t *Arith, l, r types.Value) (types.Value, error) {
	if l.Null || r.Null {
		return types.NullValue(t.kind), nil
	}
	if t.kind == types.Float64 {
		lf, rf := l.AsFloat(), r.AsFloat()
		switch t.Op {
		case Add:
			return types.FloatValue(lf + rf), nil
		case Sub:
			return types.FloatValue(lf - rf), nil
		case Mul:
			return types.FloatValue(lf * rf), nil
		case Div:
			if rf == 0 {
				return types.Value{}, fmt.Errorf("expr: division by zero")
			}
			return types.FloatValue(lf / rf), nil
		default:
			return types.Value{}, fmt.Errorf("expr: %% on DOUBLE")
		}
	}
	li, ri := l.I, r.I
	switch t.Op {
	case Add:
		return types.IntValue(li + ri), nil
	case Sub:
		return types.IntValue(li - ri), nil
	case Mul:
		return types.IntValue(li * ri), nil
	case Div:
		if ri == 0 {
			return types.Value{}, fmt.Errorf("expr: division by zero")
		}
		return types.IntValue(li / ri), nil
	case Mod:
		if ri == 0 {
			return types.Value{}, fmt.Errorf("expr: modulo by zero")
		}
		return types.IntValue(li % ri), nil
	default:
		return types.Value{}, fmt.Errorf("expr: unknown arith op")
	}
}

func cmpHolds(op CmpOp, c int) bool {
	switch op {
	case Eq:
		return c == 0
	case Ne:
		return c != 0
	case Lt:
		return c < 0
	case Le:
		return c <= 0
	case Gt:
		return c > 0
	case Ge:
		return c >= 0
	}
	return false
}

// evalLogic implements SQL three-valued AND/OR.
func evalLogic(op LogicOp, l, r types.Value) types.Value {
	if op == And {
		switch {
		case !l.Null && !l.B, !r.Null && !r.B:
			return types.BoolValue(false)
		case l.Null || r.Null:
			return types.NullValue(types.Bool)
		default:
			return types.BoolValue(true)
		}
	}
	switch {
	case !l.Null && l.B, !r.Null && r.B:
		return types.BoolValue(true)
	case l.Null || r.Null:
		return types.NullValue(types.Bool)
	default:
		return types.BoolValue(false)
	}
}

// EvalPredicate evaluates a boolean expression into a keep-mask; NULL
// results are treated as false (SQL WHERE semantics). It evaluates
// through the selection-vector path, so AND/OR short-circuit: rows
// already rejected by the left side never evaluate the right side (and
// never surface its runtime errors). Callers that want the selection
// directly should use EvalSelection.
func EvalPredicate(e Expr, page *column.Page) ([]bool, error) {
	sel, err := EvalSelection(e, page)
	if err != nil {
		return nil, err
	}
	return column.SelToMask(sel, page.NumRows()), nil
}

// FoldConstants rewrites constant subtrees into literals. Errors during
// constant evaluation (e.g. division by zero) leave the subtree unfolded so
// runtime semantics are preserved.
func FoldConstants(e Expr) Expr {
	folded := foldChildren(e)
	if _, ok := folded.(*Literal); ok {
		return folded
	}
	if len(ReferencedColumns(folded)) > 0 {
		return folded
	}
	empty := column.NewPage(types.NewSchema())
	// Evaluate against a synthetic single-row page with no columns.
	v, err := evalRowConst(folded, empty)
	if err != nil {
		return folded
	}
	return Lit(v)
}

func evalRowConst(e Expr, p *column.Page) (types.Value, error) { return evalRow(e, p, 0) }

func foldChildren(e Expr) Expr {
	switch t := e.(type) {
	case *Arith:
		a := &Arith{Op: t.Op, L: FoldConstants(t.L), R: FoldConstants(t.R), kind: t.kind}
		return a
	case *Compare:
		return &Compare{Op: t.Op, L: FoldConstants(t.L), R: FoldConstants(t.R)}
	case *Logic:
		return &Logic{Op: t.Op, L: FoldConstants(t.L), R: FoldConstants(t.R)}
	case *Not:
		return &Not{E: FoldConstants(t.E)}
	case *Between:
		return &Between{E: FoldConstants(t.E), Lo: FoldConstants(t.Lo), Hi: FoldConstants(t.Hi)}
	case *Cast:
		return &Cast{E: FoldConstants(t.E), To: t.To}
	case *IsNull:
		return &IsNull{E: FoldConstants(t.E), Negate: t.Negate}
	default:
		return e
	}
}
