package exec

import (
	"fmt"

	"prestocs/internal/bloom"
	"prestocs/internal/column"
	"prestocs/internal/types"
)

// BloomProbe drops rows whose key column cannot be in a bloom filter —
// the storage-node evaluation of a pushed-down join semi-filter. Like
// Filter it is a SelSource: the page is handed over untouched with the
// filter folded into the selection vector, so a downstream projection
// or aggregate materializes survivors only once.
type BloomProbe struct {
	input  Operator
	selIn  SelSource
	filter *bloom.Filter
	col    int
	meter  *Meter
	// observe, when set, receives per-page (tested, kept) row counts —
	// the hook the storage node uses to export filtered-row telemetry
	// without this package importing it.
	observe func(tested, kept int)
	selBuf  []int
}

// NewBloomProbe validates the key column ordinal. observe may be nil.
func NewBloomProbe(input Operator, col int, filter *bloom.Filter, meter *Meter, observe func(tested, kept int)) (*BloomProbe, error) {
	schema := input.Schema()
	if col < 0 || col >= schema.Len() {
		return nil, fmt.Errorf("exec: bloom probe column %d out of range (schema has %d)", col, schema.Len())
	}
	switch schema.Columns[col].Type {
	case types.Int64, types.Date, types.Float64, types.String, types.Bool:
	default:
		return nil, fmt.Errorf("exec: bloom probe over %s column", schema.Columns[col].Type)
	}
	selIn, _ := input.(SelSource)
	return &BloomProbe{input: input, selIn: selIn, filter: filter, col: col, meter: meter, observe: observe}, nil
}

// Schema implements Operator.
func (b *BloomProbe) Schema() *types.Schema { return b.input.Schema() }

// NextSel implements SelSource.
func (b *BloomProbe) NextSel() (*column.Page, []int, error) {
	for {
		var page *column.Page
		var sel []int
		var err error
		if b.selIn != nil {
			page, sel, err = b.selIn.NextSel()
		} else {
			page, err = b.input.Next()
		}
		if err != nil || page == nil {
			return nil, nil, err
		}
		tested := page.NumRows()
		if sel != nil {
			tested = len(sel)
		}
		out, err := b.filter.TestVector(page.Vectors[b.col], sel, b.selBuf[:0])
		if err != nil {
			return nil, nil, err
		}
		b.selBuf = out
		// One hash chain per row plus the membership probes.
		b.meter.charge(tested, float64(b.filter.NumHash()))
		if b.observe != nil {
			b.observe(tested, len(out))
		}
		if len(out) == page.NumRows() {
			return page, nil, nil
		}
		if len(out) > 0 {
			return page, out, nil
		}
	}
}

// Close releases the input when it holds resources (e.g. the connector
// wrapping a result stream after a storage-side bloom rejection).
func (b *BloomProbe) Close() error {
	if c, ok := b.input.(interface{ Close() error }); ok {
		return c.Close()
	}
	return nil
}

// Next implements Operator, materializing the selection.
func (b *BloomProbe) Next() (*column.Page, error) {
	page, sel, err := b.NextSel()
	if err != nil || page == nil {
		return nil, err
	}
	if sel == nil {
		return page, nil
	}
	return page.FilterSel(sel), nil
}
