// Hash inner equi-join: a fully-drained columnar build side indexed by
// the same collision-proof length-prefixed key encoding the hash
// aggregate uses, probed vectorized page-at-a-time. Rows whose key
// contains NULL never join (SQL semantics): they are dropped from the
// build index at build time, and a NULL probe key encodes to a value no
// indexed key can equal, so lookups miss without a special case.
//
// The probe path is guarded by `make vet-join`: no per-row value
// accessors, no scalar expression evaluation — matching is gather-list
// construction over the key index followed by columnar Gather of both
// sides.
package exec

import (
	"fmt"

	"prestocs/internal/bloom"
	"prestocs/internal/column"
	"prestocs/internal/types"
)

// JoinTable is the immutable result of draining a join's build side:
// dense build rows (NULL-key rows removed) plus the key index. Safe for
// concurrent probing once built (broadcast joins probe from every leaf
// worker).
type JoinTable struct {
	schema *types.Schema
	keys   []int
	rows   *column.Page
	index  map[string][]int32
	// inputRows counts drained rows before NULL-key rejection.
	inputRows int64
}

// BuildJoinTable drains input and indexes it by the key columns.
func BuildJoinTable(input Operator, keys []int, meter *Meter) (*JoinTable, error) {
	schema := input.Schema()
	if len(keys) == 0 {
		return nil, fmt.Errorf("exec: join build with no keys")
	}
	for _, k := range keys {
		if k < 0 || k >= schema.Len() {
			return nil, fmt.Errorf("exec: join build key %d out of range", k)
		}
	}
	t := &JoinTable{
		schema: schema,
		keys:   keys,
		rows:   column.NewPage(schema),
		index:  make(map[string][]int32),
	}
	var keyBuf []byte
	var live []int
	for {
		page, err := input.Next()
		if err != nil {
			return nil, err
		}
		if page == nil {
			break
		}
		n := page.NumRows()
		if n == 0 {
			continue
		}
		t.inputRows += int64(n)
		meter.charge(n, float64(len(keys))+1)

		// Columnar NULL-key rejection: a row with any NULL key cannot
		// match an inner join, so it never enters the dense table.
		dense := page
		anyNull := false
		for _, k := range keys {
			if page.Vectors[k].Nulls != nil {
				anyNull = true
				break
			}
		}
		if anyNull {
			live = live[:0]
		rows:
			for row := 0; row < n; row++ {
				for _, k := range keys {
					if nulls := page.Vectors[k].Nulls; nulls != nil && nulls[row] {
						continue rows
					}
				}
				live = append(live, row)
			}
			if len(live) == 0 {
				continue
			}
			dense = page.FilterSel(live)
		}

		base := t.rows.NumRows()
		t.rows.AppendPage(dense)
		m := dense.NumRows()
		for row := 0; row < m; row++ {
			keyBuf = encodeGroupKey(keyBuf[:0], dense, keys, row)
			t.index[string(keyBuf)] = append(t.index[string(keyBuf)], int32(base+row))
		}
	}
	return t, nil
}

// Schema returns the build-side schema.
func (t *JoinTable) Schema() *types.Schema { return t.schema }

// Rows returns the indexed (non-NULL-key) row count.
func (t *JoinTable) Rows() int { return t.rows.NumRows() }

// InputRows returns rows drained from the build side before NULL-key
// rejection.
func (t *JoinTable) InputRows() int64 { return t.inputRows }

// Bytes returns the columnar size of the indexed rows (the quantity the
// cost model's broadcast threshold prices).
func (t *JoinTable) Bytes() int64 { return t.rows.ByteSize() }

// BuildBloom constructs a bloom filter over the first key column's
// values — the filter the engine pushes into the probe-side OCS scan.
// Exact key count is known here, so sizing needs no estimate. Returns an
// error for key kinds the storage-side kernels cannot hash.
func (t *JoinTable) BuildBloom(bitsPerKey int) (*bloom.Filter, error) {
	f := bloom.New(t.rows.NumRows(), bitsPerKey)
	if err := f.AddVector(t.rows.Vectors[t.keys[0]]); err != nil {
		return nil, err
	}
	return f, nil
}

// HashJoinProbe streams probe pages against a built JoinTable, emitting
// probe columns followed by build columns for every match. Probe rows
// with multiple build matches repeat once per match (inner-join
// multiplicity).
type HashJoinProbe struct {
	input  Operator
	table  *JoinTable
	keys   []int
	schema *types.Schema
	meter  *Meter

	probeIdx []int
	buildIdx []int
	keyBuf   []byte
}

// NewHashJoinProbe validates key arity/types and builds the combined
// output schema (probe columns then build columns).
func NewHashJoinProbe(input Operator, table *JoinTable, probeKeys []int, meter *Meter) (*HashJoinProbe, error) {
	in := input.Schema()
	if len(probeKeys) != len(table.keys) {
		return nil, fmt.Errorf("exec: join key arity mismatch: probe %d, build %d", len(probeKeys), len(table.keys))
	}
	for i, k := range probeKeys {
		if k < 0 || k >= in.Len() {
			return nil, fmt.Errorf("exec: join probe key %d out of range", k)
		}
		pk, bk := in.Columns[k].Type, table.schema.Columns[table.keys[i]].Type
		if pk != bk {
			return nil, fmt.Errorf("exec: join key type mismatch: probe %s, build %s", pk, bk)
		}
	}
	cols := make([]types.Column, 0, in.Len()+table.schema.Len())
	cols = append(cols, in.Columns...)
	cols = append(cols, table.schema.Columns...)
	return &HashJoinProbe{
		input:  input,
		table:  table,
		keys:   probeKeys,
		schema: types.NewSchema(cols...),
		meter:  meter,
	}, nil
}

// Schema implements Operator.
func (j *HashJoinProbe) Schema() *types.Schema { return j.schema }

// Next implements Operator: it pulls probe pages until one produces
// matches, then emits the gathered probe⊕build page.
func (j *HashJoinProbe) Next() (*column.Page, error) {
	for {
		page, err := j.input.Next()
		if err != nil {
			return nil, err
		}
		if page == nil {
			return nil, nil
		}
		n := page.NumRows()
		if n == 0 || len(j.table.index) == 0 {
			if n > 0 {
				j.meter.charge(n, float64(len(j.keys)))
			}
			continue
		}
		j.meter.charge(n, float64(len(j.keys))+2)

		// Build the match gather lists: one (probe row, build row) pair
		// per join match.
		j.probeIdx = j.probeIdx[:0]
		j.buildIdx = j.buildIdx[:0]
		for row := 0; row < n; row++ {
			j.keyBuf = encodeGroupKey(j.keyBuf[:0], page, j.keys, row)
			matches, ok := j.table.index[string(j.keyBuf)]
			if !ok {
				continue
			}
			for _, b := range matches {
				j.probeIdx = append(j.probeIdx, row)
				j.buildIdx = append(j.buildIdx, int(b))
			}
		}
		if len(j.probeIdx) == 0 {
			continue
		}
		probeOut := page.Gather(j.probeIdx)
		buildOut := j.table.rows.Gather(j.buildIdx)
		vecs := make([]*column.Vector, 0, len(probeOut.Vectors)+len(buildOut.Vectors))
		vecs = append(vecs, probeOut.Vectors...)
		vecs = append(vecs, buildOut.Vectors...)
		return &column.Page{Schema: j.schema, Vectors: vecs}, nil
	}
}
