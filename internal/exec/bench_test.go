package exec

import (
	"fmt"
	"testing"

	"prestocs/internal/column"
	"prestocs/internal/expr"
	"prestocs/internal/substrait"
	"prestocs/internal/types"
)

func benchPages(pages, rows int) (*types.Schema, []*column.Page) {
	schema := types.NewSchema(
		types.Column{Name: "k", Type: types.Int64},
		types.Column{Name: "v", Type: types.Float64},
	)
	out := make([]*column.Page, pages)
	n := 0
	for p := range out {
		page := column.NewPage(schema)
		for r := 0; r < rows; r++ {
			page.AppendRow(types.IntValue(int64(n%64)), types.FloatValue(float64(n)))
			n++
		}
		out[p] = page
	}
	return schema, out
}

func BenchmarkFilter(b *testing.B) {
	schema, pages := benchPages(16, 4096)
	pred, _ := expr.NewCompare(expr.Gt, expr.Col(1, "v", types.Float64), expr.Lit(types.FloatValue(1000)))
	b.SetBytes(int64(16 * 4096))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, _ := NewFilter(NewPageSource(schema, pages), pred, nil)
		if _, err := Drain(f); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFilterSelectivity sweeps the fraction of surviving rows. The
// extremes exercise the kernel fast paths: at ~100% the filter returns the
// input page untouched, at ~0% no output page is ever materialized.
func BenchmarkFilterSelectivity(b *testing.B) {
	schema, pages := benchPages(16, 4096)
	total := 16 * 4096
	for _, pct := range []int{1, 25, 50, 99} {
		// v is 0..total-1, so v > threshold keeps ~pct% of the rows.
		threshold := float64(total) * float64(100-pct) / 100
		pred, _ := expr.NewCompare(expr.Gt, expr.Col(1, "v", types.Float64), expr.Lit(types.FloatValue(threshold)))
		b.Run(fmt.Sprintf("pct=%d", pct), func(b *testing.B) {
			b.SetBytes(int64(total))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f, _ := NewFilter(NewPageSource(schema, pages), pred, nil)
				if _, err := Drain(f); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFilterProject measures the selection handover: Project pulls
// (page, selection) pairs from Filter and evaluates its expressions over
// surviving rows only, never materializing the filtered page.
func BenchmarkFilterProject(b *testing.B) {
	schema, pages := benchPages(16, 4096)
	pred, _ := expr.NewCompare(expr.Gt, expr.Col(1, "v", types.Float64), expr.Lit(types.FloatValue(32768)))
	proj, _ := expr.NewArith(expr.Add, expr.Col(1, "v", types.Float64), expr.Col(0, "k", types.Int64))
	b.SetBytes(int64(16 * 4096))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, _ := NewFilter(NewPageSource(schema, pages), pred, nil)
		p, _ := NewProject(f, []expr.Expr{proj}, []string{"x"}, nil)
		if _, err := Drain(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHashAggregate(b *testing.B) {
	schema, pages := benchPages(16, 4096)
	measures := []substrait.Measure{
		{Func: substrait.AggSum, Arg: 1, Name: "s"},
		{Func: substrait.AggCountStar, Arg: -1, Name: "c"},
	}
	b.SetBytes(int64(16 * 4096))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg, _ := NewHashAggregate(NewPageSource(schema, pages), []int{0}, measures, AggSingle, nil)
		if _, err := Drain(agg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHashAggregateGlobal is the no-keys variant: a single group, so
// the run is dominated by the columnar accumulator loops rather than key
// encoding and hash probes.
func BenchmarkHashAggregateGlobal(b *testing.B) {
	schema, pages := benchPages(16, 4096)
	measures := []substrait.Measure{
		{Func: substrait.AggSum, Arg: 1, Name: "s"},
		{Func: substrait.AggMin, Arg: 1, Name: "mn"},
		{Func: substrait.AggMax, Arg: 1, Name: "mx"},
		{Func: substrait.AggCountStar, Arg: -1, Name: "c"},
	}
	b.SetBytes(int64(16 * 4096))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg, _ := NewHashAggregate(NewPageSource(schema, pages), nil, measures, AggSingle, nil)
		if _, err := Drain(agg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTopN(b *testing.B) {
	schema, pages := benchPages(16, 4096)
	b.SetBytes(int64(16 * 4096))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		topn, _ := NewTopN(NewPageSource(schema, pages), []SortSpec{{Column: 1, Descending: true}}, 100, nil)
		if _, err := Drain(topn); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSort(b *testing.B) {
	schema, pages := benchPages(8, 4096)
	b.SetBytes(int64(8 * 4096))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, _ := NewSort(NewPageSource(schema, pages), []SortSpec{{Column: 1}}, nil)
		if _, err := Drain(s); err != nil {
			b.Fatal(err)
		}
	}
}
