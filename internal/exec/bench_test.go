package exec

import (
	"testing"

	"prestocs/internal/column"
	"prestocs/internal/expr"
	"prestocs/internal/substrait"
	"prestocs/internal/types"
)

func benchPages(pages, rows int) (*types.Schema, []*column.Page) {
	schema := types.NewSchema(
		types.Column{Name: "k", Type: types.Int64},
		types.Column{Name: "v", Type: types.Float64},
	)
	out := make([]*column.Page, pages)
	n := 0
	for p := range out {
		page := column.NewPage(schema)
		for r := 0; r < rows; r++ {
			page.AppendRow(types.IntValue(int64(n%64)), types.FloatValue(float64(n)))
			n++
		}
		out[p] = page
	}
	return schema, out
}

func BenchmarkFilter(b *testing.B) {
	schema, pages := benchPages(16, 4096)
	pred, _ := expr.NewCompare(expr.Gt, expr.Col(1, "v", types.Float64), expr.Lit(types.FloatValue(1000)))
	b.SetBytes(int64(16 * 4096))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, _ := NewFilter(NewPageSource(schema, pages), pred, nil)
		if _, err := Drain(f); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHashAggregate(b *testing.B) {
	schema, pages := benchPages(16, 4096)
	measures := []substrait.Measure{
		{Func: substrait.AggSum, Arg: 1, Name: "s"},
		{Func: substrait.AggCountStar, Arg: -1, Name: "c"},
	}
	b.SetBytes(int64(16 * 4096))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg, _ := NewHashAggregate(NewPageSource(schema, pages), []int{0}, measures, AggSingle, nil)
		if _, err := Drain(agg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTopN(b *testing.B) {
	schema, pages := benchPages(16, 4096)
	b.SetBytes(int64(16 * 4096))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		topn, _ := NewTopN(NewPageSource(schema, pages), []SortSpec{{Column: 1, Descending: true}}, 100, nil)
		if _, err := Drain(topn); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSort(b *testing.B) {
	schema, pages := benchPages(8, 4096)
	b.SetBytes(int64(8 * 4096))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, _ := NewSort(NewPageSource(schema, pages), []SortSpec{{Column: 1}}, nil)
		if _, err := Drain(s); err != nil {
			b.Fatal(err)
		}
	}
}
