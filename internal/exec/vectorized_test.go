package exec

import (
	"math"
	"testing"

	"prestocs/internal/column"
	"prestocs/internal/expr"
	"prestocs/internal/substrait"
	"prestocs/internal/types"
)

// TestHashAggregateAdversarialKeys is the regression test for the group-key
// collision hazard: the old encoding joined key Strings with "\x00", so the
// two-key tuples ("a\x00b", "c") and ("a", "b\x00c") mapped to the same
// bucket, as did NULL and the literal string "NULL". The length-prefixed
// binary encoding must keep all of them distinct.
func TestHashAggregateAdversarialKeys(t *testing.T) {
	s := types.NewSchema(
		types.Column{Name: "k1", Type: types.String},
		types.Column{Name: "k2", Type: types.String},
	)
	p := column.NewPage(s)
	rows := [][2]types.Value{
		{types.StringValue("a\x00b"), types.StringValue("c")},
		{types.StringValue("a"), types.StringValue("b\x00c")},
		{types.StringValue("a\x00b\x00c"), types.StringValue("")},
		{types.StringValue(""), types.StringValue("a\x00b\x00c")},
		{types.NullValue(types.String), types.StringValue("x")},
		{types.StringValue("NULL"), types.StringValue("x")},
		{types.StringValue(""), types.StringValue("")},
		{types.NullValue(types.String), types.NullValue(types.String)},
	}
	for _, r := range rows {
		p.AppendRow(r[0], r[1])
	}
	// Append the whole set twice so every group has count exactly 2.
	p.AppendPage(p)

	agg, err := NewHashAggregate(NewPageSource(s, []*column.Page{p}), []int{0, 1},
		[]substrait.Measure{{Func: substrait.AggCountStar, Arg: -1, Name: "n"}}, AggSingle, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DrainToPage(agg)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != len(rows) {
		for i := 0; i < out.NumRows(); i++ {
			t.Logf("group %d: %v", i, out.Row(i))
		}
		t.Fatalf("got %d groups, want %d (adversarial keys collided)", out.NumRows(), len(rows))
	}
	for i := 0; i < out.NumRows(); i++ {
		if n := out.Row(i)[2].I; n != 2 {
			t.Errorf("group %d count = %d, want 2", i, n)
		}
	}
}

// TestHashAggregateNaNKeys: all NaN payloads must land in one group (the
// engine's total float order treats NaN == NaN), even though NaN has many
// bit patterns and never equals itself under IEEE comparison.
func TestHashAggregateNaNKeys(t *testing.T) {
	s := types.NewSchema(types.Column{Name: "f", Type: types.Float64})
	p := column.NewPage(s)
	quietNaN := math.NaN()
	weirdNaN := math.Float64frombits(math.Float64bits(quietNaN) ^ 1) // distinct payload bits
	if !math.IsNaN(weirdNaN) {
		t.Fatal("test bug: weirdNaN is not NaN")
	}
	p.AppendRow(types.FloatValue(quietNaN))
	p.AppendRow(types.FloatValue(weirdNaN))
	p.AppendRow(types.FloatValue(1.0))

	agg, err := NewHashAggregate(NewPageSource(s, []*column.Page{p}), []int{0},
		[]substrait.Measure{{Func: substrait.AggCountStar, Arg: -1, Name: "n"}}, AggSingle, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DrainToPage(agg)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 2 {
		t.Fatalf("got %d groups, want 2 (NaN bit patterns split the NaN group)", out.NumRows())
	}
	counts := map[bool]int64{} // isNaN -> count
	for i := 0; i < out.NumRows(); i++ {
		row := out.Row(i)
		counts[math.IsNaN(row[0].F)] = row[1].I
	}
	if counts[true] != 2 || counts[false] != 1 {
		t.Errorf("counts = %v, want NaN:2 other:1", counts)
	}
}

// TestFilterAllPassZeroCopy: when every row survives, Filter must return
// the input page itself, not a copy.
func TestFilterAllPassZeroCopy(t *testing.T) {
	page := makePage([][3]interface{}{{1, 1.0, "a"}, {2, 2.0, "b"}})
	pred, _ := expr.NewCompare(expr.Gt, expr.Col(0, "id", types.Int64), expr.Lit(types.IntValue(0)))
	f, err := NewFilter(sourceOf(page), pred, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := f.Next()
	if err != nil {
		t.Fatal(err)
	}
	if out != page {
		t.Error("all-pass filter must return the input page unchanged")
	}
}

// TestChainedFiltersSelection: stacked Filters compose through the
// SelSource path (the middle page is never materialized) and must produce
// the same rows as the equivalent single AND predicate.
func TestChainedFiltersSelection(t *testing.T) {
	page := makePage([][3]interface{}{
		{1, 0.5, "a"}, {2, 1.5, "b"}, {3, 2.5, "c"}, {4, 3.5, "d"}, {nil, 9.5, "e"},
	})
	idGt1, _ := expr.NewCompare(expr.Gt, expr.Col(0, "id", types.Int64), expr.Lit(types.IntValue(1)))
	vLt3, _ := expr.NewCompare(expr.Lt, expr.Col(1, "v", types.Float64), expr.Lit(types.FloatValue(3)))

	f1, err := NewFilter(sourceOf(page), idGt1, nil)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := NewFilter(f1, vLt3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if f2.selIn == nil {
		t.Fatal("chained filter did not detect its SelSource input")
	}
	out, err := DrainToPage(f2)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 2 || out.Row(0)[0].I != 2 || out.Row(1)[0].I != 3 {
		t.Fatalf("chained filters produced %d rows: %v", out.NumRows(), out)
	}

	// Project over the chained filters evaluates only surviving rows.
	proj, err := NewProject(f2restart(t, page), []expr.Expr{expr.Col(1, "v", types.Float64)}, []string{"v"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	pout, err := DrainToPage(proj)
	if err != nil {
		t.Fatal(err)
	}
	if pout.NumRows() != 2 || pout.Row(0)[0].F != 1.5 || pout.Row(1)[0].F != 2.5 {
		t.Fatalf("project over selection = %v", pout)
	}
}

// f2restart rebuilds the two-filter chain (operators are single-use).
func f2restart(t *testing.T, page *column.Page) Operator {
	t.Helper()
	idGt1, _ := expr.NewCompare(expr.Gt, expr.Col(0, "id", types.Int64), expr.Lit(types.IntValue(1)))
	vLt3, _ := expr.NewCompare(expr.Lt, expr.Col(1, "v", types.Float64), expr.Lit(types.FloatValue(3)))
	f1, err := NewFilter(sourceOf(page), idGt1, nil)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := NewFilter(f1, vLt3, nil)
	if err != nil {
		t.Fatal(err)
	}
	return f2
}

// TestSortNaNAndNullOrder pins the vectorized sort-key comparison on the
// engine's total order: NULLs first, NaN after every real number.
func TestSortNaNAndNullOrder(t *testing.T) {
	page := makePage([][3]interface{}{
		{1, math.NaN(), "a"}, {2, 2.0, "b"}, {3, nil, "c"}, {4, 1.0, "d"},
	})
	srt, err := NewSort(sourceOf(page), []SortSpec{{Column: 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DrainToPage(srt)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]int64, out.NumRows())
	for i := range ids {
		ids[i] = out.Row(i)[0].I
	}
	// NULL (id 3), 1.0 (id 4), 2.0 (id 2), NaN (id 1).
	want := []int64{3, 4, 2, 1}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("sort order = %v, want %v", ids, want)
		}
	}
}
