package exec

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"prestocs/internal/column"
	"prestocs/internal/substrait"
	"prestocs/internal/types"
)

// AggMode selects the aggregation phase.
type AggMode uint8

const (
	// AggSingle consumes raw rows and emits final values.
	AggSingle AggMode = iota
	// AggPartial consumes raw rows and emits mergeable partial states
	// (one column per measure). This is what OCS storage nodes and
	// engine workers run.
	AggPartial
	// AggFinal consumes partial states (keys + one state column per
	// measure, in measure order) and emits final values. This is the
	// residual operator the engine keeps after aggregation pushdown.
	AggFinal
)

// HashAggregate groups rows by key columns and computes measures.
// Group keys appear first in the output schema, then one column per
// measure. Output rows are ordered by first appearance of the group,
// making results deterministic for tests.
//
// The implementation is columnar: group keys are encoded with a
// collision-proof length-prefixed binary layout (fixed 8-byte words for
// numeric kinds, uvarint-length-prefixed bytes for strings) and mapped to
// dense group ids; measures accumulate into flat per-group arrays with
// the per-measure function/type dispatch hoisted out of the row loop.
type HashAggregate struct {
	input    Operator
	keys     []int
	measures []substrait.Measure
	mode     AggMode
	schema   *types.Schema
	meter    *Meter
	done     bool
}

// NewHashAggregate validates measures against the input schema.
func NewHashAggregate(input Operator, keys []int, measures []substrait.Measure, mode AggMode, meter *Meter) (*HashAggregate, error) {
	in := input.Schema()
	var cols []types.Column
	for _, k := range keys {
		if k < 0 || k >= in.Len() {
			return nil, fmt.Errorf("exec: group key ordinal %d out of range", k)
		}
		cols = append(cols, in.Columns[k])
	}
	for i, m := range measures {
		if !substrait.ValidAggFunc(m.Func) {
			return nil, fmt.Errorf("exec: unknown aggregate %q", m.Func)
		}
		inKind := types.Int64
		if mode == AggFinal {
			// Partial-state column: keys first, then measure i.
			stateCol := len(keys) + i
			if stateCol >= in.Len() {
				return nil, fmt.Errorf("exec: final aggregate input missing state column %d", stateCol)
			}
			inKind = in.Columns[stateCol].Type
		} else if m.Func != substrait.AggCountStar {
			if m.Arg < 0 || m.Arg >= in.Len() {
				return nil, fmt.Errorf("exec: measure arg ordinal %d out of range", m.Arg)
			}
			inKind = in.Columns[m.Arg].Type
		}
		outKind, err := m.Func.ResultKind(inKind)
		if err != nil {
			return nil, err
		}
		if mode == AggFinal && (m.Func == substrait.AggCount || m.Func == substrait.AggCountStar) {
			outKind = types.Int64
		}
		cols = append(cols, types.Column{Name: m.Name, Type: outKind})
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("exec: aggregate with no keys or measures")
	}
	return &HashAggregate{
		input:    input,
		keys:     keys,
		measures: measures,
		mode:     mode,
		schema:   types.NewSchema(cols...),
		meter:    meter,
	}, nil
}

// Schema implements Operator.
func (a *HashAggregate) Schema() *types.Schema { return a.schema }

// accumulator holds one measure's per-group state as flat arrays indexed
// by dense group id.
type accumulator struct {
	fn   substrait.AggFunc // resolved for the mode (merge fn when final)
	col  int               // input ordinal (state column when final)
	kind types.Kind        // input column kind (min/max reconstruction)

	counts []int64
	isums  []int64
	fsums  []float64

	// min/max state: mmSet marks groups with a non-NULL value; exactly
	// one typed slice is populated, selected by kind.
	mmSet     []bool
	mmInts    []int64
	mmFloats  []float64
	mmStrings []string
	mmBools   []bool
}

// grow extends the per-group arrays to n groups.
func (acc *accumulator) grow(n int) {
	for len(acc.counts) < n {
		acc.counts = append(acc.counts, 0)
		acc.isums = append(acc.isums, 0)
		acc.fsums = append(acc.fsums, 0)
		acc.mmSet = append(acc.mmSet, false)
		acc.mmInts = append(acc.mmInts, 0)
		acc.mmFloats = append(acc.mmFloats, 0)
		acc.mmStrings = append(acc.mmStrings, "")
		acc.mmBools = append(acc.mmBools, false)
	}
}

// accumulate folds one page into the state. groupIDs[i] is row i's dense
// group id. The function/kind dispatch happens once per page, not per
// row; the inner loops touch raw column buffers only.
func (acc *accumulator) accumulate(page *column.Page, groupIDs []int) error {
	switch acc.fn {
	case substrait.AggCountStar:
		for _, g := range groupIDs {
			acc.counts[g]++
		}
	case substrait.AggCount:
		nulls := page.Vectors[acc.col].Nulls
		if nulls == nil {
			for _, g := range groupIDs {
				acc.counts[g]++
			}
			return nil
		}
		for i, g := range groupIDs {
			if !nulls[i] {
				acc.counts[g]++
			}
		}
	case substrait.AggSum:
		vec := page.Vectors[acc.col]
		nulls := vec.Nulls
		switch vec.Kind {
		case types.Int64:
			for i, g := range groupIDs {
				if nulls != nil && nulls[i] {
					continue
				}
				acc.isums[g] += vec.Ints[i]
				acc.counts[g]++
			}
		case types.Float64:
			for i, g := range groupIDs {
				if nulls != nil && nulls[i] {
					continue
				}
				acc.fsums[g] += vec.Floats[i]
				acc.counts[g]++
			}
		case types.Date:
			// Date sums accumulate as day counts in the float state,
			// matching the row-wise AsFloat path.
			for i, g := range groupIDs {
				if nulls != nil && nulls[i] {
					continue
				}
				acc.fsums[g] += float64(vec.Ints[i])
				acc.counts[g]++
			}
		default:
			return fmt.Errorf("exec: SUM over %s", vec.Kind)
		}
	case substrait.AggMin, substrait.AggMax:
		acc.minMax(page, groupIDs, acc.fn == substrait.AggMin)
	default:
		return fmt.Errorf("exec: unsupported aggregate %q", acc.fn)
	}
	return nil
}

func (acc *accumulator) minMax(page *column.Page, groupIDs []int, isMin bool) {
	vec := page.Vectors[acc.col]
	nulls := vec.Nulls
	// Ties keep the incumbent (strict comparison), matching types.Compare
	// semantics of the row-wise path.
	switch vec.Kind {
	case types.Int64, types.Date:
		for i, g := range groupIDs {
			if nulls != nil && nulls[i] {
				continue
			}
			v := vec.Ints[i]
			if !acc.mmSet[g] || (isMin && v < acc.mmInts[g]) || (!isMin && v > acc.mmInts[g]) {
				acc.mmInts[g] = v
				acc.mmSet[g] = true
			}
		}
	case types.Float64:
		for i, g := range groupIDs {
			if nulls != nil && nulls[i] {
				continue
			}
			v := vec.Floats[i]
			if !acc.mmSet[g] {
				acc.mmFloats[g] = v
				acc.mmSet[g] = true
				continue
			}
			c := types.CompareFloat(v, acc.mmFloats[g])
			if (isMin && c < 0) || (!isMin && c > 0) {
				acc.mmFloats[g] = v
			}
		}
	case types.String:
		for i, g := range groupIDs {
			if nulls != nil && nulls[i] {
				continue
			}
			v := vec.Strings[i]
			if !acc.mmSet[g] || (isMin && v < acc.mmStrings[g]) || (!isMin && v > acc.mmStrings[g]) {
				acc.mmStrings[g] = v
				acc.mmSet[g] = true
			}
		}
	case types.Bool:
		for i, g := range groupIDs {
			if nulls != nil && nulls[i] {
				continue
			}
			v := vec.Bools[i]
			if !acc.mmSet[g] || (isMin && !v && acc.mmBools[g]) || (!isMin && v && !acc.mmBools[g]) {
				acc.mmBools[g] = v
				acc.mmSet[g] = true
			}
		}
	}
}

// encodeGroupKey appends row's key values to buf with a collision-proof
// binary layout: a null byte per key (0 = NULL, payload omitted), then
// fixed 8-byte words for numeric kinds, one byte for booleans, and a
// uvarint length prefix plus raw bytes for strings. Delimiter-free and
// injective for a fixed key schema — string values containing "\x00" or
// "\x01" cannot collide (the previous delimiter-joined String() encoding
// could).
func encodeGroupKey(buf []byte, page *column.Page, keys []int, row int) []byte {
	for _, k := range keys {
		vec := page.Vectors[k]
		if vec.Nulls != nil && vec.Nulls[row] {
			buf = append(buf, 0)
			continue
		}
		buf = append(buf, 1)
		switch vec.Kind {
		case types.Int64, types.Date:
			buf = binary.BigEndian.AppendUint64(buf, uint64(vec.Ints[row]))
		case types.Float64:
			f := vec.Floats[row]
			if math.IsNaN(f) {
				// Canonicalize NaN payloads so every NaN lands in one
				// group, like the formatted-key encoding did.
				f = math.NaN()
			}
			buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(f))
		case types.String:
			s := vec.Strings[row]
			buf = binary.AppendUvarint(buf, uint64(len(s)))
			buf = append(buf, s...)
		case types.Bool:
			if vec.Bools[row] {
				buf = append(buf, 1)
			} else {
				buf = append(buf, 0)
			}
		}
	}
	return buf
}

// Next implements Operator: it drains the input on first call and emits
// the grouped result as one page.
func (a *HashAggregate) Next() (*column.Page, error) {
	if a.done {
		return nil, nil
	}
	a.done = true

	in := a.input.Schema()
	ids := make(map[string]int)
	keyVecs := make([]*column.Vector, len(a.keys))
	for ki, k := range a.keys {
		keyVecs[ki] = column.NewVector(in.Columns[k].Type)
	}
	accs := make([]*accumulator, len(a.measures))
	for mi, m := range a.measures {
		acc := &accumulator{fn: m.Func, col: m.Arg}
		if a.mode == AggFinal {
			acc.fn = mergeFunc(m.Func)
			acc.col = len(a.keys) + mi
		}
		if acc.col >= 0 && acc.col < in.Len() {
			acc.kind = in.Columns[acc.col].Type
		}
		accs[mi] = acc
	}

	var keyBuf []byte
	var groupIDs []int
	numGroups := 0
	for {
		page, err := a.input.Next()
		if err != nil {
			return nil, err
		}
		if page == nil {
			break
		}
		n := page.NumRows()
		a.meter.charge(n, float64(len(a.keys))+2*float64(len(a.measures)))
		if cap(groupIDs) < n {
			groupIDs = make([]int, n)
		}
		groupIDs = groupIDs[:n]
		if len(a.keys) == 0 {
			// Global aggregation: one implicit group.
			if n > 0 && numGroups == 0 {
				numGroups = 1
			}
			for i := range groupIDs {
				groupIDs[i] = 0
			}
		} else {
			for i := 0; i < n; i++ {
				keyBuf = encodeGroupKey(keyBuf[:0], page, a.keys, i)
				id, ok := ids[string(keyBuf)]
				if !ok {
					id = numGroups
					numGroups++
					ids[string(keyBuf)] = id
					for ki, k := range a.keys {
						keyVecs[ki].Append(page.Vectors[k].Value(i))
					}
				}
				groupIDs[i] = id
			}
		}
		for _, acc := range accs {
			acc.grow(numGroups)
			if err := acc.accumulate(page, groupIDs); err != nil {
				return nil, err
			}
		}
	}

	// SQL semantics: a global aggregation (no GROUP BY) over empty input
	// yields one row — count 0, other aggregates NULL. Partial mode emits
	// nothing instead; the final stage synthesizes the default row.
	if numGroups == 0 && len(a.keys) == 0 && a.mode != AggPartial {
		out := column.NewPage(a.schema)
		row := make([]types.Value, 0, a.schema.Len())
		for mi, m := range a.measures {
			switch m.Func {
			case substrait.AggCount, substrait.AggCountStar:
				row = append(row, types.IntValue(0))
			default:
				row = append(row, types.NullValue(a.schema.Columns[mi].Type))
			}
		}
		out.AppendRow(row...)
		return out, nil
	}

	out := column.NewPage(a.schema)
	for ki := range a.keys {
		out.Vectors[ki] = keyVecs[ki]
	}
	for mi, m := range a.measures {
		outKind := a.schema.Columns[len(a.keys)+mi].Type
		vec := column.NewVector(outKind)
		vec.Reserve(numGroups)
		for g := 0; g < numGroups; g++ {
			vec.Append(a.finalValue(accs[mi], m, outKind, g))
		}
		out.Vectors[len(a.keys)+mi] = vec
	}
	return out, nil
}

// mergeFunc maps an original aggregate to the function that merges its
// partial states: counts merge by summation, sums by summation, min/max
// by min/max.
func mergeFunc(f substrait.AggFunc) substrait.AggFunc {
	switch f {
	case substrait.AggCount, substrait.AggCountStar:
		return substrait.AggSum
	default:
		return f
	}
}

func (a *HashAggregate) finalValue(acc *accumulator, m substrait.Measure, outKind types.Kind, g int) types.Value {
	switch acc.fn {
	case substrait.AggCount, substrait.AggCountStar:
		return types.IntValue(acc.counts[g])
	case substrait.AggSum:
		if acc.counts[g] == 0 {
			// SQL: SUM over empty group is NULL; COUNT merges emit 0.
			if a.mode == AggFinal && (m.Func == substrait.AggCount || m.Func == substrait.AggCountStar) {
				return types.IntValue(0)
			}
			return types.NullValue(outKind)
		}
		if outKind == types.Int64 {
			return types.IntValue(acc.isums[g])
		}
		return types.FloatValue(acc.fsums[g] + float64(acc.isums[g]))
	case substrait.AggMin, substrait.AggMax:
		if !acc.mmSet[g] {
			return types.NullValue(outKind)
		}
		switch acc.kind {
		case types.Int64:
			return types.IntValue(acc.mmInts[g])
		case types.Date:
			return types.DateValue(acc.mmInts[g])
		case types.Float64:
			return types.FloatValue(acc.mmFloats[g])
		case types.String:
			return types.StringValue(acc.mmStrings[g])
		case types.Bool:
			return types.BoolValue(acc.mmBools[g])
		}
	}
	return types.NullValue(outKind)
}

// SortSpec orders rows by column ordinal.
type SortSpec struct {
	Column     int
	Descending bool
}

// sortKeyCols is the typed view of a page's sort-key columns, extracted
// once so each comparison reads raw buffers instead of boxing two
// types.Values per key (as the old compareRows did).
type sortKeyCols struct {
	cols []sortKeyCol
}

type sortKeyCol struct {
	desc  bool
	kind  types.Kind
	nulls []bool
	ints  []int64
	flts  []float64
	strs  []string
	bools []bool
}

func newSortKeyCols(p *column.Page, keys []SortSpec) *sortKeyCols {
	s := &sortKeyCols{cols: make([]sortKeyCol, len(keys))}
	for i, k := range keys {
		v := p.Vectors[k.Column]
		s.cols[i] = sortKeyCol{
			desc:  k.Descending,
			kind:  v.Kind,
			nulls: v.Nulls,
			ints:  v.Ints,
			flts:  v.Floats,
			strs:  v.Strings,
			bools: v.Bools,
		}
	}
	return s
}

// compare orders rows a and b under the key list: NULLS FIRST, floats by
// the engine's NaN-total order — identical to types.Compare.
func (s *sortKeyCols) compare(a, b int) int {
	for i := range s.cols {
		c := s.cols[i].cmp(a, b)
		if c != 0 {
			if s.cols[i].desc {
				return -c
			}
			return c
		}
	}
	return 0
}

func (c *sortKeyCol) cmp(a, b int) int {
	if c.nulls != nil {
		aN, bN := c.nulls[a], c.nulls[b]
		switch {
		case aN && bN:
			return 0
		case aN:
			return -1
		case bN:
			return 1
		}
	}
	switch c.kind {
	case types.Int64, types.Date:
		switch {
		case c.ints[a] < c.ints[b]:
			return -1
		case c.ints[a] > c.ints[b]:
			return 1
		}
		return 0
	case types.Float64:
		return types.CompareFloat(c.flts[a], c.flts[b])
	case types.String:
		switch {
		case c.strs[a] < c.strs[b]:
			return -1
		case c.strs[a] > c.strs[b]:
			return 1
		}
		return 0
	case types.Bool:
		switch {
		case !c.bools[a] && c.bools[b]:
			return -1
		case c.bools[a] && !c.bools[b]:
			return 1
		}
		return 0
	}
	return 0
}

// Sort fully sorts its input by the given keys (stable).
type Sort struct {
	input Operator
	keys  []SortSpec
	meter *Meter
	done  bool
}

// NewSort validates sort keys.
func NewSort(input Operator, keys []SortSpec, meter *Meter) (*Sort, error) {
	in := input.Schema()
	if len(keys) == 0 {
		return nil, fmt.Errorf("exec: sort with no keys")
	}
	for _, k := range keys {
		if k.Column < 0 || k.Column >= in.Len() {
			return nil, fmt.Errorf("exec: sort key ordinal %d out of range", k.Column)
		}
	}
	return &Sort{input: input, keys: keys, meter: meter}, nil
}

// Schema implements Operator.
func (s *Sort) Schema() *types.Schema { return s.input.Schema() }

// Next implements Operator.
func (s *Sort) Next() (*column.Page, error) {
	if s.done {
		return nil, nil
	}
	s.done = true
	all, err := DrainToPage(s.input)
	if err != nil {
		return nil, err
	}
	n := all.NumRows()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	kc := newSortKeyCols(all, s.keys)
	sort.SliceStable(idx, func(a, b int) bool {
		return kc.compare(idx[a], idx[b]) < 0
	})
	// n log n comparisons, each costing ~#keys units.
	s.meter.charge(n, log2ish(n)*float64(len(s.keys)))
	return all.Gather(idx), nil
}

func log2ish(n int) float64 {
	bits := 0
	for v := n; v > 1; v >>= 1 {
		bits++
	}
	return float64(bits + 1)
}

// TopN keeps the n smallest rows under the sort keys, emitting them in
// sorted order. It bounds memory at n rows regardless of input size.
type TopN struct {
	input Operator
	keys  []SortSpec
	n     int64
	meter *Meter
	done  bool
}

// NewTopN validates the keys and limit.
func NewTopN(input Operator, keys []SortSpec, n int64, meter *Meter) (*TopN, error) {
	if n < 0 {
		return nil, fmt.Errorf("exec: top-N with negative limit %d", n)
	}
	in := input.Schema()
	for _, k := range keys {
		if k.Column < 0 || k.Column >= in.Len() {
			return nil, fmt.Errorf("exec: top-N key ordinal %d out of range", k.Column)
		}
	}
	return &TopN{input: input, keys: keys, n: n, meter: meter}, nil
}

// Schema implements Operator.
func (t *TopN) Schema() *types.Schema { return t.input.Schema() }

// Next implements Operator.
func (t *TopN) Next() (*column.Page, error) {
	if t.done {
		return nil, nil
	}
	t.done = true
	if t.n == 0 {
		return column.NewPage(t.input.Schema()), nil
	}

	// Bounded buffer: accumulate up to 2n rows, then cut back to n.
	buf := column.NewPage(t.input.Schema())
	cut := func() {
		n := buf.NumRows()
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		kc := newSortKeyCols(buf, t.keys)
		sort.SliceStable(idx, func(a, b int) bool {
			return kc.compare(idx[a], idx[b]) < 0
		})
		if int64(len(idx)) > t.n {
			idx = idx[:t.n]
		}
		buf = buf.Gather(idx)
	}
	for {
		page, err := t.input.Next()
		if err != nil {
			return nil, err
		}
		if page == nil {
			break
		}
		t.meter.charge(page.NumRows(), log2ish(int(t.n))*float64(len(t.keys)))
		buf.AppendPage(page)
		if int64(buf.NumRows()) >= 2*t.n {
			cut()
		}
	}
	cut()
	return buf, nil
}
