package exec

import (
	"fmt"
	"sort"

	"prestocs/internal/column"
	"prestocs/internal/substrait"
	"prestocs/internal/types"
)

// AggMode selects the aggregation phase.
type AggMode uint8

const (
	// AggSingle consumes raw rows and emits final values.
	AggSingle AggMode = iota
	// AggPartial consumes raw rows and emits mergeable partial states
	// (one column per measure). This is what OCS storage nodes and
	// engine workers run.
	AggPartial
	// AggFinal consumes partial states (keys + one state column per
	// measure, in measure order) and emits final values. This is the
	// residual operator the engine keeps after aggregation pushdown.
	AggFinal
)

// HashAggregate groups rows by key columns and computes measures.
// Group keys appear first in the output schema, then one column per
// measure. Output rows are ordered by first appearance of the group,
// making results deterministic for tests.
type HashAggregate struct {
	input    Operator
	keys     []int
	measures []substrait.Measure
	mode     AggMode
	schema   *types.Schema
	meter    *Meter
	done     bool
}

type aggState struct {
	keyVals []types.Value
	sums    []float64 // sum state (float accumulate; int measures re-cast)
	isums   []int64   // integer sum state to keep BIGINT sums exact
	counts  []int64
	mins    []types.Value
	maxs    []types.Value
}

// NewHashAggregate validates measures against the input schema.
func NewHashAggregate(input Operator, keys []int, measures []substrait.Measure, mode AggMode, meter *Meter) (*HashAggregate, error) {
	in := input.Schema()
	var cols []types.Column
	for _, k := range keys {
		if k < 0 || k >= in.Len() {
			return nil, fmt.Errorf("exec: group key ordinal %d out of range", k)
		}
		cols = append(cols, in.Columns[k])
	}
	for i, m := range measures {
		if !substrait.ValidAggFunc(m.Func) {
			return nil, fmt.Errorf("exec: unknown aggregate %q", m.Func)
		}
		inKind := types.Int64
		if mode == AggFinal {
			// Partial-state column: keys first, then measure i.
			stateCol := len(keys) + i
			if stateCol >= in.Len() {
				return nil, fmt.Errorf("exec: final aggregate input missing state column %d", stateCol)
			}
			inKind = in.Columns[stateCol].Type
		} else if m.Func != substrait.AggCountStar {
			if m.Arg < 0 || m.Arg >= in.Len() {
				return nil, fmt.Errorf("exec: measure arg ordinal %d out of range", m.Arg)
			}
			inKind = in.Columns[m.Arg].Type
		}
		outKind, err := m.Func.ResultKind(inKind)
		if err != nil {
			return nil, err
		}
		if mode == AggFinal && (m.Func == substrait.AggCount || m.Func == substrait.AggCountStar) {
			outKind = types.Int64
		}
		cols = append(cols, types.Column{Name: m.Name, Type: outKind})
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("exec: aggregate with no keys or measures")
	}
	return &HashAggregate{
		input:    input,
		keys:     keys,
		measures: measures,
		mode:     mode,
		schema:   types.NewSchema(cols...),
		meter:    meter,
	}, nil
}

// Schema implements Operator.
func (a *HashAggregate) Schema() *types.Schema { return a.schema }

// Next implements Operator: it drains the input on first call and emits
// the grouped result as one page.
func (a *HashAggregate) Next() (*column.Page, error) {
	if a.done {
		return nil, nil
	}
	a.done = true

	groups := map[string]*aggState{}
	var order []string

	for {
		page, err := a.input.Next()
		if err != nil {
			return nil, err
		}
		if page == nil {
			break
		}
		a.meter.charge(page.NumRows(), float64(len(a.keys))+2*float64(len(a.measures)))
		for i := 0; i < page.NumRows(); i++ {
			key, keyVals := a.groupKey(page, i)
			st, ok := groups[key]
			if !ok {
				st = &aggState{
					keyVals: keyVals,
					sums:    make([]float64, len(a.measures)),
					isums:   make([]int64, len(a.measures)),
					counts:  make([]int64, len(a.measures)),
					mins:    make([]types.Value, len(a.measures)),
					maxs:    make([]types.Value, len(a.measures)),
				}
				for mi := range a.measures {
					st.mins[mi] = types.NullValue(types.Unknown)
					st.maxs[mi] = types.NullValue(types.Unknown)
				}
				groups[key] = st
				order = append(order, key)
			}
			if err := a.accumulate(st, page, i); err != nil {
				return nil, err
			}
		}
	}

	// SQL semantics: a global aggregation (no GROUP BY) over empty input
	// yields one row — count 0, other aggregates NULL. Partial mode emits
	// nothing instead; the final stage synthesizes the default row.
	if len(order) == 0 && len(a.keys) == 0 && a.mode != AggPartial {
		out := column.NewPage(a.schema)
		row := make([]types.Value, 0, a.schema.Len())
		for mi, m := range a.measures {
			switch m.Func {
			case substrait.AggCount, substrait.AggCountStar:
				row = append(row, types.IntValue(0))
			default:
				row = append(row, types.NullValue(a.schema.Columns[mi].Type))
			}
		}
		out.AppendRow(row...)
		return out, nil
	}

	out := column.NewPage(a.schema)
	for _, key := range order {
		st := groups[key]
		row := make([]types.Value, 0, a.schema.Len())
		row = append(row, st.keyVals...)
		for mi, m := range a.measures {
			row = append(row, a.finalValue(st, mi, m))
		}
		out.AppendRow(row...)
	}
	return out, nil
}

// groupKey builds a canonical string key plus the key values for row i.
func (a *HashAggregate) groupKey(page *column.Page, i int) (string, []types.Value) {
	vals := make([]types.Value, len(a.keys))
	key := ""
	for ki, k := range a.keys {
		v := page.Vectors[k].Value(i)
		vals[ki] = v
		key += "\x00" + v.Kind.String() + ":" + v.String()
		if v.Null {
			key += "\x01null"
		}
	}
	return key, vals
}

func (a *HashAggregate) accumulate(st *aggState, page *column.Page, row int) error {
	for mi, m := range a.measures {
		var v types.Value
		switch {
		case a.mode == AggFinal:
			v = page.Vectors[len(a.keys)+mi].Value(row)
		case m.Func == substrait.AggCountStar:
			// count(*) consumes no input column.
		default:
			v = page.Vectors[m.Arg].Value(row)
		}

		fn := m.Func
		if a.mode == AggFinal {
			fn = mergeFunc(fn)
		}
		switch fn {
		case substrait.AggCountStar:
			st.counts[mi]++
		case substrait.AggCount:
			if !v.Null {
				st.counts[mi]++
			}
		case substrait.AggSum:
			if v.Null {
				continue
			}
			st.counts[mi]++
			if v.Kind == types.Int64 {
				st.isums[mi] += v.I
			} else {
				st.sums[mi] += v.AsFloat()
			}
		case substrait.AggMin:
			if v.Null {
				continue
			}
			if st.mins[mi].Null || types.Compare(v, st.mins[mi]) < 0 {
				st.mins[mi] = v
			}
		case substrait.AggMax:
			if v.Null {
				continue
			}
			if st.maxs[mi].Null || types.Compare(v, st.maxs[mi]) > 0 {
				st.maxs[mi] = v
			}
		default:
			return fmt.Errorf("exec: unsupported aggregate %q", fn)
		}
	}
	return nil
}

// mergeFunc maps an original aggregate to the function that merges its
// partial states: counts merge by summation, sums by summation, min/max
// by min/max.
func mergeFunc(f substrait.AggFunc) substrait.AggFunc {
	switch f {
	case substrait.AggCount, substrait.AggCountStar:
		return substrait.AggSum
	default:
		return f
	}
}

func (a *HashAggregate) finalValue(st *aggState, mi int, m substrait.Measure) types.Value {
	outKind := a.schema.Columns[len(a.keys)+mi].Type
	fn := m.Func
	if a.mode == AggFinal {
		fn = mergeFunc(fn)
	}
	switch fn {
	case substrait.AggCount, substrait.AggCountStar:
		return types.IntValue(st.counts[mi])
	case substrait.AggSum:
		if st.counts[mi] == 0 {
			// SQL: SUM over empty group is NULL; COUNT merges emit 0.
			if a.mode == AggFinal && (m.Func == substrait.AggCount || m.Func == substrait.AggCountStar) {
				return types.IntValue(0)
			}
			return types.NullValue(outKind)
		}
		if outKind == types.Int64 {
			return types.IntValue(st.isums[mi])
		}
		return types.FloatValue(st.sums[mi] + float64(st.isums[mi]))
	case substrait.AggMin:
		if st.mins[mi].Null {
			return types.NullValue(outKind)
		}
		return st.mins[mi]
	case substrait.AggMax:
		if st.maxs[mi].Null {
			return types.NullValue(outKind)
		}
		return st.maxs[mi]
	default:
		return types.NullValue(outKind)
	}
}

// SortSpec orders rows by column ordinal.
type SortSpec struct {
	Column     int
	Descending bool
}

// Sort fully sorts its input by the given keys (stable).
type Sort struct {
	input Operator
	keys  []SortSpec
	meter *Meter
	done  bool
}

// NewSort validates sort keys.
func NewSort(input Operator, keys []SortSpec, meter *Meter) (*Sort, error) {
	in := input.Schema()
	if len(keys) == 0 {
		return nil, fmt.Errorf("exec: sort with no keys")
	}
	for _, k := range keys {
		if k.Column < 0 || k.Column >= in.Len() {
			return nil, fmt.Errorf("exec: sort key ordinal %d out of range", k.Column)
		}
	}
	return &Sort{input: input, keys: keys, meter: meter}, nil
}

// Schema implements Operator.
func (s *Sort) Schema() *types.Schema { return s.input.Schema() }

// Next implements Operator.
func (s *Sort) Next() (*column.Page, error) {
	if s.done {
		return nil, nil
	}
	s.done = true
	all, err := DrainToPage(s.input)
	if err != nil {
		return nil, err
	}
	n := all.NumRows()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return compareRows(all, idx[a], idx[b], s.keys) < 0
	})
	// n log n comparisons, each costing ~#keys units.
	s.meter.charge(n, log2ish(n)*float64(len(s.keys)))
	return all.Gather(idx), nil
}

func log2ish(n int) float64 {
	bits := 0
	for v := n; v > 1; v >>= 1 {
		bits++
	}
	return float64(bits + 1)
}

func compareRows(p *column.Page, a, b int, keys []SortSpec) int {
	for _, k := range keys {
		c := types.Compare(p.Vectors[k.Column].Value(a), p.Vectors[k.Column].Value(b))
		if c != 0 {
			if k.Descending {
				return -c
			}
			return c
		}
	}
	return 0
}

// TopN keeps the n smallest rows under the sort keys, emitting them in
// sorted order. It bounds memory at n rows regardless of input size.
type TopN struct {
	input Operator
	keys  []SortSpec
	n     int64
	meter *Meter
	done  bool
}

// NewTopN validates the keys and limit.
func NewTopN(input Operator, keys []SortSpec, n int64, meter *Meter) (*TopN, error) {
	if n < 0 {
		return nil, fmt.Errorf("exec: top-N with negative limit %d", n)
	}
	in := input.Schema()
	for _, k := range keys {
		if k.Column < 0 || k.Column >= in.Len() {
			return nil, fmt.Errorf("exec: top-N key ordinal %d out of range", k.Column)
		}
	}
	return &TopN{input: input, keys: keys, n: n, meter: meter}, nil
}

// Schema implements Operator.
func (t *TopN) Schema() *types.Schema { return t.input.Schema() }

// Next implements Operator.
func (t *TopN) Next() (*column.Page, error) {
	if t.done {
		return nil, nil
	}
	t.done = true
	if t.n == 0 {
		return column.NewPage(t.input.Schema()), nil
	}

	// Bounded buffer: accumulate up to 2n rows, then cut back to n.
	buf := column.NewPage(t.input.Schema())
	cut := func() {
		n := buf.NumRows()
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool {
			return compareRows(buf, idx[a], idx[b], t.keys) < 0
		})
		if int64(len(idx)) > t.n {
			idx = idx[:t.n]
		}
		buf = buf.Gather(idx)
	}
	for {
		page, err := t.input.Next()
		if err != nil {
			return nil, err
		}
		if page == nil {
			break
		}
		t.meter.charge(page.NumRows(), log2ish(int(t.n))*float64(len(t.keys)))
		buf.AppendPage(page)
		if int64(buf.NumRows()) >= 2*t.n {
			cut()
		}
	}
	cut()
	return buf, nil
}
