// Package exec implements the vectorized operator library shared by the
// compute-side query engine (internal/engine) and the OCS embedded SQL
// engine (internal/ocsserver): scan sources, filter, project, hash
// aggregation (single/partial/final), sort, top-N and limit.
//
// Operators form pull-based pipelines: Next returns the next page or nil
// when exhausted. Every operator meters the rows it processes and the
// abstract CPU units it spends into a shared Meter, which the cost model
// later prices using the hardware profile of whichever node ran the
// pipeline (this is how the paper's "weak storage CPU" effect emerges).
package exec

import (
	"fmt"

	"prestocs/internal/column"
	"prestocs/internal/expr"
	"prestocs/internal/types"
)

// Meter accumulates work done by operators in one pipeline.
type Meter struct {
	// Rows is the total rows processed across operators.
	Rows int64
	// Units is abstract CPU work (expression cost × rows, comparison
	// counts for sorts, hash probes for aggregation).
	Units float64
}

// Add merges another meter into this one.
func (m *Meter) Add(o Meter) {
	m.Rows += o.Rows
	m.Units += o.Units
}

func (m *Meter) charge(rows int, unitsPerRow float64) {
	if m == nil {
		return
	}
	m.Rows += int64(rows)
	m.Units += float64(rows) * unitsPerRow
}

// Operator is a pull-based page producer.
type Operator interface {
	// Schema describes the pages produced.
	Schema() *types.Schema
	// Next returns the next page, or nil when the operator is exhausted.
	Next() (*column.Page, error)
}

// PageSource replays a fixed set of pages (used for tests and as the
// bridge from storage readers and deserialized Arrow results).
type PageSource struct {
	schema *types.Schema
	pages  []*column.Page
	pos    int
}

// NewPageSource wraps pages that all share schema.
func NewPageSource(schema *types.Schema, pages []*column.Page) *PageSource {
	return &PageSource{schema: schema, pages: pages}
}

// Schema implements Operator.
func (s *PageSource) Schema() *types.Schema { return s.schema }

// Next implements Operator.
func (s *PageSource) Next() (*column.Page, error) {
	if s.pos >= len(s.pages) {
		return nil, nil
	}
	p := s.pages[s.pos]
	s.pos++
	return p, nil
}

// FuncSource pulls pages from a callback until it returns nil.
type FuncSource struct {
	schema *types.Schema
	fn     func() (*column.Page, error)
}

// NewFuncSource wraps a pull callback.
func NewFuncSource(schema *types.Schema, fn func() (*column.Page, error)) *FuncSource {
	return &FuncSource{schema: schema, fn: fn}
}

// Schema implements Operator.
func (s *FuncSource) Schema() *types.Schema { return s.schema }

// Next implements Operator.
func (s *FuncSource) Next() (*column.Page, error) { return s.fn() }

// SelSource is an Operator that can hand pages over with a pending
// selection vector instead of materializing the surviving rows. Filter
// implements it; selection-aware consumers (a chained Filter, Project)
// detect it and defer materialization to the operator boundary that
// actually needs dense pages (aggregation, sort, the network).
type SelSource interface {
	Operator
	// NextSel returns the next page plus the selection of live rows.
	// A nil selection means every row is live. Pages with an empty
	// selection are never returned; exhaustion is (nil, nil, nil).
	NextSel() (*column.Page, []int, error)
}

// Filter drops rows not satisfying the predicate. It evaluates the
// predicate through the vectorized selection path (expr.EvalSelection):
// typed kernels over whole column buffers, with AND/OR short-circuiting
// over surviving rows only.
type Filter struct {
	input Operator
	selIn SelSource // non-nil when the input can defer materialization
	pred  expr.Expr
	meter *Meter
}

// NewFilter validates the predicate against the input schema.
func NewFilter(input Operator, pred expr.Expr, meter *Meter) (*Filter, error) {
	if pred.Type() != types.Bool {
		return nil, fmt.Errorf("exec: filter predicate has type %s", pred.Type())
	}
	selIn, _ := input.(SelSource)
	return &Filter{input: input, selIn: selIn, pred: pred, meter: meter}, nil
}

// Schema implements Operator.
func (f *Filter) Schema() *types.Schema { return f.input.Schema() }

// NextSel implements SelSource: the input page is returned untouched with
// the predicate folded into the selection vector.
func (f *Filter) NextSel() (*column.Page, []int, error) {
	for {
		var page *column.Page
		var sel []int
		var err error
		if f.selIn != nil {
			page, sel, err = f.selIn.NextSel()
		} else {
			page, err = f.input.Next()
		}
		if err != nil || page == nil {
			return nil, nil, err
		}
		out, err := expr.EvalSelectionOver(f.pred, page, sel)
		if err != nil {
			return nil, nil, err
		}
		if sel == nil {
			f.meter.charge(page.NumRows(), f.pred.Cost())
		} else {
			f.meter.charge(len(sel), f.pred.Cost())
		}
		if len(out) == page.NumRows() {
			// Every row survived: report "all live" so downstream
			// evaluation stays zero-copy.
			return page, nil, nil
		}
		if len(out) > 0 {
			return page, out, nil
		}
		// All rows filtered; pull the next page rather than emitting an
		// empty one.
	}
}

// Next implements Operator, materializing the selection (the input page
// is returned unchanged when every row survives).
func (f *Filter) Next() (*column.Page, error) {
	page, sel, err := f.NextSel()
	if err != nil || page == nil {
		return nil, err
	}
	if sel == nil {
		return page, nil
	}
	return page.FilterSel(sel), nil
}

// Project evaluates expressions into a new schema. When the input is a
// SelSource (a Filter), expressions are evaluated only over the surviving
// rows — the filtered page is never materialized.
type Project struct {
	input  Operator
	selIn  SelSource
	exprs  []expr.Expr
	schema *types.Schema
	meter  *Meter
	cost   float64
}

// NewProject validates expressions and names.
func NewProject(input Operator, exprs []expr.Expr, names []string, meter *Meter) (*Project, error) {
	if len(exprs) == 0 {
		return nil, fmt.Errorf("exec: project with no expressions")
	}
	if len(exprs) != len(names) {
		return nil, fmt.Errorf("exec: project has %d exprs, %d names", len(exprs), len(names))
	}
	cols := make([]types.Column, len(exprs))
	var cost float64
	for i, e := range exprs {
		cols[i] = types.Column{Name: names[i], Type: e.Type()}
		cost += e.Cost()
	}
	selIn, _ := input.(SelSource)
	return &Project{
		input:  input,
		selIn:  selIn,
		exprs:  exprs,
		schema: types.NewSchema(cols...),
		meter:  meter,
		cost:   cost,
	}, nil
}

// Schema implements Operator.
func (p *Project) Schema() *types.Schema { return p.schema }

// Next implements Operator.
func (p *Project) Next() (*column.Page, error) {
	var page *column.Page
	var sel []int
	var err error
	if p.selIn != nil {
		page, sel, err = p.selIn.NextSel()
	} else {
		page, err = p.input.Next()
	}
	if err != nil || page == nil {
		return nil, err
	}
	out := &column.Page{Schema: p.schema, Vectors: make([]*column.Vector, len(p.exprs))}
	for i, e := range p.exprs {
		vec, err := expr.EvalOver(e, page, sel)
		if err != nil {
			return nil, err
		}
		out.Vectors[i] = vec
	}
	rows := page.NumRows()
	if sel != nil {
		rows = len(sel)
	}
	p.meter.charge(rows, p.cost)
	return out, nil
}

// Limit stops after n rows.
type Limit struct {
	input     Operator
	remaining int64
}

// NewLimit caps output at n rows.
func NewLimit(input Operator, n int64) *Limit {
	return &Limit{input: input, remaining: n}
}

// Schema implements Operator.
func (l *Limit) Schema() *types.Schema { return l.input.Schema() }

// Next implements Operator.
func (l *Limit) Next() (*column.Page, error) {
	if l.remaining <= 0 {
		return nil, nil
	}
	page, err := l.input.Next()
	if err != nil || page == nil {
		return nil, err
	}
	if int64(page.NumRows()) > l.remaining {
		page = page.Slice(0, int(l.remaining))
	}
	l.remaining -= int64(page.NumRows())
	return page, nil
}

// Drain pulls an operator to exhaustion, returning all pages.
func Drain(op Operator) ([]*column.Page, error) {
	var out []*column.Page
	for {
		p, err := op.Next()
		if err != nil {
			return nil, err
		}
		if p == nil {
			return out, nil
		}
		out = append(out, p)
	}
}

// DrainToPage pulls an operator to exhaustion and concatenates the result
// into a single page (empty page when no rows).
func DrainToPage(op Operator) (*column.Page, error) {
	pages, err := Drain(op)
	if err != nil {
		return nil, err
	}
	out := column.NewPage(op.Schema())
	total := 0
	for _, p := range pages {
		total += p.NumRows()
	}
	out.Reserve(total)
	for _, p := range pages {
		out.AppendPage(p)
	}
	return out, nil
}
