package exec

import (
	"errors"
	"testing"

	"prestocs/internal/column"
	"prestocs/internal/expr"
	"prestocs/internal/substrait"
	"prestocs/internal/types"
)

func numSchema() *types.Schema {
	return types.NewSchema(
		types.Column{Name: "id", Type: types.Int64},
		types.Column{Name: "v", Type: types.Float64},
		types.Column{Name: "g", Type: types.String},
	)
}

func makePage(rows [][3]interface{}) *column.Page {
	p := column.NewPage(numSchema())
	for _, r := range rows {
		var id, v, g types.Value
		if r[0] == nil {
			id = types.NullValue(types.Int64)
		} else {
			id = types.IntValue(int64(r[0].(int)))
		}
		if r[1] == nil {
			v = types.NullValue(types.Float64)
		} else {
			v = types.FloatValue(r[1].(float64))
		}
		if r[2] == nil {
			g = types.NullValue(types.String)
		} else {
			g = types.StringValue(r[2].(string))
		}
		p.AppendRow(id, v, g)
	}
	return p
}

func sourceOf(pages ...*column.Page) *PageSource {
	return NewPageSource(numSchema(), pages)
}

func TestPageSourceAndDrain(t *testing.T) {
	p1 := makePage([][3]interface{}{{1, 1.0, "a"}})
	p2 := makePage([][3]interface{}{{2, 2.0, "b"}, {3, 3.0, "c"}})
	src := sourceOf(p1, p2)
	pages, err := Drain(src)
	if err != nil || len(pages) != 2 {
		t.Fatalf("Drain = %d pages, %v", len(pages), err)
	}
	// Drained source keeps returning nil.
	p, err := src.Next()
	if p != nil || err != nil {
		t.Error("exhausted source misbehaves")
	}
	all, err := DrainToPage(sourceOf(p1, p2))
	if err != nil || all.NumRows() != 3 {
		t.Fatalf("DrainToPage = %d rows, %v", all.NumRows(), err)
	}
}

func TestFuncSource(t *testing.T) {
	calls := 0
	src := NewFuncSource(numSchema(), func() (*column.Page, error) {
		calls++
		if calls <= 2 {
			return makePage([][3]interface{}{{calls, float64(calls), "x"}}), nil
		}
		return nil, nil
	})
	pages, err := Drain(src)
	if err != nil || len(pages) != 2 {
		t.Fatalf("FuncSource drained %d pages, %v", len(pages), err)
	}
	errSrc := NewFuncSource(numSchema(), func() (*column.Page, error) {
		return nil, errors.New("io exploded")
	})
	if _, err := Drain(errSrc); err == nil {
		t.Error("error source must propagate")
	}
}

func TestFilter(t *testing.T) {
	page := makePage([][3]interface{}{
		{1, 0.5, "a"}, {2, 1.5, "b"}, {3, 2.5, "c"}, {nil, 3.5, "d"},
	})
	pred, _ := expr.NewCompare(expr.Gt, expr.Col(0, "id", types.Int64), expr.Lit(types.IntValue(1)))
	var meter Meter
	f, err := NewFilter(sourceOf(page), pred, &meter)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DrainToPage(f)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 2 || out.Row(0)[0].I != 2 || out.Row(1)[0].I != 3 {
		t.Errorf("filter output wrong: %d rows", out.NumRows())
	}
	if meter.Rows != 4 || meter.Units <= 0 {
		t.Errorf("meter = %+v", meter)
	}
	// All-filtered pages are skipped, not emitted empty.
	pred2, _ := expr.NewCompare(expr.Gt, expr.Col(0, "id", types.Int64), expr.Lit(types.IntValue(99)))
	f2, _ := NewFilter(sourceOf(page, page), pred2, nil)
	pages, err := Drain(f2)
	if err != nil || len(pages) != 0 {
		t.Errorf("all-filtered should drain to zero pages, got %d", len(pages))
	}
	if _, err := NewFilter(sourceOf(page), expr.Col(0, "id", types.Int64), nil); err == nil {
		t.Error("non-bool predicate accepted")
	}
}

func TestProject(t *testing.T) {
	page := makePage([][3]interface{}{{10, 1.5, "a"}, {20, 2.5, "b"}})
	double, _ := expr.NewArith(expr.Mul, expr.Col(1, "v", types.Float64), expr.Lit(types.FloatValue(2)))
	var meter Meter
	p, err := NewProject(sourceOf(page), []expr.Expr{expr.Col(0, "id", types.Int64), double}, []string{"id", "v2"}, &meter)
	if err != nil {
		t.Fatal(err)
	}
	if p.Schema().String() != "(id BIGINT, v2 DOUBLE)" {
		t.Errorf("schema = %s", p.Schema())
	}
	out, err := DrainToPage(p)
	if err != nil {
		t.Fatal(err)
	}
	if out.Row(0)[1].F != 3.0 || out.Row(1)[1].F != 5.0 {
		t.Errorf("projected values wrong")
	}
	if meter.Units <= 0 {
		t.Error("project must meter work")
	}
	if _, err := NewProject(sourceOf(page), nil, nil, nil); err == nil {
		t.Error("empty project accepted")
	}
	if _, err := NewProject(sourceOf(page), []expr.Expr{double}, []string{"a", "b"}, nil); err == nil {
		t.Error("name arity mismatch accepted")
	}
}

func TestLimit(t *testing.T) {
	page := makePage([][3]interface{}{{1, 1.0, "a"}, {2, 2.0, "b"}, {3, 3.0, "c"}})
	l := NewLimit(sourceOf(page, page), 4)
	out, err := DrainToPage(l)
	if err != nil || out.NumRows() != 4 {
		t.Errorf("limit output = %d rows, %v", out.NumRows(), err)
	}
	l0 := NewLimit(sourceOf(page), 0)
	out, err = DrainToPage(l0)
	if err != nil || out.NumRows() != 0 {
		t.Errorf("limit 0 = %d rows", out.NumRows())
	}
}

func aggMeasures() []substrait.Measure {
	return []substrait.Measure{
		{Func: substrait.AggSum, Arg: 1, Name: "sum_v"},
		{Func: substrait.AggMin, Arg: 1, Name: "min_v"},
		{Func: substrait.AggMax, Arg: 1, Name: "max_v"},
		{Func: substrait.AggCount, Arg: 1, Name: "cnt_v"},
		{Func: substrait.AggCountStar, Arg: -1, Name: "cnt"},
	}
}

func TestHashAggregateSingle(t *testing.T) {
	page := makePage([][3]interface{}{
		{1, 1.0, "a"}, {2, 2.0, "a"}, {3, nil, "a"},
		{4, 4.0, "b"},
	})
	var meter Meter
	agg, err := NewHashAggregate(sourceOf(page), []int{2}, aggMeasures(), AggSingle, &meter)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DrainToPage(agg)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 2 {
		t.Fatalf("groups = %d", out.NumRows())
	}
	// Group "a": sum=3, min=1, max=2, count(v)=2, count(*)=3.
	rowA := out.Row(0)
	if rowA[0].S != "a" || rowA[1].F != 3.0 || rowA[2].F != 1.0 || rowA[3].F != 2.0 || rowA[4].I != 2 || rowA[5].I != 3 {
		t.Errorf("group a = %v", rowA)
	}
	rowB := out.Row(1)
	if rowB[0].S != "b" || rowB[1].F != 4.0 || rowB[5].I != 1 {
		t.Errorf("group b = %v", rowB)
	}
	if meter.Rows != 4 {
		t.Errorf("meter rows = %d", meter.Rows)
	}
}

func TestHashAggregateNoKeys(t *testing.T) {
	page := makePage([][3]interface{}{{1, 1.0, "a"}, {2, 3.0, "b"}})
	agg, err := NewHashAggregate(sourceOf(page), nil, aggMeasures(), AggSingle, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DrainToPage(agg)
	if err != nil || out.NumRows() != 1 {
		t.Fatalf("global agg = %d rows, %v", out.NumRows(), err)
	}
	if out.Row(0)[0].F != 4.0 {
		t.Errorf("sum = %v", out.Row(0)[0])
	}
}

func TestHashAggregateIntSumExact(t *testing.T) {
	s := types.NewSchema(types.Column{Name: "n", Type: types.Int64})
	p := column.NewPage(s)
	// Values that would lose precision in float64.
	big := int64(1) << 60
	p.AppendRow(types.IntValue(big))
	p.AppendRow(types.IntValue(1))
	agg, err := NewHashAggregate(NewPageSource(s, []*column.Page{p}), nil,
		[]substrait.Measure{{Func: substrait.AggSum, Arg: 0, Name: "s"}}, AggSingle, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, _ := DrainToPage(agg)
	if out.Row(0)[0].I != big+1 {
		t.Errorf("int sum = %v, want %d", out.Row(0)[0], big+1)
	}
}

func TestHashAggregatePartialFinalEqualsSingle(t *testing.T) {
	// Split the input into two "splits", run partial aggregation on each,
	// then final aggregation over the union: must equal single-phase.
	p1 := makePage([][3]interface{}{{1, 1.0, "a"}, {2, 2.0, "b"}, {3, nil, "a"}})
	p2 := makePage([][3]interface{}{{4, 4.0, "a"}, {5, 5.0, "c"}, {6, 6.0, "b"}})
	keys := []int{2}
	measures := aggMeasures()

	single, err := NewHashAggregate(sourceOf(p1, p2), keys, measures, AggSingle, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := DrainToPage(single)
	if err != nil {
		t.Fatal(err)
	}

	partial1, _ := NewHashAggregate(sourceOf(p1), keys, measures, AggPartial, nil)
	partial2, _ := NewHashAggregate(sourceOf(p2), keys, measures, AggPartial, nil)
	pp1, err := DrainToPage(partial1)
	if err != nil {
		t.Fatal(err)
	}
	pp2, err := DrainToPage(partial2)
	if err != nil {
		t.Fatal(err)
	}
	// Final over the concatenated partials; keys are now ordinal 0,
	// states 1..5.
	finalIn := NewPageSource(partial1.Schema(), []*column.Page{pp1, pp2})
	final, err := NewHashAggregate(finalIn, []int{0}, measures, AggFinal, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DrainToPage(final)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != want.NumRows() {
		t.Fatalf("rows: %d vs %d", got.NumRows(), want.NumRows())
	}
	// Compare group-by-group (order may differ between plans).
	wantByKey := map[string][]types.Value{}
	for i := 0; i < want.NumRows(); i++ {
		wantByKey[want.Row(i)[0].S] = want.Row(i)
	}
	for i := 0; i < got.NumRows(); i++ {
		row := got.Row(i)
		w, ok := wantByKey[row[0].S]
		if !ok {
			t.Fatalf("unexpected group %q", row[0].S)
		}
		for c := range row {
			if !types.Equal(row[c], w[c]) {
				t.Errorf("group %q col %d: got %v want %v", row[0].S, c, row[c], w[c])
			}
		}
	}
}

func TestHashAggregateEmptyInput(t *testing.T) {
	agg, err := NewHashAggregate(sourceOf(), []int{2}, aggMeasures(), AggSingle, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DrainToPage(agg)
	if err != nil || out.NumRows() != 0 {
		t.Errorf("empty agg = %d rows", out.NumRows())
	}
	// Global aggregation over empty input yields one row (SQL semantics):
	// count = 0, sum = NULL.
	g, _ := NewHashAggregate(sourceOf(), nil,
		[]substrait.Measure{
			{Func: substrait.AggCountStar, Arg: -1, Name: "c"},
			{Func: substrait.AggSum, Arg: 1, Name: "s"},
		}, AggSingle, nil)
	out, err = DrainToPage(g)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 1 {
		t.Fatalf("empty global agg rows = %d, want 1", out.NumRows())
	}
	if out.Row(0)[0].I != 0 || !out.Row(0)[1].Null {
		t.Errorf("default row = %v", out.Row(0))
	}
	// Partial mode emits nothing for empty input.
	pg, _ := NewHashAggregate(sourceOf(), nil,
		[]substrait.Measure{{Func: substrait.AggCountStar, Arg: -1, Name: "c"}}, AggPartial, nil)
	out, err = DrainToPage(pg)
	if err != nil || out.NumRows() != 0 {
		t.Errorf("partial empty agg rows = %d", out.NumRows())
	}
}

func TestHashAggregateValidation(t *testing.T) {
	page := makePage(nil)
	if _, err := NewHashAggregate(sourceOf(page), []int{9}, nil, AggSingle, nil); err == nil {
		t.Error("bad key accepted")
	}
	if _, err := NewHashAggregate(sourceOf(page), nil, nil, AggSingle, nil); err == nil {
		t.Error("no outputs accepted")
	}
	if _, err := NewHashAggregate(sourceOf(page), nil,
		[]substrait.Measure{{Func: "median", Arg: 0, Name: "m"}}, AggSingle, nil); err == nil {
		t.Error("bad func accepted")
	}
	if _, err := NewHashAggregate(sourceOf(page), nil,
		[]substrait.Measure{{Func: substrait.AggSum, Arg: 2, Name: "s"}}, AggSingle, nil); err == nil {
		t.Error("sum(varchar) accepted")
	}
}

func TestSort(t *testing.T) {
	page := makePage([][3]interface{}{
		{3, 1.0, "c"}, {1, 3.0, "a"}, {2, 2.0, "b"}, {nil, 0.0, "z"},
	})
	var meter Meter
	s, err := NewSort(sourceOf(page), []SortSpec{{Column: 0}}, &meter)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DrainToPage(s)
	if err != nil {
		t.Fatal(err)
	}
	// NULLs sort first.
	if !out.Row(0)[0].Null || out.Row(1)[0].I != 1 || out.Row(3)[0].I != 3 {
		t.Errorf("sort order wrong: %v %v %v %v", out.Row(0)[0], out.Row(1)[0], out.Row(2)[0], out.Row(3)[0])
	}
	// Descending.
	sd, _ := NewSort(sourceOf(page), []SortSpec{{Column: 0, Descending: true}}, nil)
	out, _ = DrainToPage(sd)
	if out.Row(0)[0].I != 3 || !out.Row(3)[0].Null {
		t.Errorf("descending sort wrong")
	}
	if _, err := NewSort(sourceOf(page), nil, nil); err == nil {
		t.Error("sort without keys accepted")
	}
	if _, err := NewSort(sourceOf(page), []SortSpec{{Column: 7}}, nil); err == nil {
		t.Error("bad sort key accepted")
	}
	if meter.Units <= 0 {
		t.Error("sort must meter")
	}
}

func TestSortMultiKeyStable(t *testing.T) {
	page := makePage([][3]interface{}{
		{1, 2.0, "b"}, {1, 1.0, "a"}, {0, 9.0, "z"},
	})
	s, _ := NewSort(sourceOf(page), []SortSpec{{Column: 0}, {Column: 1}}, nil)
	out, _ := DrainToPage(s)
	if out.Row(0)[2].S != "z" || out.Row(1)[2].S != "a" || out.Row(2)[2].S != "b" {
		t.Errorf("multi-key sort wrong: %v %v %v", out.Row(0)[2], out.Row(1)[2], out.Row(2)[2])
	}
}

func TestTopNEqualsSortLimit(t *testing.T) {
	pages := []*column.Page{
		makePage([][3]interface{}{{5, 5.0, "e"}, {3, 3.0, "c"}, {8, 8.0, "h"}}),
		makePage([][3]interface{}{{1, 1.0, "a"}, {9, 9.0, "i"}, {2, 2.0, "b"}}),
		makePage([][3]interface{}{{7, 7.0, "g"}, {4, 4.0, "d"}, {6, 6.0, "f"}}),
	}
	keys := []SortSpec{{Column: 0}}
	for _, n := range []int64{0, 1, 3, 9, 100} {
		topn, err := NewTopN(NewPageSource(numSchema(), pages), keys, n, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DrainToPage(topn)
		if err != nil {
			t.Fatal(err)
		}
		srt, _ := NewSort(NewPageSource(numSchema(), pages), keys, nil)
		want, _ := DrainToPage(NewLimit(srt, n))
		if got.NumRows() != want.NumRows() {
			t.Fatalf("n=%d: rows %d vs %d", n, got.NumRows(), want.NumRows())
		}
		for i := 0; i < got.NumRows(); i++ {
			if !types.Equal(got.Row(i)[0], want.Row(i)[0]) {
				t.Errorf("n=%d row %d: %v vs %v", n, i, got.Row(i)[0], want.Row(i)[0])
			}
		}
	}
}

func TestTopNDescending(t *testing.T) {
	page := makePage([][3]interface{}{{1, 1.0, "a"}, {3, 3.0, "c"}, {2, 2.0, "b"}})
	topn, _ := NewTopN(sourceOf(page), []SortSpec{{Column: 0, Descending: true}}, 2, nil)
	out, _ := DrainToPage(topn)
	if out.NumRows() != 2 || out.Row(0)[0].I != 3 || out.Row(1)[0].I != 2 {
		t.Errorf("desc topN wrong")
	}
	if _, err := NewTopN(sourceOf(page), nil, -1, nil); err == nil {
		t.Error("negative limit accepted")
	}
	if _, err := NewTopN(sourceOf(page), []SortSpec{{Column: 42}}, 1, nil); err == nil {
		t.Error("bad key accepted")
	}
}

func TestMeterAdd(t *testing.T) {
	a := Meter{Rows: 2, Units: 3}
	a.Add(Meter{Rows: 5, Units: 7})
	if a.Rows != 7 || a.Units != 10 {
		t.Errorf("meter add = %+v", a)
	}
}
