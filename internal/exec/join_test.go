package exec

import (
	"testing"

	"prestocs/internal/bloom"
	"prestocs/internal/column"
)

func buildTable(t *testing.T, keys []int, pages ...*column.Page) *JoinTable {
	t.Helper()
	var m Meter
	table, err := BuildJoinTable(sourceOf(pages...), keys, &m)
	if err != nil {
		t.Fatalf("BuildJoinTable: %v", err)
	}
	return table
}

func probeAll(t *testing.T, table *JoinTable, keys []int, pages ...*column.Page) *column.Page {
	t.Helper()
	var m Meter
	j, err := NewHashJoinProbe(sourceOf(pages...), table, keys, &m)
	if err != nil {
		t.Fatalf("NewHashJoinProbe: %v", err)
	}
	out, err := DrainToPage(j)
	if err != nil {
		t.Fatalf("probe drain: %v", err)
	}
	return out
}

func TestHashJoinBasic(t *testing.T) {
	build := makePage([][3]interface{}{{1, 10.0, "b1"}, {3, 30.0, "b3"}})
	table := buildTable(t, []int{0}, build)
	if table.Rows() != 2 || table.InputRows() != 2 {
		t.Fatalf("table rows = %d input = %d", table.Rows(), table.InputRows())
	}
	probe := makePage([][3]interface{}{{1, 1.0, "p1"}, {2, 2.0, "p2"}, {3, 3.0, "p3"}})
	out := probeAll(t, table, []int{0}, probe)
	if out.NumRows() != 2 {
		t.Fatalf("joined %d rows, want 2", out.NumRows())
	}
	if got := out.Schema.Len(); got != 6 {
		t.Fatalf("output schema has %d columns, want 6 (probe⊕build)", got)
	}
	// First match: probe row (1, 1.0, "p1") ⊕ build row (1, 10.0, "b1").
	if out.Vectors[0].Ints[0] != 1 || out.Vectors[3].Ints[0] != 1 ||
		out.Vectors[2].Strings[0] != "p1" || out.Vectors[5].Strings[0] != "b1" {
		t.Errorf("bad first join row: %v", out)
	}
	if out.Vectors[0].Ints[1] != 3 || out.Vectors[5].Strings[1] != "b3" {
		t.Errorf("bad second join row: %v", out)
	}
}

func TestHashJoinEmptyBuildSide(t *testing.T) {
	table := buildTable(t, []int{0}, makePage(nil))
	if table.Rows() != 0 {
		t.Fatalf("empty build indexed %d rows", table.Rows())
	}
	probe := makePage([][3]interface{}{{1, 1.0, "a"}, {2, 2.0, "b"}})
	out := probeAll(t, table, []int{0}, probe)
	if out.NumRows() != 0 {
		t.Fatalf("empty build side joined %d rows, want 0", out.NumRows())
	}
	// And the bloom filter over an empty build rejects everything too.
	f, err := table.BuildBloom(bloom.DefaultBitsPerKey)
	if err != nil {
		t.Fatalf("BuildBloom: %v", err)
	}
	sel, err := f.TestVector(probe.Vectors[0], nil, nil)
	if err != nil || len(sel) != 0 {
		t.Fatalf("empty-build bloom passed %d rows (%v), want 0", len(sel), err)
	}
}

func TestHashJoinNullKeysNeverMatch(t *testing.T) {
	// NULL build keys are dropped from the index; NULL probe keys miss.
	build := makePage([][3]interface{}{{1, 10.0, "b1"}, {nil, 20.0, "bnull"}})
	table := buildTable(t, []int{0}, build)
	if table.Rows() != 1 {
		t.Fatalf("NULL-key build row indexed: %d rows, want 1", table.Rows())
	}
	if table.InputRows() != 2 {
		t.Fatalf("InputRows = %d, want 2", table.InputRows())
	}
	probe := makePage([][3]interface{}{{nil, 1.0, "pnull"}, {1, 2.0, "p1"}})
	out := probeAll(t, table, []int{0}, probe)
	if out.NumRows() != 1 {
		t.Fatalf("joined %d rows, want 1 (NULL ⋈ NULL must not match)", out.NumRows())
	}
	if out.Vectors[2].Strings[0] != "p1" || out.Vectors[5].Strings[0] != "b1" {
		t.Errorf("unexpected surviving row: %v", out)
	}
}

func TestHashJoinDuplicateBuildKeys(t *testing.T) {
	// Two build rows share key 7: each matching probe row emits twice.
	build := makePage([][3]interface{}{{7, 70.0, "b-a"}, {7, 71.0, "b-b"}, {8, 80.0, "b-c"}})
	table := buildTable(t, []int{0}, build)
	probe := makePage([][3]interface{}{{7, 1.0, "p"}, {9, 2.0, "q"}})
	out := probeAll(t, table, []int{0}, probe)
	if out.NumRows() != 2 {
		t.Fatalf("joined %d rows, want 2 (inner-join multiplicity)", out.NumRows())
	}
	got := map[string]bool{out.Vectors[5].Strings[0]: true, out.Vectors[5].Strings[1]: true}
	if !got["b-a"] || !got["b-b"] {
		t.Errorf("duplicate-key matches = %v, want b-a and b-b", got)
	}
	for row := 0; row < 2; row++ {
		if out.Vectors[2].Strings[row] != "p" {
			t.Errorf("probe side of row %d = %q, want p", row, out.Vectors[2].Strings[row])
		}
	}
}

func TestHashJoinMultiKeyAndStringKeys(t *testing.T) {
	build := makePage([][3]interface{}{{1, 10.0, "x"}, {1, 11.0, "y"}})
	table := buildTable(t, []int{0, 2}, build)
	probe := makePage([][3]interface{}{{1, 1.0, "x"}, {1, 2.0, "z"}})
	out := probeAll(t, table, []int{0, 2}, probe)
	if out.NumRows() != 1 || out.Vectors[4].Floats[0] != 10.0 {
		t.Fatalf("multi-key join = %d rows (%v), want exactly (1,x) pair", out.NumRows(), out)
	}
}

func TestHashJoinErrors(t *testing.T) {
	var m Meter
	if _, err := BuildJoinTable(sourceOf(), nil, &m); err == nil {
		t.Error("no-key build accepted")
	}
	if _, err := BuildJoinTable(sourceOf(), []int{5}, &m); err == nil {
		t.Error("out-of-range build key accepted")
	}
	table := buildTable(t, []int{0}, makePage([][3]interface{}{{1, 1.0, "a"}}))
	if _, err := NewHashJoinProbe(sourceOf(), table, []int{0, 1}, &m); err == nil {
		t.Error("key arity mismatch accepted")
	}
	if _, err := NewHashJoinProbe(sourceOf(), table, []int{1}, &m); err == nil {
		t.Error("key type mismatch accepted (float probe vs int build)")
	}
	if _, err := NewHashJoinProbe(sourceOf(), table, []int{9}, &m); err == nil {
		t.Error("out-of-range probe key accepted")
	}
}

func TestJoinTableBloomFiltersProbe(t *testing.T) {
	rows := make([][3]interface{}, 0, 64)
	for i := 0; i < 64; i++ {
		rows = append(rows, [3]interface{}{i * 2, float64(i), "b"})
	}
	table := buildTable(t, []int{0}, makePage(rows))
	f, err := table.BuildBloom(bloom.DefaultBitsPerKey)
	if err != nil {
		t.Fatalf("BuildBloom: %v", err)
	}
	probeRows := make([][3]interface{}, 0, 256)
	for i := 0; i < 256; i++ {
		probeRows = append(probeRows, [3]interface{}{i, float64(i), "p"})
	}
	probe := makePage(probeRows)
	sel, err := f.TestVector(probe.Vectors[0], nil, nil)
	if err != nil {
		t.Fatalf("TestVector: %v", err)
	}
	// All 64 true members must survive (no false negatives)...
	member := map[int64]bool{}
	for i := 0; i < 64; i++ {
		member[int64(i*2)] = true
	}
	kept := map[int64]bool{}
	for _, row := range sel {
		kept[probe.Vectors[0].Ints[row]] = true
	}
	for k := range member {
		if !kept[k] {
			t.Fatalf("bloom false negative for key %d", k)
		}
	}
	// ...and the filter must measurably cut non-members (10 bits/key
	// gives ~1%% FP; 50%% is a generous sanity bound).
	if len(sel) > 128 {
		t.Fatalf("bloom kept %d of 256 rows; expected close to the 64 members", len(sel))
	}
}

func TestBloomProbeOperator(t *testing.T) {
	table := buildTable(t, []int{0}, makePage([][3]interface{}{{1, 1.0, "a"}, {3, 3.0, "c"}}))
	f, err := table.BuildBloom(bloom.DefaultBitsPerKey)
	if err != nil {
		t.Fatalf("BuildBloom: %v", err)
	}
	input := makePage([][3]interface{}{{1, 1.0, "p1"}, {2, 2.0, "p2"}, {nil, 9.0, "pn"}, {3, 3.0, "p3"}})
	var tested, keptRows int
	var m Meter
	bp, err := NewBloomProbe(sourceOf(input), 0, f, &m, func(in, kept int) {
		tested += in
		keptRows += kept
	})
	if err != nil {
		t.Fatalf("NewBloomProbe: %v", err)
	}
	out, err := DrainToPage(bp)
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	if out.NumRows() != 2 {
		t.Fatalf("bloom probe kept %d rows, want 2 (members only, NULL dropped)", out.NumRows())
	}
	if out.Vectors[2].Strings[0] != "p1" || out.Vectors[2].Strings[1] != "p3" {
		t.Errorf("wrong survivors: %v", out.Vectors[2].Strings)
	}
	if tested != 4 || keptRows != 2 {
		t.Errorf("observer saw tested=%d kept=%d, want 4/2", tested, keptRows)
	}
	if m.Rows != 4 {
		t.Errorf("meter charged %d rows, want 4", m.Rows)
	}
}

func TestBloomProbeSelHandover(t *testing.T) {
	// When every row survives, the page is handed through with a nil
	// selection — no copy.
	table := buildTable(t, []int{0}, makePage([][3]interface{}{{1, 1.0, "a"}, {2, 2.0, "b"}}))
	f, err := table.BuildBloom(bloom.DefaultBitsPerKey)
	if err != nil {
		t.Fatalf("BuildBloom: %v", err)
	}
	input := makePage([][3]interface{}{{1, 1.0, "x"}, {2, 2.0, "y"}})
	bp, err := NewBloomProbe(sourceOf(input), 0, f, nil, nil)
	if err != nil {
		t.Fatalf("NewBloomProbe: %v", err)
	}
	page, sel, err := bp.NextSel()
	if err != nil || page != input || sel != nil {
		t.Fatalf("NextSel = (%p, %v, %v), want input page with nil sel", page, sel, err)
	}
	if _, err := NewBloomProbe(sourceOf(input), 9, f, nil, nil); err == nil {
		t.Error("out-of-range bloom column accepted")
	}
}

func TestBloomFromBitsRoundTrip(t *testing.T) {
	f := bloom.New(100, bloom.DefaultBitsPerKey)
	for i := int64(0); i < 100; i += 2 {
		f.AddHash(bloom.HashInt64(i))
	}
	g, err := bloom.FromBits(f.Bits(), f.NumHash())
	if err != nil {
		t.Fatalf("FromBits: %v", err)
	}
	for i := int64(0); i < 100; i += 2 {
		if !g.TestHash(bloom.HashInt64(i)) {
			t.Fatalf("round-tripped filter lost key %d", i)
		}
	}
	if _, err := bloom.FromBits(nil, 4); err == nil {
		t.Error("empty bits accepted")
	}
	if _, err := bloom.FromBits([]byte{1}, 0); err == nil {
		t.Error("zero hash count accepted")
	}
}
