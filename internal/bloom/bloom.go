// Package bloom implements the compact bloom filter the engine builds
// over a join's build-side keys and pushes into the OCS scan of the
// probe side as an extra conjunct (the semi-join pushdown technique of
// PushdownDB and "Enhancing Computation Pushdown", PAPERS.md). The same
// value-hash runs on both sides of the wire: the engine hashes build-key
// vectors into the filter, the storage node hashes probe column vectors
// against it, so a bit mismatch can only mean the row cannot join.
//
// False positives are fine (the join re-checks every surviving row);
// false negatives are not, so HashInt64/HashFloat64/HashString follow
// exactly the value-equality rules of the exec hash join's key encoding
// (NaN canonicalized, -0.0 distinct from +0.0, strings hashed by raw
// bytes).
package bloom

import (
	"fmt"
	"math"

	"prestocs/internal/column"
	"prestocs/internal/types"
)

// Filter is a standard bloom filter with double hashing. The zero value
// is not usable; construct with New or FromBits.
type Filter struct {
	bits []byte
	k    int
	m    uint64 // number of bits, multiple of 8
}

// DefaultBitsPerKey (10 bits/key, ~1% false positives at k=7) matches
// the sizing used by LSM block filters.
const DefaultBitsPerKey = 10

// New sizes a filter for the expected number of distinct keys. Zero
// expected keys still allocates one word so an empty build side rejects
// every probe row.
func New(expectedKeys, bitsPerKey int) *Filter {
	if bitsPerKey <= 0 {
		bitsPerKey = DefaultBitsPerKey
	}
	nbits := uint64(expectedKeys) * uint64(bitsPerKey)
	if nbits < 64 {
		nbits = 64
	}
	nbits = (nbits + 7) &^ 7
	// k = ln2 * bits-per-key is the optimal hash count.
	k := int(float64(bitsPerKey) * 0.69)
	if k < 1 {
		k = 1
	}
	if k > 8 {
		k = 8
	}
	return &Filter{bits: make([]byte, nbits/8), k: k, m: nbits}
}

// FromBits reconstructs a filter from its wire form (the storage-node
// side of the pushdown).
func FromBits(bits []byte, numHash int) (*Filter, error) {
	if len(bits) == 0 {
		return nil, fmt.Errorf("bloom: empty bit array")
	}
	if numHash < 1 || numHash > 16 {
		return nil, fmt.Errorf("bloom: bad hash count %d", numHash)
	}
	return &Filter{bits: bits, k: numHash, m: uint64(len(bits)) * 8}, nil
}

// Bits returns the backing bit array (not a copy; wire encoding).
func (f *Filter) Bits() []byte { return f.bits }

// NumHash returns the double-hashing probe count.
func (f *Filter) NumHash() int { return f.k }

// SizeBytes returns the wire size of the bit array.
func (f *Filter) SizeBytes() int { return len(f.bits) }

// AddHash sets the k bits derived from a value hash.
func (f *Filter) AddHash(h uint64) {
	h1, h2 := h, h>>33|h<<31|1 // h2 forced odd so probes cover the array
	for i := 0; i < f.k; i++ {
		bit := h1 % f.m
		f.bits[bit>>3] |= 1 << (bit & 7)
		h1 += h2
	}
}

// TestHash reports whether all k bits for a value hash are set.
func (f *Filter) TestHash(h uint64) bool {
	h1, h2 := h, h>>33|h<<31|1
	for i := 0; i < f.k; i++ {
		bit := h1 % f.m
		if f.bits[bit>>3]&(1<<(bit&7)) == 0 {
			return false
		}
		h1 += h2
	}
	return true
}

// mix is the splitmix64 finalizer: full-avalanche so consecutive keys
// (the common case for synthetic orderkeys) spread over the whole array.
func mix(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// HashInt64 hashes an integer or date key value.
func HashInt64(v int64) uint64 { return mix(uint64(v)) }

// HashFloat64 hashes a float key value, canonicalizing NaN the way the
// join's group-key encoding does.
func HashFloat64(v float64) uint64 {
	if math.IsNaN(v) {
		v = math.NaN()
	}
	return mix(math.Float64bits(v))
}

// HashString hashes a string key value (FNV-1a then finalized).
func HashString(s string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return mix(h)
}

// HashBool hashes a boolean key value.
func HashBool(v bool) uint64 {
	if v {
		return mix(1)
	}
	return mix(0)
}

// AddVector hashes every non-null value of a key vector into the
// filter, vectorized per kind.
func (f *Filter) AddVector(vec *column.Vector) error {
	nulls := vec.Nulls
	switch vec.Kind {
	case types.Int64, types.Date:
		for i, v := range vec.Ints {
			if nulls == nil || !nulls[i] {
				f.AddHash(HashInt64(v))
			}
		}
	case types.Float64:
		for i, v := range vec.Floats {
			if nulls == nil || !nulls[i] {
				f.AddHash(HashFloat64(v))
			}
		}
	case types.String:
		for i, v := range vec.Strings {
			if nulls == nil || !nulls[i] {
				f.AddHash(HashString(v))
			}
		}
	case types.Bool:
		for i, v := range vec.Bools {
			if nulls == nil || !nulls[i] {
				f.AddHash(HashBool(v))
			}
		}
	default:
		return fmt.Errorf("bloom: unsupported key kind %s", vec.Kind)
	}
	return nil
}

// TestVector filters sel (or all rows when sel is nil) down to the rows
// whose value might be in the filter, appending survivors to out. NULL
// key values never pass: an inner equi-join cannot match them. The kind
// dispatch is hoisted out of the row loop (one kernel per kind).
func (f *Filter) TestVector(vec *column.Vector, sel []int, out []int) ([]int, error) {
	nulls := vec.Nulls
	if sel == nil {
		sel = allRows(vec.Len())
	}
	switch vec.Kind {
	case types.Int64, types.Date:
		for _, row := range sel {
			if (nulls == nil || !nulls[row]) && f.TestHash(HashInt64(vec.Ints[row])) {
				out = append(out, row)
			}
		}
	case types.Float64:
		for _, row := range sel {
			if (nulls == nil || !nulls[row]) && f.TestHash(HashFloat64(vec.Floats[row])) {
				out = append(out, row)
			}
		}
	case types.String:
		for _, row := range sel {
			if (nulls == nil || !nulls[row]) && f.TestHash(HashString(vec.Strings[row])) {
				out = append(out, row)
			}
		}
	case types.Bool:
		for _, row := range sel {
			if (nulls == nil || !nulls[row]) && f.TestHash(HashBool(vec.Bools[row])) {
				out = append(out, row)
			}
		}
	default:
		return nil, fmt.Errorf("bloom: unsupported key kind %s", vec.Kind)
	}
	return out, nil
}

func allRows(n int) []int {
	sel := make([]int, n)
	for i := range sel {
		sel[i] = i
	}
	return sel
}
