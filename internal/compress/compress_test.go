package compress

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func sampleInputs() map[string][]byte {
	rnd := rand.New(rand.NewSource(7))
	random := make([]byte, 10000)
	rnd.Read(random)
	lowEntropy := make([]byte, 20000)
	for i := range lowEntropy {
		lowEntropy[i] = byte(rnd.Intn(4))
	}
	return map[string][]byte{
		"empty":      {},
		"one":        {42},
		"short":      []byte("abc"),
		"repeated":   bytes.Repeat([]byte("abcdefgh"), 1000),
		"zeros":      make([]byte, 65536),
		"random":     random,
		"lowentropy": lowEntropy,
		"text":       []byte(strings.Repeat("the quick brown fox jumps over the lazy dog. ", 300)),
	}
}

func TestRoundTripAllCodecs(t *testing.T) {
	for name, data := range sampleInputs() {
		for _, c := range Codecs() {
			enc, err := Encode(c, data)
			if err != nil {
				t.Fatalf("%s/%s encode: %v", c, name, err)
			}
			dec, err := Decode(c, enc)
			if err != nil {
				t.Fatalf("%s/%s decode: %v", c, name, err)
			}
			if !bytes.Equal(dec, data) {
				t.Errorf("%s/%s: round trip mismatch (%d vs %d bytes)", c, name, len(dec), len(data))
			}
		}
	}
}

func TestCompressionRatioOrdering(t *testing.T) {
	// The paper's Fig. 6 relies on ratio(Zstd) >= ratio(Gzip) > ratio(Snappy)
	// on compressible scientific-like data.
	data := sampleInputs()["lowentropy"]
	sizes := map[Codec]int{}
	for _, c := range Codecs() {
		enc, err := Encode(c, data)
		if err != nil {
			t.Fatal(err)
		}
		sizes[c] = len(enc)
	}
	if !(sizes[Zstd] <= sizes[Gzip] && sizes[Gzip] < sizes[Snappy] && sizes[Snappy] < sizes[None]) {
		t.Errorf("ratio ordering violated: none=%d snappy=%d gzip=%d zstd=%d",
			sizes[None], sizes[Snappy], sizes[Gzip], sizes[Zstd])
	}
}

func TestSnappyCompressesRepetitive(t *testing.T) {
	data := bytes.Repeat([]byte("0123456789abcdef"), 4096)
	enc, _ := Encode(Snappy, data)
	if len(enc) > len(data)/8 {
		t.Errorf("snappy barely compressed: %d -> %d", len(data), len(enc))
	}
}

func TestSnappyCorruptInputs(t *testing.T) {
	cases := [][]byte{
		{},                    // missing length
		{0xff, 0xff, 0xff},    // unterminated varint
		{0x08, 0x00},          // literal length 3 but only 1 byte payload
		{0x04, 0x01, 0x05, 9}, // copy with offset beyond output
		{0x02, 0xF0},          // literal tag 60 with no length byte
	}
	for i, c := range cases {
		if _, err := Decode(Snappy, c); err == nil {
			t.Errorf("case %d: corrupt input decoded without error", i)
		}
	}
	// Truncated valid stream.
	enc, _ := Encode(Snappy, bytes.Repeat([]byte("xy"), 100))
	if _, err := Decode(Snappy, enc[:len(enc)-3]); err == nil {
		t.Error("truncated stream decoded without error")
	}
}

func TestSnappyOverlappingCopy(t *testing.T) {
	// "aaaa..." forces overlapping copies (offset < length).
	data := bytes.Repeat([]byte{'a'}, 1000)
	enc, _ := Encode(Snappy, data)
	dec, err := Decode(Snappy, enc)
	if err != nil || !bytes.Equal(dec, data) {
		t.Fatalf("overlap round trip failed: %v", err)
	}
}

func TestParseCodecAndString(t *testing.T) {
	for _, c := range Codecs() {
		got, err := ParseCodec(c.String())
		if err != nil || got != c {
			t.Errorf("ParseCodec(%q) = %v, %v", c.String(), got, err)
		}
	}
	if _, err := ParseCodec("lz77-magic"); err == nil {
		t.Error("unknown codec must fail")
	}
	if c, err := ParseCodec(""); err != nil || c != None {
		t.Error("empty codec name must mean None")
	}
	if Codec(99).String() == "" {
		t.Error("unknown codec String empty")
	}
}

func TestCostModelsOrdering(t *testing.T) {
	if !(DecompressCostPerByte(Snappy) < DecompressCostPerByte(Zstd) &&
		DecompressCostPerByte(Zstd) < DecompressCostPerByte(Gzip)) {
		t.Error("decompress cost ordering must be snappy < zstd < gzip")
	}
	if DecompressCostPerByte(None) != 0 || CompressCostPerByte(None) != 0 {
		t.Error("None codec must be free")
	}
	if CompressCostPerByte(Gzip) <= CompressCostPerByte(Snappy) {
		t.Error("gzip compression must cost more than snappy")
	}
	if DecompressCostPerByte(Codec(99)) <= 0 || CompressCostPerByte(Codec(99)) <= 0 {
		t.Error("unknown codec cost default wrong")
	}
}

func TestDecodeUnknownCodec(t *testing.T) {
	if _, err := Encode(Codec(42), nil); err == nil {
		t.Error("encode with unknown codec must fail")
	}
	if _, err := Decode(Codec(42), nil); err == nil {
		t.Error("decode with unknown codec must fail")
	}
}

// Property: snappy round-trips arbitrary byte strings.
func TestQuickSnappyRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		enc, err := Encode(Snappy, data)
		if err != nil {
			return false
		}
		dec, err := Decode(Snappy, enc)
		return err == nil && bytes.Equal(dec, data)
	}
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: all codecs round-trip highly structured input (runs).
func TestQuickAllCodecsRuns(t *testing.T) {
	f := func(b byte, n uint16) bool {
		data := bytes.Repeat([]byte{b}, int(n)%5000)
		for _, c := range Codecs() {
			enc, err := Encode(c, data)
			if err != nil {
				return false
			}
			dec, err := Decode(c, enc)
			if err != nil || !bytes.Equal(dec, data) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func BenchmarkSnappyEncode(b *testing.B) {
	data := sampleInputs()["lowentropy"]
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		if _, err := Encode(Snappy, data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSnappyDecode(b *testing.B) {
	data := sampleInputs()["lowentropy"]
	enc, _ := Encode(Snappy, data)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		if _, err := Decode(Snappy, enc); err != nil {
			b.Fatal(err)
		}
	}
}
