package compress

import (
	"encoding/binary"
	"errors"
)

// This file implements the Snappy block format from scratch:
// https://github.com/google/snappy/blob/main/format_description.txt
//
// A compressed block is a varint-encoded uncompressed length followed by a
// sequence of elements. Each element starts with a tag byte whose low two
// bits select the element type:
//
//	00 literal    — upper 6 bits hold length-1, or 60..63 to indicate the
//	                length is stored in the following 1..4 little-endian bytes
//	01 copy1      — 3-bit length-4 (4..11), 11-bit offset (high 3 bits in
//	                tag, low 8 in next byte)
//	10 copy2      — 6-bit length-1, 16-bit little-endian offset
//	11 copy4      — 6-bit length-1, 32-bit little-endian offset
const (
	tagLiteral = 0x00
	tagCopy1   = 0x01
	tagCopy2   = 0x02
	tagCopy4   = 0x03
)

var (
	// ErrCorrupt reports a malformed Snappy block.
	ErrCorrupt = errors.New("compress: corrupt snappy data")
)

const (
	snappyMaxOffset = 1 << 15 // encoder window; format allows up to 2^32-1
	snappyMinMatch  = 4
	hashTableBits   = 14
	hashTableSize   = 1 << hashTableBits
)

// snappyEncode compresses src into a fresh buffer using a greedy LZ77
// matcher with a 16k-entry hash table, mirroring the reference encoder's
// fast path.
func snappyEncode(src []byte) []byte {
	dst := make([]byte, 0, len(src)/2+16)
	dst = appendUvarint(dst, uint64(len(src)))
	if len(src) == 0 {
		return dst
	}
	if len(src) < snappyMinMatch {
		return appendLiteral(dst, src)
	}

	var table [hashTableSize]int32 // candidate positions + 1 (0 = empty)
	litStart := 0
	i := 0
	limit := len(src) - snappyMinMatch
	for i <= limit {
		h := snappyHash(binary.LittleEndian.Uint32(src[i:]))
		cand := int(table[h]) - 1
		table[h] = int32(i) + 1
		if cand >= 0 && i-cand <= snappyMaxOffset &&
			binary.LittleEndian.Uint32(src[cand:]) == binary.LittleEndian.Uint32(src[i:]) {
			// Extend the match.
			matchLen := snappyMinMatch
			for i+matchLen < len(src) && src[cand+matchLen] == src[i+matchLen] {
				matchLen++
			}
			if litStart < i {
				dst = appendLiteral(dst, src[litStart:i])
			}
			dst = appendCopy(dst, i-cand, matchLen)
			i += matchLen
			litStart = i
			continue
		}
		i++
	}
	if litStart < len(src) {
		dst = appendLiteral(dst, src[litStart:])
	}
	return dst
}

func snappyHash(u uint32) uint32 {
	return (u * 0x1e35a7bd) >> (32 - hashTableBits)
}

func appendUvarint(dst []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(dst, tmp[:n]...)
}

func appendLiteral(dst, lit []byte) []byte {
	n := len(lit) - 1
	switch {
	case n < 60:
		dst = append(dst, byte(n)<<2|tagLiteral)
	case n < 1<<8:
		dst = append(dst, 60<<2|tagLiteral, byte(n))
	case n < 1<<16:
		dst = append(dst, 61<<2|tagLiteral, byte(n), byte(n>>8))
	case n < 1<<24:
		dst = append(dst, 62<<2|tagLiteral, byte(n), byte(n>>8), byte(n>>16))
	default:
		dst = append(dst, 63<<2|tagLiteral, byte(n), byte(n>>8), byte(n>>16), byte(n>>24))
	}
	return append(dst, lit...)
}

// appendCopy emits one or more copy elements for a match of the given
// offset and length.
func appendCopy(dst []byte, offset, length int) []byte {
	for length > 0 {
		n := length
		switch {
		case n >= 4 && n <= 11 && offset < 1<<11:
			dst = append(dst,
				byte(offset>>8)<<5|byte(n-4)<<2|tagCopy1,
				byte(offset))
			return dst
		case offset < 1<<16:
			if n > 64 {
				n = 64
				// Avoid leaving a tail shorter than the 4-byte minimum a
				// copy1 could need; 60 keeps the remainder >= 4.
				if length-n < 4 {
					n = 60
				}
			}
			dst = append(dst,
				byte(n-1)<<2|tagCopy2,
				byte(offset), byte(offset>>8))
		default:
			if n > 64 {
				n = 64
				if length-n < 4 {
					n = 60
				}
			}
			dst = append(dst,
				byte(n-1)<<2|tagCopy4,
				byte(offset), byte(offset>>8), byte(offset>>16), byte(offset>>24))
		}
		length -= n
	}
	return dst
}

// snappyDecode expands a Snappy block.
func snappyDecode(src []byte) ([]byte, error) {
	uLen, n := binary.Uvarint(src)
	if n <= 0 {
		return nil, ErrCorrupt
	}
	if uLen > 1<<32 {
		return nil, errors.New("compress: snappy block too large")
	}
	src = src[n:]
	dst := make([]byte, 0, uLen)
	for len(src) > 0 {
		tag := src[0]
		switch tag & 0x03 {
		case tagLiteral:
			length := int(tag >> 2)
			var extra int
			switch length {
			case 60:
				extra = 1
			case 61:
				extra = 2
			case 62:
				extra = 3
			case 63:
				extra = 4
			}
			if extra > 0 {
				if len(src) < 1+extra {
					return nil, ErrCorrupt
				}
				length = 0
				for b := extra - 1; b >= 0; b-- {
					length = length<<8 | int(src[1+b])
				}
			}
			length++
			src = src[1+extra:]
			if len(src) < length {
				return nil, ErrCorrupt
			}
			dst = append(dst, src[:length]...)
			src = src[length:]
		case tagCopy1:
			if len(src) < 2 {
				return nil, ErrCorrupt
			}
			length := int(tag>>2&0x07) + 4
			offset := int(tag>>5)<<8 | int(src[1])
			src = src[2:]
			var err error
			dst, err = expandCopy(dst, offset, length)
			if err != nil {
				return nil, err
			}
		case tagCopy2:
			if len(src) < 3 {
				return nil, ErrCorrupt
			}
			length := int(tag>>2) + 1
			offset := int(binary.LittleEndian.Uint16(src[1:3]))
			src = src[3:]
			var err error
			dst, err = expandCopy(dst, offset, length)
			if err != nil {
				return nil, err
			}
		case tagCopy4:
			if len(src) < 5 {
				return nil, ErrCorrupt
			}
			length := int(tag>>2) + 1
			offset := int(binary.LittleEndian.Uint32(src[1:5]))
			src = src[5:]
			var err error
			dst, err = expandCopy(dst, offset, length)
			if err != nil {
				return nil, err
			}
		}
	}
	if uint64(len(dst)) != uLen {
		return nil, ErrCorrupt
	}
	return dst, nil
}

// expandCopy appends length bytes starting offset bytes back in dst;
// overlapping copies (offset < length) replicate, per the format.
func expandCopy(dst []byte, offset, length int) ([]byte, error) {
	if offset <= 0 || offset > len(dst) {
		return nil, ErrCorrupt
	}
	pos := len(dst) - offset
	for i := 0; i < length; i++ {
		dst = append(dst, dst[pos+i])
	}
	return dst, nil
}
