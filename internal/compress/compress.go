// Package compress provides the compression codecs used by the
// parquetlite column-chunk format and the object-store transfer paths.
//
// Codec inventory (see DESIGN.md §2 for the substitution rationale):
//
//   - None:   identity.
//   - Snappy: a from-scratch implementation of Google's Snappy block
//     format (raw, non-framed) — the same format the real Parquet SNAPPY
//     codec stores.
//   - Gzip:   stdlib compress/gzip at the default level.
//   - Zstd:   simulated with stdlib DEFLATE at BestCompression; the
//     compression study only relies on ratio(Zstd) ≥ ratio(Gzip) >
//     ratio(Snappy), which this preserves.
package compress

import (
	"bytes"
	"compress/flate"
	"compress/gzip"
	"fmt"
	"io"
)

// Codec identifies a compression algorithm.
type Codec uint8

const (
	// None stores data uncompressed.
	None Codec = iota
	// Snappy is the Snappy block format, implemented from scratch.
	Snappy
	// Gzip is DEFLATE with gzip framing at the default level.
	Gzip
	// Zstd is a Zstandard stand-in (DEFLATE at BestCompression).
	Zstd
)

// String returns the codec's canonical lower-case name.
func (c Codec) String() string {
	switch c {
	case None:
		return "none"
	case Snappy:
		return "snappy"
	case Gzip:
		return "gzip"
	case Zstd:
		return "zstd"
	default:
		return fmt.Sprintf("codec(%d)", uint8(c))
	}
}

// ParseCodec resolves a codec by name.
func ParseCodec(name string) (Codec, error) {
	switch name {
	case "none", "", "uncompressed":
		return None, nil
	case "snappy":
		return Snappy, nil
	case "gzip":
		return Gzip, nil
	case "zstd":
		return Zstd, nil
	default:
		return None, fmt.Errorf("compress: unknown codec %q", name)
	}
}

// Codecs lists all supported codecs in the order the paper sweeps them.
func Codecs() []Codec { return []Codec{None, Snappy, Gzip, Zstd} }

// Encode compresses src with the codec.
func Encode(c Codec, src []byte) ([]byte, error) {
	switch c {
	case None:
		out := make([]byte, len(src))
		copy(out, src)
		return out, nil
	case Snappy:
		return snappyEncode(src), nil
	case Gzip:
		var buf bytes.Buffer
		w := gzip.NewWriter(&buf)
		if _, err := w.Write(src); err != nil {
			return nil, err
		}
		if err := w.Close(); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	case Zstd:
		var buf bytes.Buffer
		w, err := flate.NewWriter(&buf, flate.BestCompression)
		if err != nil {
			return nil, err
		}
		if _, err := w.Write(src); err != nil {
			return nil, err
		}
		if err := w.Close(); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	default:
		return nil, fmt.Errorf("compress: unknown codec %d", c)
	}
}

// Decode decompresses src with the codec.
func Decode(c Codec, src []byte) ([]byte, error) {
	switch c {
	case None:
		out := make([]byte, len(src))
		copy(out, src)
		return out, nil
	case Snappy:
		return snappyDecode(src)
	case Gzip:
		r, err := gzip.NewReader(bytes.NewReader(src))
		if err != nil {
			return nil, fmt.Errorf("compress: gzip: %w", err)
		}
		defer r.Close()
		out, err := io.ReadAll(r)
		if err != nil {
			return nil, fmt.Errorf("compress: gzip: %w", err)
		}
		return out, nil
	case Zstd:
		r := flate.NewReader(bytes.NewReader(src))
		defer r.Close()
		out, err := io.ReadAll(r)
		if err != nil {
			return nil, fmt.Errorf("compress: zstd-sim: %w", err)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("compress: unknown codec %d", c)
	}
}

// DecodeAppend decompresses src and appends the output to dst, returning
// the extended slice. Passing a pooled dst with spare capacity lets hot
// decode paths (parquetlite page reads) avoid a fresh allocation per
// chunk. Snappy with an empty dst falls back to the direct decoder, which
// sizes its output exactly from the stored length.
func DecodeAppend(c Codec, src, dst []byte) ([]byte, error) {
	switch c {
	case None:
		return append(dst, src...), nil
	case Snappy:
		if len(dst) == 0 {
			// The block decoder sizes its output exactly from the stored
			// uncompressed length; re-copying into dst would cost more
			// than the allocation it saves.
			return snappyDecode(src)
		}
		out, err := snappyDecode(src)
		if err != nil {
			return nil, err
		}
		return append(dst, out...), nil
	case Gzip:
		r, err := gzip.NewReader(bytes.NewReader(src))
		if err != nil {
			return nil, fmt.Errorf("compress: gzip: %w", err)
		}
		defer r.Close()
		out, err := readAppend(r, dst)
		if err != nil {
			return nil, fmt.Errorf("compress: gzip: %w", err)
		}
		return out, nil
	case Zstd:
		r := flate.NewReader(bytes.NewReader(src))
		defer r.Close()
		out, err := readAppend(r, dst)
		if err != nil {
			return nil, fmt.Errorf("compress: zstd-sim: %w", err)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("compress: unknown codec %d", c)
	}
}

// readAppend reads r to EOF, appending into dst's spare capacity first
// and growing only when needed (io.ReadAll always allocates fresh).
func readAppend(r io.Reader, dst []byte) ([]byte, error) {
	for {
		if len(dst) == cap(dst) {
			dst = append(dst, 0)[:len(dst)]
		}
		n, err := r.Read(dst[len(dst):cap(dst)])
		dst = dst[:len(dst)+n]
		if err == io.EOF {
			return dst, nil
		}
		if err != nil {
			return nil, err
		}
	}
}

// DecompressCostPerByte returns the CPU cost of decompressing one byte,
// in cost-model units (1 unit ≈ 100 ns on a 1 core-GHz machine).
// Calibrated against real decoder throughputs on a ~3 GHz core: snappy
// ≈ 1.5 GB/s, zstd ≈ 1 GB/s, gzip ≈ 0.75 GB/s.
func DecompressCostPerByte(c Codec) float64 {
	switch c {
	case None:
		return 0
	case Snappy:
		return 0.02
	case Gzip:
		return 0.04
	case Zstd:
		return 0.03
	default:
		return 0.05
	}
}

// CompressCostPerByte returns the CPU cost of compressing one byte, used
// when writing datasets (not on the query path). Strong codecs compress
// slowly.
func CompressCostPerByte(c Codec) float64 {
	switch c {
	case None:
		return 0
	case Snappy:
		return 0.04
	case Gzip:
		return 0.25
	case Zstd:
		return 0.50
	default:
		return 0.1
	}
}
