package faultnet

import (
	"context"
	"errors"
	"testing"
	"time"

	"prestocs/internal/rpc"
)

// echoServer starts an rpc server with an "echo" method and returns its
// address.
func echoServer(t *testing.T) string {
	t.Helper()
	s := rpc.NewServer()
	s.Register("echo", func(_ context.Context, p []byte) ([]byte, error) { return p, nil })
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return addr
}

func proxyFor(t *testing.T, target string) *Proxy {
	t.Helper()
	p, err := New(target)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func TestProxyPassesTrafficThrough(t *testing.T) {
	p := proxyFor(t, echoServer(t))
	c := rpc.Dial(p.Addr())
	defer c.Close()
	resp, err := c.Call(context.Background(), "echo", []byte("hello"))
	if err != nil || string(resp) != "hello" {
		t.Fatalf("proxied echo = %q, %v", resp, err)
	}
	if p.Accepted() != 1 {
		t.Errorf("accepted = %d", p.Accepted())
	}
}

func TestRefuseNewConnections(t *testing.T) {
	p := proxyFor(t, echoServer(t))
	p.SetRefuseNew(true)
	c := rpc.Dial(p.Addr())
	defer c.Close()
	if _, err := c.Call(context.Background(), "echo", []byte("x")); err == nil {
		t.Fatal("call through refusing proxy succeeded")
	}
	p.SetRefuseNew(false)
	if _, err := c.Call(context.Background(), "echo", []byte("x")); err != nil {
		t.Fatalf("call after un-refusing: %v", err)
	}
}

func TestKillActiveSeversInFlight(t *testing.T) {
	p := proxyFor(t, echoServer(t))
	c := rpc.Dial(p.Addr())
	defer c.Close()
	if _, err := c.Call(context.Background(), "echo", []byte("warm")); err != nil {
		t.Fatal(err)
	}
	// The pooled connection is live inside the proxy; kill it.
	p.KillActive()
	if p.Killed() < 1 {
		t.Errorf("killed = %d", p.Killed())
	}
	// The next call on the poisoned pooled conn fails, but a retry policy
	// dialing fresh succeeds — exactly the transient shape retry exists for.
	var lastErr error
	ok := false
	for i := 0; i < 3; i++ {
		if _, lastErr = c.Call(context.Background(), "echo", []byte("again")); lastErr == nil {
			ok = true
			break
		}
	}
	if !ok {
		t.Fatalf("echo never recovered after kill: %v", lastErr)
	}
}

func TestKillOnceTripsOnceAtThreshold(t *testing.T) {
	p := proxyFor(t, echoServer(t))
	c := rpc.Dial(p.Addr())
	defer c.Close()
	// Any response crosses a 1-byte threshold; the first call dies.
	p.KillOnce(1)
	if _, err := c.Call(context.Background(), "echo", []byte("boom")); err == nil {
		t.Fatal("call through armed KillOnce succeeded")
	}
	if p.Killed() != 1 {
		t.Errorf("killed = %d", p.Killed())
	}
	// The trigger disarmed: fresh connections flow.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := c.Call(context.Background(), "echo", []byte("ok")); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("traffic never recovered after one-shot kill")
		}
	}
	if p.Killed() != 1 {
		t.Errorf("one-shot kill fired %d times", p.Killed())
	}
}

func TestBlackholeBlocksUntilDeadline(t *testing.T) {
	p := proxyFor(t, echoServer(t))
	c := rpc.Dial(p.Addr())
	defer c.Close()
	if _, err := c.Call(context.Background(), "echo", []byte("warm")); err != nil {
		t.Fatal(err)
	}
	p.SetBlackhole(true)
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Call(ctx, "echo", []byte("lost"))
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("black-holed call error = %v", err)
	}
	if elapsed < 100*time.Millisecond || elapsed > 2*time.Second {
		t.Errorf("black-holed call returned after %v, want ≈150ms", elapsed)
	}
	if idle := c.IdleConns(); idle != 0 {
		t.Errorf("timed-out call must not pool its connection, idle=%d", idle)
	}
	p.SetBlackhole(false)
	if _, err := c.Call(context.Background(), "echo", []byte("back")); err != nil {
		t.Fatalf("call after un-black-holing: %v", err)
	}
}

func TestDelaySlowsCalls(t *testing.T) {
	p := proxyFor(t, echoServer(t))
	c := rpc.Dial(p.Addr())
	defer c.Close()
	p.SetDelay(50 * time.Millisecond)
	start := time.Now()
	if _, err := c.Call(context.Background(), "echo", []byte("slow")); err != nil {
		t.Fatal(err)
	}
	// Request and response directions each pay the delay at least once.
	if elapsed := time.Since(start); elapsed < 90*time.Millisecond {
		t.Errorf("delayed call took only %v", elapsed)
	}
}

func TestProxyCloseSeversEverything(t *testing.T) {
	p, err := New(echoServer(t))
	if err != nil {
		t.Fatal(err)
	}
	c := rpc.Dial(p.Addr())
	defer c.Close()
	if _, err := c.Call(context.Background(), "echo", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if p.ActiveConns() != 0 {
		t.Errorf("active after close = %d", p.ActiveConns())
	}
	if _, err := c.Call(context.Background(), "echo", []byte("x")); err == nil {
		t.Error("call through closed proxy succeeded")
	}
	p.Close() // idempotent
}
