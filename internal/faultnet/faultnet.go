// Package faultnet is a fault-injecting TCP proxy for tests. A Proxy
// sits between RPC peers (engine↔frontend or frontend↔node) and can
// refuse new connections, delay traffic, black-hole it, or kill
// connections — either all at once or deterministically after a byte
// threshold, which is how the fault suite cuts a result stream
// mid-flight without sleeping on timing.
package faultnet

import (
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Proxy forwards TCP connections to a target address, injecting faults
// on demand. All knobs are safe for concurrent use.
type Proxy struct {
	ln     net.Listener
	target string

	mu        sync.Mutex
	pairs     map[*pair]bool
	refuse    bool
	blackhole bool
	delay     time.Duration
	// killAfter arms a one-shot kill: the first connection whose
	// target→client byte count crosses the threshold is severed, then
	// the trigger disarms so recovery traffic flows freely.
	killAfter int64

	wg       sync.WaitGroup
	closed   atomic.Bool
	accepted atomic.Int64
	killed   atomic.Int64
}

type pair struct {
	cli, srv net.Conn
	// respBytes counts target→client bytes for the kill threshold.
	respBytes atomic.Int64
}

func (p *pair) closeBoth() {
	p.cli.Close()
	if p.srv != nil {
		p.srv.Close()
	}
}

// New starts a proxy on an ephemeral localhost port forwarding to
// target.
func New(target string) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{ln: ln, target: target, pairs: make(map[*pair]bool)}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address; clients dial this instead of
// the real target.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// SetRefuseNew makes the proxy close new connections immediately on
// accept, simulating a dead listener while existing flows continue.
func (p *Proxy) SetRefuseNew(on bool) {
	p.mu.Lock()
	p.refuse = on
	p.mu.Unlock()
}

// SetDelay inserts d before forwarding each read in either direction.
func (p *Proxy) SetDelay(d time.Duration) {
	p.mu.Lock()
	p.delay = d
	p.mu.Unlock()
}

// SetBlackhole stops forwarding in both directions while keeping
// connections open, so peers block instead of seeing a reset — the
// scenario context deadlines exist for.
func (p *Proxy) SetBlackhole(on bool) {
	p.mu.Lock()
	p.blackhole = on
	p.mu.Unlock()
}

// KillOnce arms a one-shot kill: the first connection to move more than
// afterResponseBytes from target to client is severed (both directions),
// then the trigger disarms. Later connections — retries, fallback
// fetches — pass untouched, which makes mid-stream death deterministic
// without affecting recovery.
func (p *Proxy) KillOnce(afterResponseBytes int64) {
	p.mu.Lock()
	p.killAfter = afterResponseBytes
	p.mu.Unlock()
}

// KillActive severs every connection currently flowing through the
// proxy.
func (p *Proxy) KillActive() {
	p.mu.Lock()
	pairs := make([]*pair, 0, len(p.pairs))
	for pr := range p.pairs {
		pairs = append(pairs, pr)
	}
	p.mu.Unlock()
	for _, pr := range pairs {
		pr.closeBoth()
		p.killed.Add(1)
	}
}

// Accepted returns the number of connections the proxy accepted.
func (p *Proxy) Accepted() int64 { return p.accepted.Load() }

// Killed returns the number of connections the proxy severed.
func (p *Proxy) Killed() int64 { return p.killed.Load() }

// ActiveConns returns the number of live proxied connections.
func (p *Proxy) ActiveConns() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.pairs)
}

// Close stops the listener and severs all connections.
func (p *Proxy) Close() error {
	if p.closed.Swap(true) {
		return nil
	}
	err := p.ln.Close()
	p.mu.Lock()
	pairs := make([]*pair, 0, len(p.pairs))
	for pr := range p.pairs {
		pairs = append(pairs, pr)
	}
	p.mu.Unlock()
	for _, pr := range pairs {
		pr.closeBoth()
	}
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.accepted.Add(1)
		p.mu.Lock()
		refuse := p.refuse
		p.mu.Unlock()
		if refuse {
			conn.Close()
			continue
		}
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.serve(conn)
		}()
	}
}

func (p *Proxy) serve(cli net.Conn) {
	srv, err := net.DialTimeout("tcp", p.target, 5*time.Second)
	if err != nil {
		cli.Close()
		return
	}
	pr := &pair{cli: cli, srv: srv}
	p.mu.Lock()
	if p.closed.Load() {
		p.mu.Unlock()
		pr.closeBoth()
		return
	}
	p.pairs[pr] = true
	p.mu.Unlock()

	var once sync.Once
	done := func() {
		once.Do(func() {
			pr.closeBoth()
			p.mu.Lock()
			delete(p.pairs, pr)
			p.mu.Unlock()
		})
	}
	p.wg.Add(2)
	go func() {
		defer p.wg.Done()
		defer done()
		p.pump(pr, cli, srv, false)
	}()
	go func() {
		defer p.wg.Done()
		defer done()
		p.pump(pr, srv, cli, true)
	}()
}

// pump copies src→dst one read at a time, consulting the fault knobs
// between reads. response is true for the target→client direction.
func (p *Proxy) pump(pr *pair, src, dst net.Conn, response bool) {
	buf := make([]byte, 32*1024)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			p.mu.Lock()
			delay := p.delay
			p.mu.Unlock()
			if delay > 0 {
				time.Sleep(delay)
			}
			// Hold the data while black-holed; peers see silence, not a
			// reset. Poll so turning the hole off resumes the flow.
			for p.blackholed() {
				if p.closed.Load() {
					return
				}
				time.Sleep(2 * time.Millisecond)
			}
			if response {
				total := pr.respBytes.Add(int64(n))
				p.mu.Lock()
				threshold := p.killAfter
				tripped := threshold > 0 && total >= threshold
				if tripped {
					p.killAfter = 0
				}
				p.mu.Unlock()
				if tripped {
					p.killed.Add(1)
					return // done() in the caller severs both sides
				}
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			return // done() in the caller severs both sides
		}
	}
}

func (p *Proxy) blackholed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.blackhole
}
