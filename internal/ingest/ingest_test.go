package ingest

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"prestocs/internal/metastore"
	"prestocs/internal/objstore"
	"prestocs/internal/parquetlite"
	"prestocs/internal/telemetry"
	"prestocs/internal/types"
)

// fakeStore is an in-memory CompactorStore with injectable Put failures
// (the killed-ingest scenario: the object never reaches storage, so the
// commit must not happen either).
type fakeStore struct {
	mu      sync.Mutex
	objects map[string][]byte
	failPut error
	deletes int
}

func newFakeStore() *fakeStore { return &fakeStore{objects: make(map[string][]byte)} }

func (s *fakeStore) Put(_ context.Context, bucket, key string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failPut != nil {
		return s.failPut
	}
	s.objects[bucket+"/"+key] = append([]byte(nil), data...)
	return nil
}

func (s *fakeStore) Get(_ context.Context, bucket, key string) ([]byte, objstore.WorkStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.objects[bucket+"/"+key]
	if !ok {
		return nil, objstore.WorkStats{}, fmt.Errorf("fakeStore: no object %s/%s", bucket, key)
	}
	return data, objstore.WorkStats{}, nil
}

func (s *fakeStore) Delete(_ context.Context, bucket, key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.objects, bucket+"/"+key)
	s.deletes++
	return nil
}

func (s *fakeStore) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.objects)
}

func eventSchema() *types.Schema {
	return types.NewSchema(
		types.Column{Name: "id", Type: types.Int64},
		types.Column{Name: "name", Type: types.String},
	)
}

func eventSpec() TableSpec {
	return TableSpec{Schema: "default", Name: "events", Bucket: "events", Columns: eventSchema()}
}

func newTestIngester(t *testing.T, flushRows int) (*Ingester, *metastore.Metastore, *fakeStore) {
	t.Helper()
	ms := metastore.New()
	store := newFakeStore()
	ing := NewIngester(ms, store, Options{FlushRows: flushRows})
	if err := ing.CreateTable(eventSpec()); err != nil {
		t.Fatal(err)
	}
	return ing, ms, store
}

func intRow(id int64, name string) []types.Value {
	return []types.Value{types.IntValue(id), types.StringValue(name)}
}

func TestIngestBuilderStats(t *testing.T) {
	b := NewObjectBuilder(eventSchema(), parquetlite.WriterOptions{})
	rows := [][]types.Value{
		intRow(5, "a"),
		intRow(1, "b"),
		intRow(9, "a"),
		{types.IntValue(3), types.NullValue(types.String)},
	}
	for _, r := range rows {
		if err := b.AppendRow(r...); err != nil {
			t.Fatal(err)
		}
	}
	sealed, err := b.Seal()
	if err != nil {
		t.Fatal(err)
	}
	if sealed.Rows != 4 || int64(len(sealed.Image)) != sealed.Bytes {
		t.Errorf("sealed rows=%d bytes=%d image=%d", sealed.Rows, sealed.Bytes, len(sealed.Image))
	}
	id := sealed.Stats["id"]
	if id.Min.I != 1 || id.Max.I != 9 || id.NumValues != 4 || id.NullCount != 0 || id.NDV != 4 {
		t.Errorf("id stats = %+v", id)
	}
	name := sealed.Stats["name"]
	if name.Min.S != "a" || name.Max.S != "b" || name.NullCount != 1 || name.NDV != 2 {
		t.Errorf("name stats = %+v", name)
	}
	// The image round-trips through the reader it'll be scanned with.
	r, err := parquetlite.NewReader(sealed.Image)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumRows() != 4 {
		t.Errorf("reader rows = %d", r.NumRows())
	}
}

func TestIngestBuilderArity(t *testing.T) {
	b := NewObjectBuilder(eventSchema(), parquetlite.WriterOptions{})
	if err := b.AppendRow(types.IntValue(1)); err == nil {
		t.Error("short row accepted")
	}
}

func TestIngestFlushThreshold(t *testing.T) {
	ing, ms, store := newTestIngester(t, 4)
	ctx := context.Background()
	var rows [][]types.Value
	for i := 0; i < 10; i++ {
		rows = append(rows, intRow(int64(i), fmt.Sprintf("n%d", i)))
	}
	n, err := ing.Append(ctx, "default", "events", rows)
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Errorf("accepted %d rows", n)
	}
	// 10 rows at FlushRows=4 → two sealed objects, two rows buffered.
	tbl, _ := ms.Get("default", "events")
	if len(tbl.Objects) != 2 || tbl.RowCount != 8 {
		t.Errorf("after append: %d objects, %d rows", len(tbl.Objects), tbl.RowCount)
	}
	if got := ing.BufferedRows("default", "events"); got != 2 {
		t.Errorf("buffered = %d", got)
	}
	if err := ing.Flush(ctx, "default", "events"); err != nil {
		t.Fatal(err)
	}
	tbl, _ = ms.Get("default", "events")
	if len(tbl.Objects) != 3 || tbl.RowCount != 10 {
		t.Errorf("after flush: %d objects, %d rows", len(tbl.Objects), tbl.RowCount)
	}
	if store.count() != 3 {
		t.Errorf("store has %d objects", store.count())
	}
	// Every committed object carries a zone map covering its rows.
	for _, o := range tbl.Objects {
		st, ok := tbl.ObjectStats[o]
		if !ok || st["id"].NumValues == 0 {
			t.Errorf("object %s missing stats", o)
		}
	}
	// Table-level accounting matches the union.
	if got := tbl.ColumnStats["id"]; got.Min.I != 0 || got.Max.I != 9 || got.NumValues != 10 {
		t.Errorf("table id stats = %+v", got)
	}
}

func TestIngestKilledBeforeCommitLeavesTableUnchanged(t *testing.T) {
	ing, ms, store := newTestIngester(t, 100)
	ctx := context.Background()
	store.failPut = fmt.Errorf("connection killed")

	if _, err := ing.Append(ctx, "default", "events", [][]types.Value{intRow(1, "x")}); err != nil {
		t.Fatal(err)
	}
	if err := ing.Flush(ctx, "default", "events"); err == nil {
		t.Fatal("flush over a dead store succeeded")
	}
	// Put-then-commit: the failed store write means no catalog entry; the
	// table is byte-for-byte the empty table it was.
	tbl, _ := ms.Get("default", "events")
	if len(tbl.Objects) != 0 || tbl.RowCount != 0 {
		t.Errorf("table changed by killed ingest: %d objects, %d rows", len(tbl.Objects), tbl.RowCount)
	}
	if ms.Version("default", "events") != 1 {
		t.Errorf("version = %d", ms.Version("default", "events"))
	}

	// The store recovers; fresh appends work, the dropped batch is gone.
	store.failPut = nil
	if _, err := ing.Append(ctx, "default", "events", [][]types.Value{intRow(2, "y")}); err != nil {
		t.Fatal(err)
	}
	if err := ing.Flush(ctx, "default", "events"); err != nil {
		t.Fatal(err)
	}
	tbl, _ = ms.Get("default", "events")
	if tbl.RowCount != 1 || tbl.ColumnStats["id"].Min.I != 2 {
		t.Errorf("recovered table = %d rows, min id %v", tbl.RowCount, tbl.ColumnStats["id"].Min)
	}
}

func TestCompactMergeSharpensZoneMaps(t *testing.T) {
	ing, ms, store := newTestIngester(t, 4)
	ctx := context.Background()
	// Two objects with interleaved id ranges: each covers nearly the full
	// domain, so per-object pruning is useless before compaction.
	var rows [][]types.Value
	for i := 0; i < 8; i++ {
		id := int64(i%2)*100 + int64(i) // 0,101,2,103,4,105,6,107
		rows = append(rows, intRow(id, "x"))
	}
	if _, err := ing.Append(ctx, "default", "events", rows); err != nil {
		t.Fatal(err)
	}
	before, _ := ms.Get("default", "events")
	if len(before.Objects) != 2 {
		t.Fatalf("setup: %d objects", len(before.Objects))
	}

	comp := NewCompactor(ms, store, CompactorOptions{ClusterBy: "id"})
	res, err := comp.RunOnce(ctx, "default", "events")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Merged) != 2 || res.Output == "" {
		t.Fatalf("result = %+v", res)
	}
	after, _ := ms.Get("default", "events")
	if len(after.Objects) != 1 || after.RowCount != 8 {
		t.Errorf("after compaction: %d objects, %d rows", len(after.Objects), after.RowCount)
	}
	// The merged object is sorted by id: reading it back yields ascending
	// values, and its zone map covers the exact data range.
	img, _, err := store.Get(ctx, "events", res.Output)
	if err != nil {
		t.Fatal(err)
	}
	r, err := parquetlite.NewReader(img)
	if err != nil {
		t.Fatal(err)
	}
	pages, err := r.ReadAll([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	var prev int64 = -1
	for _, p := range pages {
		for i := 0; i < p.NumRows(); i++ {
			v := p.Vectors[0].Value(i)
			if v.I < prev {
				t.Fatalf("merged object not sorted: %d after %d", v.I, prev)
			}
			prev = v.I
		}
	}
	st := after.ObjectStats[res.Output]["id"]
	if st.Min.I != 0 || st.Max.I != 107 || st.NumValues != 8 {
		t.Errorf("merged zone map = %+v", st)
	}
	// No pins outstanding → the replaced objects were physically deleted.
	if res.Reclaimed != 2 || store.count() != 1 {
		t.Errorf("reclaimed=%d, store has %d objects", res.Reclaimed, store.count())
	}
	// A second run finds a single (non-small? still small, but alone)
	// object: nothing to merge.
	res2, err := comp.RunOnce(ctx, "default", "events")
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Merged) != 0 {
		t.Errorf("second run merged %v", res2.Merged)
	}
}

func TestCompactSnapshotDefersPhysicalDelete(t *testing.T) {
	ing, ms, store := newTestIngester(t, 2)
	ctx := context.Background()
	if _, err := ing.Append(ctx, "default", "events", [][]types.Value{
		intRow(1, "a"), intRow(2, "b"), intRow(3, "c"), intRow(4, "d"),
	}); err != nil {
		t.Fatal(err)
	}

	// A long-running scan pins the pre-compaction snapshot.
	snap, pin, err := ms.GetPinned("default", "events")
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Objects) != 2 {
		t.Fatalf("snapshot has %d objects", len(snap.Objects))
	}

	comp := NewCompactor(ms, store, CompactorOptions{})
	res, err := comp.RunOnce(ctx, "default", "events")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Merged) != 2 {
		t.Fatalf("merge did not happen: %+v", res)
	}
	// The swap committed, but the pinned snapshot's objects must still be
	// readable from storage: nothing reclaimed, all three objects present.
	if res.Reclaimed != 0 {
		t.Errorf("reclaimed %d objects under an active pin", res.Reclaimed)
	}
	if store.count() != 3 {
		t.Errorf("store has %d objects, want 3 (2 pinned + 1 merged)", store.count())
	}
	for _, o := range snap.Objects {
		if _, _, err := store.Get(ctx, "events", o); err != nil {
			t.Errorf("pinned object %s gone from storage: %v", o, err)
		}
	}

	// Scan finishes → pin released → next run garbage-collects.
	pin.Release()
	res2, err := comp.RunOnce(ctx, "default", "events")
	if err != nil {
		t.Fatal(err)
	}
	if res2.Reclaimed != 2 || store.count() != 1 {
		t.Errorf("after release: reclaimed=%d, store=%d", res2.Reclaimed, store.count())
	}
}

func TestCompactSkipsLargeObjects(t *testing.T) {
	ing, ms, store := newTestIngester(t, 4)
	ctx := context.Background()
	var rows [][]types.Value
	for i := 0; i < 8; i++ {
		rows = append(rows, intRow(int64(i), "x"))
	}
	if _, err := ing.Append(ctx, "default", "events", rows); err != nil {
		t.Fatal(err)
	}
	// Threshold below any object size → no candidates, no merge.
	comp := NewCompactor(ms, store, CompactorOptions{SmallBytes: 1})
	res, err := comp.RunOnce(ctx, "default", "events")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Merged) != 0 || res.Output != "" {
		t.Errorf("merged large objects: %+v", res)
	}
}

func TestIngestAssembleTableRejectsMismatch(t *testing.T) {
	if _, err := AssembleTable(eventSpec(), []string{"a"}, nil, nil); err == nil {
		t.Error("key/object mismatch accepted")
	}
}

func TestIngestCreateTableNeedsBucket(t *testing.T) {
	ing := NewIngester(metastore.New(), newFakeStore(), Options{})
	spec := eventSpec()
	spec.Bucket = ""
	if err := ing.CreateTable(spec); err == nil {
		t.Error("bucketless table accepted")
	}
}

func TestIngestFlushAllAndBackgroundCompactorLoop(t *testing.T) {
	ing, ms, store := newTestIngester(t, 100)
	ctx := context.Background()
	if _, err := ing.Append(ctx, "default", "events", [][]types.Value{
		intRow(1, "a"), intRow(2, "b"), intRow(3, "c"),
	}); err != nil {
		t.Fatal(err)
	}
	if err := ing.FlushAll(ctx); err != nil {
		t.Fatal(err)
	}
	if err := ing.FlushAll(ctx); err != nil { // empty buffers are a no-op
		t.Fatal(err)
	}
	tbl, _ := ms.Get("default", "events")
	if tbl.RowCount != 3 {
		t.Fatalf("FlushAll committed %d rows", tbl.RowCount)
	}
	// More small objects for the loop to fold.
	if _, err := ing.Append(ctx, "default", "events", [][]types.Value{intRow(4, "d")}); err != nil {
		t.Fatal(err)
	}
	if err := ing.FlushAll(ctx); err != nil {
		t.Fatal(err)
	}

	reg := telemetry.NewRegistry()
	comp := NewCompactor(ms, store, CompactorOptions{Telemetry: reg})
	comp.Start(ctx, "default", "events", time.Millisecond)
	deadline := time.Now().Add(5 * time.Second)
	for {
		tbl, _ = ms.Get("default", "events")
		if len(tbl.Objects) == 1 && ms.TombstoneCount("default", "events") == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background loop never converged: %d objects", len(tbl.Objects))
		}
		time.Sleep(time.Millisecond)
	}
	comp.Stop()
	comp.Stop() // idempotent
	if tbl.RowCount != 4 {
		t.Errorf("rows after background compaction = %d", tbl.RowCount)
	}
	if reg.CounterValue(telemetry.MetricCompactRuns, "table", "events") == 0 {
		t.Error("compaction runs counter never moved")
	}
}

func TestIngestBuilderRawBytesAndDistinctMerge(t *testing.T) {
	a := NewObjectBuilder(eventSchema(), parquetlite.WriterOptions{})
	b := NewObjectBuilder(eventSchema(), parquetlite.WriterOptions{})
	if err := a.AppendRow(intRow(1, "xy")...); err != nil {
		t.Fatal(err)
	}
	if err := b.AppendRow(intRow(1, "zw")...); err != nil {
		t.Fatal(err)
	}
	// id (8) + string (len 2 + 8).
	if got := a.RawBytes(); got != 18 {
		t.Errorf("RawBytes = %d, want 18", got)
	}
	global := []map[string]bool{make(map[string]bool), make(map[string]bool)}
	a.MergeDistinctInto(global)
	b.MergeDistinctInto(global)
	// Both rows share id=1; names differ.
	if len(global[0]) != 1 || len(global[1]) != 2 {
		t.Errorf("merged distincts = %d, %d", len(global[0]), len(global[1]))
	}
}

func TestIngestAssembleTableExactNDVOverride(t *testing.T) {
	a := NewObjectBuilder(eventSchema(), parquetlite.WriterOptions{})
	b := NewObjectBuilder(eventSchema(), parquetlite.WriterOptions{})
	for i := int64(0); i < 4; i++ {
		if err := a.AppendRow(intRow(i, "s")...); err != nil {
			t.Fatal(err)
		}
		if err := b.AppendRow(intRow(i, "s")...); err != nil { // same ids again
			t.Fatal(err)
		}
	}
	sa, err := a.Seal()
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.Seal()
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := AssembleTable(eventSpec(), []string{"x-000.pql", "x-001.pql"},
		[]SealedObject{sa, sb}, map[string]int64{"id": 4})
	if err != nil {
		t.Fatal(err)
	}
	// Without the override the summed per-object NDV (8) double-counts
	// the shared ids; the exact override records 4.
	if got := tbl.ColumnStats["id"].NDV; got != 4 {
		t.Errorf("exact NDV = %d, want 4", got)
	}
	// No override for name → per-object sum capped at the value count.
	if got := tbl.ColumnStats["name"].NDV; got != 2 {
		t.Errorf("summed NDV = %d, want 2", got)
	}
	if tbl.RowCount != 8 || len(tbl.Objects) != 2 {
		t.Errorf("assembled table = %d rows, %d objects", tbl.RowCount, len(tbl.Objects))
	}
	if err := RegisterTable(metastore.New(), tbl); err != nil {
		t.Errorf("RegisterTable: %v", err)
	}
}
