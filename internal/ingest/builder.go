// Package ingest implements the write path: buffering rows into
// parquetlite objects with complete statistics (ObjectBuilder), the
// streaming append endpoint behind engine.Ingest (Ingester), and the
// background small-object compactor with snapshot-safe garbage
// collection (Compactor). It is the only package allowed to assemble
// and register metastore tables — the `vet-ingest` gate enforces that
// every catalog registration flows through here, so no table ever
// enters the metastore without fresh per-object zone maps.
package ingest

import (
	"fmt"

	"prestocs/internal/column"
	"prestocs/internal/compress"
	"prestocs/internal/metastore"
	"prestocs/internal/parquetlite"
	"prestocs/internal/types"
)

// ObjectBuilder accumulates rows into one parquetlite object while
// tracking, in the same pass, everything the metastore needs to make
// the object prunable the moment it is registered: per-column min/max
// and null counts come from the file footer, and exact distinct-value
// counts come from the builder's own tracking (footers do not carry
// NDV). This is the single writer implementation: engine ingest, the
// compactor and the workload generators all produce objects through it.
type ObjectBuilder struct {
	schema   *types.Schema
	w        *parquetlite.Writer
	rows     int64
	raw      int64
	distinct []map[string]bool
}

// NewObjectBuilder starts an object with the given schema.
func NewObjectBuilder(schema *types.Schema, opts parquetlite.WriterOptions) *ObjectBuilder {
	b := &ObjectBuilder{
		schema:   schema,
		w:        parquetlite.NewWriter(schema, opts),
		distinct: make([]map[string]bool, schema.Len()),
	}
	for i := range b.distinct {
		b.distinct[i] = make(map[string]bool)
	}
	return b
}

// AppendRow buffers one row.
func (b *ObjectBuilder) AppendRow(vals ...types.Value) error {
	if len(vals) != b.schema.Len() {
		return fmt.Errorf("ingest: row has %d values, schema has %d columns", len(vals), b.schema.Len())
	}
	for i, v := range vals {
		if !v.Null {
			b.distinct[i][v.String()] = true
		}
		b.raw += rawSize(v)
	}
	b.rows++
	return b.w.WriteRow(vals...)
}

// AppendPage buffers all rows of a page.
func (b *ObjectBuilder) AppendPage(p *column.Page) error {
	for i := 0; i < p.NumRows(); i++ {
		if err := b.AppendRow(p.Row(i)...); err != nil {
			return err
		}
	}
	return nil
}

// Rows reports the buffered row count.
func (b *ObjectBuilder) Rows() int64 { return b.rows }

// RawBytes reports the approximate uncompressed volume buffered so far
// (for flush thresholds and reporting).
func (b *ObjectBuilder) RawBytes() int64 { return b.raw }

// MergeDistinctInto folds this object's distinct-value sets into
// table-wide sets, so callers building many objects (the workload
// generators) can compute exact table-level NDV.
func (b *ObjectBuilder) MergeDistinctInto(global []map[string]bool) {
	for i, set := range b.distinct {
		for v := range set {
			global[i][v] = true
		}
	}
}

// SealedObject is a finished object image plus the bookkeeping the
// metastore commit needs.
type SealedObject struct {
	Image []byte
	Rows  int64
	Bytes int64
	// Stats is the per-column zone map, with exact NDV for the rows in
	// this object.
	Stats map[string]metastore.ColumnStats
}

// Seal finishes the file and computes its zone map from the footer it
// just wrote (one source of truth) plus the tracked distinct counts.
// The builder must not be reused afterwards.
func (b *ObjectBuilder) Seal() (SealedObject, error) {
	img, err := b.w.Finish()
	if err != nil {
		return SealedObject{}, err
	}
	r, err := parquetlite.NewReader(img)
	if err != nil {
		return SealedObject{}, err
	}
	stats := make(map[string]metastore.ColumnStats, b.schema.Len())
	for ci, c := range b.schema.Columns {
		st := r.ColumnStats(ci)
		stats[c.Name] = metastore.ColumnStats{
			Min:       st.Min,
			Max:       st.Max,
			NullCount: st.NullCount,
			NumValues: st.NumValues,
			NDV:       int64(len(b.distinct[ci])),
		}
	}
	return SealedObject{Image: img, Rows: b.rows, Bytes: int64(len(img)), Stats: stats}, nil
}

// rawSize approximates the in-memory width of one value, mirroring
// column.Vector accounting closely enough for flush thresholds.
func rawSize(v types.Value) int64 {
	if v.Kind == types.String {
		return int64(len(v.S)) + 8
	}
	return 8
}

// TableSpec names and shapes a table being assembled from sealed
// objects.
type TableSpec struct {
	Schema       string
	Name         string
	Bucket       string
	Columns      *types.Schema
	Codec        compress.Codec
	DisjointKeys []string
}

// AssembleTable builds a registerable catalog entry from sealed
// objects: per-object zone maps, per-object sizes, and table-level
// column stats merged across objects. exactNDV overrides the table
// NDV per column (the generators track distincts across all objects);
// when nil, NDV falls back to the sum of per-object NDVs capped at the
// value count — an overestimate when values span objects, but safe for
// selectivity purposes. keys and objs are parallel.
func AssembleTable(spec TableSpec, keys []string, objs []SealedObject, exactNDV map[string]int64) (*metastore.Table, error) {
	if len(keys) != len(objs) {
		return nil, fmt.Errorf("ingest: %d keys for %d sealed objects", len(keys), len(objs))
	}
	t := &metastore.Table{
		Schema:       spec.Schema,
		Name:         spec.Name,
		Columns:      spec.Columns,
		Bucket:       spec.Bucket,
		Codec:        spec.Codec,
		DisjointKeys: spec.DisjointKeys,
		ColumnStats:  make(map[string]metastore.ColumnStats, spec.Columns.Len()),
		ObjectStats:  make(map[string]map[string]metastore.ColumnStats, len(keys)),
		ObjectBytes:  make(map[string]int64, len(keys)),
	}
	for i, key := range keys {
		t.Objects = append(t.Objects, key)
		t.ObjectStats[key] = objs[i].Stats
		t.ObjectBytes[key] = objs[i].Bytes
		t.RowCount += objs[i].Rows
		t.TotalBytes += objs[i].Bytes
	}
	for _, c := range spec.Columns.Columns {
		merged := metastore.ColumnStats{
			Min: types.NullValue(c.Type),
			Max: types.NullValue(c.Type),
		}
		for i := range objs {
			st := objs[i].Stats[c.Name]
			merged.NullCount += st.NullCount
			merged.NumValues += st.NumValues
			if !st.Min.Null && (merged.Min.Null || types.Compare(st.Min, merged.Min) < 0) {
				merged.Min = st.Min
			}
			if !st.Max.Null && (merged.Max.Null || types.Compare(st.Max, merged.Max) > 0) {
				merged.Max = st.Max
			}
			merged.NDV += st.NDV
		}
		if n, ok := exactNDV[c.Name]; ok {
			merged.NDV = n
		}
		if merged.NDV > merged.NumValues {
			merged.NDV = merged.NumValues
		}
		t.ColumnStats[c.Name] = merged
	}
	return t, nil
}

// RegisterTable installs an assembled table in the metastore. It exists
// so callers outside this package register catalogs through the ingest
// path (the vet-ingest gate bans direct registration elsewhere).
func RegisterTable(ms *metastore.Metastore, t *metastore.Table) error {
	return ms.Register(t)
}
