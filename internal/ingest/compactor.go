package ingest

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"prestocs/internal/column"
	"prestocs/internal/metastore"
	"prestocs/internal/objstore"
	"prestocs/internal/parquetlite"
	"prestocs/internal/telemetry"
	"prestocs/internal/types"
)

// CompactorStore is the storage dependency of the compactor: it reads
// small objects back, writes the merged object, and physically deletes
// reaped tombstones. ocsserver.Client satisfies it.
type CompactorStore interface {
	ObjectWriter
	Get(ctx context.Context, bucket, key string) ([]byte, objstore.WorkStats, error)
	Delete(ctx context.Context, bucket, key string) error
}

// CompactorOptions tunes a Compactor.
type CompactorOptions struct {
	// SmallBytes marks objects below this stored size as merge
	// candidates (default 1 MiB).
	SmallBytes int64
	// MaxMerge caps source objects folded per run (default 16).
	MaxMerge int
	// ClusterBy names the column the merged object is re-sorted on to
	// sharpen its zone map. Empty picks the table's first disjoint key,
	// else the first column.
	ClusterBy string
	// Telemetry, when set, receives compaction counters and the
	// snapshot-pins gauge.
	Telemetry *telemetry.Registry
}

// CompactionResult reports one compaction run.
type CompactionResult struct {
	// Merged lists the source objects folded into Output (empty when
	// there was nothing to do).
	Merged []string
	// Output is the new object key ("" when no merge happened).
	Output string
	// OutputBytes is the merged object's stored size.
	OutputBytes int64
	// Reclaimed counts tombstoned objects physically deleted this run.
	Reclaimed int
}

// Compactor merges small objects into larger re-sorted ones in the
// background. A run is snapshot-safe by construction: the merged data
// is written under a NEW key, the object-set swap is one atomic
// metastore commit, and the replaced objects are only physically
// deleted after every query pin taken before the swap has been
// released — a scan planned against the old object set keeps reading
// the old objects untouched.
type Compactor struct {
	meta  *metastore.Metastore
	store CompactorStore
	opts  CompactorOptions

	wg   sync.WaitGroup
	stop chan struct{}
	once sync.Once
}

// NewCompactor builds a compactor over meta and store.
func NewCompactor(meta *metastore.Metastore, store CompactorStore, opts CompactorOptions) *Compactor {
	if opts.SmallBytes <= 0 {
		opts.SmallBytes = 1 << 20
	}
	if opts.MaxMerge <= 0 {
		opts.MaxMerge = 16
	}
	return &Compactor{meta: meta, store: store, opts: opts, stop: make(chan struct{})}
}

// RunOnce performs at most one merge on the table, then garbage-collects
// any tombstones no snapshot can still reference.
func (c *Compactor) RunOnce(ctx context.Context, schema, name string) (CompactionResult, error) {
	var res CompactionResult
	t, err := c.meta.Get(schema, name)
	if err != nil {
		return res, err
	}
	cands := c.candidates(t)
	if len(cands) >= 2 {
		out, outBytes, err := c.merge(ctx, t, cands, schema, name)
		if err != nil {
			return res, err
		}
		res.Merged, res.Output, res.OutputBytes = cands, out, outBytes
	}
	res.Reclaimed = c.collectGarbage(ctx, schema, name)
	if reg := c.opts.Telemetry; reg != nil {
		label := []string{"table", name}
		reg.Counter(telemetry.MetricCompactRuns, label...).Inc()
		reg.Counter(telemetry.MetricCompactMerged, label...).Add(int64(len(res.Merged)))
		reg.Counter(telemetry.MetricCompactBytes, label...).Add(res.OutputBytes)
		reg.Counter(telemetry.MetricCompactReclaimed, label...).Add(int64(res.Reclaimed))
		reg.Gauge(telemetry.MetricSnapshotPins).Set(int64(c.meta.PinnedCount()))
	}
	return res, nil
}

// candidates picks the small objects to merge, oldest-first in live-set
// order. Objects without recorded sizes (legacy catalogs) are skipped.
func (c *Compactor) candidates(t *metastore.Table) []string {
	var out []string
	for _, o := range t.Objects {
		b, ok := t.ObjectBytes[o]
		if !ok || b >= c.opts.SmallBytes {
			continue
		}
		out = append(out, o)
		if len(out) == c.opts.MaxMerge {
			break
		}
	}
	return out
}

// merge reads the candidate objects, re-sorts their union by the
// clustering key, writes the merged object under a fresh key and
// commits the swap.
func (c *Compactor) merge(ctx context.Context, t *metastore.Table, cands []string, schema, name string) (string, int64, error) {
	page := column.NewPage(t.Columns)
	allCols := make([]int, t.Columns.Len())
	for i := range allCols {
		allCols[i] = i
	}
	for _, key := range cands {
		img, _, err := c.store.Get(ctx, t.Bucket, key)
		if err != nil {
			return "", 0, fmt.Errorf("ingest: compaction read %s/%s: %w", t.Bucket, key, err)
		}
		r, err := parquetlite.NewReader(img)
		if err != nil {
			return "", 0, err
		}
		pages, err := r.ReadAll(allCols)
		if err != nil {
			return "", 0, err
		}
		for _, p := range pages {
			page.AppendPage(p)
		}
	}
	sorted := c.resort(t, page)
	builder := NewObjectBuilder(t.Columns, parquetlite.WriterOptions{Codec: t.Codec, RowGroupSize: 4096})
	if err := builder.AppendPage(sorted); err != nil {
		return "", 0, err
	}
	sealed, err := builder.Seal()
	if err != nil {
		return "", 0, err
	}
	out := fmt.Sprintf("%s-compact-%06d.pql", name, c.meta.NextObjectSeq(schema, name))
	if err := c.store.Put(ctx, t.Bucket, out, sealed.Image); err != nil {
		return "", 0, fmt.Errorf("ingest: storing compacted %s/%s: %w", t.Bucket, out, err)
	}
	add := metastore.ObjectAdd{Key: out, Bytes: sealed.Bytes, Rows: sealed.Rows, Stats: sealed.Stats}
	if _, err := c.meta.CommitObjects(schema, name, []metastore.ObjectAdd{add}, cands); err != nil {
		return "", 0, err
	}
	return out, sealed.Bytes, nil
}

// resort orders the merged rows by the clustering key so the output
// object's zone map covers a tight range instead of the union of its
// sources.
func (c *Compactor) resort(t *metastore.Table, page *column.Page) *column.Page {
	col := c.opts.ClusterBy
	if col == "" {
		if len(t.DisjointKeys) > 0 {
			col = t.DisjointKeys[0]
		} else {
			col = t.Columns.Columns[0].Name
		}
	}
	ci := t.Columns.IndexOf(col)
	if ci < 0 {
		return page
	}
	vec := page.Vectors[ci]
	idx := make([]int, page.NumRows())
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		na, nb := vec.IsNull(idx[a]), vec.IsNull(idx[b])
		if na || nb {
			return na && !nb // NULLs first, stable among themselves
		}
		return types.Compare(vec.Value(idx[a]), vec.Value(idx[b])) < 0
	})
	return page.Gather(idx)
}

// collectGarbage physically deletes tombstoned objects no outstanding
// pin can reference. Delete failures are swallowed: the object already
// left the live set, so a leftover is an invisible orphan retried by
// no one — acceptable, and logged by the storage layer.
func (c *Compactor) collectGarbage(ctx context.Context, schema, name string) int {
	reaped := c.meta.ReapTombstones(schema, name)
	n := 0
	for _, ts := range reaped {
		if err := c.store.Delete(ctx, ts.Bucket, ts.Key); err == nil {
			n++
		}
	}
	return n
}

// Start launches a background loop compacting the table every interval
// until Stop (or ctx cancellation).
func (c *Compactor) Start(ctx context.Context, schema, name string, interval time.Duration) {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-c.stop:
				return
			case <-tick.C:
				// Errors are reported through telemetry-visible absence of
				// progress; the loop keeps trying.
				_, _ = c.RunOnce(ctx, schema, name)
			}
		}
	}()
}

// Stop halts background loops and waits for them to exit.
func (c *Compactor) Stop() {
	c.once.Do(func() { close(c.stop) })
	c.wg.Wait()
}
