package ingest

import (
	"context"
	"fmt"
	"sync"
	"time"

	"prestocs/internal/metastore"
	"prestocs/internal/parquetlite"
	"prestocs/internal/telemetry"
	"prestocs/internal/types"
)

// ObjectWriter is the storage dependency of the ingester: Put through
// the OCS frontend (ocsserver.Client) or any equivalent store.
type ObjectWriter interface {
	Put(ctx context.Context, bucket, key string, data []byte) error
}

// Options tunes an Ingester.
type Options struct {
	// FlushRows caps buffered rows per table before a flush seals an
	// object (default 4096). Small on purpose: fresh data becomes
	// queryable quickly and the compactor merges the small objects later.
	FlushRows int
	// RowGroupSize is passed to the parquetlite writer (default 4096,
	// matching the workload generators).
	RowGroupSize int
	// Telemetry, when set, receives ingest counters.
	Telemetry *telemetry.Registry
}

// Ingester buffers appended rows per table and turns them into
// parquetlite objects registered with fresh zone maps. Durability
// ordering is put-then-commit: the object is stored before the
// metastore commit makes it visible, so an ingest killed between the
// two leaves only an invisible orphan — never a catalog entry pointing
// at missing data, and never a partial object in the live set.
type Ingester struct {
	meta  *metastore.Metastore
	store ObjectWriter
	opts  Options

	mu   sync.Mutex
	bufs map[string]*tableBuffer
}

type tableBuffer struct {
	schema  string
	name    string
	builder *ObjectBuilder
}

// NewIngester builds an ingester writing through store and committing
// to meta.
func NewIngester(meta *metastore.Metastore, store ObjectWriter, opts Options) *Ingester {
	if opts.FlushRows <= 0 {
		opts.FlushRows = 4096
	}
	if opts.RowGroupSize <= 0 {
		opts.RowGroupSize = 4096
	}
	return &Ingester{meta: meta, store: store, opts: opts, bufs: make(map[string]*tableBuffer)}
}

// CreateTable registers an empty table the ingest path can append to.
func (ing *Ingester) CreateTable(spec TableSpec) error {
	if spec.Bucket == "" {
		return fmt.Errorf("ingest: table %s.%s needs a bucket", spec.Schema, spec.Name)
	}
	t, err := AssembleTable(spec, nil, nil, nil)
	if err != nil {
		return err
	}
	return ing.meta.Register(t)
}

// Append buffers rows for the table, sealing and committing an object
// every FlushRows rows. Rows must already match the table schema in
// arity and kind (the analyzer coerces INSERT literals before they get
// here). Returns the number of rows accepted.
func (ing *Ingester) Append(ctx context.Context, schema, name string, rows [][]types.Value) (int64, error) {
	t, err := ing.meta.Get(schema, name)
	if err != nil {
		return 0, err
	}
	key := schema + "." + name
	ing.mu.Lock()
	defer ing.mu.Unlock()
	buf := ing.bufs[key]
	if buf == nil {
		buf = &tableBuffer{schema: schema, name: name}
		ing.bufs[key] = buf
	}
	var accepted int64
	for _, row := range rows {
		// flushLocked spends the builder; start a fresh object lazily.
		if buf.builder == nil {
			buf.builder = ing.newBuilder(t)
		}
		if err := buf.builder.AppendRow(row...); err != nil {
			return accepted, err
		}
		accepted++
		if buf.builder.Rows() >= int64(ing.opts.FlushRows) {
			if err := ing.flushLocked(ctx, buf); err != nil {
				return accepted, err
			}
		}
	}
	return accepted, nil
}

// Flush seals and commits any buffered rows for the table, making them
// queryable. No-op when the buffer is empty.
func (ing *Ingester) Flush(ctx context.Context, schema, name string) error {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	buf := ing.bufs[schema+"."+name]
	if buf == nil || buf.builder == nil || buf.builder.Rows() == 0 {
		return nil
	}
	return ing.flushLocked(ctx, buf)
}

// FlushAll flushes every table with buffered rows.
func (ing *Ingester) FlushAll(ctx context.Context) error {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	for _, buf := range ing.bufs {
		if buf.builder == nil || buf.builder.Rows() == 0 {
			continue
		}
		if err := ing.flushLocked(ctx, buf); err != nil {
			return err
		}
	}
	return nil
}

// BufferedRows reports rows accepted but not yet committed for the
// table (visible to tests and the CLI).
func (ing *Ingester) BufferedRows(schema, name string) int64 {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	buf := ing.bufs[schema+"."+name]
	if buf == nil || buf.builder == nil {
		return 0
	}
	return buf.builder.Rows()
}

func (ing *Ingester) newBuilder(t *metastore.Table) *ObjectBuilder {
	return NewObjectBuilder(t.Columns, parquetlite.WriterOptions{
		Codec:        t.Codec,
		RowGroupSize: ing.opts.RowGroupSize,
	})
}

// flushLocked seals the buffer into an object, stores it, then commits
// it to the metastore — in that order. Caller holds ing.mu.
func (ing *Ingester) flushLocked(ctx context.Context, buf *tableBuffer) error {
	start := time.Now()
	t, err := ing.meta.Get(buf.schema, buf.name)
	if err != nil {
		return err
	}
	sealed, err := buf.builder.Seal()
	if err != nil {
		return err
	}
	// The builder is spent whether or not the store/commit below
	// succeeds; a failed flush drops the batch (the caller sees the
	// error) rather than re-sealing a finished writer.
	buf.builder = nil
	key := fmt.Sprintf("%s-ingest-%06d.pql", buf.name, ing.meta.NextObjectSeq(buf.schema, buf.name))
	if err := ing.store.Put(ctx, t.Bucket, key, sealed.Image); err != nil {
		return fmt.Errorf("ingest: storing %s/%s: %w", t.Bucket, key, err)
	}
	add := metastore.ObjectAdd{Key: key, Bytes: sealed.Bytes, Rows: sealed.Rows, Stats: sealed.Stats}
	if _, err := ing.meta.CommitObjects(buf.schema, buf.name, []metastore.ObjectAdd{add}, nil); err != nil {
		return err
	}
	if reg := ing.opts.Telemetry; reg != nil {
		label := []string{"table", buf.name}
		reg.Counter(telemetry.MetricIngestRows, label...).Add(sealed.Rows)
		reg.Counter(telemetry.MetricIngestObjects, label...).Inc()
		reg.Counter(telemetry.MetricIngestBytes, label...).Add(sealed.Bytes)
		reg.Histogram(telemetry.MetricIngestFlushUs, label...).ObserveDuration(time.Since(start))
	}
	return nil
}
