// Package costmodel prices measured query executions with the paper's
// Table 1 hardware profiles, producing deterministic "modeled" times that
// reproduce the evaluation's shape on scaled-down datasets (see DESIGN.md
// §2, testbed substitution).
//
// Every experiment runs for real — the engine executes against OCS and
// object-store servers over loopback TCP, and every byte moved, byte read
// from media and abstract CPU unit spent is metered. The cost model then
// answers: "how long would this have taken on the paper's testbed?" by
// pricing
//
//	storage I/O      at the storage node's media bandwidth,
//	storage CPU      at 16 cores × 2.0 GHz,
//	network transfer at 10 GbE,
//	compute CPU      at 64 cores × 2.9 GHz,
//
// and summing the stages. Because expression work is metered in the same
// abstract units on both sides, pushing compute-heavy operators to the
// weak storage node gets 5.8× more expensive per unit — which is exactly
// how the paper's "projection pushdown slowdown" (Q2) emerges here.
package costmodel

import (
	"fmt"
	"runtime"
	"time"
)

// NodeProfile describes one machine class from Table 1.
type NodeProfile struct {
	Name  string
	Cores int
	GHz   float64
	MemGB int
}

// Capacity returns the node's abstract compute capacity (core-GHz).
func (n NodeProfile) Capacity() float64 { return float64(n.Cores) * n.GHz }

// Table 1 hardware profiles.
var (
	// DefaultComputeNode is the Presto coordinator+worker machine
	// (Xeon Gold 6226R).
	DefaultComputeNode = NodeProfile{Name: "compute", Cores: 64, GHz: 2.9, MemGB: 384}
	// DefaultFrontendNode is the OCS frontend (Xeon Silver 4410Y).
	DefaultFrontendNode = NodeProfile{Name: "frontend", Cores: 48, GHz: 3.9, MemGB: 64}
	// DefaultStorageNode is the resource-constrained OCS storage node.
	DefaultStorageNode = NodeProfile{Name: "storage", Cores: 16, GHz: 2.0, MemGB: 64}
)

// Params bundles the testbed constants.
type Params struct {
	Compute  NodeProfile
	Frontend NodeProfile
	Storage  NodeProfile
	// NetworkBytesPerSec is the compute↔storage link (10 GbE).
	NetworkBytesPerSec float64
	// MediaBytesPerSec is the storage node's NVMe read bandwidth.
	MediaBytesPerSec float64
	// SecondsPerUnit converts one abstract CPU unit on a 1 core-GHz
	// machine into seconds. All relative results are insensitive to it;
	// it sets the absolute scale.
	SecondsPerUnit float64
	// RPCOverheadSec is fixed per-request latency (connection + frame
	// handling) charged per storage round trip.
	RPCOverheadSec float64
	// IngestOverhead multiplies compute-side result-ingestion units.
	// It models the distributed engine's per-row cost of turning
	// transferred bytes into engine pages (JVM object churn, page
	// building, type conversion, exchange handling) — the reason the
	// paper's Table 3 shows "Presto execution" dominating even after
	// pushdown, and the mechanism by which shipping fewer rows to the
	// engine saves far more than raw wire time.
	IngestOverhead float64
	// BroadcastJoinMaxRows / BroadcastJoinMaxBytes bound the join build
	// side that may be replicated to every leaf worker. A build side
	// exceeding either bound costs more to copy per worker than the
	// repartitioned probe saves, so the engine falls back to the
	// partitioned strategy (probe on the final stage).
	BroadcastJoinMaxRows  int64
	BroadcastJoinMaxBytes int64
}

// BroadcastJoin reports whether a build side of the given measured size
// should be broadcast to the leaf workers rather than probed centrally.
func (p Params) BroadcastJoin(rows, bytes int64) bool {
	maxRows, maxBytes := p.BroadcastJoinMaxRows, p.BroadcastJoinMaxBytes
	if maxRows <= 0 {
		maxRows = Default().BroadcastJoinMaxRows
	}
	if maxBytes <= 0 {
		maxBytes = Default().BroadcastJoinMaxBytes
	}
	return rows <= maxRows && bytes <= maxBytes
}

// Default returns the paper-testbed parameters.
func Default() Params {
	return Params{
		Compute:            DefaultComputeNode,
		Frontend:           DefaultFrontendNode,
		Storage:            DefaultStorageNode,
		NetworkBytesPerSec: 10e9 / 8, // 10 GbE
		MediaBytesPerSec:   0.5e9,    // SATA-SSD-class read (Table 1: data tier is the 512 GB SATA SSD)
		SecondsPerUnit:     100e-9,   // 100 ns per unit per core-GHz
		RPCOverheadSec:     100e-6,   // 100 µs per round trip
		IngestOverhead:     40.0,
		// Broadcast while the build side fits comfortably in one worker's
		// working set; the scaled-down testbed keeps the same ratio to
		// table sizes as Presto's 100 MB default does at full scale.
		BroadcastJoinMaxRows:  1 << 20,
		BroadcastJoinMaxBytes: 64 << 20,
	}
}

// StorageScanParallelism returns the worker-pool size for the storage
// node's intra-object row-group scan: the modeled storage node's core
// count (Table 1), capped by what the host actually offers so the
// reproduction never oversubscribes real cores with modeled ones.
func StorageScanParallelism() int {
	n := DefaultStorageNode.Cores
	if host := runtime.GOMAXPROCS(0); host < n {
		n = host
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Measured is the metered footprint of one query execution.
type Measured struct {
	// StorageBytesRead is compressed bytes read from media.
	StorageBytesRead int64
	// StorageCPUUnits is abstract CPU spent inside storage (filtering,
	// aggregation, decompression, CSV formatting).
	StorageCPUUnits float64
	// BytesMoved is payload bytes across the network boundary.
	BytesMoved int64
	// ComputeCPUUnits is abstract CPU spent by engine operators on the
	// compute node (residual filters/projections/aggregation/top-N).
	ComputeCPUUnits float64
	// IngestUnits is compute-side result-ingestion work (parquet decode,
	// Arrow deserialization or CSV parsing into engine pages); priced
	// with the IngestOverhead multiplier.
	IngestUnits float64
	// RoundTrips is the number of storage RPCs.
	RoundTrips int64
}

// Breakdown is the modeled wall time per stage.
type Breakdown struct {
	StorageIO  time.Duration
	StorageCPU time.Duration
	Network    time.Duration
	ComputeCPU time.Duration
	Ingest     time.Duration
	RPC        time.Duration
	Total      time.Duration
}

// Model prices a measured execution. Stages are summed (a conservative
// no-overlap pipeline); the paper's trends depend on ratios between
// configurations, which summation preserves.
func (p Params) Model(m Measured) Breakdown {
	var b Breakdown
	if p.MediaBytesPerSec > 0 {
		b.StorageIO = seconds(float64(m.StorageBytesRead) / p.MediaBytesPerSec)
	}
	if cap := p.Storage.Capacity(); cap > 0 {
		b.StorageCPU = seconds(m.StorageCPUUnits * p.SecondsPerUnit / cap)
	}
	if p.NetworkBytesPerSec > 0 {
		b.Network = seconds(float64(m.BytesMoved) / p.NetworkBytesPerSec)
	}
	if cap := p.Compute.Capacity(); cap > 0 {
		b.ComputeCPU = seconds(m.ComputeCPUUnits * p.SecondsPerUnit / cap)
		b.Ingest = seconds(m.IngestUnits * p.IngestOverhead * p.SecondsPerUnit / cap)
	}
	b.RPC = seconds(float64(m.RoundTrips) * p.RPCOverheadSec)
	b.Total = b.StorageIO + b.StorageCPU + b.Network + b.ComputeCPU + b.Ingest + b.RPC
	return b
}

func seconds(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

// String renders the breakdown as a table row.
func (b Breakdown) String() string {
	return fmt.Sprintf("io=%v scpu=%v net=%v ccpu=%v ingest=%v rpc=%v total=%v",
		b.StorageIO, b.StorageCPU, b.Network, b.ComputeCPU, b.Ingest, b.RPC, b.Total)
}
