package costmodel

import (
	"testing"
	"time"
)

func TestCapacities(t *testing.T) {
	if DefaultComputeNode.Capacity() != 64*2.9 {
		t.Errorf("compute capacity = %v", DefaultComputeNode.Capacity())
	}
	if DefaultStorageNode.Capacity() != 32 {
		t.Errorf("storage capacity = %v", DefaultStorageNode.Capacity())
	}
	// The paper's constraint: storage is markedly weaker than compute.
	ratio := DefaultComputeNode.Capacity() / DefaultStorageNode.Capacity()
	if ratio < 5 || ratio > 7 {
		t.Errorf("compute/storage ratio = %v, want ~5.8", ratio)
	}
}

func TestModelStages(t *testing.T) {
	p := Default()
	m := Measured{
		StorageBytesRead: 500_000_000,   // 1 s at 0.5 GB/s
		BytesMoved:       1_250_000_000, // 1 s at 10 GbE
	}
	b := p.Model(m)
	if b.StorageIO < 990*time.Millisecond || b.StorageIO > 1010*time.Millisecond {
		t.Errorf("StorageIO = %v", b.StorageIO)
	}
	if b.Network < 990*time.Millisecond || b.Network > 1010*time.Millisecond {
		t.Errorf("Network = %v", b.Network)
	}
	if b.Total != b.StorageIO+b.StorageCPU+b.Network+b.ComputeCPU+b.RPC {
		t.Error("total is not the stage sum")
	}
}

func TestCPUAsymmetry(t *testing.T) {
	// The same units cost ~5.8x more on the storage node.
	p := Default()
	onStorage := p.Model(Measured{StorageCPUUnits: 1e6})
	onCompute := p.Model(Measured{ComputeCPUUnits: 1e6})
	ratio := float64(onStorage.Total) / float64(onCompute.Total)
	if ratio < 5 || ratio > 7 {
		t.Errorf("storage/compute cpu ratio = %v", ratio)
	}
}

func TestZeroMeasured(t *testing.T) {
	b := Default().Model(Measured{})
	if b.Total != 0 {
		t.Errorf("zero input total = %v", b.Total)
	}
}

func TestRPCOverhead(t *testing.T) {
	p := Default()
	b := p.Model(Measured{RoundTrips: 1000})
	want := time.Duration(1000 * p.RPCOverheadSec * float64(time.Second))
	if b.RPC != want {
		t.Errorf("rpc = %v, want %v", b.RPC, want)
	}
}

func TestStringForm(t *testing.T) {
	b := Default().Model(Measured{BytesMoved: 1000})
	if b.String() == "" {
		t.Error("empty breakdown string")
	}
}

// The load-bearing shape property: moving expression evaluation from
// compute to storage with no byte reduction must increase modeled time
// (paper Q2, projection-pushdown slowdown).
func TestProjectionPushdownSlowdownShape(t *testing.T) {
	p := Default()
	const exprUnits = 5e6
	base := Measured{
		StorageBytesRead: 1e9,
		BytesMoved:       2e8,
		StorageCPUUnits:  1e6,
		ComputeCPUUnits:  exprUnits,
	}
	pushed := base
	pushed.StorageCPUUnits += exprUnits
	pushed.ComputeCPUUnits -= exprUnits
	if p.Model(pushed).Total <= p.Model(base).Total {
		t.Errorf("pushing expressions to weak storage should cost more: %v vs %v",
			p.Model(pushed).Total, p.Model(base).Total)
	}
}

// And the converse: trading storage CPU for a large byte reduction must
// decrease modeled time (aggregation pushdown wins).
func TestAggregationPushdownSpeedupShape(t *testing.T) {
	// 1M filtered rows of 5 columns: without pushdown they cross the
	// network and the engine pays ingestion (1.5 units/cell) plus
	// aggregation (7 units/row); with pushdown the storage node pays the
	// aggregation (same units, weaker node) but almost nothing crosses.
	p := Default()
	const rows = 1e6
	noPush := Measured{
		StorageBytesRead: 1e9,
		BytesMoved:       4e7,
		IngestUnits:      rows * 5 * 1.5,
		ComputeCPUUnits:  rows * 7,
	}
	pushed := Measured{
		StorageBytesRead: 1e9,
		BytesMoved:       1e5,
		StorageCPUUnits:  rows * 7,
	}
	if p.Model(pushed).Total >= p.Model(noPush).Total {
		t.Errorf("aggregation pushdown should win: %v vs %v",
			p.Model(pushed).Total, p.Model(noPush).Total)
	}
}

func TestIngestOverheadApplied(t *testing.T) {
	p := Default()
	asIngest := p.Model(Measured{IngestUnits: 1e6})
	asCPU := p.Model(Measured{ComputeCPUUnits: 1e6})
	ratio := float64(asIngest.Total) / float64(asCPU.Total)
	if ratio < p.IngestOverhead*0.99 || ratio > p.IngestOverhead*1.01 {
		t.Errorf("ingest overhead ratio = %v, want %v", ratio, p.IngestOverhead)
	}
}
