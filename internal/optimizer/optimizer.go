// Package optimizer implements the engine's global (rule-based) optimizer,
// the phase the paper's Figure 3 labels "Logical Optimization". Rules:
//
//  1. FuseSortLimit: Limit(Sort(x)) → TopN, the form OCS can execute.
//  2. PruneColumns: push column projection into the table scan handle so
//     storage reads only referenced columns (object storage's selective
//     column retrieval, §2.2).
//  3. AddExchange: decompose the plan into a distributed leaf stage (per
//     split, on workers) and a final stage (coordinator) — Aggregate
//     splits into partial+final, TopN and Limit replicate, Sort stays
//     final. The connector's local optimizer then runs on the leaf stage.
package optimizer

import (
	"fmt"

	"prestocs/internal/expr"
	"prestocs/internal/plan"
	"prestocs/internal/substrait"
)

// Optimize applies all global rules in order. Join plans take the
// dedicated path: the leaf/final split lands inside the probe branch.
func Optimize(root plan.Node) (plan.Node, error) {
	if plan.FindJoin(root) != nil {
		return optimizeJoin(root)
	}
	root = fuseSortLimit(root)
	root, err := pruneColumns(root)
	if err != nil {
		return nil, err
	}
	return addExchange(root)
}

// optimizeJoin handles plans with a Join node. The probe side is the
// distributed branch, so the Exchange goes directly above it — the
// connector's local optimizer then sees a normal [Exchange, …, Scan]
// leaf chain and can push filters (and later the build side's bloom)
// into storage. The build side is drained centrally before any probe
// split runs, and everything above the join (cross-side filters,
// aggregation, ordering) stays on the final stage. Limit(Sort) above
// the join still fuses into TopN.
func optimizeJoin(root plan.Node) (plan.Node, error) {
	chain, join, err := flattenToJoin(root)
	if err != nil {
		return nil, err
	}
	// Fuse Limit(Sort(x)) → TopN within the above-join chain.
	var above []plan.Node
	for i := 0; i < len(chain); i++ {
		if lim, ok := chain[i].(*plan.Limit); ok && i+1 < len(chain) {
			if srt, ok := chain[i+1].(*plan.Sort); ok {
				above = append(above, &plan.TopN{Keys: srt.Keys, Count: lim.Count})
				i++
				continue
			}
		}
		above = append(above, chain[i])
	}
	if _, err := flatten(&plan.Exchange{Input: join.Probe}); err != nil {
		return nil, fmt.Errorf("optimizer: join probe branch: %w", err)
	}
	if _, err := flatten(join.Build); err != nil {
		return nil, fmt.Errorf("optimizer: join build branch: %w", err)
	}
	node := plan.Node(&plan.Join{
		Probe:     &plan.Exchange{Input: join.Probe},
		Build:     join.Build,
		ProbeKeys: join.ProbeKeys,
		BuildKeys: join.BuildKeys,
		Strategy:  join.Strategy,
	})
	for i := len(above) - 1; i >= 0; i-- {
		next, err := plan.ReplaceChild(above[i], node)
		if err != nil {
			return nil, err
		}
		node = next
	}
	return node, nil
}

// flattenToJoin renders the single-child spine from root down to the
// Join node (exclusive): chain[len-1] is the Join's parent. An empty
// chain means the Join is the root.
func flattenToJoin(root plan.Node) ([]plan.Node, *plan.Join, error) {
	var chain []plan.Node
	n := root
	for {
		if j, ok := n.(*plan.Join); ok {
			return chain, j, nil
		}
		kids := n.Children()
		if len(kids) != 1 {
			return nil, nil, fmt.Errorf("optimizer: unexpected %T above join", n)
		}
		chain = append(chain, n)
		n = kids[0]
	}
}

// flatten renders the linear plan as a slice from root down to the scan.
// Plans in this engine are single-table chains; a non-linear plan is an
// internal error.
func flatten(root plan.Node) ([]plan.Node, error) {
	var chain []plan.Node
	n := root
	for {
		chain = append(chain, n)
		kids := n.(interface{ Children() []plan.Node }).Children()
		switch len(kids) {
		case 0:
			if _, ok := n.(*plan.TableScan); !ok {
				return nil, fmt.Errorf("optimizer: leaf node %T is not a scan", n)
			}
			return chain, nil
		case 1:
			n = kids[0]
		default:
			return nil, fmt.Errorf("optimizer: non-linear plan at %T", n)
		}
	}
}

// rebuild reconstructs a chain (root-first) bottom-up.
func rebuild(chain []plan.Node) (plan.Node, error) {
	node := chain[len(chain)-1]
	for i := len(chain) - 2; i >= 0; i-- {
		next, err := plan.ReplaceChild(chain[i], node)
		if err != nil {
			return nil, err
		}
		node = next
	}
	return node, nil
}

// fuseSortLimit rewrites Limit(Sort(x)) into TopN(x).
func fuseSortLimit(root plan.Node) plan.Node {
	chain, err := flatten(root)
	if err != nil {
		return root
	}
	var out []plan.Node
	for i := 0; i < len(chain); i++ {
		if lim, ok := chain[i].(*plan.Limit); ok && i+1 < len(chain) {
			if srt, ok := chain[i+1].(*plan.Sort); ok {
				out = append(out, &plan.TopN{Keys: srt.Keys, Count: lim.Count})
				i++ // skip the sort
				continue
			}
		}
		out = append(out, chain[i])
	}
	rebuilt, err := rebuild(out)
	if err != nil {
		return root
	}
	return rebuilt
}

// pruneColumns narrows the scan to the columns referenced by the leaf
// filters and the first schema-rebuilding node (Project or Aggregate),
// rewriting their ordinals to the pruned schema. Requires the handle to
// support projection.
func pruneColumns(root plan.Node) (plan.Node, error) {
	chain, err := flatten(root)
	if err != nil {
		return root, nil
	}
	scanIdx := len(chain) - 1
	scan := chain[scanIdx].(*plan.TableScan)
	projectable, ok := scan.Handle.(plan.ProjectableHandle)
	if !ok {
		return root, nil
	}
	baseSchema := scan.Handle.ScanSchema()

	// Walk upward from the scan collecting referenced ordinals until the
	// first schema rebuilder.
	needed := map[int]bool{}
	rebuilderIdx := -1
	for i := scanIdx - 1; i >= 0; i-- {
		switch t := chain[i].(type) {
		case *plan.Filter:
			for _, c := range expr.ReferencedColumns(t.Condition) {
				needed[c] = true
			}
		case *plan.Project:
			for _, e := range t.Expressions {
				for _, c := range expr.ReferencedColumns(e) {
					needed[c] = true
				}
			}
			rebuilderIdx = i
		case *plan.Aggregate:
			for _, k := range t.Keys {
				needed[k] = true
			}
			for _, m := range t.Measures {
				if m.Arg >= 0 {
					needed[m.Arg] = true
				}
			}
			rebuilderIdx = i
		default:
			// Sort/TopN/Limit/Output/Exchange pass the schema through;
			// without a rebuilder every column is needed.
		}
		if rebuilderIdx >= 0 {
			break
		}
	}
	if rebuilderIdx < 0 {
		return root, nil // no rebuilder: all columns remain visible
	}
	if len(needed) >= baseSchema.Len() {
		return root, nil // nothing to prune
	}

	// Build the projection list (sorted) and ordinal remapping.
	var cols []int
	for i := 0; i < baseSchema.Len(); i++ {
		if needed[i] {
			cols = append(cols, i)
		}
	}
	mapping := make(map[int]int, len(cols))
	for newIdx, oldIdx := range cols {
		mapping[oldIdx] = newIdx
	}

	newHandle := projectable.WithProjection(cols)
	out := make([]plan.Node, len(chain))
	copy(out, chain)
	out[scanIdx] = &plan.TableScan{Catalog: scan.Catalog, Table: scan.Table, Handle: newHandle}
	for i := scanIdx - 1; i >= rebuilderIdx; i-- {
		switch t := chain[i].(type) {
		case *plan.Filter:
			cond, err := expr.Remap(t.Condition, mapping)
			if err != nil {
				return nil, err
			}
			out[i] = &plan.Filter{Condition: cond}
		case *plan.Project:
			exprs := make([]expr.Expr, len(t.Expressions))
			for j, e := range t.Expressions {
				re, err := expr.Remap(e, mapping)
				if err != nil {
					return nil, err
				}
				exprs[j] = re
			}
			out[i] = &plan.Project{Expressions: exprs, Names: t.Names}
		case *plan.Aggregate:
			keys := make([]int, len(t.Keys))
			for j, k := range t.Keys {
				keys[j] = mapping[k]
			}
			measures := append([]substrait.Measure(nil), t.Measures...)
			for j := range measures {
				if measures[j].Arg >= 0 {
					measures[j].Arg = mapping[measures[j].Arg]
				}
			}
			out[i] = &plan.Aggregate{Keys: keys, Measures: measures, Step: t.Step}
		}
	}
	return rebuild(out)
}

// addExchange splits the chain into leaf and final stages.
func addExchange(root plan.Node) (plan.Node, error) {
	chain, err := flatten(root)
	if err != nil {
		return nil, err
	}
	// Walk from the scan upward.
	scanIdx := len(chain) - 1
	leaf := chain[scanIdx]
	i := scanIdx - 1
	var finalExtra []plan.Node // nodes to apply right above the exchange, bottom-first

buildLeaf:
	for i >= 0 {
		switch t := chain[i].(type) {
		case *plan.Filter, *plan.Project:
			next, err := plan.ReplaceChild(chain[i], leaf)
			if err != nil {
				return nil, err
			}
			leaf = next
			i--
		case *plan.Aggregate:
			if t.Step != plan.AggSingle {
				return nil, fmt.Errorf("optimizer: unexpected %s aggregate before exchange insertion", t.Step)
			}
			leaf = &plan.Aggregate{Input: leaf, Keys: t.Keys, Measures: t.Measures, Step: plan.AggPartial}
			finalKeys := make([]int, len(t.Keys))
			for j := range t.Keys {
				finalKeys[j] = j
			}
			finalExtra = append(finalExtra, &plan.Aggregate{Keys: finalKeys, Measures: t.Measures, Step: plan.AggFinal})
			i--
			break buildLeaf
		case *plan.TopN:
			leaf = &plan.TopN{Input: leaf, Keys: t.Keys, Count: t.Count, Partial: true}
			finalExtra = append(finalExtra, &plan.TopN{Keys: t.Keys, Count: t.Count})
			i--
			break buildLeaf
		case *plan.Limit:
			leaf = &plan.Limit{Input: leaf, Count: t.Count}
			finalExtra = append(finalExtra, &plan.Limit{Count: t.Count})
			i--
			break buildLeaf
		default:
			// Sort, Output: final-stage only.
			break buildLeaf
		}
	}

	node := plan.Node(&plan.Exchange{Input: leaf})
	for _, extra := range finalExtra {
		next, err := plan.ReplaceChild(extra, node)
		if err != nil {
			return nil, err
		}
		node = next
	}
	// Remaining chain nodes (indices i down to 0 in chain order) wrap on
	// top, bottom-first.
	for ; i >= 0; i-- {
		next, err := plan.ReplaceChild(chain[i], node)
		if err != nil {
			return nil, err
		}
		node = next
	}
	return node, nil
}
