package optimizer

import (
	"strings"
	"testing"

	"prestocs/internal/expr"
	"prestocs/internal/plan"
	"prestocs/internal/substrait"
	"prestocs/internal/types"
)

// stubHandle supports projection so pruneColumns engages.
type stubHandle struct {
	schema *types.Schema
	proj   []int
}

func (h *stubHandle) ConnectorName() string { return "stub" }
func (h *stubHandle) String() string        { return "stub" }
func (h *stubHandle) ScanSchema() *types.Schema {
	if h.proj == nil {
		return h.schema
	}
	return h.schema.Project(h.proj)
}
func (h *stubHandle) WithProjection(cols []int) plan.TableHandle {
	return &stubHandle{schema: h.schema, proj: cols}
}

func baseSchema() *types.Schema {
	return types.NewSchema(
		types.Column{Name: "a", Type: types.Int64},
		types.Column{Name: "b", Type: types.Float64},
		types.Column{Name: "c", Type: types.Float64},
		types.Column{Name: "g", Type: types.String},
	)
}

func scan() *plan.TableScan {
	return &plan.TableScan{Catalog: "cat", Table: "t", Handle: &stubHandle{schema: baseSchema()}}
}

func TestFuseSortLimitToTopN(t *testing.T) {
	pred, _ := expr.NewCompare(expr.Gt, expr.Col(0, "a", types.Int64), expr.Lit(types.IntValue(1)))
	root := plan.Node(&plan.Output{
		Input: &plan.Limit{
			Input: &plan.Sort{
				Input: &plan.Project{
					Input:       &plan.Filter{Input: scan(), Condition: pred},
					Expressions: []expr.Expr{expr.Col(0, "a", types.Int64)},
					Names:       []string{"a"},
				},
				Keys: []plan.SortKey{{Column: 0}},
			},
			Count: 7,
		},
	})
	got, err := Optimize(root)
	if err != nil {
		t.Fatal(err)
	}
	text := plan.Format(got)
	if !strings.Contains(text, "TopN(PARTIAL)[7]") || !strings.Contains(text, "TopN(FINAL)[7]") {
		t.Errorf("sort+limit not fused and distributed:\n%s", text)
	}
	if strings.Contains(text, "Sort[") || strings.Contains(text, "Limit[") {
		t.Errorf("sort/limit remain:\n%s", text)
	}
}

func TestAggregateSplitsPartialFinal(t *testing.T) {
	root := plan.Node(&plan.Output{
		Input: &plan.Aggregate{
			Input: scan(),
			Keys:  []int{3},
			Measures: []substrait.Measure{
				{Func: substrait.AggSum, Arg: 1, Name: "s"},
			},
			Step: plan.AggSingle,
		},
	})
	got, err := Optimize(root)
	if err != nil {
		t.Fatal(err)
	}
	text := plan.Format(got)
	if !strings.Contains(text, "Aggregate(PARTIAL)") || !strings.Contains(text, "Aggregate(FINAL)") {
		t.Errorf("aggregate not split:\n%s", text)
	}
	// Exchange sits between them.
	pIdx := strings.Index(text, "Aggregate(PARTIAL)")
	fIdx := strings.Index(text, "Aggregate(FINAL)")
	eIdx := strings.Index(text, "Exchange")
	if !(fIdx < eIdx && eIdx < pIdx) {
		t.Errorf("exchange not between final and partial:\n%s", text)
	}
	// The final aggregation's keys reference partial output ordinal 0.
	var finalAgg *plan.Aggregate
	plan.Walk(got, func(n plan.Node) {
		if a, ok := n.(*plan.Aggregate); ok && a.Step == plan.AggFinal {
			finalAgg = a
		}
	})
	if finalAgg == nil || len(finalAgg.Keys) != 1 || finalAgg.Keys[0] != 0 {
		t.Errorf("final agg keys = %+v", finalAgg)
	}
}

func TestLimitReplicates(t *testing.T) {
	root := plan.Node(&plan.Output{Input: &plan.Limit{Input: scan(), Count: 3}})
	got, err := Optimize(root)
	if err != nil {
		t.Fatal(err)
	}
	text := plan.Format(got)
	if strings.Count(text, "Limit[3]") != 2 {
		t.Errorf("limit should appear on both sides of the exchange:\n%s", text)
	}
}

func TestColumnPruning(t *testing.T) {
	// SELECT b+1 FROM t WHERE a > 1 — only a and b are needed.
	pred, _ := expr.NewCompare(expr.Gt, expr.Col(0, "a", types.Int64), expr.Lit(types.IntValue(1)))
	add, _ := expr.NewArith(expr.Add, expr.Col(1, "b", types.Float64), expr.Lit(types.FloatValue(1)))
	root := plan.Node(&plan.Output{
		Input: &plan.Project{
			Input:       &plan.Filter{Input: scan(), Condition: pred},
			Expressions: []expr.Expr{add},
			Names:       []string{"b1"},
		},
	})
	got, err := Optimize(root)
	if err != nil {
		t.Fatal(err)
	}
	s := plan.FindScan(got)
	if s.OutputSchema().Len() != 2 {
		t.Fatalf("scan schema = %s, want 2 columns", s.OutputSchema())
	}
	// Remapped filter must still reference "a" at its new ordinal 0.
	var filter *plan.Filter
	plan.Walk(got, func(n plan.Node) {
		if f, ok := n.(*plan.Filter); ok {
			filter = f
		}
	})
	refs := expr.ReferencedColumns(filter.Condition)
	if len(refs) != 1 || refs[0] != 0 {
		t.Errorf("filter refs after pruning = %v", refs)
	}
	// Output schema is preserved.
	if got.OutputSchema().String() != "(b1 DOUBLE)" {
		t.Errorf("output schema = %s", got.OutputSchema())
	}
}

func TestColumnPruningWithAggregate(t *testing.T) {
	// SELECT g, sum(c) GROUP BY g — needs g and c only.
	root := plan.Node(&plan.Output{
		Input: &plan.Aggregate{
			Input:    scan(),
			Keys:     []int{3},
			Measures: []substrait.Measure{{Func: substrait.AggSum, Arg: 2, Name: "s"}},
			Step:     plan.AggSingle,
		},
	})
	got, err := Optimize(root)
	if err != nil {
		t.Fatal(err)
	}
	s := plan.FindScan(got)
	if s.OutputSchema().String() != "(c DOUBLE, g VARCHAR)" {
		t.Fatalf("pruned scan schema = %s", s.OutputSchema())
	}
	var partial *plan.Aggregate
	plan.Walk(got, func(n plan.Node) {
		if a, ok := n.(*plan.Aggregate); ok && a.Step == plan.AggPartial {
			partial = a
		}
	})
	if partial.Keys[0] != 1 || partial.Measures[0].Arg != 0 {
		t.Errorf("remapped partial agg: keys=%v arg=%d", partial.Keys, partial.Measures[0].Arg)
	}
}

func TestNoPruningWithoutRebuilder(t *testing.T) {
	// SELECT with no project/aggregate (filter only): every column stays
	// visible, so pruning must not engage. (The analyzer always adds a
	// Project, so construct this plan manually.)
	pred, _ := expr.NewCompare(expr.Gt, expr.Col(0, "a", types.Int64), expr.Lit(types.IntValue(1)))
	root := plan.Node(&plan.Output{Input: &plan.Filter{Input: scan(), Condition: pred}})
	got, err := Optimize(root)
	if err != nil {
		t.Fatal(err)
	}
	if plan.FindScan(got).OutputSchema().Len() != 4 {
		t.Error("pruning engaged without a schema rebuilder")
	}
}

func TestExchangeAlwaysPresent(t *testing.T) {
	roots := []plan.Node{
		&plan.Output{Input: scan()},
		&plan.Output{Input: &plan.Sort{Input: scan(), Keys: []plan.SortKey{{Column: 0}}}},
	}
	for _, root := range roots {
		got, err := Optimize(root)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		plan.Walk(got, func(n plan.Node) {
			if _, ok := n.(*plan.Exchange); ok {
				found = true
			}
		})
		if !found {
			t.Errorf("no exchange in:\n%s", plan.Format(got))
		}
	}
}

func TestSortStaysFinal(t *testing.T) {
	root := plan.Node(&plan.Output{Input: &plan.Sort{Input: scan(), Keys: []plan.SortKey{{Column: 0}}}})
	got, err := Optimize(root)
	if err != nil {
		t.Fatal(err)
	}
	text := plan.Format(got)
	sIdx := strings.Index(text, "Sort")
	eIdx := strings.Index(text, "Exchange")
	if sIdx < 0 || eIdx < 0 || sIdx > eIdx {
		t.Errorf("sort must stay above exchange:\n%s", text)
	}
}
