// Package engine implements the Presto-like distributed SQL engine: a
// coordinator that parses, analyzes and optimizes queries (including the
// connector-specific local-optimization phase, Figure 3 step 4), splits
// the scan into per-object units, runs the leaf stage on a worker pool
// and the final stage on the coordinator, and exposes the Connector SPI
// that the Hive-like and OCS connectors plug into.
package engine

import (
	"context"
	"strings"
	"sync"
	"time"

	"prestocs/internal/exec"
	"prestocs/internal/objstore"
	"prestocs/internal/plan"
	"prestocs/internal/telemetry"
)

// Split is one schedulable unit of a table scan (one object).
type Split struct {
	// Object is the object key within the table's bucket.
	Object string
	// Index is the split's ordinal within the table.
	Index int
}

// ScanStats accumulates connector-side metrics for one query. Connectors
// update it from CreatePageSource; it is safe for concurrent use.
type ScanStats struct {
	mu sync.Mutex
	// BytesMoved is payload bytes that crossed the compute/storage
	// network boundary (the paper's "data movement").
	BytesMoved int64
	// StorageWork is work performed inside the storage layer.
	StorageWork objstore.WorkStats
	// SubstraitGen is time spent translating pushdown operators to
	// Substrait IR (Table 3 row 2).
	SubstraitGen time.Duration
	// Transfer is time spent in storage RPCs, including in-storage
	// execution (Table 3 row 3).
	Transfer time.Duration
	// DeserializeUnits is compute-side CPU work spent decoding results
	// (Arrow decode or CSV parse), in abstract units.
	DeserializeUnits float64
	// ResultRows is rows received from storage.
	ResultRows int64
	// FallbackSplits counts splits whose pushdown execution failed and
	// that were served by the raw-scan fallback (the paper's no-pushdown
	// configuration) instead.
	FallbackSplits int64
	// SplitsPruned counts splits dropped before scheduling because the
	// metastore's per-object statistics proved the pushed-down filter
	// false for the whole object (zone-map split pruning).
	SplitsPruned int64
	// PushdownSplits and RawSplits count per-split scheduling decisions
	// made by an adaptive connector (AdaptiveConnector.DecideSplit).
	PushdownSplits int64
	RawSplits      int64
	// AdaptiveFlips counts splits that started pushed down and switched
	// mid-stream to the local resume path because the adaptive policy
	// repriced them against live selectivity and storage load.
	AdaptiveFlips int64
	// JoinBloomSplits counts probe splits that shipped a join build-side
	// bloom filter into storage; JoinBloomRejected counts splits where
	// the node refused the filter (size cap) and the scan retried without
	// it, re-applying the filter engine-side.
	JoinBloomSplits   int64
	JoinBloomRejected int64
}

// AddBytesMoved records network payload bytes.
func (s *ScanStats) AddBytesMoved(n int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.BytesMoved += n
}

// LiveCounters reads the rows and payload bytes received from storage so
// far; the process list polls it to report progress on running queries.
func (s *ScanStats) LiveCounters() (rows, bytesMoved int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ResultRows, s.BytesMoved
}

// AddStorageWork merges storage-side work.
func (s *ScanStats) AddStorageWork(w objstore.WorkStats) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.StorageWork.Add(w)
}

// AddSubstraitGen records IR-generation time.
func (s *ScanStats) AddSubstraitGen(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.SubstraitGen += d
}

// AddTransfer records RPC round-trip time.
func (s *ScanStats) AddTransfer(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.Transfer += d
}

// AddDeserialize records result-decode work.
func (s *ScanStats) AddDeserialize(units float64, rows int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.DeserializeUnits += units
	s.ResultRows += rows
}

// AddFallback records one split degraded to the raw-scan path.
func (s *ScanStats) AddFallback() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.FallbackSplits++
}

// AddSplitsPruned records splits dropped by statistics before scheduling.
func (s *ScanStats) AddSplitsPruned(n int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.SplitsPruned += n
}

// AddSplitDecision records one adaptive per-split choice.
func (s *ScanStats) AddSplitDecision(pushdown bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if pushdown {
		s.PushdownSplits++
	} else {
		s.RawSplits++
	}
}

// AddAdaptiveFlip records one mid-stream pushdown→raw switch.
func (s *ScanStats) AddAdaptiveFlip() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.AdaptiveFlips++
}

// AddJoinBloomSplit records one probe split opened with a bloom filter
// pushed into storage.
func (s *ScanStats) AddJoinBloomSplit() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.JoinBloomSplits++
}

// AddJoinBloomRejected records one storage-side bloom refusal (the scan
// retried without the filter).
func (s *ScanStats) AddJoinBloomRejected() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.JoinBloomRejected++
}

// Snapshot returns a copy for reporting.
func (s *ScanStats) Snapshot() ScanStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return ScanStats{
		BytesMoved:        s.BytesMoved,
		StorageWork:       s.StorageWork,
		SubstraitGen:      s.SubstraitGen,
		Transfer:          s.Transfer,
		DeserializeUnits:  s.DeserializeUnits,
		ResultRows:        s.ResultRows,
		FallbackSplits:    s.FallbackSplits,
		SplitsPruned:      s.SplitsPruned,
		PushdownSplits:    s.PushdownSplits,
		RawSplits:         s.RawSplits,
		AdaptiveFlips:     s.AdaptiveFlips,
		JoinBloomSplits:   s.JoinBloomSplits,
		JoinBloomRejected: s.JoinBloomRejected,
	}
}

// Session carries per-query configuration, notably connector session
// properties like the OCS pushdown mode.
type Session struct {
	props map[string]string
}

// NewSession returns an empty session.
func NewSession() *Session { return &Session{props: map[string]string{}} }

// Set assigns a property.
func (s *Session) Set(key, value string) *Session {
	s.props[key] = value
	return s
}

// Get reads a property ("" when unset).
func (s *Session) Get(key string) string { return s.props[key] }

// ConnectorPlanOptimizer is the SPI hook the paper's connector extends:
// it runs after global optimization and may rewrite the plan, typically
// absorbing leaf-stage operators into the scan handle.
type ConnectorPlanOptimizer interface {
	Optimize(root plan.Node, session *Session) (plan.Node, error)
}

// Connector is the storage plugin interface (Presto's Connector SPI,
// reduced to what this engine needs).
type Connector interface {
	// Name is the catalog name this connector serves.
	Name() string
	// TableHandle resolves a table to an opaque scan handle.
	TableHandle(schema, table string) (plan.TableHandle, error)
	// Splits enumerates the scan units for a handle.
	Splits(handle plan.TableHandle) ([]Split, error)
	// PlanOptimizer returns the connector's local optimizer (nil for
	// connectors without pushdown logic beyond projection).
	PlanOptimizer() ConnectorPlanOptimizer
	// CreatePageSource opens one split for reading. The returned
	// operator yields pages in handle.ScanSchema() order; connector
	// metrics go into stats. The context covers the whole life of the
	// source: cancelling it must make pending and future Next calls
	// return promptly.
	CreatePageSource(ctx context.Context, handle plan.TableHandle, split Split, stats *ScanStats) (exec.Operator, error)
}

// SplitSource is an optional Connector extension: connectors that can
// prune splits with table statistics implement it, and the engine
// prefers it over plain Splits so the pruning decision is recorded in
// the query's ScanStats.
type SplitSource interface {
	// SplitsWithStats enumerates the scan units for a handle, dropping
	// splits whose object statistics prove the handle's pushed-down
	// filter false, and records the count via stats.AddSplitsPruned.
	SplitsWithStats(handle plan.TableHandle, stats *ScanStats) ([]Split, error)
}

// SplitDecision is an adaptive connector's verdict for one split.
type SplitDecision struct {
	// Pushdown selects in-storage execution; false selects the raw
	// object scan with local evaluation.
	Pushdown bool
	// Reason is a short human-readable label for traces and debugging
	// ("history", "load", "prior", ...).
	Reason string
}

// AdaptiveConnector is an optional Connector extension: connectors that
// price pushdown vs raw scan per split at schedule time implement it,
// and the engine routes split scheduling through it so every decision is
// made (and counted) in one place. DecideSplit must be cheap — it runs
// once per split on the worker goroutines.
type AdaptiveConnector interface {
	// DecideSplit prices one split against observed selectivity history
	// and live storage load.
	DecideSplit(handle plan.TableHandle, split Split, stats *ScanStats) SplitDecision
	// CreatePageSourceDecided opens the split on the path the decision
	// selected. Contract matches CreatePageSource otherwise.
	CreatePageSourceDecided(ctx context.Context, handle plan.TableHandle, split Split, dec SplitDecision, stats *ScanStats) (exec.Operator, error)
}

// QueryStats is the engine's per-query report; the harness and Table 3
// read from it.
type QueryStats struct {
	// Stage timings.
	ParseAnalyze time.Duration
	GlobalOpt    time.Duration
	ConnectorOpt time.Duration
	Execution    time.Duration
	Total        time.Duration

	// Connector-side metrics.
	Scan ScanStats

	// Compute-side operator work by stage.
	LeafMeter  exec.Meter
	FinalMeter exec.Meter

	Splits       int
	ResultRows   int
	PlanText     string
	PushedDown   []string // operator kinds absorbed by the connector
	UsedPushdown bool

	// Join execution (zero values for single-table queries).
	// JoinStrategy is "broadcast" or "partitioned"; JoinBuildRows the
	// rows indexed from the build side.
	JoinStrategy  string
	JoinBuildRows int64

	// TraceID identifies the query's trace when the engine has a tracer
	// (zero otherwise); prestolite's -profile flag renders it.
	TraceID telemetry.TraceID
}

// QueryEvent is delivered to event listeners after each query (the
// connector's monitoring hook, §4 "Pushdown Monitoring").
type QueryEvent struct {
	SQL     string
	Catalog string
	Table   string
	Stats   *QueryStats
	Err     error
}

// EventListener observes completed queries.
type EventListener interface {
	QueryCompleted(QueryEvent)
}

// describePushdown renders the pushdown list for logs.
func describePushdown(ops []string) string {
	if len(ops) == 0 {
		return "none"
	}
	return strings.Join(ops, "+")
}
