package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"prestocs/internal/column"
	"prestocs/internal/exec"
	"prestocs/internal/plan"
	"prestocs/internal/types"
)

// memConnector serves fixed pages split into per-object chunks; no
// pushdown beyond column projection. It lets engine tests run without
// storage servers.
type memConnector struct {
	name    string
	schema  *types.Schema
	objects map[string][]*column.Page
	failOn  string // object name whose page source errors

	sourceDelay time.Duration // simulated per-source open cost
	created     atomic.Int64  // successfully created page sources
	closed      atomic.Int64  // sources released via Close
}

type memHandle struct {
	conn       *memConnector
	projection []int
}

func (h *memHandle) ConnectorName() string { return h.conn.name }
func (h *memHandle) String() string        { return "mem" }
func (h *memHandle) ScanSchema() *types.Schema {
	if h.projection == nil {
		return h.conn.schema
	}
	return h.conn.schema.Project(h.projection)
}
func (h *memHandle) WithProjection(cols []int) plan.TableHandle {
	return &memHandle{conn: h.conn, projection: cols}
}

func (c *memConnector) Name() string { return c.name }
func (c *memConnector) TableHandle(schema, table string) (plan.TableHandle, error) {
	if table != "t" {
		return nil, errors.New("mem: only table t exists")
	}
	return &memHandle{conn: c}, nil
}
func (c *memConnector) Splits(handle plan.TableHandle) ([]Split, error) {
	var out []Split
	i := 0
	// Deterministic order.
	for name := range c.objects {
		_ = name
		i++
	}
	for idx := 0; idx < i; idx++ {
		out = append(out, Split{Object: fmt.Sprintf("obj%d", idx), Index: idx})
	}
	return out, nil
}
func (c *memConnector) PlanOptimizer() ConnectorPlanOptimizer { return nil }
func (c *memConnector) CreatePageSource(_ context.Context, handle plan.TableHandle, split Split, stats *ScanStats) (exec.Operator, error) {
	h := handle.(*memHandle)
	if split.Object == c.failOn {
		return nil, errors.New("mem: injected failure")
	}
	if c.sourceDelay > 0 {
		time.Sleep(c.sourceDelay)
	}
	pages := c.objects[split.Object]
	out := make([]*column.Page, len(pages))
	for i, p := range pages {
		if h.projection != nil {
			out[i] = p.Project(h.projection)
		} else {
			out[i] = p
		}
		stats.AddBytesMoved(out[i].ByteSize())
	}
	c.created.Add(1)
	return &closeRecorder{Operator: exec.NewPageSource(h.ScanSchema(), out), closed: &c.closed}, nil
}

// closeRecorder counts Close calls so tests can prove the engine
// releases every source it opens.
type closeRecorder struct {
	exec.Operator
	closed *atomic.Int64
}

func (r *closeRecorder) Close() error {
	r.closed.Add(1)
	return nil
}

func newMemConnector(objects int, rowsPerObject int) *memConnector {
	schema := types.NewSchema(
		types.Column{Name: "id", Type: types.Int64},
		types.Column{Name: "v", Type: types.Float64},
		types.Column{Name: "g", Type: types.String},
	)
	c := &memConnector{name: "mem", schema: schema, objects: map[string][]*column.Page{}}
	n := 0
	for o := 0; o < objects; o++ {
		p := column.NewPage(schema)
		for r := 0; r < rowsPerObject; r++ {
			p.AppendRow(
				types.IntValue(int64(n)),
				types.FloatValue(float64(n)*0.5),
				types.StringValue([]string{"a", "b", "c"}[n%3]),
			)
			n++
		}
		c.objects[fmt.Sprintf("obj%d", o)] = []*column.Page{p}
	}
	return c
}

func newTestEngine(objects, rows int) (*Engine, *memConnector) {
	conn := newMemConnector(objects, rows)
	e := New()
	e.DefaultCatalog = "mem"
	e.Workers = 4
	e.AddConnector(conn)
	return e, conn
}

func TestSimpleProjection(t *testing.T) {
	e, _ := newTestEngine(2, 10)
	res, err := e.Execute(context.Background(), "SELECT id, v FROM t WHERE id < 5", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Page.NumRows() != 5 {
		t.Errorf("rows = %d", res.Page.NumRows())
	}
	if res.Schema.String() != "(id BIGINT, v DOUBLE)" {
		t.Errorf("schema = %s", res.Schema)
	}
	if res.Stats.Splits != 2 {
		t.Errorf("splits = %d", res.Stats.Splits)
	}
	if !strings.Contains(res.Stats.PlanText, "Exchange") {
		t.Errorf("plan missing exchange:\n%s", res.Stats.PlanText)
	}
}

func TestAggregationAcrossSplits(t *testing.T) {
	e, _ := newTestEngine(4, 30) // 120 rows, groups a/b/c 40 each
	res, err := e.Execute(context.Background(), "SELECT g, count(*) AS c, sum(v) AS s, avg(v) AS a FROM t GROUP BY g ORDER BY g", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Page.NumRows() != 3 {
		t.Fatalf("groups = %d", res.Page.NumRows())
	}
	var totalCount int64
	for i := 0; i < 3; i++ {
		row := res.Page.Row(i)
		totalCount += row[1].I
		// avg * count must equal sum.
		if diff := row[3].F*float64(row[1].I) - row[2].F; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("group %v: avg*count != sum (%v)", row[0], diff)
		}
	}
	if totalCount != 120 {
		t.Errorf("total count = %d", totalCount)
	}
	// Sorted by g ascending.
	if res.Page.Row(0)[0].S != "a" || res.Page.Row(2)[0].S != "c" {
		t.Errorf("order wrong: %v, %v", res.Page.Row(0)[0], res.Page.Row(2)[0])
	}
}

func TestGlobalAggregateEmptyInput(t *testing.T) {
	e, _ := newTestEngine(2, 10)
	res, err := e.Execute(context.Background(), "SELECT count(*) AS c, sum(v) AS s FROM t WHERE id > 1000", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Page.NumRows() != 1 {
		t.Fatalf("rows = %d", res.Page.NumRows())
	}
	if res.Page.Row(0)[0].I != 0 || !res.Page.Row(0)[1].Null {
		t.Errorf("default row = %v", res.Page.Row(0))
	}
}

func TestTopNAcrossSplits(t *testing.T) {
	e, _ := newTestEngine(3, 20)
	res, err := e.Execute(context.Background(), "SELECT id FROM t ORDER BY id DESC LIMIT 5", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Page.NumRows() != 5 {
		t.Fatalf("rows = %d", res.Page.NumRows())
	}
	for i := 0; i < 5; i++ {
		if res.Page.Row(i)[0].I != int64(59-i) {
			t.Errorf("row %d = %v", i, res.Page.Row(i)[0])
		}
	}
	if !strings.Contains(res.Stats.PlanText, "TopN(PARTIAL)") {
		t.Errorf("plan missing partial topN:\n%s", res.Stats.PlanText)
	}
}

func TestLimitWithoutOrder(t *testing.T) {
	e, _ := newTestEngine(3, 20)
	res, err := e.Execute(context.Background(), "SELECT id FROM t LIMIT 7", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Page.NumRows() != 7 {
		t.Errorf("rows = %d", res.Page.NumRows())
	}
}

func TestExpressionsAndAliases(t *testing.T) {
	e, _ := newTestEngine(1, 10)
	res, err := e.Execute(context.Background(), "SELECT id % 3 AS bucket, v * 2 AS dbl FROM t WHERE v >= 1.0", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Schema.Columns[0].Name != "bucket" || res.Schema.Columns[1].Name != "dbl" {
		t.Errorf("schema = %s", res.Schema)
	}
	if res.Page.NumRows() != 8 { // ids 2..9 have v >= 1.0
		t.Errorf("rows = %d", res.Page.NumRows())
	}
}

func TestErrorsPropagate(t *testing.T) {
	e, conn := newTestEngine(3, 5)
	conn.failOn = "obj1"
	if _, err := e.Execute(context.Background(), "SELECT id FROM t", nil); err == nil {
		t.Error("injected split failure not propagated")
	}
	conn.failOn = ""
	if _, err := e.Execute(context.Background(), "SELECT nope FROM t", nil); err == nil {
		t.Error("unknown column accepted")
	}
	if _, err := e.Execute(context.Background(), "SELECT id FROM missing_table", nil); err == nil {
		t.Error("unknown table accepted")
	}
	if _, err := e.Execute(context.Background(), "SELEC id FROM t", nil); err == nil {
		t.Error("syntax error accepted")
	}
	if _, err := e.Execute(context.Background(), "SELECT id FROM other.t", nil); err == nil {
		t.Error("unknown catalog accepted")
	}
	// Division by zero at runtime.
	if _, err := e.Execute(context.Background(), "SELECT id / 0 FROM t", nil); err == nil {
		t.Error("division by zero accepted")
	}
}

type recordingListener struct {
	mu     sync.Mutex
	events []QueryEvent
}

func (l *recordingListener) QueryCompleted(ev QueryEvent) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, ev)
}

func TestEventListener(t *testing.T) {
	e, _ := newTestEngine(1, 5)
	l := &recordingListener{}
	e.AddEventListener(l)
	if _, err := e.Execute(context.Background(), "SELECT id FROM t", nil); err != nil {
		t.Fatal(err)
	}
	e.Execute(context.Background(), "SELECT id FROM t WHERE id / 0 = 1", nil) // runtime error event
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.events) != 2 {
		t.Fatalf("events = %d", len(l.events))
	}
	if l.events[0].Err != nil || l.events[0].Table != "t" {
		t.Errorf("event 0 = %+v", l.events[0])
	}
	if l.events[1].Err == nil {
		t.Error("error event missing error")
	}
}

func TestSessionProperties(t *testing.T) {
	s := NewSession().Set("a", "1").Set("b", "2")
	if s.Get("a") != "1" || s.Get("b") != "2" || s.Get("zz") != "" {
		t.Error("session props wrong")
	}
}

func TestColumnPruningReachesConnector(t *testing.T) {
	e, _ := newTestEngine(1, 10)
	res, err := e.Execute(context.Background(), "SELECT v FROM t", nil)
	if err != nil {
		t.Fatal(err)
	}
	// The scan handle should carry a 1-column projection; bytes moved
	// must reflect only the v column (8 bytes * 10 rows).
	moved := res.Stats.Scan.Snapshot().BytesMoved
	if moved != 80 {
		t.Errorf("bytes moved = %d, want 80 (pruned to one column)", moved)
	}
}

func TestConcurrentQueries(t *testing.T) {
	e, _ := newTestEngine(4, 25)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := e.Execute(context.Background(), "SELECT g, count(*) AS c FROM t GROUP BY g", nil)
			if err != nil {
				errs <- err
				return
			}
			if res.Page.NumRows() != 3 {
				errs <- fmt.Errorf("groups = %d", res.Page.NumRows())
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestMinMaxAggregates(t *testing.T) {
	e, _ := newTestEngine(2, 10)
	res, err := e.Execute(context.Background(), "SELECT min(id) AS lo, max(id) AS hi, min(g) AS gl FROM t", nil)
	if err != nil {
		t.Fatal(err)
	}
	row := res.Page.Row(0)
	if row[0].I != 0 || row[1].I != 19 || row[2].S != "a" {
		t.Errorf("min/max = %v", row)
	}
}

func TestFastFailStopsRemainingSplits(t *testing.T) {
	// One doomed split must stop the whole query quickly: after the first
	// error, workers may finish in-flight splits but must not keep opening
	// page sources for the long tail.
	e, conn := newTestEngine(64, 4)
	conn.failOn = "obj0"
	conn.sourceDelay = 2 * time.Millisecond
	_, err := e.Execute(context.Background(), "SELECT sum(v) AS s FROM t", nil)
	if err == nil || !strings.Contains(err.Error(), "injected failure") {
		t.Fatalf("err = %v", err)
	}
	if created := conn.created.Load(); created >= 32 {
		t.Errorf("fast-fail opened %d/63 sources after the failure; workers did not stop", created)
	}
}

func TestEngineClosesEverySource(t *testing.T) {
	// A limit satisfied early abandons sources mid-stream; the engine must
	// still Close every source it created (streams hold connections).
	e, conn := newTestEngine(8, 16)
	res, err := e.Execute(context.Background(), "SELECT id FROM t LIMIT 3", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Page.NumRows() != 3 {
		t.Fatalf("rows = %d", res.Page.NumRows())
	}
	if created, closed := conn.created.Load(), conn.closed.Load(); created == 0 || created != closed {
		t.Errorf("created %d sources, closed %d", created, closed)
	}

	// And on a failing query too.
	conn.created.Store(0)
	conn.closed.Store(0)
	conn.failOn = "obj3"
	if _, err := e.Execute(context.Background(), "SELECT sum(v) AS s FROM t", nil); err == nil {
		t.Fatal("expected injected failure")
	}
	if created, closed := conn.created.Load(), conn.closed.Load(); created != closed {
		t.Errorf("after failure: created %d sources, closed %d", created, closed)
	}
}
