package engine

import (
	"fmt"
	"strings"

	"prestocs/internal/telemetry"
)

// observeQuery closes out a query's telemetry: the root span gets the
// final ScanStats copied on as durations and attributes, and the metrics
// registry gets one observation per engine_query_* series. Both read the
// same QueryStats the harness's Table-3 breakdown reads, so the profile,
// the /metrics endpoint and the paper numbers can never disagree.
func (e *Engine) observeQuery(qspan *telemetry.Span, stats *QueryStats, err error) {
	scan := stats.Scan.Snapshot()

	if qspan != nil {
		// Table-3 stage totals, verbatim from ScanStats: tests assert
		// exact equality between these and the snapshot.
		qspan.AddDuration("substrait_gen", scan.SubstraitGen)
		qspan.AddDuration("transfer", scan.Transfer)
		qspan.SetAttr("bytes_moved", fmt.Sprint(scan.BytesMoved))
		qspan.SetAttr("deserialize_units", fmt.Sprintf("%.1f", scan.DeserializeUnits))
		qspan.SetAttr("result_rows", fmt.Sprint(stats.ResultRows))
		qspan.SetAttr("splits", fmt.Sprint(stats.Splits))
		if scan.FallbackSplits > 0 {
			qspan.SetAttr("fallback_splits", fmt.Sprint(scan.FallbackSplits))
		}
		if scan.SplitsPruned > 0 {
			qspan.SetAttr("splits_pruned", fmt.Sprint(scan.SplitsPruned))
		}
		if stats.UsedPushdown {
			qspan.SetAttr("pushdown", strings.Join(stats.PushedDown, ","))
		}
		if stats.JoinStrategy != "" {
			qspan.SetAttr("join_strategy", stats.JoinStrategy)
			qspan.SetAttr("join_build_rows", fmt.Sprint(stats.JoinBuildRows))
		}
		if err != nil {
			qspan.Event("error", err.Error())
		}
		qspan.End()
	}

	reg := e.Metrics
	reg.Counter(telemetry.MetricQueryTotal).Inc()
	if err != nil {
		reg.Counter(telemetry.MetricQueryErrors).Inc()
	}
	reg.Histogram(telemetry.MetricQueryLatency).ObserveDuration(stats.Total)
	reg.Histogram(telemetry.MetricQuerySubstraitGen).ObserveDuration(scan.SubstraitGen)
	reg.Histogram(telemetry.MetricQueryTransfer).ObserveDuration(scan.Transfer)
	reg.Counter(telemetry.MetricQueryBytesMoved).Add(scan.BytesMoved)
	reg.Counter(telemetry.MetricQueryFallbacks).Add(scan.FallbackSplits)
	reg.Counter(telemetry.MetricQuerySplitsPruned).Add(scan.SplitsPruned)
	reg.Counter(telemetry.MetricQueryResultRows).Add(int64(stats.ResultRows))
	if stats.UsedPushdown {
		reg.Counter(telemetry.MetricQueryPushdown).Inc()
	}
	if stats.JoinStrategy != "" {
		reg.Counter(telemetry.MetricQueryJoins).Inc()
		reg.Counter(telemetry.MetricJoinStrategyChosen, "strategy", stats.JoinStrategy).Inc()
		reg.Counter(telemetry.MetricJoinBuildRows).Add(stats.JoinBuildRows)
	}
	reg.Counter(telemetry.MetricJoinBloomPushdown).Add(scan.JoinBloomSplits)
	reg.Counter(telemetry.MetricJoinBloomRejected).Add(scan.JoinBloomRejected)
}
