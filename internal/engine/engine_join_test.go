package engine

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"

	"prestocs/internal/column"
	"prestocs/internal/exec"
	"prestocs/internal/plan"
	"prestocs/internal/types"
)

// joinConnector serves two fixed tables so engine join tests run
// without storage servers: l(orderkey, qty) and o(orderkey, prio),
// where o holds the even orderkeys only.
type joinConnector struct {
	name   string
	tables map[string]*joinTestTable
	failOn string // "table/objN" whose page source errors
}

type joinTestTable struct {
	schema *types.Schema
	splits [][]*column.Page
}

type joinTestHandle struct {
	conn       *joinConnector
	table      string
	projection []int
}

func (h *joinTestHandle) ConnectorName() string { return h.conn.name }
func (h *joinTestHandle) String() string        { return "join:" + h.table }
func (h *joinTestHandle) ScanSchema() *types.Schema {
	s := h.conn.tables[h.table].schema
	if h.projection == nil {
		return s
	}
	return s.Project(h.projection)
}
func (h *joinTestHandle) WithProjection(cols []int) plan.TableHandle {
	return &joinTestHandle{conn: h.conn, table: h.table, projection: cols}
}

func (c *joinConnector) Name() string { return c.name }
func (c *joinConnector) TableHandle(schema, table string) (plan.TableHandle, error) {
	if _, ok := c.tables[table]; !ok {
		return nil, fmt.Errorf("join: no table %q", table)
	}
	return &joinTestHandle{conn: c, table: table}, nil
}
func (c *joinConnector) Splits(handle plan.TableHandle) ([]Split, error) {
	h := handle.(*joinTestHandle)
	t := c.tables[h.table]
	out := make([]Split, len(t.splits))
	for i := range t.splits {
		out[i] = Split{Object: fmt.Sprintf("%s/obj%d", h.table, i), Index: i}
	}
	return out, nil
}
func (c *joinConnector) PlanOptimizer() ConnectorPlanOptimizer { return nil }
func (c *joinConnector) CreatePageSource(_ context.Context, handle plan.TableHandle, split Split, stats *ScanStats) (exec.Operator, error) {
	h := handle.(*joinTestHandle)
	if split.Object == c.failOn {
		return nil, errors.New("join: injected connection kill")
	}
	pages := c.tables[h.table].splits[split.Index]
	out := make([]*column.Page, len(pages))
	for i, p := range pages {
		if h.projection != nil {
			out[i] = p.Project(h.projection)
		} else {
			out[i] = p
		}
		stats.AddBytesMoved(out[i].ByteSize())
	}
	return exec.NewPageSource(h.ScanSchema(), out), nil
}

// newJoinEngine builds l with orderkeys 0..3*rows-1 over three splits
// (qty = orderkey as a double) and o with the even orderkeys in one
// split (prio cycles hi/lo).
func newJoinEngine(rows int) (*Engine, *joinConnector) {
	lSchema := types.NewSchema(
		types.Column{Name: "orderkey", Type: types.Int64},
		types.Column{Name: "qty", Type: types.Float64},
	)
	oSchema := types.NewSchema(
		types.Column{Name: "orderkey", Type: types.Int64},
		types.Column{Name: "prio", Type: types.String},
	)
	l := &joinTestTable{schema: lSchema}
	n := 0
	for s := 0; s < 3; s++ {
		p := column.NewPage(lSchema)
		for r := 0; r < rows; r++ {
			p.AppendRow(types.IntValue(int64(n)), types.FloatValue(float64(n)))
			n++
		}
		l.splits = append(l.splits, []*column.Page{p})
	}
	o := &joinTestTable{schema: oSchema}
	op := column.NewPage(oSchema)
	for k := 0; k < n; k += 2 {
		prio := "hi"
		if k%4 == 0 {
			prio = "lo"
		}
		op.AppendRow(types.IntValue(int64(k)), types.StringValue(prio))
	}
	o.splits = [][]*column.Page{{op}}

	conn := &joinConnector{name: "mem", tables: map[string]*joinTestTable{"l": l, "o": o}}
	e := New()
	e.DefaultCatalog = "mem"
	e.Workers = 4
	e.AddConnector(conn)
	return e, conn
}

// joinRows collects (orderkey, prio) pairs sorted by key so assertions
// are independent of worker scheduling order.
func joinRows(page *column.Page) []string {
	var out []string
	for i := 0; i < page.NumRows(); i++ {
		row := page.Row(i)
		out = append(out, fmt.Sprintf("%d/%s", row[0].I, row[1].S))
	}
	sort.Strings(out)
	return out
}

func expectedJoinRows(total, min int) []string {
	var out []string
	for k := min + 1; k < total; k++ {
		if k%2 != 0 {
			continue
		}
		prio := "hi"
		if k%4 == 0 {
			prio = "lo"
		}
		out = append(out, fmt.Sprintf("%d/%s", k, prio))
	}
	sort.Strings(out)
	return out
}

func TestJoinBroadcastEndToEnd(t *testing.T) {
	e, _ := newJoinEngine(20) // 60 probe rows, 30 build rows
	res, err := e.Execute(context.Background(),
		"SELECT l.orderkey, o.prio FROM l JOIN o ON l.orderkey = o.orderkey WHERE l.orderkey > 10", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.JoinStrategy != "broadcast" {
		t.Errorf("strategy = %q, want broadcast", res.Stats.JoinStrategy)
	}
	if res.Stats.JoinBuildRows != 30 {
		t.Errorf("build rows = %d, want 30", res.Stats.JoinBuildRows)
	}
	if res.Stats.Splits != 4 { // 3 probe + 1 build
		t.Errorf("splits = %d, want 4", res.Stats.Splits)
	}
	got := joinRows(res.Page)
	want := expectedJoinRows(60, 10)
	if len(got) != len(want) {
		t.Fatalf("rows = %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("row %d = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestJoinPartitionedOverBroadcastThreshold(t *testing.T) {
	e, _ := newJoinEngine(20)
	e.Cost.BroadcastJoinMaxRows = 4 // build side (30 rows) exceeds this
	e.Cost.BroadcastJoinMaxBytes = 1 << 30
	res, err := e.Execute(context.Background(),
		"SELECT l.orderkey, o.prio FROM l JOIN o ON l.orderkey = o.orderkey WHERE l.orderkey > 10", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.JoinStrategy != "partitioned" {
		t.Errorf("strategy = %q, want partitioned", res.Stats.JoinStrategy)
	}
	got := joinRows(res.Page)
	want := expectedJoinRows(60, 10)
	if len(got) != len(want) {
		t.Fatalf("rows = %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("row %d = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestJoinWithAggregationAbove(t *testing.T) {
	e, _ := newJoinEngine(20)
	res, err := e.Execute(context.Background(),
		"SELECT o.prio AS p, count(*) AS c, sum(l.qty) AS s FROM l JOIN o ON l.orderkey = o.orderkey GROUP BY o.prio ORDER BY p", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Page.NumRows() != 2 {
		t.Fatalf("groups = %d, want 2", res.Page.NumRows())
	}
	// Even keys 0..58: multiples of 4 are "lo" (15 keys), the rest "hi".
	var wantHiSum, wantLoSum float64
	var wantHi, wantLo int64
	for k := 0; k < 60; k += 2 {
		if k%4 == 0 {
			wantLo++
			wantLoSum += float64(k)
		} else {
			wantHi++
			wantHiSum += float64(k)
		}
	}
	hi, lo := res.Page.Row(0), res.Page.Row(1)
	if hi[0].S != "hi" || lo[0].S != "lo" {
		t.Fatalf("group order = %v, %v", hi[0], lo[0])
	}
	if hi[1].I != wantHi || lo[1].I != wantLo {
		t.Errorf("counts = %d/%d, want %d/%d", hi[1].I, lo[1].I, wantHi, wantLo)
	}
	if hi[2].F != wantHiSum || lo[2].F != wantLoSum {
		t.Errorf("sums = %v/%v, want %v/%v", hi[2].F, lo[2].F, wantHiSum, wantLoSum)
	}
}

func TestJoinCrossTableResidualFilter(t *testing.T) {
	e, _ := newJoinEngine(10) // 30 probe rows, build 0..28 even
	// qty > orderkey is false on every matched row (qty == orderkey), so
	// the mixed conjunct must filter above the join and yield nothing.
	res, err := e.Execute(context.Background(),
		"SELECT l.orderkey, o.prio FROM l JOIN o ON l.orderkey = o.orderkey WHERE l.qty > o.orderkey", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Page.NumRows() != 0 {
		t.Errorf("rows = %d, want 0", res.Page.NumRows())
	}
}

// TestJoinBuildSideKillFailsQuery injects a dead connection under the
// build-side scan: the query must fail with the injected error rather
// than silently joining against a truncated build table.
func TestJoinBuildSideKillFailsQuery(t *testing.T) {
	e, conn := newJoinEngine(10)
	conn.failOn = "o/obj0"
	_, err := e.Execute(context.Background(),
		"SELECT l.orderkey, o.prio FROM l JOIN o ON l.orderkey = o.orderkey", nil)
	if err == nil || !strings.Contains(err.Error(), "injected connection kill") {
		t.Fatalf("err = %v, want injected build-side failure", err)
	}
}

// TestJoinProbeSideKillFailsQuery kills a probe split instead; the
// already-built hash table must not mask the scan failure.
func TestJoinProbeSideKillFailsQuery(t *testing.T) {
	e, conn := newJoinEngine(10)
	conn.failOn = "l/obj1"
	_, err := e.Execute(context.Background(),
		"SELECT l.orderkey, o.prio FROM l JOIN o ON l.orderkey = o.orderkey", nil)
	if err == nil || !strings.Contains(err.Error(), "injected connection kill") {
		t.Fatalf("err = %v, want injected probe-side failure", err)
	}
}

func TestJoinSessionBloomOffStillCorrect(t *testing.T) {
	e, _ := newJoinEngine(10)
	session := NewSession().Set(SessionJoinBloom, "off")
	res, err := e.Execute(context.Background(),
		"SELECT l.orderkey, o.prio FROM l JOIN o ON l.orderkey = o.orderkey WHERE l.orderkey > 4", session)
	if err != nil {
		t.Fatal(err)
	}
	got := joinRows(res.Page)
	want := expectedJoinRows(30, 4)
	if len(got) != len(want) {
		t.Fatalf("rows = %d, want %d", len(got), len(want))
	}
}
