package engine

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"

	"prestocs/internal/rpc"
	"prestocs/internal/telemetry"
)

// DefaultQueryMemory is the per-query memory reservation assumed when a
// submission carries no WithMemoryBudget and the admission config sets no
// default: roughly the working set of a leaf-stage worker pool plus the
// coordinator-side final stage over our benchmark tables.
const DefaultQueryMemory = 64 << 20

// AdmissionConfig bounds concurrent query execution. The zero value is
// fully permissive (every query is admitted immediately), so embedding
// callers and existing tests keep their behavior until they opt in.
type AdmissionConfig struct {
	// MaxConcurrent caps queries executing at once; 0 = unlimited.
	MaxConcurrent int
	// MaxQueued caps queries waiting for a slot once MaxConcurrent (or
	// the memory budget) is saturated; beyond it submissions are shed
	// with ErrOverloaded. 0 sheds as soon as execution is saturated.
	MaxQueued int
	// MemoryBudget caps the sum of admitted queries' memory
	// reservations; 0 = unlimited. A query whose own reservation exceeds
	// the budget is shed outright (waiting cannot help it).
	MemoryBudget int64
	// DefaultQueryMemory is the reservation assumed for submissions
	// without WithMemoryBudget; 0 selects the package default.
	DefaultQueryMemory int64
}

// ProcessList is the engine's live-query registry (the go-mysql-server
// ProcessList shape): every submitted query is visible here from
// admission to completion, with state, progress counters and a kill
// hook, and admission control queues or sheds past the configured
// budgets.
type ProcessList struct {
	eng *Engine

	mu         sync.Mutex
	cfg        AdmissionConfig
	nextID     int64
	all        map[string]*Query // queued + admitted, until finish
	running    map[string]*Query
	waiting    []*Query // priority desc, FIFO within a priority
	memoryUsed int64
	recent     []QueryInfo // ring of the last finished queries
}

// recentKeep bounds the finished-query ring /debug/queries shows.
const recentKeep = 32

func newProcessList(e *Engine) *ProcessList {
	return &ProcessList{
		eng:     e,
		all:     make(map[string]*Query),
		running: make(map[string]*Query),
	}
}

// SetAdmission installs the admission budgets. Safe to call between
// queries; in-flight admissions are unaffected.
func (pl *ProcessList) SetAdmission(cfg AdmissionConfig) {
	pl.mu.Lock()
	pl.cfg = cfg
	pl.mu.Unlock()
}

// overloaded builds the stable shed error: errors.Is(err,
// rpc.ErrOverloaded) holds locally and across the wire.
func overloaded(format string, args ...any) error {
	return rpc.WithCode(fmt.Errorf("engine: overloaded: "+format, args...), rpc.CodeOverloaded)
}

// admit registers q and either grants it a slot, queues it, or sheds it.
func (pl *ProcessList) admit(q *Query) error {
	m := pl.eng.Metrics
	pl.mu.Lock()
	defer pl.mu.Unlock()
	cfg := pl.cfg
	if q.memory <= 0 {
		q.memory = cfg.DefaultQueryMemory
		if q.memory <= 0 {
			q.memory = DefaultQueryMemory
		}
	}
	if cfg.MemoryBudget > 0 && q.memory > cfg.MemoryBudget {
		m.Counter(telemetry.MetricAdmissionRejected).Inc()
		return overloaded("query reservation %d bytes exceeds engine budget %d", q.memory, cfg.MemoryBudget)
	}
	pl.nextID++
	q.id = "q-" + strconv.FormatInt(pl.nextID, 10)
	if pl.canStartLocked(q) {
		pl.all[q.id] = q
		pl.startLocked(q)
		return nil
	}
	if len(pl.waiting) >= cfg.MaxQueued {
		m.Counter(telemetry.MetricAdmissionRejected).Inc()
		return overloaded("admission queue full (%d running, %d queued)", len(pl.running), len(pl.waiting))
	}
	pl.all[q.id] = q
	// Keep the wait list priority-ordered, FIFO within a priority.
	idx := sort.Search(len(pl.waiting), func(i int) bool {
		return pl.waiting[i].priority < q.priority
	})
	pl.waiting = append(pl.waiting, nil)
	copy(pl.waiting[idx+1:], pl.waiting[idx:])
	pl.waiting[idx] = q
	m.Gauge(telemetry.MetricAdmissionQueued).Add(1)
	return nil
}

// canStartLocked reports whether q fits the budgets right now. A query
// never jumps ahead of an equal-or-higher-priority waiter, so the queue
// drains fairly; a strictly higher priority may overtake.
func (pl *ProcessList) canStartLocked(q *Query) bool {
	cfg := pl.cfg
	if cfg.MaxConcurrent > 0 && len(pl.running) >= cfg.MaxConcurrent {
		return false
	}
	if cfg.MemoryBudget > 0 && pl.memoryUsed+q.memory > cfg.MemoryBudget {
		return false
	}
	if len(pl.waiting) > 0 && pl.waiting[0].priority >= q.priority {
		return false
	}
	return true
}

// startLocked grants q its slot. Caller holds pl.mu.
func (pl *ProcessList) startLocked(q *Query) {
	pl.running[q.id] = q
	pl.memoryUsed += q.memory
	m := pl.eng.Metrics
	m.Gauge(telemetry.MetricQueriesActive).Add(1)
	m.Gauge(telemetry.MetricQueryMemReserved).Add(q.memory)
	close(q.admitted)
}

// release returns q's slot and promotes eligible waiters.
func (pl *ProcessList) release(q *Query) {
	m := pl.eng.Metrics
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if _, ok := pl.running[q.id]; !ok {
		return
	}
	delete(pl.running, q.id)
	pl.memoryUsed -= q.memory
	m.Gauge(telemetry.MetricQueriesActive).Add(-1)
	m.Gauge(telemetry.MetricQueryMemReserved).Add(-q.memory)
	for len(pl.waiting) > 0 {
		head := pl.waiting[0]
		cfg := pl.cfg
		if cfg.MaxConcurrent > 0 && len(pl.running) >= cfg.MaxConcurrent {
			break
		}
		if cfg.MemoryBudget > 0 && pl.memoryUsed+head.memory > cfg.MemoryBudget {
			break
		}
		pl.waiting = pl.waiting[1:]
		m.Gauge(telemetry.MetricAdmissionQueued).Add(-1)
		pl.startLocked(head)
	}
}

// abandonQueued removes a still-waiting query whose context died. It
// reports false when the query was admitted concurrently (the caller
// must then run and release normally).
func (pl *ProcessList) abandonQueued(q *Query) bool {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	for i, w := range pl.waiting {
		if w == q {
			pl.waiting = append(pl.waiting[:i], pl.waiting[i+1:]...)
			pl.eng.Metrics.Gauge(telemetry.MetricAdmissionQueued).Add(-1)
			return true
		}
	}
	return false
}

// noteDone retires a finished query from the live view into the recent
// ring.
func (pl *ProcessList) noteDone(q *Query) {
	info := q.Status()
	pl.mu.Lock()
	delete(pl.all, q.id)
	pl.recent = append(pl.recent, info)
	if len(pl.recent) > recentKeep {
		pl.recent = pl.recent[len(pl.recent)-recentKeep:]
	}
	pl.mu.Unlock()
}

// List snapshots every live (queued or executing) query, oldest first.
func (pl *ProcessList) List() []QueryInfo {
	pl.mu.Lock()
	live := make([]*Query, 0, len(pl.all))
	for _, q := range pl.all {
		live = append(live, q)
	}
	pl.mu.Unlock()
	sort.Slice(live, func(i, j int) bool { return live[i].submit.Before(live[j].submit) })
	infos := make([]QueryInfo, len(live))
	for i, q := range live {
		infos[i] = q.Status()
	}
	return infos
}

// Recent snapshots the finished-query ring, oldest first.
func (pl *ProcessList) Recent() []QueryInfo {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return append([]QueryInfo(nil), pl.recent...)
}

// Kill cancels the identified live query.
func (pl *ProcessList) Kill(id string) error {
	pl.mu.Lock()
	q := pl.all[id]
	pl.mu.Unlock()
	if q == nil {
		return fmt.Errorf("engine: no live query %q", id)
	}
	q.Kill()
	return nil
}

// ServeHTTP renders the process list (text by default, ?format=json) and
// kills queries via POST ?kill=<id> — the /debug/queries endpoint, in the
// same style as /debug/traces.
func (pl *ProcessList) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if id := r.URL.Query().Get("kill"); id != "" {
		if r.Method != http.MethodPost {
			http.Error(w, "kill requires POST", http.StatusMethodNotAllowed)
			return
		}
		if err := pl.Kill(id); err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		fmt.Fprintf(w, "killed %s\n", id)
		return
	}
	live, recent := pl.List(), pl.Recent()
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct {
			Live   []QueryInfo `json:"live"`
			Recent []QueryInfo `json:"recent"`
		}{live, recent})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "live queries: %d\n", len(live))
	writeQueryTable(w, live)
	fmt.Fprintf(w, "\nrecently finished: %d\n", len(recent))
	writeQueryTable(w, recent)
}

func writeQueryTable(w http.ResponseWriter, infos []QueryInfo) {
	if len(infos) == 0 {
		return
	}
	fmt.Fprintf(w, "%-8s %-9s %4s %12s %10s %12s  %s\n",
		"id", "state", "prio", "elapsed", "rows", "bytes", "sql")
	for _, in := range infos {
		sql := in.SQL
		if len(sql) > 60 {
			sql = sql[:57] + "..."
		}
		status := sql
		if in.Error != "" {
			status = sql + "  [" + in.Error + "]"
		}
		fmt.Fprintf(w, "%-8s %-9s %4d %11.1fms %10d %12d  %s\n",
			in.ID, in.State, in.Priority, in.Elapsed, in.Rows, in.BytesMoved, status)
	}
}
