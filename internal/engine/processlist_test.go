package engine

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"prestocs/internal/rpc"
	"prestocs/internal/telemetry"
)

// slowEngine returns an engine whose page sources sleep, so queries stay
// observably in flight.
func slowEngine(objects int, delay time.Duration) (*Engine, *memConnector) {
	e, conn := newTestEngine(objects, 20)
	conn.sourceDelay = delay
	return e, conn
}

func TestSubmitHandleLifecycle(t *testing.T) {
	e, _ := newTestEngine(2, 10)
	q, err := e.Submit(context.Background(), "SELECT id FROM t WHERE id < 5")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(q.ID(), "q-") {
		t.Errorf("id = %q, want q-<n>", q.ID())
	}
	res, err := q.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res.Page.NumRows() != 5 {
		t.Errorf("rows = %d", res.Page.NumRows())
	}
	if st := q.State(); st != StateDone {
		t.Errorf("state = %v, want done", st)
	}
	info := q.Status()
	if info.State != "done" || info.BytesMoved == 0 {
		t.Errorf("status = %+v, want done with bytes moved", info)
	}
	if live := e.Processes().List(); len(live) != 0 {
		t.Errorf("live list after completion = %v", live)
	}
	recent := e.Processes().Recent()
	if len(recent) != 1 || recent[0].ID != q.ID() {
		t.Errorf("recent = %v, want the finished query", recent)
	}
}

func TestAdmissionQueuesThenSheds(t *testing.T) {
	e, _ := slowEngine(4, 30*time.Millisecond)
	e.Metrics = telemetry.NewRegistry()
	e.SetAdmission(AdmissionConfig{MaxConcurrent: 1, MaxQueued: 1})

	q1, err := e.Submit(context.Background(), "SELECT count(*) AS c FROM t")
	if err != nil {
		t.Fatal(err)
	}
	// Wait until q1 holds the slot so q2 deterministically queues.
	waitState(t, q1, StateQueued, false)
	q2, err := e.Submit(context.Background(), "SELECT count(*) AS c FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if st := q2.State(); st != StateQueued {
		t.Fatalf("q2 state = %v, want queued behind q1", st)
	}
	if g := e.Metrics.GaugeValue(telemetry.MetricAdmissionQueued); g != 1 {
		t.Errorf("queued gauge = %d, want 1", g)
	}
	_, err = e.Submit(context.Background(), "SELECT count(*) AS c FROM t")
	if !errors.Is(err, rpc.ErrOverloaded) {
		t.Fatalf("third submit err = %v, want ErrOverloaded", err)
	}
	if c := e.Metrics.CounterValue(telemetry.MetricAdmissionRejected); c != 1 {
		t.Errorf("rejected counter = %d, want 1", c)
	}
	for _, q := range []*Query{q1, q2} {
		if _, err := q.Result(); err != nil {
			t.Fatalf("%s: %v", q.ID(), err)
		}
	}
	if g := e.Metrics.GaugeValue(telemetry.MetricAdmissionQueued); g != 0 {
		t.Errorf("queued gauge = %d after drain, want 0", g)
	}
	if g := e.Metrics.GaugeValue(telemetry.MetricQueriesActive); g != 0 {
		t.Errorf("active gauge = %d after drain, want 0", g)
	}
	if g := e.Metrics.GaugeValue(telemetry.MetricQueryMemReserved); g != 0 {
		t.Errorf("reserved-memory gauge = %d after drain, want 0", g)
	}
}

func TestAdmissionMemoryBudgetSheds(t *testing.T) {
	e, _ := newTestEngine(2, 10)
	e.SetAdmission(AdmissionConfig{MemoryBudget: 128 << 20})
	// A reservation larger than the whole budget can never be satisfied:
	// shed outright rather than queue forever.
	_, err := e.Submit(context.Background(), "SELECT id FROM t", WithMemoryBudget(256<<20))
	if !errors.Is(err, rpc.ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	// Within budget runs fine.
	q, err := e.Submit(context.Background(), "SELECT id FROM t", WithMemoryBudget(64<<20))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Result(); err != nil {
		t.Fatal(err)
	}
}

func TestKillRunningQueryCancels(t *testing.T) {
	e, _ := slowEngine(16, 20*time.Millisecond)
	q, err := e.Submit(context.Background(), "SELECT count(*) AS c FROM t")
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, q, StateQueued, false)
	q.Kill()
	if _, err := q.Result(); !errors.Is(err, context.Canceled) {
		t.Fatalf("result err = %v, want context.Canceled", err)
	}
	if st := q.State(); st != StateDone {
		t.Errorf("state = %v, want done", st)
	}
}

func TestKillQueuedQueryCancelsWithoutRunning(t *testing.T) {
	e, conn := slowEngine(4, 30*time.Millisecond)
	e.SetAdmission(AdmissionConfig{MaxConcurrent: 1, MaxQueued: 4})
	q1, err := e.Submit(context.Background(), "SELECT count(*) AS c FROM t")
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, q1, StateQueued, false)
	before := conn.created.Load()
	q2, err := e.Submit(context.Background(), "SELECT count(*) AS c FROM t")
	if err != nil {
		t.Fatal(err)
	}
	q2.Kill()
	if _, err := q2.Result(); !errors.Is(err, context.Canceled) {
		t.Fatalf("queued-kill err = %v, want context.Canceled", err)
	}
	if _, err := q1.Result(); err != nil {
		t.Fatal(err)
	}
	// q2 must never have opened a page source: it died in the queue.
	// (q1's sources are the only growth.)
	if got := conn.created.Load() - before; got > 4 {
		t.Errorf("sources created after queued kill = %d, want q1's 4 only", got)
	}
	if live := e.Processes().List(); len(live) != 0 {
		t.Errorf("live = %v after everything finished", live)
	}
}

func TestPriorityAdmitsHighFirst(t *testing.T) {
	e, _ := slowEngine(2, 20*time.Millisecond)
	e.SetAdmission(AdmissionConfig{MaxConcurrent: 1, MaxQueued: 8})
	q1, err := e.Submit(context.Background(), "SELECT count(*) AS c FROM t")
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, q1, StateQueued, false)
	low, err := e.Submit(context.Background(), "SELECT count(*) AS c FROM t")
	if err != nil {
		t.Fatal(err)
	}
	high, err := e.Submit(context.Background(), "SELECT count(*) AS c FROM t", WithPriority(5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := high.Result(); err != nil {
		t.Fatal(err)
	}
	// Serial execution (MaxConcurrent 1): when high finished, low must
	// not have finished — it was behind in the queue despite arriving
	// first.
	select {
	case <-low.Done():
		t.Error("low-priority query finished before the high-priority one")
	default:
	}
	if _, err := low.Result(); err != nil {
		t.Fatal(err)
	}
	if _, err := q1.Result(); err != nil {
		t.Fatal(err)
	}
}

func TestProcessListKillUnknownID(t *testing.T) {
	e, _ := newTestEngine(1, 5)
	if err := e.Processes().Kill("q-999"); err == nil {
		t.Fatal("kill of unknown id must error")
	}
}

func TestProcessListHTTP(t *testing.T) {
	e, _ := slowEngine(8, 20*time.Millisecond)
	q, err := e.Submit(context.Background(), "SELECT count(*) AS c FROM t")
	if err != nil {
		t.Fatal(err)
	}
	pl := e.Processes()

	rec := httptest.NewRecorder()
	pl.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/queries", nil))
	if !strings.Contains(rec.Body.String(), q.ID()) {
		t.Errorf("text listing missing %s:\n%s", q.ID(), rec.Body.String())
	}

	rec = httptest.NewRecorder()
	pl.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/queries?format=json", nil))
	var out struct {
		Live   []QueryInfo `json:"live"`
		Recent []QueryInfo `json:"recent"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("json listing: %v", err)
	}
	if len(out.Live) != 1 || out.Live[0].ID != q.ID() {
		t.Errorf("json live = %+v, want %s", out.Live, q.ID())
	}

	// Kill requires POST.
	rec = httptest.NewRecorder()
	pl.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/queries?kill="+q.ID(), nil))
	if rec.Code != 405 {
		t.Errorf("GET kill = %d, want 405", rec.Code)
	}
	rec = httptest.NewRecorder()
	pl.ServeHTTP(rec, httptest.NewRequest("POST", "/debug/queries?kill="+q.ID(), nil))
	if rec.Code != 200 {
		t.Errorf("POST kill = %d: %s", rec.Code, rec.Body.String())
	}
	if _, err := q.Result(); !errors.Is(err, context.Canceled) {
		t.Fatalf("killed query err = %v, want context.Canceled", err)
	}
	rec = httptest.NewRecorder()
	pl.ServeHTTP(rec, httptest.NewRequest("POST", "/debug/queries?kill=q-999", nil))
	if rec.Code != 404 {
		t.Errorf("kill unknown = %d, want 404", rec.Code)
	}
}

// waitState polls until q leaves (or reaches, per want) the given state.
func waitState(t *testing.T, q *Query, s QueryState, want bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if (q.State() == s) == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("query %s stuck in state %v", q.ID(), q.State())
}
