package engine

import (
	"context"
	"sync/atomic"
	"time"

	"prestocs/internal/telemetry"
)

// QueryState is a live query's position in its lifecycle.
type QueryState int32

const (
	// StateQueued: admitted to the process list but waiting for an
	// admission slot (concurrency or memory budget).
	StateQueued QueryState = iota
	// StatePlanning: parse, analyze and optimization stages.
	StatePlanning
	// StateRunning: leaf and final execution stages.
	StateRunning
	// StateDraining: killed while running; workers are unwinding.
	StateDraining
	// StateDone: finished (result or error available).
	StateDone
)

func (s QueryState) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StatePlanning:
		return "planning"
	case StateRunning:
		return "running"
	case StateDraining:
		return "draining"
	case StateDone:
		return "done"
	default:
		return "unknown"
	}
}

// SubmitOption configures one Submit call.
type SubmitOption func(*submitOpts)

type submitOpts struct {
	session  *Session
	priority int
	memory   int64
}

// WithSession attaches a session (nil keeps the default session).
func WithSession(s *Session) SubmitOption {
	return func(o *submitOpts) { o.session = s }
}

// WithPriority sets the admission priority; higher values are admitted
// ahead of lower ones when queries queue for a slot. Default 0.
func WithPriority(p int) SubmitOption {
	return func(o *submitOpts) { o.priority = p }
}

// WithMemoryBudget reserves the given bytes against the engine's memory
// budget for the query's lifetime; 0 uses the admission config's
// per-query default. A reservation that alone exceeds the engine budget
// is shed immediately.
func WithMemoryBudget(bytes int64) SubmitOption {
	return func(o *submitOpts) { o.memory = bytes }
}

// Query is a handle to one submitted query. It is safe for concurrent
// use: Status and Kill may be called from any goroutine while Result
// blocks in another.
type Query struct {
	id       string
	sql      string
	session  *Session
	priority int
	memory   int64

	eng    *Engine
	ctx    context.Context
	cancel context.CancelFunc

	state    atomic.Int32
	killed   atomic.Bool
	submit   time.Time
	stats    *QueryStats
	admitted chan struct{} // closed by the process list on admission

	done chan struct{}
	res  *Result
	err  error
}

// ID returns the process-list identifier ("q-<n>").
func (q *Query) ID() string { return q.id }

// State returns the query's current lifecycle state.
func (q *Query) State() QueryState { return QueryState(q.state.Load()) }

func (q *Query) setState(s QueryState) { q.state.Store(int32(s)) }

// Result blocks until the query finishes and returns its outcome.
func (q *Query) Result() (*Result, error) {
	<-q.done
	return q.res, q.err
}

// Done returns a channel closed when the query finishes.
func (q *Query) Done() <-chan struct{} { return q.done }

// Kill cancels the query. A queued query leaves the wait list without
// running; a running query drains: its context is cancelled, which stops
// leaf workers, closes page sources and propagates to storage RPCs.
// Result then reports a context.Canceled error. Idempotent.
func (q *Query) Kill() {
	if !q.killed.CompareAndSwap(false, true) {
		return
	}
	q.state.CompareAndSwap(int32(StateRunning), int32(StateDraining))
	q.cancel()
}

// QueryInfo is a point-in-time snapshot of one query for the process
// list (and its /debug/queries rendering).
type QueryInfo struct {
	ID          string    `json:"id"`
	SQL         string    `json:"sql"`
	State       string    `json:"state"`
	Priority    int       `json:"priority,omitempty"`
	MemoryBytes int64     `json:"memory_bytes"`
	Submitted   time.Time `json:"submitted"`
	Elapsed     float64   `json:"elapsed_ms"`
	Rows        int64     `json:"rows"`
	BytesMoved  int64     `json:"bytes_moved"`
	Error       string    `json:"error,omitempty"`
}

// Status snapshots the query: state, elapsed time and the live rows and
// bytes-moved counters wired from ScanStats while the query runs.
func (q *Query) Status() QueryInfo {
	rows, bytes := q.stats.Scan.LiveCounters()
	info := QueryInfo{
		ID:          q.id,
		SQL:         q.sql,
		State:       q.State().String(),
		Priority:    q.priority,
		MemoryBytes: q.memory,
		Submitted:   q.submit,
		Elapsed:     float64(time.Since(q.submit).Microseconds()) / 1000,
		Rows:        rows,
		BytesMoved:  bytes,
	}
	if q.State() == StateDone {
		info.Elapsed = float64(q.stats.Total.Microseconds()) / 1000
		if q.err != nil {
			info.Error = q.err.Error()
		}
	}
	return info
}

// run is the query's goroutine: wait for admission, execute, release.
func (q *Query) run() {
	e := q.eng
	pl := e.procs
	waitStart := time.Now()
	select {
	case <-q.admitted:
	case <-q.ctx.Done():
		if pl.abandonQueued(q) {
			q.finish(nil, q.ctx.Err())
			return
		}
		// Lost the race against a concurrent admission: a slot is held,
		// so run the normal path (it fails fast on the dead context) and
		// release the slot properly.
		<-q.admitted
	}
	e.Metrics.Histogram(telemetry.MetricAdmissionWait).ObserveDuration(time.Since(waitStart))
	res, err := e.runQuery(q)
	pl.release(q)
	q.finish(res, err)
}

// finish publishes the outcome and retires the query from the process
// list's live view.
func (q *Query) finish(res *Result, err error) {
	q.res, q.err = res, err
	q.setState(StateDone)
	q.cancel()
	q.eng.procs.noteDone(q)
	close(q.done)
}
