package engine

import (
	"context"
	"fmt"
	"time"

	"prestocs/internal/analyzer"
	"prestocs/internal/plan"
	"prestocs/internal/sqlparser"
	"prestocs/internal/types"
)

// IngestConnector is the optional connector capability behind
// engine.Ingest: accept fully-typed rows for a table and make them
// durable and queryable (the OCS connector routes them through the
// ingest buffer to parquetlite objects committed with fresh zone maps).
type IngestConnector interface {
	IngestRows(ctx context.Context, schema, table string, rows [][]types.Value) (int64, error)
}

// SnapshotHandle is implemented by table handles that pin a metastore
// snapshot at resolution time. The engine releases every pinned handle
// exactly once when its query finishes, allowing deferred physical
// deletes (compaction garbage collection) to proceed.
type SnapshotHandle interface {
	ReleaseSnapshot()
}

// queryResolver wraps the engine's table resolution for one query,
// recording every handle it created so their snapshot pins release when
// the query completes — including handles resolved for plans that later
// fail to optimize or execute.
type queryResolver struct {
	eng     *Engine
	handles []plan.TableHandle
}

func (r *queryResolver) ResolveTable(catalog, table string) (plan.TableHandle, error) {
	h, err := r.eng.ResolveTable(catalog, table)
	if err == nil {
		r.handles = append(r.handles, h)
	}
	return h, err
}

// releaseAll releases the snapshot pins of every recorded handle.
// Handle copies made by the optimizer share the original's pin, and
// release is idempotent, so releasing the originals is sufficient.
func (r *queryResolver) releaseAll() {
	for _, h := range r.handles {
		if s, ok := h.(SnapshotHandle); ok {
			s.ReleaseSnapshot()
		}
	}
}

// IngestResult reports one completed INSERT.
type IngestResult struct {
	Catalog string
	Table   string
	// Rows is the row count accepted and committed.
	Rows int64
	// Duration covers parse through commit — the statement's
	// time-to-queryable.
	Duration time.Duration
}

// Ingest executes one INSERT statement: parse, resolve the target
// table, fold and coerce the VALUES tuples to the table schema, and
// hand the typed rows to the catalog's ingest-capable connector. On
// return the rows are durable and visible to new queries (queries
// already running keep their pinned snapshot and do not see them).
func (e *Engine) Ingest(ctx context.Context, sql string) (*IngestResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	stmt, err := sqlparser.ParseStatement(sql)
	if err != nil {
		return nil, err
	}
	ins, ok := stmt.(*sqlparser.InsertStmt)
	if !ok {
		return nil, fmt.Errorf("engine: Ingest wants an INSERT statement; use Submit for queries")
	}
	catalog := ins.Table.Schema
	if catalog == "" {
		catalog = e.DefaultCatalog
	}
	conn, err := e.connector(catalog)
	if err != nil {
		return nil, err
	}
	ic, ok := conn.(IngestConnector)
	if !ok {
		return nil, fmt.Errorf("engine: catalog %q does not support ingest", catalog)
	}
	// Resolve the table only for its schema; release the snapshot pin
	// immediately — ingestion appends, it does not scan.
	h, err := conn.TableHandle(catalog, ins.Table.Table)
	if err != nil {
		return nil, err
	}
	schema := h.ScanSchema()
	if s, ok := h.(SnapshotHandle); ok {
		s.ReleaseSnapshot()
	}
	rows, err := analyzer.AnalyzeInsert(ins, schema)
	if err != nil {
		return nil, err
	}
	n, err := ic.IngestRows(ctx, catalog, ins.Table.Table, rows)
	if err != nil {
		return nil, err
	}
	return &IngestResult{Catalog: catalog, Table: ins.Table.Table, Rows: n, Duration: time.Since(start)}, nil
}
