package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"prestocs/internal/analyzer"
	"prestocs/internal/bloom"
	"prestocs/internal/column"
	"prestocs/internal/costmodel"
	"prestocs/internal/exec"
	"prestocs/internal/optimizer"
	"prestocs/internal/plan"
	"prestocs/internal/sqlparser"
	"prestocs/internal/telemetry"
	"prestocs/internal/types"
)

// Engine is the coordinator: it owns the connector registry, plans
// queries and drives distributed execution.
type Engine struct {
	mu         sync.RWMutex
	connectors map[string]Connector
	listeners  []EventListener

	// DefaultCatalog resolves unqualified table names.
	DefaultCatalog string
	// Workers is the leaf-stage parallelism (like Presto task
	// concurrency). Defaults to GOMAXPROCS.
	Workers int

	// Cost parameterizes engine-side planning decisions, currently the
	// broadcast-vs-partitioned join strategy. The zero value falls back
	// to costmodel.Default() thresholds.
	Cost costmodel.Params

	// Tracer, when set, gives every query a root span with one child per
	// coordinator stage; the trace continues across RPC boundaries into
	// the frontend and storage nodes. Metrics, when set, receives one
	// observation per query for the engine_query_* series. Both may stay
	// nil (no-op).
	Tracer  *telemetry.Tracer
	Metrics *telemetry.Registry

	// procs is the live-query registry and admission controller behind
	// Submit; see processlist.go.
	procs *ProcessList
}

// New returns an engine with no connectors.
func New() *Engine {
	e := &Engine{connectors: make(map[string]Connector), Workers: runtime.GOMAXPROCS(0)}
	e.procs = newProcessList(e)
	return e
}

// Processes exposes the live-query registry (for /debug/queries and
// operational tooling).
func (e *Engine) Processes() *ProcessList { return e.procs }

// SetAdmission installs admission budgets; see AdmissionConfig. The
// zero value (the default) admits everything immediately.
func (e *Engine) SetAdmission(cfg AdmissionConfig) { e.procs.SetAdmission(cfg) }

// AddConnector registers a connector under its catalog name.
func (e *Engine) AddConnector(c Connector) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.connectors[c.Name()] = c
}

// AddEventListener registers a query-completion listener.
func (e *Engine) AddEventListener(l EventListener) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.listeners = append(e.listeners, l)
}

func (e *Engine) connector(name string) (Connector, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	c, ok := e.connectors[name]
	if !ok {
		return nil, fmt.Errorf("engine: no connector for catalog %q", name)
	}
	return c, nil
}

// ResolveTable implements analyzer.Resolver.
func (e *Engine) ResolveTable(catalog, table string) (plan.TableHandle, error) {
	c, err := e.connector(catalog)
	if err != nil {
		return nil, err
	}
	return c.TableHandle(catalog, table)
}

// SessionJoinBloom is the session property controlling join bloom-filter
// pushdown into the probe-side scan; set to "off" to disable (the
// benchmark sweep measures both arms this way). Any other value — or
// unset — leaves it on.
const SessionJoinBloom = "engine.join_bloom"

// Result is a completed query.
type Result struct {
	Schema *types.Schema
	Page   *column.Page
	Stats  *QueryStats
}

// Submit enqueues one SQL query and returns its handle. Admission
// control (SetAdmission) may queue the query or shed it synchronously
// with an error matching rpc.ErrOverloaded; an admitted query runs in
// its own goroutine and the handle's Result blocks for the outcome.
// The context governs the whole query: cancelling it (or hitting its
// deadline) stops the leaf-stage workers, closes every open page source
// and finishes the query promptly with the context's error. The deadline
// also propagates to storage RPCs issued by connectors.
func (e *Engine) Submit(ctx context.Context, sql string, opts ...SubmitOption) (*Query, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var o submitOpts
	for _, f := range opts {
		f(&o)
	}
	if o.session == nil {
		o.session = NewSession()
	}
	q := &Query{
		sql:      sql,
		session:  o.session,
		priority: o.priority,
		memory:   o.memory,
		eng:      e,
		submit:   time.Now(),
		stats:    &QueryStats{},
		admitted: make(chan struct{}),
		done:     make(chan struct{}),
	}
	q.ctx, q.cancel = context.WithCancel(ctx)
	if err := e.procs.admit(q); err != nil {
		q.cancel()
		return nil, err
	}
	go q.run()
	return q, nil
}

// Execute runs one SQL query under the session (nil for defaults) and
// blocks for its result.
//
// Deprecated: Execute is a thin shim over Submit for callers that do not
// need the query handle; new code should use Submit, which adds
// admission control, live status and kill.
func (e *Engine) Execute(ctx context.Context, sql string, session *Session) (*Result, error) {
	q, err := e.Submit(ctx, sql, WithSession(session))
	if err != nil {
		return nil, err
	}
	return q.Result()
}

// runQuery executes one admitted query end to end: parse, analyze,
// optimize, connector optimization, then distributed execution. It is
// the body behind the Query handle; q.ctx governs cancellation.
func (e *Engine) runQuery(q *Query) (*Result, error) {
	ctx, sql, session, stats := q.ctx, q.sql, q.session, q.stats
	q.setState(StatePlanning)
	startTotal := time.Now()

	// Root query span: the ambient tracer, registry and span travel in
	// the context from here on, so the connector, retry loop and rpc
	// client attach their spans and metrics without extra plumbing, and
	// the trace continues across the wire into frontend and nodes.
	ctx = telemetry.WithTracer(ctx, e.Tracer)
	ctx = telemetry.WithRegistry(ctx, e.Metrics)
	ctx, qspan := telemetry.StartSpan(ctx, "query")
	if qspan != nil {
		stats.TraceID = qspan.Trace
	}
	fail := func(err error) (*Result, error) {
		e.observeQuery(qspan, stats, err)
		return nil, err
	}

	// 1-2. Parse + analyze.
	start := time.Now()
	_, stageSpan := telemetry.StartSpan(ctx, "engine.parse_analyze")
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		stageSpan.End()
		return fail(err)
	}
	// Table resolution goes through a per-query resolver so every handle
	// that pinned a metastore snapshot releases it when this query is
	// done — however the query ends. Until then, compaction defers the
	// physical deletion of any object the pinned snapshots reference.
	resolver := &queryResolver{eng: e}
	defer resolver.releaseAll()
	logical, err := analyzer.Analyze(stmt, resolver, e.DefaultCatalog)
	stageSpan.End()
	if err != nil {
		return fail(err)
	}
	stats.ParseAnalyze = time.Since(start)

	// 3. Global optimization.
	start = time.Now()
	_, stageSpan = telemetry.StartSpan(ctx, "engine.global_opt")
	optimized, err := optimizer.Optimize(logical)
	stageSpan.End()
	if err != nil {
		return fail(err)
	}
	stats.GlobalOpt = time.Since(start)

	// 4. Connector-specific (local) optimization. For joins, the probe
	// side's connector drives local optimization and pushdown reporting.
	scan := plan.FindScan(optimized)
	if join := plan.FindJoin(optimized); join != nil {
		scan = plan.FindScan(join.Probe)
	}
	if scan == nil {
		return fail(fmt.Errorf("engine: plan has no table scan"))
	}
	conn, err := e.connector(scan.Handle.ConnectorName())
	if err != nil {
		return fail(err)
	}
	start = time.Now()
	_, stageSpan = telemetry.StartSpan(ctx, "engine.connector_opt")
	if opt := conn.PlanOptimizer(); opt != nil {
		optimized, err = opt.Optimize(optimized, session)
		if err != nil {
			stageSpan.End()
			return fail(err)
		}
	}
	stageSpan.End()
	stats.ConnectorOpt = time.Since(start)
	stats.PlanText = plan.Format(optimized)

	// 5-6. Split generation, scheduling, execution.
	scan = plan.FindScan(optimized)
	join := plan.FindJoin(optimized)
	if join != nil {
		scan = plan.FindScan(join.Probe)
	}
	if scan == nil {
		return fail(fmt.Errorf("engine: optimized plan lost its scan"))
	}
	if ph, ok := scan.Handle.(PushdownReporter); ok {
		stats.PushedDown = ph.PushedOperators()
		stats.UsedPushdown = len(stats.PushedDown) > 0
	}
	start = time.Now()
	q.setState(StateRunning)
	execCtx, execSpan := telemetry.StartSpan(ctx, "engine.execution")
	var page *column.Page
	var schema *types.Schema
	if join != nil {
		page, schema, err = e.runJoin(execCtx, optimized, join, scan, conn, session, stats)
	} else {
		page, schema, err = e.run(execCtx, optimized, scan, conn, stats)
	}
	execSpan.End()
	stats.Execution = time.Since(start)
	stats.Total = time.Since(startTotal)
	if err == nil {
		stats.ResultRows = page.NumRows()
	}
	e.observeQuery(qspan, stats, err)

	event := QueryEvent{SQL: sql, Catalog: scan.Catalog, Table: scan.Table, Stats: stats, Err: err}
	e.mu.RLock()
	listeners := append([]EventListener(nil), e.listeners...)
	e.mu.RUnlock()
	for _, l := range listeners {
		l.QueryCompleted(event)
	}
	if err != nil {
		return nil, err
	}
	return &Result{Schema: schema, Page: page, Stats: stats}, nil
}

// PushdownReporter lets handles report which operators they absorbed.
type PushdownReporter interface {
	PushedOperators() []string
}

// run executes a single-table physical plan: leaf stage per split on
// the worker pool, final stage on the coordinator, pipelined through a
// channel.
func (e *Engine) run(ctx context.Context, root plan.Node, scan *plan.TableScan, conn Connector, stats *QueryStats) (*column.Page, *types.Schema, error) {
	leafChain, finalChain, err := splitAtExchange(root)
	if err != nil {
		return nil, nil, err
	}
	stage, nsplits, err := e.startLeafStage(ctx, leafChain, scan, conn, stats, nil)
	if err != nil {
		return nil, nil, err
	}
	stats.Splits = nsplits
	exchangeSchema := leafOutputSchema(leafChain, scan)
	return e.finishFinalStage(stage, exchangeSchema, finalChain, nil, stats)
}

// runJoin executes a plan containing one inner equi-join. The build
// side runs first as its own leaf stage and is indexed into a hash
// table on the coordinator. Strategy then picks where the probe
// happens: broadcast replicates the (small) table into every leaf
// worker so probing parallelizes with the scan; partitioned keeps the
// table on the coordinator and probes the exchange stream in the final
// stage. When the build side has a single key and the probe branch is
// filter-only over a BloomJoinHandle, a bloom filter over the build
// keys is pushed into the probe scan so storage drops non-matching rows
// before they cross the network.
func (e *Engine) runJoin(ctx context.Context, root plan.Node, join *plan.Join, probeScan *plan.TableScan, probeConn Connector, session *Session, stats *QueryStats) (*column.Page, *types.Schema, error) {
	above, err := chainToJoin(root)
	if err != nil {
		return nil, nil, err
	}
	probeLeaf, probeFinal, err := splitAtExchange(join.Probe)
	if err != nil {
		return nil, nil, err
	}
	if len(probeFinal) > 0 {
		return nil, nil, fmt.Errorf("engine: join probe has operators above its exchange")
	}

	// Build stage: run the whole build branch on the worker pool, drain
	// it into the hash table. BuildJoinTable returns a truncated table
	// without error when workers failed, so the stage error wins.
	buildScan := plan.FindScan(join.Build)
	if buildScan == nil {
		return nil, nil, fmt.Errorf("engine: join build side has no scan")
	}
	buildConn, err := e.connector(buildScan.Handle.ConnectorName())
	if err != nil {
		return nil, nil, err
	}
	buildChain, err := branchChain(join.Build)
	if err != nil {
		return nil, nil, err
	}
	buildStage, buildSplits, err := e.startLeafStage(ctx, buildChain, buildScan, buildConn, stats, nil)
	if err != nil {
		return nil, nil, err
	}
	buildSrc := exec.NewFuncSource(leafOutputSchema(buildChain, buildScan), func() (*column.Page, error) {
		page, ok := <-buildStage.Pages
		if !ok {
			return nil, nil
		}
		return page, nil
	})
	table, err := exec.BuildJoinTable(buildSrc, join.BuildKeys, &stats.FinalMeter)
	buildStage.Drain()
	if werr := buildStage.Err(); werr != nil {
		return nil, nil, werr
	}
	if err != nil {
		return nil, nil, err
	}
	stats.JoinBuildRows = int64(table.Rows())

	strategy := join.Strategy
	if strategy == plan.JoinAuto {
		if e.Cost.BroadcastJoin(int64(table.Rows()), table.Bytes()) {
			strategy = plan.JoinBroadcast
		} else {
			strategy = plan.JoinPartitioned
		}
	}

	// Bloom pushdown into the probe scan. Filter-only probe branches
	// keep scan-schema ordinals intact, so the join key ordinal maps
	// straight onto the handle.
	if len(join.BuildKeys) == 1 && session.Get(SessionJoinBloom) != "off" && filterOnly(probeLeaf) {
		if bh, ok := probeScan.Handle.(plan.BloomJoinHandle); ok {
			if f, err := table.BuildBloom(bloom.DefaultBitsPerKey); err == nil {
				if nh, ok := bh.WithJoinBloom(join.ProbeKeys[0], f, int64(table.Rows())); ok {
					probeScan.Handle = nh
					if ph, ok := nh.(PushdownReporter); ok {
						stats.PushedDown = ph.PushedOperators()
						stats.UsedPushdown = len(stats.PushedDown) > 0
					}
				}
			}
		}
	}

	// Probe stage.
	var wrap func(exec.Operator, *exec.Meter) (exec.Operator, error)
	var extra func(exec.Operator) (exec.Operator, error)
	var exchangeSchema *types.Schema
	switch strategy {
	case plan.JoinBroadcast:
		stats.JoinStrategy = "broadcast"
		// The table is read-only after build; every worker probes it.
		wrap = func(op exec.Operator, meter *exec.Meter) (exec.Operator, error) {
			return exec.NewHashJoinProbe(op, table, join.ProbeKeys, meter)
		}
		exchangeSchema = join.OutputSchema()
	default:
		stats.JoinStrategy = "partitioned"
		extra = func(src exec.Operator) (exec.Operator, error) {
			return exec.NewHashJoinProbe(src, table, join.ProbeKeys, &stats.FinalMeter)
		}
		exchangeSchema = leafOutputSchema(probeLeaf, probeScan)
	}
	probeStage, probeSplits, err := e.startLeafStage(ctx, probeLeaf, probeScan, probeConn, stats, wrap)
	if err != nil {
		return nil, nil, err
	}
	stats.Splits = probeSplits + buildSplits
	return e.finishFinalStage(probeStage, exchangeSchema, above, extra, stats)
}

// chainToJoin returns the single-child spine strictly above the plan's
// join, bottom-up.
func chainToJoin(root plan.Node) ([]plan.Node, error) {
	var above []plan.Node
	n := root
	for {
		if _, ok := n.(*plan.Join); ok {
			break
		}
		kids := n.Children()
		if len(kids) != 1 {
			return nil, fmt.Errorf("engine: unsupported plan shape above join (%T)", n)
		}
		above = append(above, n)
		n = kids[0]
	}
	for i, j := 0, len(above)-1; i < j; i, j = i+1, j-1 {
		above[i], above[j] = above[j], above[i]
	}
	return above, nil
}

// branchChain returns an exchange-free join branch's nodes strictly
// above its scan, bottom-up.
func branchChain(root plan.Node) ([]plan.Node, error) {
	var chain []plan.Node
	n := root
	for {
		if _, ok := n.(*plan.TableScan); ok {
			break
		}
		kids := n.Children()
		if len(kids) != 1 {
			return nil, fmt.Errorf("engine: non-linear join branch (%T)", n)
		}
		chain = append(chain, n)
		n = kids[0]
	}
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return chain, nil
}

// filterOnly reports whether every node in the chain is a Filter (the
// shape under which scan-schema column ordinals survive unchanged).
func filterOnly(chain []plan.Node) bool {
	for _, n := range chain {
		if _, ok := n.(*plan.Filter); !ok {
			return false
		}
	}
	return true
}

// leafStage is one scan's distributed fan-out in flight: Pages streams
// worker output and closes when every split is done (or the stage
// failed). Err is valid only after Pages closes.
type leafStage struct {
	Pages  chan *column.Page
	failed *atomic.Bool
	errFn  func() error
}

// Err returns the first worker error; call only after Pages has closed.
func (ls *leafStage) Err() error { return ls.errFn() }

// Drain discards any unconsumed pages (and so unblocks workers) until
// Pages closes.
func (ls *leafStage) Drain() {
	for range ls.Pages {
	}
}

// startLeafStage launches the worker pool over the scan's splits,
// compiling chain (bottom-up, exchange-free) onto each split's page
// source. wrap, when set, is applied per worker on top of the compiled
// pipeline — the broadcast hash join probes inside the workers this way.
// Worker operator time lands in stats.LeafMeter.
func (e *Engine) startLeafStage(ctx context.Context, chain []plan.Node, scan *plan.TableScan, conn Connector, stats *QueryStats, wrap func(exec.Operator, *exec.Meter) (exec.Operator, error)) (*leafStage, int, error) {
	var splits []Split
	var err error
	if ss, ok := conn.(SplitSource); ok {
		splits, err = ss.SplitsWithStats(scan.Handle, &stats.Scan)
	} else {
		splits, err = conn.Splits(scan.Handle)
	}
	if err != nil {
		return nil, 0, err
	}

	workers := e.Workers
	if workers <= 0 {
		workers = 1
	}
	if workers > len(splits) {
		workers = len(splits)
	}
	if workers == 0 {
		workers = 1
	}

	splitCh := make(chan Split, len(splits))
	for _, s := range splits {
		splitCh <- s
	}
	close(splitCh)

	pageCh := make(chan *column.Page, workers*2)
	var workerErr error
	var errOnce sync.Once
	var failed atomic.Bool
	fail := func(err error) {
		errOnce.Do(func() { workerErr = err })
		failed.Store(true)
	}
	var wg sync.WaitGroup
	var meterMu sync.Mutex

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var meter exec.Meter
			defer func() {
				meterMu.Lock()
				stats.LeafMeter.Add(meter)
				meterMu.Unlock()
			}()
			// runSplit processes one split; the deferred close releases
			// sources that hold external resources (e.g. an open OCS
			// result stream) even when the pipeline stops early.
			runSplit := func(split Split) bool {
				// Adaptive connectors price pushdown vs raw scan per split
				// at schedule time; the engine just routes the decision.
				var source exec.Operator
				var err error
				if ac, ok := conn.(AdaptiveConnector); ok {
					dec := ac.DecideSplit(scan.Handle, split, &stats.Scan)
					source, err = ac.CreatePageSourceDecided(ctx, scan.Handle, split, dec, &stats.Scan)
				} else {
					source, err = conn.CreatePageSource(ctx, scan.Handle, split, &stats.Scan)
				}
				if err != nil {
					fail(err)
					return false
				}
				defer closeSource(source)
				pipeline, err := compileChain(chain, source, &meter)
				if err != nil {
					fail(err)
					return false
				}
				if wrap != nil {
					if pipeline, err = wrap(pipeline, &meter); err != nil {
						fail(err)
						return false
					}
				}
				for {
					page, err := pipeline.Next()
					if err != nil {
						fail(err)
						return false
					}
					if page == nil {
						return true
					}
					// After a failure elsewhere, stop streaming pages:
					// the final stage may already have stopped draining.
					if failed.Load() {
						return false
					}
					select {
					case pageCh <- page:
					case <-ctx.Done():
						fail(ctx.Err())
						return false
					}
				}
			}
			for split := range splitCh {
				// Fast-fail: once any worker errors or the query context
				// ends, remaining splits are pointless work — the query
				// is already doomed.
				if failed.Load() {
					return
				}
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
				if !runSplit(split) {
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(pageCh)
	}()

	return &leafStage{
		Pages:  pageCh,
		failed: &failed,
		errFn:  func() error { return workerErr },
	}, len(splits), nil
}

// finishFinalStage consumes a leaf stage's exchange output through the
// final chain on the coordinator. extra, when set, is inserted between
// the exchange and the final chain (the partitioned hash join probe).
func (e *Engine) finishFinalStage(stage *leafStage, exchangeSchema *types.Schema, finalChain []plan.Node, extra func(exec.Operator) (exec.Operator, error), stats *QueryStats) (*column.Page, *types.Schema, error) {
	source := exec.Operator(exec.NewFuncSource(exchangeSchema, func() (*column.Page, error) {
		page, ok := <-stage.Pages
		if !ok {
			return nil, nil
		}
		return page, nil
	}))
	var err error
	if extra != nil {
		if source, err = extra(source); err != nil {
			stage.Drain()
			return nil, nil, err
		}
	}
	finalOp, err := compileChain(finalChain, source, &stats.FinalMeter)
	if err != nil {
		// Drain workers before returning so goroutines do not leak.
		stage.Drain()
		return nil, nil, err
	}
	result, err := exec.DrainToPage(finalOp)
	stage.Drain() // drain any remainder (e.g. final Limit stopped early)
	if werr := stage.Err(); werr != nil {
		return nil, nil, werr
	}
	if err != nil {
		return nil, nil, err
	}
	return result, result.Schema, nil
}

// closeSource releases a page source that holds external resources.
// Operators are pull-based with no mandatory lifecycle, so sources that
// need cleanup (streaming connectors) expose an optional Close.
func closeSource(source exec.Operator) {
	if c, ok := source.(interface{ Close() error }); ok {
		c.Close()
	}
}

// splitAtExchange returns the node chains below and above the Exchange,
// each ordered bottom-up (scan side first) and excluding the scan and the
// exchange themselves.
func splitAtExchange(root plan.Node) (leaf, final []plan.Node, err error) {
	var chain []plan.Node
	n := root
	for {
		chain = append(chain, n)
		kids := n.Children()
		if len(kids) == 0 {
			break
		}
		if len(kids) > 1 {
			return nil, nil, fmt.Errorf("engine: non-linear plan")
		}
		n = kids[0]
	}
	// chain is root-first; find exchange and scan.
	exchangeIdx := -1
	for i, node := range chain {
		if _, ok := node.(*plan.Exchange); ok {
			exchangeIdx = i
			break
		}
	}
	if exchangeIdx < 0 {
		return nil, nil, fmt.Errorf("engine: plan has no exchange")
	}
	if _, ok := chain[len(chain)-1].(*plan.TableScan); !ok {
		return nil, nil, fmt.Errorf("engine: plan leaf is not a scan")
	}
	// Leaf: nodes strictly between scan and exchange, bottom-up.
	for i := len(chain) - 2; i > exchangeIdx; i-- {
		leaf = append(leaf, chain[i])
	}
	// Final: nodes strictly above exchange, bottom-up.
	for i := exchangeIdx - 1; i >= 0; i-- {
		final = append(final, chain[i])
	}
	return leaf, final, nil
}

// leafOutputSchema computes the schema pages have when they reach the
// exchange.
func leafOutputSchema(leafChain []plan.Node, scan *plan.TableScan) *types.Schema {
	if len(leafChain) == 0 {
		return scan.Handle.ScanSchema()
	}
	return leafChain[len(leafChain)-1].OutputSchema()
}

// compileChain lowers a bottom-up node chain onto a source operator.
func compileChain(chain []plan.Node, source exec.Operator, meter *exec.Meter) (exec.Operator, error) {
	op := source
	var err error
	for _, node := range chain {
		switch t := node.(type) {
		case *plan.Filter:
			op, err = exec.NewFilter(op, t.Condition, meter)
		case *plan.Project:
			op, err = exec.NewProject(op, t.Expressions, t.Names, meter)
		case *plan.Aggregate:
			mode := exec.AggSingle
			switch t.Step {
			case plan.AggPartial:
				mode = exec.AggPartial
			case plan.AggFinal:
				mode = exec.AggFinal
			}
			op, err = exec.NewHashAggregate(op, t.Keys, t.Measures, mode, meter)
		case *plan.Sort:
			op, err = exec.NewSort(op, plan.SortSpecs(t.Keys), meter)
		case *plan.TopN:
			op, err = exec.NewTopN(op, plan.SortSpecs(t.Keys), t.Count, meter)
		case *plan.Limit:
			op = exec.NewLimit(op, t.Count)
		case *plan.Output:
			op, err = newRename(op, t.Names)
		default:
			return nil, fmt.Errorf("engine: cannot compile %T", node)
		}
		if err != nil {
			return nil, err
		}
	}
	return op, nil
}

// rename relabels columns without copying data (Output node).
type rename struct {
	input  exec.Operator
	schema *types.Schema
}

func newRename(input exec.Operator, names []string) (exec.Operator, error) {
	in := input.Schema()
	cols := make([]types.Column, in.Len())
	for i, c := range in.Columns {
		name := c.Name
		if i < len(names) && names[i] != "" {
			name = names[i]
		}
		cols[i] = types.Column{Name: name, Type: c.Type}
	}
	return &rename{input: input, schema: types.NewSchema(cols...)}, nil
}

func (r *rename) Schema() *types.Schema { return r.schema }

func (r *rename) Next() (*column.Page, error) {
	page, err := r.input.Next()
	if err != nil || page == nil {
		return nil, err
	}
	return &column.Page{Schema: r.schema, Vectors: page.Vectors}, nil
}

var _ = describePushdown // referenced by logging-oriented callers
