package hive

import (
	"context"
	"fmt"
	"sort"
	"testing"

	"prestocs/internal/column"
	"prestocs/internal/compress"
	"prestocs/internal/engine"
	"prestocs/internal/metastore"
	"prestocs/internal/objstore"
	"prestocs/internal/parquetlite"
	"prestocs/internal/types"
)

// fixture: 4 objects × 50 rows of (id, v, g) in an object store + catalog.
func setup(t *testing.T) (*engine.Engine, *objstore.Client) {
	t.Helper()
	schema := types.NewSchema(
		types.Column{Name: "id", Type: types.Int64},
		types.Column{Name: "v", Type: types.Float64},
		types.Column{Name: "g", Type: types.String},
	)
	srv := objstore.NewServer(objstore.NewStore())
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cli := objstore.NewClient(addr)
	t.Cleanup(func() {
		cli.Close()
		srv.Close()
	})

	var objects []string
	var images [][]byte
	n := 0
	for o := 0; o < 4; o++ {
		p := column.NewPage(schema)
		for r := 0; r < 50; r++ {
			p.AppendRow(
				types.IntValue(int64(n)),
				types.FloatValue(float64(n)*0.25),
				types.StringValue([]string{"x", "y"}[n%2]),
			)
			n++
		}
		img, err := parquetlite.WritePages(schema, parquetlite.WriterOptions{Codec: compress.Snappy, RowGroupSize: 16}, p)
		if err != nil {
			t.Fatal(err)
		}
		key := fmt.Sprintf("part-%d.pql", o)
		if err := cli.Put(context.Background(), "data", key, img); err != nil {
			t.Fatal(err)
		}
		objects = append(objects, key)
		images = append(images, img)
	}

	rows, bytes, colStats, err := metastore.StatsFromObjects(schema, images)
	if err != nil {
		t.Fatal(err)
	}
	ms := metastore.New()
	stats := map[string]metastore.ColumnStats{}
	for name, cs := range colStats {
		cs.NDV = 100
		stats[name] = cs
	}
	if err := ms.Register(&metastore.Table{
		Schema: "hive", Name: "t", Columns: schema,
		Bucket: "data", Objects: objects, Codec: compress.Snappy,
		RowCount: rows, TotalBytes: bytes, ColumnStats: stats,
	}); err != nil {
		t.Fatal(err)
	}

	e := engine.New()
	e.DefaultCatalog = "hive"
	e.Workers = 3
	e.AddConnector(New("hive", ms, cli))
	return e, cli
}

func TestFilterPushdownViaSelect(t *testing.T) {
	e, _ := setup(t)
	res, err := e.Execute(context.Background(), "SELECT id, v FROM t WHERE id >= 190", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Page.NumRows() != 10 {
		t.Fatalf("rows = %d", res.Page.NumRows())
	}
	if len(res.Stats.PushedDown) == 0 {
		t.Errorf("no pushdown recorded: %+v", res.Stats.PushedDown)
	}
	// Data movement should be far below the full dataset (CSV of 10 rows).
	moved := res.Stats.Scan.Snapshot().BytesMoved
	if moved > 2000 {
		t.Errorf("bytes moved = %d, expected small CSV", moved)
	}
}

func TestNoPushdownFullTransfer(t *testing.T) {
	e, _ := setup(t)
	session := engine.NewSession().Set(SessionSelectPushdown, "false")
	res, err := e.Execute(context.Background(), "SELECT id, v FROM t WHERE id >= 190", session)
	if err != nil {
		t.Fatal(err)
	}
	if res.Page.NumRows() != 10 {
		t.Fatalf("rows = %d", res.Page.NumRows())
	}
	if res.Stats.UsedPushdown && contains(res.Stats.PushedDown, "filter") {
		t.Error("filter pushed despite session off")
	}
	// Full objects were transferred.
	moved := res.Stats.Scan.Snapshot().BytesMoved
	if moved < 4000 {
		t.Errorf("bytes moved = %d, expected full objects", moved)
	}
}

// rowMultiset renders each row as a string and sorts them.
func rowMultiset(p *column.Page) []string {
	out := make([]string, p.NumRows())
	for i := range out {
		row := p.Row(i)
		s := ""
		for _, v := range row {
			s += v.String() + "|"
		}
		out[i] = s
	}
	sort.Strings(out)
	return out
}

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

func TestPushdownEqualsNoPushdown(t *testing.T) {
	e, _ := setup(t)
	queries := []string{
		"SELECT id, v, g FROM t WHERE v BETWEEN 10.0 AND 20.0",
		"SELECT g, count(*) AS c, sum(v) AS s FROM t GROUP BY g ORDER BY g",
		"SELECT id FROM t WHERE g = 'x' ORDER BY id DESC LIMIT 7",
		"SELECT count(*) AS c FROM t WHERE id < 0",
	}
	off := engine.NewSession().Set(SessionSelectPushdown, "false")
	for _, q := range queries {
		with, err := e.Execute(context.Background(), q, nil)
		if err != nil {
			t.Fatalf("%s (pushdown): %v", q, err)
		}
		without, err := e.Execute(context.Background(), q, off)
		if err != nil {
			t.Fatalf("%s (no pushdown): %v", q, err)
		}
		// Unordered queries may return rows in any order (parallel
		// splits); compare as multisets of rendered rows.
		a := rowMultiset(with.Page)
		b := rowMultiset(without.Page)
		if len(a) != len(b) {
			t.Fatalf("%s: rows %d vs %d", q, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("%s row %d: %q vs %q", q, i, a[i], b[i])
			}
		}
	}
}

func TestAggregationStaysOnCompute(t *testing.T) {
	// The Hive connector must never absorb aggregation — it runs engine
	// side over select results.
	e, _ := setup(t)
	res, err := e.Execute(context.Background(), "SELECT g, min(v) AS m FROM t WHERE id >= 100 GROUP BY g ORDER BY g", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Page.NumRows() != 2 {
		t.Fatalf("groups = %d", res.Page.NumRows())
	}
	for _, op := range res.Stats.PushedDown {
		if op == "aggregation" || op == "topn" {
			t.Errorf("hive connector pushed %q", op)
		}
	}
	if res.Page.Row(0)[1].F != 25.0 { // min v for g=x with id>=100 is id=100 -> 25.0
		t.Errorf("min = %v", res.Page.Row(0)[1])
	}
}

func TestHandleString(t *testing.T) {
	e, _ := setup(t)
	res, err := e.Execute(context.Background(), "SELECT v FROM t WHERE v > 1.0", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PlanText == "" {
		t.Error("plan text empty")
	}
}
