// Package hive implements the baseline connector modeled on Presto's Hive
// connector over S3-compatible object storage: catalog metadata comes
// from the metastore, one split per object, and pushdown is limited to
// WHERE-clause filtering and column projection through the S3 Select-like
// API (row-oriented CSV results) — exactly the capability ceiling the
// paper attributes to conventional object storage (§2.4). Everything else
// (aggregation, top-N, sorting) stays on the compute side.
package hive

import (
	"context"
	"fmt"
	"strings"
	"time"

	"prestocs/internal/cache"
	"prestocs/internal/column"
	"prestocs/internal/engine"
	"prestocs/internal/exec"
	"prestocs/internal/expr"
	"prestocs/internal/metastore"
	"prestocs/internal/objstore"
	"prestocs/internal/parquetlite"
	"prestocs/internal/plan"
	"prestocs/internal/telemetry"
	"prestocs/internal/types"
)

// SessionSelectPushdown toggles the S3 Select path ("true"/"false",
// default true). With it off, every split is a whole-object GET.
const SessionSelectPushdown = "hive.select_pushdown"

// Connector is the Hive-like connector instance for one catalog.
type Connector struct {
	catalog string
	meta    *metastore.Metastore
	tables  *cache.TableCache
	client  *objstore.Client
}

// New creates a connector bound to a metastore and object store endpoint.
// Table metadata is served through the same versioned cache as the OCS
// connector (the baseline engine benefits from metadata caching too).
func New(catalog string, meta *metastore.Metastore, client *objstore.Client) *Connector {
	return &Connector{
		catalog: catalog,
		meta:    meta,
		tables:  cache.NewTableCache(meta, cache.DefaultTableCacheEntries),
		client:  client,
	}
}

// SetTableCacheEntries resizes the table-metadata cache (0 disables
// caching). Call before serving queries.
func (c *Connector) SetTableCacheEntries(n int) {
	c.tables = cache.NewTableCache(c.meta, n)
}

// SetMetrics binds the table-metadata cache counters to a registry; call
// before serving queries.
func (c *Connector) SetMetrics(reg *telemetry.Registry) {
	c.tables.Instrument(reg, "catalog", c.catalog)
}

// Name implements engine.Connector.
func (c *Connector) Name() string { return c.catalog }

// Handle is the Hive table handle: base table plus projection and an
// optional pushed filter.
type Handle struct {
	Table      *metastore.Table
	Projection []int     // base-schema ordinals; nil = all
	Filter     expr.Expr // over the projected scan schema
	// UseSelect records whether the S3 Select path is active.
	UseSelect bool
}

// ConnectorName implements plan.TableHandle.
func (h *Handle) ConnectorName() string { return h.Table.Schema }

// ScanSchema implements plan.TableHandle.
func (h *Handle) ScanSchema() *types.Schema {
	if h.Projection == nil {
		return h.Table.Columns
	}
	return h.Table.Columns.Project(h.Projection)
}

// WithProjection implements plan.ProjectableHandle.
func (h *Handle) WithProjection(cols []int) plan.TableHandle {
	return &Handle{Table: h.Table, Projection: cols, Filter: h.Filter, UseSelect: h.UseSelect}
}

// PushedOperators implements engine.PushdownReporter.
func (h *Handle) PushedOperators() []string {
	var ops []string
	if h.Projection != nil {
		ops = append(ops, "columns")
	}
	if h.Filter != nil {
		ops = append(ops, "filter")
	}
	return ops
}

// String implements fmt.Stringer.
func (h *Handle) String() string {
	parts := []string{h.Table.QualifiedName()}
	if h.Projection != nil {
		parts = append(parts, fmt.Sprintf("cols=%d", len(h.Projection)))
	}
	if h.Filter != nil {
		parts = append(parts, "filter="+h.Filter.String())
	}
	return "hive:" + strings.Join(parts, ", ")
}

// TableHandle implements engine.Connector; lookups go through the
// versioned metadata cache.
func (c *Connector) TableHandle(schema, table string) (plan.TableHandle, error) {
	t, err := c.tables.Get(schema, table)
	if err != nil {
		return nil, err
	}
	return &Handle{Table: t}, nil
}

// Splits implements engine.Connector: one split per object.
func (c *Connector) Splits(handle plan.TableHandle) ([]engine.Split, error) {
	h, ok := handle.(*Handle)
	if !ok {
		return nil, fmt.Errorf("hive: foreign handle %T", handle)
	}
	splits := make([]engine.Split, len(h.Table.Objects))
	for i, obj := range h.Table.Objects {
		splits[i] = engine.Split{Object: obj, Index: i}
	}
	return splits, nil
}

// PlanOptimizer implements engine.Connector: the Hive local optimizer
// absorbs at most the Filter directly above the scan (S3 Select's WHERE).
func (c *Connector) PlanOptimizer() engine.ConnectorPlanOptimizer { return &localOptimizer{} }

type localOptimizer struct{}

// Optimize absorbs Filter-above-scan into the handle when the session
// enables select pushdown.
func (o *localOptimizer) Optimize(root plan.Node, session *engine.Session) (plan.Node, error) {
	useSelect := session.Get(SessionSelectPushdown) != "false"
	if !useSelect {
		return root, nil
	}
	return rewrite(root, func(n plan.Node) (plan.Node, bool) {
		filter, ok := n.(*plan.Filter)
		if !ok {
			return nil, false
		}
		scan, ok := filter.Input.(*plan.TableScan)
		if !ok {
			return nil, false
		}
		h, ok := scan.Handle.(*Handle)
		if !ok || h.Filter != nil {
			return nil, false
		}
		newHandle := &Handle{Table: h.Table, Projection: h.Projection, Filter: filter.Condition, UseSelect: true}
		return &plan.TableScan{Catalog: scan.Catalog, Table: scan.Table, Handle: newHandle}, true
	})
}

// rewrite walks the linear chain and replaces the first node fn matches.
func rewrite(root plan.Node, fn func(plan.Node) (plan.Node, bool)) (plan.Node, error) {
	if replacement, ok := fn(root); ok {
		return replacement, nil
	}
	kids := root.Children()
	if len(kids) == 0 {
		return root, nil
	}
	newChild, err := rewrite(kids[0], fn)
	if err != nil {
		return nil, err
	}
	if newChild == kids[0] {
		return root, nil
	}
	return plan.ReplaceChild(root, newChild)
}

// CreatePageSource implements engine.Connector.
func (c *Connector) CreatePageSource(ctx context.Context, handle plan.TableHandle, split engine.Split, stats *engine.ScanStats) (exec.Operator, error) {
	h, ok := handle.(*Handle)
	if !ok {
		return nil, fmt.Errorf("hive: foreign handle %T", handle)
	}
	if h.Filter != nil || (h.UseSelect && h.Projection != nil) {
		return c.selectSource(ctx, h, split, stats)
	}
	return c.getSource(ctx, h, split, stats)
}

// selectSource uses the S3 Select-like path: storage-side filter +
// projection, CSV transfer, compute-side parse.
func (c *Connector) selectSource(ctx context.Context, h *Handle, split engine.Split, stats *engine.ScanStats) (exec.Operator, error) {
	scanSchema := h.ScanSchema()
	cols := make([]string, scanSchema.Len())
	for i, col := range scanSchema.Columns {
		cols[i] = col.Name
	}
	// The handle's filter references scan-schema ordinals; the Select API
	// wants full-schema ordinals.
	var pred expr.Expr
	if h.Filter != nil {
		pred = h.Filter
		if h.Projection != nil {
			mapping := make(map[int]int, len(h.Projection))
			for scanIdx, fullIdx := range h.Projection {
				mapping[scanIdx] = fullIdx
			}
			remapped, err := expr.Remap(h.Filter, mapping)
			if err != nil {
				return nil, err
			}
			pred = remapped
		}
	}
	start := time.Now()
	csvData, work, err := c.client.Select(ctx, h.Table.Bucket, split.Object, cols, pred)
	if err != nil {
		return nil, fmt.Errorf("hive: select %s/%s: %w", h.Table.Bucket, split.Object, err)
	}
	stats.AddTransfer(time.Since(start))
	stats.AddBytesMoved(int64(len(csvData)))
	stats.AddStorageWork(work)

	page, parseUnits, err := objstore.ParseSelectCSV(csvData, h.Table.Columns)
	if err != nil {
		return nil, err
	}
	// CSV is the most expensive result format to ingest: per-cell text
	// parsing (3 ingest units/cell).
	stats.AddDeserialize(parseUnits*3.0, int64(page.NumRows()))
	// Reorder CSV columns into scan-schema order (Select preserves the
	// requested order, so this is the identity; verify defensively).
	if !page.Schema.Equal(scanSchema) {
		return nil, fmt.Errorf("hive: select returned schema %s, want %s", page.Schema, scanSchema)
	}
	return exec.NewPageSource(scanSchema, []*column.Page{page}), nil
}

// getSource transfers the whole object and scans it locally (the
// no-pushdown baseline).
func (c *Connector) getSource(ctx context.Context, h *Handle, split engine.Split, stats *engine.ScanStats) (exec.Operator, error) {
	start := time.Now()
	data, work, err := c.client.Get(ctx, h.Table.Bucket, split.Object)
	if err != nil {
		return nil, fmt.Errorf("hive: get %s/%s: %w", h.Table.Bucket, split.Object, err)
	}
	stats.AddTransfer(time.Since(start))
	stats.AddBytesMoved(int64(len(data)))
	stats.AddStorageWork(work)

	reader, err := parquetlite.NewReader(data)
	if err != nil {
		return nil, err
	}
	cols := h.Projection
	if cols == nil {
		cols = make([]int, h.Table.Columns.Len())
		for i := range cols {
			cols[i] = i
		}
	}
	scanSchema := h.ScanSchema()
	rg := 0
	return exec.NewFuncSource(scanSchema, func() (*column.Page, error) {
		if rg >= len(reader.Meta().RowGroups) {
			return nil, nil
		}
		page, err := reader.ReadRowGroup(rg, cols)
		rg++
		if err != nil {
			return nil, err
		}
		// Local parquet decode + page building on the compute node
		// (1.5 ingest units/cell).
		stats.AddDeserialize(float64(page.NumRows())*float64(len(cols))*1.5, int64(page.NumRows()))
		return page, nil
	}), nil
}
