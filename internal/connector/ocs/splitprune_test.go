package ocs

import (
	"testing"

	"prestocs/internal/engine"
	"prestocs/internal/expr"
	"prestocs/internal/metastore"
	"prestocs/internal/types"
)

// splitPruneTable builds a three-object table whose per-object id ranges
// are disjoint: obj-0 holds [0,99], obj-1 [100,199], obj-2 [200,299].
// Object obj-1 additionally has an all-NULL column "v".
func splitPruneTable() *metastore.Table {
	schema := types.NewSchema(
		types.Column{Name: "id", Type: types.Int64},
		types.Column{Name: "v", Type: types.Float64},
	)
	objStats := map[string]map[string]metastore.ColumnStats{}
	for i := 0; i < 3; i++ {
		obj := []string{"obj-0", "obj-1", "obj-2"}[i]
		vStats := metastore.ColumnStats{
			Min: types.FloatValue(0), Max: types.FloatValue(1), NumValues: 100,
		}
		if i == 1 {
			vStats = metastore.ColumnStats{
				Min: types.NullValue(types.Float64), Max: types.NullValue(types.Float64),
				NullCount: 100, NumValues: 100,
			}
		}
		objStats[obj] = map[string]metastore.ColumnStats{
			"id": {
				Min: types.IntValue(int64(i * 100)), Max: types.IntValue(int64(i*100 + 99)),
				NumValues: 100,
			},
			"v": vStats,
		}
	}
	return &metastore.Table{
		Schema: "default", Name: "parts", Columns: schema,
		Bucket: "b", Objects: []string{"obj-0", "obj-1", "obj-2"},
		RowCount: 300, ObjectStats: objStats,
	}
}

func idRef() *expr.ColumnRef { return expr.Col(0, "id", types.Int64) }

func pruneSplits(t *testing.T, table *metastore.Table, filter expr.Expr) ([]engine.Split, int64) {
	t.Helper()
	c := New("ocs", metastore.New(), nil)
	h := &Handle{Table: table, Push: &Pushdown{Filter: filter}}
	var stats engine.ScanStats
	splits, err := c.SplitsWithStats(h, &stats)
	if err != nil {
		t.Fatal(err)
	}
	return splits, stats.Snapshot().SplitsPruned
}

func TestSplitPruning(t *testing.T) {
	table := splitPruneTable()

	// id < 100 keeps only obj-0.
	lt, err := expr.NewCompare(expr.Lt, idRef(), expr.Lit(types.IntValue(100)))
	if err != nil {
		t.Fatal(err)
	}
	splits, pruned := pruneSplits(t, table, lt)
	if len(splits) != 1 || splits[0].Object != "obj-0" || pruned != 2 {
		t.Fatalf("id < 100: splits %v pruned %d", splits, pruned)
	}
	// Split indexes keep their original table ordinals.
	if splits[0].Index != 0 {
		t.Errorf("split index = %d, want 0", splits[0].Index)
	}

	// Boundary: id >= 199 keeps obj-1 (its max is exactly 199) and obj-2.
	ge, err := expr.NewCompare(expr.Ge, idRef(), expr.Lit(types.IntValue(199)))
	if err != nil {
		t.Fatal(err)
	}
	splits, pruned = pruneSplits(t, table, ge)
	if len(splits) != 2 || splits[0].Object != "obj-1" || pruned != 1 {
		t.Fatalf("id >= 199: splits %v pruned %d", splits, pruned)
	}

	// All-NULL column: any comparison on v prunes obj-1, IS NULL keeps
	// only obj-1.
	vRef := expr.Col(1, "v", types.Float64)
	vCmp, err := expr.NewCompare(expr.Gt, vRef, expr.Lit(types.FloatValue(0.5)))
	if err != nil {
		t.Fatal(err)
	}
	splits, pruned = pruneSplits(t, table, vCmp)
	if len(splits) != 2 || pruned != 1 || splits[0].Object != "obj-0" || splits[1].Object != "obj-2" {
		t.Fatalf("v > 0.5: splits %v pruned %d", splits, pruned)
	}
	splits, pruned = pruneSplits(t, table, &expr.IsNull{E: vRef})
	if len(splits) != 1 || splits[0].Object != "obj-1" || pruned != 2 {
		t.Fatalf("v IS NULL: splits %v pruned %d", splits, pruned)
	}
}

func TestSplitPruningConservative(t *testing.T) {
	table := splitPruneTable()
	lt, err := expr.NewCompare(expr.Lt, idRef(), expr.Lit(types.IntValue(100)))
	if err != nil {
		t.Fatal(err)
	}

	// No ObjectStats: nothing is pruned.
	bare := *table
	bare.ObjectStats = nil
	splits, pruned := pruneSplits(t, &bare, lt)
	if len(splits) != 3 || pruned != 0 {
		t.Fatalf("no stats: splits %v pruned %d", splits, pruned)
	}

	// An object missing from ObjectStats is kept.
	partial := splitPruneTable()
	delete(partial.ObjectStats, "obj-2")
	splits, pruned = pruneSplits(t, partial, lt)
	if len(splits) != 2 || pruned != 1 {
		t.Fatalf("partial stats: splits %v pruned %d", splits, pruned)
	}

	// A column absent from an object's stats never prunes that object.
	noCol := splitPruneTable()
	delete(noCol.ObjectStats["obj-1"], "id")
	splits, pruned = pruneSplits(t, noCol, lt)
	if len(splits) != 2 || pruned != 1 {
		t.Fatalf("missing column stats: splits %v pruned %d", splits, pruned)
	}

	// Stats without value counts (NumValues == 0) are unreliable: keep.
	zero := splitPruneTable()
	cs := zero.ObjectStats["obj-1"]["id"]
	cs.NumValues = 0
	zero.ObjectStats["obj-1"]["id"] = cs
	splits, pruned = pruneSplits(t, zero, lt)
	if len(splits) != 2 || pruned != 1 {
		t.Fatalf("zero NumValues: splits %v pruned %d", splits, pruned)
	}

	// No pushed filter: plain split generation.
	c := New("ocs", metastore.New(), nil)
	var stats engine.ScanStats
	splits, err = c.SplitsWithStats(&Handle{Table: table}, &stats)
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 3 || stats.Snapshot().SplitsPruned != 0 {
		t.Fatalf("no filter: splits %v stats %+v", splits, stats.Snapshot())
	}
}

// TestSplitPruningProjection checks ordinal resolution under a handle
// projection: with Projection [1], filter ordinal 0 refers to column v.
func TestSplitPruningProjection(t *testing.T) {
	table := splitPruneTable()
	c := New("ocs", metastore.New(), nil)
	vCmp, err := expr.NewCompare(expr.Gt, expr.Col(0, "v", types.Float64), expr.Lit(types.FloatValue(0.5)))
	if err != nil {
		t.Fatal(err)
	}
	h := &Handle{Table: table, Projection: []int{1}, Push: &Pushdown{Filter: vCmp}}
	var stats engine.ScanStats
	splits, err := c.SplitsWithStats(h, &stats)
	if err != nil {
		t.Fatal(err)
	}
	// v > 0.5 prunes the all-NULL obj-1.
	if len(splits) != 2 || stats.Snapshot().SplitsPruned != 1 {
		t.Fatalf("projected filter: splits %v stats %+v", splits, stats.Snapshot())
	}
}
