// Package ocs implements the Presto-OCS connector — the paper's
// contribution. It plugs into the engine's Connector SPI and:
//
//   - extends the local-optimizer phase with a pushdown planner that walks
//     the plan bottom-up, uses the Selectivity Analyzer (metastore min/max,
//     NDV and row counts, §4) to score operators, and absorbs eligible
//     Filter / expression-Project / Aggregation / Top-N nodes into a
//     modified TableScan handle (the Operator Extractor);
//   - translates the extracted operators into Substrait IR in its
//     PageSourceProvider and ships them to OCS over the RPC layer;
//   - deserializes Arrow results back into engine pages and leaves
//     residual operators (final aggregation, re-merged Top-N) to the
//     engine;
//   - reports per-query pushdown metrics through an EventListener with a
//     sliding-window history.
package ocs

import (
	"fmt"
	"strings"

	"prestocs/internal/bloom"
	"prestocs/internal/expr"
	"prestocs/internal/metastore"
	"prestocs/internal/plan"
	"prestocs/internal/substrait"
	"prestocs/internal/types"
)

// Session property keys.
const (
	// SessionPushdown selects the pushdown mode: "none", "filter",
	// "filter_project", "filter_agg", "filter_project_agg", "all" or
	// "auto" (Selectivity Analyzer decides). Default "all".
	SessionPushdown = "ocs.pushdown"
	// SessionSelectivityThreshold is the minimum estimated data-reduction
	// ratio (0..1) an operator must achieve for "auto" pushdown. Default
	// 0.5.
	SessionSelectivityThreshold = "ocs.selectivity_threshold"
	// SessionComplexityCap is the maximum expression cost (expr.Cost
	// units) "auto" will push for projections. Default 25.
	SessionComplexityCap = "ocs.complexity_cap"
	// SessionAdaptiveLoadCutoff is the storage-backlog EWMA at or above
	// which auto mode considers flipping an in-flight pushdown stream to
	// the local resume path. Default 4.
	SessionAdaptiveLoadCutoff = "ocs.adaptive.load_cutoff"
	// SessionAdaptiveFlipMargin is how many times cheaper the raw path
	// must price before auto mode flips mid-stream. Default 1.5.
	SessionAdaptiveFlipMargin = "ocs.adaptive.flip_margin"
)

// Mode is a parsed pushdown configuration.
type Mode struct {
	Filter  bool
	Project bool // expression (pre-aggregation) projection
	Agg     bool
	TopN    bool
	Auto    bool
}

// ParseMode interprets the SessionPushdown property.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "all", "always":
		return Mode{Filter: true, Project: true, Agg: true, TopN: true}, nil
	case "none", "never":
		return Mode{}, nil
	case "filter":
		return Mode{Filter: true}, nil
	case "filter_project":
		return Mode{Filter: true, Project: true}, nil
	case "filter_agg":
		return Mode{Filter: true, Agg: true}, nil
	case "filter_project_agg":
		return Mode{Filter: true, Project: true, Agg: true}, nil
	case "auto":
		return Mode{Auto: true}, nil
	default:
		return Mode{}, fmt.Errorf("ocs: unknown pushdown mode %q", s)
	}
}

// ProjectSpec is an extracted projection.
type ProjectSpec struct {
	Expressions []expr.Expr
	Names       []string
}

// AggSpec is an extracted aggregation.
type AggSpec struct {
	Keys     []int
	Measures []substrait.Measure
	// Complete records that group keys are split-disjoint, so per-split
	// aggregation produces final (not partial) values — the precondition
	// for pushing post-aggregation operators (DESIGN.md §4).
	Complete bool
}

// TopNSpec is an extracted top-N.
type TopNSpec struct {
	Keys  []plan.SortKey
	Count int64
}

// BloomSpec is a join build side's membership filter attached to the
// probe scan: storage hashes each scanned row's key column against the
// bits and drops proven non-members before they cross the network. The
// filter is conservative (false positives only), so the engine's hash
// join stays the correctness authority.
type BloomSpec struct {
	// Column is the join-key ordinal over the scan output schema.
	Column int
	Filter *bloom.Filter
	// EstSelectivity estimates the fraction of probe rows the filter
	// keeps (build keys over probe NDV); 0 when unknown. The adaptive
	// policy folds it into its pricing prior.
	EstSelectivity float64
}

// Pushdown is the Operator Extractor's output: the operators absorbed
// into the modified TableScan, in execution order.
type Pushdown struct {
	Filter expr.Expr // over the projected scan schema
	// OutputCols narrows the rows returned after a pushed filter to the
	// columns the residual plan still needs (ordinals over the projected
	// scan schema): columns referenced only by the pushed filter are
	// consumed in-storage and never cross the network. Ignored when
	// Project or Agg is set (they define the output themselves).
	OutputCols []int
	// Project is the pre-aggregation expression projection.
	Project *ProjectSpec
	Agg     *AggSpec
	// FinalProject is the post-aggregation projection (avg division);
	// only pushable when Agg.Complete.
	FinalProject *ProjectSpec
	TopN         *TopNSpec
	// Limit is a bare LIMIT (no ordering) pushed per split: each storage
	// node returns at most Limit rows and the engine's residual Limit
	// truncates the union — always sound. -1 when absent.
	Limit int64
	// EstSelectivity is the Selectivity Analyzer's plan-time estimate of
	// the fraction of scanned rows the pushed pipeline keeps (0 when the
	// planner produced no estimate). The adaptive policy uses it as the
	// pricing prior until runtime history accumulates for the shape.
	EstSelectivity float64
	// Bloom is a join build-side semi-filter, evaluated right after the
	// pushed filter. Set by the engine (via WithJoinBloom) after the
	// build side is drained, never by the plan-time extractor.
	Bloom *BloomSpec
}

// Operators lists the pushed operator kinds in order.
func (p *Pushdown) Operators() []string {
	var ops []string
	if p.Filter != nil {
		ops = append(ops, "filter")
	}
	if p.Bloom != nil {
		ops = append(ops, "bloom")
	}
	if p.Project != nil {
		ops = append(ops, "project")
	}
	if p.Agg != nil {
		ops = append(ops, "aggregation")
	}
	if p.FinalProject != nil {
		ops = append(ops, "final-project")
	}
	if p.TopN != nil {
		ops = append(ops, "topn")
	}
	if p.Limit > 0 {
		ops = append(ops, "limit")
	}
	return ops
}

// Empty reports whether nothing is pushed.
func (p *Pushdown) Empty() bool { return len(p.Operators()) == 0 }

// OrderDeterministic reports whether the pushed pipeline's output order
// is a pure function of the stored object: filter, projection and limit
// preserve the row-group scan order (which the storage node's parallel
// scanner merges order-preservingly), while partial aggregation and
// top-N emit in hash/heap order. Only an order-deterministic pipeline
// can be resumed after a mid-stream failure by replaying locally and
// skipping rows already delivered.
func (p *Pushdown) OrderDeterministic() bool { return p.Agg == nil && p.TopN == nil }

// AdaptiveParams are the auto-mode knobs for mid-stream repricing,
// parsed from session properties by the optimizer. A nil AdaptiveParams
// on a handle means the pushdown choice is static for the query.
type AdaptiveParams struct {
	// LoadCutoff is the storage-backlog EWMA below which flips are not
	// considered.
	LoadCutoff float64
	// FlipMargin is the raw-vs-pushdown price ratio required to flip.
	FlipMargin float64
}

// Handle is the OCS connector's table handle: table metadata, column
// projection and the pushdown spec.
type Handle struct {
	Table      *metastore.Table
	Projection []int // base-schema ordinals; nil = all
	Push       *Pushdown
	// Adaptive is set (auto mode only) when the per-split policy may
	// override the planned pushdown and flip mid-stream.
	Adaptive *AdaptiveParams
	// pin holds the metastore snapshot this handle's Table was read at;
	// every copy the optimizer or join machinery makes shares it, and the
	// engine releases it exactly once when the query finishes. Nil for
	// handles built outside the pinned path (tests, direct construction).
	pin *metastore.Pin
}

// ReleaseSnapshot implements engine.SnapshotHandle: it releases the
// metastore pin taken at plan time, allowing compaction to physically
// delete objects this snapshot referenced. Idempotent; shared by all
// copies of the handle.
func (h *Handle) ReleaseSnapshot() { h.pin.Release() }

// ConnectorName implements plan.TableHandle.
func (h *Handle) ConnectorName() string { return h.Table.Schema }

// baseScanSchema is the projected object schema before pushed operators.
func (h *Handle) baseScanSchema() *types.Schema {
	if h.Projection == nil {
		return h.Table.Columns
	}
	return h.Table.Columns.Project(h.Projection)
}

// ScanSchema implements plan.TableHandle: the schema of pages the scan
// produces after in-storage execution of the pushed operators.
func (h *Handle) ScanSchema() *types.Schema {
	schema := h.baseScanSchema()
	if h.Push == nil {
		return schema
	}
	if h.Push.OutputCols != nil && h.Push.Project == nil && h.Push.Agg == nil {
		schema = schema.Project(h.Push.OutputCols)
	}
	if h.Push.Project != nil {
		schema = projectSchema(h.Push.Project)
	}
	if h.Push.Agg != nil {
		schema = aggSchema(schema, h.Push.Agg)
	}
	if h.Push.FinalProject != nil {
		schema = projectSchema(h.Push.FinalProject)
	}
	return schema
}

func projectSchema(p *ProjectSpec) *types.Schema {
	cols := make([]types.Column, len(p.Expressions))
	for i, e := range p.Expressions {
		cols[i] = types.Column{Name: p.Names[i], Type: e.Type()}
	}
	return types.NewSchema(cols...)
}

func aggSchema(in *types.Schema, a *AggSpec) *types.Schema {
	var cols []types.Column
	for _, k := range a.Keys {
		cols = append(cols, in.Columns[k])
	}
	for _, m := range a.Measures {
		inKind := types.Int64
		if m.Func != substrait.AggCountStar {
			inKind = in.Columns[m.Arg].Type
		}
		outKind, err := m.Func.ResultKind(inKind)
		if err != nil {
			outKind = types.Unknown
		}
		cols = append(cols, types.Column{Name: m.Name, Type: outKind})
	}
	return types.NewSchema(cols...)
}

// WithProjection implements plan.ProjectableHandle.
func (h *Handle) WithProjection(cols []int) plan.TableHandle {
	return &Handle{Table: h.Table, Projection: cols, Push: h.Push, Adaptive: h.Adaptive, pin: h.pin}
}

// WithJoinBloom implements plan.BloomJoinHandle: a copy of the handle
// whose scan evaluates the build side's bloom filter in storage, right
// after the pushed filter. It declines when the pushed pipeline
// rebuilds rows (project/agg/top-N/limit) — a join probe branch never
// carries those, but a foreign plan shape must not silently mis-map the
// key ordinal. The selectivity prior is build keys over the probe
// column's NDV from table statistics.
func (h *Handle) WithJoinBloom(column int, filter *bloom.Filter, buildKeys int64) (plan.TableHandle, bool) {
	if filter == nil || column < 0 || column >= h.ScanSchema().Len() {
		return nil, false
	}
	if h.Push != nil && (h.Push.Project != nil || h.Push.Agg != nil ||
		h.Push.FinalProject != nil || h.Push.TopN != nil || h.Push.Limit > 0) {
		return nil, false
	}
	est := 0.0
	name := h.ScanSchema().Columns[column].Name
	if cs, ok := h.Table.Stats(name); ok && cs.NDV > 0 {
		est = float64(buildKeys) / float64(cs.NDV)
		if est > 1 {
			est = 1
		}
	}
	var push Pushdown
	if h.Push != nil {
		push = *h.Push
	}
	push.Bloom = &BloomSpec{Column: column, Filter: filter, EstSelectivity: est}
	return &Handle{Table: h.Table, Projection: h.Projection, Push: &push, Adaptive: h.Adaptive, pin: h.pin}, true
}

// withoutBloom returns the handle with the bloom spec stripped — the
// retry shape after a storage node rejects the filter.
func (h *Handle) withoutBloom() *Handle {
	if h.Push == nil || h.Push.Bloom == nil {
		return h
	}
	push := *h.Push
	push.Bloom = nil
	return &Handle{Table: h.Table, Projection: h.Projection, Push: &push, Adaptive: h.Adaptive, pin: h.pin}
}

// PushedOperators implements engine.PushdownReporter.
func (h *Handle) PushedOperators() []string {
	if h.Push == nil {
		return nil
	}
	return h.Push.Operators()
}

// String implements fmt.Stringer.
func (h *Handle) String() string {
	parts := []string{h.Table.QualifiedName()}
	if h.Projection != nil {
		parts = append(parts, fmt.Sprintf("cols=%d", len(h.Projection)))
	}
	if h.Push != nil && !h.Push.Empty() {
		parts = append(parts, "pushdown="+strings.Join(h.Push.Operators(), "+"))
	}
	return "ocs:" + strings.Join(parts, ", ")
}

// keysSplitDisjoint reports whether every aggregation key column is
// declared split-disjoint in the table metadata (its values never span
// objects), which makes per-split aggregation complete.
func keysSplitDisjoint(table *metastore.Table, schema *types.Schema, keys []int) bool {
	if len(keys) == 0 {
		return false // global aggregates always need a final merge
	}
	declared := map[string]bool{}
	for _, name := range table.DisjointKeys {
		declared[strings.ToLower(name)] = true
	}
	for _, k := range keys {
		if k < 0 || k >= schema.Len() {
			return false
		}
		if !declared[strings.ToLower(schema.Columns[k].Name)] {
			return false
		}
	}
	return true
}
