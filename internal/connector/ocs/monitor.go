package ocs

import (
	"sync"
	"time"

	"prestocs/internal/engine"
	"prestocs/internal/telemetry"
)

// Record is one completed query in the pushdown history.
type Record struct {
	When       time.Time
	SQL        string
	Table      string
	Pushed     []string
	BytesMoved int64
	Duration   time.Duration
	Succeeded  bool
	// Fallbacks counts splits that degraded from pushdown to the
	// raw-scan path during this query; nonzero means the query
	// succeeded despite pushdown failures.
	Fallbacks int64
	// SplitsPruned counts splits dropped before scheduling because
	// per-object statistics proved the pushed-down filter false.
	SplitsPruned int64
}

// Monitor is the connector's EventListener: it keeps a sliding window of
// recent executions (the paper's "pushdown history component") from which
// success rates and data-movement trends can be read to inform future
// optimization decisions.
type Monitor struct {
	mu      sync.Mutex
	window  []Record
	size    int
	next    int
	filled  bool
	total   int64
	success int64
	metrics *telemetry.Registry
	// policy, when set, receives each completion so the adaptive pushdown
	// policy's plan-time advice (AdvisePlanPushdown) tracks the same
	// events the window does.
	policy *Policy
}

// NewMonitor creates a monitor keeping the last size records.
func NewMonitor(size int) *Monitor {
	if size <= 0 {
		size = 64
	}
	return &Monitor{window: make([]Record, size), size: size}
}

// SetMetrics mirrors the monitor's lifetime totals into reg as the
// ocs_monitor_* series, so the sliding-window history and the live
// /metrics endpoint count from the same events.
func (m *Monitor) SetMetrics(reg *telemetry.Registry) {
	m.mu.Lock()
	m.metrics = reg
	m.mu.Unlock()
}

// QueryCompleted implements engine.EventListener.
func (m *Monitor) QueryCompleted(ev engine.QueryEvent) {
	rec := Record{
		When:      time.Now(),
		SQL:       ev.SQL,
		Table:     ev.Table,
		Succeeded: ev.Err == nil,
	}
	if ev.Stats != nil {
		scan := ev.Stats.Scan.Snapshot()
		rec.Pushed = ev.Stats.PushedDown
		rec.BytesMoved = scan.BytesMoved
		rec.Fallbacks = scan.FallbackSplits
		rec.SplitsPruned = scan.SplitsPruned
		rec.Duration = ev.Stats.Total
	}
	m.mu.Lock()
	m.window[m.next] = rec
	m.next = (m.next + 1) % m.size
	if m.next == 0 {
		m.filled = true
	}
	m.total++
	if rec.Succeeded {
		m.success++
	}
	reg := m.metrics
	policy := m.policy
	m.mu.Unlock()
	reg.Counter(telemetry.MetricMonitorQueries).Inc()
	if rec.Succeeded {
		reg.Counter(telemetry.MetricMonitorSuccesses).Inc()
	}
	reg.Counter(telemetry.MetricMonitorFallbacks).Add(rec.Fallbacks)
	reg.Counter(telemetry.MetricMonitorSplitsPruned).Add(rec.SplitsPruned)
	if policy != nil {
		policy.queryCompleted(rec.Succeeded)
	}
}

// Window returns the records currently retained, oldest first.
func (m *Monitor) Window() []Record {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []Record
	if m.filled {
		out = append(out, m.window[m.next:]...)
	}
	out = append(out, m.window[:m.next]...)
	return out
}

// SuccessRate returns the lifetime fraction of successful queries (1.0
// when none have run).
func (m *Monitor) SuccessRate() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.total == 0 {
		return 1
	}
	return float64(m.success) / float64(m.total)
}

// Total returns the lifetime query count.
func (m *Monitor) Total() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.total
}

// AvgBytesMoved averages data movement over the retained window for
// queries whose pushdown list matches exactly (nil matches everything).
func (m *Monitor) AvgBytesMoved(pushed []string) int64 {
	records := m.Window()
	var sum, n int64
	for _, r := range records {
		if pushed != nil && !sameOps(r.Pushed, pushed) {
			continue
		}
		sum += r.BytesMoved
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / n
}

func sameOps(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
