package ocs

import (
	"fmt"
	"sync"
	"testing"

	"prestocs/internal/costmodel"
	"prestocs/internal/engine"
	"prestocs/internal/expr"
	"prestocs/internal/metastore"
	"prestocs/internal/types"
)

// policyTable is one object of a million 4-column rows: wide enough that
// the raw path's full-width ingest dominates when the pushed filter is
// selective, and the storage node's weak cores matter when it is not.
func policyTable() *metastore.Table {
	return &metastore.Table{
		Schema: "ocs", Name: "pt",
		Columns: types.NewSchema(
			types.Column{Name: "a", Type: types.Float64},
			types.Column{Name: "b", Type: types.Float64},
			types.Column{Name: "c", Type: types.Float64},
			types.Column{Name: "d", Type: types.Float64},
		),
		Objects:    []string{"pt-0.parquet"},
		RowCount:   1_000_000,
		TotalBytes: 8_000_000,
	}
}

func policyHandle(t *testing.T, threshold float64) *Handle {
	t.Helper()
	cmp, err := expr.NewCompare(expr.Lt, expr.Col(0, "a", types.Float64), expr.Lit(types.FloatValue(threshold)))
	if err != nil {
		t.Fatal(err)
	}
	return &Handle{
		Table: policyTable(),
		Push:  &Pushdown{Filter: cmp, Limit: -1},
	}
}

func TestPolicyDecideTracksSelectivity(t *testing.T) {
	p := NewPolicy(costmodel.Default())
	h := policyHandle(t, 10)
	h.Adaptive = &AdaptiveParams{LoadCutoff: DefaultLoadCutoff, FlipMargin: DefaultFlipMargin}

	// Selective shape, idle storage: pushdown ships almost nothing.
	p.ObserveSplit(h, 10_000) // 1% survive
	if dec := p.decide(h); !dec.Pushdown {
		t.Errorf("selective shape on idle storage priced raw (%s)", dec.Reason)
	}

	// Non-selective shape: the pushed filter keeps everything, so raw
	// avoids the weak storage cores and the uncompressed wire format.
	for i := 0; i < 20; i++ {
		p.ObserveSplit(h, 1_000_000)
	}
	if dec := p.decide(h); dec.Pushdown {
		t.Errorf("non-selective shape priced pushdown (%s)", dec.Reason)
	}
}

func TestPolicyPlannerPriorUsedWithoutHistory(t *testing.T) {
	p := NewPolicy(costmodel.Default())
	h := policyHandle(t, 10)
	h.Push.EstSelectivity = 0.01
	sel, source := p.selectivity(h)
	if source != "prior" || sel != 0.01 {
		t.Fatalf("selectivity = %v from %q, want planner prior", sel, source)
	}
	p.ObserveSplit(h, 500_000)
	if sel, source := p.selectivity(h); source != "history" || sel != 0.5 {
		t.Fatalf("selectivity = %v from %q, want observed history", sel, source)
	}
}

func TestPredicateShapeErasesLiterals(t *testing.T) {
	a, b := policyHandle(t, 10), policyHandle(t, 90)
	if sa, sb := predicateShape(a), predicateShape(b); sa != sb {
		t.Errorf("literal changed the shape: %q vs %q", sa, sb)
	}
	// A different column is a different shape.
	cmp, err := expr.NewCompare(expr.Lt, expr.Col(1, "b", types.Float64), expr.Lit(types.FloatValue(10)))
	if err != nil {
		t.Fatal(err)
	}
	c := &Handle{Table: policyTable(), Push: &Pushdown{Filter: cmp, Limit: -1}}
	if predicateShape(a) == predicateShape(c) {
		t.Error("different columns mapped to one shape")
	}
}

func TestPolicyShapeHistoryEviction(t *testing.T) {
	p := NewPolicy(costmodel.Default())
	p.maxShapes = 8
	mk := func(i int) *Handle {
		h := policyHandle(t, 10)
		h.Table = policyTable()
		h.Table.Name = fmt.Sprintf("t%d", i)
		return h
	}
	first := mk(0)
	p.ObserveSplit(first, 1000)
	for i := 1; i < 20; i++ {
		p.ObserveSplit(mk(i), 1000)
	}
	if n := p.Shapes(); n != 8 {
		t.Fatalf("retained %d shapes, want 8", n)
	}
	if _, ok := p.ShapeSelectivity(first); ok {
		t.Error("least-recently-touched shape survived eviction")
	}
	if _, ok := p.ShapeSelectivity(mk(19)); !ok {
		t.Error("most-recent shape evicted")
	}
	// Touching a shape must refresh its LRU position.
	tenth := mk(10)
	p.ObserveSplit(tenth, 1000)
	for i := 20; i < 27; i++ {
		p.ObserveSplit(mk(i), 1000)
	}
	if _, ok := p.ShapeSelectivity(tenth); !ok {
		t.Error("recently touched shape evicted before colder ones")
	}
}

func TestPolicyShouldFlipNeedsLoadAndMargin(t *testing.T) {
	p := NewPolicy(costmodel.Default())
	h := policyHandle(t, 10)
	h.Adaptive = &AdaptiveParams{LoadCutoff: 4, FlipMargin: 1.5}

	// Idle storage: never flip, whatever the stream has delivered.
	if p.ShouldFlip(h, 900_000) {
		t.Error("flipped with idle storage")
	}
	// Back the storage up ~6 deep per scan worker — well past the cutoff,
	// but not so far that repricing stops caring about selectivity.
	load := uint32(6 * costmodel.StorageScanParallelism())
	for i := 0; i < 10; i++ {
		p.ObserveLoad(load)
	}
	if !p.ShouldFlip(h, 900_000) {
		t.Error("did not flip under saturated storage with sel≈1")
	}
	// A selective stream stays pushed even under load: it ships little.
	if p.ShouldFlip(h, 100) {
		t.Error("flipped a selective stream")
	}
	// Static handles and order-breaking pipelines never flip.
	h.Adaptive = nil
	if p.ShouldFlip(h, 900_000) {
		t.Error("flipped a static handle")
	}
	h.Adaptive = &AdaptiveParams{LoadCutoff: 4, FlipMargin: 1.5}
	h.Push.Agg = &AggSpec{Keys: []int{0}}
	if p.ShouldFlip(h, 900_000) {
		t.Error("flipped an order-nondeterministic pipeline")
	}
}

func TestPolicyAdvisePlanPushdown(t *testing.T) {
	p := NewPolicy(costmodel.Default())
	if !p.AdvisePlanPushdown() {
		t.Error("no history must advise pushdown")
	}
	p.queryCompleted(true)
	p.queryCompleted(false)
	p.queryCompleted(false)
	if !p.AdvisePlanPushdown() {
		t.Error("under 4 queries must still advise pushdown")
	}
	p.queryCompleted(false)
	if p.AdvisePlanPushdown() {
		t.Error("1/4 success rate must advise against pushdown")
	}
	for i := 0; i < 6; i++ {
		p.queryCompleted(true)
	}
	if !p.AdvisePlanPushdown() {
		t.Error("recovered success rate must re-enable pushdown")
	}
}

// TestPolicyConcurrentObservers races every policy entry point; run
// under -race it proves the shared state is lock-protected.
func TestPolicyConcurrentObservers(t *testing.T) {
	p := NewPolicy(costmodel.Default())
	p.maxShapes = 4
	h := policyHandle(t, 10)
	h.Adaptive = &AdaptiveParams{LoadCutoff: 4, FlipMargin: 1.5}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			hg := policyHandle(t, 10)
			hg.Table.Name = fmt.Sprintf("t%d", g%5)
			hg.Adaptive = h.Adaptive
			for i := 0; i < 200; i++ {
				p.ObserveLoad(uint32(i % 50))
				p.ObserveSplit(hg, int64(i)*1000)
				p.ObserveFallback(hg)
				p.decide(hg)
				p.ShouldFlip(hg, int64(i)*1000)
				p.queryCompleted(i%3 == 0)
				p.AdvisePlanPushdown()
			}
		}(g)
	}
	wg.Wait()
	if n := p.Shapes(); n > 4 {
		t.Errorf("retained %d shapes, cap 4", n)
	}
}

// TestMonitorConcurrentWraparound races QueryCompleted calls through a
// tiny ring: the window must wrap without loss of lifetime totals and
// the policy must see every completion.
func TestMonitorConcurrentWraparound(t *testing.T) {
	m := NewMonitor(4)
	p := NewPolicy(costmodel.Default())
	m.policy = p
	var wg sync.WaitGroup
	const goroutines, each = 8, 50
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				var ev engine.QueryEvent
				if (g+i)%2 == 1 {
					ev.Err = fmt.Errorf("boom %d/%d", g, i)
				}
				m.QueryCompleted(ev)
			}
		}(g)
	}
	wg.Wait()
	if total := m.Total(); total != goroutines*each {
		t.Errorf("lifetime total = %d, want %d", total, goroutines*each)
	}
	if got := len(m.Window()); got != 4 {
		t.Errorf("window holds %d records, want 4", got)
	}
	if rate := m.SuccessRate(); rate != 0.5 {
		t.Errorf("success rate = %v, want 0.5", rate)
	}
	p.mu.Lock()
	queries, successes := p.queries, p.successes
	p.mu.Unlock()
	if queries != goroutines*each || successes != goroutines*each/2 {
		t.Errorf("policy saw %d/%d completions, want %d/%d",
			successes, queries, goroutines*each/2, goroutines*each)
	}
}
