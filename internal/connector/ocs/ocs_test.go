package ocs

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"

	"prestocs/internal/column"
	"prestocs/internal/compress"
	"prestocs/internal/engine"
	"prestocs/internal/metastore"
	"prestocs/internal/ocsserver"
	"prestocs/internal/parquetlite"
	"prestocs/internal/types"
)

// fixture: a Laghos-like table of 4 objects × 60 rows. vertex_id is
// split-disjoint (each object owns its own id range), enabling full
// pushdown.
func setup(t *testing.T) (*engine.Engine, *Connector) {
	t.Helper()
	schema := types.NewSchema(
		types.Column{Name: "vertex_id", Type: types.Int64},
		types.Column{Name: "x", Type: types.Float64},
		types.Column{Name: "e", Type: types.Float64},
		types.Column{Name: "rowid", Type: types.Int64},
	)
	cluster, err := ocsserver.StartCluster(1)
	if err != nil {
		t.Fatal(err)
	}
	cli := ocsserver.NewClient(cluster.Addr)
	t.Cleanup(func() {
		cli.Close()
		cluster.Shutdown()
	})

	var objects []string
	var images [][]byte
	n := 0
	for o := 0; o < 4; o++ {
		p := column.NewPage(schema)
		for r := 0; r < 60; r++ {
			p.AppendRow(
				types.IntValue(int64(o*20+r%20)), // 20 distinct ids per object, disjoint ranges
				types.FloatValue(float64(n%100)/25),
				types.FloatValue(float64(n)),
				types.IntValue(int64(n)),
			)
			n++
		}
		img, err := parquetlite.WritePages(schema, parquetlite.WriterOptions{Codec: compress.None, RowGroupSize: 32}, p)
		if err != nil {
			t.Fatal(err)
		}
		key := fmt.Sprintf("part-%d.pql", o)
		if err := cli.Put(context.Background(), "lanl", key, img); err != nil {
			t.Fatal(err)
		}
		objects = append(objects, key)
		images = append(images, img)
	}

	rows, bytes, colStats, err := metastore.StatsFromObjects(schema, images)
	if err != nil {
		t.Fatal(err)
	}
	stats := map[string]metastore.ColumnStats{}
	ndv := map[string]int64{"vertex_id": 80, "x": 100, "e": 240, "rowid": 240}
	for name, cs := range colStats {
		cs.NDV = ndv[name]
		stats[name] = cs
	}
	ms := metastore.New()
	if err := ms.Register(&metastore.Table{
		Schema: "ocs", Name: "mesh", Columns: schema,
		Bucket: "lanl", Objects: objects, Codec: compress.None,
		RowCount: rows, TotalBytes: bytes, ColumnStats: stats,
		DisjointKeys: []string{"vertex_id"},
	}); err != nil {
		t.Fatal(err)
	}

	conn := New("ocs", ms, cli)
	e := engine.New()
	e.DefaultCatalog = "ocs"
	e.Workers = 2
	e.AddConnector(conn)
	e.AddEventListener(conn.Monitor())
	return e, conn
}

func rowMultiset(p *column.Page) []string {
	out := make([]string, p.NumRows())
	for i := range out {
		s := ""
		for _, v := range p.Row(i) {
			s += v.String() + "|"
		}
		out[i] = s
	}
	sort.Strings(out)
	return out
}

const laghosQuery = `SELECT min(vertex_id) AS vid, min(x) AS mx, avg(e) AS E
  FROM mesh WHERE x BETWEEN 0.8 AND 3.2 GROUP BY vertex_id ORDER BY E LIMIT 10`

const deepWaterQuery = `SELECT MAX((rowid % 100) / 10) AS m, vertex_id
  FROM mesh WHERE x > 0.1 GROUP BY vertex_id`

// allModes is the paper's progressive pushdown sweep.
var allModes = []string{"none", "filter", "filter_project", "filter_agg", "filter_project_agg", "all"}

func session(mode string) *engine.Session {
	return engine.NewSession().Set(SessionPushdown, mode)
}

// TestPushdownSoundness is the load-bearing invariant: every pushdown
// configuration returns exactly the rows "none" returns.
func TestPushdownSoundness(t *testing.T) {
	e, _ := setup(t)
	for _, q := range []string{laghosQuery, deepWaterQuery} {
		baseline, err := e.Execute(context.Background(), q, session("none"))
		if err != nil {
			t.Fatalf("baseline: %v", err)
		}
		want := rowMultiset(baseline.Page)
		for _, mode := range allModes[1:] {
			res, err := e.Execute(context.Background(), q, session(mode))
			if err != nil {
				t.Fatalf("mode %s: %v", mode, err)
			}
			got := rowMultiset(res.Page)
			if len(got) != len(want) {
				t.Fatalf("mode %s: %d rows vs %d", mode, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("mode %s row %d: %q vs %q", mode, i, got[i], want[i])
				}
			}
		}
	}
}

func TestProgressivePushdownReducesMovement(t *testing.T) {
	e, _ := setup(t)
	moved := map[string]int64{}
	for _, mode := range []string{"none", "filter", "filter_agg", "all"} {
		res, err := e.Execute(context.Background(), laghosQuery, session(mode))
		if err != nil {
			t.Fatalf("mode %s: %v", mode, err)
		}
		moved[mode] = res.Stats.Scan.Snapshot().BytesMoved
	}
	if !(moved["none"] > moved["filter"] && moved["filter"] > moved["filter_agg"] && moved["filter_agg"] >= moved["all"]) {
		t.Errorf("movement not monotone: %v", moved)
	}
}

func TestPushedOperatorsPerMode(t *testing.T) {
	e, _ := setup(t)
	cases := map[string][]string{
		"none":       nil,
		"filter":     {"filter"},
		"filter_agg": {"filter", "aggregation"},
		"all":        {"filter", "aggregation", "final-project", "topn"},
	}
	for mode, want := range cases {
		res, err := e.Execute(context.Background(), laghosQuery, session(mode))
		if err != nil {
			t.Fatalf("mode %s: %v", mode, err)
		}
		got := strings.Join(res.Stats.PushedDown, ",")
		if got != strings.Join(want, ",") {
			t.Errorf("mode %s pushed %q, want %q", mode, got, strings.Join(want, ","))
		}
	}
	// Deep-water-like query has a pre-aggregation projection.
	res, err := e.Execute(context.Background(), deepWaterQuery, session("filter_project_agg"))
	if err != nil {
		t.Fatal(err)
	}
	got := strings.Join(res.Stats.PushedDown, ",")
	if got != "filter,project,aggregation" {
		t.Errorf("deepwater pushed %q", got)
	}
}

func TestAggWithoutProjectCannotSkip(t *testing.T) {
	// filter_agg on a plan with a pre-aggregation projection must stop at
	// the projection (contiguity), pushing the filter only.
	e, _ := setup(t)
	res, err := e.Execute(context.Background(), deepWaterQuery, session("filter_agg"))
	if err != nil {
		t.Fatal(err)
	}
	got := strings.Join(res.Stats.PushedDown, ",")
	if got != "filter" {
		t.Errorf("pushed %q, want filter only", got)
	}
}

func TestTopNRequiresDisjointKeys(t *testing.T) {
	e, conn := setup(t)
	// Rebuild the table without disjoint keys: full pushdown must refuse
	// topN (keeping results exact) and keep the final aggregation.
	tbl, err := conn.meta.Get("ocs", "mesh")
	if err != nil {
		t.Fatal(err)
	}
	clone := *tbl
	clone.Name = "mesh2"
	clone.DisjointKeys = nil
	if err := conn.meta.Register(&clone); err != nil {
		t.Fatal(err)
	}
	q := strings.Replace(laghosQuery, "FROM mesh", "FROM mesh2", 1)
	res, err := e.Execute(context.Background(), q, session("all"))
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range res.Stats.PushedDown {
		if op == "topn" {
			t.Error("topn pushed despite non-disjoint keys")
		}
	}
	// Results still match the baseline.
	baseline, err := e.Execute(context.Background(), q, session("none"))
	if err != nil {
		t.Fatal(err)
	}
	a, b := rowMultiset(res.Page), rowMultiset(baseline.Page)
	if len(a) != len(b) {
		t.Fatalf("rows %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("row %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestAutoModeDecisions(t *testing.T) {
	e, _ := setup(t)
	res, err := e.Execute(context.Background(), laghosQuery, session("auto"))
	if err != nil {
		t.Fatal(err)
	}
	// Auto should at least push the aggregation (80 groups / 240 rows
	// ≈ 67% reduction > 50% threshold) — and must stay sound.
	baseline, _ := e.Execute(context.Background(), laghosQuery, session("none"))
	a, b := rowMultiset(res.Page), rowMultiset(baseline.Page)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("auto mode changed results")
		}
	}
	found := false
	for _, op := range res.Stats.PushedDown {
		if op == "aggregation" {
			found = true
		}
	}
	if !found {
		t.Errorf("auto did not push aggregation: %v", res.Stats.PushedDown)
	}
}

func TestSubstraitGenTimed(t *testing.T) {
	e, _ := setup(t)
	res, err := e.Execute(context.Background(), laghosQuery, session("all"))
	if err != nil {
		t.Fatal(err)
	}
	scan := res.Stats.Scan.Snapshot()
	if scan.SubstraitGen <= 0 {
		t.Error("substrait generation not timed")
	}
	if scan.Transfer <= 0 {
		t.Error("transfer not timed")
	}
	if scan.StorageWork.RowsProcessed <= 0 {
		t.Error("storage work not recorded")
	}
}

func TestMonitorWindow(t *testing.T) {
	e, conn := setup(t)
	for i := 0; i < 3; i++ {
		if _, err := e.Execute(context.Background(), laghosQuery, session("all")); err != nil {
			t.Fatal(err)
		}
	}
	recs := conn.Monitor().Window()
	if len(recs) != 3 {
		t.Fatalf("window = %d records", len(recs))
	}
	if conn.Monitor().SuccessRate() != 1.0 {
		t.Errorf("success rate = %v", conn.Monitor().SuccessRate())
	}
	if conn.Monitor().AvgBytesMoved(nil) <= 0 {
		t.Error("avg bytes moved not recorded")
	}
	if recs[0].Table != "mesh" || len(recs[0].Pushed) == 0 {
		t.Errorf("record = %+v", recs[0])
	}
}

func TestParseModeErrors(t *testing.T) {
	if _, err := ParseMode("bogus"); err == nil {
		t.Error("bogus mode accepted")
	}
	m, err := ParseMode("")
	if err != nil || !m.Filter || !m.TopN {
		t.Error("default mode should be all")
	}
	e, _ := setup(t)
	if _, err := e.Execute(context.Background(), laghosQuery, session("bogus")); err == nil {
		t.Error("bogus session mode accepted")
	}
}

func TestBareLimitPushdown(t *testing.T) {
	e, _ := setup(t)
	q := "SELECT vertex_id, e FROM mesh WHERE x > 0.5 LIMIT 7"
	res, err := e.Execute(context.Background(), q, session("all"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Page.NumRows() != 7 {
		t.Fatalf("rows = %d", res.Page.NumRows())
	}
	found := false
	for _, op := range res.Stats.PushedDown {
		if op == "limit" {
			found = true
		}
	}
	if !found {
		t.Errorf("limit not pushed: %v", res.Stats.PushedDown)
	}
	// With the limit pushed, storage returns at most 7 rows per split.
	if rows := res.Stats.Scan.Snapshot().ResultRows; rows > 4*7 {
		t.Errorf("storage returned %d rows, want ≤ 28", rows)
	}
	// Filter mode leaves the limit on the engine: same answer count.
	res2, err := e.Execute(context.Background(), q, session("filter"))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Page.NumRows() != 7 {
		t.Errorf("filter-mode rows = %d", res2.Page.NumRows())
	}
}

func TestAutoFallsBackAfterFailures(t *testing.T) {
	e, conn := setup(t)
	// Record a failing history: 5 queries, 4 failed.
	conn.Monitor().QueryCompleted(engine.QueryEvent{})
	for i := 0; i < 4; i++ {
		conn.Monitor().QueryCompleted(engine.QueryEvent{Err: fmt.Errorf("storage fault %d", i)})
	}
	if conn.Policy().AdvisePlanPushdown() {
		t.Fatal("policy should advise against pushdown")
	}
	res, err := e.Execute(context.Background(), laghosQuery, session("auto"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats.PushedDown) != 0 {
		t.Errorf("auto pushed %v despite failing history", res.Stats.PushedDown)
	}
	// Forced mode ignores the advice.
	res, err = e.Execute(context.Background(), laghosQuery, session("all"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats.PushedDown) == 0 {
		t.Error("forced mode must still push")
	}
}

func TestMonitorRing(t *testing.T) {
	m := NewMonitor(2)
	for i := 0; i < 5; i++ {
		m.QueryCompleted(engine.QueryEvent{SQL: fmt.Sprintf("q%d", i)})
	}
	w := m.Window()
	if len(w) != 2 || w[0].SQL != "q3" || w[1].SQL != "q4" {
		t.Errorf("ring window = %+v", w)
	}
	if NewMonitor(0) == nil {
		t.Error("zero-size monitor")
	}
}
