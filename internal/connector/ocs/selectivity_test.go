package ocs

import (
	"math"
	"testing"

	"prestocs/internal/engine"
	"prestocs/internal/expr"
	"prestocs/internal/metastore"
	"prestocs/internal/substrait"
	"prestocs/internal/types"
)

func statsTable() *metastore.Table {
	return &metastore.Table{
		Schema: "ocs", Name: "t",
		Columns: types.NewSchema(
			types.Column{Name: "v", Type: types.Float64},
			types.Column{Name: "g", Type: types.Int64},
		),
		RowCount: 10000,
		ColumnStats: map[string]metastore.ColumnStats{
			"v": {Min: types.FloatValue(0), Max: types.FloatValue(100), NDV: 5000},
			"g": {Min: types.IntValue(0), Max: types.IntValue(99), NDV: 100},
		},
	}
}

func analyzerFor(t *testing.T) (*selectivityAnalyzer, *types.Schema) {
	t.Helper()
	return newSelectivityAnalyzer(statsTable(), engine.NewSession()), statsTable().Columns
}

func TestRangeSelectivityNormalApproximation(t *testing.T) {
	a, schema := analyzerFor(t)
	col := expr.Col(0, "v", types.Float64)
	between := func(lo, hi float64) float64 {
		b, err := expr.NewBetween(col, expr.Lit(types.FloatValue(lo)), expr.Lit(types.FloatValue(hi)))
		if err != nil {
			t.Fatal(err)
		}
		return a.EstimateFilterSelectivity(b, schema)
	}
	// Full range captures (nearly) everything under the 3-sigma model.
	if s := between(0, 100); s < 0.95 || s > 1.0 {
		t.Errorf("full-range selectivity = %v", s)
	}
	// Half range around the mean captures ~50%+ (normal mass concentrates
	// at the center).
	if s := between(50, 100); math.Abs(s-0.5) > 0.03 {
		t.Errorf("upper-half selectivity = %v, want ~0.5", s)
	}
	// A central slice captures more than a tail slice of equal width —
	// the normality assumption's signature (and its §4 skew caveat).
	center := between(40, 60)
	tail := between(0, 20)
	if center <= tail {
		t.Errorf("normal model: center %v should exceed tail %v", center, tail)
	}
	// Empty range.
	if s := between(200, 300); s > 0.01 {
		t.Errorf("out-of-range selectivity = %v", s)
	}
}

func TestComparisonSelectivity(t *testing.T) {
	a, schema := analyzerFor(t)
	col := expr.Col(0, "v", types.Float64)
	lt, _ := expr.NewCompare(expr.Lt, col, expr.Lit(types.FloatValue(50)))
	if s := a.EstimateFilterSelectivity(lt, schema); math.Abs(s-0.5) > 0.03 {
		t.Errorf("v < mean selectivity = %v, want ~0.5", s)
	}
	gt, _ := expr.NewCompare(expr.Gt, col, expr.Lit(types.FloatValue(50)))
	if s := a.EstimateFilterSelectivity(gt, schema); math.Abs(s-0.5) > 0.03 {
		t.Errorf("v > mean selectivity = %v", s)
	}
	// Mirrored literal-first form.
	mirror, _ := expr.NewCompare(expr.Gt, expr.Lit(types.FloatValue(50)), col)
	if s := a.EstimateFilterSelectivity(mirror, schema); math.Abs(s-0.5) > 0.03 {
		t.Errorf("mirrored selectivity = %v", s)
	}
	// Equality uses NDV: 1/100 for g.
	eq, _ := expr.NewCompare(expr.Eq, expr.Col(1, "g", types.Int64), expr.Lit(types.IntValue(7)))
	if s := a.EstimateFilterSelectivity(eq, schema); math.Abs(s-0.01) > 1e-9 {
		t.Errorf("equality selectivity = %v, want 0.01", s)
	}
	ne, _ := expr.NewCompare(expr.Ne, expr.Col(1, "g", types.Int64), expr.Lit(types.IntValue(7)))
	if s := a.EstimateFilterSelectivity(ne, schema); math.Abs(s-0.99) > 1e-9 {
		t.Errorf("inequality selectivity = %v", s)
	}
}

func TestConjunctionMultipliesDisjunctionAdds(t *testing.T) {
	a, schema := analyzerFor(t)
	col := expr.Col(0, "v", types.Float64)
	lt, _ := expr.NewCompare(expr.Lt, col, expr.Lit(types.FloatValue(50)))
	gt, _ := expr.NewCompare(expr.Gt, col, expr.Lit(types.FloatValue(50)))
	and, _ := expr.NewLogic(expr.And, lt, gt)
	if s := a.EstimateFilterSelectivity(and, schema); math.Abs(s-0.25) > 0.03 {
		t.Errorf("AND selectivity = %v, want ~0.25 (independence)", s)
	}
	or, _ := expr.NewLogic(expr.Or, lt, gt)
	if s := a.EstimateFilterSelectivity(or, schema); s < 0.95 {
		t.Errorf("OR selectivity = %v, want ~1", s)
	}
	not, _ := expr.NewNot(lt)
	if s := a.EstimateFilterSelectivity(not, schema); math.Abs(s-0.5) > 0.03 {
		t.Errorf("NOT selectivity = %v", s)
	}
}

func TestUnknownStatsFallBack(t *testing.T) {
	a, schema := analyzerFor(t)
	// Column without a literal comparand, or stats missing → 0.33 default.
	col := expr.Col(0, "v", types.Float64)
	c, _ := expr.NewCompare(expr.Lt, col, expr.Col(0, "v", types.Float64))
	if s := a.EstimateFilterSelectivity(c, schema); s != 0.33 {
		t.Errorf("column-vs-column selectivity = %v, want fallback", s)
	}
}

func TestGroupAndTopNEstimates(t *testing.T) {
	a, schema := analyzerFor(t)
	// 100 groups out of 10000 rows: 99% reduction → push.
	if !a.ShouldPushAgg([]int{1}, schema) {
		t.Error("aggregation with 100 NDV should be pushed")
	}
	// 5000 groups: exactly 50% reduction — the threshold is inclusive.
	if !a.ShouldPushAgg([]int{0}, schema) {
		t.Error("50% reduction should clear the inclusive 0.5 threshold")
	}
	// A stricter threshold rejects it.
	strict := newSelectivityAnalyzer(statsTable(),
		engine.NewSession().Set(SessionSelectivityThreshold, "0.9"))
	if strict.ShouldPushAgg([]int{0}, schema) {
		t.Error("50% reduction must not clear a 0.9 threshold")
	}
	if g := a.EstimateGroups([]int{0, 1}, schema); g != 10000 {
		t.Errorf("group product must cap at row count: %v", g)
	}
	if !a.ShouldPushTopN(100) {
		t.Error("top-100 of 10000 should be pushed")
	}
	if a.ShouldPushTopN(9000) {
		t.Error("top-9000 of 10000 should not be pushed")
	}
}

func TestThresholdSessionOverrides(t *testing.T) {
	session := engine.NewSession().
		Set(SessionSelectivityThreshold, "0.95").
		Set(SessionComplexityCap, "2")
	a := newSelectivityAnalyzer(statsTable(), session)
	if a.threshold != 0.95 || a.costCap != 2 {
		t.Errorf("overrides not applied: %+v", a)
	}
	// Invalid values keep defaults.
	bad := engine.NewSession().
		Set(SessionSelectivityThreshold, "nope").
		Set(SessionComplexityCap, "-3")
	a = newSelectivityAnalyzer(statsTable(), bad)
	if a.threshold != 0.5 || a.costCap != 25 {
		t.Errorf("invalid overrides accepted: %+v", a)
	}
}

func TestBuildSubstraitOutputCols(t *testing.T) {
	tbl := statsTable()
	tbl.Bucket = "b"
	cond, _ := expr.NewCompare(expr.Gt, expr.Col(0, "v", types.Float64), expr.Lit(types.FloatValue(1)))
	h := &Handle{
		Table: tbl,
		Push: &Pushdown{
			Filter:     cond,
			OutputCols: []int{1}, // only g crosses back
		},
	}
	plan, err := BuildSubstrait(h, "obj")
	if err != nil {
		t.Fatal(err)
	}
	schema, err := plan.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if schema.String() != "(g BIGINT)" {
		t.Errorf("narrowed schema = %s", schema)
	}
	// Round-trips through the wire format.
	data, err := substrait.Marshal(plan)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := substrait.Unmarshal(data); err != nil {
		t.Fatal(err)
	}
	if h.ScanSchema().String() != "(g BIGINT)" {
		t.Errorf("handle scan schema = %s", h.ScanSchema())
	}
}
