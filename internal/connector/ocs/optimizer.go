package ocs

import (
	"fmt"
	"math"
	"strconv"

	"prestocs/internal/engine"
	"prestocs/internal/expr"
	"prestocs/internal/metastore"
	"prestocs/internal/plan"
	"prestocs/internal/substrait"
	"prestocs/internal/types"
)

// localOptimizer is the connector's ConnectorPlanOptimizer: the pushdown
// planner (Selectivity Analyzer + Operator Extractor) that runs in the
// engine's local-optimization phase.
type localOptimizer struct {
	conn *Connector
}

// optimizeJoin applies the extractor to each branch of a join plan
// independently. The probe branch is already rooted at its Exchange, so
// it goes straight back through Optimize; the build branch gets a
// synthetic Exchange (stripped after) so the same bottom-up walk sees a
// normal [Exchange, …, Scan] leaf chain. Filters in either branch push
// into their scan handles; the probe scan's schema (and with it the
// join-key ordinals) is preserved because a filter-only leaf never
// triggers output narrowing. The above-join chain is left untouched —
// cross-table operators cannot execute inside one object's storage node.
func (o *localOptimizer) optimizeJoin(root plan.Node, session *engine.Session) (plan.Node, error) {
	var above []plan.Node
	n := root
	for {
		j, ok := n.(*plan.Join)
		if !ok {
			kids := n.Children()
			if len(kids) != 1 {
				return root, nil // unexpected shape: leave untouched
			}
			above = append(above, n)
			n = kids[0]
			continue
		}
		probe, err := o.Optimize(j.Probe, session)
		if err != nil {
			return nil, err
		}
		buildRoot, err := o.Optimize(&plan.Exchange{Input: j.Build}, session)
		if err != nil {
			return nil, err
		}
		build := buildRoot
		if ex, ok := buildRoot.(*plan.Exchange); ok {
			build = ex.Input
		}
		var node plan.Node = &plan.Join{
			Probe: probe, Build: build,
			ProbeKeys: j.ProbeKeys, BuildKeys: j.BuildKeys, Strategy: j.Strategy,
		}
		for i := len(above) - 1; i >= 0; i-- {
			next, err := plan.ReplaceChild(above[i], node)
			if err != nil {
				return nil, err
			}
			node = next
		}
		return node, nil
	}
}

// Optimize walks the plan bottom-up from the TableScan, absorbing
// pushdown-eligible operators into a modified scan handle, exactly the
// flow of §3.4 step (1).
func (o *localOptimizer) Optimize(root plan.Node, session *engine.Session) (plan.Node, error) {
	mode, err := ParseMode(session.Get(SessionPushdown))
	if err != nil {
		return nil, err
	}
	// History feedback: when recent pushdown executions have mostly been
	// failing (e.g. a flaky storage node), auto mode falls back to plain
	// scans rather than keep routing work into a broken path. This is the
	// plan-time half of the adaptive policy; the per-split half runs at
	// schedule time through Connector.DecideSplit.
	if mode.Auto && o.conn != nil && o.conn.policy != nil && !o.conn.policy.AdvisePlanPushdown() {
		return root, nil
	}
	if plan.FindJoin(root) != nil {
		return o.optimizeJoin(root, session)
	}
	chain, err := flatten(root)
	if err != nil || chain == nil {
		return root, nil
	}
	scanIdx := len(chain) - 1
	scan, ok := chain[scanIdx].(*plan.TableScan)
	if !ok {
		return root, nil
	}
	handle, ok := scan.Handle.(*Handle)
	if !ok {
		return root, nil
	}

	analyzer := newSelectivityAnalyzer(handle.Table, session)
	push := &Pushdown{}
	absorbed := scanIdx // nodes chain[absorbed..scanIdx-1] removed (none yet)

	// exchangeIdx bounds the leaf stage.
	exchangeIdx := -1
	for i, n := range chain {
		if _, ok := n.(*plan.Exchange); ok {
			exchangeIdx = i
		}
	}
	if exchangeIdx < 0 {
		return root, nil
	}

	schema := handle.baseScanSchema()

	// Structural walk: collect the absorbable leaf sequence
	// (filter-above-scan, then projections, then one partial aggregate).
	// Pushed operators must be a contiguous prefix because each executes
	// on its predecessor's output inside storage.
	type leafCandidate struct {
		index  int
		kind   string // "filter", "project", "agg"
		schema *types.Schema
	}
	var seq []leafCandidate
	walkSchema := schema
structWalk:
	for i := scanIdx - 1; i > exchangeIdx; i-- {
		switch t := chain[i].(type) {
		case *plan.Filter:
			if len(seq) > 0 {
				break structWalk
			}
			seq = append(seq, leafCandidate{index: i, kind: "filter", schema: walkSchema})
		case *plan.Project:
			if len(seq) > 0 && seq[len(seq)-1].kind == "agg" {
				break structWalk
			}
			seq = append(seq, leafCandidate{index: i, kind: "project", schema: walkSchema})
			walkSchema = projectSchema(&ProjectSpec{Expressions: t.Expressions, Names: t.Names})
		case *plan.Aggregate:
			if t.Step != plan.AggPartial {
				break structWalk
			}
			if len(seq) > 0 && seq[len(seq)-1].kind == "agg" {
				break structWalk
			}
			seq = append(seq, leafCandidate{index: i, kind: "agg", schema: walkSchema})
			walkSchema = aggSchema(walkSchema, &AggSpec{Keys: t.Keys, Measures: t.Measures})
		case *plan.Limit:
			// The replicated leaf-side LIMIT (no ordering): each split
			// may return at most Count rows, so pushing it is always
			// sound; the residual final Limit truncates the union.
			seq = append(seq, leafCandidate{index: i, kind: "limit", schema: walkSchema})
		default:
			break structWalk
		}
	}

	// Decide the prefix length.
	prefix := 0
	if mode.Auto {
		// Longest prefix whose cumulative estimated reduction clears the
		// threshold. A projection is only worth pushing on its own merits
		// (width reduction + complexity cap), but is carried along when a
		// later aggregation justifies the whole prefix.
		rows := float64(handle.Table.RowCount)
		est := rows
		best := -1
		bestEst := rows
		for idx, cand := range seq {
			node := chain[cand.index]
			switch cand.kind {
			case "filter":
				est *= analyzer.EstimateFilterSelectivity(node.(*plan.Filter).Condition, cand.schema)
			case "agg":
				groups := analyzer.EstimateGroups(node.(*plan.Aggregate).Keys, cand.schema)
				if groups < est {
					est = groups
				}
			case "project":
				p := node.(*plan.Project)
				if !analyzer.ShouldPushProject(p.Expressions, cand.schema) {
					continue // not a cut point by itself
				}
			case "limit":
				if count := float64(node.(*plan.Limit).Count); count < est {
					est = count
				}
			}
			if rows > 0 && 1-est/rows >= analyzer.threshold {
				best = idx
				bestEst = est
			}
		}
		prefix = best + 1
		if prefix > 0 && rows > 0 {
			push.EstSelectivity = bestEst / rows
		}
	} else {
		for _, cand := range seq {
			ok := (cand.kind == "filter" && mode.Filter) ||
				(cand.kind == "project" && mode.Project) ||
				(cand.kind == "agg" && mode.Agg) ||
				(cand.kind == "limit" && mode.TopN)
			if !ok {
				break
			}
			prefix++
		}
	}

	// Materialize the chosen prefix into the pushdown spec.
	for _, cand := range seq[:prefix] {
		switch t := chain[cand.index].(type) {
		case *plan.Filter:
			push.Filter = t.Condition
		case *plan.Project:
			push.Project = &ProjectSpec{Expressions: t.Expressions, Names: t.Names}
		case *plan.Aggregate:
			push.Agg = &AggSpec{
				Keys:     t.Keys,
				Measures: t.Measures,
				Complete: keysSplitDisjoint(handle.Table, cand.schema, t.Keys),
			}
		case *plan.Limit:
			push.Limit = t.Count
		}
		absorbed = cand.index
	}

	// Optional full-chain absorption above the exchange: AggFinal
	// [→ Project] → TopN collapses into the scan when per-split
	// aggregation is complete, leaving only a residual re-merge TopN.
	finalAbsorbedTo := -1 // index in chain up to which final nodes are absorbed
	var residualTopN *plan.TopN
	if push.Agg != nil && push.Agg.Complete &&
		(mode.TopN || mode.Auto) {
		i := exchangeIdx - 1
		if i >= 0 {
			if aggFinal, ok := chain[i].(*plan.Aggregate); ok && aggFinal.Step == plan.AggFinal {
				j := i - 1
				var fproj *ProjectSpec
				if j >= 0 {
					if p, ok := chain[j].(*plan.Project); ok {
						fproj = &ProjectSpec{Expressions: p.Expressions, Names: p.Names}
						j--
					}
				}
				if j >= 0 {
					if topn, ok := chain[j].(*plan.TopN); ok && !topn.Partial {
						if mode.TopN || analyzer.ShouldPushTopN(topn.Count) {
							push.FinalProject = fproj
							push.TopN = &TopNSpec{Keys: topn.Keys, Count: topn.Count}
							residualTopN = &plan.TopN{Keys: topn.Keys, Count: topn.Count}
							finalAbsorbedTo = j
						}
					}
					_ = aggFinal
				}
			}
		}
	}

	if push.Empty() {
		return root, nil
	}

	// Rebuild: nodes above the absorptions, with the new scan at the
	// bottom.
	var kept []plan.Node
	if finalAbsorbedTo >= 0 {
		// Everything above chain[finalAbsorbedTo] (exclusive) is kept,
		// then residual TopN, then Exchange, then scan.
		kept = append(kept, chain[:finalAbsorbedTo]...)
		kept = append(kept, residualTopN, &plan.Exchange{})
	} else {
		kept = append(kept, chain[:exchangeIdx+1]...)
		// Leaf nodes not absorbed: chain[exchangeIdx+1 : absorbed].
		kept = append(kept, chain[exchangeIdx+1:absorbed]...)
	}

	// With a filter-only pushdown, columns referenced solely by the
	// pushed predicate are consumed in-storage: narrow the returned rows
	// to what the residual plan needs and remap residual ordinals.
	if push.Filter != nil && push.Project == nil && push.Agg == nil {
		if err := narrowFilterOutput(handle, push, kept, exchangeIdx); err != nil {
			return nil, err
		}
	}

	newHandle := &Handle{Table: handle.Table, Projection: handle.Projection, Push: push, pin: handle.pin}
	if mode.Auto {
		newHandle.Adaptive = adaptiveParams(session)
	}
	kept = append(kept, &plan.TableScan{Catalog: scan.Catalog, Table: scan.Table, Handle: newHandle})
	return rebuild(kept)
}

// narrowFilterOutput computes Push.OutputCols for a filter-only pushdown
// and rewrites the residual leaf nodes in kept (in place) to the narrowed
// ordinals. kept is root-first; residual leaf nodes occupy the tail after
// the Exchange at index exchangeIdx.
func narrowFilterOutput(handle *Handle, push *Pushdown, kept []plan.Node, exchangeIdx int) error {
	scanSchema := handle.baseScanSchema()
	// Residual leaf nodes sit after the exchange in kept, highest first.
	leafStart := exchangeIdx + 1
	if leafStart > len(kept) {
		return nil
	}
	needed := map[int]bool{}
	rebuilderAt := -1
	for i := len(kept) - 1; i >= leafStart; i-- { // bottom-up
		switch t := kept[i].(type) {
		case *plan.Filter:
			for _, c := range expr.ReferencedColumns(t.Condition) {
				needed[c] = true
			}
		case *plan.Project:
			for _, e := range t.Expressions {
				for _, c := range expr.ReferencedColumns(e) {
					needed[c] = true
				}
			}
			rebuilderAt = i
		case *plan.Aggregate:
			for _, k := range t.Keys {
				needed[k] = true
			}
			for _, m := range t.Measures {
				if m.Arg >= 0 {
					needed[m.Arg] = true
				}
			}
			rebuilderAt = i
		}
		if rebuilderAt >= 0 {
			break
		}
	}
	if rebuilderAt < 0 || len(needed) >= scanSchema.Len() {
		return nil // nothing to narrow (or every column still needed)
	}
	var cols []int
	for i := 0; i < scanSchema.Len(); i++ {
		if needed[i] {
			cols = append(cols, i)
		}
	}
	mapping := make(map[int]int, len(cols))
	for newIdx, oldIdx := range cols {
		mapping[oldIdx] = newIdx
	}
	// Remap residual nodes from the bottom up to the rebuilder.
	for i := len(kept) - 1; i >= rebuilderAt; i-- {
		switch t := kept[i].(type) {
		case *plan.Filter:
			cond, err := expr.Remap(t.Condition, mapping)
			if err != nil {
				return err
			}
			kept[i] = &plan.Filter{Condition: cond}
		case *plan.Project:
			exprs := make([]expr.Expr, len(t.Expressions))
			for j, e := range t.Expressions {
				re, err := expr.Remap(e, mapping)
				if err != nil {
					return err
				}
				exprs[j] = re
			}
			kept[i] = &plan.Project{Expressions: exprs, Names: t.Names}
		case *plan.Aggregate:
			keys := make([]int, len(t.Keys))
			for j, k := range t.Keys {
				keys[j] = mapping[k]
			}
			measures := append([]substrait.Measure(nil), t.Measures...)
			for j := range measures {
				if measures[j].Arg >= 0 {
					measures[j].Arg = mapping[measures[j].Arg]
				}
			}
			kept[i] = &plan.Aggregate{Keys: keys, Measures: measures, Step: t.Step}
		}
	}
	push.OutputCols = cols
	return nil
}

// flatten returns the linear chain root-first, or nil for non-linear
// plans.
func flatten(root plan.Node) ([]plan.Node, error) {
	var chain []plan.Node
	n := root
	for {
		chain = append(chain, n)
		kids := n.Children()
		if len(kids) == 0 {
			return chain, nil
		}
		if len(kids) != 1 {
			return nil, fmt.Errorf("ocs: non-linear plan")
		}
		n = kids[0]
	}
}

// rebuild reconstructs a root-first chain.
func rebuild(chain []plan.Node) (plan.Node, error) {
	node := chain[len(chain)-1]
	for i := len(chain) - 2; i >= 0; i-- {
		next, err := plan.ReplaceChild(chain[i], node)
		if err != nil {
			return nil, err
		}
		node = next
	}
	return node, nil
}

// selectivityAnalyzer implements the paper's §4 estimation rules over
// metastore statistics.
type selectivityAnalyzer struct {
	table     *metastore.Table
	threshold float64 // minimum data-reduction ratio to push (auto mode)
	costCap   float64 // maximum projection expression cost (auto mode)
}

func newSelectivityAnalyzer(table *metastore.Table, session *engine.Session) *selectivityAnalyzer {
	a := &selectivityAnalyzer{table: table, threshold: 0.5, costCap: 25}
	if v := session.Get(SessionSelectivityThreshold); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil && f >= 0 && f <= 1 {
			a.threshold = f
		}
	}
	if v := session.Get(SessionComplexityCap); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil && f > 0 {
			a.costCap = f
		}
	}
	return a
}

// adaptiveParams reads the auto-mode repricing knobs from the session.
func adaptiveParams(session *engine.Session) *AdaptiveParams {
	p := &AdaptiveParams{LoadCutoff: DefaultLoadCutoff, FlipMargin: DefaultFlipMargin}
	if v := session.Get(SessionAdaptiveLoadCutoff); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil && f >= 0 {
			p.LoadCutoff = f
		}
	}
	if v := session.Get(SessionAdaptiveFlipMargin); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil && f >= 1 {
			p.FlipMargin = f
		}
	}
	return p
}

// EstimateFilterSelectivity returns the estimated fraction of rows a
// predicate keeps, assuming normally distributed values between the
// column's min and max (the paper's §4 assumption, with its stated
// limitation for skewed data).
func (a *selectivityAnalyzer) EstimateFilterSelectivity(pred expr.Expr, schema *types.Schema) float64 {
	switch t := pred.(type) {
	case *expr.Logic:
		l := a.EstimateFilterSelectivity(t.L, schema)
		r := a.EstimateFilterSelectivity(t.R, schema)
		if t.Op == expr.And {
			return l * r
		}
		return math.Min(1, l+r)
	case *expr.Not:
		return 1 - a.EstimateFilterSelectivity(t.E, schema)
	case *expr.Between:
		col, okC := t.E.(*expr.ColumnRef)
		lo, okL := t.Lo.(*expr.Literal)
		hi, okH := t.Hi.(*expr.Literal)
		if !okC || !okL || !okH {
			return 0.33
		}
		return a.rangeProbability(schema, col, lo.Value, hi.Value)
	case *expr.Compare:
		col, okC := t.L.(*expr.ColumnRef)
		lit, okL := t.R.(*expr.Literal)
		op := t.Op
		if !okC || !okL {
			col, okC = t.R.(*expr.ColumnRef)
			lit, okL = t.L.(*expr.Literal)
			if !okC || !okL {
				return 0.33
			}
			op = mirrorCmp(op)
		}
		st, ok := a.columnStats(schema, col)
		if !ok || st.Min.Null || st.Max.Null || lit.Value.Null {
			return 0.33
		}
		switch op {
		case expr.Eq:
			if st.NDV > 0 {
				return 1 / float64(st.NDV)
			}
			return 0.1
		case expr.Ne:
			if st.NDV > 0 {
				return 1 - 1/float64(st.NDV)
			}
			return 0.9
		case expr.Lt, expr.Le:
			return a.cdf(st, lit.Value)
		case expr.Gt, expr.Ge:
			return 1 - a.cdf(st, lit.Value)
		}
		return 0.33
	default:
		return 0.33
	}
}

func mirrorCmp(op expr.CmpOp) expr.CmpOp {
	switch op {
	case expr.Lt:
		return expr.Gt
	case expr.Le:
		return expr.Ge
	case expr.Gt:
		return expr.Lt
	case expr.Ge:
		return expr.Le
	default:
		return op
	}
}

func (a *selectivityAnalyzer) columnStats(schema *types.Schema, col *expr.ColumnRef) (metastore.ColumnStats, bool) {
	if col.Index < 0 || col.Index >= schema.Len() {
		return metastore.ColumnStats{}, false
	}
	return a.table.Stats(schema.Columns[col.Index].Name)
}

// cdf evaluates the normal-approximation CDF at v for a column with the
// given stats: mean = (min+max)/2, sigma = (max-min)/6.
func (a *selectivityAnalyzer) cdf(st metastore.ColumnStats, v types.Value) float64 {
	if !st.Min.Kind.Numeric() || !v.Kind.Numeric() {
		return 0.33
	}
	lo, hi, x := st.Min.AsFloat(), st.Max.AsFloat(), v.AsFloat()
	if hi <= lo {
		if x >= hi {
			return 1
		}
		return 0
	}
	mean := (lo + hi) / 2
	sigma := (hi - lo) / 6
	z := (x - mean) / (sigma * math.Sqrt2)
	return 0.5 * (1 + math.Erf(z))
}

func (a *selectivityAnalyzer) rangeProbability(schema *types.Schema, col *expr.ColumnRef, lo, hi types.Value) float64 {
	st, ok := a.columnStats(schema, col)
	if !ok || st.Min.Null || st.Max.Null {
		return 0.33
	}
	p := a.cdf(st, hi) - a.cdf(st, lo)
	if p < 0 {
		return 0
	}
	return p
}

// ShouldPushFilter applies the threshold: push when the estimated
// reduction (1 - selectivity) clears it.
func (a *selectivityAnalyzer) ShouldPushFilter(pred expr.Expr, schema *types.Schema) bool {
	sel := a.EstimateFilterSelectivity(pred, schema)
	return 1-sel >= a.threshold
}

// ShouldPushProject pushes projections only when they shrink the row
// width enough and stay under the complexity cap — expression-heavy
// projections that don't reduce bytes are kept on the (faster) compute
// node, the paper's Q2 lesson.
func (a *selectivityAnalyzer) ShouldPushProject(exprs []expr.Expr, schema *types.Schema) bool {
	var cost float64
	for _, e := range exprs {
		cost += e.Cost()
	}
	if cost > a.costCap {
		return false
	}
	widthIn := float64(schema.Len())
	widthOut := float64(len(exprs))
	if widthIn == 0 {
		return false
	}
	return 1-widthOut/widthIn >= a.threshold
}

// ShouldPushAgg estimates output cardinality as rowCount / NDV(keys) per
// the paper and pushes when the reduction clears the threshold.
func (a *selectivityAnalyzer) ShouldPushAgg(keys []int, schema *types.Schema) bool {
	rows := float64(a.table.RowCount)
	if rows == 0 {
		return false
	}
	groups := a.EstimateGroups(keys, schema)
	return 1-groups/rows >= a.threshold
}

// EstimateGroups multiplies key NDVs (capped at the row count).
func (a *selectivityAnalyzer) EstimateGroups(keys []int, schema *types.Schema) float64 {
	groups := 1.0
	for _, k := range keys {
		if k < 0 || k >= schema.Len() {
			return float64(a.table.RowCount)
		}
		st, ok := a.table.Stats(schema.Columns[k].Name)
		if !ok || st.NDV <= 0 {
			return float64(a.table.RowCount)
		}
		groups *= float64(st.NDV)
	}
	if rows := float64(a.table.RowCount); groups > rows {
		return rows
	}
	return groups
}

// ShouldPushTopN uses the explicit LIMIT as the output cardinality.
func (a *selectivityAnalyzer) ShouldPushTopN(count int64) bool {
	rows := float64(a.table.RowCount)
	if rows == 0 {
		return false
	}
	return 1-float64(count)/rows >= a.threshold
}
