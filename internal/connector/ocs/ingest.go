package ocs

import (
	"context"
	"fmt"

	"prestocs/internal/ingest"
	"prestocs/internal/types"
)

// AttachIngester enables the write path on this connector: INSERT
// statements routed here via engine.Ingest buffer rows through ing
// into parquetlite objects committed with fresh zone maps.
func (c *Connector) AttachIngester(ing *ingest.Ingester) { c.ingester = ing }

// Ingester returns the attached ingester (nil when the catalog is
// read-only).
func (c *Connector) Ingester() *ingest.Ingester { return c.ingester }

// IngestRows implements engine.IngestConnector. Rows are flushed before
// returning, so an INSERT is durable and visible to new queries the
// moment the statement completes — the statement's time-to-queryable
// includes object seal, storage put and metastore commit.
func (c *Connector) IngestRows(ctx context.Context, schema, table string, rows [][]types.Value) (int64, error) {
	if c.ingester == nil {
		return 0, fmt.Errorf("ocs: catalog %q is read-only (no ingester attached)", c.catalog)
	}
	n, err := c.ingester.Append(ctx, schema, table, rows)
	if err != nil {
		return n, err
	}
	return n, c.ingester.Flush(ctx, schema, table)
}
