package ocs

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"prestocs/internal/costmodel"
	"prestocs/internal/engine"
	"prestocs/internal/expr"
	"prestocs/internal/plan"
	"prestocs/internal/telemetry"
)

// This file is the connector's single pushdown decision point. The
// vet-adaptive gate bans constructing engine.SplitDecision anywhere else
// in the connector, so plan-time advice (AdvisePlanPushdown), per-split
// pricing (DecideSplit) and mid-stream flips (ShouldFlip) cannot drift
// apart across files.

// Policy defaults.
const (
	// defaultMaxShapes bounds the per-(table, predicate-shape) history;
	// least-recently-touched shapes are evicted past it.
	defaultMaxShapes = 128
	// selEWMAAlpha weights a new per-split selectivity observation into
	// the shape's running estimate.
	selEWMAAlpha = 0.3
	// loadEWMAAlpha weights a new storage-backlog observation (one per
	// stream chunk) into the running load estimate. Load moves faster
	// than selectivity, so it gets the heavier weight.
	loadEWMAAlpha = 0.4
	// DefaultLoadCutoff is the storage-backlog EWMA below which mid-query
	// flips are not considered: repricing an already-flowing stream is
	// only worth it when storage is visibly saturated.
	DefaultLoadCutoff = 4
	// DefaultFlipMargin is how many times cheaper the raw path must price
	// before an in-flight pushdown stream is abandoned mid-query; the
	// flip repeats the object GET, so it needs clear headroom.
	DefaultFlipMargin = 1.5
)

// shapeHistory is the observed runtime behavior of one (table,
// predicate-shape) pair.
type shapeHistory struct {
	selectivity float64 // EWMA of output rows / input rows per split
	samples     int64
	fallbacks   int64
}

// Policy prices pushdown vs raw scan per split from three inputs: the
// cost model's hardware profile (Table 1), the observed per-shape
// selectivity history, and the live storage-load signal piggybacked on
// stream RPC frames. It replaces the query-global success-rate heuristic
// the Monitor used to expose (AdvisePushdown) — that advice survives as
// AdvisePlanPushdown, fed by the Monitor's completion events.
type Policy struct {
	params costmodel.Params

	mu        sync.Mutex
	shapes    map[string]*shapeHistory
	order     []string // LRU, least recently touched first
	maxShapes int
	queries   int64
	successes int64
	loadEWMA  float64
	metrics   *telemetry.Registry
}

// NewPolicy creates a policy pricing with the given hardware profile.
func NewPolicy(params costmodel.Params) *Policy {
	return &Policy{
		params:    params,
		shapes:    make(map[string]*shapeHistory),
		maxShapes: defaultMaxShapes,
	}
}

// SetMetrics mirrors decisions, flips, load and per-shape selectivity
// into reg as the ocs_pushdown_* / ocs_storage_load series.
func (p *Policy) SetMetrics(reg *telemetry.Registry) {
	p.mu.Lock()
	p.metrics = reg
	p.mu.Unlock()
}

func (p *Policy) metricsReg() *telemetry.Registry {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.metrics
}

// AdvisePlanPushdown is the plan-time feedback loop folded in from the
// Monitor: once enough queries have run, a low success rate (e.g. a
// flaky storage node failing pushdown executions) advises auto mode to
// plan plain scans until reliability recovers.
func (p *Policy) AdvisePlanPushdown() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.queries < 4 {
		return true
	}
	return 2*p.successes >= p.queries
}

// queryCompleted feeds one finished query's outcome; the Monitor calls
// it from its EventListener hook.
func (p *Policy) queryCompleted(succeeded bool) {
	p.mu.Lock()
	p.queries++
	if succeeded {
		p.successes++
	}
	p.mu.Unlock()
}

// ObserveLoad folds one storage-backlog word (read off a stream frame)
// into the load estimate.
func (p *Policy) ObserveLoad(load uint32) {
	p.mu.Lock()
	p.loadEWMA = (1-loadEWMAAlpha)*p.loadEWMA + loadEWMAAlpha*float64(load)
	ewma := p.loadEWMA
	reg := p.metrics
	p.mu.Unlock()
	reg.Gauge(telemetry.MetricStorageLoad).Set(int64(ewma + 0.5))
}

// LoadEWMA returns the current storage-backlog estimate.
func (p *Policy) LoadEWMA() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.loadEWMA
}

// ObserveSplit records one finished split's actual selectivity: rows the
// pushed pipeline produced over rows the split holds. Static modes
// observe too, so history is warm when a session switches to auto.
func (p *Policy) ObserveSplit(h *Handle, rowsDelivered int64) {
	rowsIn := rowsPerSplit(h)
	if rowsIn <= 0 || h.Push == nil || h.Push.Empty() {
		return
	}
	sel := float64(rowsDelivered) / rowsIn
	if sel > 1 {
		sel = 1
	}
	key := predicateShape(h)
	p.mu.Lock()
	sh := p.touchLocked(key)
	if sh.samples == 0 {
		sh.selectivity = sel
	} else {
		sh.selectivity = (1-selEWMAAlpha)*sh.selectivity + selEWMAAlpha*sel
	}
	sh.samples++
	reg := p.metrics
	p.mu.Unlock()
	reg.Histogram(telemetry.MetricPushdownShapeSelectivity, "shape", key).Observe(int64(sel * 100))
}

// ObserveFallback records that a split of this shape degraded from
// pushdown to the raw path.
func (p *Policy) ObserveFallback(h *Handle) {
	key := predicateShape(h)
	p.mu.Lock()
	p.touchLocked(key).fallbacks++
	p.mu.Unlock()
}

// ShapeSelectivity returns the observed selectivity EWMA for the
// handle's shape and whether any samples exist.
func (p *Policy) ShapeSelectivity(h *Handle) (float64, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if sh, ok := p.shapes[predicateShape(h)]; ok && sh.samples > 0 {
		return sh.selectivity, true
	}
	return 0, false
}

// Shapes returns the number of retained shape histories.
func (p *Policy) Shapes() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.shapes)
}

// touchLocked returns the history for key, creating it (and evicting the
// least-recently-touched shape past maxShapes) as needed. Caller holds
// p.mu.
func (p *Policy) touchLocked(key string) *shapeHistory {
	if sh, ok := p.shapes[key]; ok {
		for i, k := range p.order {
			if k == key {
				p.order = append(p.order[:i], p.order[i+1:]...)
				break
			}
		}
		p.order = append(p.order, key)
		return sh
	}
	if len(p.shapes) >= p.maxShapes && len(p.order) > 0 {
		evict := p.order[0]
		p.order = p.order[1:]
		delete(p.shapes, evict)
	}
	sh := &shapeHistory{}
	p.shapes[key] = sh
	p.order = append(p.order, key)
	return sh
}

// decide prices one split both ways and picks the cheaper path.
func (p *Policy) decide(h *Handle) engine.SplitDecision {
	sel, source := p.selectivity(h)
	pushCost, rawCost := p.price(h, sel, p.loadPerWorker())
	dec := engine.SplitDecision{Pushdown: pushCost <= rawCost, Reason: source}
	choice := "raw"
	if dec.Pushdown {
		choice = "pushdown"
	}
	p.metricsReg().Counter(telemetry.MetricPushdownDecisions, "choice", choice).Inc()
	return dec
}

// ShouldFlip reprices an in-flight pushdown stream against what it has
// actually delivered so far. A flip abandons the stream and replays the
// pushed operators locally, skipping delivered rows — sound only for
// order-deterministic pipelines (the PR 2 resume invariant) — so it
// needs saturated storage (load cutoff) and clear pricing headroom
// (flip margin) before triggering.
func (p *Policy) ShouldFlip(h *Handle, rowsDelivered int64) bool {
	if h.Adaptive == nil || h.Push == nil || h.Push.Empty() {
		return false
	}
	if !h.Push.OrderDeterministic() || rowsDelivered <= 0 {
		return false
	}
	rowsIn := rowsPerSplit(h)
	if rowsIn <= 0 {
		return false
	}
	p.mu.Lock()
	load := p.loadEWMA
	p.mu.Unlock()
	if load < h.Adaptive.LoadCutoff {
		return false
	}
	// Rows delivered so far is a lower bound on the split's selectivity;
	// with storage saturated and even the lower bound pricing pushdown
	// out, the stream is not worth finishing.
	sel := float64(rowsDelivered) / rowsIn
	if sel > 1 {
		sel = 1
	}
	pushCost, rawCost := p.price(h, sel, p.loadPerWorkerAt(load))
	return rawCost.Seconds()*h.Adaptive.FlipMargin < pushCost.Seconds()
}

// noteFlip counts one executed mid-stream flip.
func (p *Policy) noteFlip() {
	p.metricsReg().Counter(telemetry.MetricPushdownFlips).Inc()
}

// selectivity resolves the expected fraction of rows the pushed pipeline
// keeps: observed shape history first, the planner's estimate second, an
// agnostic 0.5 otherwise. A join bloom filter scales the plan-time
// priors by its own estimate (build keys over probe NDV); history needs
// no scaling because the shape key already includes the bloom marker,
// so bloom-filtered splits accumulate their own observations.
func (p *Policy) selectivity(h *Handle) (float64, string) {
	p.mu.Lock()
	sh, ok := p.shapes[predicateShape(h)]
	if ok && sh.samples > 0 {
		sel := sh.selectivity
		p.mu.Unlock()
		return sel, "history"
	}
	p.mu.Unlock()
	sel, source := 0.5, "default"
	if h.Push != nil && h.Push.EstSelectivity > 0 {
		sel, source = h.Push.EstSelectivity, "prior"
	}
	if h.Push != nil && h.Push.Bloom != nil && h.Push.Bloom.EstSelectivity > 0 {
		sel *= h.Push.Bloom.EstSelectivity
		source += "+bloom"
	}
	return sel, source
}

// loadPerWorker converts the backlog EWMA into queueing depth per
// storage scan worker: 0 = idle, 1 = every worker has one task waiting
// behind its current one, and so on.
func (p *Policy) loadPerWorker() float64 {
	p.mu.Lock()
	load := p.loadEWMA
	p.mu.Unlock()
	return p.loadPerWorkerAt(load)
}

func (p *Policy) loadPerWorkerAt(load float64) float64 {
	workers := costmodel.StorageScanParallelism()
	if workers < 1 {
		workers = 1
	}
	return load / float64(workers)
}

// price models one split both ways with the cost-model hardware profile
// (Table 1). The pushdown side charges the storage scan at the slow
// storage cores inflated by the observed queueing depth, then moves and
// ingests only the surviving rows; the raw side moves the whole object
// and charges the scan (and full-width ingest) to the fast compute
// cores. This is PushdownDB's pricing argument with live inputs.
func (p *Policy) price(h *Handle, sel, loadPerWorker float64) (pushCost, rawCost time.Duration) {
	rowsIn := rowsPerSplit(h)
	objBytes := bytesPerSplit(h)
	widthIn := float64(h.baseScanSchema().Len())
	widthOut := float64(h.ScanSchema().Len())
	scanUnits := rowsIn * widthIn * 2.0 // decode + predicate per cell
	if h.Push != nil && h.Push.Bloom != nil {
		// Bloom evaluation runs on the storage cores: one hash chain plus
		// NumHash membership probes per scanned row.
		scanUnits += rowsIn * float64(1+h.Push.Bloom.Filter.NumHash())
	}

	pushM := costmodel.Measured{
		StorageBytesRead: int64(objBytes),
		StorageCPUUnits:  scanUnits * (1 + loadPerWorker),
		BytesMoved:       int64(sel * rowsIn * widthOut * 8),
		IngestUnits:      sel * rowsIn * widthOut * 1.5,
		RoundTrips:       1,
	}
	rawM := costmodel.Measured{
		StorageBytesRead: int64(objBytes),
		BytesMoved:       int64(objBytes),
		ComputeCPUUnits:  scanUnits,
		IngestUnits:      rowsIn * widthIn * 1.5,
		RoundTrips:       1,
	}
	return p.params.Model(pushM).Total, p.params.Model(rawM).Total
}

// rowsPerSplit estimates the rows one split (object) holds.
func rowsPerSplit(h *Handle) float64 {
	n := len(h.Table.Objects)
	if n == 0 {
		n = 1
	}
	return float64(h.Table.RowCount) / float64(n)
}

// bytesPerSplit estimates the stored bytes one split holds.
func bytesPerSplit(h *Handle) float64 {
	n := len(h.Table.Objects)
	if n == 0 {
		n = 1
	}
	return float64(h.Table.TotalBytes) / float64(n)
}

// predicateShape keys the history: table identity, pushed operator set
// and the structural rendering of the pushed filter (operators and
// column ordinals, literals erased — `x < 10` and `x < 90` share a
// shape, so one sweep warms the other's history).
func predicateShape(h *Handle) string {
	var b strings.Builder
	b.WriteString(h.Table.QualifiedName())
	if h.Push != nil {
		b.WriteString("|")
		b.WriteString(strings.Join(h.Push.Operators(), "+"))
		if h.Push.Filter != nil {
			b.WriteString("|")
			b.WriteString(exprShape(h.Push.Filter))
		}
	}
	return b.String()
}

// exprShape renders an expression's structure with literals erased.
func exprShape(e expr.Expr) string {
	switch t := e.(type) {
	case *expr.Logic:
		op := "or"
		if t.Op == expr.And {
			op = "and"
		}
		return "(" + exprShape(t.L) + " " + op + " " + exprShape(t.R) + ")"
	case *expr.Not:
		return "not(" + exprShape(t.E) + ")"
	case *expr.Between:
		return "between(" + exprShape(t.E) + ")"
	case *expr.Compare:
		return fmt.Sprintf("cmp%v(%s,%s)", t.Op, exprShape(t.L), exprShape(t.R))
	case *expr.ColumnRef:
		return fmt.Sprintf("c%d", t.Index)
	case *expr.Literal:
		return "?"
	default:
		return fmt.Sprintf("%T", e)
	}
}

// DecideSplit implements engine.AdaptiveConnector: the one per-split
// decision point. Static pushdown modes (and pushdown-free plans) pass
// through unchanged so the paper's fixed configurations stay exactly
// reproducible; auto-mode handles carry AdaptiveParams and are priced
// against history and live load.
func (c *Connector) DecideSplit(handle plan.TableHandle, split engine.Split, stats *engine.ScanStats) engine.SplitDecision {
	h, ok := handle.(*Handle)
	if !ok || h.Push == nil || h.Push.Empty() {
		return engine.SplitDecision{Pushdown: false, Reason: "no-pushdown"}
	}
	if h.Adaptive == nil {
		return engine.SplitDecision{Pushdown: true, Reason: "static"}
	}
	dec := c.policy.decide(h)
	stats.AddSplitDecision(dec.Pushdown)
	return dec
}
