package ocs

import (
	"fmt"
	"time"

	"prestocs/internal/column"
	"prestocs/internal/engine"
	"prestocs/internal/exec"
	"prestocs/internal/expr"
	"prestocs/internal/metastore"
	"prestocs/internal/ocsserver"
	"prestocs/internal/parquetlite"
	"prestocs/internal/plan"
	"prestocs/internal/substrait"
)

// Connector is the Presto-OCS connector instance for one catalog.
type Connector struct {
	catalog string
	meta    *metastore.Metastore
	client  *ocsserver.Client
	monitor *Monitor
}

// New creates a connector bound to a metastore and an OCS frontend.
func New(catalog string, meta *metastore.Metastore, client *ocsserver.Client) *Connector {
	return &Connector{catalog: catalog, meta: meta, client: client, monitor: NewMonitor(64)}
}

// Name implements engine.Connector.
func (c *Connector) Name() string { return c.catalog }

// Monitor returns the connector's pushdown monitor (register it with the
// engine via AddEventListener).
func (c *Connector) Monitor() *Monitor { return c.monitor }

// TableHandle implements engine.Connector.
func (c *Connector) TableHandle(schema, table string) (plan.TableHandle, error) {
	t, err := c.meta.Get(schema, table)
	if err != nil {
		return nil, err
	}
	return &Handle{Table: t}, nil
}

// Splits implements engine.Connector: one split per object.
func (c *Connector) Splits(handle plan.TableHandle) ([]engine.Split, error) {
	h, ok := handle.(*Handle)
	if !ok {
		return nil, fmt.Errorf("ocs: foreign handle %T", handle)
	}
	splits := make([]engine.Split, len(h.Table.Objects))
	for i, obj := range h.Table.Objects {
		splits[i] = engine.Split{Object: obj, Index: i}
	}
	return splits, nil
}

// PlanOptimizer implements engine.Connector.
func (c *Connector) PlanOptimizer() engine.ConnectorPlanOptimizer {
	return &localOptimizer{conn: c}
}

// CreatePageSource implements engine.Connector: the paper's
// PageSourceProvider. With a pushdown spec it reconstructs the extracted
// operators as a Substrait plan, ships it to OCS over RPC and
// deserializes the Arrow result; without one it falls back to a
// whole-object GET with local scanning.
func (c *Connector) CreatePageSource(handle plan.TableHandle, split engine.Split, stats *engine.ScanStats) (exec.Operator, error) {
	h, ok := handle.(*Handle)
	if !ok {
		return nil, fmt.Errorf("ocs: foreign handle %T", handle)
	}
	if h.Push == nil || h.Push.Empty() {
		return c.rawSource(h, split, stats)
	}

	// Translate the extracted operators into Substrait IR (timed for
	// Table 3).
	start := time.Now()
	irPlan, err := BuildSubstrait(h, split.Object)
	if err != nil {
		return nil, err
	}
	if _, err := irPlan.Validate(); err != nil {
		return nil, fmt.Errorf("ocs: generated invalid Substrait plan: %w", err)
	}
	stats.AddSubstraitGen(time.Since(start))

	// Ship to OCS and await Arrow results.
	start = time.Now()
	res, err := c.client.Execute(irPlan)
	if err != nil {
		return nil, fmt.Errorf("ocs: executing pushdown for %s: %w", split.Object, err)
	}
	stats.AddTransfer(time.Since(start))
	stats.AddBytesMoved(res.ArrowBytes)
	stats.AddStorageWork(res.Stats)

	var rows int64
	for _, p := range res.Pages {
		rows += int64(p.NumRows())
	}
	// Arrow deserialization into engine pages: columnar buffer adoption
	// plus validity expansion (1.5 ingest units/cell, half the CSV text
	// parse cost).
	stats.AddDeserialize(float64(rows)*float64(res.Schema.Len())*1.5, rows)

	scanSchema := h.ScanSchema()
	if len(res.Pages) > 0 && res.Pages[0].NumCols() != scanSchema.Len() {
		return nil, fmt.Errorf("ocs: result has %d columns, scan schema %s", res.Pages[0].NumCols(), scanSchema)
	}
	// Present pages under the handle's scan schema (names may differ in
	// case only).
	pages := make([]*column.Page, len(res.Pages))
	for i, p := range res.Pages {
		pages[i] = &column.Page{Schema: scanSchema, Vectors: p.Vectors}
	}
	return exec.NewPageSource(scanSchema, pages), nil
}

// rawSource is the no-pushdown path: full object transfer, local scan.
func (c *Connector) rawSource(h *Handle, split engine.Split, stats *engine.ScanStats) (exec.Operator, error) {
	start := time.Now()
	data, work, err := c.client.Get(h.Table.Bucket, split.Object)
	if err != nil {
		return nil, fmt.Errorf("ocs: get %s/%s: %w", h.Table.Bucket, split.Object, err)
	}
	stats.AddTransfer(time.Since(start))
	stats.AddBytesMoved(int64(len(data)))
	stats.AddStorageWork(work)

	reader, err := parquetlite.NewReader(data)
	if err != nil {
		return nil, err
	}
	cols := h.Projection
	if cols == nil {
		cols = make([]int, h.Table.Columns.Len())
		for i := range cols {
			cols[i] = i
		}
	}
	scanSchema := h.baseScanSchema()
	rg := 0
	return exec.NewFuncSource(scanSchema, func() (*column.Page, error) {
		if rg >= len(reader.Meta().RowGroups) {
			return nil, nil
		}
		page, err := reader.ReadRowGroup(rg, cols)
		rg++
		if err != nil {
			return nil, err
		}
		stats.AddDeserialize(float64(page.NumRows())*float64(len(cols))*1.5, int64(page.NumRows()))
		return page, nil
	}), nil
}

// BuildSubstrait reconstructs the handle's pushdown spec as a Substrait
// plan over one object — the connector's SQL→Substrait translation
// (§3.4 step 3). Exported for the overhead breakdown benchmark.
func BuildSubstrait(h *Handle, object string) (*substrait.Plan, error) {
	var rel substrait.Rel = &substrait.ReadRel{
		Bucket:     h.Table.Bucket,
		Object:     object,
		BaseSchema: h.Table.Columns,
		Projection: h.Projection,
	}
	p := h.Push
	if p.Filter != nil {
		rel = &substrait.FilterRel{Input: rel, Condition: p.Filter}
	}
	if p.OutputCols != nil && p.Project == nil && p.Agg == nil {
		// Drop columns only the pushed filter needed: a plain column
		// projection executed in-storage after the filter.
		scanSchema := h.baseScanSchema()
		exprs := make([]expr.Expr, len(p.OutputCols))
		names := make([]string, len(p.OutputCols))
		for i, c := range p.OutputCols {
			col := scanSchema.Columns[c]
			exprs[i] = expr.Col(c, col.Name, col.Type)
			names[i] = col.Name
		}
		rel = &substrait.ProjectRel{Input: rel, Expressions: exprs, Names: names}
	}
	if p.Project != nil {
		rel = &substrait.ProjectRel{Input: rel, Expressions: p.Project.Expressions, Names: p.Project.Names}
	}
	if p.Agg != nil {
		rel = &substrait.AggregateRel{Input: rel, GroupKeys: p.Agg.Keys, Measures: p.Agg.Measures}
	}
	if p.FinalProject != nil {
		rel = &substrait.ProjectRel{Input: rel, Expressions: p.FinalProject.Expressions, Names: p.FinalProject.Names}
	}
	if p.TopN != nil {
		keys := make([]substrait.SortKey, len(p.TopN.Keys))
		for i, k := range p.TopN.Keys {
			keys[i] = substrait.SortKey{Column: k.Column, Descending: k.Descending}
		}
		rel = &substrait.FetchRel{
			Input: &substrait.SortRel{Input: rel, Keys: keys},
			Count: p.TopN.Count,
		}
	}
	if p.Limit > 0 {
		rel = &substrait.FetchRel{Input: rel, Count: p.Limit}
	}
	return substrait.NewPlan(rel), nil
}
