package ocs

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"time"

	"prestocs/internal/cache"
	"prestocs/internal/column"
	"prestocs/internal/costmodel"
	"prestocs/internal/engine"
	"prestocs/internal/exec"
	"prestocs/internal/expr"
	"prestocs/internal/ingest"
	"prestocs/internal/metastore"
	"prestocs/internal/objstore"
	"prestocs/internal/ocsserver"
	"prestocs/internal/parquetlite"
	"prestocs/internal/plan"
	"prestocs/internal/retry"
	"prestocs/internal/rpc"
	"prestocs/internal/substrait"
	"prestocs/internal/telemetry"
	"prestocs/internal/types"
)

// Connector is the Presto-OCS connector instance for one catalog.
type Connector struct {
	catalog string
	meta    *metastore.Metastore
	tables  *cache.TableCache
	client  *ocsserver.Client
	monitor *Monitor
	policy  *Policy
	// ingester, when attached, enables the write path (engine.Ingest)
	// on this catalog.
	ingester *ingest.Ingester
}

// New creates a connector bound to a metastore and an OCS frontend.
// Table metadata (definitions, schemas, per-object stats) is served
// through a versioned cache sized at cache.DefaultTableCacheEntries;
// resize with SetTableCacheEntries.
func New(catalog string, meta *metastore.Metastore, client *ocsserver.Client) *Connector {
	c := &Connector{
		catalog: catalog,
		meta:    meta,
		tables:  cache.NewTableCache(meta, cache.DefaultTableCacheEntries),
		client:  client,
		monitor: NewMonitor(64),
		policy:  NewPolicy(costmodel.Default()),
	}
	c.monitor.policy = c.policy
	return c
}

// Name implements engine.Connector.
func (c *Connector) Name() string { return c.catalog }

// Monitor returns the connector's pushdown monitor (register it with the
// engine via AddEventListener).
func (c *Connector) Monitor() *Monitor { return c.monitor }

// Policy returns the connector's adaptive pushdown policy.
func (c *Connector) Policy() *Policy { return c.policy }

// SetTableCacheEntries resizes the table-metadata cache (0 disables
// caching). Call before serving queries.
func (c *Connector) SetTableCacheEntries(n int) {
	c.tables = cache.NewTableCache(c.meta, n)
}

// SetMetrics binds the table-metadata cache counters and the adaptive
// policy's decision/flip/load series to a registry; call before serving
// queries.
func (c *Connector) SetMetrics(reg *telemetry.Registry) {
	c.tables.Instrument(reg, "catalog", c.catalog)
	c.policy.SetMetrics(reg)
}

// TableHandle implements engine.Connector; lookups go through the
// versioned metadata cache, so N concurrent queries for a hot table cost
// one metastore round trip plus N cheap version checks. The handle
// additionally pins the metastore snapshot it resolved, freezing the
// object set a racing ingest or compaction could otherwise mutate out
// from under the scan; the engine releases the pin when the query
// finishes (see Handle.ReleaseSnapshot).
func (c *Connector) TableHandle(schema, table string) (plan.TableHandle, error) {
	t, pin, err := c.tables.GetPinned(schema, table)
	if err != nil {
		return nil, err
	}
	return &Handle{Table: t, pin: pin}, nil
}

// Splits implements engine.Connector: one split per object.
func (c *Connector) Splits(handle plan.TableHandle) ([]engine.Split, error) {
	h, ok := handle.(*Handle)
	if !ok {
		return nil, fmt.Errorf("ocs: foreign handle %T", handle)
	}
	splits := make([]engine.Split, len(h.Table.Objects))
	for i, obj := range h.Table.Objects {
		splits[i] = engine.Split{Object: obj, Index: i}
	}
	return splits, nil
}

// PlanOptimizer implements engine.Connector.
func (c *Connector) PlanOptimizer() engine.ConnectorPlanOptimizer {
	return &localOptimizer{conn: c}
}

// CreatePageSource implements engine.Connector: the paper's
// PageSourceProvider. With a pushdown spec it reconstructs the extracted
// operators as a Substrait plan, ships it to OCS over RPC and
// deserializes the Arrow result; without one it uses the raw-scan path
// (whole-object GET with local scanning). When pushdown execution fails
// transiently even after the client's retries, the source degrades to
// the raw-scan path too — the paper's no-pushdown configuration — and
// records the fallback in the scan stats.
func (c *Connector) CreatePageSource(ctx context.Context, handle plan.TableHandle, split engine.Split, stats *engine.ScanStats) (exec.Operator, error) {
	h, ok := handle.(*Handle)
	if !ok {
		return nil, fmt.Errorf("ocs: foreign handle %T", handle)
	}
	if h.Push == nil || h.Push.Empty() {
		return c.rawSource(ctx, h, split, stats)
	}
	return c.pushdownSource(ctx, h, split, stats)
}

// CreatePageSourceDecided implements engine.AdaptiveConnector: it opens
// the split on the path DecideSplit selected. A raw decision on a
// pushdown handle runs the pushed operators locally over a whole-object
// GET (the replay path), so the residual plan sees the same schema
// either way.
func (c *Connector) CreatePageSourceDecided(ctx context.Context, handle plan.TableHandle, split engine.Split, dec engine.SplitDecision, stats *engine.ScanStats) (exec.Operator, error) {
	h, ok := handle.(*Handle)
	if !ok {
		return nil, fmt.Errorf("ocs: foreign handle %T", handle)
	}
	if h.Push == nil || h.Push.Empty() {
		return c.rawSource(ctx, h, split, stats)
	}
	if !dec.Pushdown {
		return c.adaptiveRawSource(ctx, h, split, stats)
	}
	return c.pushdownSource(ctx, h, split, stats)
}

// pushdownSource opens the in-storage execution path for one split.
func (c *Connector) pushdownSource(ctx context.Context, h *Handle, split engine.Split, stats *engine.ScanStats) (exec.Operator, error) {
	// The scan span covers this split's whole pushdown lifetime; its
	// children are the Table-3 stages (Substrait generation, stream open)
	// and its accumulated durations the per-chunk transfer waits and
	// Arrow deserialize time. It ends when the source is exhausted or
	// closed.
	ctx, scanSpan := telemetry.StartSpan(ctx, "connector.scan")
	scanSpan.SetAttr("object", split.Object)

	// Translate the extracted operators into Substrait IR (timed for
	// Table 3).
	start := time.Now()
	_, genSpan := telemetry.StartSpan(ctx, "connector.substrait_gen")
	irPlan, err := BuildSubstrait(h, split.Object)
	if err != nil {
		genSpan.End()
		scanSpan.End()
		return nil, err
	}
	if _, err := irPlan.Validate(); err != nil {
		genSpan.End()
		scanSpan.End()
		return nil, fmt.Errorf("ocs: generated invalid Substrait plan: %w", err)
	}
	genSpan.End()
	stats.AddSubstraitGen(time.Since(start))

	// Open the result stream: residual operators start consuming batch 1
	// while the storage node is still scanning later row groups. Transfer
	// time is charged only while blocked waiting on storage (stream open
	// plus per-batch waits), so the Table 3 breakdown keeps its meaning
	// under overlap.
	start = time.Now()
	openCtx, openSpan := telemetry.StartSpan(ctx, "connector.stream_open")
	rs, err := c.client.ExecuteStream(openCtx, irPlan)
	openSpan.End()
	if err != nil {
		if h.Push.Bloom != nil && bloomRejected(err) && ctx.Err() == nil {
			// The node refused the filter (size cap), not the plan: retry
			// the same split without the bloom and re-apply it engine-side,
			// so the join still probes a pre-filtered stream.
			scanSpan.Event("bloom-rejected", err.Error())
			scanSpan.End()
			stats.AddJoinBloomRejected()
			src, serr := c.pushdownSource(ctx, h.withoutBloom(), split, stats)
			if serr != nil {
				return nil, serr
			}
			return exec.NewBloomProbe(src, h.Push.Bloom.Column, h.Push.Bloom.Filter, nil, nil)
		}
		if retry.Transient(err) && ctx.Err() == nil {
			scanSpan.Event("pushdown-fallback", err.Error())
			src, ferr := c.fallbackSource(ctx, h, split, stats, 0)
			scanSpan.End()
			return src, ferr
		}
		scanSpan.End()
		return nil, fmt.Errorf("ocs: executing pushdown for %s: %w", split.Object, err)
	}
	if h.Push.Bloom != nil {
		stats.AddJoinBloomSplit()
	}
	stats.AddTransfer(time.Since(start))
	return &streamSource{
		ctx: ctx, conn: c, h: h, split: split, span: scanSpan,
		rs: rs, schema: h.ScanSchema(), stats: stats, object: split.Object,
	}, nil
}

// bloomRejected classifies a stream-open failure as the storage node
// refusing the attached bloom filter: a permanent invalid-plan code
// whose message names the filter. Plain invalid-plan errors (a
// connector bug) must not retry.
func bloomRejected(err error) bool {
	return errors.Is(err, rpc.ErrInvalid) && strings.Contains(err.Error(), "bloom")
}

// streamSource adapts an OCS result stream to an exec.Operator. It
// accounts bytes moved, transfer-blocked time, deserialize work and
// storage-side stats incrementally as chunks land, and implements Close
// so the engine can release the stream when a pipeline stops early.
// When the stream dies transiently mid-flight it degrades to the
// raw-scan fallback, replaying the pushed operators locally and skipping
// the rows already delivered (sound only while the pushed pipeline is
// order-deterministic).
type streamSource struct {
	ctx   context.Context
	conn  *Connector
	h     *Handle
	split engine.Split

	rs            *ocsserver.ResultStream
	schema        *types.Schema
	stats         *engine.ScanStats
	span          *telemetry.Span
	object        string
	prevBytes     int64
	prevDecode    time.Duration
	rowsDelivered int64
	fb            exec.Operator
	done          bool
}

func (s *streamSource) Schema() *types.Schema { return s.schema }

func (s *streamSource) Next() (*column.Page, error) {
	if s.fb != nil {
		page, err := s.fb.Next()
		if page == nil {
			s.span.End()
		}
		return page, err
	}
	if s.done {
		return nil, nil
	}
	// Adaptive mid-stream flip: with storage saturated and the delivered
	// rows already pricing the pushdown out, abandon the stream and resume
	// on the local replay path (order-deterministic pipelines only; the
	// replay skips the rows already delivered). The replay is built before
	// the stream is released so a replay failure just keeps streaming.
	if s.rowsDelivered > 0 && s.conn.policy.ShouldFlip(s.h, s.rowsDelivered) {
		if fb, err := s.conn.adaptiveReplaySource(s.ctx, s.h, s.split, s.stats, s.rowsDelivered); err == nil {
			s.rs.Close()
			s.done = true
			s.fb = fb
			s.stats.AddAdaptiveFlip()
			s.conn.policy.noteFlip()
			s.span.Event("adaptive-flip", fmt.Sprintf("after %d rows", s.rowsDelivered))
			return s.fb.Next()
		}
	}
	start := time.Now()
	page, err := s.rs.Next()
	stats := s.stats
	wall := time.Since(start)
	stats.AddTransfer(wall)
	// Split the wait between the wire and the decoder for the span: the
	// stats charge the whole wall as transfer (established Table-3
	// semantics), the span separates the deserialize share.
	decode := s.rs.DecodeTime() - s.prevDecode
	s.prevDecode = s.rs.DecodeTime()
	s.span.AddDuration("transfer_wait", wall-decode)
	s.span.AddDuration("arrow_deserialize", decode)
	s.accountBytes()
	// Every frame carries the node's scan backlog: feed the policy's
	// storage-load estimate.
	s.conn.policy.ObserveLoad(s.rs.Load())
	if err == io.EOF {
		s.done = true
		stats.AddStorageWork(s.rs.Stats())
		s.conn.policy.ObserveSplit(s.h, s.rowsDelivered)
		s.span.End()
		return nil, nil
	}
	if err != nil {
		if fb, ok := s.tryFallback(err); ok {
			s.fb = fb
			return s.fb.Next()
		}
		s.done = true
		s.span.Event("error", err.Error())
		s.span.End()
		return nil, fmt.Errorf("ocs: pushdown stream for %s: %w", s.object, err)
	}
	if page.NumCols() != s.schema.Len() {
		s.done = true
		s.rs.Close()
		return nil, fmt.Errorf("ocs: result has %d columns, scan schema %s", page.NumCols(), s.schema)
	}
	// Arrow deserialization into engine pages: columnar buffer adoption
	// plus validity expansion (1.5 ingest units/cell, half the CSV text
	// parse cost).
	rows := int64(page.NumRows())
	stats.AddDeserialize(float64(rows)*float64(s.schema.Len())*1.5, rows)
	s.rowsDelivered += rows
	// Present pages under the handle's scan schema (names may differ in
	// case only).
	return &column.Page{Schema: s.schema, Vectors: page.Vectors}, nil
}

// tryFallback decides whether a mid-stream failure can be absorbed by
// the raw-scan path. Requirements: the failure is transient (not a plan
// error, not our own cancellation) and either no rows have been
// delivered yet or the pushed pipeline is order-deterministic, so the
// local replay can skip exactly the rows the engine already consumed.
func (s *streamSource) tryFallback(cause error) (exec.Operator, bool) {
	if s.ctx != nil && s.ctx.Err() != nil {
		return nil, false
	}
	if !retry.Transient(cause) {
		return nil, false
	}
	if s.rowsDelivered > 0 && !s.h.Push.OrderDeterministic() {
		return nil, false
	}
	s.rs.Close()
	s.done = true
	s.span.Event("pushdown-fallback", cause.Error())
	fb, err := s.conn.fallbackSource(s.ctx, s.h, s.split, s.stats, s.rowsDelivered)
	if err != nil {
		s.span.End()
		return nil, false // surface the original stream error instead
	}
	s.conn.policy.ObserveFallback(s.h)
	return fb, true
}

func (s *streamSource) accountBytes() {
	b := s.rs.ArrowBytes()
	if b > s.prevBytes {
		s.stats.AddBytesMoved(b - s.prevBytes)
		s.prevBytes = b
	}
}

// Bounds for the early-stop drain in Close: enough to consume a few
// in-flight chunks plus the end frame when the node has already
// finished, small enough that an actively producing stream is abandoned
// quickly.
const (
	closeDrainChunks  = 32
	closeDrainTimeout = 50 * time.Millisecond
)

// Close releases the stream when a pipeline stops early (a satisfied
// LIMIT). An active fallback operator is closed in place of the — then
// already dead — remote stream. Otherwise Close first attempts a bounded
// drain so the trailer's storage-side stats are flushed into the scan
// stats instead of silently dropped, then accounts bytes received but
// not consumed, keeping the movement meters truthful.
func (s *streamSource) Close() error {
	defer s.span.End()
	if s.fb != nil {
		fb := s.fb
		s.fb = nil
		if c, ok := fb.(interface{ Close() error }); ok {
			return c.Close()
		}
		return nil
	}
	if !s.done {
		s.done = true
		if s.rs.TryDrain(closeDrainChunks, closeDrainTimeout) {
			s.stats.AddStorageWork(s.rs.Stats())
			s.span.Event("drained-on-close", "")
		}
		s.accountBytes()
		return s.rs.Close()
	}
	return nil
}

// rawSource is the no-pushdown path: full object transfer, local scan.
func (c *Connector) rawSource(ctx context.Context, h *Handle, split engine.Split, stats *engine.ScanStats) (exec.Operator, error) {
	start := time.Now()
	getCtx, sp := telemetry.StartSpan(ctx, "connector.raw_get")
	sp.SetAttr("object", split.Object)
	data, work, err := c.client.Get(getCtx, h.Table.Bucket, split.Object)
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("ocs: get %s/%s: %w", h.Table.Bucket, split.Object, err)
	}
	stats.AddTransfer(time.Since(start))
	stats.AddBytesMoved(int64(len(data)))
	stats.AddStorageWork(work)

	reader, err := parquetlite.NewReader(data) // vet-cache:allow raw path runs engine-side, no node footer cache in reach
	if err != nil {
		return nil, err
	}
	cols := h.Projection
	if cols == nil {
		cols = make([]int, h.Table.Columns.Len())
		for i := range cols {
			cols[i] = i
		}
	}
	scanSchema := h.baseScanSchema()
	rg := 0
	return exec.NewFuncSource(scanSchema, func() (*column.Page, error) {
		if rg >= len(reader.Meta().RowGroups) {
			return nil, nil
		}
		page, err := reader.ReadRowGroup(rg, cols) // vet-pruning:allow raw path pushes no predicate to prune with
		rg++
		if err != nil {
			return nil, err
		}
		stats.AddDeserialize(float64(page.NumRows())*float64(len(cols))*1.5, int64(page.NumRows()))
		return page, nil
	}), nil
}

// fallbackSource is the graceful-degradation path: pushdown execution
// failed after retries, so the connector replays the pushed operators
// locally over a whole-object GET. The degradation is recorded in the
// scan stats so the overhead breakdown still adds up.
func (c *Connector) fallbackSource(ctx context.Context, h *Handle, split engine.Split, stats *engine.ScanStats, skipRows int64) (exec.Operator, error) {
	return c.localReplaySource(ctx, h, split, stats, skipRows, "connector.fallback_scan", true)
}

// adaptiveRawSource serves a split the adaptive policy priced off the
// pushdown path at schedule time: same local replay, but not a failure —
// no fallback is recorded.
func (c *Connector) adaptiveRawSource(ctx context.Context, h *Handle, split engine.Split, stats *engine.ScanStats) (exec.Operator, error) {
	return c.localReplaySource(ctx, h, split, stats, 0, "connector.adaptive_raw_scan", false)
}

// adaptiveReplaySource resumes a split mid-stream after an adaptive
// flip, skipping the rows the abandoned stream already delivered.
func (c *Connector) adaptiveReplaySource(ctx context.Context, h *Handle, split engine.Split, stats *engine.ScanStats, skipRows int64) (exec.Operator, error) {
	return c.localReplaySource(ctx, h, split, stats, skipRows, "connector.adaptive_raw_scan", false)
}

// localReplaySource is the shared raw-with-pushdown path: the connector
// fetches the whole object (the GET path is served even when a node's
// computational unit is down) and replays the pushed operators locally
// with the storage node's own compiler (ocsserver.ExecuteLocalStream),
// producing bit-identical pages. The replay streams — the residual plan
// pulls pages as the local scan produces them, the same overlap the raw
// no-pushdown path gets, instead of materializing the whole split before
// the first page. skipRows drops rows a dead or abandoned stream already
// delivered; callers only pass a nonzero skip when the pushed pipeline
// is order-deterministic. The full object counts as bytes moved, and the
// local replay's CPU is charged as compute-side deserialize work;
// markFallback additionally records the split as a pushdown failure.
func (c *Connector) localReplaySource(ctx context.Context, h *Handle, split engine.Split, stats *engine.ScanStats, skipRows int64, spanName string, markFallback bool) (exec.Operator, error) {
	start := time.Now()
	ctx, sp := telemetry.StartSpan(ctx, spanName)
	defer sp.End()
	sp.SetAttr("object", split.Object)
	data, work, err := c.client.Get(ctx, h.Table.Bucket, split.Object)
	if err != nil {
		return nil, fmt.Errorf("ocs: fallback get %s/%s: %w", h.Table.Bucket, split.Object, err)
	}
	stats.AddTransfer(time.Since(start))
	stats.AddBytesMoved(int64(len(data)))
	stats.AddStorageWork(work)
	if markFallback {
		stats.AddFallback()
	}

	irPlan, err := BuildSubstrait(h, split.Object)
	if err != nil {
		return nil, err
	}
	local := objstore.NewStore()
	local.Put(h.Table.Bucket, split.Object, data)
	ls, err := ocsserver.ExecuteLocalStream(local, irPlan, 0)
	if err != nil {
		return nil, fmt.Errorf("ocs: fallback scan %s/%s: %w", h.Table.Bucket, split.Object, err)
	}
	return &replayStream{
		schema: h.ScanSchema(), ls: ls, conn: c, h: h,
		stats: stats, skipRows: skipRows, object: split.Object,
	}, nil
}

// replayStream adapts a lazily-drained local execution to the page-source
// contract: per-page skip accounting for mid-stream resume, schema
// normalization, and the end-of-stream bookkeeping the eager path did up
// front — replay CPU charged as compute-side work and the split's full
// output fed to the policy as a selectivity observation (only on a
// complete drain; an abandoned replay has not seen the whole split).
type replayStream struct {
	schema   *types.Schema
	ls       *ocsserver.LocalStream
	conn     *Connector
	h        *Handle
	stats    *engine.ScanStats
	object   string
	skipRows int64
	rows     int64
	finished bool
}

func (r *replayStream) Schema() *types.Schema { return r.schema }

func (r *replayStream) Next() (*column.Page, error) {
	for {
		page, err := r.ls.Next()
		if err != nil {
			r.finish(false)
			return nil, fmt.Errorf("ocs: fallback scan %s: %w", r.object, err)
		}
		if page == nil {
			r.finish(true)
			return nil, nil
		}
		rows := int64(page.NumRows())
		r.rows += rows
		if r.skipRows >= rows {
			r.skipRows -= rows
			continue
		}
		if r.skipRows > 0 {
			page = page.Slice(int(r.skipRows), page.NumRows())
			r.skipRows = 0
		}
		if page.NumCols() != r.schema.Len() {
			r.finish(false)
			return nil, fmt.Errorf("ocs: fallback result has %d columns, scan schema %s", page.NumCols(), r.schema)
		}
		r.stats.AddDeserialize(0, int64(page.NumRows()))
		return &column.Page{Schema: r.schema, Vectors: page.Vectors}, nil
	}
}

// Close releases the local execution when the pipeline stops early.
func (r *replayStream) Close() error {
	r.finish(false)
	return nil
}

func (r *replayStream) finish(complete bool) {
	if r.finished {
		return
	}
	r.finished = true
	r.ls.Close()
	// The replay ran on engine cores, not in storage: charge its CPU as
	// compute-side work.
	r.stats.AddDeserialize(r.ls.Work().CPUUnits, 0)
	if complete {
		r.conn.policy.ObserveSplit(r.h, r.rows)
	}
}

// BuildSubstrait reconstructs the handle's pushdown spec as a Substrait
// plan over one object — the connector's SQL→Substrait translation
// (§3.4 step 3). Exported for the overhead breakdown benchmark.
func BuildSubstrait(h *Handle, object string) (*substrait.Plan, error) {
	var rel substrait.Rel = &substrait.ReadRel{
		Bucket:     h.Table.Bucket,
		Object:     object,
		BaseSchema: h.Table.Columns,
		Projection: h.Projection,
	}
	p := h.Push
	if p.Filter != nil {
		rel = &substrait.FilterRel{Input: rel, Condition: p.Filter}
	}
	if p.Bloom != nil {
		// Above the filter (preserving the filter-on-read pruning fusion)
		// and below any column narrowing, so the key ordinal is still in
		// projected-base-schema space.
		rel = &substrait.BloomFilterRel{
			Input:   rel,
			Column:  bloomBaseColumn(h),
			NumHash: p.Bloom.Filter.NumHash(),
			Bits:    p.Bloom.Filter.Bits(),
		}
	}
	if p.OutputCols != nil && p.Project == nil && p.Agg == nil {
		// Drop columns only the pushed filter needed: a plain column
		// projection executed in-storage after the filter.
		scanSchema := h.baseScanSchema()
		exprs := make([]expr.Expr, len(p.OutputCols))
		names := make([]string, len(p.OutputCols))
		for i, c := range p.OutputCols {
			col := scanSchema.Columns[c]
			exprs[i] = expr.Col(c, col.Name, col.Type)
			names[i] = col.Name
		}
		rel = &substrait.ProjectRel{Input: rel, Expressions: exprs, Names: names}
	}
	if p.Project != nil {
		rel = &substrait.ProjectRel{Input: rel, Expressions: p.Project.Expressions, Names: p.Project.Names}
	}
	if p.Agg != nil {
		rel = &substrait.AggregateRel{Input: rel, GroupKeys: p.Agg.Keys, Measures: p.Agg.Measures}
	}
	if p.FinalProject != nil {
		rel = &substrait.ProjectRel{Input: rel, Expressions: p.FinalProject.Expressions, Names: p.FinalProject.Names}
	}
	if p.TopN != nil {
		keys := make([]substrait.SortKey, len(p.TopN.Keys))
		for i, k := range p.TopN.Keys {
			keys[i] = substrait.SortKey{Column: k.Column, Descending: k.Descending}
		}
		rel = &substrait.FetchRel{
			Input: &substrait.SortRel{Input: rel, Keys: keys},
			Count: p.TopN.Count,
		}
	}
	if p.Limit > 0 {
		rel = &substrait.FetchRel{Input: rel, Count: p.Limit}
	}
	return substrait.NewPlan(rel), nil
}

// bloomBaseColumn maps the bloom key ordinal (scan output schema) down
// to the pipeline position the BloomFilterRel occupies, below any
// OutputCols narrowing. WithJoinBloom declines schema-rebuilding
// pushdowns, so OutputCols is the only mapping in play.
func bloomBaseColumn(h *Handle) int {
	col := h.Push.Bloom.Column
	if h.Push.OutputCols != nil && h.Push.Project == nil && h.Push.Agg == nil {
		return h.Push.OutputCols[col]
	}
	return col
}
