package ocs

import (
	"fmt"

	"prestocs/internal/engine"
	"prestocs/internal/expr"
	"prestocs/internal/plan"
)

// SplitsWithStats implements engine.SplitSource: split generation with
// zone-map pruning. When the handle carries a pushed-down filter and the
// metastore recorded per-object column statistics, objects whose stats
// prove the filter false are dropped before they are ever scheduled —
// the first of the three pruning levels (split, row group, chunk page
// all share the same expr range analysis). Missing statistics — an
// object without an entry, a column without stats, or a filter column
// outside the projected schema — always keep the split.
func (c *Connector) SplitsWithStats(handle plan.TableHandle, stats *engine.ScanStats) ([]engine.Split, error) {
	h, ok := handle.(*Handle)
	if !ok {
		return nil, fmt.Errorf("ocs: foreign handle %T", handle)
	}
	if h.Push == nil || h.Push.Filter == nil || len(h.Table.ObjectStats) == 0 {
		return c.Splits(handle)
	}
	ranges := expr.AnalyzeRanges(h.Push.Filter)
	if !ranges.Constrained() {
		return c.Splits(handle)
	}
	var splits []engine.Split
	var pruned int64
	for i, obj := range h.Table.Objects {
		if objectMayMatch(h, obj, ranges) {
			splits = append(splits, engine.Split{Object: obj, Index: i})
			continue
		}
		pruned++
	}
	if pruned > 0 && stats != nil {
		stats.AddSplitsPruned(pruned)
	}
	return splits, nil
}

// objectMayMatch tests one object's column statistics against the
// filter's range analysis; any gap in the statistics keeps the object.
// Filter ordinals refer to the projected base scan schema, whose column
// names key the per-object stats.
func objectMayMatch(h *Handle, obj string, ranges expr.Ranges) bool {
	if ranges.Never {
		return false
	}
	base := h.baseScanSchema()
	objStats, ok := h.Table.ObjectStats[obj]
	if !ok {
		return true
	}
	for col, cr := range ranges.Cols {
		if col < 0 || col >= base.Len() {
			continue
		}
		cs, ok := objStats[base.Columns[col].Name]
		if !ok || cs.NumValues == 0 {
			// Stats absent or written without value counts: keep.
			continue
		}
		hasNull := cs.NullCount > 0
		hasNonNull := cs.NumValues > cs.NullCount
		if !cr.MayMatch(cs.Min, cs.Max, hasNull, hasNonNull) {
			return false
		}
	}
	return true
}
