package cache

import (
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"prestocs/internal/column"
	"prestocs/internal/metastore"
	"prestocs/internal/parquetlite"
	"prestocs/internal/telemetry"
	"prestocs/internal/types"
)

func TestByteLRUEvictsColdEnd(t *testing.T) {
	var evicted []string
	c := newByteLRU(30, func(key string, _ int64) { evicted = append(evicted, key) })
	c.put("a", 1, 10)
	c.put("b", 2, 10)
	c.put("c", 3, 10)
	// Touch "a" so "b" is the cold end, then push it out.
	if _, ok := c.get("a"); !ok {
		t.Fatal("a missing")
	}
	c.put("d", 4, 10)
	if len(evicted) != 1 || evicted[0] != "b" {
		t.Fatalf("evicted = %v, want [b]", evicted)
	}
	if _, ok := c.get("a"); !ok {
		t.Error("recently used entry evicted")
	}
	if c.bytes() != 30 || c.entries() != 3 {
		t.Errorf("bytes=%d entries=%d, want 30/3", c.bytes(), c.entries())
	}
}

func TestByteLRURejectsOversized(t *testing.T) {
	c := newByteLRU(10, nil)
	c.put("small", 1, 5)
	if ok := c.put("huge", 2, 11); ok {
		t.Fatal("value larger than the whole budget was admitted")
	}
	if _, ok := c.get("small"); !ok {
		t.Error("oversized put flushed an existing entry")
	}
}

func TestByteLRUUpdateResizes(t *testing.T) {
	c := newByteLRU(100, nil)
	c.put("k", 1, 40)
	c.put("k", 2, 60)
	if c.bytes() != 60 || c.entries() != 1 {
		t.Fatalf("bytes=%d entries=%d after update, want 60/1", c.bytes(), c.entries())
	}
	if v, _ := c.get("k"); v.(int) != 2 {
		t.Fatalf("get after update = %v, want 2", v)
	}
}

func TestByteLRUInvalidatePrefixAndPurge(t *testing.T) {
	c := newByteLRU(100, nil)
	c.put("b/o@1#0:0", 1, 10)
	c.put("b/o@1#0:1", 2, 10)
	c.put("b/o@2#0:0", 3, 10)
	c.put("b/other@1#0:0", 4, 10)
	c.invalidatePrefix("b/o@")
	if c.entries() != 1 {
		t.Fatalf("entries after prefix invalidation = %d, want 1", c.entries())
	}
	if _, ok := c.get("b/other@1#0:0"); !ok {
		t.Error("unrelated object dropped by prefix invalidation")
	}
	c.purge()
	if c.entries() != 0 || c.bytes() != 0 {
		t.Errorf("purge left entries=%d bytes=%d", c.entries(), c.bytes())
	}
}

func TestSingleflightCoalesces(t *testing.T) {
	var f flight
	var calls atomic.Int64
	release := make(chan struct{})
	var started, wg sync.WaitGroup
	const n = 16
	results := make([]int, n)
	for i := 0; i < n; i++ {
		started.Add(1)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			started.Done()
			v, _, err := f.do("k", func() (any, error) {
				calls.Add(1)
				<-release
				return 42, nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = v.(int)
		}(i)
	}
	// Let the callers pile onto the in-flight execution, then release the
	// leader. A caller scheduled after the leader finished runs fn itself
	// (and returns immediately, release being closed), so a straggler or
	// two is tolerated — what the test rules out is N independent runs.
	started.Wait()
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()
	if got := calls.Load(); got > 2 {
		t.Errorf("fn ran %d times for %d concurrent callers", got, n)
	}
	for i, v := range results {
		if v != 42 {
			t.Fatalf("caller %d got %d", i, v)
		}
	}
}

// fakeSource is a TableSource with instrumented call counts.
type fakeSource struct {
	mu       sync.Mutex
	tables   map[string]*metastore.Table
	versions map[string]uint64
	gets     atomic.Int64
}

func newFakeSource() *fakeSource {
	return &fakeSource{tables: map[string]*metastore.Table{}, versions: map[string]uint64{}}
}

func (s *fakeSource) register(t *metastore.Table) {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := strings.ToLower(t.Schema + "." + t.Name)
	s.versions[key]++
	s.tables[key] = t
}

func (s *fakeSource) Get(schema, name string) (*metastore.Table, error) {
	s.gets.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tables[strings.ToLower(schema+"."+name)]
	if !ok {
		return nil, fmt.Errorf("no such table %s.%s", schema, name)
	}
	return t, nil
}

func (s *fakeSource) Version(schema, name string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.versions[strings.ToLower(schema+"."+name)]
}

func testTable(name string, rows int64) *metastore.Table {
	return &metastore.Table{
		Schema:   "s",
		Name:     name,
		Columns:  types.NewSchema(types.Column{Name: "x", Type: types.Int64}),
		Bucket:   "b",
		Objects:  []string{"o"},
		RowCount: rows,
	}
}

func TestTableCacheHitMissInvalidate(t *testing.T) {
	src := newFakeSource()
	src.register(testTable("t", 1))
	reg := telemetry.NewRegistry()
	c := NewTableCache(src, 8)
	c.Instrument(reg, "catalog", "test")

	for i := 0; i < 3; i++ {
		tbl, err := c.Get("s", "t")
		if err != nil {
			t.Fatal(err)
		}
		if tbl.RowCount != 1 {
			t.Fatalf("RowCount = %d", tbl.RowCount)
		}
	}
	if got := src.gets.Load(); got != 1 {
		t.Fatalf("source Gets = %d after 3 cached reads, want 1", got)
	}
	if h := reg.CounterValue(telemetry.MetricMetaCacheHits, "catalog", "test"); h != 2 {
		t.Errorf("hits counter = %d, want 2", h)
	}

	// Re-registration bumps the version: next Get must see the new table.
	src.register(testTable("t", 2))
	tbl, err := c.Get("s", "t")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.RowCount != 2 {
		t.Fatalf("RowCount after re-registration = %d, want 2", tbl.RowCount)
	}
	if inv := reg.CounterValue(telemetry.MetricMetaCacheInvalidations, "catalog", "test"); inv != 1 {
		t.Errorf("invalidations counter = %d, want 1", inv)
	}
	if ratio := reg.GaugeValue(telemetry.MetricMetaCacheHitRatio, "catalog", "test"); ratio != 50 {
		t.Errorf("hit ratio = %d%%, want 50%% (2 hits / 2 misses)", ratio)
	}
}

func TestTableCachePassthroughWhenDisabled(t *testing.T) {
	src := newFakeSource()
	src.register(testTable("t", 1))
	c := NewTableCache(src, 0)
	for i := 0; i < 3; i++ {
		if _, err := c.Get("s", "t"); err != nil {
			t.Fatal(err)
		}
	}
	if got := src.gets.Load(); got != 3 {
		t.Fatalf("disabled cache intercepted reads: source Gets = %d, want 3", got)
	}
	if c.Len() != 0 {
		t.Errorf("disabled cache stored %d entries", c.Len())
	}
}

func TestTableCacheEntryBound(t *testing.T) {
	src := newFakeSource()
	for i := 0; i < 5; i++ {
		src.register(testTable(fmt.Sprintf("t%d", i), int64(i)))
	}
	c := NewTableCache(src, 3)
	for i := 0; i < 5; i++ {
		if _, err := c.Get("s", fmt.Sprintf("t%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 3 {
		t.Fatalf("cache holds %d entries past the bound of 3", c.Len())
	}
	// t0 and t1 were evicted; reading t0 again must hit the source.
	before := src.gets.Load()
	if _, err := c.Get("s", "t0"); err != nil {
		t.Fatal(err)
	}
	if src.gets.Load() != before+1 {
		t.Error("evicted entry served from cache")
	}
}

func TestTableCacheErrorNotCached(t *testing.T) {
	src := newFakeSource()
	c := NewTableCache(src, 8)
	if _, err := c.Get("s", "missing"); err == nil {
		t.Fatal("expected lookup error")
	}
	src.register(testTable("missing", 7))
	tbl, err := c.Get("s", "missing")
	if err != nil {
		t.Fatalf("error was cached: %v", err)
	}
	if tbl.RowCount != 7 {
		t.Fatalf("RowCount = %d", tbl.RowCount)
	}
}

func testImage(t *testing.T, rows int) []byte {
	t.Helper()
	schema := types.NewSchema(
		types.Column{Name: "id", Type: types.Int64},
		types.Column{Name: "v", Type: types.Float64},
	)
	page := column.NewPage(schema)
	for i := 0; i < rows; i++ {
		page.AppendRow(types.IntValue(int64(i)), types.FloatValue(float64(i)*0.5))
	}
	img, err := parquetlite.WritePages(schema, parquetlite.WriterOptions{RowGroupSize: 8}, page)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestFooterCacheServesDecodedMeta(t *testing.T) {
	img := testImage(t, 64)
	reg := telemetry.NewRegistry()
	f := NewFooterCache(1 << 20)
	f.Instrument(reg, "node", "n0")

	r1, err := f.Open("b/o@1", img)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := f.Open("b/o@1", img)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Meta() != r2.Meta() {
		t.Error("second open decoded a fresh footer instead of sharing the cached one")
	}
	if h := reg.CounterValue(telemetry.MetricFooterCacheHits, "node", "n0"); h != 1 {
		t.Errorf("hits = %d, want 1", h)
	}
	if m := reg.CounterValue(telemetry.MetricFooterCacheMisses, "node", "n0"); m != 1 {
		t.Errorf("misses = %d, want 1", m)
	}
	if b := reg.GaugeValue(telemetry.MetricFooterCacheBytes, "node", "n0"); b <= 0 {
		t.Errorf("bytes gauge = %d, want > 0", b)
	}

	// A different version key is a separate entry — no stale sharing.
	r3, err := f.Open("b/o@2", img)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Meta() == r1.Meta() {
		t.Error("different version keys shared one footer")
	}

	// Nil cache falls through to plain decoding.
	var nilF *FooterCache
	if _, err := nilF.Open("b/o@1", img); err != nil {
		t.Fatal(err)
	}
}

func intVector(n int) *column.Vector {
	v := column.NewVector(types.Int64)
	for i := 0; i < n; i++ {
		v.Append(types.IntValue(int64(i)))
	}
	return v
}

func TestPageCacheTwoTouchAdmission(t *testing.T) {
	reg := telemetry.NewRegistry()
	p := NewPageCache(1 << 20)
	p.Instrument(reg, "node", "n0")
	vec := intVector(16)

	// First sighting under two-touch: rejected into the ghost list.
	p.Put("k1", vec, true)
	if _, ok := p.Get("k1"); ok {
		t.Fatal("chunk admitted on first touch despite twoTouch")
	}
	if rej := reg.CounterValue(telemetry.MetricPageCacheRejected, "node", "n0"); rej != 1 {
		t.Errorf("rejected = %d, want 1", rej)
	}
	// Second sighting: admitted.
	p.Put("k1", vec, true)
	if _, ok := p.Get("k1"); !ok {
		t.Fatal("chunk not admitted on second touch")
	}
	// Without twoTouch admission is immediate.
	p.Put("k2", vec, false)
	if _, ok := p.Get("k2"); !ok {
		t.Fatal("chunk not admitted without twoTouch")
	}
	if p.Entries() != 2 {
		t.Errorf("entries = %d, want 2", p.Entries())
	}
	if p.Bytes() <= 0 {
		t.Error("bytes accounting missing")
	}

	// Nil cache is a no-op.
	var nilP *PageCache
	nilP.Put("k", vec, false)
	if _, ok := nilP.Get("k"); ok {
		t.Error("nil cache returned a value")
	}
}

func TestStorageFlushAndInvalidate(t *testing.T) {
	img := testImage(t, 64)
	s := NewStorage(1<<20, 1<<20)
	s.Instrument(telemetry.NewRegistry(), "node", "n0")
	if _, err := s.Footer().Open(ObjectKey("b", "o", 1), img); err != nil {
		t.Fatal(err)
	}
	s.Pages().Put(PageKey(ObjectKey("b", "o", 1), 0, 0), intVector(8), false)
	s.Pages().Put(PageKey(ObjectKey("b", "other", 1), 0, 0), intVector(8), false)

	s.InvalidateObject("b", "o")
	if _, ok := s.Pages().Get(PageKey(ObjectKey("b", "o", 1), 0, 0)); ok {
		t.Error("invalidated object still cached")
	}
	if _, ok := s.Pages().Get(PageKey(ObjectKey("b", "other", 1), 0, 0)); !ok {
		t.Error("invalidation dropped an unrelated object")
	}

	s.Flush()
	if s.Pages().Entries() != 0 || s.Footer().lru.entries() != 0 {
		t.Error("flush left entries behind")
	}

	// Nil bundle: every accessor and method is a no-op.
	var nilS *Storage
	nilS.Flush()
	nilS.InvalidateObject("b", "o")
	if nilS.Footer() != nil || nilS.Pages() != nil {
		t.Error("nil bundle returned non-nil levels")
	}
	if r, err := nilS.Footer().Open("k", img); err != nil || r == nil {
		t.Errorf("nil footer cache open: r=%v err=%v", r, err)
	}
}

// TestMetricNamesInManifest is the satellite-6 gate: every metric the
// cache tier registers must be declared in telemetry/names.go, so the
// /metrics surface stays discoverable from one file.
func TestMetricNamesInManifest(t *testing.T) {
	src, err := os.ReadFile("../telemetry/names.go")
	if err != nil {
		t.Fatal(err)
	}
	manifest := string(src)
	for _, name := range MetricNames() {
		if !strings.Contains(manifest, `"`+name+`"`) {
			t.Errorf("metric %q is registered by the cache tier but not declared in telemetry/names.go", name)
		}
	}
}

func TestKeySchemes(t *testing.T) {
	k := ObjectKey("b", "o", 3)
	if k != "b/o@3" {
		t.Errorf("ObjectKey = %q", k)
	}
	if got := PageKey(k, 2, 5); got != "b/o@3#2:5" {
		t.Errorf("PageKey = %q", got)
	}
	if !strings.HasPrefix(k, objectPrefix("b", "o")) {
		t.Error("objectPrefix does not cover ObjectKey")
	}
}
