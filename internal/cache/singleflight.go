package cache

import "sync"

// flight coalesces concurrent loads of the same key into one execution:
// the first caller runs fn, everyone else arriving before it finishes
// blocks and shares the result. This keeps N simultaneous queries for the
// same cold table or footer from triggering N identical decodes.
type flight struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	val  any
	err  error
}

// do runs fn once per key at a time. shared reports whether the result
// was produced by another caller's in-flight execution.
func (f *flight) do(key string, fn func() (any, error)) (val any, shared bool, err error) {
	f.mu.Lock()
	if f.calls == nil {
		f.calls = make(map[string]*flightCall)
	}
	if c, ok := f.calls[key]; ok {
		f.mu.Unlock()
		<-c.done
		return c.val, true, c.err
	}
	c := &flightCall{done: make(chan struct{})}
	f.calls[key] = c
	f.mu.Unlock()

	c.val, c.err = fn()

	f.mu.Lock()
	delete(f.calls, key)
	f.mu.Unlock()
	close(c.done)
	return c.val, false, c.err
}
