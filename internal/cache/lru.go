package cache

import (
	"container/list"
	"strings"
	"sync"
)

// byteLRU is a thread-safe LRU map bounded by a byte budget rather than
// an entry count, so one cache instance can hold values of very different
// sizes (a 2 KiB footer next to a 1 MiB column chunk) without tuning.
type byteLRU struct {
	mu     sync.Mutex
	budget int64
	used   int64
	ll     *list.List               // front = most recently used
	items  map[string]*list.Element // element value is *lruEntry
	// onEvict observes capacity evictions (not explicit invalidations);
	// it is called outside the cache lock.
	onEvict func(key string, size int64)
}

type lruEntry struct {
	key  string
	val  any
	size int64
}

func newByteLRU(budget int64, onEvict func(key string, size int64)) *byteLRU {
	return &byteLRU{
		budget:  budget,
		ll:      list.New(),
		items:   make(map[string]*list.Element),
		onEvict: onEvict,
	}
}

// get returns the cached value and refreshes its recency.
func (c *byteLRU) get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// put inserts or refreshes an entry, evicting from the cold end until the
// budget holds. A value larger than the entire budget is rejected instead
// of flushing the whole cache for one entry.
func (c *byteLRU) put(key string, val any, size int64) bool {
	if size > c.budget {
		return false
	}
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*lruEntry)
		c.used += size - e.size
		e.val, e.size = val, size
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: val, size: size})
		c.used += size
	}
	var evicted []*lruEntry
	for c.used > c.budget {
		el := c.ll.Back()
		e := el.Value.(*lruEntry)
		c.ll.Remove(el)
		delete(c.items, e.key)
		c.used -= e.size
		evicted = append(evicted, e)
	}
	c.mu.Unlock()
	if c.onEvict != nil {
		for _, e := range evicted {
			c.onEvict(e.key, e.size)
		}
	}
	return true
}

// invalidate drops one entry if present.
func (c *byteLRU) invalidate(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.used -= el.Value.(*lruEntry).size
		c.ll.Remove(el)
		delete(c.items, key)
	}
}

// invalidatePrefix drops every entry whose key starts with prefix (used
// to release all versions of one object early; version-embedded keys
// already guarantee stale entries can never be hit).
func (c *byteLRU) invalidatePrefix(prefix string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for key, el := range c.items {
		if strings.HasPrefix(key, prefix) {
			c.used -= el.Value.(*lruEntry).size
			c.ll.Remove(el)
			delete(c.items, key)
		}
	}
}

// purge drops every entry (no onEvict callbacks; this is an explicit
// flush, not capacity pressure).
func (c *byteLRU) purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[string]*list.Element)
	c.used = 0
}

// bytes reports the current budget usage.
func (c *byteLRU) bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// entries reports the current entry count.
func (c *byteLRU) entries() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}
