package cache

import (
	"container/list"
	"strings"
	"sync"
	"sync/atomic"

	"prestocs/internal/metastore"
	"prestocs/internal/telemetry"
)

// TableSource is what the metadata cache fronts: the metastore's lookup
// plus its per-table version counter. Version must be cheap (a map read)
// — the cache calls it on every hit to detect staleness.
type TableSource interface {
	Get(schema, name string) (*metastore.Table, error)
	Version(schema, name string) uint64
}

// TableCache caches table definitions — schema, object layout, column
// and per-object statistics, everything hanging off *metastore.Table —
// behind versioned invalidation. A cached entry carries the version it
// was read at; a hit re-validates with one Version call, and a bumped
// version drops the entry and reloads through singleflight so N
// concurrent queries for the same table trigger one source round trip.
type TableCache struct {
	src TableSource
	max int // entry bound; <= 0 disables caching (pure passthrough)

	mu    sync.Mutex
	ll    *list.List               // front = most recently used
	items map[string]*list.Element // element value is *tableEntry

	sf flight

	// Local hit/miss tallies feed the hit-ratio gauge; the telemetry
	// instruments are bound by Instrument (before the first Get) and are
	// nil-safe no-ops until then.
	nHits, nMisses              atomic.Int64
	hits, misses, invalidations *telemetry.Counter
	hitRatio                    *telemetry.Gauge
}

type tableEntry struct {
	key     string
	table   *metastore.Table
	version uint64
}

// NewTableCache builds a cache over src holding at most maxEntries
// tables; maxEntries <= 0 disables caching but keeps the call shape.
func NewTableCache(src TableSource, maxEntries int) *TableCache {
	return &TableCache{
		src:   src,
		max:   maxEntries,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
}

// Instrument binds the cache's telemetry instruments. Call once, before
// the cache serves queries. Labels are alternating key, value pairs
// (e.g. "catalog", "ocs").
func (c *TableCache) Instrument(reg *telemetry.Registry, labels ...string) {
	if c == nil {
		return
	}
	c.hits = reg.Counter(telemetry.MetricMetaCacheHits, labels...)
	c.misses = reg.Counter(telemetry.MetricMetaCacheMisses, labels...)
	c.invalidations = reg.Counter(telemetry.MetricMetaCacheInvalidations, labels...)
	c.hitRatio = reg.Gauge(telemetry.MetricMetaCacheHitRatio, labels...)
}

// Get returns the table, serving from cache when the metastore version
// still matches the version the entry was read at.
func (c *TableCache) Get(schema, name string) (*metastore.Table, error) {
	if c.max <= 0 {
		return c.src.Get(schema, name)
	}
	key := strings.ToLower(schema + "." + name)
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*tableEntry)
		if c.src.Version(schema, name) == e.version {
			c.ll.MoveToFront(el)
			c.mu.Unlock()
			c.hit()
			return e.table, nil
		}
		// Stale: the table was re-registered (or dropped) since this entry
		// was read. Drop it and fall through to a coalesced reload.
		c.ll.Remove(el)
		delete(c.items, key)
		c.invalidations.Inc()
	}
	c.mu.Unlock()
	c.miss()
	v, _, err := c.sf.do(key, func() (any, error) {
		// Read the version BEFORE the table: if a re-registration lands
		// between the two reads, the entry pairs the new table with the old
		// version and self-invalidates on the next access. The reverse
		// order could pair a stale table with the current version — an
		// entry that would validate forever.
		ver := c.src.Version(schema, name)
		t, err := c.src.Get(schema, name)
		if err != nil {
			return nil, err
		}
		c.store(key, t, ver)
		return t, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*metastore.Table), nil
}

// pinnedSource is the optional source capability behind GetPinned: an
// atomic read-and-pin of the (table, version) pair. The metastore
// implements it.
type pinnedSource interface {
	GetPinned(schema, name string) (*metastore.Table, *metastore.Pin, error)
}

// GetPinned returns the table together with a snapshot pin taken
// atomically at the version of the returned instance, so compaction
// cannot physically delete objects the caller's scan still references.
// The cached read runs first (warming the cache and keeping hit/miss
// accounting identical to Get); the pinned instance then comes from the
// source in one atomic step — a cached pointer cannot be paired with a
// pin taken at a different version. Sources without pin support fall
// back to a plain Get with a nil pin.
func (c *TableCache) GetPinned(schema, name string) (*metastore.Table, *metastore.Pin, error) {
	ps, ok := c.src.(pinnedSource)
	if !ok {
		t, err := c.Get(schema, name)
		return t, nil, err
	}
	if c.max > 0 {
		if _, err := c.Get(schema, name); err != nil {
			return nil, nil, err
		}
	}
	t, pin, err := ps.GetPinned(schema, name)
	if err != nil {
		return nil, nil, err
	}
	if c.max > 0 {
		c.store(strings.ToLower(schema+"."+name), t, pin.Version())
	}
	return t, pin, nil
}

// store inserts or refreshes an entry, evicting the least recently used
// table past the entry bound.
func (c *TableCache) store(key string, t *metastore.Table, ver uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*tableEntry)
		e.table, e.version = t, ver
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&tableEntry{key: key, table: t, version: ver})
	for len(c.items) > c.max {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.items, el.Value.(*tableEntry).key)
	}
}

// Len reports the cached entry count.
func (c *TableCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

func (c *TableCache) hit() {
	c.hits.Inc()
	c.nHits.Add(1)
	c.updateRatio()
}

func (c *TableCache) miss() {
	c.misses.Inc()
	c.nMisses.Add(1)
	c.updateRatio()
}

func (c *TableCache) updateRatio() {
	h, m := c.nHits.Load(), c.nMisses.Load()
	if h+m > 0 {
		c.hitRatio.Set(h * 100 / (h + m))
	}
}
