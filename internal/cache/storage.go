package cache

import (
	"container/list"
	"sync"
	"sync/atomic"

	"prestocs/internal/column"
	"prestocs/internal/parquetlite"
	"prestocs/internal/telemetry"
)

// FooterCache holds decoded parquetlite footers (*FileMeta) keyed by
// object version, so repeated scans of a hot object prune and project
// straight from the cached metadata instead of re-decoding the footer.
// Decodes for the same cold key are coalesced through singleflight.
type FooterCache struct {
	lru *byteLRU
	sf  flight

	nHits, nMisses          atomic.Int64
	hits, misses, evictions *telemetry.Counter
	bytesG, hitRatio        *telemetry.Gauge
}

// NewFooterCache builds a footer cache with the given byte budget;
// budget <= 0 returns nil (methods on a nil cache fall through to plain
// decoding).
func NewFooterCache(budget int64) *FooterCache {
	if budget <= 0 {
		return nil
	}
	f := &FooterCache{}
	f.lru = newByteLRU(budget, func(string, int64) { f.evictions.Inc() })
	return f
}

// Instrument binds the footer cache's telemetry instruments; call before
// the cache serves queries.
func (f *FooterCache) Instrument(reg *telemetry.Registry, labels ...string) {
	if f == nil {
		return
	}
	f.hits = reg.Counter(telemetry.MetricFooterCacheHits, labels...)
	f.misses = reg.Counter(telemetry.MetricFooterCacheMisses, labels...)
	f.evictions = reg.Counter(telemetry.MetricFooterCacheEvictions, labels...)
	f.bytesG = reg.Gauge(telemetry.MetricFooterCacheBytes, labels...)
	f.hitRatio = reg.Gauge(telemetry.MetricFooterCacheHitRatio, labels...)
}

// Open returns a reader over data, serving the decoded footer from cache
// when this object version was opened before. key must come from
// ObjectKey so it changes whenever the stored bytes change. Nil-safe: a
// nil cache decodes the footer from the image, exactly as before.
func (f *FooterCache) Open(key string, data []byte) (*parquetlite.Reader, error) {
	if f == nil {
		return parquetlite.NewReader(data)
	}
	if v, ok := f.lru.get(key); ok {
		f.hit()
		return parquetlite.NewReaderWithMeta(data, v.(*parquetlite.FileMeta))
	}
	f.miss()
	v, _, err := f.sf.do(key, func() (any, error) {
		r, err := parquetlite.NewReader(data)
		if err != nil {
			return nil, err
		}
		meta := r.Meta()
		f.lru.put(key, meta, footerSize(meta))
		f.bytesG.Set(f.lru.bytes())
		return meta, nil
	})
	if err != nil {
		return nil, err
	}
	return parquetlite.NewReaderWithMeta(data, v.(*parquetlite.FileMeta))
}

// footerSize estimates the in-memory footprint of a decoded footer: fixed
// schema overhead plus per-chunk metadata (offsets, sizes, min/max stats).
func footerSize(meta *parquetlite.FileMeta) int64 {
	n := int64(256)
	for _, rg := range meta.RowGroups {
		n += 32 + int64(len(rg.Chunks))*112
	}
	return n
}

func (f *FooterCache) hit() {
	f.hits.Inc()
	f.nHits.Add(1)
	updateRatio(f.hitRatio, &f.nHits, &f.nMisses)
}

func (f *FooterCache) miss() {
	f.misses.Inc()
	f.nMisses.Add(1)
	updateRatio(f.hitRatio, &f.nHits, &f.nMisses)
}

// pageGhostEntries bounds the two-touch ghost list: keys seen once but
// not yet admitted. Entries are just strings, so the bound is generous.
const pageGhostEntries = 8192

// PageCache holds decoded column chunks (*column.Vector) keyed by
// (object version, row group, column) under a byte budget. Cached
// vectors are shared read-only across queries — see the package comment
// for the immutability invariant that makes this sound.
//
// Admission is informed by zone-map selectivity: on pruning-heavy scans
// (callers pass twoTouch=true when at least half the row groups were
// pruned) a chunk is admitted only on its second sighting, tracked in a
// bounded ghost list, so chunks a selective workload never re-reads do
// not evict genuinely hot pages.
type PageCache struct {
	lru *byteLRU

	ghostMu sync.Mutex
	ghost   map[string]*list.Element
	ghostLL *list.List // FIFO of ghost keys, front = newest

	nHits, nMisses                    atomic.Int64
	hits, misses, evictions, rejected *telemetry.Counter
	bytesG, hitRatio                  *telemetry.Gauge
}

// NewPageCache builds a hot-page cache with the given byte budget;
// budget <= 0 returns nil (methods on a nil cache are no-ops).
func NewPageCache(budget int64) *PageCache {
	if budget <= 0 {
		return nil
	}
	p := &PageCache{
		ghost:   make(map[string]*list.Element),
		ghostLL: list.New(),
	}
	p.lru = newByteLRU(budget, func(string, int64) { p.evictions.Inc() })
	return p
}

// Instrument binds the page cache's telemetry instruments; call before
// the cache serves queries.
func (p *PageCache) Instrument(reg *telemetry.Registry, labels ...string) {
	if p == nil {
		return
	}
	p.hits = reg.Counter(telemetry.MetricPageCacheHits, labels...)
	p.misses = reg.Counter(telemetry.MetricPageCacheMisses, labels...)
	p.evictions = reg.Counter(telemetry.MetricPageCacheEvictions, labels...)
	p.rejected = reg.Counter(telemetry.MetricPageCacheRejected, labels...)
	p.bytesG = reg.Gauge(telemetry.MetricPageCacheBytes, labels...)
	p.hitRatio = reg.Gauge(telemetry.MetricPageCacheHitRatio, labels...)
}

// Get returns the cached chunk for key, counting the lookup. Nil-safe.
func (p *PageCache) Get(key string) (*column.Vector, bool) {
	if p == nil {
		return nil, false
	}
	v, ok := p.lru.get(key)
	if !ok {
		p.miss()
		return nil, false
	}
	p.hit()
	return v.(*column.Vector), true
}

// Put caches one decoded chunk. With twoTouch set (pruning-heavy scan),
// the chunk is admitted only if its key is already in the ghost list —
// i.e. this is at least the second time the workload decoded it.
// Nil-safe.
func (p *PageCache) Put(key string, vec *column.Vector, twoTouch bool) {
	if p == nil {
		return
	}
	if twoTouch && !p.secondTouch(key) {
		p.rejected.Inc()
		return
	}
	p.lru.put(key, vec, vec.ByteSize()+int64(len(key)))
	p.bytesG.Set(p.lru.bytes())
}

// secondTouch reports whether key was seen before, recording it when not.
func (p *PageCache) secondTouch(key string) bool {
	p.ghostMu.Lock()
	defer p.ghostMu.Unlock()
	if el, ok := p.ghost[key]; ok {
		p.ghostLL.Remove(el)
		delete(p.ghost, key)
		return true
	}
	p.ghost[key] = p.ghostLL.PushFront(key)
	for p.ghostLL.Len() > pageGhostEntries {
		el := p.ghostLL.Back()
		p.ghostLL.Remove(el)
		delete(p.ghost, el.Value.(string))
	}
	return false
}

// Bytes reports the current budget usage (0 on nil).
func (p *PageCache) Bytes() int64 {
	if p == nil {
		return 0
	}
	return p.lru.bytes()
}

// Entries reports the cached chunk count (0 on nil).
func (p *PageCache) Entries() int {
	if p == nil {
		return 0
	}
	return p.lru.entries()
}

func (p *PageCache) hit() {
	p.hits.Inc()
	p.nHits.Add(1)
	updateRatio(p.hitRatio, &p.nHits, &p.nMisses)
}

func (p *PageCache) miss() {
	p.misses.Inc()
	p.nMisses.Add(1)
	updateRatio(p.hitRatio, &p.nHits, &p.nMisses)
}

func updateRatio(g *telemetry.Gauge, hits, misses *atomic.Int64) {
	h, m := hits.Load(), misses.Load()
	if h+m > 0 {
		g.Set(h * 100 / (h + m))
	}
}

// Storage bundles the two storage-node cache levels. A nil *Storage (or
// a nil level inside one) behaves exactly like the uncached system.
type Storage struct {
	footer *FooterCache
	pages  *PageCache
}

// NewStorage builds the storage-node cache bundle; a zero or negative
// budget disables that level.
func NewStorage(footerBytes, pageBytes int64) *Storage {
	return &Storage{footer: NewFooterCache(footerBytes), pages: NewPageCache(pageBytes)}
}

// Footer returns the footer level (nil on a nil bundle).
func (s *Storage) Footer() *FooterCache {
	if s == nil {
		return nil
	}
	return s.footer
}

// Pages returns the hot-page level (nil on a nil bundle).
func (s *Storage) Pages() *PageCache {
	if s == nil {
		return nil
	}
	return s.pages
}

// Instrument binds both levels' telemetry instruments; call before the
// node serves queries.
func (s *Storage) Instrument(reg *telemetry.Registry, labels ...string) {
	if s == nil {
		return
	}
	s.footer.Instrument(reg, labels...)
	s.pages.Instrument(reg, labels...)
}

// Flush empties both levels and the admission ghost list; lifetime
// hit/miss counters are preserved. The harness flushes node caches
// before each measured experiment cell so paper-figure reproductions
// keep their cold-scan semantics.
func (s *Storage) Flush() {
	if s == nil {
		return
	}
	if s.footer != nil {
		s.footer.lru.purge()
		s.footer.bytesG.Set(0)
	}
	if s.pages != nil {
		s.pages.lru.purge()
		s.pages.ghostMu.Lock()
		s.pages.ghost = make(map[string]*list.Element)
		s.pages.ghostLL.Init()
		s.pages.ghostMu.Unlock()
		s.pages.bytesG.Set(0)
	}
}

// InvalidateObject drops every cached footer and page of every version
// of one object. Version-embedded keys already guarantee a re-put object
// never hits stale entries; invalidation just releases the budget early
// instead of waiting for LRU aging.
func (s *Storage) InvalidateObject(bucket, object string) {
	if s == nil {
		return
	}
	prefix := objectPrefix(bucket, object)
	if s.footer != nil {
		s.footer.lru.invalidatePrefix(prefix)
		s.footer.bytesG.Set(s.footer.lru.bytes())
	}
	if s.pages != nil {
		s.pages.lru.invalidatePrefix(prefix)
		s.pages.bytesG.Set(s.pages.lru.bytes())
	}
}

// MetricNames lists every metric name the cache tier registers. The
// manifest test asserts each is declared in telemetry/names.go, keeping
// /metrics discoverable.
func MetricNames() []string {
	return []string{
		telemetry.MetricMetaCacheHits,
		telemetry.MetricMetaCacheMisses,
		telemetry.MetricMetaCacheInvalidations,
		telemetry.MetricMetaCacheHitRatio,
		telemetry.MetricFooterCacheHits,
		telemetry.MetricFooterCacheMisses,
		telemetry.MetricFooterCacheEvictions,
		telemetry.MetricFooterCacheBytes,
		telemetry.MetricFooterCacheHitRatio,
		telemetry.MetricPageCacheHits,
		telemetry.MetricPageCacheMisses,
		telemetry.MetricPageCacheEvictions,
		telemetry.MetricPageCacheBytes,
		telemetry.MetricPageCacheHitRatio,
		telemetry.MetricPageCacheRejected,
	}
}
