// Package cache implements the three-level caching tier (DESIGN.md §6)
// that sits between repeated queries and the metadata/decode work they
// would otherwise redo from scratch:
//
//   - TableCache: engine-side table metadata (definitions, schemas and
//     per-object ObjectStats) behind versioned invalidation — the
//     metastore bumps a table version on every registration change, so
//     staleness is one cheap version compare instead of a re-read.
//   - FooterCache: storage-node decoded parquetlite footers (FileMeta,
//     including the chunk statistics zone-map pruning consumes), keyed by
//     object version so compileRead prunes without re-decoding.
//   - PageCache: storage-node decoded column chunks keyed by
//     (object version, row group, column) with byte-budget LRU eviction
//     and two-touch admission on pruning-heavy scans.
//
// Shared-value safety: cached *metastore.Table, *parquetlite.FileMeta and
// *column.Vector values are immutable by convention — the exec operator
// library never mutates input vectors in place (filter, gather, slice and
// append all copy), and the metastore replaces table pointers wholesale —
// which is what makes handing the same cached value to concurrent queries
// sound.
//
// Every constructor accepts a zero/negative budget to mean "disabled",
// and every method is safe on a nil receiver, so call sites never branch
// on whether caching is on.
package cache

import "strconv"

// Default budgets, overridable via cmd/ocsd and cmd/prestolite flags.
const (
	// DefaultFooterCacheBytes bounds the per-node decoded-footer cache.
	DefaultFooterCacheBytes = 8 << 20
	// DefaultPageCacheBytes bounds the per-node decoded-chunk cache.
	DefaultPageCacheBytes = 64 << 20
	// DefaultTableCacheEntries bounds the per-connector metadata cache.
	DefaultTableCacheEntries = 1024
)

// ObjectKey names one version of one object: "bucket/object@generation".
// The generation comes from the object store and is bumped on every Put,
// so a re-put object can never hit a stale footer or page entry — keys for
// the old version simply stop being requested and age out of the LRU.
func ObjectKey(bucket, object string, version uint64) string {
	return bucket + "/" + object + "@" + strconv.FormatUint(version, 10)
}

// PageKey names one decoded column chunk of one object version.
func PageKey(objectKey string, rowGroup, col int) string {
	return objectKey + "#" + strconv.Itoa(rowGroup) + ":" + strconv.Itoa(col)
}

// objectPrefix covers every version of one object, for early invalidation.
func objectPrefix(bucket, object string) string {
	return bucket + "/" + object + "@"
}
