package arrowlite

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"

	"prestocs/internal/column"
	"prestocs/internal/types"
)

func allKindsSchema() *types.Schema {
	return types.NewSchema(
		types.Column{Name: "i", Type: types.Int64},
		types.Column{Name: "f", Type: types.Float64},
		types.Column{Name: "s", Type: types.String},
		types.Column{Name: "b", Type: types.Bool},
		types.Column{Name: "d", Type: types.Date},
	)
}

func samplePage() *column.Page {
	p := column.NewPage(allKindsSchema())
	p.AppendRow(types.IntValue(1), types.FloatValue(0.5), types.StringValue("alpha"), types.BoolValue(true), types.DateValue(100))
	p.AppendRow(types.IntValue(-2), types.FloatValue(-1.25), types.StringValue(""), types.BoolValue(false), types.DateValue(0))
	p.AppendRow(types.NullValue(types.Int64), types.NullValue(types.Float64), types.NullValue(types.String), types.NullValue(types.Bool), types.NullValue(types.Date))
	p.AppendRow(types.IntValue(9), types.FloatValue(9.75), types.StringValue("omega"), types.BoolValue(true), types.DateValue(20000))
	return p
}

func pagesEqual(t *testing.T, a, b *column.Page) {
	t.Helper()
	if a.NumRows() != b.NumRows() || a.NumCols() != b.NumCols() {
		t.Fatalf("dims mismatch: %dx%d vs %dx%d", a.NumRows(), a.NumCols(), b.NumRows(), b.NumCols())
	}
	for i := 0; i < a.NumRows(); i++ {
		ra, rb := a.Row(i), b.Row(i)
		for c := range ra {
			if !types.Equal(ra[c], rb[c]) {
				t.Errorf("row %d col %d: %v vs %v", i, c, ra[c], rb[c])
			}
		}
	}
}

func TestRoundTripSingleBatch(t *testing.T) {
	p := samplePage()
	data, err := Serialize(p.Schema, []*column.Page{p})
	if err != nil {
		t.Fatal(err)
	}
	schema, pages, err := Deserialize(data)
	if err != nil {
		t.Fatal(err)
	}
	if !schema.Equal(p.Schema) {
		t.Fatalf("schema mismatch: %v vs %v", schema, p.Schema)
	}
	if len(pages) != 1 {
		t.Fatalf("got %d pages", len(pages))
	}
	pagesEqual(t, p, pages[0])
}

func TestRoundTripMultipleBatches(t *testing.T) {
	p := samplePage()
	data, err := Serialize(p.Schema, []*column.Page{p, p, p})
	if err != nil {
		t.Fatal(err)
	}
	_, pages, err := Deserialize(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(pages) != 3 {
		t.Fatalf("got %d pages", len(pages))
	}
	for _, q := range pages {
		pagesEqual(t, p, q)
	}
}

func TestEmptyBatchAndEmptyStream(t *testing.T) {
	s := allKindsSchema()
	empty := column.NewPage(s)
	data, err := Serialize(s, []*column.Page{empty})
	if err != nil {
		t.Fatal(err)
	}
	_, pages, err := Deserialize(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(pages) != 1 || pages[0].NumRows() != 0 {
		t.Errorf("empty batch round trip wrong: %v", pages)
	}
	// Stream with no batches at all.
	data, err = Serialize(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	schema, pages, err := Deserialize(data)
	if err != nil || len(pages) != 0 || !schema.Equal(s) {
		t.Errorf("no-batch stream wrong: %v %v", pages, err)
	}
}

func TestStreamingReaderWriter(t *testing.T) {
	p := samplePage()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, p.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteBatch(p); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.BytesWritten() != int64(buf.Len()) {
		t.Errorf("BytesWritten = %d, buffer = %d", w.BytesWritten(), buf.Len())
	}
	// Double close is a no-op.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteBatch(p); err == nil {
		t.Error("write after close must fail")
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	pagesEqual(t, p, got)
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Error("Next after EOF must keep returning EOF")
	}
}

func TestSchemaArityMismatch(t *testing.T) {
	p := samplePage()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, types.NewSchema(types.Column{Name: "only", Type: types.Int64}))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteBatch(p); err == nil {
		t.Error("arity mismatch must fail")
	}
}

func TestCorruptStreams(t *testing.T) {
	p := samplePage()
	data, _ := Serialize(p.Schema, []*column.Page{p})

	if _, _, err := Deserialize([]byte("XXXX")); err == nil {
		t.Error("bad magic accepted")
	}
	if _, _, err := Deserialize(data[:3]); err == nil {
		t.Error("truncated magic accepted")
	}
	// Truncations at every boundary must error, not panic.
	for cut := 4; cut < len(data)-1; cut += 7 {
		if _, _, err := Deserialize(data[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	// Flip a byte inside the schema block.
	bad := append([]byte(nil), data...)
	bad[8] = 0xFF
	if _, _, err := Deserialize(bad); err == nil {
		t.Error("corrupt schema accepted")
	}
}

func TestUnsupportedKind(t *testing.T) {
	s := types.NewSchema(types.Column{Name: "u", Type: types.Unknown})
	if _, err := Serialize(s, nil); err == nil {
		t.Error("unknown kind accepted")
	}
}

// Property: random int/float/string pages round-trip exactly, including a
// random null pattern.
func TestQuickRoundTrip(t *testing.T) {
	schema := types.NewSchema(
		types.Column{Name: "a", Type: types.Int64},
		types.Column{Name: "b", Type: types.Float64},
		types.Column{Name: "c", Type: types.String},
	)
	f := func(ints []int64, floats []float64, strs []string, nullMask uint32) bool {
		n := len(ints)
		if len(floats) < n {
			n = len(floats)
		}
		if len(strs) < n {
			n = len(strs)
		}
		p := column.NewPage(schema)
		for i := 0; i < n; i++ {
			iv := types.IntValue(ints[i])
			fv := types.FloatValue(floats[i])
			sv := types.StringValue(strs[i])
			if nullMask>>(uint(i)%32)&1 == 1 {
				iv = types.NullValue(types.Int64)
			}
			p.AppendRow(iv, fv, sv)
		}
		data, err := Serialize(schema, []*column.Page{p})
		if err != nil {
			return false
		}
		_, pages, err := Deserialize(data)
		if err != nil || len(pages) != 1 || pages[0].NumRows() != n {
			return false
		}
		for i := 0; i < n; i++ {
			ra, rb := p.Row(i), pages[0].Row(i)
			for c := range ra {
				// NaN compares equal under types.Compare's total order.
				if !types.Equal(ra[c], rb[c]) {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 150}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
