// Package arrowlite implements an Apache Arrow-like columnar IPC stream:
// a schema message followed by record batches, each encoded as validity
// bitmaps plus typed little-endian value buffers (offsets + data for
// strings). OCS returns query results in this format and the Presto-OCS
// connector's PageSourceProvider deserializes it back into engine pages,
// mirroring the paper's Arrow result path.
//
// Stream layout:
//
//	magic "ARL1"
//	u32 schemaLen | schema message
//	repeated: u32 batchLen | batch message   (batchLen > 0)
//	u32 0  — end-of-stream marker
//
// All integers are little-endian. Validity bitmaps are LSB-first packed
// bits, 1 = valid (Arrow convention).
package arrowlite

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"prestocs/internal/column"
	"prestocs/internal/types"
)

// Magic identifies an arrowlite stream.
var Magic = []byte("ARL1")

// ErrCorrupt reports a malformed stream.
var ErrCorrupt = errors.New("arrowlite: corrupt stream")

// kindCode maps types.Kind to a stable on-wire code.
func kindCode(k types.Kind) (uint8, error) {
	switch k {
	case types.Int64:
		return 1, nil
	case types.Float64:
		return 2, nil
	case types.String:
		return 3, nil
	case types.Bool:
		return 4, nil
	case types.Date:
		return 5, nil
	default:
		return 0, fmt.Errorf("arrowlite: unsupported kind %v", k)
	}
}

func codeKind(c uint8) (types.Kind, error) {
	switch c {
	case 1:
		return types.Int64, nil
	case 2:
		return types.Float64, nil
	case 3:
		return types.String, nil
	case 4:
		return types.Bool, nil
	case 5:
		return types.Date, nil
	default:
		return types.Unknown, fmt.Errorf("arrowlite: unknown kind code %d", c)
	}
}

// Writer emits an arrowlite stream.
type Writer struct {
	w       io.Writer
	schema  *types.Schema
	closed  bool
	n       int64  // bytes written
	scratch []byte // reused batch-encode buffer
}

// NewWriter writes the magic and schema message and returns a batch writer.
func NewWriter(w io.Writer, schema *types.Schema) (*Writer, error) {
	aw := &Writer{w: w, schema: schema}
	if err := aw.writeRaw(Magic); err != nil {
		return nil, err
	}
	msg, err := encodeSchema(schema)
	if err != nil {
		return nil, err
	}
	if err := aw.writeBlock(msg); err != nil {
		return nil, err
	}
	return aw, nil
}

// BytesWritten returns the total bytes emitted so far.
func (w *Writer) BytesWritten() int64 { return w.n }

func (w *Writer) writeRaw(b []byte) error {
	n, err := w.w.Write(b)
	w.n += int64(n)
	return err
}

func (w *Writer) writeBlock(b []byte) error {
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(b)))
	if err := w.writeRaw(lenBuf[:]); err != nil {
		return err
	}
	return w.writeRaw(b)
}

// WriteBatch appends one record batch. The page's schema must match the
// writer's schema kinds.
func (w *Writer) WriteBatch(page *column.Page) error {
	if w.closed {
		return errors.New("arrowlite: write after Close")
	}
	if page.NumCols() != w.schema.Len() {
		return fmt.Errorf("arrowlite: batch has %d cols, schema has %d", page.NumCols(), w.schema.Len())
	}
	msg, err := AppendBatch(w.scratch[:0], page)
	if err != nil {
		return err
	}
	w.scratch = msg
	if len(msg) == 0 {
		// A zero block length is the end marker; pad empty batches so
		// they stay distinguishable. AppendBatch always emits the row
		// count, so this cannot happen, but guard anyway.
		return errors.New("arrowlite: empty batch message")
	}
	return w.writeBlock(msg)
}

// Close writes the end-of-stream marker.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	var z [4]byte
	return w.writeRaw(z[:])
}

func encodeSchema(s *types.Schema) ([]byte, error) {
	return AppendSchema(nil, s)
}

// AppendSchema appends an encoded schema message to dst and returns the
// extended slice. It is the allocation-free form of the schema encoder,
// usable with GetBuf for streaming one message per RPC chunk.
func AppendSchema(dst []byte, s *types.Schema) ([]byte, error) {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(s.Len()))
	for _, c := range s.Columns {
		code, err := kindCode(c.Type)
		if err != nil {
			return nil, err
		}
		dst = append(dst, code)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(c.Name)))
		dst = append(dst, c.Name...)
	}
	return dst, nil
}

// DecodeSchemaMsg decodes one schema message (the payload of the first
// stream chunk in the OCS result protocol).
func DecodeSchemaMsg(b []byte) (*types.Schema, error) {
	return decodeSchema(b)
}

func decodeSchema(b []byte) (*types.Schema, error) {
	if len(b) < 4 {
		return nil, ErrCorrupt
	}
	n := binary.LittleEndian.Uint32(b)
	b = b[4:]
	cols := make([]types.Column, 0, n)
	for i := uint32(0); i < n; i++ {
		if len(b) < 5 {
			return nil, ErrCorrupt
		}
		kind, err := codeKind(b[0])
		if err != nil {
			return nil, err
		}
		nameLen := binary.LittleEndian.Uint32(b[1:5])
		b = b[5:]
		if uint32(len(b)) < nameLen {
			return nil, ErrCorrupt
		}
		cols = append(cols, types.Column{Name: string(b[:nameLen]), Type: kind})
		b = b[nameLen:]
	}
	if len(b) != 0 {
		return nil, ErrCorrupt
	}
	return types.NewSchema(cols...), nil
}

// AppendBatch appends one encoded record batch message to dst and returns
// the extended slice. Bitmaps are packed directly into dst with no
// intermediate slices, so pairing this with GetBuf/PutBuf makes the
// per-chunk serialize path allocation-free in steady state.
func AppendBatch(dst []byte, page *column.Page) ([]byte, error) {
	n := page.NumRows()
	dst = binary.LittleEndian.AppendUint32(dst, uint32(n))
	for _, v := range page.Vectors {
		// Validity bitmap: 1 = valid, packed LSB-first straight into dst.
		bmLen := (n + 7) / 8
		dst = binary.LittleEndian.AppendUint32(dst, uint32(bmLen))
		base := len(dst)
		for i := 0; i < bmLen; i++ {
			dst = append(dst, 0)
		}
		for i := 0; i < n; i++ {
			if !v.IsNull(i) {
				dst[base+i/8] |= 1 << (uint(i) % 8)
			}
		}

		switch v.Kind {
		case types.Int64, types.Date:
			for _, x := range v.Ints {
				dst = binary.LittleEndian.AppendUint64(dst, uint64(x))
			}
		case types.Float64:
			for _, x := range v.Floats {
				dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(x))
			}
		case types.Bool:
			bb := (len(v.Bools) + 7) / 8
			base := len(dst)
			for i := 0; i < bb; i++ {
				dst = append(dst, 0)
			}
			for i, b := range v.Bools {
				if b {
					dst[base+i/8] |= 1 << (uint(i) % 8)
				}
			}
		case types.String:
			// Offsets (n+1 x u32) then concatenated bytes.
			off := uint32(0)
			dst = binary.LittleEndian.AppendUint32(dst, off)
			for _, s := range v.Strings {
				off += uint32(len(s))
				dst = binary.LittleEndian.AppendUint32(dst, off)
			}
			for _, s := range v.Strings {
				dst = append(dst, s...)
			}
		default:
			return nil, fmt.Errorf("arrowlite: unsupported vector kind %v", v.Kind)
		}
	}
	return dst, nil
}

// DecodeBatchMsg decodes one record batch message against a known schema.
// It is safe to call on a pooled or otherwise reused buffer: every value
// (including strings) is copied out of b.
func DecodeBatchMsg(b []byte, schema *types.Schema) (*column.Page, error) {
	return decodeBatch(b, schema)
}

func decodeBatch(b []byte, schema *types.Schema) (*column.Page, error) {
	if len(b) < 4 {
		return nil, ErrCorrupt
	}
	n := int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	page := column.NewPage(schema)
	for ci, col := range schema.Columns {
		if len(b) < 4 {
			return nil, ErrCorrupt
		}
		bmLen := int(binary.LittleEndian.Uint32(b))
		b = b[4:]
		if len(b) < bmLen || bmLen < (n+7)/8 {
			return nil, ErrCorrupt
		}
		// Read validity bits in place instead of unpacking to a []bool.
		bm := b[:bmLen]
		valid := func(i int) bool { return bm[i/8]&(1<<(uint(i)%8)) != 0 }
		b = b[bmLen:]
		vec := page.Vectors[ci]
		switch col.Type {
		case types.Int64, types.Date:
			if len(b) < 8*n {
				return nil, ErrCorrupt
			}
			for i := 0; i < n; i++ {
				x := int64(binary.LittleEndian.Uint64(b[8*i:]))
				appendMaybeNull(vec, valid(i), types.Value{Kind: col.Type, I: x})
			}
			b = b[8*n:]
		case types.Float64:
			if len(b) < 8*n {
				return nil, ErrCorrupt
			}
			for i := 0; i < n; i++ {
				x := math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
				appendMaybeNull(vec, valid(i), types.FloatValue(x))
			}
			b = b[8*n:]
		case types.Bool:
			bb := (n + 7) / 8
			if len(b) < bb {
				return nil, ErrCorrupt
			}
			vals := b[:bb]
			for i := 0; i < n; i++ {
				x := vals[i/8]&(1<<(uint(i)%8)) != 0
				appendMaybeNull(vec, valid(i), types.BoolValue(x))
			}
			b = b[bb:]
		case types.String:
			// Offsets (n+1 x u32) read on the fly, no materialized slice.
			need := 4 * (n + 1)
			if len(b) < need {
				return nil, ErrCorrupt
			}
			offs := b[:need]
			b = b[need:]
			total := int(binary.LittleEndian.Uint32(offs[4*n:]))
			if len(b) < total {
				return nil, ErrCorrupt
			}
			data := b[:total]
			b = b[total:]
			prev := binary.LittleEndian.Uint32(offs)
			for i := 0; i < n; i++ {
				cur := binary.LittleEndian.Uint32(offs[4*(i+1):])
				if prev > cur || int(cur) > total {
					return nil, ErrCorrupt
				}
				s := string(data[prev:cur])
				appendMaybeNull(vec, valid(i), types.StringValue(s))
				prev = cur
			}
		default:
			return nil, fmt.Errorf("arrowlite: unsupported kind %v", col.Type)
		}
	}
	if len(b) != 0 {
		return nil, ErrCorrupt
	}
	return page, nil
}

func appendMaybeNull(vec *column.Vector, valid bool, v types.Value) {
	if !valid {
		vec.Append(types.NullValue(vec.Kind))
		return
	}
	vec.Append(v)
}

// Reader consumes an arrowlite stream.
type Reader struct {
	r      io.Reader
	schema *types.Schema
	done   bool
	n      int64
}

// NewReader validates the magic and reads the schema message.
func NewReader(r io.Reader) (*Reader, error) {
	ar := &Reader{r: r}
	magic := make([]byte, len(Magic))
	if err := ar.readFull(magic); err != nil {
		return nil, fmt.Errorf("arrowlite: reading magic: %w", err)
	}
	if string(magic) != string(Magic) {
		return nil, ErrCorrupt
	}
	block, err := ar.readBlock()
	if err != nil {
		return nil, err
	}
	if block == nil {
		return nil, ErrCorrupt // end marker in place of schema
	}
	schema, err := decodeSchema(block)
	if err != nil {
		return nil, err
	}
	ar.schema = schema
	return ar, nil
}

// Schema returns the stream schema.
func (r *Reader) Schema() *types.Schema { return r.schema }

// BytesRead returns the total bytes consumed so far.
func (r *Reader) BytesRead() int64 { return r.n }

func (r *Reader) readFull(b []byte) error {
	n, err := io.ReadFull(r.r, b)
	r.n += int64(n)
	return err
}

// readBlock returns nil, nil at the end-of-stream marker.
func (r *Reader) readBlock() ([]byte, error) {
	var lenBuf [4]byte
	if err := r.readFull(lenBuf[:]); err != nil {
		return nil, fmt.Errorf("arrowlite: reading block length: %w", err)
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n == 0 {
		return nil, nil
	}
	block := make([]byte, n)
	if err := r.readFull(block); err != nil {
		return nil, fmt.Errorf("arrowlite: reading block body: %w", err)
	}
	return block, nil
}

// Next returns the next record batch, or io.EOF after the end marker.
func (r *Reader) Next() (*column.Page, error) {
	if r.done {
		return nil, io.EOF
	}
	block, err := r.readBlock()
	if err != nil {
		return nil, err
	}
	if block == nil {
		r.done = true
		return nil, io.EOF
	}
	return decodeBatch(block, r.schema)
}

// Serialize encodes pages into a single in-memory stream.
func Serialize(schema *types.Schema, pages []*column.Page) ([]byte, error) {
	var buf sliceWriter
	w, err := NewWriter(&buf, schema)
	if err != nil {
		return nil, err
	}
	for _, p := range pages {
		if err := w.WriteBatch(p); err != nil {
			return nil, err
		}
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return buf, nil
}

// Deserialize decodes a full stream into its schema and pages.
func Deserialize(data []byte) (*types.Schema, []*column.Page, error) {
	r, err := NewReader(&byteReader{data: data})
	if err != nil {
		return nil, nil, err
	}
	var pages []*column.Page
	for {
		p, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, err
		}
		pages = append(pages, p)
	}
	return r.Schema(), pages, nil
}

type sliceWriter []byte

func (w *sliceWriter) Write(p []byte) (int, error) {
	*w = append(*w, p...)
	return len(p), nil
}

type byteReader struct {
	data []byte
	pos  int
}

func (r *byteReader) Read(p []byte) (int, error) {
	if r.pos >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.pos:])
	r.pos += n
	return n, nil
}
