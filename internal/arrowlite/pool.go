package arrowlite

import "sync"

// maxPooledCap bounds what goes back into the pool so a single huge
// result does not pin memory for the life of the process.
const maxPooledCap = 1 << 22

var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// GetBuf returns a pooled byte buffer with length 0. Callers append into
// it and hand it back with PutBuf once the contents are no longer
// referenced anywhere (the RPC layer copies payloads onto the wire, so
// returning after a send is safe).
func GetBuf() *[]byte {
	return bufPool.Get().(*[]byte)
}

// PutBuf recycles a buffer obtained from GetBuf. Oversized buffers are
// dropped instead of pooled.
func PutBuf(b *[]byte) {
	if b == nil || cap(*b) > maxPooledCap {
		return
	}
	*b = (*b)[:0]
	bufPool.Put(b)
}
