package arrowlite

import (
	"testing"

	"prestocs/internal/column"
	"prestocs/internal/types"
)

func benchBatch(rows int) (*types.Schema, *column.Page) {
	schema := types.NewSchema(
		types.Column{Name: "a", Type: types.Int64},
		types.Column{Name: "b", Type: types.Float64},
		types.Column{Name: "s", Type: types.String},
	)
	p := column.NewPage(schema)
	for i := 0; i < rows; i++ {
		p.AppendRow(
			types.IntValue(int64(i)),
			types.FloatValue(float64(i)/3),
			types.StringValue("value"),
		)
	}
	return schema, p
}

func BenchmarkSerialize(b *testing.B) {
	schema, page := benchBatch(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := Serialize(schema, []*column.Page{page})
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(data)))
	}
}

func BenchmarkDeserialize(b *testing.B) {
	schema, page := benchBatch(10000)
	data, _ := Serialize(schema, []*column.Page{page})
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Deserialize(data); err != nil {
			b.Fatal(err)
		}
	}
}
