package harness

import (
	"strings"
	"testing"
	"time"

	"prestocs/internal/compress"
	ocsconn "prestocs/internal/connector/ocs"
	"prestocs/internal/engine"
	"prestocs/internal/telemetry"
)

// collectTrace merges the spans of one trace across every component
// tracer — exactly what /debug/traces does in a real deployment.
func collectTrace(c *Cluster, id telemetry.TraceID) []telemetry.SpanView {
	var all []telemetry.SpanView
	for _, tr := range c.Tracers {
		all = append(all, tr.TraceSpans(id)...)
	}
	return all
}

// TestQueryProducesConnectedTrace is the tentpole acceptance test: one
// query through the full in-process cluster (engine, rpc client, OCS
// frontend, storage nodes, scan pool) yields a single connected trace,
// the engine stage spans account for the query wall time, and the root
// span's Table-3 stage totals equal ScanStats exactly.
func TestQueryProducesConnectedTrace(t *testing.T) {
	c, err := StartClusterWith(2, Config{Telemetry: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	d := smallLaghos(t, compress.None)
	if err := c.Load(d); err != nil {
		t.Fatal(err)
	}
	session := engine.NewSession().Set(ocsconn.SessionPushdown, "all")
	cell, err := c.Run("trace", d.Query, session)
	if err != nil {
		t.Fatal(err)
	}
	if cell.Stats.TraceID == 0 {
		t.Fatal("query stats carry no trace ID")
	}

	spans := collectTrace(c, cell.Stats.TraceID)
	byID := map[telemetry.SpanID]telemetry.SpanView{}
	for _, v := range spans {
		byID[v.ID] = v
	}
	var root telemetry.SpanView
	roots := 0
	for _, v := range spans {
		if v.Parent == 0 {
			root = v
			roots++
			continue
		}
		if _, ok := byID[v.Parent]; !ok {
			t.Errorf("span %q (component-recorded) has unknown parent %d: trace is disconnected", v.Name, v.Parent)
		}
	}
	if roots != 1 || root.Name != "query" {
		t.Fatalf("trace has %d roots (root=%q), want exactly one %q span", roots, root.Name, "query")
	}

	// Every layer must contribute: the Table-3 stages on the engine side,
	// the transport, the frontend and the storage-node scan pool.
	names := map[string]int{}
	for _, v := range spans {
		names[v.Name]++
	}
	for _, want := range []string{
		"engine.parse_analyze", "engine.global_opt", "engine.connector_opt",
		"engine.execution", "connector.scan", "connector.substrait_gen",
		"connector.stream_open", "rpc.stream ocs.Execute",
		"rpc.server ocs.Execute", "frontend.forward", "node.execute",
		"scan.rowgroup",
	} {
		if names[want] == 0 {
			t.Errorf("trace missing %q span; got %v", want, names)
		}
	}
	if names["connector.scan"] != cell.Stats.Splits {
		t.Errorf("connector.scan spans = %d, want one per split (%d)",
			names["connector.scan"], cell.Stats.Splits)
	}

	// The engine stage spans are sequential children of the root; their
	// sum must account for the query wall time within 5%.
	var stages time.Duration
	for _, v := range spans {
		if v.Parent == root.ID && strings.HasPrefix(v.Name, "engine.") {
			stages += v.Duration()
		}
	}
	wall := root.Duration()
	if gap := wall - stages; gap < 0 || gap > wall/20+time.Millisecond {
		t.Errorf("stage spans sum to %v of %v wall (gap %v), want within 5%%", stages, wall, wall-stages)
	}

	// Table-3 exact match: the root span carries the same stage totals
	// the harness breakdown reads from ScanStats — not a re-measurement.
	scan := cell.Stats.Scan.Snapshot()
	if got := root.Durations["substrait_gen"]; got != scan.SubstraitGen {
		t.Errorf("root substrait_gen = %v, ScanStats = %v; must match exactly", got, scan.SubstraitGen)
	}
	if got := root.Durations["transfer"]; got != scan.Transfer {
		t.Errorf("root transfer = %v, ScanStats = %v; must match exactly", got, scan.Transfer)
	}
	if got := root.Attrs["bytes_moved"]; got == "" {
		t.Error("root span missing bytes_moved attribute")
	}

	// The shared registry saw the same query from every layer.
	reg := c.Metrics
	if got := reg.CounterValue(telemetry.MetricQueryTotal); got != 1 {
		t.Errorf("engine_queries_total = %d, want 1", got)
	}
	if got := reg.CounterValue(telemetry.MetricQueryBytesMoved); got != scan.BytesMoved {
		t.Errorf("engine_query_bytes_moved_total = %d, ScanStats = %d", got, scan.BytesMoved)
	}
	if got := reg.CounterValue(telemetry.MetricMonitorQueries); got != 1 {
		t.Errorf("ocs_monitor_queries_total = %d, want 1", got)
	}
	if reg.CounterValue(telemetry.MetricScanPoolRowGroups) == 0 {
		t.Error("scan pool recorded no row groups")
	}
	if reg.HistogramCount(telemetry.MetricRPCClientLatency, "method", "ocs.Execute") == 0 {
		t.Error("rpc client latency histogram empty for ocs.Execute")
	}
	// Scan-pool gauges are deltas shared across queries: after the query
	// finishes both must be back to zero.
	if got := reg.GaugeValue(telemetry.MetricScanPoolActive); got != 0 {
		t.Errorf("scan pool active workers = %d after query, want 0", got)
	}
	if got := reg.GaugeValue(telemetry.MetricScanPoolQueued); got != 0 {
		t.Errorf("scan pool queued groups = %d after query, want 0", got)
	}

	// The registry renders for /metrics with the query series present.
	if out := reg.Render(); !strings.Contains(out, telemetry.MetricQueryTotal) {
		t.Error("registry render missing engine_queries_total")
	}
}

// TestTelemetryOffByDefault: the plain StartCluster path records nothing
// and carries no trace IDs, so existing callers see zero change.
func TestTelemetryOffByDefault(t *testing.T) {
	c := testCluster(t)
	d := smallLaghos(t, compress.None)
	if err := c.Load(d); err != nil {
		t.Fatal(err)
	}
	cell, err := c.Run("plain", d.Query, engine.NewSession().Set(ocsconn.SessionPushdown, "all"))
	if err != nil {
		t.Fatal(err)
	}
	if cell.Stats.TraceID != 0 {
		t.Errorf("trace ID = %d without telemetry, want 0", cell.Stats.TraceID)
	}
	if c.Metrics != nil || c.Tracers != nil {
		t.Error("telemetry objects allocated without Config.Telemetry")
	}
}
