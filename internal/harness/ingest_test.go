package harness

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	ocsconn "prestocs/internal/connector/ocs"
	"prestocs/internal/engine"
	"prestocs/internal/ingest"
	"prestocs/internal/parquetlite"
	"prestocs/internal/telemetry"
	"prestocs/internal/types"
	"prestocs/internal/workload"
)

// sqlLit renders one typed value as a SQL literal that parses back to
// the identical value: floats via strconv's shortest round-trip form,
// dates as DATE literals, strings with quote doubling.
func sqlLit(v types.Value) string {
	if v.Null {
		return "NULL"
	}
	switch v.Kind {
	case types.String:
		return "'" + strings.ReplaceAll(v.S, "'", "''") + "'"
	case types.Date:
		return "DATE '" + v.String() + "'"
	default:
		return v.String()
	}
}

// datasetRows decodes every row of a generated dataset, in object order.
// The dataset acts purely as a row source here — nothing is pre-loaded.
func datasetRows(t testing.TB, d *workload.Dataset) [][]types.Value {
	t.Helper()
	all := make([]int, d.Table.Columns.Len())
	for i := range all {
		all[i] = i
	}
	var rows [][]types.Value
	for _, key := range d.Table.Objects {
		r, err := parquetlite.NewReader(d.Objects[key])
		if err != nil {
			t.Fatal(err)
		}
		pages, err := r.ReadAll(all)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pages {
			for i := 0; i < p.NumRows(); i++ {
				rows = append(rows, p.Row(i))
			}
		}
	}
	return rows
}

// insertSQL builds one multi-tuple INSERT statement.
func insertSQL(table string, rows [][]types.Value) string {
	var sb strings.Builder
	sb.WriteString("INSERT INTO ")
	sb.WriteString(table)
	sb.WriteString(" VALUES ")
	for i, row := range rows {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteByte('(')
		for j, v := range row {
			if j > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(sqlLit(v))
		}
		sb.WriteByte(')')
	}
	return sb.String()
}

// ingestSpec shapes an ingest-path table after a generated dataset,
// without registering the dataset's own objects. DisjointKeys are
// dropped: ingest-order objects make no disjointness promise.
func ingestSpec(d *workload.Dataset) ingest.TableSpec {
	return ingest.TableSpec{
		Schema:  CatalogOCS,
		Name:    d.Table.Name,
		Bucket:  d.Table.Bucket,
		Columns: d.Table.Columns,
		Codec:   d.Table.Codec,
	}
}

// ingestDatasetSQL pushes every dataset row through engine.Ingest as
// INSERT statements, batch tuples at a time — the full write path:
// parse, constant folding, coercion, ingest buffer, object seal,
// storage put, metastore commit.
func ingestDatasetSQL(t testing.TB, c *Cluster, d *workload.Dataset, batch int) {
	t.Helper()
	rows := datasetRows(t, d)
	var total int64
	for at := 0; at < len(rows); at += batch {
		end := at + batch
		if end > len(rows) {
			end = len(rows)
		}
		res, err := c.Engine.Ingest(context.Background(), insertSQL(d.Table.Name, rows[at:end]))
		if err != nil {
			t.Fatalf("ingest %s rows [%d,%d): %v", d.Table.Name, at, end, err)
		}
		total += res.Rows
	}
	if total != int64(len(rows)) {
		t.Fatalf("ingested %d of %d rows", total, len(rows))
	}
}

// scanPinnedHandle reads every row the handle's pinned snapshot
// references, raw off storage, as a sorted row multiset. The handle's
// object list is the snapshot: objects compacted away after the pin was
// taken must still be readable.
func scanPinnedHandle(t *testing.T, c *Cluster, h *ocsconn.Handle) []string {
	t.Helper()
	var out []string
	var stats engine.ScanStats
	for i, key := range h.Table.Objects {
		src, err := c.OCSConn.CreatePageSourceDecided(context.Background(), h,
			engine.Split{Object: key, Index: i}, engine.SplitDecision{}, &stats)
		if err != nil {
			t.Fatalf("open pinned split %s: %v", key, err)
		}
		for {
			page, err := src.Next()
			if err != nil {
				t.Fatalf("pinned scan %s: %v", key, err)
			}
			if page == nil {
				break
			}
			for r := 0; r < page.NumRows(); r++ {
				s := ""
				for _, v := range page.Row(r) {
					s += v.String() + "|"
				}
				out = append(out, s)
			}
		}
	}
	sort.Strings(out)
	return out
}

// TestIngestQ3EndToEndWithConcurrentCompaction is the PR's acceptance
// test: both Q3 tables are built entirely through the ingest path — SQL
// INSERT statements through engine.Ingest, no datagen pre-load — and the
// Q3-shaped join, with split pruning and the metadata caches active and
// a compactor racing the queries, returns exactly the row-at-a-time
// reference answer before, during and after compaction.
func TestIngestQ3EndToEndWithConcurrentCompaction(t *testing.T) {
	c, err := StartClusterWith(1, Config{Telemetry: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	line, ords := q3Datasets(t)
	want := q3Reference(t, line, ords)

	ing := c.NewIngester(ingest.Options{})
	for _, d := range []*workload.Dataset{line, ords} {
		if err := ing.CreateTable(ingestSpec(d)); err != nil {
			t.Fatal(err)
		}
		ingestDatasetSQL(t, c, d, 128)
	}
	// Each INSERT statement sealed one object: plenty of small objects
	// for the compactor to chew on while queries run.
	tbl, err := c.Meta.Get(CatalogOCS, "lineitem")
	if err != nil {
		t.Fatal(err)
	}
	objectsBefore := len(tbl.Objects)
	if objectsBefore < 4 {
		t.Fatalf("ingest produced %d lineitem objects, want ≥ 4", objectsBefore)
	}

	runQ3 := func(label string) {
		t.Helper()
		res, err := c.Engine.Execute(context.Background(), workload.TPCHQ3Query, engine.NewSession())
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		assertRowsEqual(t, label, rowMultisetPage(res.Page), want)
	}
	runQ3("pre-compaction")

	// Race a compactor against repeated executions of the query. MaxMerge
	// 4 forces multiple merge rounds, so object-set swaps land while
	// queries are in flight; every answer must still be the reference.
	comp := c.NewCompactor(ingest.CompactorOptions{MaxMerge: 4, ClusterBy: "orderkey"})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, name := range []string{"lineitem", "orders"} {
				if _, err := comp.RunOnce(context.Background(), CatalogOCS, name); err != nil {
					t.Errorf("compaction: %v", err)
					return
				}
			}
		}
	}()
	for i := 0; i < 5; i++ {
		runQ3(fmt.Sprintf("during-compaction-%d", i))
	}
	close(stop)
	wg.Wait()

	// Drain remaining merges and tombstones, then verify steady state:
	// fewer live objects, the same answer, and nothing left to reap.
	for i := 0; i < 6; i++ {
		if _, err := comp.RunOnce(context.Background(), CatalogOCS, "lineitem"); err != nil {
			t.Fatal(err)
		}
		if _, err := comp.RunOnce(context.Background(), CatalogOCS, "orders"); err != nil {
			t.Fatal(err)
		}
	}
	runQ3("post-compaction")
	tbl, err = c.Meta.Get(CatalogOCS, "lineitem")
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Objects) >= objectsBefore {
		t.Errorf("compaction left %d objects, started with %d", len(tbl.Objects), objectsBefore)
	}
	if tbl.RowCount != int64(3*q3Config.Files*q3Config.RowsPerFile)/3 {
		t.Errorf("lineitem rows = %d, want %d", tbl.RowCount, q3Config.Files*q3Config.RowsPerFile)
	}
	if n := c.Meta.TombstoneCount(CatalogOCS, "lineitem"); n != 0 {
		t.Errorf("%d lineitem tombstones awaiting GC with no pins outstanding", n)
	}
	if c.Meta.PinnedCount() != 0 {
		t.Errorf("%d pins leaked", c.Meta.PinnedCount())
	}

	// The write path reported itself: rows ingested on both tables,
	// compaction runs recorded.
	wantRows := int64(2 * q3Config.Files * q3Config.RowsPerFile)
	gotRows := c.Metrics.CounterValue(telemetry.MetricIngestRows, "table", "lineitem") +
		c.Metrics.CounterValue(telemetry.MetricIngestRows, "table", "orders")
	if gotRows != wantRows {
		t.Errorf("%s = %v, want %v", telemetry.MetricIngestRows, gotRows, wantRows)
	}
	if n := c.Metrics.CounterValue(telemetry.MetricCompactMerged, "table", "lineitem"); n == 0 {
		t.Errorf("%s = 0, want > 0", telemetry.MetricCompactMerged)
	}
}

// TestSnapshotPinnedScanSurvivesIngestAndCompaction is the snapshot
// differential: a scan that resolves its handle before an
// ingest+compaction cycle must read byte-identical results afterwards —
// the pinned object set stays physically present until the pin releases,
// and only then does garbage collection reclaim it.
func TestSnapshotPinnedScanSurvivesIngestAndCompaction(t *testing.T) {
	c, err := StartCluster(1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	d, err := workload.TPCHOrders(workload.Config{Files: 2, RowsPerFile: 256, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ing := c.NewIngester(ingest.Options{FlushRows: 256})
	if err := ing.CreateTable(ingestSpec(d)); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := ing.Append(ctx, CatalogOCS, d.Table.Name, datasetRows(t, d)); err != nil {
		t.Fatal(err)
	}
	if err := ing.Flush(ctx, CatalogOCS, d.Table.Name); err != nil {
		t.Fatal(err)
	}

	// The long-running scan plans now: its handle pins this snapshot.
	th, err := c.OCSConn.TableHandle(CatalogOCS, d.Table.Name)
	if err != nil {
		t.Fatal(err)
	}
	pinned := th.(*ocsconn.Handle)
	pinnedObjects := append([]string(nil), pinned.Table.Objects...)
	before := scanPinnedHandle(t, c, pinned)
	if len(before) != 512 {
		t.Fatalf("pinned scan read %d rows", len(before))
	}

	// An ingest+compaction cycle races the scan: new rows arrive and the
	// compactor rewrites the object set the scan still references.
	var extra [][]types.Value
	for i := 0; i < 100; i++ {
		extra = append(extra, []types.Value{
			types.IntValue(int64(1_000_000 + i)),
			types.DateValue(9000 + int64(i)),
			types.StringValue("5-LOW"),
		})
	}
	if _, err := ing.Append(ctx, CatalogOCS, d.Table.Name, extra); err != nil {
		t.Fatal(err)
	}
	if err := ing.Flush(ctx, CatalogOCS, d.Table.Name); err != nil {
		t.Fatal(err)
	}
	comp := c.NewCompactor(ingest.CompactorOptions{ClusterBy: "orderkey"})
	res, err := comp.RunOnce(ctx, CatalogOCS, d.Table.Name)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Merged) < 2 {
		t.Fatalf("compaction merged %v", res.Merged)
	}
	// The pin defers every physical delete.
	if res.Reclaimed != 0 {
		t.Errorf("reclaimed %d objects under an active pin", res.Reclaimed)
	}
	if n := c.Meta.TombstoneCount(CatalogOCS, d.Table.Name); n == 0 {
		t.Error("no tombstones recorded for the compacted objects")
	}

	// Byte-identical: the pinned snapshot neither lost rows to the
	// rewrite nor gained the freshly ingested ones.
	after := scanPinnedHandle(t, c, pinned)
	assertRowsEqual(t, "pinned-snapshot", after, before)

	// A handle resolved now sees the post-mutation table.
	th2, err := c.OCSConn.TableHandle(CatalogOCS, d.Table.Name)
	if err != nil {
		t.Fatal(err)
	}
	fresh := th2.(*ocsconn.Handle)
	if got := scanPinnedHandle(t, c, fresh); len(got) != len(before)+100 {
		t.Errorf("fresh scan read %d rows, want %d", len(got), len(before)+100)
	}
	fresh.ReleaseSnapshot()

	// Scan done → pin released → the next compaction run reclaims, and
	// the tombstoned objects really leave storage.
	pinned.ReleaseSnapshot()
	pinned.ReleaseSnapshot() // release is idempotent
	res2, err := comp.RunOnce(ctx, CatalogOCS, d.Table.Name)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Reclaimed == 0 {
		t.Error("nothing reclaimed after the pin released")
	}
	gone := 0
	for _, key := range pinnedObjects {
		if _, _, err := c.OCSCli.Get(ctx, d.Table.Bucket, key); err != nil {
			gone++
		}
	}
	if gone == 0 {
		t.Error("every pre-compaction object still in storage after GC")
	}
}

// TestIngestKilledConnectionFault drives the ingest flush over a fault
// proxy. A connection killed mid-Put is absorbed by the client's retry —
// the flush still commits exactly once. A blackholed store fails the
// flush; put-then-commit ordering guarantees the catalog is untouched,
// and the ingester recovers once the network heals.
func TestIngestKilledConnectionFault(t *testing.T) {
	c, proxy := proxiedCluster(t, 1)
	d, err := workload.TPCHOrders(workload.Config{Files: 1, RowsPerFile: 128, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	ing := c.NewIngester(ingest.Options{FlushRows: 4096})
	if err := ing.CreateTable(ingestSpec(d)); err != nil {
		t.Fatal(err)
	}
	rows := datasetRows(t, d)
	ctx := context.Background()

	// Arm a one-shot kill that trips on the Put's ack: the connection
	// dies before the client learns the object landed, forcing a retry
	// of an already-applied (idempotent) write.
	proxy.KillOnce(1)
	if _, err := ing.Append(ctx, CatalogOCS, d.Table.Name, rows[:64]); err != nil {
		t.Fatal(err)
	}
	if err := ing.Flush(ctx, CatalogOCS, d.Table.Name); err != nil {
		t.Fatalf("flush with killed connection: %v", err)
	}
	if proxy.Killed() != 1 {
		t.Errorf("killed = %d", proxy.Killed())
	}
	tbl, _ := c.Meta.Get(CatalogOCS, d.Table.Name)
	if tbl.RowCount != 64 || len(tbl.Objects) != 1 {
		t.Errorf("after killed-connection flush: %d rows in %d objects", tbl.RowCount, len(tbl.Objects))
	}

	// Blackhole: the flush fails, and the catalog must not move — a
	// killed ingest leaves at worst an invisible orphan, never a table
	// version pointing at missing data.
	proxy.SetBlackhole(true)
	versionBefore := c.Meta.Version(CatalogOCS, d.Table.Name)
	if _, err := ing.Append(ctx, CatalogOCS, d.Table.Name, rows[64:96]); err != nil {
		t.Fatal(err)
	}
	deadCtx, cancel := context.WithTimeout(ctx, 300*time.Millisecond)
	if err := ing.Flush(deadCtx, CatalogOCS, d.Table.Name); err == nil {
		t.Fatal("flush through a blackhole succeeded")
	}
	cancel()
	proxy.SetBlackhole(false)
	if got := c.Meta.Version(CatalogOCS, d.Table.Name); got != versionBefore {
		t.Errorf("killed ingest moved the table version %d → %d", versionBefore, got)
	}
	tbl, _ = c.Meta.Get(CatalogOCS, d.Table.Name)
	if tbl.RowCount != 64 {
		t.Errorf("killed ingest changed row count to %d", tbl.RowCount)
	}

	// Healed: fresh appends work and the table stays consistent. The
	// blackholed batch was dropped with the error — rows 64:96 are gone
	// by contract, not silently resurrected.
	if _, err := ing.Append(ctx, CatalogOCS, d.Table.Name, rows[96:128]); err != nil {
		t.Fatal(err)
	}
	if err := ing.Flush(ctx, CatalogOCS, d.Table.Name); err != nil {
		t.Fatal(err)
	}
	tbl, _ = c.Meta.Get(CatalogOCS, d.Table.Name)
	if tbl.RowCount != 96 || len(tbl.Objects) != 2 {
		t.Errorf("after recovery: %d rows in %d objects", tbl.RowCount, len(tbl.Objects))
	}
	res, err := c.Engine.Execute(ctx, "SELECT COUNT(*) AS n FROM orders", engine.NewSession())
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Page.Row(0)[0].I; got != 96 {
		t.Errorf("queryable rows = %d, want 96", got)
	}
}

// TestCompactionKilledConnectionMidRun severs a compactor connection
// mid-run. The client retry absorbs the kill; whether a given run
// completes or fails, the object-set swap is atomic — so the table the
// queries see is always either fully pre- or fully post-compaction, and
// a scan returns the same rows throughout.
func TestCompactionKilledConnectionMidRun(t *testing.T) {
	c, proxy := proxiedCluster(t, 1)
	d, err := workload.TPCHOrders(workload.Config{Files: 2, RowsPerFile: 256, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	ing := c.NewIngester(ingest.Options{FlushRows: 128})
	if err := ing.CreateTable(ingestSpec(d)); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := ing.Append(ctx, CatalogOCS, d.Table.Name, datasetRows(t, d)); err != nil {
		t.Fatal(err)
	}
	if err := ing.Flush(ctx, CatalogOCS, d.Table.Name); err != nil {
		t.Fatal(err)
	}
	countRows := func(label string) int64 {
		t.Helper()
		res, err := c.Engine.Execute(ctx, "SELECT COUNT(*) AS n FROM orders", engine.NewSession())
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		return res.Page.Row(0)[0].I
	}
	want := countRows("baseline")
	if want != 512 {
		t.Fatalf("baseline rows = %d", want)
	}

	// Kill the first compactor connection that streams past the
	// threshold — mid-read of a candidate object.
	proxy.KillOnce(2048)
	comp := c.NewCompactor(ingest.CompactorOptions{ClusterBy: "orderkey"})
	if _, err := comp.RunOnce(ctx, CatalogOCS, d.Table.Name); err != nil {
		// A failed run must leave the catalog fully pre-compaction.
		tbl, _ := c.Meta.Get(CatalogOCS, d.Table.Name)
		if tbl.RowCount != 512 {
			t.Errorf("failed compaction corrupted row count: %d", tbl.RowCount)
		}
	}
	if proxy.Killed() != 1 {
		t.Errorf("killed = %d", proxy.Killed())
	}
	if got := countRows("after-kill"); got != want {
		t.Errorf("rows after killed compaction = %d, want %d", got, want)
	}

	// Let compaction finish cleanly; the data is unchanged.
	for i := 0; i < 4; i++ {
		if _, err := comp.RunOnce(ctx, CatalogOCS, d.Table.Name); err != nil {
			t.Fatal(err)
		}
	}
	tbl, _ := c.Meta.Get(CatalogOCS, d.Table.Name)
	if len(tbl.Objects) != 1 || tbl.RowCount != 512 {
		t.Errorf("steady state: %d objects, %d rows", len(tbl.Objects), tbl.RowCount)
	}
	if got := countRows("post-compaction"); got != want {
		t.Errorf("rows post-compaction = %d, want %d", got, want)
	}
}

// BenchmarkIngestThroughput measures the write path: rows/s through
// Append+Flush and the statement's time-to-queryable, with compaction
// off and with a compactor folding the freshly written objects after
// each round. `make bench` archives the numbers in BENCH_PR10.json.
func BenchmarkIngestThroughput(b *testing.B) {
	d, err := workload.TPCHOrders(workload.Config{Files: 4, RowsPerFile: 4096, Seed: 17})
	if err != nil {
		b.Fatal(err)
	}
	rows := datasetRows(b, d)
	for _, arm := range []struct {
		name    string
		compact bool
	}{{"compaction-off", false}, {"compaction-on", true}} {
		b.Run(arm.name, func(b *testing.B) {
			c, err := StartCluster(1)
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(c.Close)
			ing := c.NewIngester(ingest.Options{FlushRows: 2048})
			spec := ingestSpec(d)
			if err := ing.CreateTable(spec); err != nil {
				b.Fatal(err)
			}
			comp := c.NewCompactor(ingest.CompactorOptions{ClusterBy: "orderkey"})
			ctx := context.Background()
			var ingested, ingestNs, queryableNs float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				start := time.Now()
				if _, err := ing.Append(ctx, CatalogOCS, d.Table.Name, rows); err != nil {
					b.Fatal(err)
				}
				if err := ing.Flush(ctx, CatalogOCS, d.Table.Name); err != nil {
					b.Fatal(err)
				}
				// Time-to-queryable: the flush returned, so every row is
				// committed and visible to a new query.
				queryable := time.Since(start)
				if arm.compact {
					if _, err := comp.RunOnce(ctx, CatalogOCS, d.Table.Name); err != nil {
						b.Fatal(err)
					}
				}
				ingested += float64(len(rows))
				ingestNs += float64(time.Since(start).Nanoseconds())
				queryableNs += float64(queryable.Nanoseconds())
			}
			b.StopTimer()
			if ingestNs > 0 {
				b.ReportMetric(ingested/(ingestNs/1e9), "rows/s")
			}
			b.ReportMetric(queryableNs/float64(b.N)/1e6, "ms-to-queryable/op")
		})
	}
}
