package harness

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"prestocs/internal/column"
	"prestocs/internal/compress"
	ocsconn "prestocs/internal/connector/ocs"
	"prestocs/internal/engine"
	"prestocs/internal/metastore"
	"prestocs/internal/parquetlite"
	"prestocs/internal/types"
	"prestocs/internal/workload"
)

// randomDataset builds a table with a split-disjoint key plus mixed-type
// columns, uploaded to OCS and the object store under both catalogs.
func randomDataset(t *testing.T, c *Cluster, rnd *rand.Rand) *metastore.Table {
	t.Helper()
	schema := types.NewSchema(
		types.Column{Name: "k", Type: types.Int64}, // split-disjoint
		types.Column{Name: "a", Type: types.Int64},
		types.Column{Name: "b", Type: types.Float64},
		types.Column{Name: "s", Type: types.String},
	)
	files := 3
	rows := 200
	var objects []string
	var images [][]byte
	ndvSets := make([]map[string]bool, schema.Len())
	for i := range ndvSets {
		ndvSets[i] = map[string]bool{}
	}
	for f := 0; f < files; f++ {
		page := column.NewPage(schema)
		for r := 0; r < rows; r++ {
			vals := []types.Value{
				types.IntValue(int64(f*10 + rnd.Intn(10))),
				types.IntValue(int64(rnd.Intn(100))),
				types.FloatValue(float64(rnd.Intn(1000)) / 10),
				types.StringValue(fmt.Sprintf("tag%d", rnd.Intn(5))),
			}
			if rnd.Intn(20) == 0 {
				vals[1] = types.NullValue(types.Int64)
			}
			page.AppendRow(vals...)
			for i, v := range vals {
				ndvSets[i][v.String()] = true
			}
		}
		img, err := parquetlite.WritePages(schema, parquetlite.WriterOptions{RowGroupSize: 64}, page)
		if err != nil {
			t.Fatal(err)
		}
		key := fmt.Sprintf("rand-%d.pql", f)
		objects = append(objects, key)
		images = append(images, img)
		if err := c.OCSCli.Put(context.Background(), "rand", key, img); err != nil {
			t.Fatal(err)
		}
	}
	rowCount, total, colStats, err := metastore.StatsFromObjects(schema, images)
	if err != nil {
		t.Fatal(err)
	}
	stats := map[string]metastore.ColumnStats{}
	for i, col := range schema.Columns {
		cs := colStats[col.Name]
		cs.NDV = int64(len(ndvSets[i]))
		stats[col.Name] = cs
	}
	tbl := &metastore.Table{
		Schema: CatalogOCS, Name: "randtbl", Columns: schema,
		Bucket: "rand", Objects: objects,
		RowCount: rowCount, TotalBytes: total, ColumnStats: stats,
		DisjointKeys: []string{"k"},
	}
	if err := c.Meta.Register(tbl); err != nil {
		t.Fatal(err)
	}
	return tbl
}

// randomQuery composes a random-but-valid SQL query over the table.
func randomQuery(rnd *rand.Rand) string {
	var where string
	switch rnd.Intn(4) {
	case 0:
		where = fmt.Sprintf("WHERE a > %d", rnd.Intn(100))
	case 1:
		where = fmt.Sprintf("WHERE b BETWEEN %.1f AND %.1f", float64(rnd.Intn(40)), float64(60+rnd.Intn(40)))
	case 2:
		where = fmt.Sprintf("WHERE s = 'tag%d' AND a IS NOT NULL", rnd.Intn(5))
	default:
		where = ""
	}
	switch rnd.Intn(3) {
	case 0: // plain projection
		q := "SELECT k, a, b FROM randtbl " + where
		if rnd.Intn(2) == 0 {
			q += fmt.Sprintf(" ORDER BY %d LIMIT %d", 1+rnd.Intn(3), 1+rnd.Intn(20))
		}
		return q
	case 1: // grouped aggregation on the disjoint key (full pushdown eligible)
		q := "SELECT k, sum(b) AS sb, count(*) AS n, avg(b) AS ab, min(a) AS mn, max(a) AS mx FROM randtbl " +
			where + " GROUP BY k"
		if rnd.Intn(2) == 0 {
			q += fmt.Sprintf(" ORDER BY sb DESC LIMIT %d", 1+rnd.Intn(10))
		}
		return q
	default: // grouped aggregation on a non-disjoint key
		return "SELECT s, sum(a) AS sa, count(a) AS ca, avg(b) AS ab FROM randtbl " + where +
			" GROUP BY s ORDER BY s"
	}
}

// TestQuickPushdownSoundness is DESIGN.md §10's load-bearing invariant:
// for randomly generated queries and data, every pushdown configuration
// (including auto) returns exactly the same multiset of rows as no
// pushdown.
func TestQuickPushdownSoundness(t *testing.T) {
	c := testCluster(t)
	rnd := rand.New(rand.NewSource(2025))
	randomDataset(t, c, rnd)

	modes := []string{"filter", "filter_project", "filter_agg", "filter_project_agg", "all", "auto"}
	const trials = 25
	for trial := 0; trial < trials; trial++ {
		query := randomQuery(rnd)
		baseline, err := c.Engine.Execute(context.Background(), query, engine.NewSession().Set(ocsconn.SessionPushdown, "none"))
		if err != nil {
			t.Fatalf("trial %d baseline %q: %v", trial, query, err)
		}
		want := rowMultisetPage(baseline.Page)
		for _, mode := range modes {
			res, err := c.Engine.Execute(context.Background(), query, engine.NewSession().Set(ocsconn.SessionPushdown, mode))
			if err != nil {
				t.Fatalf("trial %d mode %s %q: %v", trial, mode, query, err)
			}
			got := rowMultisetPage(res.Page)
			if len(got) != len(want) {
				t.Fatalf("trial %d mode %s %q: %d rows vs %d\npushed: %v",
					trial, mode, query, len(got), len(want), res.Stats.PushedDown)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d mode %s %q row %d:\n  got  %q\n  want %q\npushed: %v",
						trial, mode, query, i, got[i], want[i], res.Stats.PushedDown)
				}
			}
		}
	}
}

// TestSoundnessAcrossCodecs repeats the invariant for each codec on the
// real workloads (smaller sweep; the full matrix runs in Fig6).
func TestSoundnessAcrossCodecs(t *testing.T) {
	for _, codec := range []compress.Codec{compress.Snappy, compress.Zstd} {
		c := testCluster(t)
		d, err := workload.Laghos(workload.Config{Files: 2, RowsPerFile: 2048, Seed: 5, Codec: codec})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Load(d); err != nil {
			t.Fatal(err)
		}
		baseline, err := c.Engine.Execute(context.Background(), d.Query, engine.NewSession().Set(ocsconn.SessionPushdown, "none"))
		if err != nil {
			t.Fatal(err)
		}
		full, err := c.Engine.Execute(context.Background(), d.Query, engine.NewSession().Set(ocsconn.SessionPushdown, "all"))
		if err != nil {
			t.Fatal(err)
		}
		a, b := rowMultisetPage(baseline.Page), rowMultisetPage(full.Page)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("codec %s row %d: %q vs %q", codec, i, a[i], b[i])
			}
		}
		c.Close()
	}
}
