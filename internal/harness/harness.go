// Package harness stands up the full reproduction topology in-process —
// engine (coordinator + workers), OCS cluster (frontend + storage nodes)
// and a plain object store, all over loopback TCP — loads generated
// datasets into both storage systems, runs (query, pushdown-config,
// codec) cells and prices each execution with the cost model. Both
// cmd/experiments and the repository benchmarks drive it; every table and
// figure in the paper maps to one of its Run* helpers (DESIGN.md §5).
package harness

import (
	"context"
	"fmt"
	"time"

	"prestocs/internal/connector/hive"
	ocsconn "prestocs/internal/connector/ocs"
	"prestocs/internal/costmodel"
	"prestocs/internal/engine"
	"prestocs/internal/ingest"
	"prestocs/internal/metastore"
	"prestocs/internal/objstore"
	"prestocs/internal/ocsserver"
	"prestocs/internal/telemetry"
	"prestocs/internal/workload"
)

// Catalog names the harness registers.
const (
	CatalogOCS  = "ocs"
	CatalogHive = "hive"
)

// Cluster is the full in-process deployment.
type Cluster struct {
	Engine  *engine.Engine
	Meta    *metastore.Metastore
	OCS     *ocsserver.Cluster
	OCSCli  *ocsserver.Client
	ObjSrv  *objstore.Server
	ObjCli  *objstore.Client
	OCSConn *ocsconn.Connector
	Params  costmodel.Params

	// Pushdown is the default ocs.pushdown mode applied by RunCtx (from
	// Config.Pushdown; empty = leave sessions untouched).
	Pushdown string

	// Metrics is the shared registry every layer writes into, and Tracers
	// maps component labels ("engine", "frontend", "node0", ...) to their
	// tracers. Both are nil unless the cluster was started with
	// Config.Telemetry.
	Metrics *telemetry.Registry
	Tracers map[string]*telemetry.Tracer
}

// Config controls optional harness features.
type Config struct {
	// Telemetry threads one shared metrics registry and per-component
	// tracers through the engine, the OCS cluster, the client transport
	// and the pushdown monitor, so a query produces a single connected
	// trace and every layer counts into the same /metrics series.
	Telemetry bool
	// Admission installs engine admission budgets (zero value keeps the
	// engine fully permissive).
	Admission engine.AdmissionConfig
	// ScanPool sizes each storage node's scan-scheduler worker pool
	// (0 = the cost-model storage-node core count).
	ScanPool int
	// StreamWindow sets the per-stream credit window on the OCS nodes
	// and frontend (0 = rpc.DefaultStreamWindow, negative disables).
	StreamWindow int
	// MaxBloomBytes caps pushed join bloom filters on the storage nodes
	// (0 = ocsserver.DefaultMaxBloomBytes, negative disables).
	MaxBloomBytes int
	// Pushdown, when non-empty, is the default ocs.pushdown session mode
	// RunCtx applies to sessions that don't set one: "always", "never",
	// "auto", or any other ParseMode value.
	Pushdown string
}

// StartCluster launches the topology with the given storage-node count.
func StartCluster(storageNodes int) (*Cluster, error) {
	return StartClusterWith(storageNodes, Config{})
}

// StartClusterWith is StartCluster with feature configuration.
func StartClusterWith(storageNodes int, cfg Config) (*Cluster, error) {
	if cfg.Pushdown != "" {
		if _, err := ocsconn.ParseMode(cfg.Pushdown); err != nil {
			return nil, err
		}
	}
	c := &Cluster{Meta: metastore.New(), Params: costmodel.Default(), Pushdown: cfg.Pushdown}

	var ocsCfg ocsserver.ClusterConfig
	if cfg.Telemetry {
		c.Metrics = telemetry.NewRegistry()
		ocsCfg = ocsserver.ClusterConfig{Metrics: c.Metrics, Tracing: true}
	}
	ocsCfg.ScanPool = cfg.ScanPool
	ocsCfg.StreamWindow = cfg.StreamWindow
	ocsCfg.MaxBloomBytes = cfg.MaxBloomBytes
	ocsCluster, err := ocsserver.StartClusterWith(storageNodes, ocsCfg)
	if err != nil {
		return nil, err
	}
	c.OCS = ocsCluster
	var cliOpts []ocsserver.Option
	if cfg.Telemetry {
		cliOpts = append(cliOpts, ocsserver.WithMetrics(c.Metrics))
	}
	c.OCSCli = ocsserver.NewClient(ocsCluster.Addr, cliOpts...)

	c.ObjSrv = objstore.NewServer(objstore.NewStore())
	c.ObjSrv.Metrics = c.Metrics
	objAddr, err := c.ObjSrv.Listen("127.0.0.1:0")
	if err != nil {
		c.Close()
		return nil, err
	}
	c.ObjCli = objstore.NewClient(objAddr)

	c.Engine = engine.New()
	c.Engine.DefaultCatalog = CatalogOCS
	c.Engine.SetAdmission(cfg.Admission)
	c.OCSConn = ocsconn.New(CatalogOCS, c.Meta, c.OCSCli)
	c.Engine.AddConnector(c.OCSConn)
	hiveConn := hive.New(CatalogHive, c.Meta, c.ObjCli)
	c.Engine.AddConnector(hiveConn)
	c.Engine.AddEventListener(c.OCSConn.Monitor())
	if cfg.Telemetry {
		c.Engine.Metrics = c.Metrics
		c.Engine.Tracer = telemetry.NewTracer(0)
		c.Tracers = map[string]*telemetry.Tracer{"engine": c.Engine.Tracer}
		for label, tr := range ocsCluster.Tracers {
			c.Tracers[label] = tr
		}
		c.OCSConn.Monitor().SetMetrics(c.Metrics)
		c.OCSConn.SetMetrics(c.Metrics)
		hiveConn.SetMetrics(c.Metrics)
	}
	return c, nil
}

// NewIngester builds an ingester writing through the cluster's OCS
// frontend and committing to its metastore, and attaches it to the OCS
// connector so engine.Ingest routes INSERT statements through it.
func (c *Cluster) NewIngester(opts ingest.Options) *ingest.Ingester {
	if opts.Telemetry == nil {
		opts.Telemetry = c.Metrics
	}
	ing := ingest.NewIngester(c.Meta, c.OCSCli, opts)
	c.OCSConn.AttachIngester(ing)
	return ing
}

// NewCompactor builds a compactor over the cluster's OCS frontend and
// metastore. Callers drive it with RunOnce or Start/Stop.
func (c *Cluster) NewCompactor(opts ingest.CompactorOptions) *ingest.Compactor {
	if opts.Telemetry == nil {
		opts.Telemetry = c.Metrics
	}
	return ingest.NewCompactor(c.Meta, c.OCSCli, opts)
}

// FlushNodeCaches empties the footer and hot-page caches of every OCS
// storage node, restoring cold-scan conditions for a measurement.
func (c *Cluster) FlushNodeCaches() {
	if c.OCS == nil {
		return
	}
	for _, n := range c.OCS.Nodes {
		n.Caches.Flush()
	}
}

// Close shuts everything down.
func (c *Cluster) Close() {
	if c.OCSCli != nil {
		c.OCSCli.Close()
	}
	if c.OCS != nil {
		c.OCS.Shutdown()
	}
	if c.ObjCli != nil {
		c.ObjCli.Close()
	}
	if c.ObjSrv != nil {
		c.ObjSrv.Close()
	}
}

// Load uploads a dataset to both storage systems and registers it under
// both catalogs.
func (c *Cluster) Load(d *workload.Dataset) error {
	ctx := context.Background()
	if err := d.UploadOCS(ctx, c.OCSCli); err != nil {
		return err
	}
	if err := d.UploadObjStore(ctx, c.ObjCli); err != nil {
		return err
	}
	if err := d.Register(c.Meta, CatalogOCS); err != nil {
		return err
	}
	return d.Register(c.Meta, CatalogHive)
}

// Cell is one measured experiment point.
type Cell struct {
	Label string
	// Wall is the real in-process execution time.
	Wall time.Duration
	// Modeled prices the metered execution with Table 1 hardware.
	Modeled costmodel.Breakdown
	// BytesMoved crossed the compute/storage boundary.
	BytesMoved int64
	// Rows is the result row count.
	Rows int
	// Pushed lists operators absorbed by the connector.
	Pushed []string
	// Stats is the engine's full report.
	Stats *engine.QueryStats
}

// Run executes one query under a session and prices it. It is a
// convenience wrapper over RunCtx with a background context.
func (c *Cluster) Run(label, query string, session *engine.Session) (*Cell, error) {
	return c.RunCtx(context.Background(), label, query, session)
}

// RunCtx executes one query under a session and prices it, honoring ctx
// for cancellation and deadlines. Storage-node caches are flushed first:
// the paper's figures measure cold scans, and at 24 GB scale no working
// set fits a 64 MiB page cache anyway — so measured cells must not
// inherit footers or pages a previous cell decoded. Tests that exercise
// warm-cache behavior call Engine.Execute directly.
func (c *Cluster) RunCtx(ctx context.Context, label, query string, session *engine.Session) (*Cell, error) {
	if session == nil {
		session = engine.NewSession()
	}
	if c.Pushdown != "" && session.Get(ocsconn.SessionPushdown) == "" {
		session.Set(ocsconn.SessionPushdown, c.Pushdown)
	}
	c.FlushNodeCaches()
	start := time.Now()
	res, err := c.Engine.Execute(ctx, query, session)
	if err != nil {
		return nil, fmt.Errorf("harness: %s: %w", label, err)
	}
	wall := time.Since(start)
	scan := res.Stats.Scan.Snapshot()
	measured := costmodel.Measured{
		StorageBytesRead: scan.StorageWork.BytesRead,
		StorageCPUUnits:  scan.StorageWork.CPUUnits,
		BytesMoved:       scan.BytesMoved,
		ComputeCPUUnits:  res.Stats.LeafMeter.Units + res.Stats.FinalMeter.Units,
		IngestUnits:      scan.DeserializeUnits,
		RoundTrips:       int64(res.Stats.Splits),
	}
	return &Cell{
		Label:      label,
		Wall:       wall,
		Modeled:    c.Params.Model(measured),
		BytesMoved: scan.BytesMoved,
		Rows:       res.Page.NumRows(),
		Pushed:     res.Stats.PushedDown,
		Stats:      res.Stats,
	}, nil
}

// PushdownStep is one x-axis position of Figure 5.
type PushdownStep struct {
	Label string
	Mode  string // ocs.pushdown session value
}

// Fig5Steps returns the paper's progressive sweep for a dataset. Laghos
// has no expression projection, so its steps go filter → +agg → +topn;
// Deep Water and TPC-H go filter → +project → +agg.
func Fig5Steps(dataset string) []PushdownStep {
	switch dataset {
	case "laghos":
		return []PushdownStep{
			{"no pushdown", "none"},
			{"filter", "filter"},
			{"filter+agg", "filter_agg"},
			{"filter+agg+topn", "all"},
		}
	default:
		return []PushdownStep{
			{"no pushdown", "none"},
			{"filter", "filter"},
			{"filter+project", "filter_project"},
			{"filter+project+agg", "filter_project_agg"},
		}
	}
}

// RunFig5 sweeps the progressive pushdown configurations over a dataset.
func (c *Cluster) RunFig5(d *workload.Dataset) ([]*Cell, error) {
	var cells []*Cell
	for _, step := range Fig5Steps(d.Name) {
		session := engine.NewSession().Set(ocsconn.SessionPushdown, step.Mode)
		cell, err := c.Run(step.Label, d.Query, session)
		if err != nil {
			return nil, err
		}
		cells = append(cells, cell)
	}
	return cells, nil
}

// RunFig6Cell runs one compression×pushdown point over Deep Water.
func (c *Cluster) RunFig6Cell(d *workload.Dataset, mode string) (*Cell, error) {
	session := engine.NewSession().Set(ocsconn.SessionPushdown, mode)
	return c.Run(d.Table.Codec.String()+"/"+mode, d.Query, session)
}

// Selectivity computes Table 2's metric for a finished cell: result bytes
// over stored input bytes.
func Selectivity(cell *Cell, d *workload.Dataset) float64 {
	if d.Table.TotalBytes == 0 {
		return 0
	}
	var resultBytes int64
	if cell.Stats != nil {
		resultBytes = int64(cell.Rows) * avgRowBytes(d)
	}
	return float64(resultBytes) / float64(d.Table.TotalBytes)
}

func avgRowBytes(d *workload.Dataset) int64 {
	// Rough fixed-width estimate: 8 bytes per column.
	return int64(d.Table.Columns.Len()) * 8
}

// Breakdown is Table 3: stage shares for a single query.
type Breakdown struct {
	PlanAnalysis time.Duration // logical plan traversal (connector opt)
	SubstraitGen time.Duration
	Transfer     time.Duration // pushdown execution + result transfer
	Residual     time.Duration // engine execution after the scan
	Other        time.Duration
	Total        time.Duration
}

// RunTable3 executes the Laghos query over a single-object dataset and
// splits its wall time into the paper's stages.
func (c *Cluster) RunTable3(d *workload.Dataset) (*Breakdown, error) {
	session := engine.NewSession().Set(ocsconn.SessionPushdown, "all")
	cell, err := c.Run("table3", d.Query, session)
	if err != nil {
		return nil, err
	}
	scan := cell.Stats.Scan.Snapshot()
	b := &Breakdown{
		PlanAnalysis: cell.Stats.ConnectorOpt,
		SubstraitGen: scan.SubstraitGen,
		Transfer:     scan.Transfer,
		Total:        cell.Stats.Total,
	}
	b.Residual = cell.Stats.Execution - scan.Transfer - scan.SubstraitGen
	if b.Residual < 0 {
		b.Residual = 0
	}
	b.Other = b.Total - b.PlanAnalysis - b.SubstraitGen - b.Transfer - b.Residual
	if b.Other < 0 {
		b.Other = 0
	}
	return b, nil
}
