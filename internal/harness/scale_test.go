package harness

import (
	"testing"

	"prestocs/internal/compress"
	"prestocs/internal/workload"
)

// TestScaleWidensSeparation backs EXPERIMENTS.md's claim that the gap to
// the paper's ratios is a scale artifact: growing the dataset must widen
// (or at least not shrink) full-pushdown's advantage over filter-only in
// data movement.
func TestScaleWidensSeparation(t *testing.T) {
	if testing.Short() {
		t.Skip("scale sweep")
	}
	movementRatio := func(files, rows int) float64 {
		c, err := StartCluster(1)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		d, err := workload.Laghos(workload.Config{Files: files, RowsPerFile: rows, Seed: 3, Codec: compress.None})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Load(d); err != nil {
			t.Fatal(err)
		}
		cells, err := c.RunFig5(d)
		if err != nil {
			t.Fatal(err)
		}
		filter, full := cells[1], cells[len(cells)-1]
		return float64(filter.BytesMoved) / float64(full.BytesMoved)
	}
	small := movementRatio(2, 4096)
	large := movementRatio(4, 16384)
	if large <= small {
		t.Errorf("movement ratio did not grow with scale: small=%.1f large=%.1f", small, large)
	}
	t.Logf("filter/full movement ratio: %.1fx at small scale, %.1fx at large scale", small, large)
}
