package harness

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"prestocs/internal/column"
	"prestocs/internal/compress"
	ocsconn "prestocs/internal/connector/ocs"
	"prestocs/internal/costmodel"
	"prestocs/internal/engine"
	"prestocs/internal/expr"
	"prestocs/internal/faultnet"
	"prestocs/internal/ocsserver"
	"prestocs/internal/telemetry"
	"prestocs/internal/types"
	"prestocs/internal/workload"
)

// adaptiveSession is the sweep configuration: auto mode with the
// planner's own reduction threshold disabled, so the filter is always
// planned for pushdown and the per-split policy alone decides where it
// runs.
func adaptiveSession() *engine.Session {
	return engine.NewSession().
		Set(ocsconn.SessionPushdown, "auto").
		Set(ocsconn.SessionSelectivityThreshold, "0")
}

// saturate pins the policy's storage-load estimate well past the flip
// cutoff, scaled by the modeled scan parallelism so the per-worker
// queueing depth is host-independent.
func saturate(p *ocsconn.Policy) {
	load := uint32(200 * costmodel.StorageScanParallelism())
	for i := 0; i < 6; i++ {
		p.ObserveLoad(load)
	}
}

// drain walks the load estimate back to idle.
func drain(p *ocsconn.Policy) {
	for i := 0; i < 40; i++ {
		p.ObserveLoad(0)
	}
}

// TestAdaptiveSweepDecisions drives the selectivity × storage-load grid
// end-to-end: on idle storage a selective filter is pushed for every
// split; with the storage-load signal saturated the policy prices every
// split onto the raw path instead, and both regimes return exactly the
// static modes' rows. The decision counters must be visible in the
// shared metrics registry (the /metrics series).
func TestAdaptiveSweepDecisions(t *testing.T) {
	c, err := StartClusterWith(1, Config{Telemetry: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	d := smallLaghos(t, compress.None)
	if err := c.Load(d); err != nil {
		t.Fatal(err)
	}
	selective := `SELECT vertex_id, e FROM laghos WHERE x < 0.4`
	wide := `SELECT vertex_id, e FROM laghos WHERE x < 3.99`
	splits := len(d.Table.Objects)

	// Idle storage, selective predicate: every split pushes down.
	want, err := c.Run("always", selective, engine.NewSession().Set(ocsconn.SessionPushdown, "always"))
	if err != nil {
		t.Fatal(err)
	}
	cell, err := c.Run("adaptive-idle", selective, adaptiveSession())
	if err != nil {
		t.Fatal(err)
	}
	scan := cell.Stats.Scan.Snapshot()
	if int(scan.PushdownSplits) != splits || scan.RawSplits != 0 {
		t.Errorf("idle: decisions pushdown=%d raw=%d, want %d/0",
			scan.PushdownSplits, scan.RawSplits, splits)
	}
	if cell.Rows != want.Rows {
		t.Errorf("idle: adaptive rows = %d, always rows = %d", cell.Rows, want.Rows)
	}

	// Saturated storage, non-selective predicate: every split goes raw.
	want, err = c.Run("never", wide, engine.NewSession().Set(ocsconn.SessionPushdown, "never"))
	if err != nil {
		t.Fatal(err)
	}
	saturate(c.OCSConn.Policy())
	cell, err = c.Run("adaptive-loaded", wide, adaptiveSession())
	if err != nil {
		t.Fatal(err)
	}
	scan = cell.Stats.Scan.Snapshot()
	if int(scan.RawSplits) != splits || scan.PushdownSplits != 0 {
		t.Errorf("loaded: decisions pushdown=%d raw=%d, want 0/%d",
			scan.PushdownSplits, scan.RawSplits, splits)
	}
	if cell.Rows != want.Rows {
		t.Errorf("loaded: adaptive rows = %d, never rows = %d", cell.Rows, want.Rows)
	}

	// Decision counters and the load gauge are in the registry.
	if n := c.Metrics.CounterValue(telemetry.MetricPushdownDecisions, "choice", "pushdown"); int(n) != splits {
		t.Errorf("pushdown decision counter = %d, want %d", n, splits)
	}
	if n := c.Metrics.CounterValue(telemetry.MetricPushdownDecisions, "choice", "raw"); int(n) != splits {
		t.Errorf("raw decision counter = %d, want %d", n, splits)
	}
	if g := c.Metrics.GaugeValue(telemetry.MetricStorageLoad); g <= 0 {
		t.Errorf("storage-load gauge = %d, want > 0 after saturation", g)
	}
}

// TestAdaptiveLoadSignalPropagates proves the live feedback path with no
// injection: heavy pushdown traffic through a one-worker scan pool backs
// the node scheduler up, the backlog rides the stream frames, and the
// connector policy's load estimate rises above idle. Many small row
// groups per object keep the scan's submission window refilling past the
// scheduler lookahead, so the backlog is nonzero while chunks stream.
func TestAdaptiveLoadSignalPropagates(t *testing.T) {
	c, err := StartClusterWith(1, Config{Telemetry: true, ScanPool: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	d, err := workload.Laghos(workload.Config{Files: 2, RowsPerFile: 8192, RowGroupSize: 512, Seed: 11, Codec: compress.None})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Load(d); err != nil {
		t.Fatal(err)
	}
	heavy := `SELECT vertex_id, x, e FROM laghos WHERE x < 4.5`
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			session := engine.NewSession().Set(ocsconn.SessionPushdown, "filter")
			for i := 0; i < 3; i++ {
				if _, err := c.Engine.Execute(context.Background(), heavy, session); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if ewma := c.OCSConn.Policy().LoadEWMA(); ewma <= 0 {
		t.Errorf("load EWMA = %v after concurrent pushdown traffic, want > 0", ewma)
	}
}

// adaptiveHandle builds a filter-pushdown handle over the loaded laghos
// table with adaptive repricing armed: `x < cut` over the full schema.
func adaptiveHandle(t *testing.T, c *Cluster, cut float64) *ocsconn.Handle {
	t.Helper()
	th, err := c.OCSConn.TableHandle(CatalogOCS, "laghos")
	if err != nil {
		t.Fatal(err)
	}
	h := th.(*ocsconn.Handle)
	cmp, err := expr.NewCompare(expr.Lt, expr.Col(1, "x", types.Float64), expr.Lit(types.FloatValue(cut)))
	if err != nil {
		t.Fatal(err)
	}
	h.Push = &ocsconn.Pushdown{Filter: cmp}
	h.Adaptive = &ocsconn.AdaptiveParams{
		LoadCutoff: ocsconn.DefaultLoadCutoff,
		FlipMargin: ocsconn.DefaultFlipMargin,
	}
	return h
}

// TestAdaptiveFlipKilledConnectionReplay exercises the two resume paths
// of the order-deterministic machinery in one cluster: a pushdown stream
// abandoned mid-query by the adaptive policy (storage-load spike), and a
// pushdown stream severed by a killed connection — both must replay
// locally, skip the delivered prefix, and produce the exact raw-path
// row sequence.
func TestAdaptiveFlipKilledConnectionReplay(t *testing.T) {
	c, proxy := proxiedCluster(t, 1)
	d := smallLaghos(t, compress.None)
	if err := c.Load(d); err != nil {
		t.Fatal(err)
	}

	// --- Mid-query flip ---
	h := adaptiveHandle(t, c, 9) // keeps every row: worst case for pushdown
	split := engine.Split{Object: d.Table.Objects[0], Index: 0}
	var stats engine.ScanStats
	src, err := c.OCSConn.CreatePageSourceDecided(context.Background(), h, split,
		engine.SplitDecision{Pushdown: true}, &stats)
	if err != nil {
		t.Fatal(err)
	}
	first, err := src.Next()
	if err != nil || first == nil {
		t.Fatalf("first page: %v", err)
	}
	got := collectColumn(t, first, nil)
	// The load spike arrives mid-stream; the next read must reprice and
	// flip to the local replay.
	saturate(c.OCSConn.Policy())
	for {
		page, err := src.Next()
		if err != nil {
			t.Fatal(err)
		}
		if page == nil {
			break
		}
		got = collectColumn(t, page, got)
	}
	if flips := stats.Snapshot().AdaptiveFlips; flips != 1 {
		t.Fatalf("adaptive flips = %d, want 1", flips)
	}

	// The raw decision path over the same split is the reference order.
	var rawStats engine.ScanStats
	raw, err := c.OCSConn.CreatePageSourceDecided(context.Background(), adaptiveHandle(t, c, 9), split,
		engine.SplitDecision{Pushdown: false}, &rawStats)
	if err != nil {
		t.Fatal(err)
	}
	var ref []string
	for {
		page, err := raw.Next()
		if err != nil {
			t.Fatal(err)
		}
		if page == nil {
			break
		}
		ref = collectColumn(t, page, ref)
	}
	if len(got) != len(ref) {
		t.Fatalf("flipped stream delivered %d rows, raw path %d", len(got), len(ref))
	}
	for i := range got {
		if got[i] != ref[i] {
			t.Fatalf("row %d: flipped stream = %s, raw path = %s", i, got[i], ref[i])
		}
	}

	// --- Killed-connection replay under auto mode ---
	// A fresh cluster with small stream chunks and a one-chunk credit
	// window: each chunk costs a full credit round trip, so the proxy
	// forwards the schema and the first chunks individually and the
	// byte-threshold kill deterministically severs the connection only
	// after the client has consumed a prefix — the mid-stream fallback
	// path, not the open-retry path a kill-at-open would take. The kill
	// is armed before any query so no pooled connection is already past
	// the threshold (the proxy counts response bytes from birth).
	ocsCluster, err := ocsserver.StartClusterWith(1, ocsserver.ClusterConfig{StreamWindow: 1})
	if err != nil {
		t.Fatal(err)
	}
	proxy, err = faultnet.New(ocsCluster.Addr)
	if err != nil {
		ocsCluster.Shutdown()
		t.Fatal(err)
	}
	t.Cleanup(func() { proxy.Close() })
	c = clusterAround(t, ocsCluster, proxy.Addr(), ocsserver.WithChunkRows(512))
	if err := c.Load(d); err != nil {
		t.Fatal(err)
	}
	selective := `SELECT vertex_id, e FROM laghos WHERE x < 1.5`
	proxy.KillOnce(16384)
	cell, err := c.Run("killed", selective, adaptiveSession())
	if err != nil {
		t.Fatalf("auto query with killed connection = %v", err)
	}
	baseline, err := c.Run("baseline", selective, engine.NewSession().Set(ocsconn.SessionPushdown, "never"))
	if err != nil {
		t.Fatal(err)
	}
	if proxy.Killed() != 1 {
		t.Errorf("killed connections = %d, want 1", proxy.Killed())
	}
	if cell.Rows != baseline.Rows {
		t.Errorf("rows with fault = %d, baseline = %d", cell.Rows, baseline.Rows)
	}
	scan := cell.Stats.Scan.Snapshot()
	if scan.PushdownSplits == 0 {
		t.Errorf("auto query scheduled no pushdown splits on idle storage")
	}
	if scan.FallbackSplits == 0 {
		t.Errorf("killed connection produced no fallback replay")
	}
}

// collectColumn appends page column 0 (vertex_id) to dst, rendered as
// strings for simple order-sensitive comparison.
func collectColumn(t *testing.T, page *column.Page, dst []string) []string {
	t.Helper()
	vec := page.Vectors[0]
	for i := 0; i < vec.Len(); i++ {
		dst = append(dst, fmt.Sprint(vec.Value(i)))
	}
	return dst
}

// BenchmarkAdaptiveSweep is the PR's evaluation sweep: the same filter
// query at two (selectivity, storage-load) extremes where the optimal
// static pushdown choice flips. At each extreme the three modes run
// interleaved and the reported figure is the best-of-N wall time; the
// adaptive mode must track the better static choice at both ends
// (adaptive-vs-best-pct ≈ 0, and far below the worse static's gap).
func BenchmarkAdaptiveSweep(b *testing.B) {
	// Many small row groups per object: scan work arrives at the storage
	// scheduler as a long task stream, so background traffic sustains real
	// queue depth against the measured query (and feeds the load signal).
	d, err := workload.Laghos(workload.Config{Files: 4, RowsPerFile: 16384, RowGroupSize: 512, Seed: 31, Codec: compress.None})
	if err != nil {
		b.Fatal(err)
	}

	runRegime := func(b *testing.B, c *Cluster, query string, stop func()) {
		if stop != nil {
			defer stop()
		}
		sessions := map[string]func() *engine.Session{
			"always":   func() *engine.Session { return engine.NewSession().Set(ocsconn.SessionPushdown, "always") },
			"never":    func() *engine.Session { return engine.NewSession().Set(ocsconn.SessionPushdown, "never") },
			"adaptive": adaptiveSession,
		}
		order := []string{"always", "never", "adaptive"}
		samples := map[string][]time.Duration{}
		// Warm connection pools and code paths before timing.
		for _, mode := range order {
			if _, err := c.Run("warmup", query, sessions[mode]()); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		// Floor of 24 interleaved rounds even when the framework picks a
		// small b.N (the loaded regime is slow): the best-of-N statistic
		// below needs enough draws per mode to reach each mode's floor.
		// ns/op consequently overstates per-iteration time on short runs;
		// the *-ms metrics are the figures of record for this benchmark.
		rounds := b.N
		if rounds < 24 {
			rounds = 24
		}
		for i := 0; i < rounds; i++ {
			for _, mode := range order {
				start := time.Now()
				if _, err := c.Run(mode, query, sessions[mode]()); err != nil {
					b.Fatal(err)
				}
				samples[mode] = append(samples[mode], time.Since(start))
			}
		}
		b.StopTimer()
		med := map[string]float64{}
		for mode, s := range samples {
			sort.Slice(s, func(a, b int) bool { return s[a] < s[b] })
			// Best-of-N: the floor isolates each mode's deterministic cost
			// from scheduler jitter (the samples are bimodal on a busy
			// host, so a median can land on either side of the gap).
			med[mode] = float64(s[0].Nanoseconds()) / 1e6
		}
		best := med["always"]
		if med["never"] < best {
			best = med["never"]
		}
		b.ReportMetric(med["always"], "always-ms")
		b.ReportMetric(med["never"], "never-ms")
		b.ReportMetric(med["adaptive"], "adaptive-ms")
		b.ReportMetric((med["adaptive"]-best)/best*100, "adaptive-vs-best-pct")
	}

	b.Run("idle-selective", func(b *testing.B) {
		c, err := StartClusterWith(1, Config{})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(c.Close)
		if err := c.Load(d); err != nil {
			b.Fatal(err)
		}
		runRegime(b, c, `SELECT vertex_id, e FROM laghos WHERE x < 0.4`, nil)
	})

	b.Run("loaded-nonselective", func(b *testing.B) {
		c, err := StartClusterWith(1, Config{ScanPool: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(c.Close)
		if err := c.Load(d); err != nil {
			b.Fatal(err)
		}
		// Background pushdown traffic keeps the one-worker scan pool
		// saturated, so in-storage execution queues while raw GETs do not.
		stopCh := make(chan struct{})
		var wg sync.WaitGroup
		heavy := `SELECT vertex_id, x, e FROM laghos WHERE x < 4.5`
		for g := 0; g < 6; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				session := engine.NewSession().Set(ocsconn.SessionPushdown, "filter")
				for {
					select {
					case <-stopCh:
						return
					default:
					}
					if _, err := c.Engine.Execute(context.Background(), heavy, session); err != nil {
						return
					}
				}
			}()
		}
		stop := func() {
			close(stopCh)
			wg.Wait()
		}
		// Full-width, non-selective projection: pushdown ships every
		// column, so the modeled wire/ingest saving is nil and observed
		// queue depth alone decides — the regime where raw must win.
		runRegime(b, c, `SELECT vertex_id, x, y, z, e, rho, p, vx, vy, vz FROM laghos WHERE x < 3.99`, stop)
	})
}
