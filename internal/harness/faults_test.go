package harness

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"prestocs/internal/compress"
	ocsconn "prestocs/internal/connector/ocs"
	"prestocs/internal/engine"
	"prestocs/internal/faultnet"
	"prestocs/internal/metastore"
	"prestocs/internal/objstore"
	"prestocs/internal/ocsserver"
)

// proxiedCluster mirrors StartCluster but routes the engine's OCS client
// through a fault proxy sitting in front of the frontend.
func proxiedCluster(t *testing.T, storageNodes int) (*Cluster, *faultnet.Proxy) {
	t.Helper()
	ocsCluster, err := ocsserver.StartCluster(storageNodes)
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := faultnet.New(ocsCluster.Addr)
	if err != nil {
		ocsCluster.Shutdown()
		t.Fatal(err)
	}
	c := clusterAround(t, ocsCluster, proxy.Addr())
	t.Cleanup(func() { proxy.Close() })
	return c, proxy
}

// nodeProxiedCluster places a fault proxy between the frontend and each
// storage node, so node-side faults can be injected per node.
func nodeProxiedCluster(t *testing.T, storageNodes int) (*Cluster, []*faultnet.Proxy) {
	t.Helper()
	ocsCluster := &ocsserver.Cluster{}
	var proxies []*faultnet.Proxy
	var proxyAddrs []string
	for i := 0; i < storageNodes; i++ {
		node := ocsserver.NewStorageNode(i)
		addr, err := node.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ocsCluster.Nodes = append(ocsCluster.Nodes, node)
		ocsCluster.NodeAddr = append(ocsCluster.NodeAddr, addr)
		proxy, err := faultnet.New(addr)
		if err != nil {
			t.Fatal(err)
		}
		proxies = append(proxies, proxy)
		proxyAddrs = append(proxyAddrs, proxy.Addr())
		p := proxy
		t.Cleanup(func() { p.Close() })
	}
	front, err := ocsserver.NewFrontend(proxyAddrs)
	if err != nil {
		t.Fatal(err)
	}
	ocsCluster.Front = front
	ocsCluster.Addr, err = front.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := clusterAround(t, ocsCluster, ocsCluster.Addr)
	return c, proxies
}

// clusterAround assembles the harness topology on top of an existing OCS
// cluster, dialing the frontend at dialAddr (possibly a proxy); cliOpts
// configure the OCS client (chunk coalescing, metrics, ...).
func clusterAround(t *testing.T, ocsCluster *ocsserver.Cluster, dialAddr string, cliOpts ...ocsserver.Option) *Cluster {
	t.Helper()
	c := &Cluster{Meta: metastore.New(), OCS: ocsCluster}
	c.OCSCli = ocsserver.NewClient(dialAddr, cliOpts...)
	c.ObjSrv = objstore.NewServer(objstore.NewStore())
	objAddr, err := c.ObjSrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c.ObjCli = objstore.NewClient(objAddr)
	c.Engine = engine.New()
	c.Engine.DefaultCatalog = CatalogOCS
	c.OCSConn = ocsconn.New(CatalogOCS, c.Meta, c.OCSCli)
	c.Engine.AddConnector(c.OCSConn)
	c.Engine.AddEventListener(c.OCSConn.Monitor())
	t.Cleanup(c.Close)
	return c
}

func TestQuerySurvivesKilledFrontendConnection(t *testing.T) {
	c, proxy := proxiedCluster(t, 1)
	d := smallLaghos(t, compress.None)
	if err := c.Load(d); err != nil {
		t.Fatal(err)
	}
	session := func() *engine.Session {
		return engine.NewSession().Set(ocsconn.SessionPushdown, "filter")
	}
	baseline, err := c.Run("baseline", d.Query, session())
	if err != nil {
		t.Fatal(err)
	}
	// One-shot kill: some Execute connection is severed once response
	// bytes cross the threshold — mid-stream for a result of this size.
	proxy.KillOnce(4096)
	cell, err := c.Run("killed", d.Query, session())
	if err != nil {
		t.Fatalf("query with killed connection = %v", err)
	}
	if proxy.Killed() != 1 {
		t.Errorf("killed = %d", proxy.Killed())
	}
	if cell.Rows != baseline.Rows {
		t.Errorf("rows with fault = %d, baseline = %d", cell.Rows, baseline.Rows)
	}
}

func TestQuerySurvivesStorageNodeKilledMidStream(t *testing.T) {
	c, proxies := nodeProxiedCluster(t, 2)
	d := smallLaghos(t, compress.None)
	if err := c.Load(d); err != nil {
		t.Fatal(err)
	}
	session := func() *engine.Session {
		return engine.NewSession().Set(ocsconn.SessionPushdown, "filter")
	}
	baseline, err := c.Run("baseline", d.Query, session())
	if err != nil {
		t.Fatal(err)
	}
	// Sever the first node connection that streams past the threshold:
	// a storage node dying mid-result. Frontend retry or connector
	// fallback must absorb it.
	for _, p := range proxies {
		p.KillOnce(4096)
	}
	cell, err := c.Run("node-killed", d.Query, session())
	if err != nil {
		t.Fatalf("query with killed node stream = %v", err)
	}
	var killed int64
	for _, p := range proxies {
		killed += p.Killed()
	}
	if killed < 1 {
		t.Errorf("no node connection was killed; fault never fired")
	}
	if cell.Rows != baseline.Rows {
		t.Errorf("rows with fault = %d, baseline = %d", cell.Rows, baseline.Rows)
	}
}

func TestPushdownFallsBackWhenComputeUnitDown(t *testing.T) {
	c := testCluster(t)
	d := smallLaghos(t, compress.None)
	if err := c.Load(d); err != nil {
		t.Fatal(err)
	}
	session := func() *engine.Session {
		return engine.NewSession().Set(ocsconn.SessionPushdown, "filter")
	}
	baseline, err := c.Run("baseline", d.Query, session())
	if err != nil {
		t.Fatal(err)
	}
	// Storage nodes keep serving PUT/GET but their compute units refuse
	// Execute: every split must degrade to the raw-scan path.
	for _, node := range c.OCS.Nodes {
		node.SetExecuteFault(fmt.Errorf("compute unit offline"))
	}
	cell, err := c.Run("degraded", d.Query, session())
	if err != nil {
		t.Fatalf("query with compute units down = %v", err)
	}
	if cell.Rows != baseline.Rows {
		t.Errorf("degraded rows = %d, baseline = %d", cell.Rows, baseline.Rows)
	}
	scan := cell.Stats.Scan.Snapshot()
	if scan.FallbackSplits != int64(cell.Stats.Splits) {
		t.Errorf("FallbackSplits = %d, want %d (all splits degraded)",
			scan.FallbackSplits, cell.Stats.Splits)
	}
	// The monitor's history records the degradation.
	window := c.OCSConn.Monitor().Window()
	last := window[len(window)-1]
	if last.Fallbacks != scan.FallbackSplits {
		t.Errorf("monitor Fallbacks = %d, want %d", last.Fallbacks, scan.FallbackSplits)
	}
	if !last.Succeeded {
		t.Error("monitor recorded the degraded query as failed")
	}
	// Recovery: clearing the fault restores pushdown with no fallbacks.
	for _, node := range c.OCS.Nodes {
		node.SetExecuteFault(nil)
	}
	cell, err = c.Run("recovered", d.Query, session())
	if err != nil {
		t.Fatal(err)
	}
	if fb := cell.Stats.Scan.Snapshot().FallbackSplits; fb != 0 {
		t.Errorf("recovered query still fell back on %d splits", fb)
	}
}

// TestSplitPruningSurvivesKilledConnectionFallback checks that zone-map
// split pruning composes with mid-stream fallback replay: a query whose
// pushed filter prunes half the splits must return the same rows when a
// connection is severed mid-result, and the pruning statistics must
// survive the degraded execution.
func TestSplitPruningSurvivesKilledConnectionFallback(t *testing.T) {
	c, proxy := proxiedCluster(t, 1)
	d := smallLaghos(t, compress.None)
	if err := c.Load(d); err != nil {
		t.Fatal(err)
	}
	// vertex_id is split-disjoint: file f holds [f*1024, (f+1)*1024), so
	// this filter covers exactly the first two of four objects and the
	// per-object statistics prune the other two before scheduling.
	query := `SELECT vertex_id, x, e FROM laghos WHERE vertex_id < 2048`
	session := func() *engine.Session {
		return engine.NewSession().Set(ocsconn.SessionPushdown, "filter")
	}
	baseline, err := c.Run("baseline", query, session())
	if err != nil {
		t.Fatal(err)
	}
	if got := baseline.Stats.Scan.Snapshot().SplitsPruned; got != 2 {
		t.Fatalf("baseline SplitsPruned = %d, want 2", got)
	}
	if baseline.Rows != 2*8192 {
		t.Fatalf("baseline rows = %d, want %d", baseline.Rows, 2*8192)
	}
	// Sever a streaming connection mid-result; the retry/fallback path
	// must replay only the surviving (unpruned) splits.
	proxy.KillOnce(4096)
	cell, err := c.Run("killed", query, session())
	if err != nil {
		t.Fatalf("pruned query with killed connection = %v", err)
	}
	if proxy.Killed() != 1 {
		t.Errorf("killed = %d", proxy.Killed())
	}
	if cell.Rows != baseline.Rows {
		t.Errorf("rows with fault = %d, baseline = %d", cell.Rows, baseline.Rows)
	}
	scan := cell.Stats.Scan.Snapshot()
	if scan.SplitsPruned != 2 {
		t.Errorf("SplitsPruned with fault = %d, want 2", scan.SplitsPruned)
	}
	// The monitor's history keeps the pruning count for the degraded run.
	window := c.OCSConn.Monitor().Window()
	last := window[len(window)-1]
	if last.SplitsPruned != scan.SplitsPruned {
		t.Errorf("monitor SplitsPruned = %d, want %d", last.SplitsPruned, scan.SplitsPruned)
	}
}

func TestQueryDeadlineWithBlackholedStorage(t *testing.T) {
	c, proxy := proxiedCluster(t, 1)
	d := smallLaghos(t, compress.None)
	if err := c.Load(d); err != nil {
		t.Fatal(err)
	}
	idleBefore := c.OCSCli.IdleConns()
	proxy.SetBlackhole(true)
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.RunCtx(ctx, "blackhole", d.Query, engine.NewSession())
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("black-holed query error = %v", err)
	}
	if elapsed > 5*time.Second {
		t.Errorf("black-holed query returned after %v, deadline was 300ms", elapsed)
	}
	if idle := c.OCSCli.IdleConns(); idle > idleBefore {
		t.Errorf("timed-out query grew the connection pool: %d -> %d", idleBefore, idle)
	}
	// The stack recovers once the network heals.
	proxy.SetBlackhole(false)
	if _, err := c.Run("healed", d.Query, engine.NewSession()); err != nil {
		t.Fatalf("query after un-black-holing = %v", err)
	}
}

func TestCancelledQueryReleasesResources(t *testing.T) {
	c := testCluster(t)
	d := smallLaghos(t, compress.None)
	if err := c.Load(d); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.RunCtx(ctx, "cancelled", d.Query, engine.NewSession()); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled query error = %v", err)
	}
	// A healthy query still runs afterwards.
	if _, err := c.Run("after", d.Query, engine.NewSession()); err != nil {
		t.Fatal(err)
	}
}
