package harness

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"prestocs/internal/column"
	"prestocs/internal/compress"
	ocsconn "prestocs/internal/connector/ocs"
	"prestocs/internal/engine"
	"prestocs/internal/metastore"
	"prestocs/internal/parquetlite"
	"prestocs/internal/telemetry"
	"prestocs/internal/types"
)

// flipImage builds an object whose every x value is v, so a query result
// unambiguously identifies which table version produced it.
func flipImage(t *testing.T, v int64, rows int) []byte {
	t.Helper()
	schema := types.NewSchema(types.Column{Name: "x", Type: types.Int64})
	page := column.NewPage(schema)
	for i := 0; i < rows; i++ {
		page.AppendRow(types.IntValue(v))
	}
	img, err := parquetlite.WritePages(schema, parquetlite.WriterOptions{RowGroupSize: 256}, page)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func flipTable(objects []string, rows int64) *metastore.Table {
	return &metastore.Table{
		Schema:   CatalogOCS,
		Name:     "flip",
		Columns:  types.NewSchema(types.Column{Name: "x", Type: types.Int64}),
		Bucket:   "flipb",
		Objects:  objects,
		RowCount: rows,
	}
}

// TestCacheInvalidationConcurrentReregistration races the metadata cache
// against table re-registration: a writer flips the table between two
// layouts (v1: 4096 rows of all-1s, v2: 2048 rows of all-3s) while
// readers query it. Every result must come entirely from one version —
// (count, sum) is either (4096, 4096) or (2048, 6144), never a mix — and
// the cached read must never outlive its registration version. Run under
// -race via `make faults`.
func TestCacheInvalidationConcurrentReregistration(t *testing.T) {
	c, err := StartCluster(1)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	if err := c.OCSCli.Put(ctx, "flipb", "v1", flipImage(t, 1, 4096)); err != nil {
		t.Fatal(err)
	}
	if err := c.OCSCli.Put(ctx, "flipb", "v2", flipImage(t, 3, 2048)); err != nil {
		t.Fatal(err)
	}
	if err := c.Meta.Register(flipTable([]string{"v1"}, 4096)); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				c.Meta.Register(flipTable([]string{"v2"}, 2048))
			} else {
				c.Meta.Register(flipTable([]string{"v1"}, 4096))
			}
		}
	}()

	const readers, queries = 4, 25
	var wg sync.WaitGroup
	errs := make(chan error, readers*queries)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for q := 0; q < queries; q++ {
				session := engine.NewSession().Set(ocsconn.SessionPushdown, "filter")
				res, err := c.Engine.Execute(ctx, "SELECT count(*) AS c, sum(x) AS s FROM flip WHERE x >= 0", session)
				if err != nil {
					errs <- err
					return
				}
				row := res.Page.Row(0)
				got := row[0].String() + "/" + row[1].String()
				if got != "4096/4096" && got != "2048/6144" {
					errs <- fmt.Errorf("mixed-version result count/sum = %s", got)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	writer.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// renderEngineResult flattens a query result for byte-identical
// comparison across runs.
func renderEngineResult(res *engine.Result) string {
	var b strings.Builder
	for i := 0; i < res.Page.NumRows(); i++ {
		for _, v := range res.Page.Row(i) {
			b.WriteString(v.String())
			b.WriteByte('|')
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// TestCacheInvalidationKilledConnectionReplay checks the fault-matrix
// interaction with warm node caches: a query that loses its connection
// mid-stream is replayed through the engine-side fallback path, which
// runs fully uncached — the replay must neither read nor poison the
// node's footer/page caches, so both the replayed result and every later
// warm-cache query stay byte-identical to the baseline. Queries go
// through Engine.Execute directly (Cluster.Run would flush the caches).
func TestCacheInvalidationKilledConnectionReplay(t *testing.T) {
	c, proxy := proxiedCluster(t, 1)
	d := smallLaghos(t, compress.None)
	if err := c.Load(d); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	run := func(label string) string {
		t.Helper()
		session := engine.NewSession().Set(ocsconn.SessionPushdown, "filter")
		res, err := c.Engine.Execute(ctx, d.Query, session)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		return renderEngineResult(res)
	}

	baseline := run("cold baseline")
	if warm := run("warm"); warm != baseline {
		t.Fatal("warm-cache result differs from cold baseline")
	}

	// Sever the next Execute connection mid-stream; the engine retries or
	// falls back to raw GETs and re-executes locally, bypassing node caches.
	proxy.KillOnce(4096)
	if got := run("killed"); got != baseline {
		t.Fatal("result after killed connection differs from baseline")
	}
	if proxy.Killed() != 1 {
		t.Fatalf("killed = %d, want 1", proxy.Killed())
	}
	// The caches survived the fault untouched: another warm query still
	// matches.
	if got := run("warm after fault"); got != baseline {
		t.Fatal("warm-cache result after fault replay differs from baseline")
	}
}

// TestCacheCountersVisibleInMetrics asserts the caching tier's counters
// surface through the shared /metrics registry after real queries: the
// engine-side metadata cache and the storage-node footer and page caches
// all report under their manifest names.
func TestCacheCountersVisibleInMetrics(t *testing.T) {
	c, err := StartClusterWith(1, Config{Telemetry: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	d := smallLaghos(t, compress.None)
	if err := c.Load(d); err != nil {
		t.Fatal(err)
	}
	session := engine.NewSession().Set(ocsconn.SessionPushdown, "filter")
	for i := 0; i < 2; i++ {
		if _, err := c.Engine.Execute(context.Background(), d.Query, session); err != nil {
			t.Fatal(err)
		}
	}
	rendered := c.Metrics.Render()
	for _, name := range []string{
		telemetry.MetricMetaCacheHits,
		telemetry.MetricMetaCacheMisses,
		telemetry.MetricFooterCacheHits,
		telemetry.MetricFooterCacheMisses,
		telemetry.MetricPageCacheHits,
		telemetry.MetricPageCacheMisses,
	} {
		if !strings.Contains(rendered, name) {
			t.Errorf("metric %q missing from /metrics output", name)
		}
	}
	if h := c.Metrics.CounterValue(telemetry.MetricMetaCacheHits, "catalog", CatalogOCS); h == 0 {
		t.Error("metadata cache reported no hits after a repeated query")
	}
}
