package harness

import (
	"context"
	"sort"
	"testing"

	"prestocs/internal/bloom"
	"prestocs/internal/compress"
	ocsconn "prestocs/internal/connector/ocs"
	"prestocs/internal/engine"
	"prestocs/internal/expr"
	"prestocs/internal/parquetlite"
	"prestocs/internal/telemetry"
	"prestocs/internal/types"
	"prestocs/internal/workload"
)

// q3Config is the shared scale for the two TPC-H Q3 tables. Lineitem and
// orders must be generated at the same Files × RowsPerFile so orderkeys
// align 1:1 (one lineitem row per order).
var q3Config = workload.Config{Files: 3, RowsPerFile: 512, Seed: 41, Codec: compress.None}

func q3Datasets(t *testing.T) (*workload.Dataset, *workload.Dataset) {
	t.Helper()
	line, err := workload.TPCH(q3Config)
	if err != nil {
		t.Fatal(err)
	}
	ords, err := workload.TPCHOrders(q3Config)
	if err != nil {
		t.Fatal(err)
	}
	return line, ords
}

// q3Reference computes the Q3 answer row-at-a-time from the raw parquet
// objects — a hash join the slow, obvious way — and renders it in
// rowMultisetPage form. Because orderkeys are unique on both sides, each
// output group is a single lineitem row and the revenue arithmetic
// (extendedprice × (1 − discount), summed from zero) is bitwise identical
// to the engine's, so the comparison is exact, not approximate.
func q3Reference(t *testing.T, line, ords *workload.Dataset) []string {
	t.Helper()
	cutoff, err := types.DateFromString("1994-01-01")
	if err != nil {
		t.Fatal(err)
	}

	// Build side: orderkey → orderdate for orders before the cutoff.
	dates := make(map[int64]int64)
	for _, key := range ords.Table.Objects {
		r, err := parquetlite.NewReader(ords.Objects[key])
		if err != nil {
			t.Fatal(err)
		}
		pages, err := r.ReadAll([]int{0, 1}) // orderkey, orderdate
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pages {
			for i := 0; i < p.NumRows(); i++ {
				row := p.Row(i)
				if row[1].I < cutoff.I {
					dates[row[0].I] = row[1].I
				}
			}
		}
	}

	// Probe side: revenue per matched orderkey.
	type group struct {
		orderkey  int64
		orderdate int64
		revenue   float64
	}
	var groups []group
	for _, key := range line.Table.Objects {
		r, err := parquetlite.NewReader(line.Objects[key])
		if err != nil {
			t.Fatal(err)
		}
		pages, err := r.ReadAll([]int{0, 2, 3}) // orderkey, extendedprice, discount
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pages {
			for i := 0; i < p.NumRows(); i++ {
				row := p.Row(i)
				date, ok := dates[row[0].I]
				if !ok {
					continue
				}
				groups = append(groups, group{row[0].I, date, row[1].F * (1 - row[2].F)})
			}
		}
	}

	sort.Slice(groups, func(i, j int) bool { return groups[i].revenue > groups[j].revenue })
	if len(groups) > 10 {
		groups = groups[:10]
	}
	out := make([]string, len(groups))
	for i, g := range groups {
		out[i] = types.IntValue(g.orderkey).String() + "|" +
			types.DateValue(g.orderdate).String() + "|" +
			types.FloatValue(g.revenue).String() + "|"
	}
	sort.Strings(out)
	return out
}

func assertRowsEqual(t *testing.T, label string, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: rows = %d, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: row %d = %q, want %q", label, i, got[i], want[i])
		}
	}
}

// TestJoinQ3DifferentialAcrossModes is the PR's differential property
// test: the Q3-shaped lineitem ⋈ orders query must return exactly the
// row-at-a-time reference join's answer under bloom pushdown, with bloom
// disabled, and on the fully raw path — and the bloom arm must visibly
// cut the probe rows crossing the compute/storage boundary.
func TestJoinQ3DifferentialAcrossModes(t *testing.T) {
	c, err := StartClusterWith(1, Config{Telemetry: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	line, ords := q3Datasets(t)
	for _, d := range []*workload.Dataset{line, ords} {
		if err := c.Load(d); err != nil {
			t.Fatal(err)
		}
	}
	want := q3Reference(t, line, ords)

	run := func(label string, session *engine.Session) *engine.Result {
		t.Helper()
		c.FlushNodeCaches()
		res, err := c.Engine.Execute(context.Background(), workload.TPCHQ3Query, session)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		assertRowsEqual(t, label, rowMultisetPage(res.Page), want)
		return res
	}

	bloomOn := run("bloom-on", engine.NewSession())
	bloomOff := run("bloom-off", engine.NewSession().Set(engine.SessionJoinBloom, "off"))
	run("raw", engine.NewSession().Set(engine.SessionJoinBloom, "off").Set(ocsconn.SessionPushdown, "never"))

	// The bloom arm pushed a filter into every probe split and moved
	// strictly fewer rows and bytes off storage: the date cutoff keeps
	// ≈29% of orders, so ≈71% of probe rows vanish inside the scan.
	onScan := bloomOn.Stats.Scan.Snapshot()
	offScan := bloomOff.Stats.Scan.Snapshot()
	if int(onScan.JoinBloomSplits) != q3Config.Files {
		t.Errorf("bloom splits = %d, want %d", onScan.JoinBloomSplits, q3Config.Files)
	}
	if onScan.JoinBloomRejected != 0 {
		t.Errorf("bloom rejected = %d, want 0", onScan.JoinBloomRejected)
	}
	if onScan.ResultRows >= offScan.ResultRows {
		t.Errorf("bloom-on storage rows = %d, not below bloom-off %d",
			onScan.ResultRows, offScan.ResultRows)
	}
	if onScan.BytesMoved >= offScan.BytesMoved {
		t.Errorf("bloom-on moved %d bytes, not below bloom-off %d",
			onScan.BytesMoved, offScan.BytesMoved)
	}
	if bloomOn.Stats.JoinStrategy != "broadcast" {
		t.Errorf("strategy = %q, want broadcast at this scale", bloomOn.Stats.JoinStrategy)
	}

	// Decisions and storage-side work are on /metrics.
	if n := c.Metrics.CounterValue(telemetry.MetricJoinBloomPushdown); int(n) != q3Config.Files {
		t.Errorf("%s = %d, want %d", telemetry.MetricJoinBloomPushdown, n, q3Config.Files)
	}
	if n := c.Metrics.CounterValue(telemetry.MetricQueryJoins); n < 3 {
		t.Errorf("%s = %d, want ≥ 3", telemetry.MetricQueryJoins, n)
	}
	if n := c.Metrics.CounterValue(telemetry.MetricJoinStrategyChosen, "strategy", "broadcast"); n == 0 {
		t.Errorf("%s{strategy=broadcast} = 0", telemetry.MetricJoinStrategyChosen)
	}
	if n := c.Metrics.CounterValue(telemetry.MetricStorageBloomRowsTested); n == 0 {
		t.Errorf("%s = 0, want > 0", telemetry.MetricStorageBloomRowsTested)
	}
	if n := c.Metrics.CounterValue(telemetry.MetricStorageBloomRowsFiltered); n == 0 {
		t.Errorf("%s = 0, want > 0", telemetry.MetricStorageBloomRowsFiltered)
	}
}

// TestJoinBloomRejectedFallbackEngineSide caps the storage nodes' bloom
// budget below any real filter: every probe split's pushdown is rejected
// with CodeInvalid, the connector retries the split without the bloom and
// applies it engine-side, and the answer is still exactly the reference.
func TestJoinBloomRejectedFallbackEngineSide(t *testing.T) {
	c, err := StartClusterWith(1, Config{Telemetry: true, MaxBloomBytes: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	line, ords := q3Datasets(t)
	for _, d := range []*workload.Dataset{line, ords} {
		if err := c.Load(d); err != nil {
			t.Fatal(err)
		}
	}

	res, err := c.Engine.Execute(context.Background(), workload.TPCHQ3Query, engine.NewSession())
	if err != nil {
		t.Fatal(err)
	}
	assertRowsEqual(t, "bloom-capped", rowMultisetPage(res.Page), q3Reference(t, line, ords))

	scan := res.Stats.Scan.Snapshot()
	if int(scan.JoinBloomRejected) != q3Config.Files {
		t.Errorf("bloom rejected = %d, want %d (every probe split)",
			scan.JoinBloomRejected, q3Config.Files)
	}
	if scan.JoinBloomSplits != 0 {
		t.Errorf("bloom splits = %d, want 0 under an 8-byte cap", scan.JoinBloomSplits)
	}
	if n := c.Metrics.CounterValue(telemetry.MetricJoinBloomRejected); int(n) != q3Config.Files {
		t.Errorf("%s = %d, want %d", telemetry.MetricJoinBloomRejected, n, q3Config.Files)
	}
}

// TestJoinBloomProbeFlipMidStream rides a bloom-carrying probe pushdown
// stream into a mid-query adaptive flip: the storage-load spike lands
// after the first page, the connector abandons the remote stream and
// replays locally, and the replayed plan must evaluate the same
// BloomFilterRel — so the delivered sequence equals the raw decision
// path's, row for row, with the delivered prefix skipped exactly once.
func TestJoinBloomProbeFlipMidStream(t *testing.T) {
	c, err := StartCluster(1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	// Many small row groups: the stream yields multiple chunks, so the
	// spike can land strictly mid-stream.
	d, err := workload.TPCH(workload.Config{Files: 2, RowsPerFile: 4096, RowGroupSize: 512, Seed: 43, Codec: compress.None})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Load(d); err != nil {
		t.Fatal(err)
	}

	// A keep-everything filter plus a bloom over every orderkey: worst
	// case for pushdown, so the saturated policy is certain to flip.
	bloomHandle := func() *ocsconn.Handle {
		th, err := c.OCSConn.TableHandle(CatalogOCS, "lineitem")
		if err != nil {
			t.Fatal(err)
		}
		h := th.(*ocsconn.Handle)
		cmp, err := expr.NewCompare(expr.Lt, expr.Col(1, "quantity", types.Float64),
			expr.Lit(types.FloatValue(1e9)))
		if err != nil {
			t.Fatal(err)
		}
		h.Push = &ocsconn.Pushdown{Filter: cmp}
		h.Adaptive = &ocsconn.AdaptiveParams{
			LoadCutoff: ocsconn.DefaultLoadCutoff,
			FlipMargin: ocsconn.DefaultFlipMargin,
		}
		keys := int64(2 * 4096)
		f := bloom.New(int(keys), bloom.DefaultBitsPerKey)
		for k := int64(0); k < keys; k++ {
			f.AddHash(bloom.HashInt64(k))
		}
		nh, ok := h.WithJoinBloom(0, f, keys)
		if !ok {
			t.Fatal("WithJoinBloom declined a filter-only handle")
		}
		return nh.(*ocsconn.Handle)
	}

	split := engine.Split{Object: d.Table.Objects[0], Index: 0}
	var stats engine.ScanStats
	src, err := c.OCSConn.CreatePageSourceDecided(context.Background(), bloomHandle(), split,
		engine.SplitDecision{Pushdown: true}, &stats)
	if err != nil {
		t.Fatal(err)
	}
	first, err := src.Next()
	if err != nil || first == nil {
		t.Fatalf("first page: %v", err)
	}
	got := collectColumn(t, first, nil)
	saturate(c.OCSConn.Policy())
	for {
		page, err := src.Next()
		if err != nil {
			t.Fatal(err)
		}
		if page == nil {
			break
		}
		got = collectColumn(t, page, got)
	}
	if flips := stats.Snapshot().AdaptiveFlips; flips != 1 {
		t.Fatalf("adaptive flips = %d, want 1", flips)
	}

	// Raw decision over the same handle shape evaluates the identical
	// plan — bloom included — locally, and is the reference order.
	var rawStats engine.ScanStats
	raw, err := c.OCSConn.CreatePageSourceDecided(context.Background(), bloomHandle(), split,
		engine.SplitDecision{Pushdown: false}, &rawStats)
	if err != nil {
		t.Fatal(err)
	}
	var ref []string
	for {
		page, err := raw.Next()
		if err != nil {
			t.Fatal(err)
		}
		if page == nil {
			break
		}
		ref = collectColumn(t, page, ref)
	}
	if len(got) != len(ref) {
		t.Fatalf("flipped stream delivered %d rows, raw path %d", len(got), len(ref))
	}
	for i := range got {
		if got[i] != ref[i] {
			t.Fatalf("row %d: flipped stream = %s, raw path = %s", i, got[i], ref[i])
		}
	}
}

func q3Arms() []struct{ Name, Bloom string } {
	return []struct{ Name, Bloom string }{
		{"bloom-on", ""},
		{"bloom-off", "off"},
	}
}

// BenchmarkJoinBloomSweep is the PR's evaluation sweep: the Q3-shaped
// join with bloom pushdown on and off. bytes-moved and storage-rows are
// the measures that matter — the bloom arm must move strictly fewer probe
// rows off storage. `make bench` archives the numbers in BENCH_PR9.json.
func BenchmarkJoinBloomSweep(b *testing.B) {
	cfg := workload.Config{Files: 2, RowsPerFile: 8192, Seed: 31, Codec: compress.Snappy}
	line, err := workload.TPCH(cfg)
	if err != nil {
		b.Fatal(err)
	}
	ords, err := workload.TPCHOrders(cfg)
	if err != nil {
		b.Fatal(err)
	}
	c := benchCluster(b, line, ords)

	for _, arm := range q3Arms() {
		b.Run(arm.Name, func(b *testing.B) {
			var bytesMoved, storageRows, buildRows float64
			for i := 0; i < b.N; i++ {
				session := engine.NewSession()
				if arm.Bloom != "" {
					session.Set(engine.SessionJoinBloom, arm.Bloom)
				}
				cell, err := c.Run(arm.Name, workload.TPCHQ3Query, session)
				if err != nil {
					b.Fatal(err)
				}
				if cell.Rows == 0 {
					b.Fatal("empty result")
				}
				scan := cell.Stats.Scan.Snapshot()
				bytesMoved += float64(cell.BytesMoved)
				storageRows += float64(scan.ResultRows)
				buildRows += float64(cell.Stats.JoinBuildRows)
			}
			n := float64(b.N)
			b.ReportMetric(bytesMoved/n, "bytes-moved/op")
			b.ReportMetric(storageRows/n, "storage-rows/op")
			b.ReportMetric(buildRows/n, "build-rows/op")
		})
	}
}
