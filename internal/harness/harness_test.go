package harness

import (
	"sort"
	"testing"

	"prestocs/internal/compress"
	ocsconn "prestocs/internal/connector/ocs"
	"prestocs/internal/engine"
	"prestocs/internal/workload"
)

func testCluster(t *testing.T) *Cluster {
	t.Helper()
	c, err := StartCluster(1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func smallLaghos(t *testing.T, codec compress.Codec) *workload.Dataset {
	t.Helper()
	d, err := workload.Laghos(workload.Config{Files: 4, RowsPerFile: 8192, Seed: 11, Codec: codec})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func smallDeepWater(t *testing.T, codec compress.Codec) *workload.Dataset {
	t.Helper()
	d, err := workload.DeepWater(workload.Config{Files: 4, RowsPerFile: 4096, Seed: 12, Codec: codec})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestFig5aLaghosShape asserts DESIGN.md's acceptance criteria for
// Fig. 5(a): every added operator reduces movement and modeled time; full
// pushdown moves ≤ 0.1% of filter-only.
func TestFig5aLaghosShape(t *testing.T) {
	c := testCluster(t)
	d := smallLaghos(t, compress.None)
	if err := c.Load(d); err != nil {
		t.Fatal(err)
	}
	cells, err := c.RunFig5(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("cells = %d", len(cells))
	}
	for i := 1; i < len(cells); i++ {
		if cells[i].BytesMoved > cells[i-1].BytesMoved {
			t.Errorf("movement increased %s->%s: %d -> %d",
				cells[i-1].Label, cells[i].Label, cells[i-1].BytesMoved, cells[i].BytesMoved)
		}
		if cells[i].Modeled.Total > cells[i-1].Modeled.Total {
			t.Errorf("modeled time increased %s->%s: %v -> %v",
				cells[i-1].Label, cells[i].Label, cells[i-1].Modeled.Total, cells[i].Modeled.Total)
		}
	}
	// At test scale (4 files × 8K rows) the separations are smaller than
	// the paper's 24 GB run but the same shape must hold: full pushdown
	// moves ≤10%% of filter-only and is ≥1.2× faster.
	full, filter := cells[3], cells[1]
	if float64(full.BytesMoved) > 0.10*float64(filter.BytesMoved) {
		t.Errorf("full pushdown moves %d bytes, filter-only %d; want ≤10%%",
			full.BytesMoved, filter.BytesMoved)
	}
	if ratio := float64(filter.Modeled.Total) / float64(full.Modeled.Total); ratio < 1.2 {
		t.Errorf("full-vs-filter speedup = %.2fx, want ≥1.2x", ratio)
	}
	// Result correctness: 100 rows from the LIMIT.
	if full.Rows != 100 {
		t.Errorf("laghos rows = %d, want 100", full.Rows)
	}
}

// TestFig5bDeepWaterShape asserts Fig. 5(b)'s distinctive feature: adding
// expression-projection pushdown slows the query down, and adding
// aggregation recovers it.
func TestFig5bDeepWaterShape(t *testing.T) {
	c := testCluster(t)
	d := smallDeepWater(t, compress.None)
	if err := c.Load(d); err != nil {
		t.Fatal(err)
	}
	cells, err := c.RunFig5(d)
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]*Cell{}
	for _, cell := range cells {
		byLabel[cell.Label] = cell
	}
	none := byLabel["no pushdown"]
	filter := byLabel["filter"]
	proj := byLabel["filter+project"]
	agg := byLabel["filter+project+agg"]

	if filter.Modeled.Total >= none.Modeled.Total {
		t.Errorf("filter pushdown should beat none: %v vs %v", filter.Modeled.Total, none.Modeled.Total)
	}
	if proj.Modeled.Total <= filter.Modeled.Total {
		t.Errorf("projection pushdown should slow down (paper Q2): %v vs %v",
			proj.Modeled.Total, filter.Modeled.Total)
	}
	if agg.Modeled.Total >= filter.Modeled.Total {
		t.Errorf("aggregation pushdown should recover: %v vs filter %v",
			agg.Modeled.Total, filter.Modeled.Total)
	}
	if float64(agg.BytesMoved) > 0.01*float64(filter.BytesMoved) {
		t.Errorf("agg movement %d vs filter %d; want ≤1%%", agg.BytesMoved, filter.BytesMoved)
	}
	// One group per timestep file.
	if agg.Rows != 4 {
		t.Errorf("deepwater groups = %d, want 4", agg.Rows)
	}
}

// TestFig5AllConfigsSameResults: pushdown must never change answers.
func TestFig5AllConfigsSameResults(t *testing.T) {
	c := testCluster(t)
	d := smallLaghos(t, compress.None)
	if err := c.Load(d); err != nil {
		t.Fatal(err)
	}
	var rows []int
	for _, step := range Fig5Steps("laghos") {
		session := engine.NewSession().Set(ocsconn.SessionPushdown, step.Mode)
		cell, err := c.Run(step.Label, d.Query, session)
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, cell.Rows)
	}
	sort.Ints(rows)
	if rows[0] != rows[len(rows)-1] {
		t.Errorf("row counts differ across configs: %v", rows)
	}
}

// TestFig6Shape asserts the compression study's orderings: within a
// codec, all-operator pushdown beats filter-only; compressed filter-only
// (zstd) beats uncompressed all-operator; stronger codecs are faster.
func TestFig6Shape(t *testing.T) {
	type point struct{ filter, all *Cell }
	results := map[compress.Codec]point{}
	for _, codec := range compress.Codecs() {
		c := testCluster(t)
		d := smallDeepWater(t, codec)
		if err := c.Load(d); err != nil {
			t.Fatal(err)
		}
		f, err := c.RunFig6Cell(d, "filter")
		if err != nil {
			t.Fatal(err)
		}
		a, err := c.RunFig6Cell(d, "filter_project_agg")
		if err != nil {
			t.Fatal(err)
		}
		results[codec] = point{filter: f, all: a}
		c.Close()
	}
	for codec, p := range results {
		if p.all.Modeled.Total >= p.filter.Modeled.Total {
			t.Errorf("%s: all-op (%v) should beat filter-only (%v)",
				codec, p.all.Modeled.Total, p.filter.Modeled.Total)
		}
	}
	// Compression reduces filter-only time versus uncompressed.
	if results[compress.Zstd].filter.Modeled.Total >= results[compress.None].filter.Modeled.Total {
		t.Errorf("zstd filter-only (%v) should beat uncompressed filter-only (%v)",
			results[compress.Zstd].filter.Modeled.Total, results[compress.None].filter.Modeled.Total)
	}
	// The paper's headline Q3 observation: compressed data with basic
	// filter-only pushdown outperforms uncompressed data with full
	// operator pushdown (451.7s vs 530.4s).
	if results[compress.Zstd].filter.Modeled.Total >= results[compress.None].all.Modeled.Total {
		t.Errorf("zstd filter-only (%v) should beat uncompressed all-op (%v)",
			results[compress.Zstd].filter.Modeled.Total, results[compress.None].all.Modeled.Total)
	}
}

func TestTable3Breakdown(t *testing.T) {
	c := testCluster(t)
	d, err := workload.Laghos(workload.Config{Files: 1, RowsPerFile: 4096, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Load(d); err != nil {
		t.Fatal(err)
	}
	b, err := c.RunTable3(d)
	if err != nil {
		t.Fatal(err)
	}
	if b.Total <= 0 {
		t.Fatal("no total time")
	}
	planShare := float64(b.PlanAnalysis) / float64(b.Total)
	irShare := float64(b.SubstraitGen) / float64(b.Total)
	if planShare+irShare > 0.10 {
		t.Errorf("pushdown overhead share = %.1f%%, paper says <3%%",
			100*(planShare+irShare))
	}
	if b.Transfer <= 0 {
		t.Error("transfer stage empty")
	}
}

func TestSelectivityMetric(t *testing.T) {
	c := testCluster(t)
	d := smallLaghos(t, compress.None)
	if err := c.Load(d); err != nil {
		t.Fatal(err)
	}
	session := engine.NewSession().Set(ocsconn.SessionPushdown, "all")
	cell, err := c.Run("sel", d.Query, session)
	if err != nil {
		t.Fatal(err)
	}
	sel := Selectivity(cell, d)
	if sel <= 0 || sel > 0.05 {
		t.Errorf("laghos selectivity = %v, want tiny fraction", sel)
	}
}

// TestHiveVsOCSFilterAblation: the CSV (S3 Select) path must move more
// bytes and cost more modeled time than the Arrow path for the same
// filter-only pushdown — the paper's motivation for columnar results.
func TestHiveVsOCSFilterAblation(t *testing.T) {
	c := testCluster(t)
	d := smallDeepWater(t, compress.None)
	if err := c.Load(d); err != nil {
		t.Fatal(err)
	}
	ocsCell, err := c.Run("ocs-filter", d.Query, engine.NewSession().Set(ocsconn.SessionPushdown, "filter"))
	if err != nil {
		t.Fatal(err)
	}
	hiveQuery := "SELECT MAX((rowid % 250000) / 500) AS m, timestep FROM hive.deepwater WHERE v02 > 0.1 GROUP BY timestep"
	hiveCell, err := c.Run("hive-filter", hiveQuery, engine.NewSession())
	if err != nil {
		t.Fatal(err)
	}
	if hiveCell.Rows != ocsCell.Rows {
		t.Fatalf("row mismatch: %d vs %d", hiveCell.Rows, ocsCell.Rows)
	}
	if hiveCell.Modeled.Total <= ocsCell.Modeled.Total {
		t.Errorf("CSV path (%v) should cost more than Arrow path (%v)",
			hiveCell.Modeled.Total, ocsCell.Modeled.Total)
	}
}
