package harness

import (
	"context"
	"sort"
	"strings"
	"testing"

	"prestocs/internal/column"
	"prestocs/internal/compress"
	ocsconn "prestocs/internal/connector/ocs"
	"prestocs/internal/engine"
	"prestocs/internal/workload"
)

// Failure injection: the full stack must surface storage-layer faults as
// query errors, never as wrong or partial results.

func TestCorruptObjectFailsQuery(t *testing.T) {
	c := testCluster(t)
	d := smallDeepWater(t, compress.None)
	if err := c.Load(d); err != nil {
		t.Fatal(err)
	}
	// Overwrite one object with garbage through the OCS frontend.
	key := d.Table.Objects[2]
	if err := c.OCSCli.Put(context.Background(), d.Table.Bucket, key, []byte("this is not a parquet file")); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{"none", "filter", "filter_project_agg"} {
		_, err := c.Run(mode, d.Query, engine.NewSession().Set(ocsconn.SessionPushdown, mode))
		if err == nil {
			t.Errorf("mode %s: query over corrupt object succeeded", mode)
		}
	}
}

func TestTruncatedObjectFailsQuery(t *testing.T) {
	c := testCluster(t)
	d := smallDeepWater(t, compress.Snappy)
	if err := c.Load(d); err != nil {
		t.Fatal(err)
	}
	key := d.Table.Objects[0]
	img := d.Objects[key]
	if err := c.OCSCli.Put(context.Background(), d.Table.Bucket, key, img[:len(img)/2]); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run("trunc", d.Query, engine.NewSession()); err == nil {
		t.Error("query over truncated object succeeded")
	}
}

func TestMissingObjectFailsQuery(t *testing.T) {
	c := testCluster(t)
	d := smallDeepWater(t, compress.None)
	if err := c.Load(d); err != nil {
		t.Fatal(err)
	}
	// Register a table whose object list references a key never uploaded.
	tbl := *d.Table
	tbl.Schema = CatalogOCS
	tbl.Name = "ghost"
	tbl.Objects = append([]string(nil), tbl.Objects...)
	tbl.Objects[1] = "does-not-exist.pql"
	if err := c.Meta.Register(&tbl); err != nil {
		t.Fatal(err)
	}
	q := strings.Replace(d.Query, "FROM deepwater", "FROM ghost", 1)
	if _, err := c.Run("ghost", q, engine.NewSession()); err == nil {
		t.Error("query over missing object succeeded")
	}
}

func TestDeadStorageNodeFailsQuery(t *testing.T) {
	c := testCluster(t)
	d := smallDeepWater(t, compress.None)
	if err := c.Load(d); err != nil {
		t.Fatal(err)
	}
	// Kill the storage node; frontend RPCs must fail, and the engine must
	// propagate that as a query error.
	c.OCS.Nodes[0].Close()
	if _, err := c.Run("dead", d.Query, engine.NewSession()); err == nil {
		t.Error("query against dead storage node succeeded")
	}
}

func TestSchemaDriftFailsQuery(t *testing.T) {
	// Catalog says one schema, object stores another: the OCS embedded
	// engine must reject the plan instead of misinterpreting columns.
	c := testCluster(t)
	d := smallDeepWater(t, compress.None)
	if err := c.Load(d); err != nil {
		t.Fatal(err)
	}
	other := smallLaghos(t, compress.None)
	// Replace a deepwater object with a laghos object (different schema).
	if err := c.OCSCli.Put(context.Background(), d.Table.Bucket, d.Table.Objects[0], other.Objects[other.Table.Objects[0]]); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run("drift", d.Query, engine.NewSession()); err == nil {
		t.Error("schema drift went undetected")
	}
}

func TestMultiNodeCluster(t *testing.T) {
	c, err := StartCluster(3)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	d, err := workload.Laghos(workload.Config{Files: 9, RowsPerFile: 2048, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Load(d); err != nil {
		t.Fatal(err)
	}
	// Objects must be spread across nodes.
	populated := 0
	for _, node := range c.OCS.Nodes {
		if keys, err := node.Store().List(d.Table.Bucket, ""); err == nil && len(keys) > 0 {
			populated++
		}
	}
	if populated < 2 {
		t.Errorf("placement not spread: %d/3 nodes populated", populated)
	}
	// Full pushdown across nodes returns the same answer as none.
	baseline, err := c.Engine.Execute(context.Background(), d.Query, engine.NewSession().Set(ocsconn.SessionPushdown, "none"))
	if err != nil {
		t.Fatal(err)
	}
	full, err := c.Engine.Execute(context.Background(), d.Query, engine.NewSession().Set(ocsconn.SessionPushdown, "all"))
	if err != nil {
		t.Fatal(err)
	}
	a, b := rowMultisetPage(baseline.Page), rowMultisetPage(full.Page)
	if len(a) != len(b) {
		t.Fatalf("rows %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("row %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func rowMultisetPage(p *column.Page) []string {
	out := make([]string, p.NumRows())
	for i := range out {
		s := ""
		for _, v := range p.Row(i) {
			s += v.String() + "|"
		}
		out[i] = s
	}
	sort.Strings(out)
	return out
}
