package harness

import (
	"context"
	"fmt"
	"io"
	"sort"
	"testing"
	"time"

	"prestocs/internal/compress"
	"prestocs/internal/substrait"
	"prestocs/internal/workload"
)

// benchDataset builds one of the paper workloads at benchmark scale.
func benchDataset(b *testing.B, name string) *workload.Dataset {
	b.Helper()
	var (
		d   *workload.Dataset
		err error
	)
	switch name {
	case "laghos":
		d, err = workload.Laghos(workload.Config{Files: 2, RowsPerFile: 16384, Seed: 21, Codec: compress.Snappy})
	case "deepwater":
		d, err = workload.DeepWater(workload.Config{Files: 2, RowsPerFile: 32768, Seed: 22, Codec: compress.Snappy})
	case "tpch":
		d, err = workload.TPCH(workload.Config{Files: 2, RowsPerFile: 16384, Seed: 23, Codec: compress.Snappy})
	default:
		b.Fatalf("unknown dataset %q", name)
	}
	if err != nil {
		b.Fatal(err)
	}
	return d
}

func benchCluster(b *testing.B, datasets ...*workload.Dataset) *Cluster {
	b.Helper()
	c, err := StartCluster(2)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.Close)
	for _, d := range datasets {
		if err := c.Load(d); err != nil {
			b.Fatal(err)
		}
	}
	return c
}

// BenchmarkStreamingVsBuffered measures what the streaming result
// protocol buys. "buffered" emulates the old unary protocol, where the
// storage node materialized the whole Arrow result before the first byte
// reached the client: time-to-first-page equals a full drain. "streaming"
// is the chunk-per-row-group path, where the first page is usable while
// the node is still scanning later row groups.
//
// first-page is the latency the paper's residual operators observe before
// they can start; e2e runs each paper query through the full engine and
// must be no worse than the buffered baseline.
func BenchmarkStreamingVsBuffered(b *testing.B) {
	dw := benchDataset(b, "deepwater")

	b.Run("DeepWater/first-page", func(b *testing.B) {
		c := benchCluster(b, dw)
		scan := &substrait.ReadRel{
			Bucket:     dw.Table.Bucket,
			Object:     dw.Table.Objects[0],
			BaseSchema: dw.Table.Columns,
		}
		plan := substrait.NewPlan(scan)

		b.Run("buffered", func(b *testing.B) {
			// Full materialization before the first page is available.
			for i := 0; i < b.N; i++ {
				res, err := c.OCSCli.Execute(context.Background(), plan)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Pages) == 0 || res.Pages[0].NumRows() == 0 {
					b.Fatal("empty result")
				}
			}
		})
		b.Run("streaming", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rs, err := c.OCSCli.ExecuteStream(context.Background(), plan)
				if err != nil {
					b.Fatal(err)
				}
				page, err := rs.Next()
				if err != nil || page.NumRows() == 0 {
					b.Fatalf("first page: %v", err)
				}
				rs.Close()
			}
		})
	})

	// End-to-end paper queries through the engine: streaming must be no
	// worse than full buffering here, even when the query drains
	// everything anyway.
	for _, name := range []string{"laghos", "deepwater", "tpch"} {
		d := benchDataset(b, name)
		b.Run(fmt.Sprintf("%s/e2e", name), func(b *testing.B) {
			c := benchCluster(b, d)
			for i := 0; i < b.N; i++ {
				if _, err := c.Run("bench", d.Query, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	// Full-drain comparison at the protocol level on Deep Water: chunked
	// streaming versus what the buffered path moved, same bytes total.
	b.Run("DeepWater/full-drain/streaming", func(b *testing.B) {
		c := benchCluster(b, dw)
		scan := &substrait.ReadRel{
			Bucket:     dw.Table.Bucket,
			Object:     dw.Table.Objects[0],
			BaseSchema: dw.Table.Columns,
		}
		plan := substrait.NewPlan(scan)
		for i := 0; i < b.N; i++ {
			rs, err := c.OCSCli.ExecuteStream(context.Background(), plan)
			if err != nil {
				b.Fatal(err)
			}
			for {
				if _, err := rs.Next(); err == io.EOF {
					break
				} else if err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkTracingOverhead prices end-to-end tracing: the same paper
// query through the full topology with spans on and off. The acceptance
// bar is overhead-pct ≤ 3; `make bench` archives the numbers in
// BENCH_PR4.json so the gap is tracked over time.
//
// Methodology — three choices that matter on shared hardware:
//
//   - ONE cluster, toggling the engine tracer between modes, instead of
//     two clusters built with different configs. Distinct configurations
//     allocate in different orders, and the resulting heap layouts alone
//     bias query wall time by far more than the telemetry delta (both
//     signs, up to ~25% observed) — a lottery that is sticky per process,
//     so it does not average out. A single cluster holds the layout
//     fixed. Nilling the engine tracer disables span creation in every
//     layer: with no root span no trace ID crosses the wire, and the rpc
//     server only adopts its own tracer for requests that arrive traced.
//   - Modes INTERLEAVE batch by batch, so machine-load drift lands on
//     both equally; sequential A-then-B phases sample different load.
//   - The per-mode figure is the MEDIAN per-query latency, which a
//     handful of GC pauses or noisy-neighbor stalls cannot drag around
//     the way a mean can.
func BenchmarkTracingOverhead(b *testing.B) {
	d := benchDataset(b, "laghos")
	c, err := StartClusterWith(2, Config{Telemetry: true})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.Close)
	if err := c.Load(d); err != nil {
		b.Fatal(err)
	}
	tracer, metrics := c.Engine.Tracer, c.Engine.Metrics
	set := func(on bool) {
		if on {
			c.Engine.Tracer, c.Engine.Metrics = tracer, metrics
		} else {
			c.Engine.Tracer, c.Engine.Metrics = nil, nil
		}
	}
	defer set(true)
	modes := []bool{false, true} // [0] disabled, [1] enabled
	// Warm up pools, page caches and the GC steady state before timing;
	// cold-start costs are not what this measures.
	for j := 0; j < 20; j++ {
		for _, on := range modes {
			set(on)
			if _, err := c.Run("warmup", d.Query, nil); err != nil {
				b.Fatal(err)
			}
		}
	}
	samples := [2][]time.Duration{
		make([]time.Duration, 0, b.N),
		make([]time.Duration, 0, b.N),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, on := range modes {
			set(on)
			start := time.Now()
			if _, err := c.Run("bench", d.Query, nil); err != nil {
				b.Fatal(err)
			}
			samples[j] = append(samples[j], time.Since(start))
		}
	}
	b.StopTimer()
	var median [2]float64
	for j, s := range samples {
		sort.Slice(s, func(a, b int) bool { return s[a] < s[b] })
		median[j] = float64(s[len(s)/2].Nanoseconds())
	}
	b.ReportMetric(median[0], "disabled-ns/op")
	b.ReportMetric(median[1], "enabled-ns/op")
	b.ReportMetric((median[1]-median[0])/median[0]*100, "overhead-pct")
}
