package harness

import (
	"context"
	"sort"
	"sync"
	"testing"
	"time"

	"prestocs/internal/compress"
	ocsconn "prestocs/internal/connector/ocs"
	"prestocs/internal/engine"
	"prestocs/internal/workload"
)

// mixedCluster stands up the mixed-traffic topology: admission bounded
// well above the load (so nothing sheds), a small shared scan pool so
// heavy and small queries genuinely contend for the same node workers.
func mixedCluster(t testing.TB) (*Cluster, *workload.Dataset, *workload.Dataset) {
	t.Helper()
	c, err := StartClusterWith(1, Config{
		Telemetry: true,
		Admission: engine.AdmissionConfig{MaxConcurrent: 16, MaxQueued: 256},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	// Small row groups keep the scheduler's fairness quantum fine: a
	// small query's task never waits behind a multi-thousand-row scan.
	heavy, err := workload.Laghos(workload.Config{Files: 8, RowsPerFile: 8192, RowGroupSize: 512, Seed: 11, Codec: compress.None})
	if err != nil {
		t.Fatal(err)
	}
	small, err := workload.DeepWater(workload.Config{Files: 1, RowsPerFile: 512, Seed: 12, Codec: compress.None})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Load(heavy); err != nil {
		t.Fatal(err)
	}
	if err := c.Load(small); err != nil {
		t.Fatal(err)
	}
	return c, heavy, small
}

// submitWait runs one query through the handle API and returns its wall
// time.
func submitWait(t testing.TB, c *Cluster, sql, mode string, opts ...engine.SubmitOption) time.Duration {
	t.Helper()
	session := engine.NewSession().Set(ocsconn.SessionPushdown, mode)
	opts = append(opts, engine.WithSession(session))
	start := time.Now()
	q, err := c.Engine.Submit(context.Background(), sql, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Result(); err != nil {
		t.Fatal(err)
	}
	return time.Since(start)
}

func percentile(durs []time.Duration, p float64) time.Duration {
	if len(durs) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), durs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

// mixedTrafficSmallLatencies drives 4 heavy full-transfer scans and 64
// small selective queries concurrently and returns the small queries'
// latencies.
func mixedTrafficSmallLatencies(t testing.TB, c *Cluster, heavy, small *workload.Dataset) []time.Duration {
	t.Helper()
	const (
		heavyQueries = 4
		smallQueries = 64
		smallWorkers = 4
	)
	var wg sync.WaitGroup
	for i := 0; i < heavyQueries; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// No pushdown: the heavy query transfers every row and runs
			// the aggregation compute-side.
			submitWait(t, c, heavy.Query, "none")
		}()
	}
	latencies := make([]time.Duration, smallQueries)
	var idx sync.Mutex
	next := 0
	for w := 0; w < smallWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				idx.Lock()
				i := next
				next++
				idx.Unlock()
				if i >= smallQueries {
					return
				}
				latencies[i] = submitWait(t, c, small.Query, "all")
			}
		}()
	}
	wg.Wait()
	return latencies
}

// TestMixedTrafficNoStarvation is the PR's acceptance scenario: with the
// node-wide fair scheduler, 4 heavy no-pushdown scans must not starve 64
// small selective queries — the small-query p99 under load stays within
// 3x its solo p99. One remeasure is allowed to absorb scheduler noise on
// loaded CI machines.
func TestMixedTrafficNoStarvation(t *testing.T) {
	if testing.Short() {
		t.Skip("mixed-traffic load test")
	}
	c, heavy, small := mixedCluster(t)

	// Solo baseline: the small query alone on an idle cluster.
	var solo []time.Duration
	for i := 0; i < 8; i++ {
		solo = append(solo, submitWait(t, c, small.Query, "all"))
	}
	soloP99 := percentile(solo, 0.99)

	// On a machine with a couple of cores the heavy queries' compute-side
	// aggregation saturates the CPU outright, and every query — however
	// fairly scheduled — inflates by the run-queue depth; that is CPU
	// contention, not scan-scheduler starvation. The absolute floor keeps
	// the test meaningful there: starvation under the old per-query pools
	// showed up as multi-second small-query tails, two orders above it.
	floor := 250 * time.Millisecond

	for attempt := 0; ; attempt++ {
		lat := mixedTrafficSmallLatencies(t, c, heavy, small)
		p50, p99 := percentile(lat, 0.50), percentile(lat, 0.99)
		t.Logf("small query latency: solo p99 %v; mixed p50 %v p99 %v", soloP99, p50, p99)
		if p99 <= 3*soloP99 || p99 <= floor {
			return
		}
		if attempt >= 1 {
			t.Fatalf("small-query p99 %v exceeds 3x solo p99 %v under mixed traffic", p99, soloP99)
		}
		t.Logf("p99 ratio above bound, remeasuring once")
	}
}

// BenchmarkMixedTraffic archives the mixed-traffic latency profile:
// small-query p50/p99 while 4 heavy no-pushdown scans run concurrently.
// benchjson picks the custom metrics up alongside ns/op.
func BenchmarkMixedTraffic(b *testing.B) {
	c, heavy, small := mixedCluster(b)
	b.ResetTimer()
	var all []time.Duration
	for i := 0; i < b.N; i++ {
		all = append(all, mixedTrafficSmallLatencies(b, c, heavy, small)...)
	}
	b.ReportMetric(float64(percentile(all, 0.50).Microseconds())/1000, "small-p50-ms")
	b.ReportMetric(float64(percentile(all, 0.99).Microseconds())/1000, "small-p99-ms")
}
